(* mc-benchmark-style load generator CLI.

   Default mode drives an in-process store through the full protocol codec
   (the configuration the figure-5 bench uses). With --socket, it instead
   benchmarks a running memcached_server over the wire using one client
   connection per worker thread. *)

open Cmdliner

let backend_arg =
  let doc = "In-process backend to benchmark ('rp' or 'lock')." in
  Arg.(
    value
    & opt (enum [ ("rp", Memcached.Store.Rp); ("lock", Memcached.Store.Lock) ])
        Memcached.Store.Rp
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let socket_arg =
  let doc = "Benchmark a live server over this Unix socket instead of in-process." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let workers_arg =
  let doc = "Concurrent benchmark workers (the paper's x axis)." in
  Arg.(value & opt int 4 & info [ "c"; "workers" ] ~docv:"N" ~doc)

let duration_arg =
  let doc = "Benchmark duration in seconds." in
  Arg.(value & opt float 2.0 & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc)

let keyspace_arg =
  let doc = "Number of distinct keys." in
  Arg.(value & opt int 10_000 & info [ "k"; "keyspace" ] ~docv:"N" ~doc)

let value_size_arg =
  let doc = "Value size in bytes." in
  Arg.(value & opt int 100 & info [ "s"; "value-size" ] ~docv:"BYTES" ~doc)

let mode_arg =
  let doc = "Workload: 'get', 'set', or a SET fraction like 'mixed:0.1'." in
  let parse s =
    match s with
    | "get" -> Ok Memcached.Mc_benchmark.Get_only
    | "set" -> Ok Memcached.Mc_benchmark.Set_only
    | _ -> (
        match String.split_on_char ':' s with
        | [ "mixed"; f ] -> (
            match float_of_string_opt f with
            | Some frac when frac >= 0.0 && frac <= 1.0 ->
                Ok (Memcached.Mc_benchmark.Mixed frac)
            | Some _ | None -> Error (`Msg "mixed fraction must be in [0,1]"))
        | _ -> Error (`Msg "mode must be get, set, or mixed:<fraction>"))
  in
  let print ppf = function
    | Memcached.Mc_benchmark.Get_only -> Format.fprintf ppf "get"
    | Memcached.Mc_benchmark.Set_only -> Format.fprintf ppf "set"
    | Memcached.Mc_benchmark.Mixed f -> Format.fprintf ppf "mixed:%g" f
  in
  Arg.(
    value
    & opt (conv (parse, print)) Memcached.Mc_benchmark.Get_only
    & info [ "mode" ] ~docv:"MODE" ~doc)

let servers_arg =
  let doc =
    "Benchmark a cluster: comma-separated host:port[:weight] members. \
     Keys route over the same ketama consistent-hash ring the cluster \
     client uses, batches pipelined per member."
  in
  let parse_one s =
    match String.split_on_char ':' s with
    | [ host; port ] -> (
        match int_of_string_opt port with
        | Some p when host <> "" -> Ok (host, p, 1)
        | _ -> Error (`Msg ("bad server: " ^ s)))
    | [ host; port; weight ] -> (
        match (int_of_string_opt port, int_of_string_opt weight) with
        | Some p, Some w when host <> "" && w > 0 -> Ok (host, p, w)
        | _ -> Error (`Msg ("bad server: " ^ s)))
    | _ -> Error (`Msg ("bad server: " ^ s))
  in
  let parse s =
    List.fold_left
      (fun acc one ->
        match (acc, parse_one one) with
        | Ok l, Ok m -> Ok (l @ [ m ])
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      (Ok [])
      (String.split_on_char ',' s)
  in
  let print fmt servers =
    Format.pp_print_string fmt
      (String.concat ","
         (List.map (fun (h, p, w) -> Printf.sprintf "%s:%d:%d" h p w) servers))
  in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "servers" ] ~docv:"HOST:PORT[:W],..." ~doc)

let zipf_arg =
  let doc =
    "Draw keys from a Zipfian distribution with parameter $(docv) \
     (e.g. 0.99, YCSB's default) instead of uniformly — a skewed \
     popularity curve with a hot head and a long cold tail, the shape \
     that exercises the tiered store's demote/promote paths."
  in
  Arg.(value & opt (some float) None & info [ "zipf" ] ~docv:"THETA" ~doc)

let pipeline_arg =
  let doc =
    "Pipeline depth for --socket GET runs: write $(docv) GETs per batch and \
     drain the responses in bulk (mc-benchmark's -P). 1 = request-response."
  in
  Arg.(value & opt int 1 & info [ "P"; "pipeline" ] ~docv:"N" ~doc)

let report_heat_arg =
  let doc =
    "After the run, fetch 'stats heat' from the server and print the \
     sketch-observed hottest-key share — against the analytic Zipfian \
     top-1 share when --zipf is set. Requires --socket or --servers and \
     a server started with --heat-topk."
  in
  Arg.(value & flag & info [ "report-heat" ] ~doc)

(* --report-heat: ask the server's workload-insight plane what it saw and
   line it up with what the generator sent — a one-command sanity check
   that the sketch is measuring the traffic it was offered. *)
let report_heat addr ~keyspace ~zipf =
  let client = Memcached.Client.connect addr in
  let kvs = Memcached.Client.stats ~arg:"heat" client in
  Memcached.Client.close client;
  let find k = List.assoc_opt k kvs in
  match find "heat_enabled" with
  | Some "1" -> (
      match
        ( find "heat_top_hits_0_key",
          find "heat_top_hits_0_count",
          find "heat_hits_tracked_total" )
      with
      | Some key, Some count, Some total
        when (try float_of_string total > 0. with _ -> false) ->
          let count = float_of_string count in
          let total = float_of_string total in
          let share = count /. total in
          Printf.printf "heat: hottest key %s: %.0f of %.0f tracked hits (share %.4f)\n"
            key count total share;
          (match zipf with
          | Some theta ->
              let z = Rp_workload.Zipf.create ~theta ~n:keyspace () in
              let analytic = Rp_workload.Zipf.pmf z 0 in
              Printf.printf
                "heat: analytic Zipf(%g) top-1 share %.4f (observed/expected %.3f)\n"
                theta analytic (share /. analytic)
          | None -> ())
      | _ -> print_endline "heat: no heavy hitters tracked yet")
  | _ ->
      print_endline
        "heat: plane disabled on server (start it with --heat-topk <k>)"

let print_result (r : Memcached.Mc_benchmark.result) =
  Printf.printf "requests:    %d\n" r.requests;
  Printf.printf "elapsed:     %.3f s\n" r.elapsed;
  Printf.printf "throughput:  %.0f req/s\n" r.requests_per_second;
  Printf.printf "hits/misses: %d/%d\n" r.hits r.misses

(* Socket mode: each worker owns one connection and issues blocking GETs or
   SETs, like mc-benchmark's per-process connections. *)
let run_socket path workers duration keyspace value_size mode dist =
  let make_worker index ~stop =
    let client = Memcached.Client.connect (Memcached.Server.Unix_socket path) in
    let keygen =
      Rp_workload.Keygen.create ~dist ~keyspace ~seed:42 ~worker:index ()
    in
    let prng = Rp_workload.Keygen.prng keygen in
    let data = String.make value_size 'x' in
    let ops =
      Rp_harness.Runner.loop_until_stop ~stop ~f:(fun () ->
          let key = Rp_workload.Keygen.string_key (Rp_workload.Keygen.next_key keygen) in
          let is_set =
            match mode with
            | Memcached.Mc_benchmark.Get_only -> false
            | Memcached.Mc_benchmark.Set_only -> true
            | Memcached.Mc_benchmark.Mixed f -> Rp_workload.Prng.float prng < f
          in
          if is_set then ignore (Memcached.Client.set client ~key ~data ())
          else ignore (Memcached.Client.get client key))
    in
    Memcached.Client.close client;
    ops
  in
  (* Prefill over one connection. *)
  let client = Memcached.Client.connect (Memcached.Server.Unix_socket path) in
  for i = 0 to keyspace - 1 do
    ignore
      (Memcached.Client.set client
         ~key:(Rp_workload.Keygen.string_key i)
         ~data:(String.make value_size 'x') ())
  done;
  Memcached.Client.close client;
  let outcome =
    Rp_harness.Runner.run ~duration
      ~workers:(Array.init workers (fun i ~stop -> make_worker i ~stop))
      ()
  in
  Printf.printf "requests:    %d\n" (Rp_harness.Runner.total_ops outcome);
  Printf.printf "elapsed:     %.3f s\n" outcome.elapsed;
  Printf.printf "throughput:  %.0f req/s\n" (Rp_harness.Runner.throughput outcome)

(* Pipelined socket mode: batches of GETs per write, responses drained in
   bulk — the workload the event-loop plane coalesces. *)
let run_socket_pipelined path workers duration keyspace value_size pipeline
    dist =
  let addr = Memcached.Server.Unix_socket path in
  Memcached.Mc_benchmark.socket_prefill addr ~keyspace ~value_size;
  print_result
    (Memcached.Mc_benchmark.run_socket addr
       {
         Memcached.Mc_benchmark.connections = workers;
         pipeline;
         sduration = duration;
         skeyspace = keyspace;
         svalue_size = value_size;
         sseed = 42;
         sdist = dist;
       })

let run backend socket servers workers duration keyspace value_size mode
    pipeline zipf heat =
  let dist =
    match zipf with
    | Some theta -> Rp_workload.Keygen.Zipfian theta
    | None -> Rp_workload.Keygen.Uniform
  in
  match (socket, servers) with
  | _, Some servers ->
      print_result
        (Memcached.Mc_benchmark.run_servers servers
           {
             Memcached.Mc_benchmark.connections = workers;
             pipeline = max 1 pipeline;
             sduration = duration;
             skeyspace = keyspace;
             svalue_size = value_size;
             sseed = 42;
             sdist = dist;
           });
      if heat then
        let h, p, _ = List.hd servers in
        report_heat (Memcached.Server.Inet (h, p)) ~keyspace ~zipf
  | Some path, None when pipeline > 1 ->
      (match mode with
      | Memcached.Mc_benchmark.Get_only -> ()
      | _ -> prerr_endline "note: --pipeline > 1 implies a pure-GET workload");
      run_socket_pipelined path workers duration keyspace value_size pipeline
        dist;
      if heat then report_heat (Memcached.Server.Unix_socket path) ~keyspace ~zipf
  | Some path, None ->
      run_socket path workers duration keyspace value_size mode dist;
      if heat then report_heat (Memcached.Server.Unix_socket path) ~keyspace ~zipf
  | None, None ->
      let config =
        {
          Memcached.Mc_benchmark.workers;
          duration;
          keyspace;
          value_size;
          mode;
          seed = 42;
          dist;
        }
      in
      print_result (Memcached.Mc_benchmark.run_backend ~backend config);
      if heat then
        prerr_endline "note: --report-heat needs --socket or --servers"

let cmd =
  let doc = "mc-benchmark-style load generator for the mini-memcached" in
  Cmd.v (Cmd.info "mc_benchmark" ~doc)
    Term.(
      const run $ backend_arg $ socket_arg $ servers_arg $ workers_arg
      $ duration_arg $ keyspace_arg $ value_size_arg $ mode_arg $ pipeline_arg
      $ zipf_arg $ report_heat_arg)

let () = exit (Cmd.eval cmd)
