(* Stand-alone mini-memcached server. *)

open Cmdliner

let backend_arg =
  let doc = "Table backend: 'rp' (relativistic GET fast path) or 'lock' (global lock)." in
  Arg.(
    value
    & opt (enum [ ("rp", Memcached.Store.Rp); ("lock", Memcached.Store.Lock) ])
        Memcached.Store.Rp
    & info [ "backend" ] ~docv:"BACKEND" ~doc)

let port_arg =
  let doc = "TCP port to listen on (loopback). Mutually exclusive with --socket." in
  Arg.(value & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let socket_arg =
  let doc = "Unix-domain socket path to listen on." in
  Arg.(value & opt string "/tmp/rp-memcached.sock" & info [ "socket" ] ~docv:"PATH" ~doc)

let max_bytes_arg =
  let doc = "Eviction budget in megabytes." in
  Arg.(value & opt int 64 & info [ "m"; "memory" ] ~docv:"MB" ~doc)

let metrics_port_arg =
  let doc =
    "Serve Prometheus text exposition on 127.0.0.1:$(docv) (0 = OS-assigned)."
  in
  Arg.(
    value & opt (some int) None & info [ "metrics-port" ] ~docv:"PORT" ~doc)

let mode_arg =
  let event_loop =
    ( Memcached.Server.Event_loop,
      Arg.info [ "event-loop" ]
        ~doc:
          "Serve with the sharded event-loop plane (worker domains, \
           pipelined batching, QSBR GET fast path on the rp backend)." )
  in
  let threaded =
    ( Memcached.Server.Threaded,
      Arg.info [ "threaded" ]
        ~doc:"Serve with one blocking thread per connection (default)." )
  in
  Arg.(value & vflag Memcached.Server.Threaded [ event_loop; threaded ])

let workers_arg =
  let doc =
    "Event-loop worker domains (0 = one per recommended domain). Ignored \
     under --threaded."
  in
  Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N" ~doc)

let data_dir_arg =
  let doc =
    "Directory for crash-safe persistence (snapshots + append-only op \
     log). On startup the newest valid snapshot is loaded and the op-log \
     tail replayed (warm restart); omitted, the store is purely in-memory."
  in
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"DIR" ~doc)

let snapshot_interval_arg =
  let doc =
    "Seconds between background snapshots of the live table (0 disables \
     periodic snapshots; the op log still makes every write durable)."
  in
  Arg.(
    value & opt float 60. & info [ "snapshot-interval" ] ~docv:"SECONDS" ~doc)

let aof_arg =
  let doc =
    "Record every mutation in the append-only op log (requires \
     --data-dir). With --aof=false only snapshots persist, so writes \
     since the last snapshot are lost on a crash."
  in
  Arg.(value & opt bool true & info [ "aof" ] ~docv:"BOOL" ~doc)

let fsync_policy_arg =
  let doc =
    "Op-log durability: 'always' (fsync inside every ack), 'every:<ms>' \
     (group commit), or 'never' (leave it to the kernel)."
  in
  let parse s =
    Result.map_error
      (fun e -> `Msg e)
      (Rp_persist.Oplog.policy_of_string s)
  in
  let print fmt p = Format.pp_print_string fmt (Rp_persist.Oplog.policy_name p) in
  Arg.(
    value
    & opt (conv (parse, print)) Rp_persist.Oplog.Always
    & info [ "fsync-policy" ] ~docv:"POLICY" ~doc)

let guard_arg =
  let doc =
    "Run the overload guard: a background sweeper samples pressure \
     (memory, connections, disk, RCU stalls) and walks the \
     Healthy/Throttle/Shed/Emergency ladder — shedding mutations, \
     widening trace sampling, pausing snapshots, and refusing new \
     connections as pressure demands."
  in
  Arg.(value & opt bool true & info [ "guard" ] ~docv:"BOOL" ~doc)

let shed_watermarks_arg =
  let doc =
    "Shed-rung watermarks as HIGH:LOW occupancy fractions with \
     hysteresis (enter Shed at HIGH, leave below LOW). Throttle and \
     Emergency rungs are derived around them."
  in
  let parse s =
    Result.map_error (fun e -> `Msg e) (Rp_guard.watermarks_of_string s)
  in
  let print fmt (w : Rp_guard.watermarks) =
    Format.fprintf fmt "%.2f:%.2f" w.shed_up w.shed_down
  in
  Arg.(
    value
    & opt (conv (parse, print)) Rp_guard.default_watermarks
    & info [ "shed-watermarks" ] ~docv:"HIGH:LOW" ~doc)

let max_inflight_arg =
  let doc =
    "Admission cap below --max-connections: past $(docv) live \
     connections, new ones are refused with 'SERVER_ERROR overloaded' \
     (0 disables)."
  in
  Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N" ~doc)

let conn_write_cap_arg =
  let doc =
    "Event-loop plane: per-connection pending-write cap in bytes — a \
     client that stops draining its socket has its pipeline parked once \
     this many response bytes are queued (0 = unlimited)."
  in
  Arg.(value & opt int 1_048_576 & info [ "conn-write-cap" ] ~docv:"BYTES" ~doc)

let oplog_max_mb_arg =
  let doc =
    "Rotate the op log once the live segment exceeds $(docv) MB; \
     obsolete segments are archived as *.old-N and pruned (0 = rotate \
     only at snapshots)."
  in
  Arg.(value & opt int 0 & info [ "oplog-max-mb" ] ~docv:"MB" ~doc)

let trace_sample_arg =
  let doc =
    "Head-sample 1 request in $(docv) for detailed flight-recorder spans \
     (1 = trace every request; request-level spans and the slow-request \
     tail trigger stay on regardless)."
  in
  Arg.(value & opt int 1024 & info [ "trace-sample" ] ~docv:"N" ~doc)

let trace_slow_ms_arg =
  let doc =
    "Tail-trigger latency budget: a request slower than $(docv) ms is \
     force-retained in the slow-request log with its span breakdown."
  in
  Arg.(value & opt float 100. & info [ "trace-slow-ms" ] ~docv:"MS" ~doc)

let heat_topk_arg =
  let doc =
    "Track the $(docv) heaviest hitters per sketch (hits, misses, \
     mutations) in the workload-insight plane, exposed via 'stats heat', \
     the heat_* Prometheus families, /heat, and 'heat dump' (0 = off; \
     an unconfigured plane costs one branch on the hot path)."
  in
  Arg.(value & opt int 0 & info [ "heat-topk" ] ~docv:"K" ~doc)

let heat_sample_arg =
  let doc =
    "Head-sampling period of the heat plane's note path (power of two): \
     one operation in $(docv) pays for sketch and histogram work, and \
     exposed counts are scaled back to stream units. 1 records every \
     operation."
  in
  Arg.(value & opt int 16 & info [ "heat-sample" ] ~docv:"N" ~doc)

let trace_buffer_arg =
  let doc =
    "Flight-recorder ring size per worker domain, in span records (rounded \
     up to a power of two; the default keeps the ring L2-resident)."
  in
  Arg.(value & opt int 1024 & info [ "trace-buffer" ] ~docv:"RECORDS" ~doc)

let tier_dir_arg =
  let doc =
    "Directory for the cold tier's value segments. With a tier attached, \
     the eviction sweep demotes victims to disk instead of dropping them \
     and a GET that hits a demoted key promotes it back — datasets \
     larger than --memory keep every acked SET readable."
  in
  Arg.(value & opt (some string) None & info [ "tier-dir" ] ~docv:"DIR" ~doc)

let tier_max_mb_arg =
  let doc =
    "Cold-tier disk budget in megabytes; a full tier falls back to plain \
     eviction and feeds the overload guard's disk pressure."
  in
  Arg.(value & opt int 256 & info [ "tier-max-mb" ] ~docv:"MB" ~doc)

let tier_mode_arg =
  let doc =
    "Tier mode: 'demote' (evictions spill to --tier-dir) or 'off' \
     (ignore --tier-dir)."
  in
  Arg.(
    value
    & opt (enum [ ("demote", true); ("off", false) ]) true
    & info [ "tier" ] ~docv:"MODE" ~doc)

let repl_port_arg =
  let doc =
    "Lead a replication group: listen for followers on 127.0.0.1:$(docv) \
     (0 = OS-assigned) and stream every op-log record to them. Requires \
     --data-dir with the op log enabled."
  in
  Arg.(value & opt (some int) None & info [ "repl-port" ] ~docv:"PORT" ~doc)

let replica_of_arg =
  let doc =
    "Follow the leader whose replication listener is at $(docv) \
     (host:port): apply its op-log stream, refuse client mutations \
     (read-only) until 'cluster promote'."
  in
  let parse s =
    match String.rindex_opt s ':' with
    | Some i -> (
        let host = String.sub s 0 i in
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some port when host <> "" -> Ok (host, port)
        | _ -> Error (`Msg ("bad host:port: " ^ s)))
    | None -> Error (`Msg ("bad host:port: " ^ s))
  in
  let print fmt (h, p) = Format.fprintf fmt "%s:%d" h p in
  Arg.(
    value
    & opt (some (conv (parse, print))) None
    & info [ "replica-of" ] ~docv:"HOST:PORT" ~doc)

let run backend port socket max_mb metrics_port mode workers data_dir
    snapshot_interval aof fsync_policy guard_enabled shed_watermarks
    max_inflight conn_write_cap oplog_max_mb trace_sample trace_slow_ms
    trace_buffer heat_topk heat_sample tier_dir tier_max_mb tier_demote
    repl_port replica_of =
  Rp_trace.configure ~sample:trace_sample ~slow_ms:trace_slow_ms
    ~buffer:trace_buffer ();
  let rcu_mode =
    (* The event loop's worker domains follow QSBR discipline, unlocking
       the zero-cost GET read sections; the threaded plane keeps the
       blocking-tolerant memb flavour. *)
    match (mode, backend) with
    | Memcached.Server.Event_loop, Memcached.Store.Rp -> Memcached.Store.Qsbr
    | _ -> Memcached.Store.Memb
  in
  let store =
    Memcached.Store.create ~backend ~rcu_mode ~max_bytes:(max_mb * 1024 * 1024)
      ~heat_topk ~heat_sample ()
  in
  (* The guard attaches before persistence so the post-recovery eviction
     sweep and every later transition are observable from the start. *)
  let guard =
    if guard_enabled then
      Some (Memcached.Guard.install ~watermarks:shed_watermarks store)
    else None
  in
  (* Validate every directory flag up front: a typo'd or read-only path
     should be one clear startup error, not a crash in the first log
     append or demotion. *)
  let check_dir flag dir =
    match Memcached.Dircheck.validate ~flag dir with
    | Ok () -> ()
    | Error m ->
        prerr_endline m;
        exit 2
  in
  Option.iter (check_dir "--data-dir") data_dir;
  let tier_dir = if tier_demote then tier_dir else None in
  Option.iter (check_dir "--tier-dir") tier_dir;
  (* The tier attaches before persistence (two-phase): its demote hooks
     must be live for the post-recovery eviction sweep, but its segment
     live-maps can only be rebuilt once recovery has settled the table. *)
  let tier =
    Option.map
      (fun dir ->
        match Memcached.Tier.attach ~dir ~max_mb:tier_max_mb store with
        | Ok t ->
            Printf.printf "cold tier in %s: %d MB budget\n%!" dir tier_max_mb;
            t
        | Error m ->
            prerr_endline ("--tier-dir " ^ dir ^ ": " ^ m);
            exit 2)
      tier_dir
  in
  (* Recovery must finish before the listeners open: replay goes through
     the normal update path and must not interleave with client writes. *)
  let persist =
    Option.map
      (fun dir ->
        let snapshot_interval =
          if snapshot_interval > 0. then Some snapshot_interval else None
        in
        let p =
          Memcached.Persist.attach ?snapshot_interval ~aof ~fsync:fsync_policy
            ~oplog_max_mb ~dir store
        in
        let r = Memcached.Persist.recovery p in
        Printf.printf
          "persistence in %s: recovered %d snapshot + %d log records%s\n%!"
          dir r.Memcached.Persist.snapshot_records
          r.Memcached.Persist.log_records
          (if r.Memcached.Persist.log_truncated_bytes > 0 then
             Printf.sprintf " (torn tail: %d bytes truncated)"
               r.Memcached.Persist.log_truncated_bytes
           else "");
        if r.Memcached.Persist.post_recovery_evictions > 0 then
          Printf.printf
            "post-recovery sweep: evicted %d records over the memory budget\n%!"
            r.Memcached.Persist.post_recovery_evictions;
        (* With size rotation on, sustained log growth past a few
           segments' worth means compaction is losing the race — let it
           feed disk pressure. Without rotation, growth is unbounded by
           design, so only append failures count. *)
        Option.iter
          (fun g ->
            Memcached.Guard.watch_persist g
              ~log_budget_mb:(if oplog_max_mb > 0 then 4 * oplog_max_mb else 0)
              p)
          guard;
        p)
      data_dir
  in
  Option.iter
    (fun t ->
      let dropped = Memcached.Tier.finish_recovery t in
      if dropped > 0 then
        Printf.printf "tier recovery: dropped %d fully-dead segment(s)\n%!"
          dropped)
    tier;
  (* Cluster roles attach between recovery and the listeners: a leader's
     tap must be live before the first client write is logged, and a
     follower must be read-only before a client can reach it. *)
  (match (repl_port, replica_of) with
  | Some _, Some _ ->
      prerr_endline "cannot be both --repl-port leader and --replica-of follower";
      exit 2
  | _ -> ());
  let cluster =
    match repl_port with
    | Some rp -> (
        match persist with
        | Some p when aof ->
            let c =
              Memcached.Cluster.lead ~store ~persist:p
                (Unix.ADDR_INET (Unix.inet_addr_loopback, rp))
            in
            Printf.printf "replication listener on 127.0.0.1:%d\n%!"
              (Memcached.Cluster.repl_port c);
            Some c
        | _ ->
            prerr_endline "--repl-port requires --data-dir with the op log on";
            exit 2)
    | None -> (
        match replica_of with
        | Some (host, lport) ->
            let _, leader =
              Memcached.Server.sockaddr_of (Memcached.Server.Inet (host, lport))
            in
            let c = Memcached.Cluster.follow ~store ~leader () in
            Printf.printf "following %s:%d (read-only until promoted)\n%!" host
              lport;
            Some c
        | None -> None)
  in
  let address =
    match port with
    | Some p -> Memcached.Server.Tcp p
    | None -> Memcached.Server.Unix_socket socket
  in
  let config =
    {
      Memcached.Server.default_config with
      mode;
      workers;
      max_inflight;
      conn_write_cap;
    }
  in
  let server = Memcached.Server.start ~store ~config address in
  Option.iter
    (fun g ->
      Memcached.Guard.watch_server g server;
      Rp_guard.start g;
      Printf.printf "overload guard on: shed at %.2f, recover below %.2f\n%!"
        shed_watermarks.Rp_guard.shed_up shed_watermarks.Rp_guard.shed_down)
    guard;
  (match Memcached.Server.address server with
  | Memcached.Server.Tcp p -> Printf.printf "listening on 127.0.0.1:%d\n%!" p
  | Memcached.Server.Inet (h, p) -> Printf.printf "listening on %s:%d\n%!" h p
  | Memcached.Server.Unix_socket path -> Printf.printf "listening on %s\n%!" path);
  (match mode with
  | Memcached.Server.Event_loop ->
      Printf.printf "event-loop plane: %d worker domain(s), rcu %s\n%!"
        (Memcached.Server.workers server)
        (match rcu_mode with
        | Memcached.Store.Qsbr -> "qsbr"
        | Memcached.Store.Memb -> "memb")
  | Memcached.Server.Threaded -> ());
  let metrics =
    Option.map
      (fun p ->
        let m =
          Memcached.Metrics_http.start
            ~registry:(Memcached.Store.registry store)
            ~heat:(fun n -> Memcached.Store.heat_json ?n store)
            p
        in
        Printf.printf "metrics on http://127.0.0.1:%d/metrics\n%!"
          (Memcached.Metrics_http.port m);
        m)
      metrics_port
  in
  let stop = ref false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop := true));
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop := true));
  while not !stop do
    Unix.sleepf 0.2
  done;
  print_endline "shutting down";
  Option.iter Rp_guard.stop guard;
  Option.iter Memcached.Metrics_http.stop metrics;
  Option.iter Memcached.Cluster.stop cluster;
  Memcached.Server.stop server;
  Option.iter Memcached.Tier.stop tier;
  Option.iter Memcached.Persist.stop persist

let cmd =
  let doc = "mini-memcached with a relativistic hash table" in
  Cmd.v (Cmd.info "memcached_server" ~doc)
    Term.(
      const run $ backend_arg $ port_arg $ socket_arg $ max_bytes_arg
      $ metrics_port_arg $ mode_arg $ workers_arg $ data_dir_arg
      $ snapshot_interval_arg $ aof_arg $ fsync_policy_arg $ guard_arg
      $ shed_watermarks_arg $ max_inflight_arg $ conn_write_cap_arg
      $ oplog_max_mb_arg $ trace_sample_arg $ trace_slow_ms_arg
      $ trace_buffer_arg $ heat_topk_arg $ heat_sample_arg $ tier_dir_arg $ tier_max_mb_arg
      $ tier_mode_arg $ repl_port_arg $ replica_of_arg)

let () = exit (Cmd.eval cmd)
