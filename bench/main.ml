(* Benchmark entry point.

   Part 1 — bechamel micro-benchmarks: per-operation latencies of every
   table implementation and of the RCU primitives (one Test.make per
   operation, grouped per concern).

   Part 2 — the paper's figures: each prints measured (this host) and
   cost-model-projected (16-way) series; see lib/figures.

   Part 3 — --smoke: a sub-second burst over the rp table and the
   memcached store that dumps their Rp_obs registry snapshots into
   BENCH_smoke.json (the @bench-smoke alias, wired into @runtest), so
   every test run leaves a machine-readable metrics report behind.

   Usage: main.exe [--quick] [--micro-only | --figures-only | --smoke] *)

open Bechamel
open Toolkit

(* --- micro-benchmark fixtures --- *)

let entries = 4096
let buckets = 8192

let lookup_test name (module T : Rp_baseline.Table_intf.TABLE) =
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:buckets () in
  for i = 0 to entries - 1 do
    T.insert t i i
  done;
  let counter = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         counter := (!counter + 1) land (entries - 1);
         ignore (T.find t !counter)))

let miss_test name (module T : Rp_baseline.Table_intf.TABLE) =
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:buckets () in
  for i = 0 to entries - 1 do
    T.insert t i i
  done;
  let counter = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         counter := (!counter + 1) land (entries - 1);
         ignore (T.find t (!counter + entries))))

let update_test name (module T : Rp_baseline.Table_intf.TABLE) =
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:buckets () in
  for i = 0 to entries - 1 do
    T.insert t i i
  done;
  let counter = ref 0 in
  Test.make ~name
    (Staged.stage (fun () ->
         counter := (!counter + 1) land (entries - 1);
         let k = entries + !counter in
         T.insert t k k;
         ignore (T.remove t k)))

let table_lookup_tests =
  Test.make_grouped ~name:"lookup-hit"
    [
      lookup_test "rp-qsbr" (module Rp_baseline.Rp_table.Qsbr);
      lookup_test "rp-memb" (module Rp_baseline.Rp_table.Resizable);
      lookup_test "ddds" (module Rp_baseline.Ddds_ht);
      lookup_test "rwlock" (module Rp_baseline.Rwlock_ht);
      lookup_test "lock" (module Rp_baseline.Lock_ht);
      lookup_test "xu" (module Rp_baseline.Xu_ht);
    ]

let table_miss_tests =
  Test.make_grouped ~name:"lookup-miss"
    [
      miss_test "rp-qsbr" (module Rp_baseline.Rp_table.Qsbr);
      miss_test "rp-memb" (module Rp_baseline.Rp_table.Resizable);
      miss_test "ddds" (module Rp_baseline.Ddds_ht);
      miss_test "rwlock" (module Rp_baseline.Rwlock_ht);
    ]

let table_update_tests =
  Test.make_grouped ~name:"insert+remove"
    [
      update_test "rp-qsbr" (module Rp_baseline.Rp_table.Qsbr);
      update_test "rp-memb" (module Rp_baseline.Rp_table.Resizable);
      update_test "ddds" (module Rp_baseline.Ddds_ht);
      update_test "rwlock" (module Rp_baseline.Rwlock_ht);
      update_test "lock" (module Rp_baseline.Lock_ht);
      update_test "xu" (module Rp_baseline.Xu_ht);
    ]

let resize_test name size_a size_b =
  let t =
    Rp_ht.create ~initial_size:size_a ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  for i = 0 to entries - 1 do
    Rp_ht.insert t i i
  done;
  let toggle = ref false in
  Test.make ~name
    (Staged.stage (fun () ->
         toggle := not !toggle;
         Rp_ht.resize t (if !toggle then size_b else size_a)))

let resize_tests =
  Test.make_grouped ~name:"resize"
    [
      resize_test "rp-expand+shrink-2x" buckets (2 * buckets);
      resize_test "rp-expand+shrink-4x" buckets (4 * buckets);
    ]

let rcu_tests =
  let rcu = Rcu.create () in
  let reader = Rcu.reader_for_current_domain rcu in
  let q = Rcu_qsbr.create () in
  let qth = Rcu_qsbr.thread_for_current_domain q in
  Test.make_grouped ~name:"rcu"
    [
      Test.make ~name:"memb-read-section"
        (Staged.stage (fun () ->
             Rcu.read_lock reader;
             Rcu.read_unlock reader));
      Test.make ~name:"qsbr-read-section"
        (Staged.stage (fun () ->
             Rcu_qsbr.read_lock qth;
             Rcu_qsbr.read_unlock_auto ~mask:63 qth));
      Test.make ~name:"qsbr-quiescent-state"
        (Staged.stage (fun () -> Rcu_qsbr.quiescent_state qth));
      Test.make ~name:"memb-synchronize-quiescent"
        (Staged.stage (fun () -> Rcu.synchronize rcu));
      Test.make ~name:"qsbr-synchronize-self-only"
        (Staged.stage (fun () -> Rcu_qsbr.synchronize q));
    ]

let sync_tests =
  let rwlock = Rp_sync.Rwlock.create () in
  let seqlock = Rp_sync.Seqlock.create () in
  Test.make_grouped ~name:"sync"
    [
      Test.make ~name:"rwlock-read-acquire-release"
        (Staged.stage (fun () ->
             Rp_sync.Rwlock.read_lock rwlock;
             Rp_sync.Rwlock.read_unlock rwlock));
      Test.make ~name:"seqlock-read"
        (Staged.stage (fun () ->
             let s = Rp_sync.Seqlock.read_begin seqlock in
             ignore (Rp_sync.Seqlock.read_validate seqlock s)));
    ]

let workload_tests =
  let prng = Rp_workload.Prng.create ~seed:7 in
  let zipf = Rp_workload.Zipf.create ~n:100_000 () in
  Test.make_grouped ~name:"workload"
    [
      Test.make ~name:"prng-next"
        (Staged.stage (fun () -> ignore (Rp_workload.Prng.next prng)));
      Test.make ~name:"zipf-sample"
        (Staged.stage (fun () -> ignore (Rp_workload.Zipf.sample zipf prng)));
      Test.make ~name:"hash-splitmix64"
        (Staged.stage
           (let i = ref 0 in
            fun () ->
              incr i;
              ignore (Rp_hashes.Hashfn.splitmix64 !i)));
      Test.make ~name:"hash-fnv1a-14b"
        (Staged.stage (fun () ->
             ignore (Rp_hashes.Hashfn.fnv1a_string "key:0000001234")));
    ]

let protocol_tests =
  let store = Memcached.Store.create ~backend:Memcached.Store.Rp () in
  ignore
    (Memcached.Store.set store ~key:"key:0000000001" ~flags:0 ~exptime:0
       ~data:(String.make 100 'x'));
  let get_request = Memcached.Protocol.Get [ "key:0000000001" ] in
  Test.make_grouped ~name:"memcached"
    [
      Test.make ~name:"encode-get"
        (Staged.stage (fun () ->
             ignore (Memcached.Protocol.encode_request get_request)));
      Test.make ~name:"store-get-rp"
        (Staged.stage (fun () ->
             ignore (Memcached.Store.get store "key:0000000001")));
      Test.make ~name:"full-get-roundtrip"
        (Staged.stage
           (let parser = Memcached.Protocol.Parser.create () in
            let rparser = Memcached.Protocol.Response_parser.create () in
            fun () ->
              Memcached.Protocol.Parser.feed parser
                (Memcached.Protocol.encode_request get_request);
              match Memcached.Protocol.Parser.next parser with
              | Some (Ok request) -> (
                  match Memcached.Server.handle store request with
                  | Some response ->
                      Memcached.Protocol.Response_parser.feed rparser
                        (Memcached.Protocol.encode_response response);
                      ignore (Memcached.Protocol.Response_parser.next rparser)
                  | None -> ())
              | Some (Error _) | None -> assert false));
    ]

let all_micro_tests =
  [
    table_lookup_tests;
    table_miss_tests;
    table_update_tests;
    resize_tests;
    rcu_tests;
    sync_tests;
    workload_tests;
    protocol_tests;
  ]

let run_micro ~quota =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  print_endline "=== Micro-benchmarks (ns/op, OLS fit) ===\n";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows = ref [] in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Printf.sprintf "%.1f" e
            | Some [] | None -> "n/a"
          in
          rows := [ name; ns ] :: !rows)
        results;
      let rows = List.sort compare !rows in
      Rp_harness.Report.print_table ~header:[ "benchmark"; "ns/op" ] ~rows;
      print_newline ())
    all_micro_tests

(* --- smoke run: exercise the stack briefly, leave a metrics report --- *)

let smoke_keys = 8192

let run_smoke () =
  let started = Unix.gettimeofday () in
  (* Table burst: fill, resize both ways, look everything up, drain half. *)
  let reg = Rp_obs.Registry.create () in
  let table =
    Rp_ht.create ~initial_size:64 ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  Rp_ht.observe table reg;
  Rcu.observe (Rp_ht.rcu table) reg;
  for i = 0 to smoke_keys - 1 do
    Rp_ht.insert table i i
  done;
  Rp_ht.resize table 1024;
  Rp_ht.resize table 64;
  let hits = ref 0 in
  for i = 0 to smoke_keys - 1 do
    if Rp_ht.find table i <> None then incr hits
  done;
  for i = 0 to (smoke_keys / 2) - 1 do
    ignore (Rp_ht.remove table i)
  done;
  Rcu.synchronize (Rp_ht.rcu table);
  (* Store burst: sets, hits, misses, deletes through the memcached path. *)
  let store = Memcached.Store.create ~backend:Memcached.Store.Rp () in
  for i = 0 to 255 do
    ignore
      (Memcached.Store.set store
         ~key:(Printf.sprintf "key:%04d" i)
         ~flags:0 ~exptime:0 ~data:(String.make 64 'x'))
  done;
  for i = 0 to 511 do
    ignore (Memcached.Store.get store (Printf.sprintf "key:%04d" i))
  done;
  for i = 0 to 63 do
    ignore (Memcached.Store.delete store (Printf.sprintf "key:%04d" i))
  done;
  let elapsed = Unix.gettimeofday () -. started in
  let oc = open_out "BENCH_smoke.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"smoke\",\n  \"elapsed\": %.3f,\n  \
     \"lookup_hits\": %d,\n  \"trace_events\": %d,\n  \"table\": %s,\n  \
     \"store\": %s\n}\n"
    elapsed !hits
    (Rp_obs.Trace.emitted Rp_obs.Trace.default)
    (Rp_obs.Registry.to_json reg)
    (Rp_obs.Registry.to_json (Memcached.Store.registry store));
  close_out oc;
  Printf.printf "smoke: %d/%d lookups hit, %.0f ms, report in BENCH_smoke.json\n"
    !hits smoke_keys (elapsed *. 1e3);
  if !hits <> smoke_keys then exit 1

(* --- persistence smoke: snapshot/replay throughput, GET tail impact --- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

(* Per-op GET latency sampled in batches (gettimeofday is microsecond
   resolution; a single rp GET is well below that), p99 over samples. *)
let get_p99_ns store ~keyspace ~samples ~batch ~until =
  let lat = Array.make samples 0.0 in
  let k = ref 0 in
  let i = ref 0 in
  let min_done = ref false in
  while (not !min_done) || not (until ()) do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      k := (!k + 1) mod keyspace;
      ignore (Memcached.Store.get store (Printf.sprintf "key:%06d" !k))
    done;
    let t1 = Unix.gettimeofday () in
    lat.(!i mod samples) <- (t1 -. t0) /. float_of_int batch *. 1e9;
    incr i;
    if !i >= samples then min_done := true
  done;
  let n = min !i samples in
  let sorted = Array.sub lat 0 n in
  Array.sort compare sorted;
  sorted.(min (n - 1) (int_of_float (0.99 *. float_of_int n)))

let run_persist_bench () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-bench-persist-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let items = 16_384 and value_size = 256 in
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096 ()
  in
  let p =
    Memcached.Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Never ~dir store
  in
  for i = 0 to items - 1 do
    ignore
      (Memcached.Store.set store
         ~key:(Printf.sprintf "key:%06d" i)
         ~flags:0 ~exptime:0 ~data:(String.make value_size 'x'))
  done;
  (* Baseline GET tail, nothing running in the background. *)
  let p99_off =
    get_p99_ns store ~keyspace:items ~samples:400 ~batch:64 ~until:(fun () -> true)
  in
  (* Snapshot throughput: one full walk streamed to disk. *)
  let t0 = Unix.gettimeofday () in
  let snap_records =
    match Memcached.Persist.snapshot_now p with
    | Ok n -> n
    | Error e ->
        Printf.printf "persist bench: snapshot failed: %s\n" e;
        exit 1
  in
  let snap_elapsed = Unix.gettimeofday () -. t0 in
  let snap_bytes =
    match List.rev (Rp_persist.Snapshot.files ~dir) with
    | (_, path) :: _ -> (Unix.stat path).Unix.st_size
    | [] -> 0
  in
  (* GET tail again, now with the snapshot walk (a relativistic reader on
     its own domain) racing the measurement loop. *)
  let snap_done = Atomic.make false in
  let snapper =
    Thread.create
      (fun () ->
        ignore (Memcached.Persist.snapshot_now p);
        Atomic.set snap_done true)
      ()
  in
  let p99_on =
    get_p99_ns store ~keyspace:items ~samples:400 ~batch:64 ~until:(fun () ->
        Atomic.get snap_done)
  in
  Thread.join snapper;
  let gp_p99_ns =
    match
      List.assoc_opt "rcu_grace_period_ns_p99"
        (Rp_obs.Registry.to_stats (Memcached.Store.registry store))
    with
    | Some v -> int_of_string v
    | None -> 0
  in
  Memcached.Persist.stop p;
  (* Warm restart: recovery (snapshot stream + log replay) into a fresh
     store, timed end to end. *)
  let t0 = Unix.gettimeofday () in
  let store2 =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096 ()
  in
  let p2 = Memcached.Persist.attach ~aof:false ~dir store2 in
  let replay_elapsed = Unix.gettimeofday () -. t0 in
  let r = Memcached.Persist.recovery p2 in
  let replayed = r.Memcached.Persist.snapshot_records + r.Memcached.Persist.log_records in
  let recovered_items = Memcached.Store.items store2 in
  Memcached.Persist.stop p2;
  rm_rf dir;
  let snapshot_mb_s = float_of_int snap_bytes /. 1e6 /. snap_elapsed in
  let replay_ops_s = float_of_int replayed /. replay_elapsed in
  let oc = open_out "BENCH_persist.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"persist\",\n  \"items\": %d,\n  \
     \"value_size\": %d,\n  \"snapshot_records\": %d,\n  \
     \"snapshot_bytes\": %d,\n  \"snapshot_elapsed\": %.4f,\n  \
     \"snapshot_mb_per_s\": %.1f,\n  \"replay_records\": %d,\n  \
     \"replay_elapsed\": %.4f,\n  \"replay_ops_per_s\": %.0f,\n  \
     \"get_p99_ns_snapshot_off\": %.0f,\n  \
     \"get_p99_ns_snapshot_on\": %.0f,\n  \
     \"rcu_grace_period_ns_p99\": %d\n}\n"
    items value_size snap_records snap_bytes snap_elapsed snapshot_mb_s
    replayed replay_elapsed replay_ops_s p99_off p99_on gp_p99_ns;
  close_out oc;
  Printf.printf
    "persist: snapshot %.1f MB/s, replay %.0f ops/s, GET p99 %.0f -> %.0f ns \
     under snapshot, report in BENCH_persist.json\n"
    snapshot_mb_s replay_ops_s p99_off p99_on;
  (* Gate: the warm restart must reproduce the dataset. *)
  if recovered_items <> items then begin
    Printf.printf "persist bench: recovered %d/%d items\n" recovered_items items;
    exit 1
  end

(* --- writer scaling: 50/50 GET/SET mix at 1/2/4/8 writer domains ---

   The multi-writer proof for the striped store: each writer domain runs
   a 50/50 GET/SET [Opmix] (GETs over a shared prefilled keyspace, SETs
   into a per-writer range), counting SET throughput per writer count.
   A quiet single-threaded GET p99 is taken first on an identical store
   as the read-path no-regression guard — the stripes must cost readers
   nothing. The >= 2x-at-4-writers criterion is enforced here only when
   the host actually has >= 4 cores (a single-core box time-slices the
   domains and can show no parallel speedup); the absolute SET rates and
   the GET p99 are gated against the committed baseline by trend_gate
   either way. *)

let run_writer_bench () =
  let keyspace = 4096 and value_size = 64 in
  let duration = 0.15 in
  let data = String.make value_size 'x' in
  let prefill store =
    for i = 0 to keyspace - 1 do
      ignore
        (Memcached.Store.set store
           ~key:(Printf.sprintf "key:%06d" i)
           ~flags:0 ~exptime:0 ~data)
    done
  in
  let p99_store =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096 ()
  in
  prefill p99_store;
  let get_p99 =
    get_p99_ns p99_store ~keyspace ~samples:400 ~batch:64 ~until:(fun () -> true)
  in
  let bench writers =
    let store =
      Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096 ()
    in
    prefill store;
    let stop = Atomic.make false in
    let worker w () =
      let mix =
        Rp_workload.Opmix.create ~update_ratio:0.5 ~remove_share:0.0 ~seed:42
          ~worker:w ()
      in
      let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:7) w in
      let sets = ref 0 and gets = ref 0 and errs = ref 0 and misses = ref 0 in
      while not (Atomic.get stop) do
        let k = Rp_workload.Prng.below prng keyspace in
        match Rp_workload.Opmix.next mix with
        | Rp_workload.Opmix.Lookup ->
            (match Memcached.Store.get store (Printf.sprintf "key:%06d" k) with
            | Some _ -> ()
            | None -> incr misses);
            incr gets
        | Rp_workload.Opmix.Insert | Rp_workload.Opmix.Remove ->
            (match
               Memcached.Store.set store
                 ~key:(Printf.sprintf "w%d:%06d" w k)
                 ~flags:0 ~exptime:0 ~data
             with
            | Memcached.Store.Stored -> ()
            | _ -> incr errs);
            incr sets
      done;
      (!sets, !gets, !errs, !misses)
    in
    let t0 = Unix.gettimeofday () in
    let domains = Array.init writers (fun w -> Domain.spawn (worker w)) in
    Unix.sleepf duration;
    Atomic.set stop true;
    let results = Array.map Domain.join domains in
    let elapsed = Unix.gettimeofday () -. t0 in
    let sets = Array.fold_left (fun a (s, _, _, _) -> a + s) 0 results in
    let gets = Array.fold_left (fun a (_, g, _, _) -> a + g) 0 results in
    let errs = Array.fold_left (fun a (_, _, e, _) -> a + e) 0 results in
    let misses = Array.fold_left (fun a (_, _, _, m) -> a + m) 0 results in
    (writers, sets, gets, errs, misses, elapsed)
  in
  let runs = List.map bench [ 1; 2; 4; 8 ] in
  let set_rate w =
    match List.find_opt (fun (n, _, _, _, _, _) -> n = w) runs with
    | Some (_, sets, _, _, _, elapsed) -> float_of_int sets /. elapsed
    | None -> 0.
  in
  let scaling_w4 = if set_rate 1 > 0. then set_rate 4 /. set_rate 1 else 0. in
  let cores = Domain.recommended_domain_count () in
  let errors = List.fold_left (fun a (_, _, _, e, _, _) -> a + e) 0 runs in
  let misses = List.fold_left (fun a (_, _, _, _, m, _) -> a + m) 0 runs in
  let oc = open_out "BENCH_writer.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"writer-scaling\",\n  \"keyspace\": %d,\n  \
     \"value_size\": %d,\n  \"available_cores\": %d,\n  \
     \"get_p99_ns\": %.0f,\n  \"scaling_w4\": %.2f,\n  \"errors\": %d,\n  \
     \"misses\": %d,\n  \"runs\": [\n"
    keyspace value_size cores get_p99 scaling_w4 errors misses;
  List.iteri
    (fun i (w, sets, gets, _, _, elapsed) ->
      Printf.fprintf oc
        "    {\"label\": \"w%d\", \"writers\": %d, \"set_ops\": %d, \
         \"get_ops\": %d, \"elapsed\": %.3f, \"set_ops_s\": %.0f}%s\n"
        w w sets gets elapsed
        (float_of_int sets /. elapsed)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  output_string oc "  ]\n}\n";
  close_out oc;
  List.iter
    (fun (w, sets, gets, _, _, elapsed) ->
      Printf.printf "writer w%d  %8.0f SET ops/s (%d sets, %d gets)\n" w
        (float_of_int sets /. elapsed)
        sets gets)
    runs;
  Printf.printf
    "writer scaling: w4/w1 = %.2fx on %d core(s), GET p99 %.0f ns, report \
     in BENCH_writer.json\n"
    scaling_w4 cores get_p99;
  (* Gates: the mix must run clean everywhere; the 2x-at-4-writers bar
     applies where the hardware can express parallelism at all. *)
  if errors > 0 || misses > 0 then begin
    Printf.printf "writer bench: %d errors, %d misses\n" errors misses;
    exit 1
  end;
  if List.exists (fun (_, sets, _, _, _, _) -> sets = 0) runs then begin
    Printf.printf "writer bench: a run made no SET progress\n";
    exit 1
  end;
  if cores >= 4 && scaling_w4 < 2.0 then begin
    Printf.printf "writer bench: scaling %.2fx at 4 writers < 2x\n" scaling_w4;
    exit 1
  end

(* --- server smoke: pipelined GETs over the wire, both serving planes --- *)

let run_server_bench () =
  let keyspace = 1024 and value_size = 64 in
  let duration = 0.15 and pipeline = 32 and connections = 2 in
  let bench label mode workers =
    let rcu_mode =
      match mode with
      | Memcached.Server.Event_loop -> Memcached.Store.Qsbr
      | Memcached.Server.Threaded -> Memcached.Store.Memb
    in
    let store =
      Memcached.Store.create ~backend:Memcached.Store.Rp ~rcu_mode
        ~initial_size:4096 ()
    in
    let path =
      Printf.sprintf "/tmp/rp-bench-server-%d-%s.sock" (Unix.getpid ()) label
    in
    let config = { Memcached.Server.default_config with mode; workers } in
    let server =
      Memcached.Server.start ~store ~config
        (Memcached.Server.Unix_socket path)
    in
    Fun.protect
      ~finally:(fun () -> Memcached.Server.stop server)
      (fun () ->
        let addr = Memcached.Server.address server in
        Memcached.Mc_benchmark.socket_prefill addr ~keyspace ~value_size;
        let r =
          Memcached.Mc_benchmark.run_socket addr
            {
              Memcached.Mc_benchmark.connections;
              pipeline;
              sduration = duration;
              skeyspace = keyspace;
              svalue_size = value_size;
              sseed = 42;
              sdist = Rp_workload.Keygen.Uniform;
            }
        in
        (label, Memcached.Server.workers server, r))
  in
  let runs =
    [
      bench "event-loop-w1" Memcached.Server.Event_loop 1;
      bench "event-loop-w2" Memcached.Server.Event_loop 2;
      bench "event-loop-w4" Memcached.Server.Event_loop 4;
      bench "threaded" Memcached.Server.Threaded 0;
    ]
  in
  let oc = open_out "BENCH_server.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"server-pipelined-get\",\n  \"pipeline\": %d,\n  \
     \"connections\": %d,\n  \"keyspace\": %d,\n  \"value_size\": %d,\n  \
     \"runs\": [\n"
    pipeline connections keyspace value_size;
  List.iteri
    (fun i (label, workers, (r : Memcached.Mc_benchmark.result)) ->
      Printf.fprintf oc
        "    {\"label\": \"%s\", \"workers\": %d, \"requests\": %d, \
         \"elapsed\": %.3f, \"rps\": %.0f, \"hits\": %d, \"misses\": %d}%s\n"
        label workers r.requests r.elapsed r.requests_per_second r.hits
        r.misses
        (if i = 3 then "" else ","))
    runs;
  output_string oc "  ]\n}\n";
  close_out oc;
  List.iter
    (fun (label, _, (r : Memcached.Mc_benchmark.result)) ->
      Printf.printf "server %-14s %8.0f req/s (%d reqs, %d misses)\n" label
        r.requests_per_second r.requests r.misses)
    runs;
  print_endline "server bench report in BENCH_server.json";
  (* Gate: every pipelined GET must round-trip and hit. *)
  if
    List.exists
      (fun (_, _, (r : Memcached.Mc_benchmark.result)) ->
        r.requests = 0 || r.misses > 0)
      runs
  then exit 1

(* --- guard smoke: GET service level and recovery time under full shed --- *)

let run_guard_bench () =
  let keyspace = 1024 and value_size = 64 in
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096 ()
  in
  let guard = Memcached.Guard.install ~interval:0.005 store in
  (* The storm is simulated at the pressure layer: a bench-driven source
     pins the ladder wherever the measurement needs it, so the numbers
     isolate the guard's cost rather than a load generator's. *)
  let pressure = ref 0.0 in
  Rp_guard.add_source guard ~name:"bench" (fun () -> !pressure);
  let path = Printf.sprintf "/tmp/rp-bench-guard-%d.sock" (Unix.getpid ()) in
  let server =
    Memcached.Server.start ~store (Memcached.Server.Unix_socket path)
  in
  Fun.protect
    ~finally:(fun () ->
      Rp_guard.stop guard;
      Memcached.Server.stop server)
    (fun () ->
      let addr = Memcached.Server.address server in
      Memcached.Mc_benchmark.socket_prefill addr ~keyspace ~value_size;
      Rp_guard.start guard;
      let await st deadline =
        let t0 = Unix.gettimeofday () in
        let rec poll () =
          if Rp_guard.state guard = st then true
          else if Unix.gettimeofday () -. t0 > deadline then false
          else begin
            Thread.yield ();
            poll ()
          end
        in
        poll ()
      in
      pressure := 0.90;
      if not (await Rp_guard.Shed 2.0) then begin
        Printf.printf "guard bench: ladder never reached Shed\n";
        exit 1
      end;
      (* Mutations at full shed: every one must come back as an
         overloaded fast-fail, not an ack and not a hang. *)
      let c = Memcached.Client.connect addr in
      let sheds = ref 0 in
      for i = 0 to 255 do
        match
          Memcached.Client.try_set c
            ~key:(Printf.sprintf "shed:%d" i)
            ~data:"x" ()
        with
        | `Overloaded _ -> incr sheds
        | `Stored | `Not_stored -> ()
      done;
      Memcached.Client.close c;
      (* The service level that matters under overload: pipelined GETs
         while the guard sheds everything else. *)
      let r =
        Memcached.Mc_benchmark.run_socket addr
          {
            Memcached.Mc_benchmark.connections = 2;
            pipeline = 32;
            sduration = 0.15;
            skeyspace = keyspace;
            svalue_size = value_size;
            sseed = 42;
            sdist = Rp_workload.Keygen.Uniform;
          }
      in
      (* Time-to-recover: pressure vanishes; how long until Healthy. *)
      let t0 = Unix.gettimeofday () in
      pressure := 0.0;
      let recovered = await Rp_guard.Healthy 2.0 in
      let recover_ms = (Unix.gettimeofday () -. t0) *. 1000. in
      if not recovered then begin
        Printf.printf "guard bench: ladder never recovered to Healthy\n";
        exit 1
      end;
      let oc = open_out "BENCH_guard.json" in
      Printf.fprintf oc
        "{\n  \"benchmark\": \"guard\",\n  \"keyspace\": %d,\n  \
         \"value_size\": %d,\n  \"shed_get_rps\": %.0f,\n  \
         \"get_requests\": %d,\n  \"get_misses\": %d,\n  \
         \"shed_total\": %d,\n  \"shed_attempts\": 256,\n  \
         \"recover_ms\": %.2f,\n  \"transitions\": %d\n}\n"
        keyspace value_size r.Memcached.Mc_benchmark.requests_per_second
        r.Memcached.Mc_benchmark.requests r.Memcached.Mc_benchmark.misses
        (Rp_guard.shed_total guard)
        recover_ms (Rp_guard.transitions guard);
      close_out oc;
      Printf.printf
        "guard: %8.0f GET req/s at full shed (%d reqs, %d misses), %d/256 \
         sets shed, recovered in %.1f ms, report in BENCH_guard.json\n"
        r.Memcached.Mc_benchmark.requests_per_second
        r.Memcached.Mc_benchmark.requests r.Memcached.Mc_benchmark.misses
        !sheds recover_ms;
      (* Gate: shedding must actually have happened, and GETs survived. *)
      if !sheds = 0 || r.Memcached.Mc_benchmark.misses > 0 then exit 1)

(* --- cluster smoke: replication catch-up rate and live apply lag --- *)

let run_cluster_bench () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-bench-cluster-%d" (Unix.getpid ()))
  in
  rm_rf dir;
  let catchup_records = 20_000 and live_records = 4_000 and value_size = 128 in
  let data = String.make value_size 'x' in
  let fresh_store () =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096 ()
  in
  let leader = fresh_store () in
  let p =
    Memcached.Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Never ~dir
      leader
  in
  (* The backlog the follower must replay: written (and logged) before
     the follower exists, so its delivery is pure op-log catch-up. *)
  for i = 0 to catchup_records - 1 do
    ignore
      (Memcached.Store.set leader
         ~key:(Printf.sprintf "key:%06d" i)
         ~flags:0 ~exptime:0 ~data)
  done;
  let cl =
    Memcached.Cluster.lead ~store:leader ~persist:p
      (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  let follower = fresh_store () in
  let t0 = Unix.gettimeofday () in
  let cf =
    Memcached.Cluster.follow ~store:follower
      ~leader:
        (Unix.ADDR_INET
           (Unix.inet_addr_loopback, Memcached.Cluster.repl_port cl))
      ()
  in
  (* Stream order is log order, so once a phase's last key is visible the
     whole phase has been applied. *)
  let await key deadline =
    let t = Unix.gettimeofday () in
    let rec poll () =
      if Memcached.Store.get follower key <> None then true
      else if Unix.gettimeofday () -. t > deadline then false
      else begin
        Thread.yield ();
        poll ()
      end
    in
    poll ()
  in
  if not (await (Printf.sprintf "key:%06d" (catchup_records - 1)) 30.0)
  then begin
    Printf.printf "cluster bench: follower never caught up\n";
    exit 1
  end;
  let catchup_s = Unix.gettimeofday () -. t0 in
  let catchup_ops_per_s = float_of_int catchup_records /. catchup_s in
  (* Live phase: records published through the tap carry their send
     timestamp, and the follower's apply-lag histogram measures
     publish -> apply. *)
  for i = 0 to live_records - 1 do
    ignore
      (Memcached.Store.set leader
         ~key:(Printf.sprintf "live:%06d" i)
         ~flags:0 ~exptime:0 ~data)
  done;
  if not (await (Printf.sprintf "live:%06d" (live_records - 1)) 30.0)
  then begin
    Printf.printf "cluster bench: live stream never drained\n";
    exit 1
  end;
  let stats = Memcached.Store.cluster_stats follower in
  let stat name =
    match List.assoc_opt name stats with Some v -> v | None -> "0"
  in
  (* The replica oracle: every record the leader acked must be readable
     on the follower (gated Exact_zero by the trend lane). *)
  let missing = ref 0 in
  for i = 0 to catchup_records - 1 do
    if Memcached.Store.get follower (Printf.sprintf "key:%06d" i) = None then
      incr missing
  done;
  for i = 0 to live_records - 1 do
    if Memcached.Store.get follower (Printf.sprintf "live:%06d" i) = None then
      incr missing
  done;
  Memcached.Cluster.stop cf;
  Memcached.Cluster.stop cl;
  Memcached.Persist.stop p;
  let oc = open_out "BENCH_cluster.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"cluster\",\n  \"catchup_records\": %d,\n  \
     \"live_records\": %d,\n  \"value_size\": %d,\n  \
     \"catchup_ops_per_s\": %.0f,\n  \"apply_lag_us_p50\": %s,\n  \
     \"apply_lag_us_p99\": %s,\n  \"follower_missing\": %d\n}\n"
    catchup_records live_records value_size catchup_ops_per_s
    (stat "cluster_apply_lag_us_p50")
    (stat "cluster_apply_lag_us_p99")
    !missing;
  close_out oc;
  Printf.printf
    "cluster: catch-up %8.0f ops/s (%d records in %.0f ms), live apply \
     lag p99 %s us, %d missing, report in BENCH_cluster.json\n"
    catchup_ops_per_s catchup_records (catchup_s *. 1e3)
    (stat "cluster_apply_lag_us_p99")
    !missing;
  if !missing > 0 then exit 1

(* --- tier smoke: hot-path tax, cold-hit service, demote throughput ---

   Working set ~4x the memory budget, so with the tier attached roughly
   three quarters of the keys can only live as cold markers. Three
   claims are measured and gated:

   - the hot path is free: GET p99 over a RAM-resident key range with
     the tier attached must stay within 1.15x of the same store with no
     tier (best of 5 interleaved rounds each, enforced here, not just
     by trend);
   - no hard misses: with the tier on, {e every} key of the oversized
     working set must be readable — demoted values come back via the
     promote path, nothing is silently dropped;
   - cold service is real: full-keyspace scan throughput (mostly cold
     hits, each a positioned read + promote + counter-demotion) and the
     demote rate of the spill phase are reported and trend-gated, plus a
     Zipfian (theta 0.99) GET phase whose hot head stays in RAM. *)

let run_tier_bench () =
  let tier_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-bench-tier-%d" (Unix.getpid ()))
  in
  rm_rf tier_dir;
  let keyspace = 8192 and value_size = 1024 in
  let budget = 2 * 1024 * 1024 in
  let key i = Printf.sprintf "key:%06d" i in
  let data = String.make value_size 'x' in
  let make_store () =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~max_bytes:budget
      ~initial_size:4096 ()
  in
  (* Hot range: the most recently written tail, comfortably inside the
     budget on both stores — small enough that hot values plus the cold
     markers for the rest of the keyspace leave real headroom, or
     promotes during measurement evict other hot keys and the range
     churns forever. *)
  let hot_n = 512 in
  let hot_base = keyspace - hot_n in
  let p99_hot store =
    (* Value copy-outs allocate ~10MB per call, enough to phase-lock
       major GC cycles onto whichever store is measured in a given slot;
       collecting first puts both measurements at the same GC phase. *)
    Gc.full_major ();
    let samples = 300 and batch = 32 in
    let lat = Array.make samples 0.0 in
    let k = ref 0 in
    for i = 0 to samples - 1 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do
        k := (!k + 1) land (hot_n - 1);
        ignore (Memcached.Store.get store (key (hot_base + !k)))
      done;
      let t1 = Unix.gettimeofday () in
      lat.(i) <- (t1 -. t0) /. float_of_int batch *. 1e9
    done;
    Array.sort compare lat;
    lat.(int_of_float (0.99 *. float_of_int samples))
  in
  let prefill store =
    let t0 = Unix.gettimeofday () in
    for i = 0 to keyspace - 1 do
      ignore (Memcached.Store.set store ~key:(key i) ~flags:0 ~exptime:0 ~data)
    done;
    Unix.gettimeofday () -. t0
  in
  (* Pass A: no tier — eviction drops the overflow on the floor. *)
  let store_off = make_store () in
  ignore (prefill store_off);
  (* Pass B: tier attached — the same overflow spills to disk. *)
  let store_on = make_store () in
  let tier =
    match Memcached.Tier.attach ~dir:tier_dir ~max_mb:64 store_on with
    | Ok t -> t
    | Error e ->
        Printf.printf "tier bench: attach failed: %s\n" e;
        exit 1
  in
  let spill_elapsed = prefill store_on in
  let demotions_spill = Memcached.Store.tier_demotions store_on in
  let demote_rps = float_of_int demotions_spill /. spill_elapsed in
  (* Warm the hot range until a full pass promotes nothing — only then
     is every hot key RAM-resident and the measurement exercises the
     fast path, not the disk. Then let compaction drain: the tax under
     measure is the attached tier's cost on the RAM fast path, not a
     racing segment copy's CPU steal on a small box. *)
  let rec warm rounds =
    let before = Memcached.Store.tier_promotions store_on in
    for i = hot_base to keyspace - 1 do
      ignore (Memcached.Store.get store_on (key i))
    done;
    if Memcached.Store.tier_promotions store_on > before && rounds < 20 then
      warm (rounds + 1)
  in
  warm 0;
  while Memcached.Tier.compact_once tier do
    ()
  done;
  (* Interleaved best-of-N: alternating off/on rounds see the same GC
     heap and scheduler weather, so the ratio compares stores, not
     moments. A single re-measure on a blown budget keeps one unlucky
     pairing of mins (the per-round p99 jitters ~30% on a loaded CI
     box) from failing a gate about the code path. *)
  let p99_off = ref infinity and p99_on = ref infinity in
  let measure () =
    for round = 1 to 8 do
      ignore round;
      p99_off := Float.min !p99_off (p99_hot store_off);
      p99_on := Float.min !p99_on (p99_hot store_on)
    done
  in
  measure ();
  if !p99_on /. !p99_off > 1.15 then measure ();
  let p99_off = !p99_off and p99_on = !p99_on in
  let ratio = p99_on /. p99_off in
  (* Full-keyspace scan: mostly cold hits; every key must come back. *)
  let hard_misses = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to keyspace - 1 do
    match Memcached.Store.get store_on (key i) with
    | Some v when String.length v.Memcached.Protocol.vdata = value_size -> ()
    | Some _ | None -> incr hard_misses
  done;
  let scan_elapsed = Unix.gettimeofday () -. t0 in
  let cold_hit_rps = float_of_int keyspace /. scan_elapsed in
  (* Zipfian GETs: the skew that gives a tiered store its hot set. *)
  let zipf_get_rps =
    let keygen =
      Rp_workload.Keygen.create ~dist:(Rp_workload.Keygen.Zipfian 0.99)
        ~keyspace ~seed:42 ~worker:0 ()
    in
    let t0 = Unix.gettimeofday () in
    let deadline = t0 +. 0.3 in
    let ops = ref 0 in
    while Unix.gettimeofday () < deadline do
      for _ = 1 to 64 do
        ignore
          (Memcached.Store.get store_on
             (key (Rp_workload.Keygen.next_key keygen)))
      done;
      ops := !ops + 64
    done;
    float_of_int !ops /. (Unix.gettimeofday () -. t0)
  in
  let promotions = Memcached.Store.tier_promotions store_on in
  let demotions = Memcached.Store.tier_demotions store_on in
  Memcached.Tier.stop tier;
  rm_rf tier_dir;
  let oc = open_out "BENCH_tier.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"tier\",\n  \"keyspace\": %d,\n  \
     \"value_size\": %d,\n  \"budget_bytes\": %d,\n  \
     \"hot_p99_off_ns\": %.0f,\n  \"hot_p99_on_ns\": %.0f,\n  \
     \"hot_p99_ratio\": %.3f,\n  \"cold_hit_rps\": %.0f,\n  \
     \"demote_rps\": %.0f,\n  \"zipf_get_rps\": %.0f,\n  \
     \"hard_misses\": %d,\n  \"tier_demotions\": %d,\n  \
     \"tier_promotions\": %d\n}\n"
    keyspace value_size budget p99_off p99_on ratio cold_hit_rps demote_rps
    zipf_get_rps !hard_misses demotions promotions;
  close_out oc;
  Printf.printf
    "tier:    hot GET p99 %.0f -> %.0f ns (%.2fx), cold scan %.0f req/s, \
     demote %.0f/s, zipf %.0f req/s, %d hard misses, report in \
     BENCH_tier.json\n"
    p99_off p99_on ratio cold_hit_rps demote_rps zipf_get_rps !hard_misses;
  if !hard_misses > 0 then begin
    Printf.printf "tier bench: %d demoted keys were unreadable\n" !hard_misses;
    exit 1
  end;
  if ratio > 1.15 then begin
    Printf.printf "tier bench: hot-path tax %.2fx exceeds the 1.15x budget\n"
      ratio;
    exit 1
  end;
  if demotions_spill = 0 || promotions = 0 then begin
    Printf.printf "tier bench: tier was never exercised (%d demotions, %d \
                   promotions)\n"
      demotions_spill promotions;
    exit 1
  end

(* --- workload-insight (heat) bench: the skewed-traffic lane ----------
   What it gates:
   - the insight plane is cheap: GET p99 with --heat-topk 64 on vs off
     stays within the same 1.15x budget every other plane honors
     (in-process gate, plus the ratio is trend-gated);
   - the sketch is honest: after a 50/50 GET/SET mix drawn from
     Zipf(0.99), the merged Space-Saving top-1 hit share must land
     within 10% of the analytic Zipfian top-1 probability;
   - exposition agrees: the hottest key reported by the sketch appears
     in 'stats heat', the Prometheus families, and the /heat JSON. *)

let run_heat_bench () =
  let keyspace = 8192 and value_size = 64 in
  let key = Rp_workload.Keygen.string_key in
  let data = String.make value_size 'x' in
  let make_store ~heat_topk () =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~initial_size:4096
      ~heat_topk ()
  in
  let prefill store =
    for i = 0 to keyspace - 1 do
      ignore (Memcached.Store.set store ~key:(key i) ~flags:0 ~exptime:0 ~data)
    done
  in
  let store_off = make_store ~heat_topk:0 () in
  let store_on = make_store ~heat_topk:64 () in
  prefill store_off;
  prefill store_on;
  (* Both sides replay the identical precomputed Zipfian key sequence,
     so the ratio compares the sketch tax, not sampler noise. *)
  let zkeys =
    let kg =
      Rp_workload.Keygen.create ~dist:(Rp_workload.Keygen.Zipfian 0.99)
        ~keyspace ~seed:7 ~worker:0 ()
    in
    Array.init 4096 (fun _ ->
        key (Rp_workload.Keygen.next_key kg))
  in
  let p99_get store =
    Gc.full_major ();
    let samples = 300 and batch = 32 in
    let lat = Array.make samples 0.0 in
    let k = ref 0 in
    for i = 0 to samples - 1 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do
        k := (!k + 1) land (Array.length zkeys - 1);
        ignore (Memcached.Store.get store zkeys.(!k))
      done;
      let t1 = Unix.gettimeofday () in
      lat.(i) <- (t1 -. t0) /. float_of_int batch *. 1e9
    done;
    Array.sort compare lat;
    lat.(int_of_float (0.99 *. float_of_int samples))
  in
  (* Warm both sides to steady state first: the gate prices the
     sketch's steady-state tax, not its first-touch slot allocation and
     top-k ramp-up (a few thousand records). *)
  let warm store =
    for pass = 1 to 4 do
      ignore pass;
      Array.iter (fun k -> ignore (Memcached.Store.get store k)) zkeys
    done
  in
  warm store_off;
  warm store_on;
  (* Best-of-N batch p99 per side, for the trend report. *)
  let p99_off = ref infinity and p99_on = ref infinity in
  for round = 1 to 4 do
    ignore round;
    p99_off := Float.min !p99_off (p99_get store_off);
    p99_on := Float.min !p99_on (p99_get store_on)
  done;
  let p99_off = !p99_off and p99_on = !p99_on in
  (* The gated ratio mirrors test_obs's read-overhead guard: mean cost
     over a long run, minimum of interleaved rounds (the robust
     estimator under scheduler noise — batch p99 is far too jittery to
     gate on), with one re-measure on a blown budget. *)
  let mean_get store =
    Gc.full_major ();
    let iters = 200_000 in
    let t0 = Unix.gettimeofday () in
    for i = 0 to iters - 1 do
      ignore (Memcached.Store.get store zkeys.(i land (Array.length zkeys - 1)))
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e9
  in
  let mean_off = ref infinity and mean_on = ref infinity in
  let measure () =
    for round = 1 to 7 do
      ignore round;
      mean_on := Float.min !mean_on (mean_get store_on);
      mean_off := Float.min !mean_off (mean_get store_off)
    done
  in
  measure ();
  if !mean_on /. !mean_off > 1.15 then measure ();
  let ratio = !mean_on /. !mean_off in
  (* The 50/50 GET/SET mix under Zipf(0.99): the workload the plane
     exists to describe. *)
  let keygen =
    Rp_workload.Keygen.create ~dist:(Rp_workload.Keygen.Zipfian 0.99)
      ~keyspace ~seed:42 ~worker:0 ()
  in
  let prng = Rp_workload.Keygen.prng keygen in
  let misses = ref 0 in
  let gets = ref 0 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. 0.4 in
  let elapsed = ref 0.0 in
  while Unix.gettimeofday () < deadline do
    for _ = 1 to 64 do
      let k = key (Rp_workload.Keygen.next_key keygen) in
      if Rp_workload.Prng.float prng < 0.5 then
        ignore (Memcached.Store.set store_on ~key:k ~flags:0 ~exptime:0 ~data)
      else begin
        incr gets;
        match Memcached.Store.get store_on k with
        | Some _ -> ()
        | None -> incr misses
      end
    done;
    elapsed := Unix.gettimeofday () -. t0
  done;
  let get_rps = float_of_int !gets /. !elapsed in
  (* Sketch-reported vs analytic top-1 share. *)
  let heat =
    match Memcached.Store.heat store_on with
    | Some h -> h
    | None ->
        Printf.printf "heat bench: store_on has no heat plane\n";
        exit 1
  in
  let hits = Rp_heat.hits heat in
  let top =
    match Rp_heat.Sketch.top ~n:1 hits with
    | e :: _ -> e
    | [] ->
        Printf.printf "heat bench: hits sketch is empty\n";
        exit 1
  in
  (* Share in raw sampled units (count and total scale identically);
     the reported tracked_hits is scaled back to stream units. *)
  let share = float_of_int top.Rp_heat.Sketch.count
              /. float_of_int (Rp_heat.Sketch.total hits) in
  let tracked = Rp_heat.Sketch.total hits * Rp_heat.sample_every heat in
  let analytic =
    Rp_workload.Zipf.pmf (Rp_workload.Zipf.create ~theta:0.99 ~n:keyspace ()) 0
  in
  let share_err = Float.abs (share -. analytic) /. analytic in
  (* The hottest key must surface identically everywhere. *)
  let topkey = top.Rp_heat.Sketch.key in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn > 0 && go 0
  in
  let in_stats =
    List.assoc_opt "heat_top_hits_0_key" (Memcached.Store.heat_stats store_on)
    = Some topkey
  in
  let in_prom =
    contains
      (Rp_obs.Registry.to_prometheus (Memcached.Store.registry store_on))
      (Printf.sprintf "heat_topk_hits{key=%S}" topkey)
  in
  let in_json = contains (Memcached.Store.heat_json store_on) topkey in
  let oc = open_out "BENCH_heat.json" in
  Printf.fprintf oc
    "{\n  \"benchmark\": \"heat\",\n  \"keyspace\": %d,\n  \
     \"value_size\": %d,\n  \"get_rps\": %.0f,\n  \
     \"get_p99_off_ns\": %.0f,\n  \"get_p99_ns\": %.0f,\n  \
     \"heat_get_ratio\": %.3f,\n  \"top1_key\": \"%s\",\n  \
     \"top1_share_sketch\": %.5f,\n  \"top1_share_analytic\": %.5f,\n  \
     \"top1_share_err\": %.4f,\n  \"tracked_hits\": %d,\n  \
     \"misses\": %d\n}\n"
    keyspace value_size get_rps p99_off p99_on ratio topkey share analytic
    share_err tracked !misses;
  close_out oc;
  Printf.printf
    "heat:    GET p99 %.0f -> %.0f ns, mean tax %.2fx, mixed zipf %.0f \
     get/s, top-1 %s share %.4f vs %.4f analytic (err %.1f%%), report in \
     BENCH_heat.json\n"
    p99_off p99_on ratio get_rps topkey share analytic (share_err *. 100.);
  if !misses > 0 then begin
    Printf.printf "heat bench: %d GET misses on a prefilled keyspace\n" !misses;
    exit 1
  end;
  if ratio > 1.15 then begin
    Printf.printf "heat bench: sketch tax %.2fx exceeds the 1.15x budget\n"
      ratio;
    exit 1
  end;
  if share_err > 0.10 then begin
    Printf.printf
      "heat bench: top-1 share %.4f is %.1f%% off the analytic %.4f (>10%%)\n"
      share (share_err *. 100.) analytic;
    exit 1
  end;
  if not (in_stats && in_prom && in_json) then begin
    Printf.printf
      "heat bench: top key %s missing from a surface (stats %b, prometheus \
       %b, json %b)\n"
      topkey in_stats in_prom in_json;
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let micro_only = List.mem "--micro-only" args in
  let figures_only = List.mem "--figures-only" args in
  if List.mem "--smoke" args then begin
    run_smoke ();
    run_persist_bench ();
    run_writer_bench ();
    run_server_bench ();
    run_guard_bench ();
    run_cluster_bench ();
    run_tier_bench ();
    run_heat_bench ()
  end
  else if List.mem "--heat-only" args then run_heat_bench ()
  else begin
  let options =
    if quick then Rp_figures.Figures.quick_options
    else Rp_figures.Figures.default_options
  in
  let csv_dir = "bench_results" in
  (try Unix.mkdir csv_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let options = { options with Rp_figures.Figures.csv_dir = Some csv_dir } in
  if not figures_only then run_micro ~quota:(if quick then 0.1 else 0.5);
  if not micro_only then begin
    Rp_figures.Figures.run_all options;
    if not quick then Rp_figures.Ablations.run_all ();
    Printf.printf "\nCSV series written under %s/\n" csv_dir
  end
  end
