(* Trend gate CLI: compare fresh BENCH_*.json reports against committed
   baselines and exit non-zero on any gated regression. Driven by the
   @bench-smoke alias; usage:

     trend_gate <baseline.json> <fresh.json> [<baseline> <fresh> ...]

   Each report names its own benchmark ("benchmark" field), which selects
   the committed rule set (Rp_harness.Trend.rules_for). *)

open Rp_harness

let rec pairs = function
  | [] -> []
  | b :: f :: rest -> (b, f) :: pairs rest
  | [ _ ] ->
      prerr_endline "usage: trend_gate <baseline.json> <fresh.json> ...";
      exit 2

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  if argv = [] then begin
    prerr_endline "usage: trend_gate <baseline.json> <fresh.json> ...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun (baseline_path, fresh_path) ->
      let baseline = Trend.parse_file baseline_path in
      let fresh = Trend.parse_file fresh_path in
      let name = Trend.benchmark_name baseline in
      let rules = Trend.rules_for name in
      match Trend.gate ~rules ~baseline ~fresh with
      | [] ->
          Printf.printf "trend gate %-22s ok (%d rules, baseline %s)\n" name
            (List.length rules) baseline_path
      | failures ->
          failed := true;
          Printf.printf "trend gate %-22s FAILED:\n%s\n" name
            (Trend.report_failures failures))
    (pairs argv);
  if !failed then exit 1
