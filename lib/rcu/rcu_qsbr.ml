(* Slot protocol: ctr = 0 means offline (extended quiescent state);
   otherwise ctr holds the last global counter value this thread observed at
   a quiescent state. synchronize bumps the global counter to E and waits
   per slot for ctr = 0 or ctr >= E — i.e. a quiescent state announced after
   the grace period began. *)

type slot = {
  ctr : int Atomic.t;
  in_use : bool Atomic.t;
  mutable owner : int;
  mutable nesting : int;
  mutable sections : int;  (* completed outermost read sections *)
}

type thread = { slot : slot; gp : int Atomic.t }

type t = {
  gp : int Atomic.t;
  slots : slot array;
  reg_mutex : Mutex.t;
  gp_mutex : Mutex.t;
  dls : thread option Domain.DLS.key;
  gp_count : int Atomic.t;
}

let create ?(max_threads = 128) () =
  if max_threads < 1 then invalid_arg "Rcu_qsbr.create: max_threads < 1";
  {
    gp = Atomic.make 1;
    slots =
      Array.init max_threads (fun _ ->
          {
            ctr = Atomic.make 0;
            in_use = Atomic.make false;
            owner = -1;
            nesting = 0;
            sections = 0;
          });
    reg_mutex = Mutex.create ();
    gp_mutex = Mutex.create ();
    dls = Domain.DLS.new_key (fun () -> None);
    gp_count = Atomic.make 0;
  }

let register t =
  Mutex.lock t.reg_mutex;
  let rec find i =
    if i >= Array.length t.slots then begin
      Mutex.unlock t.reg_mutex;
      failwith "Rcu_qsbr.register: thread slots exhausted"
    end
    else if not (Atomic.get t.slots.(i).in_use) then i
    else find (i + 1)
  in
  let slot = t.slots.(find 0) in
  slot.owner <- (Domain.self () :> int);
  slot.nesting <- 0;
  (* Born online and quiescent as of now. *)
  Atomic.set slot.ctr (Atomic.get t.gp);
  Atomic.set slot.in_use true;
  Mutex.unlock t.reg_mutex;
  { slot; gp = t.gp }

let unregister t th =
  if th.slot.nesting <> 0 then
    invalid_arg "Rcu_qsbr.unregister: thread inside a critical section";
  (match Domain.DLS.get t.dls with
  | Some cached when cached.slot == th.slot -> Domain.DLS.set t.dls None
  | Some _ | None -> ());
  Mutex.lock t.reg_mutex;
  Atomic.set th.slot.ctr 0;
  th.slot.owner <- -1;
  Atomic.set th.slot.in_use false;
  Mutex.unlock t.reg_mutex

let thread_for_current_domain t =
  match Domain.DLS.get t.dls with
  | Some th -> th
  | None ->
      let th = register t in
      Domain.DLS.set t.dls (Some th);
      th

let registered_threads t =
  Array.fold_left
    (fun acc slot -> if Atomic.get slot.in_use then acc + 1 else acc)
    0 t.slots

let is_online th = Atomic.get th.slot.ctr <> 0

let read_lock th =
  if not (is_online th) then
    invalid_arg "Rcu_qsbr.read_lock: thread is offline";
  th.slot.nesting <- th.slot.nesting + 1

let read_unlock th =
  if th.slot.nesting <= 0 then
    invalid_arg "Rcu_qsbr.read_unlock: not in a critical section";
  th.slot.nesting <- th.slot.nesting - 1

let quiescent_state th =
  if th.slot.nesting <> 0 then
    invalid_arg "Rcu_qsbr.quiescent_state: inside a critical section";
  Atomic.set th.slot.ctr (Atomic.get th.gp)

let offline th =
  if th.slot.nesting <> 0 then
    invalid_arg "Rcu_qsbr.offline: inside a critical section";
  Atomic.set th.slot.ctr 0

let online th = Atomic.set th.slot.ctr (Atomic.get th.gp)

let k_gp = Rp_trace.intern "qsbr.gp"

let synchronize t =
  (* The calling thread, if registered, holds no references (precondition:
     outside any read section) — take it offline for the duration so that
     concurrent synchronize callers blocked on the mutex don't stall each
     other's grace periods (the classic QSBR deadlock). *)
  let gp_span = Rp_trace.span_begin k_gp in
  let self_was_online =
    match Domain.DLS.get t.dls with
    | Some th when is_online th ->
        if th.slot.nesting <> 0 then
          invalid_arg "Rcu_qsbr.synchronize: called from within a critical section";
        offline th;
        Some th
    | Some _ | None -> None
  in
  Mutex.lock t.gp_mutex;
  let new_gp = 1 + Atomic.fetch_and_add t.gp 1 in
  Array.iter
    (fun slot ->
      if Atomic.get slot.in_use then begin
        let backoff = Rp_sync.Backoff.create ~max_wait:256 () in
        let rec wait () =
          let c = Atomic.get slot.ctr in
          if c <> 0 && c < new_gp then begin
            Rp_sync.Backoff.once backoff;
            wait ()
          end
        in
        wait ()
      end)
    t.slots;
  Atomic.incr t.gp_count;
  Mutex.unlock t.gp_mutex;
  Rp_trace.span_end ~arg:new_gp k_gp gp_span;
  match self_was_online with Some th -> online th | None -> ()

let grace_periods t = Atomic.get t.gp_count

let in_critical_section th = th.slot.nesting > 0

let read_unlock_auto ~mask th =
  let slot = th.slot in
  if slot.nesting <= 0 then
    invalid_arg "Rcu_qsbr.read_unlock: not in a critical section";
  slot.nesting <- slot.nesting - 1;
  if slot.nesting = 0 then begin
    slot.sections <- slot.sections + 1;
    if slot.sections land mask = 0 then Atomic.set slot.ctr (Atomic.get th.gp)
  end
