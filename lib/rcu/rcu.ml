(* Epoch-based userspace RCU ("memb" flavour).

   Reader slot protocol: ctr = 0 when quiescent, otherwise the global epoch
   value observed at the outermost read_lock. synchronize advances the epoch
   to E and waits, per slot, for ctr = 0 or ctr >= E. Under OCaml's seq_cst
   atomics this single advance is a full grace period: if synchronize's scan
   reads ctr = 0 for a slot, that slot's next read_lock stores an epoch value
   loaded after our epoch increment, hence >= E, and every write made before
   synchronize began (e.g. an unlink) is visible inside that later critical
   section. *)

type slot = {
  ctr : int Atomic.t;
  in_use : bool Atomic.t;
  mutable owner : int;  (* domain id, meaningful while in_use *)
  mutable nesting : int;  (* touched only by the owning domain *)
}

type reader = { slot : slot; epoch : int Atomic.t }

exception Too_many_readers

type stats = {
  grace_periods : int;
  synchronize_calls : int;
  callbacks_invoked : int;
  readers_registered : int;
}

type stall_report = {
  slot_index : int;
  owner_domain : int;
  nesting : int;
  slot_epoch : int;
  target_epoch : int;
  waited : float;
}

type t = {
  epoch : int Atomic.t;
  slots : slot array;
  reg_mutex : Mutex.t;
  gp_mutex : Mutex.t;
  dls : reader option Domain.DLS.key;
  cb_mutex : Mutex.t;
  cb_queue : (unit -> unit) Queue.t;
  cb_threshold : int;
  gp_count : int Atomic.t;
  sync_count : int Atomic.t;
  cb_count : int Atomic.t;
  mutable stall_budget : float option;
  mutable stall_handler : (stall_report -> unit) option;
  stall_count : int Atomic.t;
  mutable last_stall : stall_report option;
  gp_hist : Rp_obs.Histogram.t;  (* grace-period latency, ns *)
}

let create ?(max_readers = 128) ?stall_budget () =
  if max_readers < 1 then invalid_arg "Rcu.create: max_readers < 1";
  {
    epoch = Atomic.make 1;
    slots =
      Array.init max_readers (fun _ ->
          {
            ctr = Atomic.make 0;
            in_use = Atomic.make false;
            owner = -1;
            nesting = 0;
          });
    reg_mutex = Mutex.create ();
    gp_mutex = Mutex.create ();
    dls = Domain.DLS.new_key (fun () -> None);
    cb_mutex = Mutex.create ();
    cb_queue = Queue.create ();
    cb_threshold = 64;
    gp_count = Atomic.make 0;
    sync_count = Atomic.make 0;
    cb_count = Atomic.make 0;
    stall_budget;
    stall_handler = None;
    stall_count = Atomic.make 0;
    last_stall = None;
    gp_hist = Rp_obs.Histogram.create ();
  }

(* --- registration --- *)

let register t =
  Mutex.lock t.reg_mutex;
  let rec find i =
    if i >= Array.length t.slots then begin
      Mutex.unlock t.reg_mutex;
      raise Too_many_readers
    end
    else if not (Atomic.get t.slots.(i).in_use) then i
    else find (i + 1)
  in
  let i = find 0 in
  let slot = t.slots.(i) in
  slot.owner <- (Domain.self () :> int);
  slot.nesting <- 0;
  Atomic.set slot.ctr 0;
  Atomic.set slot.in_use true;
  Mutex.unlock t.reg_mutex;
  { slot; epoch = t.epoch }

let unregister t r =
  if r.slot.nesting <> 0 then
    invalid_arg "Rcu.unregister: reader inside a critical section";
  (match Domain.DLS.get t.dls with
  | Some cached when cached.slot == r.slot -> Domain.DLS.set t.dls None
  | Some _ | None -> ());
  Mutex.lock t.reg_mutex;
  Atomic.set r.slot.ctr 0;
  r.slot.owner <- -1;
  Atomic.set r.slot.in_use false;
  Mutex.unlock t.reg_mutex

let reader_for_current_domain t =
  match Domain.DLS.get t.dls with
  | Some r -> r
  | None ->
      let r = register t in
      Domain.DLS.set t.dls (Some r);
      r

let registered_readers t =
  Array.fold_left
    (fun acc slot -> if Atomic.get slot.in_use then acc + 1 else acc)
    0 t.slots

(* --- read-side critical sections --- *)

let read_lock r =
  let slot = r.slot in
  if slot.nesting = 0 then Atomic.set slot.ctr (Atomic.get r.epoch);
  slot.nesting <- slot.nesting + 1

let read_unlock r =
  let slot = r.slot in
  if slot.nesting <= 0 then invalid_arg "Rcu.read_unlock: not in a critical section";
  slot.nesting <- slot.nesting - 1;
  if slot.nesting = 0 then Atomic.set slot.ctr 0

let with_read r f =
  read_lock r;
  match f () with
  | v ->
      read_unlock r;
      v
  | exception e ->
      read_unlock r;
      raise e

let read_lock_current t = read_lock (reader_for_current_domain t)
let read_unlock_current t = read_unlock (reader_for_current_domain t)
let with_read_current t f = with_read (reader_for_current_domain t) f
let in_critical_section r = r.slot.nesting > 0

(* --- publication --- *)

let publish cell v = Atomic.set cell v
let dereference cell = Atomic.get cell

(* --- grace periods --- *)

let check_not_reading t =
  let self = (Domain.self () :> int) in
  Array.iter
    (fun slot ->
      if Atomic.get slot.in_use && slot.owner = self && Atomic.get slot.ctr <> 0
      then
        invalid_arg "Rcu.synchronize: called from within a read-side critical section")
    t.slots

(* Watchdog: called from the scan's wait loop once the per-slot wait
   exceeds the budget. Reports once per slot per grace period (like Linux
   RCU CPU-stall warnings, minus the repeat timer). [nesting] is owned by
   the stuck reader's domain; the racy read is fine for diagnostics. *)
let report_stall t ~slot_index ~slot ~slot_epoch ~target_epoch ~waited =
  let report =
    {
      slot_index;
      owner_domain = slot.owner;
      nesting = slot.nesting;
      slot_epoch;
      target_epoch;
      waited;
    }
  in
  t.last_stall <- Some report;
  Atomic.incr t.stall_count;
  Rp_trace.instant ~arg:slot_index (Rp_trace.intern "rcu.stall");
  match t.stall_handler with
  | Some f -> ( try f report with _ -> ())
  | None -> ()

let scan_slots t ~new_epoch =
  Array.iteri
    (fun i slot ->
      if Atomic.get slot.in_use then begin
        Rp_fault.point "rcu.synchronize.scan";
        let backoff = Rp_sync.Backoff.create ~max_wait:256 () in
        let started = ref 0.0 in
        let reported = ref false in
        let rec wait () =
          let c = Atomic.get slot.ctr in
          if c <> 0 && c < new_epoch then begin
            (match t.stall_budget with
            | Some budget when not !reported ->
                let now = Unix.gettimeofday () in
                if !started = 0.0 then started := now
                else if now -. !started >= budget then begin
                  reported := true;
                  report_stall t ~slot_index:i ~slot ~slot_epoch:c
                    ~target_epoch:new_epoch ~waited:(now -. !started)
                end
            | Some _ | None -> ());
            Rp_sync.Backoff.once backoff;
            wait ()
          end
        in
        wait ()
      end)
    t.slots

let k_gp = Rp_trace.intern "rcu.gp"

let synchronize t =
  check_not_reading t;
  Rp_fault.point "rcu.synchronize.pre";
  let started = Unix.gettimeofday () in
  let gp_span = Rp_trace.span_begin k_gp in
  Mutex.lock t.gp_mutex;
  let new_epoch = 1 + Atomic.fetch_and_add t.epoch 1 in
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_epoch "rcu.gp_begin";
  (* The scan can raise via the failpoint; never leave gp_mutex held. *)
  (match scan_slots t ~new_epoch with
  | () -> ()
  | exception e ->
      Mutex.unlock t.gp_mutex;
      Rp_trace.span_end ~arg:new_epoch k_gp gp_span;
      raise e);
  Atomic.incr t.gp_count;
  Atomic.incr t.sync_count;
  Mutex.unlock t.gp_mutex;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_epoch "rcu.gp_end";
  Rp_trace.span_end ~arg:new_epoch k_gp gp_span;
  Rp_obs.Histogram.observe_span t.gp_hist ~start:started
    ~stop:(Unix.gettimeofday ())

(* --- deferred callbacks --- *)

let drain_queue t =
  Mutex.lock t.cb_mutex;
  let pending = Queue.create () in
  Queue.transfer t.cb_queue pending;
  Mutex.unlock t.cb_mutex;
  pending

let flush t =
  let pending = drain_queue t in
  if not (Queue.is_empty pending) then begin
    synchronize t;
    Queue.iter
      (fun cb ->
        cb ();
        Atomic.incr t.cb_count)
      pending
  end

let call_rcu t cb =
  Rp_fault.point "rcu.call_rcu.enqueue";
  Mutex.lock t.cb_mutex;
  Queue.add cb t.cb_queue;
  let n = Queue.length t.cb_queue in
  Mutex.unlock t.cb_mutex;
  if n >= t.cb_threshold then flush t

let barrier t =
  let rec loop () =
    flush t;
    Mutex.lock t.cb_mutex;
    let n = Queue.length t.cb_queue in
    Mutex.unlock t.cb_mutex;
    if n > 0 then loop ()
  in
  loop ()

let pending_callbacks t =
  Mutex.lock t.cb_mutex;
  let n = Queue.length t.cb_queue in
  Mutex.unlock t.cb_mutex;
  n

(* --- stall watchdog configuration --- *)

let set_stall_budget t budget =
  (match budget with
  | Some b when b <= 0.0 -> invalid_arg "Rcu.set_stall_budget: budget <= 0"
  | _ -> ());
  t.stall_budget <- budget

let stall_budget t = t.stall_budget
let set_stall_handler t handler = t.stall_handler <- handler
let stall_count t = Atomic.get t.stall_count
let last_stall t = t.last_stall

let pp_stall_report ppf r =
  Format.fprintf ppf
    "@[<h>rcu stall: slot %d owned by domain %d (nesting %d) pinned at epoch \
     %d < %d after %.3fs@]"
    r.slot_index r.owner_domain r.nesting r.slot_epoch r.target_epoch r.waited

(* --- statistics --- *)

let stats t =
  {
    grace_periods = Atomic.get t.gp_count;
    synchronize_calls = Atomic.get t.sync_count;
    callbacks_invoked = Atomic.get t.cb_count;
    readers_registered = registered_readers t;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>grace_periods=%d synchronize_calls=%d callbacks_invoked=%d readers=%d@]"
    s.grace_periods s.synchronize_calls s.callbacks_invoked s.readers_registered

(* --- observability --- *)

let grace_period_hist t = t.gp_hist

let observe ?(prefix = "rcu") t reg =
  let name suffix = prefix ^ "_" ^ suffix in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.fn_counter reg ~help:"completed grace periods"
    (name "grace_periods_total") (fn t.gp_count);
  Rp_obs.Registry.fn_counter reg ~help:"explicit synchronize calls"
    (name "synchronize_total") (fn t.sync_count);
  Rp_obs.Registry.fn_counter reg ~help:"deferred callbacks invoked"
    (name "callbacks_total") (fn t.cb_count);
  Rp_obs.Registry.fn_counter reg
    ~help:"grace-period stalls detected by the watchdog"
    (name "stalls_total") (fn t.stall_count);
  Rp_obs.Registry.gauge reg ~help:"currently registered reader slots"
    (name "readers")
    (fun () -> float_of_int (registered_readers t));
  Rp_obs.Registry.gauge reg ~help:"queued not-yet-run callbacks"
    (name "callbacks_pending")
    (fun () -> float_of_int (pending_callbacks t));
  Rp_obs.Registry.register_histogram reg
    ~help:"grace-period latency in nanoseconds"
    (name "grace_period_ns") t.gp_hist
