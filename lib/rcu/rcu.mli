(** Relativistic-programming primitives: userspace RCU.

    This module provides the three primitives the paper's algorithms are
    built from:

    - {b delimited readers} ({!read_lock} / {!read_unlock}): wait-free entry
      and exit of read-side critical sections — notification, not permission;
    - {b pointer publication} ({!publish} / {!dereference}): ordering between
      initialising a structure and making it reachable (the analogue of
      [rcu_assign_pointer] / [rcu_dereference]);
    - {b wait-for-readers} ({!synchronize}): blocks until every read-side
      critical section that was in progress when the call began has ended.
      Readers that begin afterwards are not waited for.

    The implementation is an epoch scheme in the style of userspace RCU
    ("memb" flavour): each registered reader owns a private slot holding an
    atomic counter; [read_lock] stores the current global epoch into the
    slot, [read_unlock] clears it, and [synchronize] advances the epoch and
    waits until every slot is clear or has observed the new epoch. Because
    OCaml's [Atomic] operations are sequentially consistent, a single epoch
    advance per grace period suffices (the classic two-phase flip guards
    against reorderings that cannot occur under seq_cst).

    OCaml's GC performs physical reclamation, so grace periods here provide
    {e ordering} (the resize algorithms depend on it) and {e semantic}
    deferral via {!call_rcu} (e.g. running eviction callbacks only once no
    reader can still observe an item). *)

type t
(** An RCU flavour: a global epoch plus a registry of reader slots.
    Independent flavours have independent grace periods. *)

type reader
(** A per-domain reader handle. Handles must not be shared across domains. *)

exception Too_many_readers
(** Raised by {!register} (and so by the implicit registration in
    {!reader_for_current_domain}) when every reader slot is occupied.
    Unregistering any reader frees its slot for reuse. *)

val create : ?max_readers:int -> ?stall_budget:float -> unit -> t
(** [create ()] builds a fresh flavour supporting up to [max_readers]
    (default 128) concurrently registered reader domains. [stall_budget]
    arms the grace-period stall watchdog (see {!section-stalls}); by
    default it is off. *)

(** {1 Reader registration} *)

val register : t -> reader
(** Register the calling domain. Raises {!Too_many_readers} if all slots
    are taken. *)

val unregister : t -> reader -> unit
(** Release a reader slot. The reader must not be inside a critical section. *)

val reader_for_current_domain : t -> reader
(** Return this domain's reader handle, registering it on first use
    (stored in domain-local state). Convenient for library-internal read
    sections where threading a handle through the API is impractical. *)

val registered_readers : t -> int
(** Number of currently registered readers. *)

(** {1 Read-side critical sections} *)

val read_lock : reader -> unit
(** Enter a read-side critical section. Wait-free; nestable. *)

val read_unlock : reader -> unit
(** Leave a read-side critical section. Wait-free. *)

val with_read : reader -> (unit -> 'a) -> 'a
(** [with_read r f] runs [f] inside a read-side critical section, leaving it
    even if [f] raises. *)

val read_lock_current : t -> unit
(** [read_lock (reader_for_current_domain t)]. *)

val read_unlock_current : t -> unit

val with_read_current : t -> (unit -> 'a) -> 'a

val in_critical_section : reader -> bool
(** [true] while the reader is inside a (possibly nested) critical section. *)

(** {1 Publication} *)

val publish : 'a Atomic.t -> 'a -> unit
(** [publish cell v] makes [v] reachable through [cell] with release
    semantics: all initialising writes made before the call are visible to
    any reader that dereferences the new value. *)

val dereference : 'a Atomic.t -> 'a
(** Read a published pointer with the ordering guarantees readers need. *)

(** {1 Grace periods} *)

val synchronize : t -> unit
(** Wait for all pre-existing readers: every read-side critical section that
    was in progress when [synchronize] was called is finished when it
    returns. Callers must not be inside a critical section of [t]
    (deadlock); this is checked for the calling domain's own handle and
    raises [Invalid_argument]. Concurrent calls are serialized internally. *)

val call_rcu : t -> (unit -> unit) -> unit
(** Defer a callback until after a grace period. Callbacks run on the domain
    that triggers a flush ({!barrier}, or an internal amortized flush once
    the pending queue exceeds a threshold), strictly after a full grace
    period that began after the [call_rcu] call. *)

val barrier : t -> unit
(** Wait until every previously queued {!call_rcu} callback has executed. *)

val pending_callbacks : t -> int
(** Number of queued, not-yet-run callbacks. *)

(** {1:stalls Grace-period stall watchdog}

    The userspace analogue of Linux's RCU CPU-stall warning: when a
    {!synchronize} has waited longer than the configured budget on one
    reader slot, the flavour records a {!stall_report} naming the stuck
    slot, its owner domain, and the epoch it is pinned at — the three
    facts needed to find a reader sleeping (or looping) inside a read-side
    critical section. Detection never aborts the grace period; the wait
    continues until the reader actually leaves. Each offending slot is
    reported at most once per grace period. *)

type stall_report = {
  slot_index : int;  (** index of the stuck slot in the registry *)
  owner_domain : int;  (** domain id that registered the slot *)
  nesting : int;  (** read-side nesting depth (racy snapshot) *)
  slot_epoch : int;  (** epoch the slot observed at its read_lock *)
  target_epoch : int;  (** epoch the grace period is waiting for *)
  waited : float;  (** seconds waited when the report was made *)
}

val set_stall_budget : t -> float option -> unit
(** Set or clear the per-slot wait budget, in seconds. Raises
    [Invalid_argument] on a non-positive budget. *)

val stall_budget : t -> float option

val set_stall_handler : t -> (stall_report -> unit) option -> unit
(** Callback invoked (on the synchronizing domain, with no internal locks
    held beyond the grace-period mutex) each time a stall is detected.
    Exceptions it raises are swallowed. *)

val stall_count : t -> int
(** Total stalls detected over the flavour's lifetime. *)

val last_stall : t -> stall_report option
val pp_stall_report : Format.formatter -> stall_report -> unit

(** {1 Statistics} *)

type stats = {
  grace_periods : int;  (** completed grace periods *)
  synchronize_calls : int;  (** explicit {!synchronize} invocations *)
  callbacks_invoked : int;  (** callbacks run by the deferral machinery *)
  readers_registered : int;  (** current registry occupancy *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {1 Observability}

    Every flavour records grace-period latency into a striped
    {!Rp_obs.Histogram} and emits ["rcu.gp_begin"] / ["rcu.gp_end"]
    events (with the target epoch as argument) into
    {!Rp_obs.Trace.default}. *)

val observe : ?prefix:string -> t -> Rp_obs.Registry.t -> unit
(** Register this flavour's instruments under [prefix] (default
    ["rcu"]): [<prefix>_grace_periods_total], [<prefix>_synchronize_total],
    [<prefix>_callbacks_total], [<prefix>_stalls_total] (the watchdog
    surface), [<prefix>_readers], [<prefix>_callbacks_pending], and the
    [<prefix>_grace_period_ns] latency histogram. *)

val grace_period_hist : t -> Rp_obs.Histogram.t
(** The grace-period latency histogram (nanoseconds per
    {!synchronize}). *)
