(** Bench trend gating: compare a fresh benchmark report against a
    committed baseline and fail on regressions.

    Reports are the BENCH_*.json files the smoke benches write; baselines
    are committed copies with deliberate headroom (throughput floors well
    under a healthy run) so the 25% default gate trips on real
    regressions, not scheduler noise. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

val parse : string -> json
(** Parse a JSON document (raises {!Parse_error}). *)

val parse_file : string -> json

val member : string -> json -> json option
(** Object field lookup ([None] on non-objects too). *)

val flatten : json -> (string * float) list
(** Numeric leaves as dotted paths, in document order. Booleans flatten
    to 0/1; strings and nulls are skipped. An array element that is an
    object with a string ["label"] field is addressed by that label
    (["runs.event-loop-w1.rps"]); other elements by index. *)

(** {1 Gating} *)

type direction =
  | Higher_better  (** fail when fresh < baseline × (1 − max_regression) *)
  | Lower_better  (** fail when fresh > baseline × (1 + max_regression) *)
  | Exact  (** fail on any difference from the baseline *)
  | Exact_zero  (** fail unless fresh is exactly 0 (miss counters) *)

type rule = {
  metric : string;
      (** flattened path; a ["*"] segment matches any one segment *)
  direction : direction;
  max_regression : float;
}

val rule : ?max_regression:float -> string -> direction -> rule
(** [max_regression] defaults to 0.25. *)

type failure = {
  f_metric : string;
  f_baseline : float option;
  f_fresh : float option;
  f_reason : string;
}

val gate : rules:rule list -> baseline:json -> fresh:json -> failure list
(** Every rule is expanded over the baseline's matching metrics and each
    checked against the fresh report. A metric present in the baseline
    but missing from the fresh report fails; a rule matching nothing in
    the baseline fails too (a gate silently checking nothing is how
    regressions slip through). Empty result = gate passes. *)

val report_failures : failure list -> string
(** Human-readable failure table, one line per failure. *)

val rules_for : string -> rule list
(** The committed rule set for a benchmark name ([smoke],
    [server-pipelined-get], [persist]); raises [Invalid_argument] on an
    unknown name. *)

val benchmark_name : json -> string
(** The report's ["benchmark"] field (raises {!Parse_error} if absent). *)
