(* Bench trend gating: parse two report files (committed baseline, fresh
   run), flatten them to dotted metric paths, and compare the metrics a
   rule set names. No JSON dependency — the reports are machine-written,
   so a small recursive-descent parser covers them. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Parse_error of string

(* --- parsing --- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let fail_at c msg =
  raise (Parse_error (Printf.sprintf "%s at byte %d" msg c.pos))

let skip_ws c =
  while
    c.pos < String.length c.s
    && (match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> fail_at c (Printf.sprintf "expected '%c'" ch)

let parse_string_body c =
  (* c.pos is just past the opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail_at c "unterminated string"
    else
      match c.s.[c.pos] with
      | '"' -> c.pos <- c.pos + 1
      | '\\' ->
          if c.pos + 1 >= String.length c.s then fail_at c "bad escape";
          (match c.s.[c.pos + 1] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              (* Pass the raw escape through: report files never carry
                 unicode escapes, but don't crash on one. *)
              if c.pos + 5 >= String.length c.s then fail_at c "bad \\u";
              Buffer.add_string buf (String.sub c.s c.pos 6);
              c.pos <- c.pos + 4
          | ch -> fail_at c (Printf.sprintf "bad escape '\\%c'" ch));
          c.pos <- c.pos + 2;
          go ()
      | ch ->
          Buffer.add_char buf ch;
          c.pos <- c.pos + 1;
          go ()
  in
  go ();
  Buffer.contents buf

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail_at c "unexpected end of input"
  | Some '{' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some '}' then (
        c.pos <- c.pos + 1;
        Obj [])
      else begin
        let rec members acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              members ((key, v) :: acc)
          | Some '}' ->
              c.pos <- c.pos + 1;
              List.rev ((key, v) :: acc)
          | _ -> fail_at c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      c.pos <- c.pos + 1;
      skip_ws c;
      if peek c = Some ']' then (
        c.pos <- c.pos + 1;
        List [])
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              c.pos <- c.pos + 1;
              elements (v :: acc)
          | Some ']' ->
              c.pos <- c.pos + 1;
              List.rev (v :: acc)
          | _ -> fail_at c "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' ->
      c.pos <- c.pos + 1;
      Str (parse_string_body c)
  | Some 't' when c.pos + 4 <= String.length c.s
                  && String.sub c.s c.pos 4 = "true" ->
      c.pos <- c.pos + 4;
      Bool true
  | Some 'f' when c.pos + 5 <= String.length c.s
                  && String.sub c.s c.pos 5 = "false" ->
      c.pos <- c.pos + 5;
      Bool false
  | Some 'n' when c.pos + 4 <= String.length c.s
                  && String.sub c.s c.pos 4 = "null" ->
      c.pos <- c.pos + 4;
      Null
  | Some ch when is_num_char ch ->
      let start = c.pos in
      while
        c.pos < String.length c.s && is_num_char c.s.[c.pos]
      do
        c.pos <- c.pos + 1
      done;
      let text = String.sub c.s start (c.pos - start) in
      (match float_of_string_opt text with
      | Some f -> Num f
      | None -> fail_at c (Printf.sprintf "bad number %S" text))
  | Some ch -> fail_at c (Printf.sprintf "unexpected '%c'" ch)

let parse s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail_at c "trailing bytes";
  v

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

(* --- flattening --- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

(* Dotted metric paths. An array element that is an object with a string
   "label" is addressed by that label (the server report's runs array);
   others by index. *)
let flatten json =
  let out = ref [] in
  let rec go prefix v =
    let path key = if prefix = "" then key else prefix ^ "." ^ key in
    match v with
    | Num f -> out := (prefix, f) :: !out
    | Bool b -> out := (prefix, if b then 1. else 0.) :: !out
    | Obj kvs -> List.iter (fun (k, v) -> go (path k) v) kvs
    | List elems ->
        List.iteri
          (fun i e ->
            let key =
              match member "label" e with
              | Some (Str label) -> label
              | _ -> string_of_int i
            in
            go (path key) e)
          elems
    | Str _ | Null -> ()
  in
  go "" json;
  List.rev !out

(* --- gating --- *)

type direction = Higher_better | Lower_better | Exact | Exact_zero

type rule = {
  metric : string;  (* flattened path, or a ".../*/..." glob on one level *)
  direction : direction;
  max_regression : float;
}

let rule ?(max_regression = 0.25) metric direction =
  { metric; direction; max_regression }

(* "runs.*.rps" matches "runs.event-loop-w1.rps": '*' spans one path
   segment. *)
let path_matches ~pattern path =
  let pp = String.split_on_char '.' pattern in
  let sp = String.split_on_char '.' path in
  List.length pp = List.length sp
  && List.for_all2 (fun p s -> p = "*" || p = s) pp sp

type failure = {
  f_metric : string;
  f_baseline : float option;
  f_fresh : float option;
  f_reason : string;
}

let check_metric rule ~metric ~baseline ~fresh =
  let fail reason =
    Some { f_metric = metric; f_baseline = baseline; f_fresh = fresh;
           f_reason = reason }
  in
  match (baseline, fresh) with
  | _, None -> fail "metric missing from fresh report"
  | None, Some _ -> None (* baseline predates the metric: not gated *)
  | Some b, Some f -> (
      match rule.direction with
      | Exact_zero -> if f <> 0. then fail "must be exactly zero" else None
      | Exact ->
          if f <> b then fail (Printf.sprintf "must equal baseline %g" b)
          else None
      | Higher_better ->
          if b > 0. && f < b *. (1. -. rule.max_regression) then
            fail
              (Printf.sprintf "regressed >%.0f%% below baseline"
                 (rule.max_regression *. 100.))
          else None
      | Lower_better ->
          if b > 0. && f > b *. (1. +. rule.max_regression) then
            fail
              (Printf.sprintf "regressed >%.0f%% above baseline"
                 (rule.max_regression *. 100.))
          else None)

let gate ~rules ~baseline ~fresh =
  let base_metrics = flatten baseline in
  let fresh_metrics = flatten fresh in
  List.concat_map
    (fun r ->
      (* Expand the rule over every baseline metric it matches; a rule
         matching nothing in the baseline is itself a failure (the gate
         silently checking nothing is how regressions slip through). *)
      let matched =
        List.filter (fun (p, _) -> path_matches ~pattern:r.metric p)
          base_metrics
      in
      if matched = [] && r.direction <> Exact_zero then
        [
          {
            f_metric = r.metric;
            f_baseline = None;
            f_fresh = None;
            f_reason = "rule matches no baseline metric";
          };
        ]
      else if matched = [] then
        (* Exact_zero with no baseline anchor: check the fresh side. *)
        List.filter_map
          (fun (p, f) ->
            check_metric r ~metric:p ~baseline:(Some 0.) ~fresh:(Some f))
          (List.filter (fun (p, _) -> path_matches ~pattern:r.metric p)
             fresh_metrics)
      else
        List.filter_map
          (fun (p, b) ->
            check_metric r ~metric:p ~baseline:(Some b)
              ~fresh:(List.assoc_opt p fresh_metrics))
          matched)
    rules

let report_failures failures =
  String.concat "\n"
    (List.map
       (fun f ->
         let num = function None -> "-" | Some v -> Printf.sprintf "%g" v in
         Printf.sprintf "  %-40s baseline=%-12s fresh=%-12s %s" f.f_metric
           (num f.f_baseline) (num f.f_fresh) f.f_reason)
       failures)

(* --- per-benchmark rule sets --- *)

(* Committed baselines carry deliberate headroom (throughputs well under
   a healthy run), so the honest 25% gate trips on real regressions, not
   scheduler noise. *)
let rules_for = function
  | "smoke" ->
      [
        rule "lookup_hits" Exact;
        rule "store.trace_spans_total" Higher_better ~max_regression:0.9;
      ]
  | "server-pipelined-get" ->
      [ rule "runs.*.rps" Higher_better; rule "runs.*.misses" Exact_zero ]
  | "persist" ->
      [
        rule "snapshot_mb_per_s" Higher_better;
        rule "replay_ops_per_s" Higher_better;
        rule "get_p99_ns_snapshot_on" Lower_better;
      ]
  | "guard" ->
      [
        (* GETs must keep flowing at full-shed: throughput-gated like the
           server lane, and not one may error or miss. *)
        rule "shed_get_rps" Higher_better;
        rule "get_misses" Exact_zero;
        (* Near-total regression bound = "must be at least one": the
           interesting failure is shedding silently not happening. *)
        rule "shed_total" Higher_better ~max_regression:0.99;
        (* Storm over -> Healthy; the generous multiple absorbs scheduler
           noise on a number that is a few sweep intervals long. *)
        rule "recover_ms" Lower_better ~max_regression:4.0;
      ]
  | "writer-scaling" ->
      [
        (* SET throughput at every writer count, 4-writer rate included:
           the striped write path must not regress at any width. *)
        rule "runs.*.set_ops_s" Higher_better;
        (* Read-path no-regression guard: a quiet single-threaded GET p99
           on the striped store. Tail latencies on a shared box are
           noisy, so the bound is a generous multiple. *)
        rule "get_p99_ns" Lower_better ~max_regression:4.0;
        (* The mix oracle: a miss on the prefilled keyspace or a SET
           error is a correctness bug, not a perf regression. *)
        rule "misses" Exact_zero;
        rule "errors" Exact_zero;
      ]
  | "cluster" ->
      [
        (* Replication catch-up: op-log tail -> wire -> Store.replicate. *)
        rule "catchup_ops_per_s" Higher_better;
        (* Publish-to-apply lag tail; microsecond tails on a shared box
           are noisy, so the bound is a generous multiple. *)
        rule "apply_lag_us_p99" Lower_better ~max_regression:4.0;
        (* The oracle: a leader-acked record missing on the caught-up
           follower is a replication bug, not a perf regression. *)
        rule "follower_missing" Exact_zero;
      ]
  | "tier" ->
      [
        (* Hot-path tax of the attached tier: GET p99 on RAM-resident
           keys, tier-on over tier-off. The 1.15x product budget is
           enforced in-process (best-of-3); here the gate only has to
           catch a drift — tails of tails on a shared box are noisy. *)
        rule "hot_p99_ratio" Lower_better ~max_regression:0.5;
        (* Cold service: full-keyspace scan (mostly promote-on-access)
           and spill-phase demote rate. Disk-bound, so generous. *)
        rule "cold_hit_rps" Higher_better ~max_regression:0.6;
        rule "demote_rps" Higher_better ~max_regression:0.6;
        rule "zipf_get_rps" Higher_better ~max_regression:0.6;
        (* The oracle: with the tier on, every demoted key must read
           back. A hard miss is a data-loss bug, not a perf number. *)
        rule "hard_misses" Exact_zero;
      ]
  | "heat" ->
      [
        (* GET throughput of the 50/50 Zipf mix with the sketches on. *)
        rule "get_rps" Higher_better;
        (* Heat-on GET p99: tails on a shared box are noisy, so the
           bound is a generous multiple — the sketch-tax *ratio* below
           is the tight gate. *)
        rule "get_p99_ns" Lower_better ~max_regression:4.0;
        (* Sketch tax: heat-on over heat-off GET p99. The 1.15x budget
           is enforced in-process (best-of-8); here the gate only has
           to catch a drift. *)
        rule "heat_get_ratio" Lower_better ~max_regression:0.5;
        (* The oracle: a GET miss on the prefilled keyspace means the
           mix was not measuring what it claims. The top-1 accuracy
           gate (10% of analytic) is enforced in-process. *)
        rule "misses" Exact_zero;
      ]
  | name -> invalid_arg ("Trend.rules_for: unknown benchmark " ^ name)

let benchmark_name json =
  match member "benchmark" json with
  | Some (Str name) -> name
  | _ -> raise (Parse_error "report has no \"benchmark\" field")
