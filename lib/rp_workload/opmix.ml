type op = Lookup | Insert | Remove

type t = { update_ratio : float; remove_share : float; prng : Prng.t }

let create ?(update_ratio = 0.0) ?(remove_share = 0.5) ~seed ~worker () =
  if update_ratio < 0.0 || update_ratio > 1.0 then
    invalid_arg "Opmix.create: update_ratio outside [0, 1]";
  if remove_share < 0.0 || remove_share > 1.0 then
    invalid_arg "Opmix.create: remove_share outside [0, 1]";
  {
    update_ratio;
    remove_share;
    prng = Prng.split (Prng.create ~seed) (worker + 7919);
  }

let next t =
  if t.update_ratio = 0.0 then Lookup
  else
    let u = Prng.float t.prng in
    if u >= t.update_ratio then Lookup
    else if u < t.update_ratio *. (1.0 -. t.remove_share) then Insert
    else Remove

let lookup_only t = t.update_ratio = 0.0
