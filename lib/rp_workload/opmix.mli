(** Operation-mix generation: what fraction of operations read vs. update.

    The paper's microbenchmarks are lookup-only with a dedicated resizer;
    the memcached benchmark runs pure-GET and pure-SET phases. Mixed ratios
    support the ablation benches and the writer-scaling lane (a 50/50
    GET/SET mix is [~update_ratio:0.5 ~remove_share:0.0]). *)

type op = Lookup | Insert | Remove

type t

val create :
  ?update_ratio:float -> ?remove_share:float -> seed:int -> worker:int ->
  unit -> t
(** [update_ratio] in [\[0, 1\]] is the fraction of non-lookup operations
    (default 0); [remove_share] in [\[0, 1\]] is the fraction of those
    updates that are removes (default 0.5 — evenly split with inserts;
    0 makes every update an insert/SET). *)

val next : t -> op

val lookup_only : t -> bool
(** [true] when the mix can never produce an update. *)
