(** rp_obs: the observability plane.

    Low-overhead instrumentation for the relativistic stack, built so
    that measuring the read path cannot invalidate what it measures:

    - {!Counter}: striped monotonic counters — one unsynchronized store
      per increment on a cache-line-padded per-domain cell;
    - {!Histogram}: 64-bucket power-of-two latency/size histograms with
      striped recording and merged snapshots;
    - {!Trace}: a fixed-capacity lock-free ring of timestamped
      control-plane events;
    - {!Registry}: names instruments and renders memcached [stats]
      lines, Prometheus text exposition, and JSON snapshots;
    - {!Stripe}: the shared per-domain slot registry underneath, plus
      the global {!set_enabled} kill switch. *)

module Stripe = Stripe
module Counter = Counter
module Histogram = Histogram
module Trace = Trace
module Registry = Registry

let set_enabled = Stripe.set_enabled
let is_enabled = Stripe.is_enabled
