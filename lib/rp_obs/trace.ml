(* Lock-free trace ring: a fixed-capacity circular buffer of timestamped
   control-plane events (grace periods, unzip passes, recoveries,
   failpoint fires, connection lifecycle). A writer reserves a sequence
   number with one fetch-and-add and publishes an immutable event record
   into its slot with one atomic store; the newest [capacity] events win.
   Readers take a snapshot by collecting whatever each slot holds — every
   event read is internally consistent (the record is immutable), and the
   snapshot is ordered by sequence number. *)

type event = {
  seq : int;  (* global order of emission *)
  time : float;  (* Unix.gettimeofday at emission *)
  domain : int;  (* emitting domain id *)
  kind : string;
  arg : int;
}

type t = { mask : int; head : int Atomic.t; slots : event option Atomic.t array }

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(capacity = 1024) () =
  if capacity < 2 then invalid_arg "Trace.create: capacity < 2";
  let capacity = next_pow2 capacity 2 in
  {
    mask = capacity - 1;
    head = Atomic.make 0;
    slots = Array.init capacity (fun _ -> Atomic.make None);
  }

let capacity t = t.mask + 1
let emitted t = Atomic.get t.head

let emit t ?(arg = 0) kind =
  if Stripe.is_enabled () then begin
    let seq = Atomic.fetch_and_add t.head 1 in
    let e =
      {
        seq;
        time = Unix.gettimeofday ();
        domain = (Domain.self () :> int);
        kind;
        arg;
      }
    in
    Atomic.set t.slots.(seq land t.mask) (Some e)
  end

let snapshot t =
  let head = Atomic.get t.head in
  let events = ref [] in
  Array.iter
    (fun slot ->
      match Atomic.get slot with
      | Some e when e.seq < head -> events := e :: !events
      | Some _ | None -> ())
    t.slots;
  List.sort (fun a b -> compare a.seq b.seq) !events

let clear t =
  Array.iter (fun slot -> Atomic.set slot None) t.slots

let pp_event ppf e =
  Format.fprintf ppf "@[<h>#%d %.6f d%d %s(%d)@]" e.seq e.time e.domain e.kind
    e.arg

(* The process-wide ring every subsystem emits into by default. *)
let default = create ~capacity:1024 ()
