(** Striped monotonic counter.

    Increments are a single unsynchronized store to the calling domain's
    cache-line-padded stripe cell ({!Stripe}); reads sum the stripes.
    Suited to hot paths — a wait-free table lookup can count itself
    without adding a shared atomic read-modify-write. *)

type t

val create : unit -> t

val incr : t -> unit
(** Add 1 to the calling domain's stripe. No-op while the plane is
    disabled ({!Stripe.set_enabled}). *)

val add : t -> int -> unit
(** Add [n] (callers should keep counters monotonic: [n >= 0]). *)

val read : t -> int
(** Sum of all stripes. A relaxed snapshot: may trail concurrent
    increments, exact once writers have synchronized with the caller
    (e.g. after [Domain.join] or under a shared mutex). *)

val reset : t -> unit
(** Zero every stripe. For tests; racy against concurrent increments. *)
