(* Fixed 64-bucket power-of-two histogram with striped recording.

   Bucket [i] (i >= 1) holds values in [2^(i-1), 2^i); bucket 0 holds
   zero and negatives. Each domain slot owns a private row of bucket
   counts plus a sum and max cell, so recording is a handful of plain
   stores on exclusively-owned memory; snapshots merge the rows. Values
   are raw integers — by convention nanoseconds for latencies, bytes for
   sizes. *)

let buckets = 64

(* 64 bucket counts + sum + max, padded to a cache-line multiple. *)
let row_stride = 72
let sum_off = buckets
let max_off = buckets + 1

type t = { rows : int array }

let create () = { rows = Array.make (Stripe.capacity * row_stride) 0 }

let bucket_of_value v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v <> 0 do
      incr b;
      v := !v lsr 1
    done;
    min (buckets - 1) !b
  end

(* Inclusive upper bound of bucket [i]; [max_int] for the last. *)
let upper_bound i =
  if i = 0 then 0
  else if i >= buckets - 1 then max_int
  else (1 lsl i) - 1

let observe t v =
  if Stripe.is_enabled () then begin
    let row = Stripe.index () * row_stride in
    let b = row + bucket_of_value v in
    Array.unsafe_set t.rows b (Array.unsafe_get t.rows b + 1);
    let s = row + sum_off in
    Array.unsafe_set t.rows s (Array.unsafe_get t.rows s + max v 0);
    let m = row + max_off in
    if v > Array.unsafe_get t.rows m then Array.unsafe_set t.rows m v
  end

let observe_span t ~start ~stop =
  observe t (int_of_float ((stop -. start) *. 1e9))

type snapshot = { count : int; sum : int; max : int; counts : int array }

let snapshot t =
  let counts = Array.make buckets 0 in
  let sum = ref 0 and maxv = ref 0 in
  for s = 0 to Stripe.capacity - 1 do
    let row = s * row_stride in
    for b = 0 to buckets - 1 do
      counts.(b) <- counts.(b) + Array.unsafe_get t.rows (row + b)
    done;
    sum := !sum + t.rows.(row + sum_off);
    if t.rows.(row + max_off) > !maxv then maxv := t.rows.(row + max_off)
  done;
  let count = Array.fold_left ( + ) 0 counts in
  { count; sum = !sum; max = !maxv; counts }

(* Upper bound of the bucket holding the q-quantile observation: an
   estimate within a factor of two of the true value (the bucket width). *)
let percentile s q =
  if s.count = 0 then 0
  else begin
    let rank = max 1 (int_of_float (ceil (q *. float_of_int s.count))) in
    let cum = ref 0 and result = ref (upper_bound (buckets - 1)) in
    (try
       for b = 0 to buckets - 1 do
         cum := !cum + s.counts.(b);
         if !cum >= rank then begin
           result := upper_bound b;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end

let mean s = if s.count = 0 then 0.0 else float_of_int s.sum /. float_of_int s.count
let reset t = Array.fill t.rows 0 (Array.length t.rows) 0
