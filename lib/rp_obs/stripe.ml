(* Per-domain stripe slots, shared by every striped instrument in the
   process.

   Same idiom as Rcu's reader-slot registry: a domain claims the lowest
   free slot on first use (cached in domain-local state) and releases it
   from a [Domain.at_exit] hook, so slot indices stay dense and a live
   domain owns its slot exclusively. Exclusive ownership is what lets
   counters and histograms use plain unsynchronized stores on the hot
   path: no other domain ever writes the same cell, so no increment can
   be lost. If more than [capacity] domains are ever live at once (beyond
   what the OCaml runtime supports today), extra domains fall back to
   round-robin shared slots and instruments degrade to approximate. *)

let capacity = 128
let mask = capacity - 1

(* Words per stripe cell: 8 * 8 bytes = one 64-byte cache line, so two
   domains bumping adjacent slots of the same counter never share a line. *)
let stride = 8

(* Global kill switch: instruments become no-ops when cleared. One atomic
   load on the hot path; used by the overhead-guard test to price the
   instrumentation itself. *)
let enabled = Atomic.make true
let set_enabled b = Atomic.set enabled b
let[@inline] is_enabled () = Atomic.get enabled

let in_use = Array.make capacity false
let mutex = Mutex.create ()

(* Round-robin fallback when the registry is full. *)
let overflow = Atomic.make 0

let release i =
  Mutex.lock mutex;
  in_use.(i) <- false;
  Mutex.unlock mutex

let acquire () =
  Mutex.lock mutex;
  let found = ref (-1) in
  (try
     for i = 0 to capacity - 1 do
       if not in_use.(i) then begin
         in_use.(i) <- true;
         found := i;
         raise Exit
       end
     done
   with Exit -> ());
  Mutex.unlock mutex;
  match !found with
  | -1 -> Atomic.fetch_and_add overflow 1 land mask
  | i ->
      Domain.at_exit (fun () -> release i);
      i

let dls : int Domain.DLS.key = Domain.DLS.new_key acquire

(* Hot-path read of the claimed slot. [Domain.DLS.get] costs two
   non-inlined calls per lookup (no flambda); at one increment per table
   lookup that is most of the instrumentation budget. The domain-local
   storage array itself is reachable in two instructions through the
   [%dls_get] primitive — the same one the stdlib is built on — so read
   it directly: an initialized slot holds an immediate int, anything else
   (the stdlib's block-valued "uninitialized" sentinel, or an array not
   yet grown to cover the key) falls back to the real [Domain.DLS.get],
   which claims the slot via [acquire]. The key index is the first field
   of the stdlib's key representation (a [(int, init)] pair in the pinned
   OCaml 5.1 stdlib — revisit if the compiler moves). *)
external dls_state : unit -> Obj.t array = "%dls_get"

let dls_index : int = fst (Obj.magic dls : int * Obj.t)

let[@inline] index () =
  let st = dls_state () in
  if dls_index < Array.length st then begin
    let v = Array.unsafe_get st dls_index in
    if Obj.is_int v then (Obj.obj v : int) else Domain.DLS.get dls
  end
  else Domain.DLS.get dls

let slots_in_use () =
  Mutex.lock mutex;
  let n = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 in_use in
  Mutex.unlock mutex;
  n
