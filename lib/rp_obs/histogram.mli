(** Fixed 64-bucket power-of-two histogram with striped recording.

    Bucket [i] (for [i >= 1]) covers values in [2{^i-1}, 2{^i}); bucket 0
    holds zero and negatives. Recording touches only the calling domain's
    private row ({!Stripe}), so it is a few plain stores — safe on hot
    paths. Values are raw non-negative integers; the convention in this
    repo is nanoseconds for latencies and bytes for sizes. *)

type t

val buckets : int
(** 64. *)

val create : unit -> t

val observe : t -> int -> unit
(** Record one value into the calling domain's stripe. No-op while the
    plane is disabled. *)

val observe_span : t -> start:float -> stop:float -> unit
(** Record a wall-clock span (seconds, e.g. from [Unix.gettimeofday]) as
    nanoseconds. *)

val bucket_of_value : int -> int
val upper_bound : int -> int
(** Inclusive upper bound of a bucket ([max_int] for the last). *)

(** {1 Snapshots} *)

type snapshot = {
  count : int;  (** total observations *)
  sum : int;  (** sum of observed values *)
  max : int;  (** largest observed value *)
  counts : int array;  (** per-bucket counts, merged over stripes *)
}

val snapshot : t -> snapshot
(** Merge all stripes. Relaxed like {!Counter.read}: may trail concurrent
    recordings, exact once recorders have synchronized with the caller. *)

val percentile : snapshot -> float -> int
(** [percentile s q] (with [q] in [0, 1]) returns the upper bound of the
    bucket containing the q-quantile observation — within a factor of two
    of the true value. 0 when empty. *)

val mean : snapshot -> float
val reset : t -> unit
(** For tests; racy against concurrent recording. *)
