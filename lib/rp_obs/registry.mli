(** Instrument registry: names instruments, renders expositions.

    One registration feeds three render targets: memcached ["stats"]
    key/value lines ({!to_stats}), the Prometheus text format
    ({!to_prometheus}), and a flat JSON object for benchmark and torture
    report files ({!to_json}).

    Metric names must match [[a-zA-Z_:][a-zA-Z0-9_:]*] (the Prometheus
    rule); anything else raises [Invalid_argument]. *)

type t

val create : unit -> t

val default : t
(** A process-wide registry for code with no better home. Subsystem
    [observe] functions take an explicit registry instead. *)

(** {1 Registration} *)

val counter : t -> ?help:string -> string -> Counter.t
(** Get-or-create a striped counter under this name. Returns the existing
    counter when the name is already bound to one. *)

val histogram : t -> ?help:string -> string -> Histogram.t
(** Get-or-create a striped histogram under this name. *)

val gauge : t -> ?help:string -> string -> (unit -> float) -> unit
(** Register a gauge read on demand (current value semantics). Replaces
    any existing instrument of the same name. *)

val multi_gauge :
  t -> ?help:string -> string -> label:string -> (unit -> (string * float) list) -> unit
(** Register a labeled gauge family sampled on demand: one sample per
    [(label_value, value)] pair (e.g. a top-k sketch's keys). Renders in
    Prometheus as [name{label="value"} v] lines under one [# TYPE name
    gauge] header, and in stats/JSON with the label baked into the key.
    The label name must satisfy the metric-name rule. *)

val fn_counter : t -> ?help:string -> string -> (unit -> float) -> unit
(** Register a monotonic source read on demand — for existing subsystem
    counters (e.g. an [Atomic.t] already maintained elsewhere) that
    should render with counter semantics. *)

val register_counter : t -> ?help:string -> string -> Counter.t -> unit
(** Register an instrument a subsystem already owns (replacing any
    existing binding of the name). *)

val register_histogram : t -> ?help:string -> string -> Histogram.t -> unit

val reset_histograms : t -> unit
(** Zero every registered histogram (the resettable instruments), leaving
    counters, gauges and multi-gauges untouched — the [stats reset]
    surface. Racy against concurrent recording, like {!Histogram.reset}. *)

(** {1 Reading} *)

val names : t -> string list
(** Registered names in registration order. *)

val value : t -> string -> float option
(** Current value by name: counter sum, gauge/fn-counter reading, or a
    histogram's total count. [None] for unknown names. This is the single
    assertion surface the torture scenarios use. *)

(** {1 Rendering} *)

val to_stats : ?filter:(string -> bool) -> t -> (string * string) list
(** memcached ["stats"]-style lines. Histograms flatten into
    [name_count], [name_sum], [name_max], [name_p50], [name_p99]. *)

val to_prometheus : ?filter:(string -> bool) -> t -> string
(** Prometheus text exposition (0.0.4): [# HELP] / [# TYPE] headers and
    samples; histograms render cumulative [_bucket{le="..."}] series plus
    [_sum] and [_count]. *)

val to_json : ?filter:(string -> bool) -> t -> string
(** One flat JSON object; same keys as {!to_stats}, numeric values. *)
