(** Lock-free trace ring for control-plane events.

    A fixed-capacity circular buffer of timestamped events — grace-period
    begin/end, unzip passes, recoveries, failpoint fires, connection
    accept/drop. Emission is one atomic fetch-and-add (sequence
    reservation) plus one atomic store of an immutable record; the newest
    [capacity] events survive. Emission is rare control-plane work, so a
    shared RMW is acceptable here (unlike {!Counter}). *)

type event = {
  seq : int;  (** global emission order, starting at 0 *)
  time : float;  (** [Unix.gettimeofday] at emission *)
  domain : int;  (** emitting domain id *)
  kind : string;  (** e.g. ["rcu.gp_begin"], ["server.conn.accept"] *)
  arg : int;  (** event-specific payload (epoch, size, connection id…) *)
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 1024) is rounded up to a power of two; at least 2. *)

val default : t
(** The process-wide ring that [Rcu], [Rp_ht], [Rp_fault], and the
    memcached server emit into. *)

val emit : t -> ?arg:int -> string -> unit
(** Record one event. Wait-free apart from the sequence fetch-and-add.
    No-op while the plane is disabled ({!Stripe.set_enabled}). *)

val snapshot : t -> event list
(** The ring's current contents in ascending [seq] order. Every returned
    event is internally consistent (records are immutable); under
    concurrent emission the list may have seq gaps where a writer had
    reserved a slot but not yet published. *)

val emitted : t -> int
(** Events emitted over the ring's lifetime (= the next seq). *)

val capacity : t -> int
val clear : t -> unit
(** Drop all buffered events (sequence numbering continues). *)

val pp_event : Format.formatter -> event -> unit
