(* Striped monotonic counter: one cache-line-padded cell per domain slot.
   The hot path is a plain load/add/store on the caller's exclusive cell —
   no atomic RMW, no sharing. [read] sums the stripes; it may trail
   in-flight increments on other domains (each cell is monotonic, so the
   sum is a consistent lower bound) and is exact once writers have
   synchronized with the reader (domain join, mutex, …). *)

type t = { cells : int array }

let create () = { cells = Array.make (Stripe.capacity * Stripe.stride) 0 }

let[@inline] add t n =
  if Stripe.is_enabled () then begin
    let i = Stripe.index () * Stripe.stride in
    Array.unsafe_set t.cells i (Array.unsafe_get t.cells i + n)
  end

let[@inline] incr t = add t 1

let read t =
  let total = ref 0 in
  for s = 0 to Stripe.capacity - 1 do
    total := !total + Array.unsafe_get t.cells (s * Stripe.stride)
  done;
  !total

let reset t = Array.fill t.cells 0 (Array.length t.cells) 0
