(* Instrument registry: names instruments and renders them.

   Three render targets from one registration:
   - memcached "stats" lines: [name value] pairs;
   - Prometheus text exposition (# HELP / # TYPE / samples);
   - a flat JSON object for benchmark/torture report files.

   [counter]/[histogram] are get-or-create so independent subsystems can
   share one instrument by agreeing on a name; registering a different
   instrument under an existing name replaces it in place. *)

type kind =
  | Counter of Counter.t
  | Fn_counter of (unit -> float)  (* monotonic source read on demand *)
  | Gauge of (unit -> float)
  | Histogram of Histogram.t
  | Multi of { label : string; sample : unit -> (string * float) list }
      (* one gauge family, one sample per label value (e.g. top-k keys) *)

type entry = { name : string; help : string; kind : kind }

type t = { mutex : Mutex.t; mutable entries : entry list (* reverse order *) }

let create () = { mutex = Mutex.create (); entries = [] }
let default = create ()

let with_lock t f =
  Mutex.lock t.mutex;
  match f () with
  | v ->
      Mutex.unlock t.mutex;
      v
  | exception e ->
      Mutex.unlock t.mutex;
      raise e

let valid_name name =
  name <> ""
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name
  && not (match name.[0] with '0' .. '9' -> true | _ -> false)

let register t ?(help = "") name kind =
  if not (valid_name name) then
    invalid_arg ("Rp_obs.Registry: invalid metric name " ^ name);
  with_lock t (fun () ->
      let entry = { name; help; kind } in
      if List.exists (fun e -> e.name = name) t.entries then
        t.entries <-
          List.map (fun e -> if e.name = name then entry else e) t.entries
      else t.entries <- entry :: t.entries)

let find t name =
  with_lock t (fun () -> List.find_opt (fun e -> e.name = name) t.entries)

let counter t ?help name =
  match find t name with
  | Some { kind = Counter c; _ } -> c
  | Some _ | None ->
      let c = Counter.create () in
      register t ?help name (Counter c);
      c

let histogram t ?help name =
  match find t name with
  | Some { kind = Histogram h; _ } -> h
  | Some _ | None ->
      let h = Histogram.create () in
      register t ?help name (Histogram h);
      h

let gauge t ?help name f = register t ?help name (Gauge f)

let multi_gauge t ?help name ~label sample =
  if not (valid_name label) then
    invalid_arg ("Rp_obs.Registry: invalid label name " ^ label);
  register t ?help name (Multi { label; sample })
let fn_counter t ?help name f = register t ?help name (Fn_counter f)
let register_counter t ?help name c = register t ?help name (Counter c)
let register_histogram t ?help name h = register t ?help name (Histogram h)

let names t =
  with_lock t (fun () -> List.rev_map (fun e -> e.name) t.entries)

let entries t = with_lock t (fun () -> List.rev t.entries)

let value t name =
  match find t name with
  | None -> None
  | Some e ->
      Some
        (match e.kind with
        | Counter c -> float_of_int (Counter.read c)
        | Fn_counter f | Gauge f -> f ()
        | Histogram h -> float_of_int (Histogram.snapshot h).Histogram.count
        | Multi m -> List.fold_left (fun acc (_, v) -> acc +. v) 0. (m.sample ()))

let reset_histograms t =
  List.iter
    (fun e -> match e.kind with Histogram h -> Histogram.reset h | _ -> ())
    (entries t)

(* --- rendering --- *)

let float_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

(* Histograms flatten into derived scalars for stats/JSON output. *)
let histogram_lines name (s : Histogram.snapshot) =
  [
    (name ^ "_count", string_of_int s.Histogram.count);
    (name ^ "_sum", string_of_int s.Histogram.sum);
    (name ^ "_max", string_of_int s.Histogram.max);
    (name ^ "_p50", string_of_int (Histogram.percentile s 0.5));
    (name ^ "_p99", string_of_int (Histogram.percentile s 0.99));
  ]

(* Prometheus label-value escaping (backslash, quote, newline). *)
let label_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let multi_lines name label samples =
  List.map
    (fun (k, v) ->
      (Printf.sprintf "%s{%s=\"%s\"}" name label (label_escape k),
       float_string v))
    samples

let to_stats ?(filter = fun _ -> true) t =
  List.concat_map
    (fun e ->
      if not (filter e.name) then []
      else
        match e.kind with
        | Counter c -> [ (e.name, string_of_int (Counter.read c)) ]
        | Fn_counter f | Gauge f -> [ (e.name, float_string (f ())) ]
        | Histogram h -> histogram_lines e.name (Histogram.snapshot h)
        | Multi m -> multi_lines e.name m.label (m.sample ()))
    (entries t)

let to_json ?filter t =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char buf ',';
      (* every rendered value is numeric; emit it bare *)
      Buffer.add_string buf (Printf.sprintf "%S:%s" name v))
    (to_stats ?filter t);
  Buffer.add_char buf '}';
  Buffer.contents buf

let prometheus_header buf name help typ =
  if help <> "" then
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name typ)

let prometheus_histogram buf name help (s : Histogram.snapshot) =
  prometheus_header buf name help "histogram";
  (* Cumulative buckets up to the last occupied one, then +Inf. *)
  let last =
    let l = ref 0 in
    Array.iteri (fun i c -> if c > 0 then l := i) s.Histogram.counts;
    !l
  in
  let cum = ref 0 in
  for b = 0 to last do
    cum := !cum + s.Histogram.counts.(b);
    Buffer.add_string buf
      (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" name (Histogram.upper_bound b)
         !cum)
  done;
  Buffer.add_string buf
    (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name s.Histogram.count);
  Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" name s.Histogram.sum);
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name s.Histogram.count)

let to_prometheus ?(filter = fun _ -> true) t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      if filter e.name then
        match e.kind with
        | Counter c ->
            prometheus_header buf e.name e.help "counter";
            Buffer.add_string buf
              (Printf.sprintf "%s %d\n" e.name (Counter.read c))
        | Fn_counter f ->
            prometheus_header buf e.name e.help "counter";
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" e.name (float_string (f ())))
        | Gauge f ->
            prometheus_header buf e.name e.help "gauge";
            Buffer.add_string buf
              (Printf.sprintf "%s %s\n" e.name (float_string (f ())))
        | Histogram h ->
            prometheus_histogram buf e.name e.help (Histogram.snapshot h)
        | Multi m ->
            prometheus_header buf e.name e.help "gauge";
            List.iter
              (fun (k, v) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s{%s=\"%s\"} %s\n" e.name m.label
                     (label_escape k) (float_string v)))
              (m.sample ()))
    (entries t);
  Buffer.contents buf
