(** Per-domain stripe slots shared by every striped instrument.

    A domain claims a slot on first use of any instrument (the same
    slot-registry idiom as [Rcu]'s reader slots, cached in domain-local
    state and released by a [Domain.at_exit] hook). While a domain is
    live it owns its slot exclusively, so striped instruments can record
    with plain unsynchronized stores — no atomic read-modify-write, no
    sharing — and still sum exactly once writers have quiesced (e.g.
    after [Domain.join]). *)

val capacity : int
(** Number of stripe slots (128, the runtime's domain ceiling). *)

val stride : int
(** Words between consecutive stripe cells in a flat [int array]: one
    64-byte cache line, preventing false sharing between domains. *)

val index : unit -> int
(** The calling domain's slot, in [0, capacity). Registers on first call.
    If every slot is taken (more than {!capacity} concurrently-live
    domains), returns a shared round-robin slot; instruments then
    undercount under write races but never crash. *)

val slots_in_use : unit -> int
(** Currently claimed slots (live domains that have recorded something). *)

(** {1 Global enable switch} *)

val set_enabled : bool -> unit
(** Turn the whole observability plane on or off. Disabled instruments
    cost one atomic load and a branch per record call. On by default. *)

val is_enabled : unit -> bool
