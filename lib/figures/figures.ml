type options = {
  duration : float;
  repeats : int;  (** measured points take the best of this many runs *)
  real_threads : int list;
  model_threads : int list;
  mc_real_procs : int list;
  mc_model_procs : int list;
  entries : int;
  small_buckets : int;
  large_buckets : int;
  csv_dir : string option;
}

let default_options =
  {
    duration = 0.5;
    repeats = 2;
    real_threads = [ 1; 2; 4 ];
    model_threads = Simcore.Predict.default_threads;
    mc_real_procs = [ 1; 2; 4 ];
    mc_model_procs = Simcore.Predict.mc_processes;
    entries = 4096;
    small_buckets = 8192;
    large_buckets = 16384;
    csv_dir = None;
  }

let quick_options =
  {
    default_options with
    duration = 0.15;
    repeats = 1;
    real_threads = [ 1; 2 ];
    mc_real_procs = [ 1; 2 ];
    entries = 1024;
    small_buckets = 2048;
    large_buckets = 4096;
  }

type figure_result = {
  measured : Rp_harness.Series.t list;
  projected : Rp_harness.Series.t list;
}

(* --- generic lookup-throughput measurement --- *)

let measure_lookup_throughput ~table:(module T : Rp_baseline.Table_intf.TABLE)
    ~threads ~duration ~entries ~buckets ~resize_between =
  (* Previous measurements' tables are garbage by now; reclaim them so GC
     pressure from one data point cannot contaminate the next. *)
  Gc.compact ();
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:buckets () in
  for i = 0 to entries - 1 do
    T.insert t i i
  done;
  let reader index ~stop =
    let keygen =
      Rp_workload.Keygen.create ~keyspace:entries ~seed:1234 ~worker:index ()
    in
    let ops =
      Rp_harness.Runner.loop_batched ~stop ~batch:128 ~f:(fun () ->
          ignore (T.find t (Rp_workload.Keygen.next_key keygen)))
    in
    (* QSBR grace periods must stop waiting for this domain once it exits. *)
    T.reader_exit t;
    ops
  in
  let readers = Array.init threads (fun i ~stop -> reader i ~stop) in
  let workers =
    match resize_between with
    | None -> readers
    | Some (small, large) ->
        let resizer ~stop =
          while not (Atomic.get stop) do
            T.resize t large;
            T.resize t small
          done;
          (* Resize flips are not lookups; contribute no ops. *)
          0
        in
        Array.append readers [| resizer |]
  in
  let outcome = Rp_harness.Runner.run ~duration ~workers () in
  Rp_harness.Runner.throughput outcome

(* Shared vCPUs suffer unpredictable steal time; the best of [repeats]
   short runs is a far more stable estimate of achievable throughput than a
   single sample. *)
let best_of repeats f =
  let rec go best n = if n = 0 then best else go (Float.max best (f ())) (n - 1) in
  go (f ()) (max 0 (repeats - 1))

let lookup_series options ~label ~table ~buckets ~resize_between =
  let points =
    List.map
      (fun threads ->
        let tput =
          best_of options.repeats (fun () ->
              measure_lookup_throughput ~table ~threads
                ~duration:options.duration ~entries:options.entries ~buckets
                ~resize_between)
        in
        (threads, tput))
      options.real_threads
  in
  Rp_harness.Series.make ~label ~points

let lambda_of (series : Rp_harness.Series.t) =
  match Rp_harness.Series.y_at series 1 with
  | Some l when l > 0.0 -> l
  | Some _ | None -> 1.0e6 (* defensive fallback; never expected *)

(* Single-thread calibration for the continuously-resizing scenarios: on the
   paper's testbed the resizer runs on its own core, but on a single-core
   host it steals roughly half the reader's CPU. Correct the calibration by
   the runnable-domain share (2 runnable domains at 1 reader); no-op on
   multicore hosts, and recorded in EXPERIMENTS.md. *)
let lambda_of_resizing (series : Rp_harness.Series.t) =
  let base = lambda_of series in
  if Domain.recommended_domain_count () >= 2 then base else base *. 2.0

(* --- figure 1: fixed-size baseline --- *)

let fig1 options =
  let buckets = options.small_buckets in
  let run label table =
    lookup_series options ~label ~table ~buckets ~resize_between:None
  in
  (* "rp" is the QSBR-flavoured table: the paper's RP readers ride kernel
     RCU, whose read side is free. The memb-flavoured curve is reported too
     (the safe userspace default, two stores per read section). *)
  let rp = run "rp" (module Rp_baseline.Rp_table.Qsbr : Rp_baseline.Table_intf.TABLE) in
  let rp_memb =
    run "rp-memb" (module Rp_baseline.Rp_table.Resizable : Rp_baseline.Table_intf.TABLE)
  in
  let ddds = run "ddds" (module Rp_baseline.Ddds_ht : Rp_baseline.Table_intf.TABLE) in
  let rwlock = run "rwlock" (module Rp_baseline.Rwlock_ht : Rp_baseline.Table_intf.TABLE) in
  let projected =
    Simcore.Predict.fig1 ~threads:options.model_threads
      ~lambda_rp_memb:(lambda_of rp_memb) ~lambda_rp:(lambda_of rp)
      ~lambda_ddds:(lambda_of ddds) ~lambda_rwlock:(lambda_of rwlock) ()
  in
  { measured = [ rp; rp_memb; ddds; rwlock ]; projected }

(* --- figure 2: continuous resizing --- *)

let fig2 options =
  let resize_between = Some (options.small_buckets, options.large_buckets) in
  let rp =
    lookup_series options ~label:"rp(resize)"
      ~table:(module Rp_baseline.Rp_table.Qsbr : Rp_baseline.Table_intf.TABLE)
      ~buckets:options.small_buckets ~resize_between
  in
  let ddds =
    lookup_series options ~label:"ddds(resize)"
      ~table:(module Rp_baseline.Ddds_ht : Rp_baseline.Table_intf.TABLE)
      ~buckets:options.small_buckets ~resize_between
  in
  let projected =
    Simcore.Predict.fig2 ~threads:options.model_threads
      ~lambda_rp:(lambda_of_resizing rp) ~lambda_ddds:(lambda_of_resizing ddds) ()
  in
  { measured = [ rp; ddds ]; projected }

(* --- figures 3 and 4: resize vs fixed, per algorithm --- *)

let resize_vs_fixed options ~table ~predict =
  let fixed_small =
    lookup_series options ~label:"8k" ~table ~buckets:options.small_buckets
      ~resize_between:None
  in
  let fixed_large =
    lookup_series options ~label:"16k" ~table ~buckets:options.large_buckets
      ~resize_between:None
  in
  let resizing =
    lookup_series options ~label:"resize" ~table ~buckets:options.small_buckets
      ~resize_between:(Some (options.small_buckets, options.large_buckets))
  in
  let projected =
    predict ~lambda_8k:(lambda_of fixed_small) ~lambda_16k:(lambda_of fixed_large)
      ~lambda_resize:(lambda_of_resizing resizing)
  in
  { measured = [ fixed_small; fixed_large; resizing ]; projected }

let fig3 options =
  resize_vs_fixed options
    ~table:(module Rp_baseline.Rp_table.Qsbr : Rp_baseline.Table_intf.TABLE)
    ~predict:(fun ~lambda_8k ~lambda_16k ~lambda_resize ->
      Simcore.Predict.fig3 ~threads:options.model_threads ~lambda_8k ~lambda_16k
        ~lambda_resize ())

let fig4 options =
  resize_vs_fixed options
    ~table:(module Rp_baseline.Ddds_ht : Rp_baseline.Table_intf.TABLE)
    ~predict:(fun ~lambda_8k ~lambda_16k ~lambda_resize ->
      Simcore.Predict.fig4 ~threads:options.model_threads ~lambda_8k ~lambda_16k
        ~lambda_resize ())

(* --- figure 5: memcached --- *)

let mc_series options ~label ~backend ~mode =
  let points =
    List.map
      (fun workers ->
        let tput =
          best_of options.repeats (fun () ->
              Gc.compact ();
              let result =
                Memcached.Mc_benchmark.run_backend ~backend
                  {
                    Memcached.Mc_benchmark.workers;
                    duration = options.duration;
                    keyspace = min options.entries 10_000;
                    value_size = 100;
                    mode;
                    seed = 42;
                    dist = Rp_workload.Keygen.Uniform;
                  }
              in
              result.Memcached.Mc_benchmark.requests_per_second)
        in
        (workers, tput))
      options.mc_real_procs
  in
  Rp_harness.Series.make ~label ~points

let fig5 options =
  let rp_get =
    mc_series options ~label:"RP GET" ~backend:Memcached.Store.Rp
      ~mode:Memcached.Mc_benchmark.Get_only
  in
  let lock_get =
    mc_series options ~label:"default GET" ~backend:Memcached.Store.Lock
      ~mode:Memcached.Mc_benchmark.Get_only
  in
  let lock_set =
    mc_series options ~label:"default SET" ~backend:Memcached.Store.Lock
      ~mode:Memcached.Mc_benchmark.Set_only
  in
  let rp_set =
    mc_series options ~label:"RP SET" ~backend:Memcached.Store.Rp
      ~mode:Memcached.Mc_benchmark.Set_only
  in
  let projected =
    Simcore.Predict.fig5 ~processes:options.mc_model_procs
      ~lambda_get_rp:(lambda_of rp_get) ~lambda_get_lock:(lambda_of lock_get)
      ~lambda_set_lock:(lambda_of lock_set) ~lambda_set_rp:(lambda_of rp_set) ()
  in
  { measured = [ rp_get; lock_get; lock_set; rp_set ]; projected }

(* --- rendering --- *)

let to_millions = List.map (fun s -> Rp_harness.Series.scale s 1e-6)

let print_figure ~title ~x_label options slug result =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "\n-- measured on this host (%d hw core%s) --\n"
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  Rp_harness.Report.print_series_table ~unit_label:"Mops/s" ~x_label
    (to_millions result.measured);
  Printf.printf "\n-- cost-model projection, 16-way machine --\n";
  Rp_harness.Report.print_series_table ~unit_label:"Mops/s" ~x_label
    (to_millions result.projected);
  print_newline ();
  Rp_harness.Report.print_ascii_chart ~title:(title ^ " (projected, Mops/s)")
    (to_millions result.projected);
  match options.csv_dir with
  | None -> ()
  | Some dir ->
      Rp_harness.Report.write_csv
        ~path:(Filename.concat dir (slug ^ "_measured.csv"))
        ~x_label result.measured;
      Rp_harness.Report.write_csv
        ~path:(Filename.concat dir (slug ^ "_projected.csv"))
        ~x_label result.projected

let run_all options =
  print_figure options "fig1"
    ~title:"Figure 1: lookups/s, fixed-size table (RP vs DDDS vs rwlock)"
    ~x_label:"readers" (fig1 options);
  print_figure options "fig2"
    ~title:"Figure 2: lookups/s under continuous resizing (RP vs DDDS)"
    ~x_label:"readers" (fig2 options);
  print_figure options "fig3"
    ~title:"Figure 3: RP resize vs fixed sizes" ~x_label:"readers" (fig3 options);
  print_figure options "fig4"
    ~title:"Figure 4: DDDS resize vs fixed sizes" ~x_label:"readers"
    (fig4 options);
  print_figure options "fig5"
    ~title:"Figure 5: memcached requests/s (RP vs default, GET and SET)"
    ~x_label:"processes" (fig5 options)
