(** Pressure-sensing policy plane: the degradation ladder

    {v Healthy -> Throttle -> Shed -> Emergency v}

    fed by pluggable pressure sources and swept periodically with
    hysteresis. The guard decides nothing about traffic itself: hot
    paths ask {!admit_mutation}/{!accepting} (one atomic load each) and
    act; actuators (pause snapshots, flip fsync, evict) subscribe via
    {!on_transition}. Every transition emits a control-tier
    {!Rp_trace} event and bumps registry instruments
    ([guard_state], [guard_shed_total], …). *)

type state = Healthy | Throttle | Shed | Emergency

val state_name : state -> string
val int_of_state : state -> int
val state_of_int : int -> state

(** Ladder thresholds over normalized pressure (1.0 = at the configured
    limit). Each rung's [down] sits below its [up]: the hysteresis band
    that keeps shedding from flapping at a boundary. *)
type watermarks = {
  throttle_up : float;
  throttle_down : float;
  shed_up : float;
  shed_down : float;
  emergency_up : float;
  emergency_down : float;
}

val default_watermarks : watermarks
(** 0.70/0.55, 0.85/0.70, 0.95/0.80. *)

val watermarks_of_string : string -> (watermarks, string) result
(** ["HIGH:LOW"] positions the Shed rung ([0 < LOW < HIGH <= 1]);
    Throttle and Emergency are derived at -0.15/+0.10 around it. *)

type t

val create : ?watermarks:watermarks -> ?interval:float -> unit -> t
(** [interval] (default 0.05 s) is the sweep period — also the bound on
    how long a vanished overload lingers before the guard returns to
    [Healthy]. *)

val add_source : t -> name:string -> (unit -> float) -> unit
(** Register a pressure source. Sampled by every sweep; return
    normalized pressure (0 idle, 1 at the limit, 2 = hard-failure
    latch, which forces [Emergency]). A sampler that raises keeps its
    previous value. *)

val on_transition : t -> (state -> state -> unit) -> unit
(** Subscribe an actuator: called as [(old_state, new_state)] on every
    transition, outside the guard mutex, exceptions swallowed. *)

val start : t -> unit
(** Spawn the background sweeper thread. Idempotent. *)

val stop : t -> unit
val sweep : t -> unit
(** One synchronous pressure evaluation (what the sweeper runs). *)

val state : t -> state
val peak_state : t -> state
val pressure : t -> float
val source_pressures : t -> (string * float) list
val interval : t -> float

val admit_mutation : t -> bool
(** [false] from [Shed] up: fast-fail the mutation before the writer
    lock. One atomic load. *)

val accepting : t -> bool
(** [false] only at [Emergency]: stop accepting new connections (GET
    traffic on live connections keeps flowing). *)

val note_shed : t -> unit
val shed_total : t -> int
val transitions : t -> int

val register_instruments : t -> Rp_obs.Registry.t -> unit
(** Register [guard_state], [guard_state_peak], [guard_pressure],
    [guard_pressure_<source>], [guard_shed_total],
    [guard_transitions_total], [guard_sweeps_total]. *)

val stats_kv : t -> (string * string) list
(** Live [stats guard] lines (state name, per-source pressures, …). *)
