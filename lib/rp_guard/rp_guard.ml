(* Pressure-sensing policy plane: a degradation ladder fed by pluggable
   pressure sources.

   Sources report normalized pressure (0 = idle, 1 = at the configured
   limit, >1 = past it; a hard-failure latch reports 2). A periodic sweep
   takes the max across sources and walks the ladder

       Healthy -> Throttle -> Shed -> Emergency

   with hysteresis: each rung's down-threshold sits below its
   up-threshold, so the state never flaps at a boundary. Upward moves
   jump straight to the rung the pressure demands; downward moves also
   resolve in a single sweep (a storm that ends returns the guard to
   Healthy within one sweep interval), but only once pressure clears the
   lower threshold.

   The guard itself decides nothing about traffic — hot paths ask
   {!admit_mutation} (one atomic load) and act; actuators subscribe via
   {!on_transition}. Every transition is a control-tier flight-recorder
   event and bumps the registry instruments, so the ladder is visible in
   [stats guard], Prometheus, and the Perfetto export. *)

type state = Healthy | Throttle | Shed | Emergency

let state_name = function
  | Healthy -> "healthy"
  | Throttle -> "throttle"
  | Shed -> "shed"
  | Emergency -> "emergency"

let int_of_state = function
  | Healthy -> 0
  | Throttle -> 1
  | Shed -> 2
  | Emergency -> 3

let state_of_int = function
  | 0 -> Healthy
  | 1 -> Throttle
  | 2 -> Shed
  | _ -> Emergency

type watermarks = {
  throttle_up : float;
  throttle_down : float;
  shed_up : float;
  shed_down : float;
  emergency_up : float;
  emergency_down : float;
}

let default_watermarks =
  {
    throttle_up = 0.70;
    throttle_down = 0.55;
    shed_up = 0.85;
    shed_down = 0.70;
    emergency_up = 0.95;
    emergency_down = 0.80;
  }

(* "HIGH:LOW" positions the Shed rung; Throttle sits 0.15 below it and
   Emergency 0.10 above (clamped to 0.99), preserving the default
   ladder's shape around a caller-chosen center. *)
let watermarks_of_string s =
  match String.split_on_char ':' s with
  | [ hi; lo ] -> (
      match (float_of_string_opt hi, float_of_string_opt lo) with
      | Some hi, Some lo when 0.0 < lo && lo < hi && hi <= 1.0 ->
          Ok
            {
              throttle_up = Float.max 0.05 (hi -. 0.15);
              throttle_down = Float.max 0.01 (lo -. 0.15);
              shed_up = hi;
              shed_down = lo;
              emergency_up = Float.min 0.99 (hi +. 0.10);
              emergency_down = Float.min 0.95 (lo +. 0.10);
            }
      | _ -> Error "shed watermarks must satisfy 0 < LOW < HIGH <= 1")
  | _ -> Error "expected HIGH:LOW, e.g. 0.85:0.70"

type source = { src_name : string; sample : unit -> float; mutable last : float }

type t = {
  wm : watermarks;
  interval : float;
  state : int Atomic.t;
  mutex : Mutex.t;  (* sources/listeners registration; sweep serialization *)
  mutable sources : source list;  (* registration order reversed *)
  mutable listeners : (state -> state -> unit) list;
  mutable pressure : float;  (* max across sources at the last sweep *)
  mutable peak : int;  (* highest rung ever reached *)
  mutable last_transition : float;
  shed : Rp_obs.Counter.t;
  transitions : int Atomic.t;
  sweeps : int Atomic.t;
  running : bool Atomic.t;
  mutable sweeper : Thread.t option;
}

let k_state = Rp_trace.intern "guard.state"
let k_sweep = Rp_trace.intern "guard.sweep"

let create ?(watermarks = default_watermarks) ?(interval = 0.05) () =
  if interval <= 0.0 then invalid_arg "Rp_guard.create: interval <= 0";
  {
    wm = watermarks;
    interval;
    state = Atomic.make 0;
    mutex = Mutex.create ();
    sources = [];
    listeners = [];
    pressure = 0.0;
    peak = 0;
    last_transition = Unix.gettimeofday ();
    shed = Rp_obs.Counter.create ();
    transitions = Atomic.make 0;
    sweeps = Atomic.make 0;
    running = Atomic.make false;
    sweeper = None;
  }

let interval t = t.interval
let state t = state_of_int (Atomic.get t.state)
let peak_state t = state_of_int t.peak
let pressure t = t.pressure
let shed_total t = Rp_obs.Counter.read t.shed
let transitions t = Atomic.get t.transitions

(* Hot-path queries: one atomic load each. Mutations are shed from Shed
   up; connection admission closes only at Emergency (GET-only clients
   must still be able to reach the wait-free read path). *)
let admit_mutation t = Atomic.get t.state < 2
let accepting t = Atomic.get t.state < 3
let note_shed t = Rp_obs.Counter.incr t.shed

let add_source t ~name sample =
  Mutex.lock t.mutex;
  t.sources <- { src_name = name; sample; last = 0.0 } :: t.sources;
  Mutex.unlock t.mutex

let on_transition t f =
  Mutex.lock t.mutex;
  t.listeners <- f :: t.listeners;
  Mutex.unlock t.mutex

let source_pressures t =
  Mutex.lock t.mutex;
  let out = List.rev_map (fun s -> (s.src_name, s.last)) t.sources in
  Mutex.unlock t.mutex;
  out

(* The ladder step. Upward: straight to the rung the up-thresholds
   demand. Downward: straight to the rung whose down-threshold the
   pressure has cleared — but a pressure still inside a rung's
   hysteresis band (between down and up) holds the current rung. *)
let next_state wm cur p =
  let up =
    if p >= wm.emergency_up then 3
    else if p >= wm.shed_up then 2
    else if p >= wm.throttle_up then 1
    else 0
  in
  if up > cur then up
  else
    let down =
      if p < wm.throttle_down then 0
      else if p < wm.shed_down then 1
      else if p < wm.emergency_down then 2
      else 3
    in
    if down < cur then max down up else cur

let sweep t =
  Mutex.lock t.mutex;
  Atomic.incr t.sweeps;
  let p =
    List.fold_left
      (fun acc s ->
        let v = try s.sample () with _ -> s.last in
        s.last <- v;
        Float.max acc v)
      0.0 t.sources
  in
  t.pressure <- p;
  let cur = Atomic.get t.state in
  let next = next_state t.wm cur p in
  let fire =
    if next <> cur then begin
      Atomic.set t.state next;
      Atomic.incr t.transitions;
      if next > t.peak then t.peak <- next;
      t.last_transition <- Unix.gettimeofday ();
      (* Control tier: always recorded, so every transition lands in the
         Perfetto export with old*4+new packed in the arg. *)
      Rp_trace.instant ~arg:((cur * 4) + next) k_state;
      Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:next "guard.state";
      Some (t.listeners, state_of_int cur, state_of_int next)
    end
    else None
  in
  Mutex.unlock t.mutex;
  match fire with
  | None -> ()
  | Some (listeners, old_s, new_s) ->
      (* Actuators run outside the guard mutex (they may take store or
         persistence locks); a failing actuator must not kill the sweep. *)
      List.iter (fun f -> try f old_s new_s with _ -> ()) (List.rev listeners)

let sweeper_loop t =
  while Atomic.get t.running do
    Rp_trace.with_span k_sweep (fun () -> sweep t);
    Unix.sleepf t.interval
  done

let start t =
  if not (Atomic.get t.running) then begin
    Atomic.set t.running true;
    t.sweeper <- Some (Thread.create sweeper_loop t)
  end

let stop t =
  if Atomic.get t.running then begin
    Atomic.set t.running false;
    (match t.sweeper with Some th -> Thread.join th | None -> ());
    t.sweeper <- None
  end

let register_instruments t reg =
  Rp_obs.Registry.gauge reg
    ~help:"degradation ladder rung (0 healthy, 1 throttle, 2 shed, 3 emergency)"
    "guard_state" (fun () -> float_of_int (Atomic.get t.state));
  Rp_obs.Registry.gauge reg ~help:"highest ladder rung reached"
    "guard_state_peak" (fun () -> float_of_int t.peak);
  Rp_obs.Registry.gauge reg ~help:"max pressure across sources at last sweep"
    "guard_pressure" (fun () -> t.pressure);
  Rp_obs.Registry.register_counter reg
    ~help:"mutations fast-failed with SERVER_ERROR overloaded"
    "guard_shed_total" t.shed;
  Rp_obs.Registry.fn_counter reg ~help:"guard state transitions"
    "guard_transitions_total" (fun () -> float_of_int (Atomic.get t.transitions));
  Rp_obs.Registry.fn_counter reg ~help:"pressure sweeps run"
    "guard_sweeps_total" (fun () -> float_of_int (Atomic.get t.sweeps));
  Mutex.lock t.mutex;
  let sources = List.rev t.sources in
  Mutex.unlock t.mutex;
  List.iter
    (fun s ->
      Rp_obs.Registry.gauge reg
        ~help:("normalized pressure from the " ^ s.src_name ^ " source")
        ("guard_pressure_" ^ s.src_name)
        (fun () -> s.last))
    sources

let stats_kv t =
  let srcs =
    String.concat " "
      (List.map
         (fun (n, v) -> Printf.sprintf "%s=%.3f" n v)
         (source_pressures t))
  in
  [
    ("guard_state_name", state_name (state t));
    ("guard_state", string_of_int (Atomic.get t.state));
    ("guard_state_peak", state_name (peak_state t));
    ("guard_pressure", Printf.sprintf "%.3f" t.pressure);
    ("guard_sources", if srcs = "" then "-" else srcs);
    ("guard_shed_total", string_of_int (shed_total t));
    ("guard_transitions_total", string_of_int (transitions t));
    ("guard_sweep_interval_ms", Printf.sprintf "%.0f" (t.interval *. 1000.));
  ]
