(** rp_trace: always-on sampling flight recorder.

    Causal span tracing across the serving, RCU, and persistence planes.
    Every domain records spans into a preallocated per-domain ring with
    plain unsynchronized stores (the {!Rp_obs.Stripe} discipline — a live
    domain owns its stripe slot exclusively) and CLOCK_MONOTONIC
    nanosecond timestamps from a noalloc C stub.

    Three emission tiers:
    - {e request tier} ({!request_begin}/{!request_end}): one B/E pair
      per protocol request, always recorded — the substrate the tail
      trigger retains when a request exceeds its latency budget;
    - {e detail tier} ({!span_begin_sampled} …): per-operation spans
      recorded only inside a head-sampled request. While no sampled
      request is in flight anywhere, the guard is one atomic load;
    - {e control tier} ({!span_begin} …): rare always-recorded spans
      (grace periods, resize passes, snapshots, CLOCK sweeps).

    Span names are interned once ({!intern}) so the emit path never
    touches a string. Exports render Chrome trace-event / Perfetto
    JSON. *)

(** {1 Configuration} *)

val set_enabled : bool -> unit
(** Master switch (on by default). Off, every entry point is an atomic
    load and a branch. *)

val is_enabled : unit -> bool

val configure : ?sample:int -> ?slow_ms:float -> ?buffer:int -> unit -> unit
(** [sample]: head-sample 1 request in N (default 1024; 1 = every
    request). [slow_ms]: tail-trigger latency budget (default 100 ms).
    [buffer]: records per domain ring (default 1024, sized to keep the
    ring L2-resident) — changing it swaps and clears every allocated
    ring. *)

val sample_every : unit -> int
val slow_budget_ms : unit -> float
val buffer_size : unit -> int

val now_ns : unit -> int
(** CLOCK_MONOTONIC, nanoseconds. *)

val now_ticks : unit -> int
(** The raw cycle counter records are stamped with (TSC / CNTVCT); a
    few ns per read. Convert via the calibrated decode path
    ({!snapshot}), not by hand. *)

(** {1 Span names} *)

val intern : string -> int
(** Intern a span name to the id the emit path takes. Call once at
    module init, not per span. *)

val name_of : int -> string

(** {1 Request context (per-connection trace context)} *)

val request_begin : ?arg:int -> ?trace:int -> int -> unit
(** Open the calling domain's request context: decides head sampling,
    assigns a trace id, emits the request-tier B record, and makes the
    request span the parent of every span emitted on this domain until
    {!request_end}. [arg] conventionally carries the connection id.
    [trace] (nonzero) adopts a trace id propagated from another process
    — e.g. the replication stream carrying a leader request's id to the
    follower apply — instead of minting a fresh one, so one Perfetto
    view groups both halves of the mutation. *)

val request_end : unit -> unit
(** Emit the request-tier E record, close the context, and — when total
    latency exceeded the budget — retain the request's span window in
    the slow-request log. *)

val in_request : unit -> bool

val current_trace_id : unit -> int
(** Trace id of the request in flight on the calling domain (0 when
    none) — capture it where a mutation crosses a process boundary so
    the far side can {!request_begin} with the same id. *)

val sampling_now : unit -> bool
(** The calling domain is inside a head-sampled request (detail spans
    will record). *)

(** {1 Spans}

    [begin] functions return a span id (or [-1] when not recording);
    pass it to the matching [end]. Begin/end must stay on the domain
    that opened the span. *)

val span_begin : ?arg:int -> int -> int
(** Control tier: recorded whenever tracing is enabled. *)

val span_end : ?arg:int -> int -> int -> unit

val instant : ?arg:int -> int -> unit

val with_span : ?arg:int -> int -> (unit -> 'a) -> 'a
(** Control-tier span around [f], closed on exception. *)

val span_begin_sampled : ?arg:int -> int -> int
(** Detail tier: recorded only inside a head-sampled request. Detail
    spans write a single complete (X) record at span end rather than a
    B/E pair — half the ring traffic on the hottest path. *)

val span_end_sampled : ?arg:int -> int -> int -> unit
val instant_sampled : ?arg:int -> int -> unit

(** {1 Export} *)

type event = {
  name : string;
  phase : int; (* 0 = B, 1 = E, 2 = instant, 3 = X (complete span) *)
  ts_ns : int;
  dur_ns : int; (* complete-span duration; 0 unless phase 3 *)
  trace : int;
  span : int;
  parent : int;
  arg : int;
  domain : int;
  seq : int;
}

val snapshot : ?max_events:int -> unit -> event list * int
(** Decode the rings: events sorted by timestamp (stable within a domain
    by ring order), plus the count of records skipped because a
    concurrent writer overwrote them mid-read. With [max_events], the
    newest events win. *)

val export_json : ?max_events:int -> unit -> string
(** Chrome trace-event / Perfetto JSON ([ts] in microseconds since
    process start). *)

type slow_entry = {
  slow_trace : int;
  slow_dur_ns : int;
  slow_arg : int;
  slow_domain : int;
  slow_events : event list;
  slow_dropped : int;
}

val slow_snapshot : unit -> slow_entry list
(** Retained slow requests, newest first. *)

(** {1 Introspection} *)

val spans_recorded : unit -> int

val stats_kv : unit -> (string * string) list
(** The [stats trace] section. *)

val register_instruments : Rp_obs.Registry.t -> unit
(** Register [trace_*] fn-counters (spans, drops, sampled requests,
    slow retentions) for Prometheus/JSON exposition. *)

(** {1 Tests} *)

val reset_sampler : ?seed:int -> unit -> unit
(** Restart every domain's head-sample counter at [seed] so the sampled
    pattern is deterministic. *)

val reset : unit -> unit
(** Drop all recorded spans, slow entries, and counters (tests only;
    racy against concurrent emitters). *)
