/* Clocks for the flight recorder.

   Two time sources:

   - rp_trace_now_ns: CLOCK_MONOTONIC in nanoseconds as a tagged OCaml
     int. 62 bits of nanoseconds cover ~73 years of uptime. The vDSO
     makes the call a few tens of nanoseconds — fine for the request
     tier and control spans, too expensive to pay twice per table
     lookup.

   - rp_trace_now_ticks: the CPU cycle counter (TSC on x86-64, CNTVCT
     on aarch64), a handful of nanoseconds per read. Records stamp
     ticks; the OCaml side calibrates ticks against CLOCK_MONOTONIC
     and converts on the cold decode path. Both counters are
     constant-rate and synchronized across cores on every machine this
     targets (invariant TSC / architectural counter); the fallback for
     anything else is the monotonic clock itself, which just makes the
     calibration a unit conversion. */

#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

static intnat monotonic_ns(void)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return (intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec;
}

CAMLprim value rp_trace_now_ns(value unit)
{
  (void)unit;
  return Val_long(monotonic_ns());
}

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
static inline uint64_t cycle_ticks(void) { return __rdtsc(); }
#elif defined(__aarch64__)
static inline uint64_t cycle_ticks(void)
{
  uint64_t v;
  __asm__ __volatile__("mrs %0, cntvct_el0" : "=r"(v));
  return v;
}
#else
static inline uint64_t cycle_ticks(void) { return (uint64_t)monotonic_ns(); }
#endif

CAMLprim value rp_trace_now_ticks(value unit)
{
  (void)unit;
  return Val_long((intnat)cycle_ticks());
}
