(* rp_trace: always-on sampling flight recorder.

   Causal span tracing across the serving, RCU, and persistence planes.
   The recording discipline mirrors Rp_obs.Stripe: every domain owns one
   stripe slot exclusively, so span records are plain unsynchronized
   stores into a per-domain preallocated ring — no atomics, no locks, no
   allocation on the emit path. Records stamp the CPU cycle counter
   (noalloc C stub, a few ns per read); decode converts ticks to
   CLOCK_MONOTONIC nanoseconds through a calibrated rate.

   Three emission tiers keep the read path honest:

   - request tier: one B/E record pair per protocol request, emitted at
     protocol altitude (syscall-dominated) regardless of sampling — this
     is the substrate the tail trigger retains when a request blows its
     latency budget;
   - detail tier: per-operation spans (table lookup, read section, oplog
     append/fsync) emitted only while the current domain is inside a
     head-sampled request. When no sampled request is in flight anywhere
     the guard is a single atomic load and branch;
   - control tier: rare, always-emitted spans (grace periods, resize and
     unzip passes, snapshots, CLOCK sweeps, rotation).

   Records are stamped with their ring sequence number at both ends; a
   concurrent exporter validates the double stamp and skips records torn
   by a wrap-around overwrite. The owning domain itself never observes a
   torn record. *)

module Stripe = Rp_obs.Stripe
module Counter = Rp_obs.Counter

external now_ns : unit -> int = "rp_trace_now_ns" [@@noalloc]
external now_ticks : unit -> int = "rp_trace_now_ticks" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Tick calibration                                                    *)

(* Records stamp the CPU cycle counter (a few ns per read) instead of
   CLOCK_MONOTONIC (~30 ns through the vDSO) — at two stamps per span
   the clock would otherwise dominate the fully-sampled emit cost. The
   pair below anchors the two clocks at module init; every later
   [refine] turns the widening window into a rate estimate, and decode
   converts ticks back to monotonic nanoseconds. *)
let cal_ticks0 = now_ticks ()
let cal_mono0 = now_ns ()

(* ns per tick; 0. until first calibrated. Only cold paths and the
   request tier touch it. *)
let ns_per_tick = Atomic.make 0.

let refine () =
  let t = now_ticks () in
  let m = now_ns () in
  let dt = t - cal_ticks0 in
  if dt <= 0 then (
    let r = Atomic.get ns_per_tick in
    if r > 0. then r else 1.)
  else begin
    let r = float_of_int (m - cal_mono0) /. float_of_int dt in
    Atomic.set ns_per_tick r;
    r
  end

let[@inline] ticks_to_ns rate t =
  cal_mono0 + int_of_float (float_of_int (t - cal_ticks0) *. rate)

(* ------------------------------------------------------------------ *)
(* Record layout                                                       *)

(* Words per record. [seq] is stamped at both ends so exporters can
   detect a record overwritten mid-read; phases match Chrome trace-event
   semantics. Request and control spans emit B/E pairs (a hang shows the
   open B); detail spans emit one complete X record at span end — half
   the ring traffic on the hottest path. *)
let rec_words = 9
let phase_b = 0
let phase_e = 1
let phase_i = 2
let phase_x = 3

let capacity = Stripe.capacity
let stride = Stripe.stride

(* ------------------------------------------------------------------ *)
(* Interned span names                                                 *)

let names_mutex = Mutex.create ()
let max_kinds = 512
let names = Array.make max_kinds ""
let names_count = Atomic.make 0

let intern name =
  Mutex.lock names_mutex;
  let n = Atomic.get names_count in
  let found = ref (-1) in
  (try
     for i = 0 to n - 1 do
       if String.equal names.(i) name then begin
         found := i;
         raise Exit
       end
     done
   with Exit -> ());
  let id =
    match !found with
    | -1 ->
        if n >= max_kinds then n - 1 (* overflow: reuse the last kind *)
        else begin
          names.(n) <- name;
          Atomic.set names_count (n + 1);
          n
        end
    | i -> i
  in
  Mutex.unlock names_mutex;
  id

let name_of id = if id >= 0 && id < Atomic.get names_count then names.(id) else "?"

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let enabled = Atomic.make true
let sample = Atomic.make 1024
let slow_ns = Atomic.make 100_000_000 (* 100 ms *)

(* The tail trigger compares tick durations, so the ns budget is
   mirrored in ticks; 0 means "recompute from the current rate" (set
   whenever the budget or the calibration moves). *)
let slow_ticks = Atomic.make 0

(* 1024 records * 9 words = 72 KiB per domain: the ring stays L2-resident,
   so fully-sampled emission streams into cache instead of fighting the
   table's pointer chase for DRAM bandwidth (measurably ~2x the span cost
   when the ring spills). Still ~10x the span count of any one request,
   which is all the tail trigger needs to retain a window. *)
let buffer_records = Atomic.make 1024
let slow_capacity = 32

let set_enabled b = Atomic.set enabled b
let is_enabled () = Atomic.get enabled

(* ------------------------------------------------------------------ *)
(* Per-domain state                                                    *)

(* Parent stack depth. Beyond this, spans still emit but parent links
   pin to the deepest tracked ancestor. *)
let max_depth = 32

type ctx = {
  mutable trace_id : int; (* 0 = no request in flight on this slot *)
  mutable sampled : bool;
  mutable req_kind : int;
  mutable req_arg : int;
  mutable req_span : int;
  mutable req_start : int; (* ns *)
  mutable req_cursor : int; (* ring cursor at request begin *)
  mutable req_depth0 : int; (* stack depth when the request opened *)
  mutable depth : int;
  stack : int array; (* enclosing span ids; parent = stack.(depth-1) *)
  tstack : int array; (* begin ticks of open detail spans, same indexing *)
  astack : int array; (* begin args of open detail spans, same indexing *)
  mutable req_count : int; (* per-slot request counter (head sampler) *)
}

let make_ctx () =
  {
    trace_id = 0;
    sampled = false;
    req_kind = 0;
    req_arg = 0;
    req_span = 0;
    req_start = 0;
    req_cursor = 0;
    req_depth0 = 0;
    depth = 0;
    stack = Array.make max_depth 0;
    tstack = Array.make max_depth 0;
    astack = Array.make max_depth 0;
    req_count = 0;
  }

let ctxs = Array.init capacity (fun _ -> make_ctx ())

(* Count of head-sampled requests currently in flight across the whole
   process: the detail-tier fast guard. 0 almost always at 1-in-1024. *)
let sampled_active = Atomic.make 0

(* Per-slot span rings, allocated lazily on a slot's first emission so an
   idle process does not pay capacity * buffer words. [cursors] and
   [span_seqs] are stride-padded like every striped instrument. *)
let rings = Array.make capacity [||]
let rings_mutex = Mutex.create ()
let cursors = Array.make (capacity * stride) 0
let span_seqs = Array.make (capacity * stride) 0

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let reqs_total = Counter.create ()
let reqs_sampled = Counter.create ()
let spans_dropped = Counter.create () (* lost from slow-request windows *)
let slow_retained_c = Counter.create ()
let slow_evicted_c = Counter.create ()

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

(* Ring capacities are rounded up to powers of two so the emit path
   masks instead of dividing (integer division is ~20 cycles, twice the
   cost of the rest of a record). *)
let rec pow2_at_least n acc = if acc >= n then acc else pow2_at_least n (2 * acc)

let ensure_ring slot =
  let r = Array.unsafe_get rings slot in
  if Array.length r > 0 then r
  else begin
    Mutex.lock rings_mutex;
    let r = rings.(slot) in
    let r =
      if Array.length r > 0 then r
      else begin
        let n = pow2_at_least (max 64 (Atomic.get buffer_records)) 64 in
        let fresh = Array.make (n * rec_words) 0 in
        rings.(slot) <- fresh;
        fresh
      end
    in
    Mutex.unlock rings_mutex;
    r
  end

(* One record: plain stores only, into memory this domain owns. [dur]
   is ticks, meaningful only for [phase_x] records.

   The slot's write offset rides in the spare word next to its cursor
   (same cache line), stored un-wrapped and folded on the next emission
   — the path never divides by the record size (integer division is
   ~20 cycles, a third of the whole record cost). The fold also clamps
   an offset gone stale when [configure] swapped the ring from another
   thread mid-emission; the double seq stamp flags the one record that
   lands out of phase. *)
let[@inline] emit slot kind phase ~trace ~span ~parent ~arg ~ts ~dur =
  let ring = ensure_ring slot in
  let ci = slot * stride in
  let c = Array.unsafe_get cursors ci in
  let base = Array.unsafe_get cursors (ci + 1) in
  let base = if base + rec_words > Array.length ring then 0 else base in
  Array.unsafe_set ring base (c + 1);
  Array.unsafe_set ring (base + 1) ((kind lsl 2) lor phase);
  Array.unsafe_set ring (base + 2) ts;
  Array.unsafe_set ring (base + 3) dur;
  Array.unsafe_set ring (base + 4) trace;
  Array.unsafe_set ring (base + 5) span;
  Array.unsafe_set ring (base + 6) parent;
  Array.unsafe_set ring (base + 7) arg;
  Array.unsafe_set ring (base + 8) (c + 1);
  Array.unsafe_set cursors ci (c + 1);
  Array.unsafe_set cursors (ci + 1) (base + rec_words)

let[@inline] fresh_span slot =
  let si = slot * stride in
  let seq = Array.unsafe_get span_seqs si + 1 in
  Array.unsafe_set span_seqs si seq;
  (seq * capacity) + slot

let[@inline] push ctx span =
  if ctx.depth < max_depth then ctx.stack.(ctx.depth) <- span;
  ctx.depth <- ctx.depth + 1

let[@inline] pop ctx = if ctx.depth > 0 then ctx.depth <- ctx.depth - 1

let[@inline] current_parent ctx =
  if ctx.depth = 0 then 0
  else ctx.stack.(min ctx.depth max_depth - 1)

let span_begin_at slot kind arg =
  let ctx = Array.unsafe_get ctxs slot in
  let span = fresh_span slot in
  emit slot kind phase_b ~trace:ctx.trace_id ~span ~parent:(current_parent ctx)
    ~arg ~ts:(now_ticks ()) ~dur:0;
  push ctx span;
  span

let span_end_at slot kind arg span =
  let ctx = Array.unsafe_get ctxs slot in
  pop ctx;
  emit slot kind phase_e ~trace:ctx.trace_id ~span ~parent:0 ~arg
    ~ts:(now_ticks ()) ~dur:0

(* A span id encodes its owning slot in the low bits ([fresh_span]:
   seq * capacity + slot, capacity a power of two), so the end path
   skips the domain-local-storage read the begin already paid. *)
let[@inline] slot_of_span span = span land (capacity - 1)

(* Control tier: rare events, recorded whenever tracing is enabled. *)
let span_begin ?(arg = 0) kind =
  if not (Atomic.get enabled) then -1
  else span_begin_at (Stripe.index ()) kind arg

let span_end ?(arg = 0) kind span =
  if span >= 0 then span_end_at (slot_of_span span) kind arg span

let instant ?(arg = 0) kind =
  if Atomic.get enabled then begin
    let slot = Stripe.index () in
    let ctx = Array.unsafe_get ctxs slot in
    emit slot kind phase_i ~trace:ctx.trace_id ~span:(fresh_span slot)
      ~parent:(current_parent ctx) ~arg ~ts:(now_ticks ()) ~dur:0
  end

(* Detail tier: only inside a head-sampled request. The common case
   (nothing sampled anywhere) is one atomic load and a branch.

   Detail spans write NO begin record: begin pushes the span id, the
   begin tick, and the begin arg onto per-slot stacks, and end emits one
   complete X record — half the ring traffic of a B/E pair on the
   hottest path (the fully-sampled lookup). A hang inside a detail span
   leaves no open B in the ring, which is acceptable at this tier: the
   request B above it is always recorded and shows the stall. *)
let[@inline] sampling_now () =
  Atomic.get sampled_active > 0 && (Array.unsafe_get ctxs (Stripe.index ())).sampled

let[@inline] span_begin_sampled ?(arg = 0) kind =
  ignore kind;
  if Atomic.get sampled_active = 0 then -1
  else begin
    let slot = Stripe.index () in
    let ctx = Array.unsafe_get ctxs slot in
    if not ctx.sampled then -1
    else begin
      let span = fresh_span slot in
      let d = ctx.depth in
      if d < max_depth then begin
        Array.unsafe_set ctx.stack d span;
        Array.unsafe_set ctx.tstack d (now_ticks ());
        Array.unsafe_set ctx.astack d arg
      end;
      ctx.depth <- d + 1;
      span
    end
  end

let[@inline] span_end_sampled ?(arg = 0) kind span =
  if span >= 0 then begin
    let slot = slot_of_span span in
    let ctx = Array.unsafe_get ctxs slot in
    let ts = now_ticks () in
    let d = ctx.depth - 1 in
    if d >= 0 then ctx.depth <- d;
    let ts0, arg0 =
      if d >= 0 && d < max_depth then
        (Array.unsafe_get ctx.tstack d, Array.unsafe_get ctx.astack d)
      else (ts, 0)
    in
    let arg = if arg <> 0 then arg else arg0 in
    emit slot kind phase_x ~trace:ctx.trace_id ~span
      ~parent:(current_parent ctx) ~arg ~ts:ts0 ~dur:(ts - ts0)
  end

let instant_sampled ?(arg = 0) kind =
  if Atomic.get sampled_active > 0 then begin
    let slot = Stripe.index () in
    let ctx = Array.unsafe_get ctxs slot in
    if ctx.sampled then
      emit slot kind phase_i ~trace:ctx.trace_id ~span:(fresh_span slot)
        ~parent:(current_parent ctx) ~arg ~ts:(now_ticks ()) ~dur:0
  end

let with_span ?arg kind f =
  let s = span_begin ?arg kind in
  match f () with
  | v ->
      span_end ?arg kind s;
      v
  | exception e ->
      span_end ?arg kind s;
      raise e

(* ------------------------------------------------------------------ *)
(* Decoded events                                                      *)

type event = {
  name : string;
  phase : int; (* phase_b | phase_e | phase_i | phase_x *)
  ts_ns : int;
  dur_ns : int; (* complete-span duration; 0 unless phase_x *)
  trace : int;
  span : int;
  parent : int;
  arg : int;
  domain : int; (* stripe slot *)
  seq : int; (* per-slot ring sequence, for stable ordering *)
}

(* ------------------------------------------------------------------ *)
(* Slow-request retention (tail trigger)                               *)

type slow_entry = {
  slow_trace : int;
  slow_dur_ns : int;
  slow_arg : int;
  slow_domain : int;
  slow_events : event list;
  slow_dropped : int; (* window records lost to ring wrap-around *)
}

let slow_mutex = Mutex.create ()
let slow_log : slow_entry option array = Array.make slow_capacity None
let slow_next = ref 0

(* Decode one record if its double seq stamp is intact. [rate] converts
   the record's tick stamp to monotonic nanoseconds. *)
let decode_record ring cap slot c ~rate =
  let base = c land (cap - 1) * rec_words in
  let s0 = Array.unsafe_get ring base in
  let s1 = Array.unsafe_get ring (base + 8) in
  if s0 <> c + 1 || s1 <> c + 1 then None
  else
    let kp = ring.(base + 1) in
    Some
      {
        name = name_of (kp lsr 2);
        phase = kp land 3;
        ts_ns = ticks_to_ns rate ring.(base + 2);
        dur_ns = int_of_float (float_of_int ring.(base + 3) *. rate);
        trace = ring.(base + 4);
        span = ring.(base + 5);
        parent = ring.(base + 6);
        arg = ring.(base + 7);
        domain = slot;
        seq = c;
      }

let retain_slow slot ctx dur end_ts =
  ignore end_ts;
  let ring = rings.(slot) in
  let cap = Array.length ring / rec_words in
  if cap > 0 then begin
    let rate = refine () in
    let cur = cursors.(slot * stride) in
    let first = max ctx.req_cursor (cur - cap) in
    let dropped = first - ctx.req_cursor in
    if dropped > 0 then Counter.add spans_dropped dropped;
    let evs = ref [] in
    for c = cur - 1 downto first do
      match decode_record ring cap slot c ~rate with
      | Some e -> evs := e :: !evs
      | None -> ()
    done;
    let entry =
      {
        slow_trace = ctx.trace_id;
        slow_dur_ns = dur;
        slow_arg = ctx.req_arg;
        slow_domain = slot;
        slow_events = !evs;
        slow_dropped = dropped;
      }
    in
    Mutex.lock slow_mutex;
    let i = !slow_next mod slow_capacity in
    if slow_log.(i) <> None then Counter.incr slow_evicted_c;
    slow_log.(i) <- Some entry;
    incr slow_next;
    Counter.incr slow_retained_c;
    Mutex.unlock slow_mutex
  end

(* ------------------------------------------------------------------ *)
(* Request context                                                     *)

let request_begin ?(arg = 0) ?(trace = 0) kind =
  if Atomic.get enabled then begin
    let slot = Stripe.index () in
    let ctx = Array.unsafe_get ctxs slot in
    Counter.incr reqs_total;
    let n = ctx.req_count in
    ctx.req_count <- n + 1;
    let s = Atomic.get sample in
    let sampled = s <= 1 || n mod s = 0 in
    if sampled then begin
      Counter.incr reqs_sampled;
      Atomic.incr sampled_active
    end;
    (* A request already in flight on this slot means interleaved
       threads on one domain (the threaded plane): close its
       accounting so [sampled_active] cannot leak. *)
    if ctx.sampled then Atomic.decr sampled_active;
    let span = fresh_span slot in
    (* The request nests under whatever span encloses it on this domain
       (the event loop's batch-dispatch span), so nesting stays intact
       across pipelined batches. *)
    let parent = current_parent ctx in
    (* [trace] carries a propagated cross-process trace id (replication
       apply on a follower): the span id stays local, but every record
       in this request groups under the originating trace. *)
    ctx.trace_id <- (if trace <> 0 then trace else span);
    ctx.sampled <- sampled;
    ctx.req_kind <- kind;
    ctx.req_arg <- arg;
    ctx.req_span <- span;
    ctx.req_depth0 <- ctx.depth;
    ctx.req_cursor <- cursors.(slot * stride);
    let ts = now_ticks () in
    ctx.req_start <- ts;
    emit slot kind phase_b ~trace:ctx.trace_id ~span ~parent ~arg ~ts ~dur:0;
    push ctx span
  end

(* The latency budget in ticks, recomputing (and recalibrating) when the
   budget or the rate moved. Cold in steady state: one atomic load. *)
let slow_budget_ticks () =
  let st = Atomic.get slow_ticks in
  if st > 0 then st
  else begin
    let rate = refine () in
    let st = max 1 (int_of_float (float_of_int (Atomic.get slow_ns) /. rate)) in
    Atomic.set slow_ticks st;
    st
  end

let request_end () =
  if Atomic.get enabled then begin
    let slot = Stripe.index () in
    let ctx = Array.unsafe_get ctxs slot in
    if ctx.trace_id <> 0 then begin
      let ts = now_ticks () in
      emit slot ctx.req_kind phase_e ~trace:ctx.trace_id ~span:ctx.req_span
        ~parent:0 ~arg:ctx.req_arg ~ts ~dur:0;
      if ctx.sampled then begin
        ctx.sampled <- false;
        Atomic.decr sampled_active
      end;
      let dur = ts - ctx.req_start in
      if dur >= slow_budget_ticks () then begin
        let dur_ns = int_of_float (float_of_int dur *. refine ()) in
        retain_slow slot ctx dur_ns ts
      end;
      ctx.trace_id <- 0;
      (* Restore the enclosing stack even if the handler leaked spans. *)
      ctx.depth <- ctx.req_depth0
    end
  end

let in_request () =
  (Array.unsafe_get ctxs (Stripe.index ())).trace_id <> 0

let current_trace_id () = (Array.unsafe_get ctxs (Stripe.index ())).trace_id

(* ------------------------------------------------------------------ *)
(* Configuration (cont.)                                               *)

let configure ?sample:s ?slow_ms ?buffer () =
  (match s with Some n -> Atomic.set sample (max 1 n) | None -> ());
  (match slow_ms with
  | Some ms ->
      Atomic.set slow_ns (int_of_float (ms *. 1e6));
      Atomic.set slow_ticks 0
  | None -> ());
  match buffer with
  | Some n ->
      let n = pow2_at_least (max 64 n) 64 in
      if n <> Atomic.get buffer_records then begin
        Atomic.set buffer_records n;
        (* Swap every allocated ring; emitting domains pick the fresh
           ring up on their next record. Configure at startup or from
           tests, not while latency matters. *)
        Mutex.lock rings_mutex;
        for slot = 0 to capacity - 1 do
          if Array.length rings.(slot) > 0 then begin
            rings.(slot) <- Array.make (n * rec_words) 0;
            cursors.(slot * stride) <- 0;
            cursors.((slot * stride) + 1) <- 0
          end
        done;
        Mutex.unlock rings_mutex
      end
  | None -> ()

let sample_every () = Atomic.get sample
let slow_budget_ms () = float_of_int (Atomic.get slow_ns) /. 1e6
let buffer_size () = Atomic.get buffer_records

(* Reset the head sampler so tests get a deterministic sampling pattern:
   with [seed] s and rate N, the requests sampled on a slot are exactly
   those with (s + i) mod N = 0 for the i-th request after the reset. *)
let reset_sampler ?(seed = 0) () =
  Array.iter (fun ctx -> ctx.req_count <- seed) ctxs

(* Tests only: drop every recorded span, slow entry, and counter. *)
let reset () =
  Mutex.lock rings_mutex;
  for slot = 0 to capacity - 1 do
    let r = rings.(slot) in
    if Array.length r > 0 then Array.fill r 0 (Array.length r) 0;
    cursors.(slot * stride) <- 0;
    cursors.((slot * stride) + 1) <- 0
  done;
  Mutex.unlock rings_mutex;
  Mutex.lock slow_mutex;
  Array.fill slow_log 0 slow_capacity None;
  slow_next := 0;
  Mutex.unlock slow_mutex;
  Counter.reset reqs_total;
  Counter.reset reqs_sampled;
  Counter.reset spans_dropped;
  Counter.reset slow_retained_c;
  Counter.reset slow_evicted_c

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

(* Snapshot the rings: newest records first per slot, then globally
   ordered by timestamp (stable within a slot by ring sequence, so B/E
   pairs born at the same nanosecond never swap). Returns the events and
   the count of records skipped because a concurrent writer overwrote
   them mid-read. *)
let snapshot ?(max_events = max_int) () =
  let torn = ref 0 in
  let all = ref [] in
  let total = ref 0 in
  (* One rate for the whole snapshot, so the tick→ns map is monotone
     across every decoded record. *)
  let rate = refine () in
  for slot = 0 to capacity - 1 do
    let ring = rings.(slot) in
    let cap = Array.length ring / rec_words in
    if cap > 0 then begin
      let cur = cursors.(slot * stride) in
      let first = max 0 (cur - cap) in
      for c = cur - 1 downto first do
        match decode_record ring cap slot c ~rate with
        | Some e ->
            all := e :: !all;
            incr total
        | None -> incr torn
      done
    end
  done;
  let events =
    List.sort
      (fun a b ->
        if a.ts_ns <> b.ts_ns then compare a.ts_ns b.ts_ns
        else if a.domain <> b.domain then compare a.domain b.domain
        else compare a.seq b.seq)
      !all
  in
  let events =
    if !total <= max_events then events
    else
      (* Keep the newest [max_events]. *)
      let drop = !total - max_events in
      let rec skip n l = if n = 0 then l else skip (n - 1) (List.tl l) in
      skip drop events
  in
  (events, !torn)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Process-start base so exported microsecond timestamps stay small.
   Decoded [ts_ns] values are anchored at [cal_mono0] by construction. *)
let ts_base = cal_mono0

let add_event_json buf e =
  let ph =
    if e.phase = phase_b then "B"
    else if e.phase = phase_e then "E"
    else if e.phase = phase_x then "X"
    else "i"
  in
  let cat =
    match String.index_opt e.name '.' with
    | Some i -> String.sub e.name 0 i
    | None -> e.name
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (json_escape e.name) (json_escape cat) ph
       (float_of_int (e.ts_ns - ts_base) /. 1e3)
       e.domain);
  if e.phase = phase_i then Buffer.add_string buf ",\"s\":\"t\"";
  if e.phase = phase_x then
    Buffer.add_string buf
      (Printf.sprintf ",\"dur\":%.3f" (float_of_int e.dur_ns /. 1e3));
  Buffer.add_string buf
    (Printf.sprintf
       ",\"args\":{\"trace\":%d,\"span\":%d,\"parent\":%d,\"arg\":%d,\"domain\":%d}}"
       e.trace e.span e.parent e.arg e.domain)

let export_json ?max_events () =
  let events, torn = snapshot ?max_events () in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      add_event_json buf e)
    events;
  Buffer.add_string buf
    (Printf.sprintf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"torn\":%d}}"
       torn);
  Buffer.contents buf

let slow_snapshot () =
  Mutex.lock slow_mutex;
  let out = ref [] in
  for i = slow_capacity - 1 downto 0 do
    let idx = (!slow_next + i) mod slow_capacity in
    match slow_log.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  Mutex.unlock slow_mutex;
  (* Newest first. *)
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let spans_recorded () =
  let n = ref 0 in
  for slot = 0 to capacity - 1 do
    n := !n + cursors.(slot * stride)
  done;
  !n

let stats_kv () =
  let reqs = Counter.read reqs_total in
  let sampled = Counter.read reqs_sampled in
  let pct = if reqs = 0 then 0. else 100. *. float_of_int sampled /. float_of_int reqs in
  [
    ("trace_enabled", if Atomic.get enabled then "1" else "0");
    ("trace_sample", string_of_int (Atomic.get sample));
    ("trace_slow_ms", Printf.sprintf "%g" (slow_budget_ms ()));
    ("trace_buffer_records", string_of_int (Atomic.get buffer_records));
    ("trace_spans", string_of_int (spans_recorded ()));
    ("trace_spans_dropped", string_of_int (Counter.read spans_dropped));
    ("trace_requests", string_of_int reqs);
    ("trace_requests_sampled", string_of_int sampled);
    ("trace_sampled_pct", Printf.sprintf "%.4f" pct);
    ("trace_slow_retained", string_of_int (Counter.read slow_retained_c));
    ("trace_slow_evicted", string_of_int (Counter.read slow_evicted_c));
  ]

let register_instruments registry =
  Rp_obs.Registry.fn_counter registry "trace_spans_total"
    ~help:"Span records written to the flight-recorder rings" (fun () ->
      float_of_int (spans_recorded ()));
  Rp_obs.Registry.fn_counter registry "trace_spans_dropped_total"
    ~help:"Span records lost from slow-request windows to ring wrap-around"
    (fun () -> float_of_int (Counter.read spans_dropped));
  Rp_obs.Registry.fn_counter registry "trace_requests_total"
    ~help:"Requests seen by the flight recorder" (fun () ->
      float_of_int (Counter.read reqs_total));
  Rp_obs.Registry.fn_counter registry "trace_requests_sampled_total"
    ~help:"Requests head-sampled for detail spans" (fun () ->
      float_of_int (Counter.read reqs_sampled));
  Rp_obs.Registry.fn_counter registry "trace_slow_retained_total"
    ~help:"Requests force-retained by the tail trigger" (fun () ->
      float_of_int (Counter.read slow_retained_c))
