(** Follower-side replication client.

    Connects to the leader's replication listener, requests the stream
    from the last applied generation, and feeds every record through
    [apply] — which receives the propagated leader trace id and publish
    timestamp alongside the framed record payload. Acks flow back every
    few records and on every leader Ping. Reconnects with exponential
    backoff and resumes from the applied-generation watermark
    (duplicates across the resume are safe: records are idempotent). *)

type t

val start :
  leader:Unix.sockaddr ->
  apply:(gen:int -> trace:int -> ts_us:int -> string -> unit) ->
  unit ->
  t
(** [apply] runs on the follower thread; exceptions it raises drop the
    connection and trigger a resume. *)

val stop : t -> unit

val connected : t -> bool
val applied : t -> int
val applied_gen : t -> int
val reconnects : t -> int
