(* Follower-side replication: one thread that connects to the leader,
   names its resume generation, applies the record stream through a
   caller-supplied callback, and acks (seq, gen) watermarks back.

   Reconnection resumes from the last applied generation — the leader
   re-streams that generation from its start, and the duplicated prefix
   is harmless because records are idempotent state. *)

let ack_every = 64

type t = {
  leader : Unix.sockaddr;
  apply : gen:int -> trace:int -> ts_us:int -> string -> unit;
  mutable fd : Unix.file_descr option;
  mutable stopped : bool;
  mutable connected : bool;
  mutable applied : int;
  mutable applied_gen : int;
  mutable reconnects : int;
  mutable thread : Thread.t option;
  mutex : Mutex.t;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let send_ack t fd seq =
  Repl_wire.write_msg fd (Repl_wire.Ack { gen = t.applied_gen; seq })

let session t fd =
  Repl_wire.write_msg fd (Repl_wire.Hello { from_gen = t.applied_gen });
  t.connected <- true;
  let last_seq = ref 0 in
  let unacked = ref 0 in
  let rec loop () =
    if t.stopped then ()
    else
      match Repl_wire.read_msg fd with
      | Some (Repl_wire.Rec { gen; seq; trace; ts_us; payload }) ->
          t.apply ~gen ~trace ~ts_us payload;
          t.applied <- t.applied + 1;
          if gen > t.applied_gen then t.applied_gen <- gen;
          last_seq := seq;
          incr unacked;
          if !unacked >= ack_every then begin
            send_ack t fd seq;
            unacked := 0
          end;
          loop ()
      | Some Repl_wire.Ping ->
          (* Idle leader soliciting a watermark refresh. *)
          send_ack t fd !last_seq;
          unacked := 0;
          loop ()
      | Some _ -> loop ()
      | None -> ()
  in
  loop ()

let run t =
  let backoff = ref 0.05 in
  while not t.stopped do
    (match Unix.socket (Unix.domain_of_sockaddr t.leader) Unix.SOCK_STREAM 0 with
    | fd -> (
        match Unix.connect fd t.leader with
        | () -> (
            Mutex.lock t.mutex;
            t.fd <- Some fd;
            Mutex.unlock t.mutex;
            backoff := 0.05;
            (try session t fd
             with Repl_wire.Corrupt _ | Unix.Unix_error _ | Sys_error _ -> ());
            t.connected <- false;
            Mutex.lock t.mutex;
            (match t.fd with
            | Some f ->
                close_quiet f;
                t.fd <- None
            | None -> ());
            Mutex.unlock t.mutex;
            if not t.stopped then t.reconnects <- t.reconnects + 1)
        | exception Unix.Unix_error _ ->
            close_quiet fd;
            if not t.stopped then begin
              Thread.delay !backoff;
              backoff := Float.min 1.0 (!backoff *. 2.)
            end)
    | exception Unix.Unix_error _ -> Thread.delay !backoff);
    if not t.stopped then Thread.delay 0.01
  done

let start ~leader ~apply () =
  let t =
    {
      leader;
      apply;
      fd = None;
      stopped = false;
      connected = false;
      applied = 0;
      applied_gen = 0;
      reconnects = 0;
      thread = None;
      mutex = Mutex.create ();
    }
  in
  t.thread <- Some (Thread.create run t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Mutex.lock t.mutex;
    (match t.fd with
    | Some fd ->
        (* Shutdown first so a blocked read wakes up. *)
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        t.fd <- None;
        close_quiet fd
    | None -> ());
    Mutex.unlock t.mutex;
    match t.thread with Some th -> Thread.join th | None -> ()
  end

let connected t = t.connected
let applied t = t.applied
let applied_gen t = t.applied_gen
let reconnects t = t.reconnects
