(** Replication wire protocol: CRC32-framed messages over a stream
    socket (same CRC as the oplog segments).

    [Rec.payload] is the encoded oplog record exactly as framed on the
    leader's disk — opaque to the wire layer. [Rec.trace] propagates the
    leader request's 64-bit trace id (0 for disk catch-up); [Rec.ts_us]
    is the leader's publish time in microseconds (apply-lag yardstick).
    [Rec.seq] numbers the records the leader has streamed {e to this
    follower} (monotone per connection); the follower echoes the highest
    applied [seq]/[gen] back in [Ack], which is the leader's
    acked-watermark. [Ping] solicits an [Ack] when the stream is idle. *)

exception Corrupt of string

type msg =
  | Hello of { from_gen : int }  (** follower → leader: resume point *)
  | Rec of { gen : int; seq : int; trace : int; ts_us : int; payload : string }
  | Ack of { gen : int; seq : int }  (** follower → leader: applied up to *)
  | Ping

val write_msg : Unix.file_descr -> msg -> unit
(** Blocking, EINTR-safe; writes one whole frame. *)

val read_msg : Unix.file_descr -> msg option
(** Blocking read of one message; [None] on clean EOF. Raises
    {!Corrupt} when framing is lost — drop the connection. *)
