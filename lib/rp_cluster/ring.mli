(** Ketama-style consistent-hash ring with virtual nodes.

    Each member contributes [~points_per_weight * weight] points (MD5
    continuum, four points per digest like libmemcached), so membership
    change remaps only the keys owned by the changed member — about
    [K/N] of [K] keys over [N] equal-weight members. The ring is
    immutable; client-side ejection is expressed through the [avoid]
    predicate at lookup time, which slides a dead member's keys to the
    next live point without touching anyone else's assignment. *)

type member = { host : string; port : int; weight : int }

type t

val create : ?points_per_weight:int -> member list -> t
(** Build the continuum ([points_per_weight] defaults to 100). Member
    order is preserved: lookups return indices into this list. *)

val members : t -> member list
val member : t -> int -> member
val size : t -> int

val points : t -> int
(** Continuum entries (diagnostics). *)

val hash_key : string -> int
(** The 32-bit ketama key hash (first four MD5 bytes, little-endian). *)

val lookup : ?avoid:(int -> bool) -> t -> string -> int option
(** Index of the member owning [key], skipping members for which
    [avoid] holds; [None] when the ring is empty or everything is
    avoided. *)

val server_for_key : ?avoid:(int -> bool) -> t -> string -> member option
