(** Leader-side replication listener.

    Streams the leader's oplog to connected followers: disk catch-up
    from the generation each follower's Hello names, then live records
    pushed through {!publish} by the persistence glue. The handoff and
    the slow-follower fallback both lean on records being idempotent
    state, so the two sources may overlap but never gap. Per-follower
    sent/acked watermarks back the [stats cluster] section. *)

type t

val start : dir:string -> flush:(unit -> unit) -> Unix.sockaddr -> t
(** Listen on [addr]. [dir] is the oplog segment directory; [flush]
    must push the oplog's buffered frames to the OS (not necessarily
    fsync) so the disk cursor can see them. *)

val publish : t -> gen:int -> trace:int -> string -> unit
(** Feed one freshly appended record (already oplog-framed payload
    bytes) to every follower queue. Called inside the store's update
    serialization: tap order = log order. Never blocks: a full queue
    marks the follower overflowed and it re-syncs from disk. *)

val stop : t -> unit

val port : t -> int
(** Bound TCP port (useful when started on port 0); 0 for unix sockets. *)

val records_streamed : t -> int

val resyncs : t -> int
(** Times a slow follower overflowed its queue and fell back to disk. *)

type follower_stat = {
  fs_peer : string;
  fs_connected : bool;
  fs_caught_up : bool;
  fs_sent_seq : int;
  fs_sent_gen : int;
  fs_acked_seq : int;
  fs_acked_gen : int;
}

val stats : t -> follower_stat list
