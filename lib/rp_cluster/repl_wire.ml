(* Replication wire protocol: length+CRC framed messages over a stream
   socket, sharing the oplog's CRC32 so a flipped bit anywhere between
   leader disk and follower apply is caught at the same place torn
   segments are.

   Frame layout (mirrors rp_persist.Frame, but fd-based — the oplog
   reader is [in_channel]-based and owns file-position semantics the
   socket side has no use for):

     u32 BE body length | u32 BE CRC32(body) | body

   Body: 1 tag byte, then 8-byte big-endian fields, then raw payload
   bytes for [Rec]. The [Rec] payload is the encoded {!Record.t} frame
   payload exactly as it sits in the oplog segment — the leader never
   decodes it, the follower decodes it once at apply. [trace] carries
   the leader-side 64-bit trace id of the originating request (0 for
   catch-up reads from disk); [ts_us] is the leader's publish time in
   microseconds, the follower's apply-lag yardstick. *)

module Crc32 = Rp_persist.Crc32

exception Corrupt of string

type msg =
  | Hello of { from_gen : int }
  | Rec of { gen : int; seq : int; trace : int; ts_us : int; payload : string }
  | Ack of { gen : int; seq : int }
  | Ping

let tag_hello = 'H'
let tag_rec = 'R'
let tag_ack = 'A'
let tag_ping = 'P'
let max_body = 16 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Raw fd I/O (EINTR-safe; sockets only, no fault sites) *)

let rec write_all fd s off len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (off + n) (len - n)
  end

(* false = EOF before [len] bytes. *)
let rec read_exact fd buf off len =
  if len = 0 then true
  else
    match Unix.read fd buf off len with
    | 0 -> false
    | n -> read_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len

(* ------------------------------------------------------------------ *)
(* Encode *)

let add_u64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (i * 8)) land 0xff))
  done

let get_u64 s off =
  let v = ref 0 in
  for i = 0 to 7 do
    v := (!v lsl 8) lor Char.code s.[off + i]
  done;
  !v

let encode_body msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Hello { from_gen } ->
      Buffer.add_char buf tag_hello;
      add_u64 buf from_gen
  | Rec { gen; seq; trace; ts_us; payload } ->
      Buffer.add_char buf tag_rec;
      add_u64 buf gen;
      add_u64 buf seq;
      add_u64 buf trace;
      add_u64 buf ts_us;
      Buffer.add_string buf payload
  | Ack { gen; seq } ->
      Buffer.add_char buf tag_ack;
      add_u64 buf gen;
      add_u64 buf seq
  | Ping -> Buffer.add_char buf tag_ping);
  Buffer.contents buf

let decode_body body =
  let len = String.length body in
  if len < 1 then raise (Corrupt "empty body");
  let need n = if len < n then raise (Corrupt "short body") in
  match body.[0] with
  | c when c = tag_hello ->
      need 9;
      Hello { from_gen = get_u64 body 1 }
  | c when c = tag_rec ->
      need 33;
      Rec
        {
          gen = get_u64 body 1;
          seq = get_u64 body 9;
          trace = get_u64 body 17;
          ts_us = get_u64 body 25;
          payload = String.sub body 33 (len - 33);
        }
  | c when c = tag_ack ->
      need 17;
      Ack { gen = get_u64 body 1; seq = get_u64 body 9 }
  | c when c = tag_ping -> Ping
  | c -> raise (Corrupt (Printf.sprintf "unknown tag %C" c))

let write_msg fd msg =
  let body = encode_body msg in
  let len = String.length body in
  let hdr = Bytes.create 8 in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set_int32_be hdr 4 (Int32.of_int (Crc32.string body));
  let frame = Bytes.extend hdr 0 len in
  Bytes.blit_string body 0 frame 8 len;
  let s = Bytes.unsafe_to_string frame in
  write_all fd s 0 (String.length s)

let u32_be b off = Int32.to_int (Bytes.get_int32_be b off) land 0xFFFFFFFF

(* Blocking read of one message; [None] on clean EOF. Raises {!Corrupt}
   on a bad frame (callers drop the connection — the stream has lost
   framing). *)
let read_msg fd =
  let hdr = Bytes.create 8 in
  if not (read_exact fd hdr 0 8) then None
  else begin
    let len = u32_be hdr 0 in
    let crc = u32_be hdr 4 in
    if len > max_body then raise (Corrupt "frame too large");
    let body = Bytes.create len in
    if not (read_exact fd body 0 len) then None
    else begin
      let body = Bytes.unsafe_to_string body in
      if Crc32.string body <> crc then raise (Corrupt "crc mismatch");
      Some (decode_body body)
    end
  end
