(* Ketama-style consistent-hash ring (libmemcached's continuum shape).

   Each member contributes [points_per_weight * weight] points on a
   32-bit circle. Points come from MD5 (stdlib [Digest]) over
   "host:port-<replica>", four points per digest — the same trick
   libmemcached uses, so one hash call seeds four continuum entries.
   Lookup hashes the key the same way (first four digest bytes) and
   binary-searches for the first point clockwise.

   The ring itself is immutable; liveness is the caller's business. The
   [avoid] predicate lets a client skip ejected members at lookup time
   without rebuilding the continuum — exactly how ketama keeps the
   remap small: keys owned by a dead member slide to the next live
   point, everyone else's assignment is untouched. *)

type member = { host : string; port : int; weight : int }

type t = {
  members : member array;
  (* sorted by point; the payload is the member's index in [members] *)
  points : (int * int) array;
}

let default_points_per_weight = 100

(* Four u32 points from one MD5 digest, libmemcached-style. *)
let digest_points key =
  let d = Digest.string key in
  let u32 o =
    ((Char.code d.[3 + (o * 4)] land 0xff) lsl 24)
    lor ((Char.code d.[2 + (o * 4)] land 0xff) lsl 16)
    lor ((Char.code d.[1 + (o * 4)] land 0xff) lsl 8)
    lor (Char.code d.[o * 4] land 0xff)
  in
  (u32 0, u32 1, u32 2, u32 3)

let hash_key key =
  let p, _, _, _ = digest_points key in
  p

let member_label m = Printf.sprintf "%s:%d" m.host m.port

let create ?(points_per_weight = default_points_per_weight) members =
  let members = Array.of_list members in
  let pts = ref [] in
  Array.iteri
    (fun idx m ->
      let w = max 1 m.weight in
      (* Four points per digest: replicas = total/4 rounded up so a
         weight-1 member still lands ~points_per_weight entries. *)
      let replicas = (points_per_weight * w + 3) / 4 in
      let label = member_label m in
      for r = 0 to replicas - 1 do
        let p0, p1, p2, p3 = digest_points (Printf.sprintf "%s-%d" label r) in
        pts := (p0, idx) :: (p1, idx) :: (p2, idx) :: (p3, idx) :: !pts
      done)
    members;
  let points = Array.of_list !pts in
  Array.sort compare points;
  { members; points }

let members t = Array.to_list t.members
let member t i = t.members.(i)
let size t = Array.length t.members
let points t = Array.length t.points

(* Index of the first continuum point with value >= h, wrapping. *)
let first_at t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo >= n then 0 else !lo

let lookup ?(avoid = fun _ -> false) t key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let start = first_at t (hash_key key) in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let _, idx = t.points.((start + !i) mod n) in
      if not (avoid idx) then found := Some idx;
      incr i
    done;
    !found
  end

let server_for_key ?avoid t key =
  match lookup ?avoid t key with Some i -> Some t.members.(i) | None -> None
