(* Leader-side replication: a listener that streams oplog records to
   followers.

   Each follower connection gets two sources merged into one ordered
   stream:

   - catch-up: a {!Rp_persist.Oplog.Tail} cursor over the leader's
     segment files, from the generation the follower's Hello asked for;
   - live tap: the persistence glue calls {!publish} for every record
     the moment it is appended (inside the store's update serialization,
     so tap order = log order = store order), and each follower owns a
     bounded queue of those entries.

   The handoff between the two leans on the op records being idempotent
   state (DESIGN.md §11): the tap is armed BEFORE the disk cursor
   starts, so the two sources overlap rather than gap, and duplicates
   are harmless. When a follower reaches the end of the on-disk bytes
   the sender drains disk once more under the queue lock (after forcing
   the leader's pending buffer to the OS via [flush]), clears the queue
   — everything in it is now behind the cursor — and switches to
   queue-only streaming. A queue overflow (slow follower) falls back to
   the disk cursor the same way, so a lagging replica degrades to
   catch-up mode instead of blocking the leader or losing records.

   Each sent record carries a per-connection sequence number; the
   follower acks the highest applied (seq, gen) and those watermarks are
   what `stats cluster` exposes. *)

module Oplog = Rp_persist.Oplog

let queue_cap = 8192
let ping_idle_s = 0.1
let idle_poll_s = 0.002

type entry = { e_gen : int; e_trace : int; e_payload : string }

type follower = {
  id : int;
  fd : Unix.file_descr;
  peer : string;
  queue : entry Queue.t;
  qmutex : Mutex.t;
  mutable overflowed : bool;
  mutable sent_seq : int;
  mutable sent_gen : int;
  mutable acked_seq : int;
  mutable acked_gen : int;
  mutable caught_up : bool;
  mutable alive : bool;
}

type t = {
  dir : string;
  flush : unit -> unit;
  listen_fd : Unix.file_descr;
  port : int;
  mutex : Mutex.t; (* followers list + next_id *)
  mutable followers : follower list;
  mutable next_id : int;
  mutable stopped : bool;
  mutable accept_thread : Thread.t option;
  streamed : int Atomic.t;
  resyncs : int Atomic.t; (* overflow-driven falls back to disk *)
}

type follower_stat = {
  fs_peer : string;
  fs_connected : bool;
  fs_caught_up : bool;
  fs_sent_seq : int;
  fs_sent_gen : int;
  fs_acked_seq : int;
  fs_acked_gen : int;
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
  | Unix.ADDR_UNIX p -> p
  | exception Unix.Unix_error _ -> "?"

(* ------------------------------------------------------------------ *)
(* Publish (called from the persist hook, inside store serialization) *)

let publish t ~gen ~trace payload =
  let entry = { e_gen = gen; e_trace = trace; e_payload = payload } in
  Mutex.lock t.mutex;
  let fws = t.followers in
  Mutex.unlock t.mutex;
  List.iter
    (fun f ->
      if f.alive then begin
        Mutex.lock f.qmutex;
        if Queue.length f.queue >= queue_cap then f.overflowed <- true
        else Queue.push entry f.queue;
        Mutex.unlock f.qmutex
      end)
    fws

(* ------------------------------------------------------------------ *)
(* Per-follower streaming *)

let send_rec t f ~gen ~trace ~ts_us payload =
  f.sent_seq <- f.sent_seq + 1;
  f.sent_gen <- max f.sent_gen gen;
  Atomic.incr t.streamed;
  Repl_wire.write_msg f.fd
    (Repl_wire.Rec { gen; seq = f.sent_seq; trace; ts_us; payload })

(* Drain the disk cursor to its current end. Caller decides locking. *)
let rec drain_disk t f cur =
  match Oplog.Tail.next cur with
  | `Record (gen, payload) ->
      send_rec t f ~gen ~trace:0 ~ts_us:0 payload;
      drain_disk t f cur
  | `Caught_up -> ()

(* Catch-up -> live handoff: force pending bytes out, read disk dry,
   then drop the queue (everything in it predates the flush, so the
   cursor just sent it). Holding [qmutex] briefly blocks the tap —
   acceptable, handoffs are rare. *)
let handoff_to_live t f cur =
  Mutex.lock f.qmutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock f.qmutex)
    (fun () ->
      t.flush ();
      drain_disk t f cur;
      Queue.clear f.queue;
      f.overflowed <- false);
  f.caught_up <- true

let ack_loop f =
  let rec loop () =
    match Repl_wire.read_msg f.fd with
    | Some (Repl_wire.Ack { gen; seq }) ->
        if seq > f.acked_seq then f.acked_seq <- seq;
        if gen > f.acked_gen then f.acked_gen <- gen;
        loop ()
    | Some _ -> loop () (* unexpected but harmless *)
    | None -> ()
  in
  (try loop () with Repl_wire.Corrupt _ | Unix.Unix_error _ -> ());
  f.alive <- false

let serve_follower t f =
  (* First message must be the follower's resume point. *)
  match Repl_wire.read_msg f.fd with
  | Some (Repl_wire.Hello { from_gen }) ->
      ignore (Thread.create ack_loop f);
      let cur = Oplog.Tail.create ~dir:t.dir ~from_gen in
      Fun.protect
        ~finally:(fun () -> Oplog.Tail.close cur)
        (fun () ->
          t.flush ();
          let last_send = ref (Unix.gettimeofday ()) in
          let rec live () =
            if t.stopped || not f.alive then ()
            else begin
              Mutex.lock f.qmutex;
              let overflow = f.overflowed in
              let batch = Queue.create () in
              if not overflow then Queue.transfer f.queue batch;
              Mutex.unlock f.qmutex;
              if overflow then begin
                (* Slow follower: the tap dropped entries. Disk has
                   everything — fall back to catch-up mode. *)
                Atomic.incr t.resyncs;
                f.caught_up <- false;
                catchup ()
              end
              else if Queue.is_empty batch then begin
                let now = Unix.gettimeofday () in
                if now -. !last_send > ping_idle_s then begin
                  Repl_wire.write_msg f.fd Repl_wire.Ping;
                  last_send := now
                end;
                Thread.delay idle_poll_s;
                live ()
              end
              else begin
                let now_us =
                  int_of_float (Unix.gettimeofday () *. 1e6)
                in
                Queue.iter
                  (fun e ->
                    send_rec t f ~gen:e.e_gen ~trace:e.e_trace ~ts_us:now_us
                      e.e_payload)
                  batch;
                last_send := Unix.gettimeofday ();
                live ()
              end
            end
          and catchup () =
            if t.stopped || not f.alive then ()
            else begin
              t.flush ();
              drain_disk t f cur;
              handoff_to_live t f cur;
              live ()
            end
          in
          catchup ())
  | Some _ | None -> ()

let follower_cleanup t f =
  f.alive <- false;
  close_quiet f.fd;
  Mutex.lock t.mutex;
  t.followers <- List.filter (fun g -> g.id <> f.id) t.followers;
  Mutex.unlock t.mutex

let accept_loop t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        let f =
          {
            id = 0;
            fd;
            peer = peer_name fd;
            queue = Queue.create ();
            qmutex = Mutex.create ();
            overflowed = false;
            sent_seq = 0;
            sent_gen = 0;
            acked_seq = 0;
            acked_gen = 0;
            caught_up = false;
            alive = true;
          }
        in
        Mutex.lock t.mutex;
        t.next_id <- t.next_id + 1;
        let f = { f with id = t.next_id } in
        (* The tap starts feeding the queue the moment the follower is
           listed — before its disk catch-up begins, so the two sources
           overlap instead of gapping. *)
        t.followers <- f :: t.followers;
        Mutex.unlock t.mutex;
        ignore
          (Thread.create
             (fun () ->
               (try serve_follower t f
                with Repl_wire.Corrupt _ | Unix.Unix_error _ | Sys_error _ -> ());
               follower_cleanup t f)
             ());
        loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> if not t.stopped then loop ()
  in
  loop ()

let start ~dir ~flush addr =
  let domain = Unix.domain_of_sockaddr addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
  Unix.bind fd addr;
  Unix.listen fd 16;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let t =
    {
      dir;
      flush;
      listen_fd = fd;
      port;
      mutex = Mutex.create ();
      followers = [];
      next_id = 0;
      stopped = false;
      accept_thread = None;
      streamed = Atomic.make 0;
      resyncs = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    (* shutdown, not just close: a close does not wake a thread blocked
       in accept/read on the fd, a shutdown does. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    close_quiet t.listen_fd;
    Mutex.lock t.mutex;
    let fws = t.followers in
    t.followers <- [];
    Mutex.unlock t.mutex;
    List.iter
      (fun f ->
        f.alive <- false;
        (try Unix.shutdown f.fd Unix.SHUTDOWN_ALL
         with Unix.Unix_error _ -> ());
        close_quiet f.fd)
      fws;
    match t.accept_thread with Some th -> Thread.join th | None -> ()
  end

let port t = t.port
let records_streamed t = Atomic.get t.streamed
let resyncs t = Atomic.get t.resyncs

let stats t =
  Mutex.lock t.mutex;
  let fws = t.followers in
  Mutex.unlock t.mutex;
  List.rev_map
    (fun f ->
      {
        fs_peer = f.peer;
        fs_connected = f.alive;
        fs_caught_up = f.caught_up;
        fs_sent_seq = f.sent_seq;
        fs_sent_gen = f.sent_gen;
        fs_acked_seq = f.acked_seq;
        fs_acked_gen = f.acked_gen;
      })
    fws
