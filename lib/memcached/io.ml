exception Timeout

(* Writing to a peer-closed socket must surface as EPIPE, not kill the
   process (stock memcached ignores SIGPIPE the same way). Forced once by
   every socket-endpoint constructor. *)
let ignore_sigpipe_once =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ())

let ignore_sigpipe () = Lazy.force ignore_sigpipe_once

(* Wait until [fd] is ready in the given direction, or until [deadline]
   (absolute; None = forever). EINTR during the wait restarts it. *)
let wait_ready ~for_write ?deadline fd =
  let rec go () =
    let budget =
      match deadline with
      | None -> -1.0
      | Some d ->
          let left = d -. Unix.gettimeofday () in
          if left <= 0.0 then raise Timeout;
          left
    in
    let r, w = if for_write then ([], [ fd ]) else ([ fd ], []) in
    match Unix.select r w [] budget with
    | [], [], _ when deadline <> None -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let write_all ?(fault = "") ?deadline fd s =
  let bytes = Bytes.unsafe_of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then begin
      let want = len - off in
      let want = if fault = "" then want else Rp_fault.io_cap fault want in
      match Unix.write fd bytes off want with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          wait_ready ~for_write:true ?deadline fd;
          go off
    end
  in
  go 0

(* --- non-blocking variants (event-loop plane) ---

   These never wait: the caller's poll set decides when to try again. EINTR
   is retried inline; EAGAIN/EWOULDBLOCK surfaces as [`Would_block]. The
   same failpoint sites as the blocking path apply, so torture scenarios
   can tear or shrink event-loop I/O identically. *)

let read_nonblock ?(fault = "") fd buf =
  let want = Bytes.length buf in
  let want = if fault = "" then want else Rp_fault.io_cap fault want in
  let rec go () =
    match Unix.read fd buf 0 want with
    | 0 -> `Eof
    | n -> `Data n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Would_block
  in
  go ()

let write_nonblock ?(fault = "") fd s ~off =
  let len = String.length s - off in
  let want = if fault = "" then len else Rp_fault.io_cap fault len in
  let rec go () =
    match Unix.write_substring fd s off want with
    | n -> `Wrote n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Would_block
  in
  go ()

let set_tcp_nodelay fd =
  (* Best-effort: meaningless (and an error) on AF_UNIX sockets. *)
  try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ()

let read ?(fault = "") ?timeout fd buf =
  let want = Bytes.length buf in
  let want = if fault = "" then want else Rp_fault.io_cap fault want in
  let deadline =
    match timeout with
    | Some t when t > 0.0 -> Some (Unix.gettimeofday () +. t)
    | Some _ | None -> None
  in
  (* A blocking read would ignore the idle budget, so wait explicitly when
     one is set. *)
  if deadline <> None then wait_ready ~for_write:false ?deadline fd;
  let rec go () =
    match Unix.read fd buf 0 want with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        wait_ready ~for_write:false ?deadline fd;
        go ()
  in
  go ()
