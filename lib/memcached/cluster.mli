(** Cluster glue: op-log replication wired into a store.

    Two roles:

    - {!lead}: run the leader-side replication listener
      ({!Rp_cluster.Repl_leader}) next to a {!Persist} manager. Every
      record that reaches the op log is also published to connected
      followers — the persist tap runs inside the store's serialization
      lock, so stream order is exactly log order — and followers that
      are behind catch up from the op-log segments on disk.
    - {!follow}: run a following replica. The store flips read-only
      (client mutations get [SERVER_ERROR replica is read-only]), a
      {!Rp_cluster.Repl_follower} applies the stream through
      {!Store.replicate} (which re-logs into the follower's own op log,
      keeping it promotable), and [cluster promote] — wired through
      {!Store.set_promote_hook} — stops the stream and opens the write
      path.

    Both roles publish their live state through [stats cluster]
    ({!Store.cluster_stats}) and register [cluster_*] instruments in the
    store's registry. The leader trace id rides the stream: a sampled
    leader request and the follower's apply span share a trace id in the
    Perfetto export. *)

type t

type role = Leader | Replica | Promoted

val lead : store:Store.t -> persist:Persist.t -> Unix.sockaddr -> t
(** Start the replication listener on the given address (port 0 picks a
    free port — see {!repl_port}) and install the persist tap. Requires
    the persistence manager to have its op log enabled (followers catch
    up from the segments in {!Persist.dir}). *)

val follow :
  store:Store.t -> ?persist:Persist.t -> leader:Unix.sockaddr -> unit -> t
(** Connect to a leader's replication listener and apply its stream.
    [persist] is unused directly (the store's persist hook already
    re-logs applied records) but documents the intended deployment:
    attach persistence first so the replica is durable and promotable. *)

val promote : t -> (string, string) result
(** Stop following and open the write path ([Error] for a leader or an
    already promoted node). Also reachable as the [cluster promote]
    admin command via {!Store.promote}. *)

val role : t -> role
val repl_port : t -> int
(** The leader listener's bound port (0 for a follower). *)

val applied : t -> int
(** Records applied from the stream (0 for a leader). *)

val connected : t -> bool
(** Follower: is the replication link up. Leader: always true. *)

val stop : t -> unit
(** Leader: uninstall the tap, close the listener and follower links.
    Follower: stop the replication client (unless already promoted, in
    which case it is gone). Idempotent. *)
