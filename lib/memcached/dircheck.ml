let validate ~flag path =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if Sys.file_exists path && not (Sys.is_directory path) then
    fail "%s %s: not a directory" flag path
  else
    match Rp_persist.Fsutil.mkdir_p path with
    | exception Unix.Unix_error (e, _, _) ->
        fail "%s %s: cannot create: %s" flag path (Unix.error_message e)
    | exception Sys_error m -> fail "%s %s: cannot create: %s" flag path m
    | () -> (
        (* Creating the directory proves nothing about writing into it
           (mkdir_p is a no-op on an existing dir) — probe with a real
           file, the same syscalls the op log and tier segments will
           make. *)
        let probe =
          Filename.concat path
            (Printf.sprintf ".writable-%d" (Unix.getpid ()))
        in
        match
          let fd =
            Unix.openfile probe [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
              0o644
          in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () -> ignore (Unix.write_substring fd "x" 0 1));
          Sys.remove probe
        with
        | () -> Ok ()
        | exception Unix.Unix_error (e, _, _) ->
            fail "%s %s: not writable: %s" flag path (Unix.error_message e)
        | exception Sys_error m -> fail "%s %s: not writable: %s" flag path m)
