open Binary_protocol

type t = {
  fd : Unix.file_descr;
  parser : Response_parser.t;
  buf : Bytes.t;
}

let connect (addr : Server.address) =
  Io.ignore_sigpipe ();
  let domain, sockaddr =
    match addr with
    | Server.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Server.Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd sockaddr;
  { fd; parser = Response_parser.create (); buf = Bytes.create 16384 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rec read_response t =
  match Response_parser.next t.parser with
  | Some (Ok response) -> response
  | Some (Error msg) -> failwith ("Binary_client: protocol error: " ^ msg)
  | None ->
      let n = Io.read t.fd t.buf in
      if n = 0 then failwith "Binary_client: connection closed";
      Response_parser.feed t.parser (Bytes.sub_string t.buf 0 n);
      read_response t

let make_request ?(key = "") ?(value = "") ?(extras = "") ?(cas = 0) opcode =
  { opcode; key; value; extras; opaque = 0xCAFE; cas }

let request t req =
  Io.write_all t.fd (encode_request req);
  let response = read_response t in
  if response.r_opaque <> req.opaque then
    failwith "Binary_client: opaque mismatch";
  response

let get t key =
  let r = request t (make_request ~key Get) in
  match r.status with
  | Ok_status ->
      let flags =
        if String.length r.r_extras >= 4 then parse_u32 r.r_extras 0 else 0
      in
      Some (r.r_value, flags)
  | _ -> None

let gets_cas t key =
  let r = request t (make_request ~key Get) in
  match r.status with Ok_status -> Some r.r_cas | _ -> None

let set t ?(flags = 0) ?(exptime = 0) ?(cas = 0) ~key ~data () =
  let r =
    request t
      (make_request ~key ~value:data ~extras:(set_extras ~flags ~exptime) ~cas Set)
  in
  r.status

let add t ?(flags = 0) ?(exptime = 0) ~key ~data () =
  let r =
    request t (make_request ~key ~value:data ~extras:(set_extras ~flags ~exptime) Add)
  in
  r.status

let delete t key =
  (request t (make_request ~key Delete)).status = Ok_status

let counter t opcode ?(initial = 0) key delta =
  let r =
    request t
      (make_request ~key
         ~extras:(counter_extras ~delta ~initial ~exptime:0)
         opcode)
  in
  match r.status with
  | Ok_status when String.length r.r_value >= 8 -> Some (parse_u64 r.r_value 0)
  | _ -> None

let incr t ?initial key delta = counter t Increment ?initial key delta
let decr t ?initial key delta = counter t Decrement ?initial key delta

let touch t ~key ~exptime =
  (request t (make_request ~key ~extras:(touch_extras ~exptime) Touch)).status
  = Ok_status

let gat t ~key ~exptime =
  let r = request t (make_request ~key ~extras:(touch_extras ~exptime) GAT) in
  match r.status with
  | Ok_status ->
      let flags =
        if String.length r.r_extras >= 4 then parse_u32 r.r_extras 0 else 0
      in
      Some (r.r_value, flags)
  | _ -> None

let version t = (request t (make_request Version)).r_value
let noop t = ignore (request t (make_request Noop))
let flush_all t = ignore (request t (make_request Flush))

let stats ?(key = "") t =
  Io.write_all t.fd (encode_request (make_request ~key Stat));
  let rec collect acc =
    let r = read_response t in
    if r.status <> Ok_status then
      failwith "Binary_client.stats: error status"
    else if r.r_key = "" then List.rev acc
    else collect ((r.r_key, r.r_value) :: acc)
  in
  collect []
