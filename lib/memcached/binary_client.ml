open Binary_protocol

type member = {
  m_addr : Server.address;
  m_host : string;
  m_port : int;
  m_weight : int;
  mutable m_fd : Unix.file_descr option;
  mutable m_parser : Response_parser.t;
  mutable m_fails : int;
  mutable m_ejected_until : float;
}

type t = {
  members : member array;
  ring : Rp_cluster.Ring.t option;
  buf : Bytes.t;
  eject_after : int;
  rejoin_after : float;
  retries : int;
  mutable jitter_state : int;
}

let make_member addr ~host ~port ~weight =
  {
    m_addr = addr;
    m_host = host;
    m_port = port;
    m_weight = weight;
    m_fd = None;
    m_parser = Response_parser.create ();
    m_fails = 0;
    m_ejected_until = 0.;
  }

let close_member m =
  (match m.m_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  m.m_fd <- None

let ensure_fd m =
  match m.m_fd with
  | Some fd -> fd
  | None ->
      let domain, sockaddr = Server.sockaddr_of m.m_addr in
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      (try Unix.connect fd sockaddr
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      m.m_parser <- Response_parser.create ();
      m.m_fd <- Some fd;
      fd

let connect (addr : Server.address) =
  Io.ignore_sigpipe ();
  let host, port =
    match addr with
    | Server.Tcp p -> ("127.0.0.1", p)
    | Server.Inet (h, p) -> (h, p)
    | Server.Unix_socket path -> (path, 0)
  in
  let m = make_member addr ~host ~port ~weight:1 in
  ignore (ensure_fd m);
  {
    members = [| m |];
    ring = None;
    buf = Bytes.create 16384;
    eject_after = 3;
    rejoin_after = 0.5;
    retries = 0;
    jitter_state = 0x85ebca6b;
  }

let of_servers ?(retries = 2) ?(eject_after = 3) ?(rejoin_after = 0.5) servers =
  if servers = [] then invalid_arg "Binary_client.of_servers: empty server list";
  Io.ignore_sigpipe ();
  let members =
    Array.of_list
      (List.map
         (fun (host, port, weight) ->
           make_member (Server.Inet (host, port)) ~host ~port ~weight)
         servers)
  in
  let ring =
    Rp_cluster.Ring.create
      (List.map
         (fun (host, port, weight) -> { Rp_cluster.Ring.host; port; weight })
         servers)
  in
  {
    members;
    ring = Some ring;
    buf = Bytes.create 16384;
    eject_after = max 1 eject_after;
    rejoin_after;
    retries;
    jitter_state = 0x85ebca6b;
  }

let close t = Array.iter close_member t.members

let ejected m ~now = m.m_ejected_until > now

let next_jitter t =
  (* 48-bit LCG (java.util.Random constants) — fits OCaml's 63-bit int. *)
  t.jitter_state <-
    ((t.jitter_state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  float_of_int ((t.jitter_state lsr 24) land 0xFFFFFF) /. 16777216.

let note_failure t m =
  close_member m;
  m.m_fails <- m.m_fails + 1;
  if m.m_fails >= t.eject_after then begin
    let over = min (m.m_fails - t.eject_after) 4 in
    let base = t.rejoin_after *. float_of_int (1 lsl over) in
    m.m_ejected_until <- Unix.gettimeofday () +. (base *. (1. +. next_jitter t))
  end

let member_for t key =
  match t.ring with
  | None -> t.members.(0)
  | Some ring -> (
      let now = Unix.gettimeofday () in
      match
        Rp_cluster.Ring.lookup ring ~avoid:(fun i -> ejected t.members.(i) ~now) key
      with
      | Some i -> t.members.(i)
      | None -> (
          match Rp_cluster.Ring.lookup ring key with
          | Some i -> t.members.(i)
          | None -> t.members.(0)))

let admin_member t =
  match t.ring with
  | None -> t.members.(0)
  | Some _ ->
      let now = Unix.gettimeofday () in
      let found = ref None in
      Array.iter
        (fun m -> if !found = None && not (ejected m ~now) then found := Some m)
        t.members;
      (match !found with Some m -> m | None -> t.members.(0))

let rec read_response t m =
  match Response_parser.next m.m_parser with
  | Some (Ok response) -> response
  | Some (Error msg) -> failwith ("Binary_client: protocol error: " ^ msg)
  | None ->
      let fd =
        match m.m_fd with
        | Some fd -> fd
        | None -> failwith "Binary_client: connection closed"
      in
      let n = Io.read fd t.buf in
      if n = 0 then failwith "Binary_client: connection closed";
      Response_parser.feed m.m_parser (Bytes.sub_string t.buf 0 n);
      read_response t m

let make_request ?(key = "") ?(value = "") ?(extras = "") ?(cas = 0) opcode =
  { opcode; key; value; extras; opaque = 0xCAFE; cas }

let retryable = function
  | Unix.Unix_error _ -> true
  | Failure msg -> msg = "Binary_client: connection closed"
  | _ -> false

let request_via pick t req =
  let rec attempt n =
    let m = pick () in
    match
      let fd = ensure_fd m in
      Io.write_all fd (encode_request req);
      read_response t m
    with
    | response ->
        m.m_fails <- 0;
        m.m_ejected_until <- 0.;
        if response.r_opaque <> req.opaque then
          failwith "Binary_client: opaque mismatch";
        response
    | exception e when retryable e && n < t.retries ->
        note_failure t m;
        attempt (n + 1)
    | exception e ->
        if retryable e then note_failure t m;
        raise e
  in
  attempt 0

let request t req =
  let pick =
    if req.key = "" then fun () -> admin_member t
    else fun () -> member_for t req.key
  in
  request_via pick t req

let get t key =
  let r = request t (make_request ~key Get) in
  match r.status with
  | Ok_status ->
      let flags =
        if String.length r.r_extras >= 4 then parse_u32 r.r_extras 0 else 0
      in
      Some (r.r_value, flags)
  | _ -> None

let gets_cas t key =
  let r = request t (make_request ~key Get) in
  match r.status with Ok_status -> Some r.r_cas | _ -> None

let set t ?(flags = 0) ?(exptime = 0) ?(cas = 0) ~key ~data () =
  let r =
    request t
      (make_request ~key ~value:data ~extras:(set_extras ~flags ~exptime) ~cas Set)
  in
  r.status

let add t ?(flags = 0) ?(exptime = 0) ~key ~data () =
  let r =
    request t (make_request ~key ~value:data ~extras:(set_extras ~flags ~exptime) Add)
  in
  r.status

let delete t key =
  (request t (make_request ~key Delete)).status = Ok_status

let counter t opcode ?(initial = 0) key delta =
  let r =
    request t
      (make_request ~key
         ~extras:(counter_extras ~delta ~initial ~exptime:0)
         opcode)
  in
  match r.status with
  | Ok_status when String.length r.r_value >= 8 -> Some (parse_u64 r.r_value 0)
  | _ -> None

let incr t ?initial key delta = counter t Increment ?initial key delta
let decr t ?initial key delta = counter t Decrement ?initial key delta

let touch t ~key ~exptime =
  (request t (make_request ~key ~extras:(touch_extras ~exptime) Touch)).status
  = Ok_status

let gat t ~key ~exptime =
  let r = request t (make_request ~key ~extras:(touch_extras ~exptime) GAT) in
  match r.status with
  | Ok_status ->
      let flags =
        if String.length r.r_extras >= 4 then parse_u32 r.r_extras 0 else 0
      in
      Some (r.r_value, flags)
  | _ -> None

let version t = (request t (make_request Version)).r_value
let noop t = ignore (request t (make_request Noop))
let flush_all t = ignore (request t (make_request Flush))

let stats ?(key = "") t =
  let m = admin_member t in
  let fd = ensure_fd m in
  Io.write_all fd (encode_request (make_request ~key Stat));
  let rec collect acc =
    let r = read_response t m in
    if r.status <> Ok_status then
      failwith "Binary_client.stats: error status"
    else if r.r_key = "" then List.rev acc
    else collect ((r.r_key, r.r_value) :: acc)
  in
  collect []
