(** A stored cache item.

    Immutable payload ([data], [flags]) plus mutable bookkeeping the RP GET
    fast path may touch from inside a read-side critical section
    ([last_access] is atomic so lock-free readers can bump it). *)

type location =
  | Hot  (** value in [data] *)
  | Cold of { segment : int; offset : int; len : int }
      (** value demoted to the disk tier; [data] is empty and these plain
          ints name the segment frame holding it (see {!Rp_tier.location}
          — kept as bare ints so this module has no tier dependency).
          Flags, expiry and CAS stay in RAM either way. *)

type t = {
  flags : int;
  exptime : float;  (** absolute expiry in Unix seconds; 0. = never *)
  data : string;
  cas : int;  (** unique version for compare-and-swap (gets/cas) *)
  created : float;
  last_access : float Atomic.t;
  location : location;
}

val make :
  ?cas:int ->
  ?location:location ->
  flags:int -> exptime:float -> data:string -> now:float -> unit -> t
(** [location] defaults to {!Hot}. *)

val note_restored_cas : int -> unit
(** Tell the CAS allocator a recovered item carries [cas], so versions
    minted after a warm restart stay unique (monotonic past any replayed
    value). Thread-safe. *)

val is_expired : t -> now:float -> bool

val is_cold : t -> bool
(** True when the value lives in the disk tier ([location <> Hot]). *)

val touch_access : t -> now:float -> unit
(** Bump [last_access]; safe from concurrent lock-free readers. *)

val size_bytes : key:string -> t -> int
(** Approximate memory footprint used for the eviction budget: key + data +
    a fixed per-item overhead (matching memcached's accounting style). *)

val overhead_bytes : int
