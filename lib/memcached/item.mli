(** A stored cache item.

    Immutable payload ([data], [flags]) plus mutable bookkeeping the RP GET
    fast path may touch from inside a read-side critical section
    ([last_access] is atomic so lock-free readers can bump it). *)

type t = {
  flags : int;
  exptime : float;  (** absolute expiry in Unix seconds; 0. = never *)
  data : string;
  cas : int;  (** unique version for compare-and-swap (gets/cas) *)
  created : float;
  last_access : float Atomic.t;
}

val make :
  ?cas:int -> flags:int -> exptime:float -> data:string -> now:float -> unit -> t

val note_restored_cas : int -> unit
(** Tell the CAS allocator a recovered item carries [cas], so versions
    minted after a warm restart stay unique (monotonic past any replayed
    value). Thread-safe. *)

val is_expired : t -> now:float -> bool

val touch_access : t -> now:float -> unit
(** Bump [last_access]; safe from concurrent lock-free readers. *)

val size_bytes : key:string -> t -> int
(** Approximate memory footprint used for the eviction budget: key + data +
    a fixed per-item overhead (matching memcached's accounting style). *)

val overhead_bytes : int
