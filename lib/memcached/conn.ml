(* Per-connection state machine for the event-loop plane.

   A connection owns a fixed read buffer, an incremental protocol parser
   (text or binary, decided by the first byte, as in stock memcached), and
   a reusable output buffer. One poll wakeup drains *all* complete
   pipelined requests buffered on the socket, dispatches them as a batch,
   and coalesces every response into a single write — no per-command
   syscall, no per-command response string. Partial writes park the
   remainder in [pending]; the worker then polls the fd for writability
   and stops reading until the backlog drains (backpressure). *)

type proto =
  | Detect
  | Text of Protocol.Parser.t
  | Binary of Binary_protocol.Parser.t

(* Flight-recorder span names (request tier: every request gets a B/E
   pair so the tail trigger has a substrate; the conn.* spans bracket
   the batch so request spans nest under their dispatch). *)
let k_fill = Rp_trace.intern "conn.fill"
let k_batch = Rp_trace.intern "conn.dispatch"
let k_flush = Rp_trace.intern "conn.flush"
let k_req = Rp_trace.intern "req.text"
let k_req_bin = Rp_trace.intern "req.binary"
let k_encode = Rp_trace.intern "conn.encode"

type t = {
  fd : Unix.file_descr;
  id : int;
  rbuf : Bytes.t;
  out : Buffer.t;
  mutable pending : string;  (* rendered but unwritten response bytes *)
  mutable pending_off : int;
  mutable proto : proto;
  mutable closing : bool;  (* flush remaining output, then close *)
  mutable last_active : float;
  mutable last_progress : float;  (* last write(2) that moved bytes *)
  mutable backlog : bool;  (* parser holds requests the write cap deferred *)
  reads : Rp_obs.Counter.t;  (* read(2) calls that moved bytes *)
  writes : Rp_obs.Counter.t;  (* write(2) calls that moved bytes *)
}

(* Above this, a drained output buffer releases its storage instead of
   pinning the high-water mark for the connection's lifetime. *)
let out_retain_bytes = 262_144

let create ~id ~buffer_size ~reads ~writes fd =
  {
    fd;
    id;
    rbuf = Bytes.create buffer_size;
    out = Buffer.create 256;
    pending = "";
    pending_off = 0;
    proto = Detect;
    closing = false;
    last_active = Unix.gettimeofday ();
    last_progress = Unix.gettimeofday ();
    backlog = false;
    reads;
    writes;
  }

let fd t = t.fd
let id t = t.id
let closing t = t.closing
let last_active t = t.last_active
let wants_write t = t.pending <> "" || Buffer.length t.out > 0
let has_backlog t = t.backlog

let pending_bytes t =
  String.length t.pending - t.pending_off + Buffer.length t.out

(* Slow-client deadline base: the later of "last byte we received" and
   "last byte the peer drained". A long-idle keepalive connection is not
   slow (nothing owed to it); a connection we owe bytes that accepts none
   is. *)
let no_progress_since t = Float.max t.last_active t.last_progress

let feed t s =
  match t.proto with
  | Detect ->
      if s <> "" then
        if s.[0] = Binary_protocol.magic_request_byte then begin
          let p = Binary_protocol.Parser.create () in
          Binary_protocol.Parser.feed p s;
          t.proto <- Binary p
        end
        else begin
          let p = Protocol.Parser.create () in
          Protocol.Parser.feed p s;
          t.proto <- Text p
        end
  | Text p -> Protocol.Parser.feed p s
  | Binary p -> Binary_protocol.Parser.feed p s

(* Drain the socket until it would block (or EOF), feeding the parser.
   Raises like any socket read (Unix_error, injected faults); the worker
   treats that as a torn connection. *)
let fill t =
  let rec go () =
    match Io.read_nonblock ~fault:"server.read.split" t.fd t.rbuf with
    | `Would_block -> `Ok
    | `Eof -> `Eof
    | `Data n ->
        Rp_obs.Counter.incr t.reads;
        t.last_active <- Unix.gettimeofday ();
        feed t (Bytes.sub_string t.rbuf 0 n);
        go ()
  in
  Rp_trace.with_span ~arg:t.id k_fill go

(* Execute every complete request buffered in the parser, rendering
   responses into [t.out]. Returns the batch size (dispatched commands,
   protocol errors included). [max_out] caps the rendered-but-unwritten
   bytes: past it, remaining parsed requests stay in the parser
   ([has_backlog] goes true) until a flush makes room — one pipelining
   client that never reads can pin at most ~cap of coalescer memory. *)
let dispatch ?(max_out = max_int) t store =
  let over_cap () = pending_bytes t >= max_out in
  match t.proto with
  | Detect -> 0
  | Text p ->
      let rec go n =
        if t.closing then n
        else if over_cap () then begin
          t.backlog <- true;
          n
        end
        else
          match Protocol.Parser.next p with
          | None ->
              t.backlog <- false;
              n
          | Some (Error msg) ->
              let reply =
                if msg = "ERROR" then Protocol.Error_reply
                else Protocol.Client_error msg
              in
              Protocol.encode_response_into t.out reply;
              go (n + 1)
          | Some (Ok Protocol.Quit) ->
              t.closing <- true;
              n + 1
          | Some (Ok request) ->
              Rp_trace.request_begin ~arg:t.id k_req;
              (match Dispatch.handle store request with
              | Some response ->
                  let enc = Rp_trace.span_begin_sampled k_encode in
                  Protocol.encode_response_into t.out response;
                  Rp_trace.span_end_sampled k_encode enc
              | None -> ());
              Rp_trace.request_end ();
              go (n + 1)
      in
      Rp_trace.with_span ~arg:t.id k_batch (fun () -> go 0)
  | Binary p ->
      let rec go n =
        if t.closing then n
        else if over_cap () then begin
          t.backlog <- true;
          n
        end
        else
          match Binary_protocol.Parser.next p with
          | None ->
              t.backlog <- false;
              n
          | Some (Error _) ->
              (* Binary framing errors are unrecoverable: flush what was
                 already rendered, then drop, as stock memcached does. *)
              t.closing <- true;
              n
          | Some (Ok request) ->
              Rp_trace.request_begin ~arg:t.id k_req_bin;
              List.iter
                (fun response ->
                  Binary_protocol.encode_response_into t.out response)
                (Binary_server.handle store request);
              Rp_trace.request_end ();
              if Binary_server.quit_requested request then t.closing <- true;
              go (n + 1)
      in
      Rp_trace.with_span ~arg:t.id k_batch (fun () -> go 0)

(* Push pending then freshly rendered bytes. [`Want_write] means the
   socket backed up: the worker polls for writability. Socket errors and
   injected tears report [`Closed]. *)
let flush t =
  let had_output = wants_write t in
  let span = if had_output then Rp_trace.span_begin ~arg:t.id k_flush else -1 in
  let rec push () =
    if t.pending <> "" then
      match
        Io.write_nonblock ~fault:"server.write.partial" t.fd t.pending
          ~off:t.pending_off
      with
      | `Would_block -> `Want_write
      | `Wrote n ->
          Rp_obs.Counter.incr t.writes;
          t.last_progress <- Unix.gettimeofday ();
          let off = t.pending_off + n in
          if off >= String.length t.pending then begin
            t.pending <- "";
            t.pending_off <- 0;
            push ()
          end
          else begin
            t.pending_off <- off;
            push ()
          end
    else if Buffer.length t.out > 0 then begin
      let s = Buffer.contents t.out in
      if Buffer.length t.out > out_retain_bytes then Buffer.reset t.out
      else Buffer.clear t.out;
      t.pending <- s;
      t.pending_off <- 0;
      push ()
    end
    else `Done
  in
  let verdict =
    try push () with Unix.Unix_error _ | Rp_fault.Injected _ -> `Closed
  in
  Rp_trace.span_end ~arg:t.id k_flush span;
  verdict
