type storage = {
  key : string;
  flags : int;
  exptime : int;
  noreply : bool;
  data : string;
}

type request =
  | Get of string list
  | Gets of string list
  | Set of storage
  | Add of storage
  | Replace of storage
  | Append of storage
  | Prepend of storage
  | Cas of storage * int
  | Delete of { key : string; noreply : bool }
  | Incr of { key : string; delta : int; noreply : bool }
  | Decr of { key : string; delta : int; noreply : bool }
  | Touch of { key : string; exptime : int; noreply : bool }
  | Stats of string option
  | Trace_dump of int option  (** [trace dump [n]]: flight-recorder export *)
  | Heat_dump of int option  (** [heat dump [n]]: workload-insight export *)
  | Cluster_promote  (** [cluster promote]: replica -> leader *)
  | Flush_all of { noreply : bool }
  | Version
  | Quit

type value = { vkey : string; vflags : int; vdata : string; vcas : int option }

type response =
  | Values of value list
  | Stored
  | Not_stored
  | Exists
  | Not_found
  | Deleted
  | Touched
  | Ok_reply
  | Version_reply of string
  | Number of int
  | Stats_reply of (string * string) list
  | Trace_json of string
      (** one line of trace-event JSON, terminated by [END] *)
  | Client_error of string
  | Server_error of string
  | Error_reply

let crlf = "\r\n"

let request_key_valid key =
  let len = String.length key in
  len >= 1 && len <= 250
  && String.for_all (fun c -> c > ' ' && c <> '\x7f') key

(* --- encoding --- *)

let encode_storage verb ({ key; flags; exptime; noreply; data } : storage) extra =
  Printf.sprintf "%s %s %d %d %d%s%s%s%s%s" verb key flags exptime
    (String.length data) extra
    (if noreply then " noreply" else "")
    crlf data crlf

let encode_request = function
  | Get keys -> "get " ^ String.concat " " keys ^ crlf
  | Gets keys -> "gets " ^ String.concat " " keys ^ crlf
  | Set s -> encode_storage "set" s ""
  | Add s -> encode_storage "add" s ""
  | Replace s -> encode_storage "replace" s ""
  | Append s -> encode_storage "append" s ""
  | Prepend s -> encode_storage "prepend" s ""
  | Cas (s, unique) -> encode_storage "cas" s (Printf.sprintf " %d" unique)
  | Delete { key; noreply } ->
      Printf.sprintf "delete %s%s%s" key (if noreply then " noreply" else "") crlf
  | Incr { key; delta; noreply } ->
      Printf.sprintf "incr %s %d%s%s" key delta (if noreply then " noreply" else "") crlf
  | Decr { key; delta; noreply } ->
      Printf.sprintf "decr %s %d%s%s" key delta (if noreply then " noreply" else "") crlf
  | Touch { key; exptime; noreply } ->
      Printf.sprintf "touch %s %d%s%s" key exptime
        (if noreply then " noreply" else "")
        crlf
  | Stats None -> "stats" ^ crlf
  | Stats (Some arg) -> "stats " ^ arg ^ crlf
  | Trace_dump None -> "trace dump" ^ crlf
  | Trace_dump (Some n) -> Printf.sprintf "trace dump %d%s" n crlf
  | Heat_dump None -> "heat dump" ^ crlf
  | Heat_dump (Some n) -> Printf.sprintf "heat dump %d%s" n crlf
  | Cluster_promote -> "cluster promote" ^ crlf
  | Flush_all { noreply } ->
      Printf.sprintf "flush_all%s%s" (if noreply then " noreply" else "") crlf
  | Version -> "version" ^ crlf
  | Quit -> "quit" ^ crlf

(* Renders straight into a caller-owned buffer so a pipelined batch of
   responses coalesces without one string allocation per command. *)
let encode_response_into buf = function
  | Values values ->
      List.iter
        (fun { vkey; vflags; vdata; vcas } ->
          Buffer.add_string buf "VALUE ";
          Buffer.add_string buf vkey;
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int vflags);
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int (String.length vdata));
          (match vcas with
          | None -> ()
          | Some cas ->
              Buffer.add_char buf ' ';
              Buffer.add_string buf (string_of_int cas));
          Buffer.add_string buf crlf;
          Buffer.add_string buf vdata;
          Buffer.add_string buf crlf)
        values;
      Buffer.add_string buf "END";
      Buffer.add_string buf crlf
  | Stored -> Buffer.add_string buf ("STORED" ^ crlf)
  | Not_stored -> Buffer.add_string buf ("NOT_STORED" ^ crlf)
  | Exists -> Buffer.add_string buf ("EXISTS" ^ crlf)
  | Not_found -> Buffer.add_string buf ("NOT_FOUND" ^ crlf)
  | Deleted -> Buffer.add_string buf ("DELETED" ^ crlf)
  | Touched -> Buffer.add_string buf ("TOUCHED" ^ crlf)
  | Ok_reply -> Buffer.add_string buf ("OK" ^ crlf)
  | Version_reply v ->
      Buffer.add_string buf "VERSION ";
      Buffer.add_string buf v;
      Buffer.add_string buf crlf
  | Number n ->
      Buffer.add_string buf (string_of_int n);
      Buffer.add_string buf crlf
  | Stats_reply stats ->
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf "STAT ";
          Buffer.add_string buf k;
          Buffer.add_char buf ' ';
          Buffer.add_string buf v;
          Buffer.add_string buf crlf)
        stats;
      Buffer.add_string buf "END";
      Buffer.add_string buf crlf
  | Trace_json json ->
      Buffer.add_string buf json;
      Buffer.add_string buf crlf;
      Buffer.add_string buf "END";
      Buffer.add_string buf crlf
  | Client_error msg ->
      Buffer.add_string buf "CLIENT_ERROR ";
      Buffer.add_string buf msg;
      Buffer.add_string buf crlf
  | Server_error msg ->
      Buffer.add_string buf "SERVER_ERROR ";
      Buffer.add_string buf msg;
      Buffer.add_string buf crlf
  | Error_reply -> Buffer.add_string buf ("ERROR" ^ crlf)

let encode_response response =
  let buf = Buffer.create 128 in
  encode_response_into buf response;
  Buffer.contents buf

(* --- shared incremental buffer --- *)

module Inbuf = struct
  type t = { mutable data : string; mutable pos : int }

  let create () = { data = ""; pos = 0 }

  let feed t s =
    if t.pos > 0 && t.pos = String.length t.data then begin
      t.data <- s;
      t.pos <- 0
    end
    else if s <> "" then begin
      (* Compact occasionally so pos never grows without bound. *)
      if t.pos > 4096 then begin
        t.data <- String.sub t.data t.pos (String.length t.data - t.pos);
        t.pos <- 0
      end;
      t.data <- t.data ^ s
    end

  let available t = String.length t.data - t.pos

  (* A CRLF-terminated line, without the terminator. *)
  let take_line t =
    let rec find i =
      if i + 1 >= String.length t.data then None
      else if t.data.[i] = '\r' && t.data.[i + 1] = '\n' then Some i
      else find (i + 1)
    in
    match find t.pos with
    | None -> None
    | Some i ->
        let line = String.sub t.data t.pos (i - t.pos) in
        t.pos <- i + 2;
        Some line

  (* Drop buffered bytes up to and including the next CRLF. Returns
     [true] once a CRLF was consumed; [false] when the buffer ran dry
     first (a trailing '\r' is kept so a CRLF split across feed chunks
     is still recognised). *)
  let discard_line t =
    let len = String.length t.data in
    let rec find i =
      if i + 1 >= len then None
      else if t.data.[i] = '\r' && t.data.[i + 1] = '\n' then Some i
      else find (i + 1)
    in
    match find t.pos with
    | Some i ->
        t.pos <- i + 2;
        true
    | None ->
        t.data <- (if len > t.pos && t.data.[len - 1] = '\r' then "\r" else "");
        t.pos <- 0;
        false

  (* [n] data bytes followed by CRLF. *)
  let take_block t n =
    if available t < n + 2 then None
    else begin
      let block = String.sub t.data t.pos n in
      let terminated =
        t.data.[t.pos + n] = '\r' && t.data.[t.pos + n + 1] = '\n'
      in
      t.pos <- t.pos + n + 2;
      Some (block, terminated)
    end
end

(* --- request parser --- *)

module Parser = struct
  type pending = {
    verb : string;
    key : string;
    flags : int;
    exptime : int;
    bytes : int;
    noreply : bool;
    cas : int option;
  }

  type state = Await_line | Await_data of pending | Discard_line

  type t = { inbuf : Inbuf.t; max_line : int; mutable state : state }

  let create ?(max_line = 8192) () =
    if max_line < 1 then invalid_arg "Protocol.Parser.create: max_line < 1";
    { inbuf = Inbuf.create (); max_line; state = Await_line }
  let feed t s = Inbuf.feed t.inbuf s
  let buffered_bytes t = Inbuf.available t.inbuf

  let tokens line =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

  let int_arg s = int_of_string_opt s

  let storage_of pending data : storage =
    {
      key = pending.key;
      flags = pending.flags;
      exptime = pending.exptime;
      noreply = pending.noreply;
      data;
    }

  let finish_storage pending data =
    let s = storage_of pending data in
    match pending.verb with
    | "set" -> Ok (Set s)
    | "add" -> Ok (Add s)
    | "replace" -> Ok (Replace s)
    | "append" -> Ok (Append s)
    | "prepend" -> Ok (Prepend s)
    | "cas" -> (
        match pending.cas with
        | Some unique -> Ok (Cas (s, unique))
        | None -> Error "cas without unique")
    | verb -> Error ("unknown storage verb " ^ verb)

  let parse_storage_line verb args =
    let with_cas = verb = "cas" in
    let consume key flags exptime bytes cas rest =
      match (int_arg flags, int_arg exptime, int_arg bytes) with
      | Some flags, Some exptime, Some bytes when bytes >= 0 ->
          if not (request_key_valid key) then Error "bad key"
          else begin
            let noreply = rest = [ "noreply" ] in
            if rest <> [] && not noreply then Error "bad command line format"
            else
              Ok { verb; key; flags; exptime; bytes; noreply; cas }
          end
      | _ -> Error "bad command line format"
    in
    match (with_cas, args) with
    | false, key :: flags :: exptime :: bytes :: rest ->
        consume key flags exptime bytes None rest
    | true, key :: flags :: exptime :: bytes :: unique :: rest -> (
        match int_arg unique with
        | Some u -> consume key flags exptime bytes (Some u) rest
        | None -> Error "bad cas unique")
    | _ -> Error "bad command line format"

  let parse_keys verb keys =
    if keys = [] then Error ("bad " ^ verb ^ ": no keys")
    else if List.for_all request_key_valid keys then Ok keys
    else Error "bad key"

  let parse_line t line =
    match tokens line with
    | [] -> None (* empty line: ignore, keep reading *)
    | verb :: args -> (
        match verb with
        | "get" -> (
            match parse_keys "get" args with
            | Ok keys -> Some (Ok (Get keys))
            | Error e -> Some (Error e))
        | "gets" -> (
            match parse_keys "gets" args with
            | Ok keys -> Some (Ok (Gets keys))
            | Error e -> Some (Error e))
        | "set" | "add" | "replace" | "append" | "prepend" | "cas" -> (
            match parse_storage_line verb args with
            | Ok pending ->
                t.state <- Await_data pending;
                None
            | Error e -> Some (Error e))
        | "delete" -> (
            match args with
            | [ key ] when request_key_valid key ->
                Some (Ok (Delete { key; noreply = false }))
            | [ key; "noreply" ] when request_key_valid key ->
                Some (Ok (Delete { key; noreply = true }))
            | _ -> Some (Error "bad delete"))
        | "incr" | "decr" -> (
            let build key delta noreply =
              if verb = "incr" then Incr { key; delta; noreply }
              else Decr { key; delta; noreply }
            in
            match args with
            | [ key; delta ] when request_key_valid key -> (
                match int_arg delta with
                | Some d when d >= 0 -> Some (Ok (build key d false))
                | _ -> Some (Error "invalid numeric delta argument"))
            | [ key; delta; "noreply" ] when request_key_valid key -> (
                match int_arg delta with
                | Some d when d >= 0 -> Some (Ok (build key d true))
                | _ -> Some (Error "invalid numeric delta argument"))
            | _ -> Some (Error ("bad " ^ verb)))
        | "touch" -> (
            match args with
            | [ key; exptime ] when request_key_valid key -> (
                match int_arg exptime with
                | Some e -> Some (Ok (Touch { key; exptime = e; noreply = false }))
                | None -> Some (Error "bad touch"))
            | [ key; exptime; "noreply" ] when request_key_valid key -> (
                match int_arg exptime with
                | Some e -> Some (Ok (Touch { key; exptime = e; noreply = true }))
                | None -> Some (Error "bad touch"))
            | _ -> Some (Error "bad touch"))
        | "stats" -> (
            match args with
            | [] -> Some (Ok (Stats None))
            | [ arg ] -> Some (Ok (Stats (Some arg)))
            | _ -> Some (Error "bad stats"))
        | "trace" -> (
            match args with
            | [ "dump" ] -> Some (Ok (Trace_dump None))
            | [ "dump"; n ] -> (
                match int_arg n with
                | Some n when n > 0 -> Some (Ok (Trace_dump (Some n)))
                | _ -> Some (Error "bad trace dump count"))
            | _ -> Some (Error "bad trace"))
        | "heat" -> (
            match args with
            | [ "dump" ] -> Some (Ok (Heat_dump None))
            | [ "dump"; n ] -> (
                match int_arg n with
                | Some n when n > 0 -> Some (Ok (Heat_dump (Some n)))
                | _ -> Some (Error "bad heat dump count"))
            | _ -> Some (Error "bad heat"))
        | "cluster" -> (
            match args with
            | [ "promote" ] -> Some (Ok Cluster_promote)
            | _ -> Some (Error "bad cluster"))
        | "flush_all" -> (
            match args with
            | [] -> Some (Ok (Flush_all { noreply = false }))
            | [ "noreply" ] -> Some (Ok (Flush_all { noreply = true }))
            | _ -> Some (Error "bad flush_all"))
        | "version" -> Some (Ok Version)
        | "quit" -> Some (Ok Quit)
        | _ -> Some (Error "ERROR"))

  let rec next t =
    match t.state with
    | Await_line -> (
        match Inbuf.take_line t.inbuf with
        | None ->
            (* No CRLF in the buffer. If the partial line has already
               outgrown the bound, report once and start discarding, so a
               client streaming an endless line cannot balloon the buffer. *)
            if Inbuf.available t.inbuf > t.max_line then begin
              t.state <- Discard_line;
              ignore (Inbuf.discard_line t.inbuf);
              Some (Error "line too long")
            end
            else None
        | Some line ->
            if String.length line > t.max_line then Some (Error "line too long")
            else (
              match parse_line t line with
              | Some result -> Some result
              | None -> next t (* storage header consumed; try for the data *)))
    | Discard_line ->
        (* Resynchronise at the next CRLF, dropping everything before it. *)
        if Inbuf.discard_line t.inbuf then begin
          t.state <- Await_line;
          next t
        end
        else None
    | Await_data pending -> (
        match Inbuf.take_block t.inbuf pending.bytes with
        | None -> None
        | Some (data, terminated) ->
            t.state <- Await_line;
            if not terminated then Some (Error "bad data chunk")
            else Some (finish_storage pending data))
end

(* --- response parser (client side) --- *)

module Response_parser = struct
  type state =
    | Start
    | In_values of value list
    | Value_data of { vkey : string; vflags : int; bytes : int; vcas : int option; acc : value list }
    | In_stats of (string * string) list
    | In_trace of string  (* the JSON line; awaiting its END *)

  type t = { inbuf : Inbuf.t; mutable state : state }

  let create () = { inbuf = Inbuf.create (); state = Start }
  let feed t s = Inbuf.feed t.inbuf s

  let parse_value_header parts =
    match parts with
    | [ vkey; vflags; bytes ] -> (
        match (int_of_string_opt vflags, int_of_string_opt bytes) with
        | Some f, Some b when b >= 0 -> Ok (vkey, f, b, None)
        | _ -> Error "bad VALUE header")
    | [ vkey; vflags; bytes; cas ] -> (
        match
          (int_of_string_opt vflags, int_of_string_opt bytes, int_of_string_opt cas)
        with
        | Some f, Some b, Some c when b >= 0 -> Ok (vkey, f, b, Some c)
        | _ -> Error "bad VALUE header")
    | _ -> Error "bad VALUE header"

  let rec next t =
    match t.state with
    | Start -> (
        match Inbuf.take_line t.inbuf with
        | None -> None
        | Some line when String.length line > 0 && line.[0] = '{' ->
            (* trace dump: one line of JSON, then END *)
            t.state <- In_trace line;
            next t
        | Some line -> (
            let parts =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match parts with
            | [ "STORED" ] -> Some (Ok Stored)
            | [ "NOT_STORED" ] -> Some (Ok Not_stored)
            | [ "EXISTS" ] -> Some (Ok Exists)
            | [ "NOT_FOUND" ] -> Some (Ok Not_found)
            | [ "DELETED" ] -> Some (Ok Deleted)
            | [ "TOUCHED" ] -> Some (Ok Touched)
            | [ "OK" ] -> Some (Ok Ok_reply)
            | [ "END" ] -> Some (Ok (Values []))
            | [ "ERROR" ] -> Some (Ok Error_reply)
            | "VERSION" :: rest -> Some (Ok (Version_reply (String.concat " " rest)))
            | "CLIENT_ERROR" :: rest ->
                Some (Ok (Client_error (String.concat " " rest)))
            | "SERVER_ERROR" :: rest ->
                Some (Ok (Server_error (String.concat " " rest)))
            | "VALUE" :: header -> (
                match parse_value_header header with
                | Ok (vkey, vflags, bytes, vcas) ->
                    t.state <- Value_data { vkey; vflags; bytes; vcas; acc = [] };
                    next t
                | Error e -> Some (Error e))
            | "STAT" :: key :: rest ->
                t.state <- In_stats [ (key, String.concat " " rest) ];
                next t
            | [ number ] when int_of_string_opt number <> None ->
                Some (Ok (Number (int_of_string number)))
            | _ -> Some (Error ("unparseable response line: " ^ line))))
    | In_values acc -> (
        match Inbuf.take_line t.inbuf with
        | None -> None
        | Some line -> (
            let parts =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match parts with
            | [ "END" ] ->
                t.state <- Start;
                Some (Ok (Values (List.rev acc)))
            | "VALUE" :: header -> (
                match parse_value_header header with
                | Ok (vkey, vflags, bytes, vcas) ->
                    t.state <- Value_data { vkey; vflags; bytes; vcas; acc };
                    next t
                | Error e ->
                    t.state <- Start;
                    Some (Error e))
            | _ ->
                t.state <- Start;
                Some (Error ("unexpected line in VALUE stream: " ^ line))))
    | Value_data { vkey; vflags; bytes; vcas; acc } -> (
        match Inbuf.take_block t.inbuf bytes with
        | None -> None
        | Some (data, terminated) ->
            if not terminated then begin
              t.state <- Start;
              Some (Error "bad value data chunk")
            end
            else begin
              t.state <- In_values ({ vkey; vflags; vdata = data; vcas } :: acc);
              next t
            end)
    | In_stats acc -> (
        match Inbuf.take_line t.inbuf with
        | None -> None
        | Some line -> (
            let parts =
              String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
            in
            match parts with
            | [ "END" ] ->
                t.state <- Start;
                Some (Ok (Stats_reply (List.rev acc)))
            | "STAT" :: key :: rest ->
                t.state <- In_stats ((key, String.concat " " rest) :: acc);
                next t
            | _ ->
                t.state <- Start;
                Some (Error ("unexpected line in STAT stream: " ^ line))))
    | In_trace json -> (
        match Inbuf.take_line t.inbuf with
        | None -> None
        | Some "END" ->
            t.state <- Start;
            Some (Ok (Trace_json json))
        | Some line ->
            t.state <- Start;
            Some (Error ("unexpected line after trace JSON: " ^ line)))
end
