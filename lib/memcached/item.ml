(* Where an item's value lives. [Hot] values are in [data]; a [Cold]
   item was demoted to the disk tier — [data] is empty and the location
   names the segment frame holding the real value (plain ints so this
   module stays free of tier dependencies). Flags, expiry and CAS stay
   in RAM either way: expiry checks and CAS arbitration never touch
   disk. *)
type location = Hot | Cold of { segment : int; offset : int; len : int }

type t = {
  flags : int;
  exptime : float;
  data : string;
  cas : int;
  created : float;
  last_access : float Atomic.t;
  location : location;
}

let next_cas = Atomic.make 1
let overhead_bytes = 48

let make ?cas ?(location = Hot) ~flags ~exptime ~data ~now () =
  let cas = match cas with Some c -> c | None -> Atomic.fetch_and_add next_cas 1 in
  { flags; exptime; data; cas; created = now; last_access = Atomic.make now; location }

(* Replayed items keep their original CAS; push the allocator past them so
   post-recovery items never collide with a restored version. *)
let rec note_restored_cas cas =
  let cur = Atomic.get next_cas in
  if cas >= cur && not (Atomic.compare_and_set next_cas cur (cas + 1)) then
    note_restored_cas cas

let is_expired t ~now = t.exptime > 0.0 && t.exptime <= now
let is_cold t = t.location <> Hot
let touch_access t ~now = Atomic.set t.last_access now
let size_bytes ~key t = String.length key + String.length t.data + overhead_bytes
