(** The cache store: memcached semantics over a pluggable table backend.

    Two backends implement the same command set:

    - {!Lock}: stock memcached's discipline — one global lock around every
      operation, GETs included (lookup + exact-LRU bump + expiry check all
      inside the lock);
    - {!Rp}: the paper's port — GET is a wait-free relativistic lookup that
      copies the value inside the read-side critical section and bumps an
      atomic access timestamp instead of LRU list pointers; expiry falls
      back to a locked slow path; updates serialize {e per key} on a
      striped lock (stripe = key hash, aligned with the backing table's own
      writer stripes) so independent SETs/DELETEs/CAS proceed concurrently
      from different workers, and use safe relativistic memory reclamation
      (the table's deferred reclamation). CLOCK-style second-chance
      eviction replaces the exact LRU; sweeps are single-flighted and lock
      only each victim's stripe, never the whole store. *)

type backend = Lock | Rp

type rcu_mode =
  | Memb  (** safe default: readers pay two stores per section, any thread
              may touch the store at any time *)
  | Qsbr
      (** kernel-RCU-like zero-cost read sections for the {!Rp} backend
          (the event-loop serving plane's configuration). Every domain
          that touches the store becomes a QSBR participant and must
          quiesce regularly or go offline ({!reader_offline}) before
          blocking — exactly the discipline {!Evloop} workers follow. *)

type t

type stored_result =
  | Stored
  | Not_stored
  | Exists
  | Not_found
  | Too_large  (** bigger than the largest slab chunk (1 MiB) *)

type counter_result = Cnotfound | Cnon_numeric | Cvalue of int

val create :
  ?backend:backend ->
  ?rcu_mode:rcu_mode ->
  ?max_bytes:int ->
  ?initial_size:int ->
  ?auto_resize:bool ->
  ?stripes:int ->
  ?heat_topk:int ->
  ?heat_sample:int ->
  ?clock:(unit -> float) ->
  unit ->
  t
(** [max_bytes] is the eviction budget (default 64 MiB); [initial_size] the
    initial bucket count (default 1024); [auto_resize] (default true, RP
    backend only) lets the table grow/shrink with item count; [stripes]
    (default 8, rounded up to a power of two, RP backend only) is the
    update-stripe count — also passed down as the backing table's writer
    stripe count; [heat_topk] (default 0 = off) enables the {!Rp_heat}
    workload-insight plane tracking that many heavy hitters per sketch
    — when 0 the hot-path cost is a single branch on a [None];
    [heat_sample] (default 16, power of two) is the plane's head-sampling
    period — one note in that many pays for sketch work, and exposed
    counts are scaled back (pass 1 for exact counts in tests); [clock]
    is injectable for expiry tests. [rcu_mode] (default {!Memb}) selects
    the RCU flavour backing the {!Rp} table; {!Qsbr} makes every GET a
    zero-cost read section but obliges callers to QSBR discipline. *)

val backend : t -> backend
val rcu_mode : t -> rcu_mode

val write_stripes : t -> int
(** Update-stripe count of the {!Rp} backend (1 for {!Lock} — its global
    lock is one big stripe). *)

val reader_offline : t -> unit
(** Take the calling domain's reader offline (extended quiescent state) so
    grace periods stop waiting for it — required before a {!Qsbr}-mode
    domain blocks (poll wait, long sleep). The next store access brings it
    back online automatically. No-op for {!Memb} and the {!Lock} backend. *)

(** {1 Commands} *)

val get : t -> string -> Protocol.value option
(** The GET path whose scalability the paper's figure 5 measures. *)

val get_many : t -> ?with_cas:bool -> string list -> Protocol.value list
(** Batch lookup — the multiget fast path the event loop's batch dispatch
    hits: one [cmd_get] counter add for the whole batch and, on the {!Rp}
    backend, a single read-side critical section spanning every key.
    Expired items encountered inside the batch are reaped after the
    section closes, each under its own key's update stripe. *)

val set : t -> key:string -> flags:int -> exptime:int -> data:string -> stored_result
val add : t -> key:string -> flags:int -> exptime:int -> data:string -> stored_result
val replace : t -> key:string -> flags:int -> exptime:int -> data:string -> stored_result
val append : t -> key:string -> data:string -> stored_result
val prepend : t -> key:string -> data:string -> stored_result

val cas :
  t -> key:string -> flags:int -> exptime:int -> data:string -> unique:int ->
  stored_result

val delete : t -> string -> bool
val incr : t -> string -> int -> counter_result
val decr : t -> string -> int -> counter_result
(** [decr] saturates at 0, as memcached does. *)

val touch : t -> key:string -> exptime:int -> bool
val flush_all : t -> unit

(** {1 Persistence plumbing}

    The hooks the {!Persist} manager builds on. The store itself never
    touches a disk: it reports every acknowledged mutation as a
    state-based {!Rp_persist.Record.t} (called inside the mutated key's
    serialization stripe, so the log's per-key order is the store's —
    records are replay-idempotent, making cross-key interleaving safe)
    and can walk and restore itself on request. *)

val set_persist_hook : t -> (Rp_persist.Record.t -> unit) option -> unit
(** Install (or clear) the mutation hook. The hook runs with the mutated
    key's update stripe held — concurrent mutations on other stripes may
    invoke it concurrently, so it must be thread-safe — and must be quick
    aside from its own I/O; an exception it raises fails the triggering
    command after the in-memory effect — the client then sees an error,
    i.e. an unknown outcome. *)

val iter_items : t -> f:(string -> Item.t -> unit) -> int
(** Walk every live binding. On the {!Rp} backend this is
    {!Rp_ht.iter_batched}: bounded read-side critical sections with
    re-entry between batches, so the walk never blocks writers nor
    extends a grace period beyond one batch; bindings may be seen twice
    across a concurrent expansion, and the walk restarts on a concurrent
    shrink (the return value counts restarts). The {!Lock} backend walks
    under its global lock (returns 0). *)

val restore : t -> Rp_persist.Record.t -> unit
(** Apply a recovered record: no hook re-entry, no command counters;
    expired records delete rather than store. CAS values are preserved
    and {!Item.note_restored_cas} keeps future allocations unique. *)

val replicate : t -> Rp_persist.Record.t -> unit
(** Apply a record from the replication stream: {!restore} semantics,
    {e plus} the record is re-logged through the persist hook inside the
    serialization lock — a following replica's own oplog thereby stays a
    faithful linearization of what it applied, so it can recover,
    snapshot, and lead after promotion. Bypasses {!read_only}. *)

val now : t -> float
(** The store's (injectable) clock. *)

(** {1 Overload guard plumbing}

    The {!Guard} wiring module attaches an {!Rp_guard.t}; {!Dispatch} and
    {!Binary_server} consult it to shed mutations, and the guard's
    Emergency actuators call back into {!evict_to_budget}. *)

val set_guard : t -> Rp_guard.t option -> unit
val guard : t -> Rp_guard.t option

(** {1 Cluster plumbing}

    The {!Cluster} glue flips these; {!Dispatch} and {!Binary_server}
    consult them. *)

val set_read_only : t -> bool -> unit
(** A following replica refuses client mutations; the replication
    stream itself applies through {!replicate}, which is exempt. *)

val read_only : t -> bool

val set_cluster_info : t -> (unit -> (string * string) list) option -> unit
(** Provider for the [stats cluster] section (role, watermarks,
    follower list). *)

val set_promote_hook : t -> (unit -> (string, string) result) option -> unit
(** Action behind the [cluster promote] admin command. *)

val promote : t -> (string, string) result
(** Run the promote hook ([Error "not a replica"] when none). *)

(** {1 Cold-tier plumbing}

    The {!Tier} glue installs these hooks over an {!Rp_tier.Cold_store}.
    With hooks installed, the CLOCK eviction sweep {e demotes} victims —
    appends the value to a segment file and swaps the item for a compact
    {!Item.Cold} marker, under the victim's update stripe — instead of
    dropping them; a GET that finds a marker reads the segment with no
    store lock held and reinserts under the stripe (promote-on-access,
    single-flighted per key on a dedicated promote-stripe array). Keys,
    flags, expiry and CAS never leave the RP table. *)

type tier_read_error = Tier_gone | Tier_torn

type tier_hooks = {
  th_demote : string -> string -> (int * int * int) option;
      (** [th_demote key data] appends to the tier; [(segment, offset,
          len)] on success, [None] when full/failing (the store then
          falls back to plain eviction). Runs under the victim's update
          stripe. *)
  th_read : int * int * int -> (string * string, tier_read_error) result;
      (** Positioned read of [(key, data)]; runs with no store lock held. *)
  th_mark_dead : int * int * int -> unit;
      (** Location dereferenced (delete/overwrite/promote/flush); feeds
          the tier's per-segment live accounting. Runs under the key's
          update stripe. *)
  th_admit : unit -> bool;
      (** Demotion gate (false = shed demotions; cold reads are never
          shed). *)
}

val set_tier : t -> tier_hooks option -> unit

val set_tier_info : t -> (unit -> (string * string) list) option -> unit
(** Provider for the live part of the [stats tier] section. *)

val tier_location : t -> string -> (int * int * int) option
(** The key's cold-marker location, if it is live and demoted (wait-free;
    the tier's recovery and compactor use it as the liveness oracle). *)

val tier_relocate :
  t ->
  key:string ->
  from_:int * int * int ->
  relocate:(unit -> (int * int * int) option) ->
  bool
(** Compaction step: under the key's update stripe, verify the marker
    still points at [from_], run [relocate] (copy the frame to the head
    segment), and publish a marker for the returned location. [false] =
    the record was already dead or the copy failed; nothing changed. The
    caller marks the old frame dead on [true]. *)

val tier_demotions : t -> int
val tier_promotions : t -> int

val tier_active : t -> bool
(** A tier is attached and currently admitting demotions — i.e. an
    eviction sweep turns memory overflow into disk bytes rather than
    losses. The guard's memory source keys off this: a full hot layer
    over a working tier is healthy, not overload. *)

val max_bytes : t -> int
(** The eviction budget this store was created with. *)

val evict_to_budget : t -> int
(** Synchronous eviction sweep: evict (LRU / CLOCK per backend) until
    [bytes t <= max_bytes t]. Returns the number of items evicted (0 when
    already under budget). On the {!Rp} backend the sweep holds no stripe
    across the walk — it locks each victim's stripe individually — and is
    single-flighted against store-triggered sweeps (a losing caller waits
    the winner out and re-checks before returning). *)

(** {1 Introspection}

    Command counters ([cmd_get], [cmd_set], [get_hits], [get_misses],
    [deletes], [evictions], [expired]) are striped {!Rp_obs.Counter}s — the
    GET-path ones ride the wait-free lookup as unsynchronized stores. They
    live in a per-store {!Rp_obs.Registry} together with store gauges
    ([curr_items], [bytes], …) and, for the {!Rp} backend, the full
    [rp_ht_*] / [rcu_*] instrument set of the backing table and its RCU
    instance. *)

val registry : t -> Rp_obs.Registry.t
(** The store's instrument registry (for Prometheus exposition or report
    files). *)

val stats : t -> (string * string) list
(** memcached [stats] lines: [backend] plus every store-level instrument
    (the [rp_ht_*]/[rcu_*] internals are left to {!rp_stats}). *)

val rp_stats : t -> (string * string) list
(** [stats rp] lines: the relativistic-stack instruments only ([rp_ht_*]
    lookup/insert/resize counters and histogram, [rcu_*] grace-period
    counters and latency histogram). Empty for the {!Lock} backend. *)

val persist_stats : t -> (string * string) list
(** [stats persist] lines: every [persist_*] instrument the {!Persist}
    manager registered. Empty when persistence is not attached. *)

val trace_stats : t -> (string * string) list
(** [stats trace] lines: the flight recorder's live state — sample rate,
    spans recorded/dropped, sampled-request percentage, retained slow
    requests ({!Rp_trace.stats_kv}; process-wide). *)

val guard_stats : t -> (string * string) list
(** [stats guard] lines: the overload guard's live ladder state plus
    every [guard_*] instrument. A single disabled marker when no guard
    is attached. *)

val tier_stats : t -> (string * string) list
(** [stats tier] lines: the tier glue's live view (mode, dir) plus every
    [tier_*] instrument. A single disabled marker when no tier is
    attached. *)

val cluster_stats : t -> (string * string) list
(** [stats cluster] lines: the cluster glue's live view (role, sent and
    acked watermarks, follower list / leader link). A single disabled
    marker when the cluster plane is off. *)

val heat : t -> Rp_heat.t option
(** The workload-insight plane, when the store was created with
    [heat_topk > 0]. *)

val heat_stats : t -> (string * string) list
(** [stats heat] lines: per-rank heavy-hitter detail plus every [heat_*]
    instrument (top-k labeled gauges, size histograms, stripe heatmap).
    A single disabled marker when the plane is off. *)

val heat_json : ?n:int -> t -> string
(** The [/heat] JSON document (top [n] entries per sketch, default all
    [k]); [{"heat_enabled": false}] when the plane is off. *)

val reset_stats : t -> unit
(** [stats reset]: clear the heat sketches, exemplar cells, and every
    registry histogram. Monotonic counters ([cmd_get], [evictions], ...)
    survive — matching stock memcached's reset semantics. *)

val items : t -> int

val bytes : t -> int
(** Chunk bytes charged in the slab accounting (what eviction compares to
    the budget; includes internal fragmentation, as in stock memcached). *)

val slab_stats : t -> Slab.class_stats list
val fragmentation : t -> float
val evictions : t -> int
