module P = Rp_persist

type recovery = {
  snapshot_gen : int option;
  snapshot_records : int;
  log_records : int;
  log_bad_records : int;
  log_segments : int;
  log_truncated_bytes : int;
}

type t = {
  store : Store.t;
  dir : string;
  log : P.Oplog.t option;
  interval : float option;
  recovered : recovery;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable stop_requested : bool;
  mutable stopped : bool;  (* snapshot domain has exited *)
  mutable request_seq : int;  (* snapshot_now tickets *)
  mutable complete_seq : int;
  mutable last_result : (int, string) result;
  (* snapshot-domain-private state *)
  mutable next_gen : int;
  mutable next_deadline : float;
  (* instruments, registered in the store's registry as persist_... *)
  snapshots : int Atomic.t;
  snapshot_errors : int Atomic.t;
  mutable last_records : int;
  walk_restarts : int Atomic.t;
  compactions : int Atomic.t;
  appends : Rp_obs.Counter.t;
  snapshot_hist : Rp_obs.Histogram.t;
  mutable domain : unit Domain.t option;
}

let recovery t = t.recovered
let log_gen t = Option.map P.Oplog.gen t.log

let record_of_item key (item : Item.t) =
  P.Record.Set
    {
      op = P.Record.Tset;
      key;
      flags = item.flags;
      exptime = item.exptime;
      cas = item.cas;
      data = item.data;
    }

(* Delete every snapshot and segment older than the generation just
   published — they are fully covered by it. The failpoint models a crash
   in the window between publishing the snapshot and pruning the log;
   recovery then simply replays more than it strictly needs to. *)
let k_snapshot = Rp_trace.intern "persist.snapshot"
let k_walk = Rp_trace.intern "persist.snapshot_walk"
let k_compact = Rp_trace.intern "persist.compact"

let compact t ~keep_gen =
  Rp_fault.point "persist.compact.pre";
  let prune (g, path) =
    if g < keep_gen then try Sys.remove path with Sys_error _ -> ()
  in
  Rp_trace.with_span ~arg:keep_gen k_compact (fun () ->
      List.iter prune (P.Snapshot.files ~dir:t.dir);
      List.iter prune (P.Oplog.segments ~dir:t.dir);
      P.Fsutil.fsync_dir t.dir);
  Atomic.incr t.compactions

(* Runs on the snapshot domain only (next_gen/next_deadline are its). *)
let do_snapshot t =
  let gen = t.next_gen in
  t.next_gen <- gen + 1;
  (* Rotate first: from here on, concurrent mutations land in segment
     [gen], which recovery replays on top of snapshot [gen]. *)
  (match t.log with Some log -> P.Oplog.rotate log ~gen | None -> ());
  let started = Unix.gettimeofday () in
  let snap_span = Rp_trace.span_begin ~arg:gen k_snapshot in
  let count =
    P.Snapshot.write ~dir:t.dir ~gen ~iter:(fun emit ->
        let now = Store.now t.store in
        let walk_span = Rp_trace.span_begin ~arg:gen k_walk in
        let restarts =
          Store.iter_items t.store ~f:(fun key item ->
              if not (Item.is_expired item ~now) then
                emit (record_of_item key item))
        in
        Rp_trace.span_end ~arg:restarts k_walk walk_span;
        Atomic.set t.walk_restarts (Atomic.get t.walk_restarts + restarts);
        (* Walk done, read sections closed: go offline so the fsync and
           rename below never hold up a grace period. *)
        Store.reader_offline t.store)
  in
  Rp_trace.span_end ~arg:gen k_snapshot snap_span;
  Rp_obs.Histogram.observe_span t.snapshot_hist ~start:started
    ~stop:(Unix.gettimeofday ());
  Atomic.incr t.snapshots;
  t.last_records <- count;
  compact t ~keep_gen:gen;
  count

let snapshot_loop t =
  let finished = ref false in
  while not !finished do
    Mutex.lock t.mutex;
    let stop = t.stop_requested in
    let serving = t.request_seq in
    Mutex.unlock t.mutex;
    if stop then finished := true
    else begin
      let due =
        match t.interval with
        | Some _ -> Unix.gettimeofday () >= t.next_deadline
        | None -> false
      in
      if serving > t.complete_seq || due then begin
        let result =
          match do_snapshot t with
          | n -> Ok n
          | exception e ->
              Atomic.incr t.snapshot_errors;
              Error (Printexc.to_string e)
        in
        (match t.interval with
        | Some dt -> t.next_deadline <- Unix.gettimeofday () +. dt
        | None -> ());
        Mutex.lock t.mutex;
        t.last_result <- result;
        if serving > t.complete_seq then t.complete_seq <- serving;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end;
      (match t.log with Some log -> P.Oplog.tick log | None -> ());
      (* Never sleep as an online QSBR reader: a parked snapshot domain
         must not stall anyone's grace period. *)
      Store.reader_offline t.store;
      Unix.sleepf 0.02
    end
  done;
  Store.reader_offline t.store;
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let register_instruments t =
  let reg = Store.registry t.store in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.gauge reg ~help:"1 when a persistence manager is attached"
    "persist_enabled" (fun () -> 1.);
  Rp_obs.Registry.gauge reg ~help:"1 when the op log is recording"
    "persist_aof_enabled" (fun () -> if t.log = None then 0. else 1.);
  Rp_obs.Registry.gauge reg ~help:"current op-log segment generation"
    "persist_log_gen" (fun () ->
      match t.log with None -> 0. | Some l -> float_of_int (P.Oplog.gen l));
  Rp_obs.Registry.register_counter reg ~help:"op records appended to the log"
    "persist_log_appends_total" t.appends;
  Rp_obs.Registry.fn_counter reg ~help:"snapshots published"
    "persist_snapshots_total" (fn t.snapshots);
  Rp_obs.Registry.fn_counter reg ~help:"snapshot attempts that failed"
    "persist_snapshot_errors_total" (fn t.snapshot_errors);
  Rp_obs.Registry.fn_counter reg
    ~help:"snapshot walks restarted by a concurrent shrink"
    "persist_walk_restarts_total" (fn t.walk_restarts);
  Rp_obs.Registry.fn_counter reg ~help:"compaction passes after snapshots"
    "persist_compactions_total" (fn t.compactions);
  Rp_obs.Registry.gauge reg ~help:"records in the last published snapshot"
    "persist_snapshot_records" (fun () -> float_of_int t.last_records);
  Rp_obs.Registry.register_histogram reg
    ~help:"snapshot wall time in nanoseconds" "persist_snapshot_ns"
    t.snapshot_hist;
  Rp_obs.Registry.gauge reg ~help:"records restored from the snapshot"
    "persist_recovered_snapshot_records" (fun () ->
      float_of_int t.recovered.snapshot_records);
  Rp_obs.Registry.gauge reg ~help:"op records replayed from the log"
    "persist_recovered_log_records" (fun () ->
      float_of_int t.recovered.log_records);
  Rp_obs.Registry.gauge reg
    ~help:"torn-tail bytes truncated from the newest segment"
    "persist_recovered_log_truncated_bytes" (fun () ->
      float_of_int t.recovered.log_truncated_bytes);
  Rp_obs.Registry.gauge reg ~help:"undecodable records skipped during replay"
    "persist_recovered_log_bad_records" (fun () ->
      float_of_int t.recovered.log_bad_records)

let attach ?snapshot_interval ?(aof = true) ?(fsync = P.Oplog.Always) ~dir
    store =
  P.Fsutil.mkdir_p dir;
  (* Recovery first: snapshot, then the log tail on top of it. *)
  let snap =
    P.Snapshot.load_newest ~dir ~f:(fun r -> Store.restore store r)
  in
  let from_gen = match snap with Some (g, _) -> g | None -> 0 in
  let rr = P.Oplog.replay ~dir ~from_gen ~f:(fun r -> Store.restore store r) in
  let recovered =
    {
      snapshot_gen = Option.map fst snap;
      snapshot_records = (match snap with Some (_, n) -> n | None -> 0);
      log_records = rr.P.Oplog.records;
      log_bad_records = rr.P.Oplog.bad_records;
      log_segments = rr.P.Oplog.segments;
      log_truncated_bytes = rr.P.Oplog.truncated_bytes;
    }
  in
  (* Generations stay monotonic across restarts: past everything on disk,
     valid or not. *)
  let max_gen =
    List.fold_left
      (fun acc (g, _) -> max acc g)
      0
      (P.Snapshot.files ~dir @ P.Oplog.segments ~dir)
  in
  let log_start_gen = max_gen + 1 in
  let log =
    if aof then Some (P.Oplog.open_ ~dir ~gen:log_start_gen ~fsync) else None
  in
  let t =
    {
      store;
      dir;
      log;
      interval = snapshot_interval;
      recovered;
      mutex = Mutex.create ();
      cond = Condition.create ();
      stop_requested = false;
      stopped = false;
      request_seq = 0;
      complete_seq = 0;
      last_result = Ok 0;
      next_gen = log_start_gen + 1;
      next_deadline =
        (match snapshot_interval with
        | Some dt -> Unix.gettimeofday () +. dt
        | None -> infinity);
      snapshots = Atomic.make 0;
      snapshot_errors = Atomic.make 0;
      last_records = 0;
      walk_restarts = Atomic.make 0;
      compactions = Atomic.make 0;
      appends = Rp_obs.Counter.create ();
      snapshot_hist = Rp_obs.Histogram.create ();
      domain = None;
    }
  in
  (match log with
  | Some l ->
      Store.set_persist_hook store
        (Some
           (fun r ->
             P.Oplog.append l r;
             Rp_obs.Counter.incr t.appends))
  | None -> ());
  register_instruments t;
  t.domain <- Some (Domain.spawn (fun () -> snapshot_loop t));
  t

let snapshot_now t =
  Mutex.lock t.mutex;
  t.request_seq <- t.request_seq + 1;
  let ticket = t.request_seq in
  while t.complete_seq < ticket && not t.stopped do
    Condition.wait t.cond t.mutex
  done;
  let result =
    if t.complete_seq < ticket then Error "persistence manager stopped"
    else t.last_result
  in
  Mutex.unlock t.mutex;
  result

let halt t ~graceful =
  Mutex.lock t.mutex;
  let already = t.stop_requested in
  t.stop_requested <- true;
  Mutex.unlock t.mutex;
  if not already then begin
    Store.set_persist_hook t.store None;
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    match t.log with
    | Some l -> if graceful then P.Oplog.close l
    | None -> ()
  end

let stop t = halt t ~graceful:true
let crash_for_testing t = halt t ~graceful:false
