module P = Rp_persist

type recovery = {
  snapshot_gen : int option;
  snapshot_records : int;
  log_records : int;
  log_bad_records : int;
  log_segments : int;
  log_truncated_bytes : int;
  post_recovery_evictions : int;
}

type t = {
  store : Store.t;
  dir : string;
  log : P.Oplog.t option;
  interval : float option;
  archive_keep : int;  (* archived generations retained by compaction *)
  recovered : recovery;
  paused : bool Atomic.t;  (* periodic snapshots suspended (guard) *)
  mutex : Mutex.t;
  cond : Condition.t;
  mutable stop_requested : bool;
  mutable stopped : bool;  (* snapshot domain has exited *)
  mutable request_seq : int;  (* snapshot_now tickets *)
  mutable complete_seq : int;
  mutable last_result : (int, string) result;
  (* snapshot-domain-private state *)
  mutable next_gen : int;
  mutable next_deadline : float;
  (* instruments, registered in the store's registry as persist_... *)
  snapshots : int Atomic.t;
  snapshot_errors : int Atomic.t;
  mutable last_records : int;
  walk_restarts : int Atomic.t;
  compactions : int Atomic.t;
  appends : Rp_obs.Counter.t;
  append_errors : Rp_obs.Counter.t;
  last_append_error : float Atomic.t;  (* unixtime of last failure, 0 = clear *)
  snapshot_hist : Rp_obs.Histogram.t;
  mutable domain : unit Domain.t option;
  (* Replication tap: observes every record that reached the op log,
     inside the store's serialization lock — tap order is log order is
     store order. The leader glue hangs its publish fan-out here. *)
  mutable tap : (gen:int -> trace:int -> P.Record.t -> unit) option;
}

let dir t = t.dir
let set_tap t f = t.tap <- f

let flush_log t =
  match t.log with Some l -> P.Oplog.flush l | None -> ()

let recovery t = t.recovered
let log_gen t = Option.map P.Oplog.gen t.log
let set_paused t v = Atomic.set t.paused v
let paused t = Atomic.get t.paused
let append_errors t = Rp_obs.Counter.read t.append_errors

let last_append_error_age t =
  match Atomic.get t.last_append_error with
  | 0.0 -> None
  | ts -> Some (Unix.gettimeofday () -. ts)

let fsync_policy t = Option.map P.Oplog.policy t.log

let set_fsync_policy t p =
  match t.log with Some l -> P.Oplog.set_policy l p | None -> ()

(* Disk footprint of the log: every on-disk segment plus bytes the live
   segment has framed but not yet flushed. This is the guard plane's
   disk-pressure numerator, so it must see growth before fsync does. *)
let oplog_bytes t =
  let on_disk =
    List.fold_left
      (fun acc (_, path) ->
        acc + (try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0))
      0
      (P.Oplog.segments ~dir:t.dir)
  in
  match t.log with
  | None -> on_disk
  | Some l ->
      let live_on_disk =
        try (Unix.stat (Filename.concat t.dir (P.Oplog.filename ~gen:(P.Oplog.gen l)))).Unix.st_size
        with Unix.Unix_error _ -> 0
      in
      on_disk + max 0 (P.Oplog.bytes l - live_on_disk)

let record_of_item key (item : Item.t) =
  P.Record.Set
    {
      op = P.Record.Tset;
      key;
      flags = item.flags;
      exptime = item.exptime;
      cas = item.cas;
      data = item.data;
    }

(* Archive every snapshot and segment older than the generation just
   published — they are fully covered by it. Files are renamed to
   [<name>.old-<gen>] rather than deleted (the suffix hides them from
   both {!P.Snapshot.files} and {!P.Oplog.segments}, so recovery never
   sees them), and only the newest [archive_keep] archived generations
   are retained; older archives are deleted for real. The failpoint
   models a crash in the window between publishing the snapshot and
   pruning the log; recovery then simply replays more than it strictly
   needs to. *)
let k_snapshot = Rp_trace.intern "persist.snapshot"
let k_walk = Rp_trace.intern "persist.snapshot_walk"
let k_compact = Rp_trace.intern "persist.compact"

let archive_gen_of_name name =
  match String.rindex_opt name '-' with
  | Some i when i > 4 && String.sub name (i - 4) 4 = ".old" ->
      int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1))
  | _ -> None

let prune_archives t =
  if t.archive_keep >= 0 then begin
    let archived =
      Array.fold_left
        (fun acc name ->
          match archive_gen_of_name name with
          | Some g -> (g, Filename.concat t.dir name) :: acc
          | None -> acc)
        []
        (try Sys.readdir t.dir with Sys_error _ -> [||])
    in
    let gens =
      List.sort_uniq (fun a b -> compare b a) (List.map fst archived)
    in
    let keep = List.filteri (fun i _ -> i < t.archive_keep) gens in
    List.iter
      (fun (g, path) ->
        if not (List.mem g keep) then
          try Sys.remove path with Sys_error _ -> ())
      archived
  end

let compact t ~keep_gen =
  Rp_fault.point "persist.compact.pre";
  let prune (g, path) =
    if g < keep_gen then
      try Sys.rename path (Printf.sprintf "%s.old-%d" path g)
      with Sys_error _ -> ()
  in
  Rp_trace.with_span ~arg:keep_gen k_compact (fun () ->
      List.iter prune (P.Snapshot.files ~dir:t.dir);
      List.iter prune (P.Oplog.segments ~dir:t.dir);
      prune_archives t;
      P.Fsutil.fsync_dir t.dir);
  Atomic.incr t.compactions

(* Runs on the snapshot domain only (next_gen/next_deadline are its). *)
let do_snapshot t =
  (* The log may have rotated itself past next_gen (size cap): the
     snapshot must use a generation above every existing segment, or the
     rotate below would reopen an old one. *)
  let gen =
    match t.log with
    | Some l -> max t.next_gen (P.Oplog.gen l + 1)
    | None -> t.next_gen
  in
  t.next_gen <- gen + 1;
  (* Rotate first: from here on, concurrent mutations land in segment
     [gen], which recovery replays on top of snapshot [gen]. *)
  (match t.log with Some log -> P.Oplog.rotate log ~gen | None -> ());
  let started = Unix.gettimeofday () in
  let snap_span = Rp_trace.span_begin ~arg:gen k_snapshot in
  let count =
    P.Snapshot.write ~dir:t.dir ~gen ~iter:(fun emit ->
        let now = Store.now t.store in
        let walk_span = Rp_trace.span_begin ~arg:gen k_walk in
        let restarts =
          Store.iter_items t.store ~f:(fun key item ->
              if not (Item.is_expired item ~now) then
                emit (record_of_item key item))
        in
        Rp_trace.span_end ~arg:restarts k_walk walk_span;
        Atomic.set t.walk_restarts (Atomic.get t.walk_restarts + restarts);
        (* Walk done, read sections closed: go offline so the fsync and
           rename below never hold up a grace period. *)
        Store.reader_offline t.store)
  in
  Rp_trace.span_end ~arg:gen k_snapshot snap_span;
  Rp_obs.Histogram.observe_span t.snapshot_hist ~start:started
    ~stop:(Unix.gettimeofday ());
  Atomic.incr t.snapshots;
  t.last_records <- count;
  compact t ~keep_gen:gen;
  count

let snapshot_loop t =
  let finished = ref false in
  while not !finished do
    Mutex.lock t.mutex;
    let stop = t.stop_requested in
    let serving = t.request_seq in
    Mutex.unlock t.mutex;
    if stop then finished := true
    else begin
      let due =
        match t.interval with
        | Some _ ->
            (not (Atomic.get t.paused))
            && Unix.gettimeofday () >= t.next_deadline
        | None -> false
      in
      if serving > t.complete_seq || due then begin
        let result =
          match do_snapshot t with
          | n -> Ok n
          | exception e ->
              Atomic.incr t.snapshot_errors;
              Error (Printexc.to_string e)
        in
        (match t.interval with
        | Some dt -> t.next_deadline <- Unix.gettimeofday () +. dt
        | None -> ());
        Mutex.lock t.mutex;
        t.last_result <- result;
        if serving > t.complete_seq then t.complete_seq <- serving;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end;
      (* A tick that hits a full disk (or a failpoint) must not kill the
         snapshot domain — latch the failure for the guard instead. *)
      (match t.log with
      | Some log -> (
          try P.Oplog.tick log
          with _ ->
            Rp_obs.Counter.incr t.append_errors;
            Atomic.set t.last_append_error (Unix.gettimeofday ()))
      | None -> ());
      (* Never sleep as an online QSBR reader: a parked snapshot domain
         must not stall anyone's grace period. *)
      Store.reader_offline t.store;
      Unix.sleepf 0.02
    end
  done;
  Store.reader_offline t.store;
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let register_instruments t =
  let reg = Store.registry t.store in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.gauge reg ~help:"1 when a persistence manager is attached"
    "persist_enabled" (fun () -> 1.);
  Rp_obs.Registry.gauge reg ~help:"1 when the op log is recording"
    "persist_aof_enabled" (fun () -> if t.log = None then 0. else 1.);
  Rp_obs.Registry.gauge reg ~help:"current op-log segment generation"
    "persist_log_gen" (fun () ->
      match t.log with None -> 0. | Some l -> float_of_int (P.Oplog.gen l));
  Rp_obs.Registry.register_counter reg ~help:"op records appended to the log"
    "persist_log_appends_total" t.appends;
  Rp_obs.Registry.register_counter reg
    ~help:"op-log appends that failed (record dropped, durability degraded)"
    "persist_log_append_errors_total" t.append_errors;
  Rp_obs.Registry.gauge reg ~help:"op-log bytes on disk across segments"
    "persist_log_bytes" (fun () -> float_of_int (oplog_bytes t));
  Rp_obs.Registry.gauge reg
    ~help:"1 when periodic snapshots are suspended by the guard"
    "persist_paused" (fun () -> if Atomic.get t.paused then 1. else 0.);
  Rp_obs.Registry.fn_counter reg ~help:"snapshots published"
    "persist_snapshots_total" (fn t.snapshots);
  Rp_obs.Registry.fn_counter reg ~help:"snapshot attempts that failed"
    "persist_snapshot_errors_total" (fn t.snapshot_errors);
  Rp_obs.Registry.fn_counter reg
    ~help:"snapshot walks restarted by a concurrent shrink"
    "persist_walk_restarts_total" (fn t.walk_restarts);
  Rp_obs.Registry.fn_counter reg ~help:"compaction passes after snapshots"
    "persist_compactions_total" (fn t.compactions);
  Rp_obs.Registry.gauge reg ~help:"records in the last published snapshot"
    "persist_snapshot_records" (fun () -> float_of_int t.last_records);
  Rp_obs.Registry.register_histogram reg
    ~help:"snapshot wall time in nanoseconds" "persist_snapshot_ns"
    t.snapshot_hist;
  Rp_obs.Registry.gauge reg ~help:"records restored from the snapshot"
    "persist_recovered_snapshot_records" (fun () ->
      float_of_int t.recovered.snapshot_records);
  Rp_obs.Registry.gauge reg ~help:"op records replayed from the log"
    "persist_recovered_log_records" (fun () ->
      float_of_int t.recovered.log_records);
  Rp_obs.Registry.gauge reg
    ~help:"torn-tail bytes truncated from the newest segment"
    "persist_recovered_log_truncated_bytes" (fun () ->
      float_of_int t.recovered.log_truncated_bytes);
  Rp_obs.Registry.gauge reg ~help:"undecodable records skipped during replay"
    "persist_recovered_log_bad_records" (fun () ->
      float_of_int t.recovered.log_bad_records);
  Rp_obs.Registry.gauge reg
    ~help:"items evicted by the post-recovery budget sweep"
    "persist_recovery_evictions" (fun () ->
      float_of_int t.recovered.post_recovery_evictions)

let attach ?snapshot_interval ?(aof = true) ?(fsync = P.Oplog.Always)
    ?(oplog_max_mb = 0) ?(archive_keep = 2) ~dir store =
  P.Fsutil.mkdir_p dir;
  (* Recovery first: snapshot, then the log tail on top of it. *)
  let snap =
    P.Snapshot.load_newest ~dir ~f:(fun r -> Store.restore store r)
  in
  let from_gen = match snap with Some (g, _) -> g | None -> 0 in
  let rr = P.Oplog.replay ~dir ~from_gen ~f:(fun r -> Store.restore store r) in
  (* Eviction is never logged, so a recovered heap can exceed the byte
     budget (the snapshot predates the evictions that made it fit). Sweep
     before traffic: a restarted node must not serve from an over-budget
     heap. *)
  let swept = Store.evict_to_budget store in
  let recovered =
    {
      snapshot_gen = Option.map fst snap;
      snapshot_records = (match snap with Some (_, n) -> n | None -> 0);
      log_records = rr.P.Oplog.records;
      log_bad_records = rr.P.Oplog.bad_records;
      log_segments = rr.P.Oplog.segments;
      log_truncated_bytes = rr.P.Oplog.truncated_bytes;
      post_recovery_evictions = swept;
    }
  in
  (* Generations stay monotonic across restarts: past everything on disk,
     valid or not. *)
  let max_gen =
    List.fold_left
      (fun acc (g, _) -> max acc g)
      0
      (P.Snapshot.files ~dir @ P.Oplog.segments ~dir)
  in
  let log_start_gen = max_gen + 1 in
  let log =
    if aof then
      Some
        (P.Oplog.open_
           ~max_bytes:(oplog_max_mb * 1024 * 1024)
           ~dir ~gen:log_start_gen ~fsync ())
    else None
  in
  let t =
    {
      store;
      dir;
      log;
      interval = snapshot_interval;
      archive_keep;
      recovered;
      paused = Atomic.make false;
      mutex = Mutex.create ();
      cond = Condition.create ();
      stop_requested = false;
      stopped = false;
      request_seq = 0;
      complete_seq = 0;
      last_result = Ok 0;
      next_gen = log_start_gen + 1;
      next_deadline =
        (match snapshot_interval with
        | Some dt -> Unix.gettimeofday () +. dt
        | None -> infinity);
      snapshots = Atomic.make 0;
      snapshot_errors = Atomic.make 0;
      last_records = 0;
      walk_restarts = Atomic.make 0;
      compactions = Atomic.make 0;
      appends = Rp_obs.Counter.create ();
      append_errors = Rp_obs.Counter.create ();
      last_append_error = Atomic.make 0.0;
      snapshot_hist = Rp_obs.Histogram.create ();
      domain = None;
      tap = None;
    }
  in
  (match log with
  | Some l ->
      Store.set_persist_hook store
        (Some
           (fun r ->
             (* Graceful degradation under a failing disk: the mutation
                was already applied and acked in memory, so swallow the
                append failure (the record is lost — durability degrades)
                and latch it for the guard's disk-pressure source. *)
             match P.Oplog.append l r with
             | () ->
                 Rp_obs.Counter.incr t.appends;
                 if Atomic.get t.last_append_error <> 0.0 then
                   Atomic.set t.last_append_error 0.0;
                 (match t.tap with
                 | Some tap ->
                     (* Carry the serving request's trace id across the
                        wire so a follower's apply span joins the same
                        distributed trace. *)
                     tap ~gen:(P.Oplog.gen l)
                       ~trace:(Rp_trace.current_trace_id ())
                       r
                 | None -> ())
             | exception _ ->
                 Rp_obs.Counter.incr t.append_errors;
                 Atomic.set t.last_append_error (Unix.gettimeofday ())))
  | None -> ());
  register_instruments t;
  t.domain <- Some (Domain.spawn (fun () -> snapshot_loop t));
  t

let snapshot_now t =
  Mutex.lock t.mutex;
  t.request_seq <- t.request_seq + 1;
  let ticket = t.request_seq in
  while t.complete_seq < ticket && not t.stopped do
    Condition.wait t.cond t.mutex
  done;
  let result =
    if t.complete_seq < ticket then Error "persistence manager stopped"
    else t.last_result
  in
  Mutex.unlock t.mutex;
  result

let halt t ~graceful =
  Mutex.lock t.mutex;
  let already = t.stop_requested in
  t.stop_requested <- true;
  Mutex.unlock t.mutex;
  if not already then begin
    Store.set_persist_hook t.store None;
    (match t.domain with Some d -> Domain.join d | None -> ());
    t.domain <- None;
    match t.log with
    | Some l -> if graceful then P.Oplog.close l
    | None -> ()
  end

let stop t = halt t ~graceful:true
let crash_for_testing t = halt t ~graceful:false
