(** memcached binary protocol (the classic 24-byte-header wire format).

    Complements {!Protocol} (text): real memcached deployments speak both,
    auto-detected by the first byte of a connection (0x80 = binary request
    magic). Covers the operation set our store implements: Get/GetQ/GetK,
    Set/Add/Replace, Delete, Incr/Decr, Append/Prepend, Touch, GAT/GATQ,
    Flush, Noop, Version, Stat (keyed: [rp], [persist], [trace]), Quit —
    including the quiet variants' suppress-on-miss semantics.

    Integers are big-endian on the wire. CAS values are 64-bit on the wire
    but OCaml ints internally (we never generate values above 62 bits). *)

type opcode =
  | Get
  | Set
  | Add
  | Replace
  | Delete
  | Increment
  | Decrement
  | Quit
  | Flush
  | GetQ
  | Noop
  | Version
  | GetK
  | GetKQ
  | Append
  | Prepend
  | Stat
  | Touch
  | GAT  (** get-and-touch: extras carry the new exptime *)
  | GATQ  (** quiet get-and-touch: silent on a miss *)

val opcode_to_byte : opcode -> int
val opcode_of_byte : int -> opcode option
val opcode_is_quiet : opcode -> bool

type status =
  | Ok_status
  | Key_not_found
  | Key_exists
  | Value_too_large
  | Invalid_arguments
  | Item_not_stored
  | Non_numeric_value
  | Busy  (** 0x0085 — mutation shed by the overload guard *)
  | Read_only  (** 0x0086 — mutation refused by a following replica *)
  | Unknown_command

val status_to_int : status -> int
val status_of_int : int -> status

type request = {
  opcode : opcode;
  key : string;
  value : string;
  extras : string;  (** raw extras bytes, already laid out per opcode *)
  opaque : int;  (** echoed verbatim in the response *)
  cas : int;
}

type response = {
  r_opcode : opcode;
  status : status;
  r_key : string;
  r_value : string;
  r_extras : string;
  r_opaque : int;
  r_cas : int;
}

(** {1 Extras helpers} *)

val set_extras : flags:int -> exptime:int -> string
(** 8 bytes: flags, exptime (both u32 BE) — for Set/Add/Replace requests. *)

val get_response_extras : flags:int -> string
(** 4 bytes of flags — for Get-family responses. *)

val counter_extras : delta:int -> initial:int -> exptime:int -> string
(** 20 bytes: delta u64, initial u64, exptime u32 — for Incr/Decr. *)

val touch_extras : exptime:int -> string

val u64_bytes : int -> string
(** 8 big-endian bytes (counter response payloads). *)

val parse_u32 : string -> int -> int
val parse_u64 : string -> int -> int

(** {1 Wire codecs} *)

val encode_request : request -> string
val encode_response : response -> string

val encode_response_into : Buffer.t -> response -> unit
(** Render a response frame into a caller-owned buffer (identical bytes to
    {!encode_response}); used by the event-loop workers to coalesce a
    pipelined batch into a single write. *)

(** Incremental request parser (server side). *)
module Parser : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit

  val next : t -> (request, string) result option
  (** [None] = need more bytes. [Error] = malformed frame (bad magic or
      inconsistent lengths); the connection should be dropped, as real
      memcached does for binary framing errors. *)
end

(** Incremental response parser (client side). *)
module Response_parser : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit
  val next : t -> (response, string) result option
end

val magic_request_byte : char
(** ['\x80'] — used by the server to sniff binary connections. *)
