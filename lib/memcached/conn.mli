(** Per-connection state machine for the event-loop plane.

    Owns the read buffer, the incremental protocol parser (text/binary by
    first-byte sniffing), and a reusable output buffer. One poll wakeup
    drains every complete pipelined request, dispatches them as a batch,
    and coalesces the responses into a single write. *)

type t

val create :
  id:int ->
  buffer_size:int ->
  reads:Rp_obs.Counter.t ->
  writes:Rp_obs.Counter.t ->
  Unix.file_descr ->
  t
(** The fd must already be non-blocking. [buffer_size] sizes the read
    buffer ({!Server.config.read_buffer_size}); [reads]/[writes] count
    data-moving syscalls. *)

val fd : t -> Unix.file_descr
val id : t -> int

val closing : t -> bool
(** The connection asked to close (quit, binary framing error): flush any
    remaining output, then drop. *)

val last_active : t -> float
(** Wall-clock instant of the last byte received (idle-timeout sweeps). *)

val wants_write : t -> bool
(** Unflushed response bytes exist: poll for writability and stop reading
    until they drain. *)

val fill : t -> [ `Eof | `Ok ]
(** Read until the socket would block, feeding the parser. Raises like a
    socket read ([Unix.Unix_error], {!Rp_fault.Injected}); the worker
    treats that as a torn connection. Runs through the
    ["server.read.split"] failpoint. *)

val dispatch : t -> Store.t -> int
(** Execute every complete buffered request, rendering responses into the
    output buffer; returns the batch size. *)

val flush : t -> [ `Closed | `Done | `Want_write ]
(** Write coalesced responses. Runs through ["server.write.partial"];
    errors and injected tears report [`Closed]. *)
