(** Per-connection state machine for the event-loop plane.

    Owns the read buffer, the incremental protocol parser (text/binary by
    first-byte sniffing), and a reusable output buffer. One poll wakeup
    drains every complete pipelined request, dispatches them as a batch,
    and coalesces the responses into a single write. *)

type t

val create :
  id:int ->
  buffer_size:int ->
  reads:Rp_obs.Counter.t ->
  writes:Rp_obs.Counter.t ->
  Unix.file_descr ->
  t
(** The fd must already be non-blocking. [buffer_size] sizes the read
    buffer ({!Server.config.read_buffer_size}); [reads]/[writes] count
    data-moving syscalls. *)

val fd : t -> Unix.file_descr
val id : t -> int

val closing : t -> bool
(** The connection asked to close (quit, binary framing error): flush any
    remaining output, then drop. *)

val last_active : t -> float
(** Wall-clock instant of the last byte received (idle-timeout sweeps). *)

val wants_write : t -> bool
(** Unflushed response bytes exist: poll for writability and stop reading
    until they drain. *)

val pending_bytes : t -> int
(** Rendered-but-unwritten response bytes (parked remainder + output
    buffer) — what the slow-client write cap measures. *)

val has_backlog : t -> bool
(** The parser holds complete requests that {!dispatch}'s write cap
    deferred; re-dispatch after a flush makes room. *)

val no_progress_since : t -> float
(** Wall-clock instant of this connection's last sign of life in either
    direction (byte received or byte drained) — the slow-client kill
    deadline is measured from here. *)

val fill : t -> [ `Eof | `Ok ]
(** Read until the socket would block, feeding the parser. Raises like a
    socket read ([Unix.Unix_error], {!Rp_fault.Injected}); the worker
    treats that as a torn connection. Runs through the
    ["server.read.split"] failpoint. *)

val dispatch : ?max_out:int -> t -> Store.t -> int
(** Execute every complete buffered request, rendering responses into the
    output buffer; returns the batch size. [max_out] (default unlimited)
    stops rendering once {!pending_bytes} reaches it, leaving the rest in
    the parser ({!has_backlog}). *)

val flush : t -> [ `Closed | `Done | `Want_write ]
(** Write coalesced responses. Runs through ["server.write.partial"];
    errors and injected tears report [`Closed]. *)
