(* Text-protocol request dispatch, shared by the threaded server, the
   event-loop workers, and the in-process benchmark loopback. *)

let stored_reply : Store.stored_result -> Protocol.response = function
  | Store.Stored -> Protocol.Stored
  | Store.Not_stored -> Protocol.Not_stored
  | Store.Exists -> Protocol.Exists
  | Store.Not_found -> Protocol.Not_found
  | Store.Too_large -> Protocol.Server_error "object too large for cache"

(* Load shedding: mutations are fast-failed here — before the writer
   lock, before the op log — while GETs ride the wait-free read path no
   matter how deep the overload. Shed noreply mutations die silently
   (the protocol has no error channel for them). *)
let sheddable : Protocol.request -> bool = function
  | Protocol.Set _ | Protocol.Add _ | Protocol.Replace _ | Protocol.Append _
  | Protocol.Prepend _ | Protocol.Cas _ | Protocol.Delete _ | Protocol.Incr _
  | Protocol.Decr _ | Protocol.Touch _ | Protocol.Flush_all _ ->
      true
  | Protocol.Get _ | Protocol.Gets _ | Protocol.Stats _
  | Protocol.Trace_dump _ | Protocol.Heat_dump _ | Protocol.Cluster_promote
  | Protocol.Version | Protocol.Quit ->
      false

let request_noreply : Protocol.request -> bool = function
  | Protocol.Set { noreply; _ }
  | Protocol.Add { noreply; _ }
  | Protocol.Replace { noreply; _ }
  | Protocol.Append { noreply; _ }
  | Protocol.Prepend { noreply; _ }
  | Protocol.Cas ({ noreply; _ }, _)
  | Protocol.Delete { noreply; _ }
  | Protocol.Incr { noreply; _ }
  | Protocol.Decr { noreply; _ }
  | Protocol.Touch { noreply; _ }
  | Protocol.Flush_all { noreply } ->
      noreply
  | _ -> false

let shed store (request : Protocol.request) =
  match Store.guard store with
  | Some g when sheddable request && not (Rp_guard.admit_mutation g) ->
      Rp_guard.note_shed g;
      true
  | _ -> false

let handle store (request : Protocol.request) : Protocol.response option =
  if shed store request then
    if request_noreply request then None
    else Some (Protocol.Server_error "overloaded")
  else if Store.read_only store && sheddable request then
    (* A following replica refuses client mutations: its state is the
       leader's, applied through the replication stream only. *)
    if request_noreply request then None
    else Some (Protocol.Server_error "replica is read-only")
  else
  match request with
  | Protocol.Get keys -> Some (Protocol.Values (Store.get_many store keys))
  | Protocol.Gets keys ->
      Some (Protocol.Values (Store.get_many store ~with_cas:true keys))
  | Protocol.Set { key; flags; exptime; noreply; data } ->
      let r = Store.set store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Add { key; flags; exptime; noreply; data } ->
      let r = Store.add store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Replace { key; flags; exptime; noreply; data } ->
      let r = Store.replace store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Append { key; noreply; data; _ } ->
      let r = Store.append store ~key ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Prepend { key; noreply; data; _ } ->
      let r = Store.prepend store ~key ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Cas ({ key; flags; exptime; noreply; data }, unique) ->
      let r = Store.cas store ~key ~flags ~exptime ~data ~unique in
      if noreply then None else Some (stored_reply r)
  | Protocol.Delete { key; noreply } ->
      let r = if Store.delete store key then Protocol.Deleted else Protocol.Not_found in
      if noreply then None else Some r
  | Protocol.Incr { key; delta; noreply } -> (
      match Store.incr store key delta with
      | Store.Cvalue n -> if noreply then None else Some (Protocol.Number n)
      | Store.Cnotfound -> if noreply then None else Some Protocol.Not_found
      | Store.Cnon_numeric ->
          if noreply then None
          else
            Some
              (Protocol.Client_error
                 "cannot increment or decrement non-numeric value"))
  | Protocol.Decr { key; delta; noreply } -> (
      match Store.decr store key delta with
      | Store.Cvalue n -> if noreply then None else Some (Protocol.Number n)
      | Store.Cnotfound -> if noreply then None else Some Protocol.Not_found
      | Store.Cnon_numeric ->
          if noreply then None
          else
            Some
              (Protocol.Client_error
                 "cannot increment or decrement non-numeric value"))
  | Protocol.Touch { key; exptime; noreply } ->
      let r =
        if Store.touch store ~key ~exptime then Protocol.Touched
        else Protocol.Not_found
      in
      if noreply then None else Some r
  | Protocol.Stats None -> Some (Protocol.Stats_reply (Store.stats store))
  | Protocol.Stats (Some "rp") ->
      Some (Protocol.Stats_reply (Store.rp_stats store))
  | Protocol.Stats (Some "persist") ->
      Some (Protocol.Stats_reply (Store.persist_stats store))
  | Protocol.Stats (Some "trace") ->
      Some (Protocol.Stats_reply (Store.trace_stats store))
  | Protocol.Stats (Some "guard") ->
      Some (Protocol.Stats_reply (Store.guard_stats store))
  | Protocol.Stats (Some "tier") ->
      Some (Protocol.Stats_reply (Store.tier_stats store))
  | Protocol.Stats (Some "cluster") ->
      Some (Protocol.Stats_reply (Store.cluster_stats store))
  | Protocol.Stats (Some "heat") ->
      Some (Protocol.Stats_reply (Store.heat_stats store))
  | Protocol.Stats (Some "reset") ->
      Store.reset_stats store;
      Some (Protocol.Stats_reply [])
  | Protocol.Stats (Some arg) ->
      Some (Protocol.Client_error ("unknown stats argument: " ^ arg))
  | Protocol.Trace_dump max_events ->
      Some (Protocol.Trace_json (Rp_trace.export_json ?max_events ()))
  | Protocol.Heat_dump n -> Some (Protocol.Trace_json (Store.heat_json ?n store))
  | Protocol.Cluster_promote -> (
      match Store.promote store with
      | Ok _ -> Some Protocol.Ok_reply
      | Error msg -> Some (Protocol.Server_error msg))
  | Protocol.Flush_all { noreply } ->
      Store.flush_all store;
      if noreply then None else Some Protocol.Ok_reply
  | Protocol.Version -> Some (Protocol.Version_reply Version.string)
  | Protocol.Quit -> None
