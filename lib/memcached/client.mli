(** Blocking memcached client over a socket (demos, integration tests).

    Two modes share one API:

    - {!connect}: classic single-server client;
    - {!of_servers}: cluster mode — a ketama consistent-hash ring
      ({!Rp_cluster.Ring}) routes each keyed command to its owning
      member. A member that keeps failing is ejected from routing for a
      jittered backoff window, its keys sliding to the next live ring
      point (failover); the first lookup past the rejoin deadline is the
      probe that lets it back in. *)

type t

exception Disconnected of string
(** The server closed the connection mid-request (raised only once the
    retry budget, if any, is exhausted). *)

val connect : ?retries:int -> Server.address -> t
(** [connect ~retries addr] opens a connection. When [retries > 0]
    (default 0), a request that fails on a connection-level error —
    server closed the socket, reset, refused — reconnects with
    {!Rp_sync.Backoff}-paced delays and re-sends the request, up to
    [retries] attempts, before letting the error escape. Re-sending makes
    delivery at-least-once: a non-idempotent command (incr, append, cas)
    can execute twice if the connection died after the server applied it
    but before the reply arrived. *)

val of_servers :
  ?retries:int ->
  ?eject_after:int ->
  ?rejoin_after:float ->
  (string * int * int) list ->
  t
(** [of_servers [(host, port, weight); ...]] builds a multi-server
    client routing keys over a consistent-hash ring (about
    [100 * weight] continuum points per member). Connections open
    lazily. After [eject_after] (default 3) consecutive
    connection-level failures a member is ejected for [rejoin_after]
    (default 0.5s) scaled by repeat failures and jittered; during
    ejection its keys route to the next live member. [retries] gives
    each keyed request that many failover attempts — each retry
    re-routes. The default is [eject_after + 1]: enough budget for one
    op to strike out a freshly dead member and still land its final
    attempt on the takeover member. *)

val close : t -> unit

val servers : t -> (string * int * int) list
(** The configured [(host, port, weight)] list (singleton for
    {!connect}). *)

val live_members : t -> int
(** Members not currently ejected. *)

val get : t -> string -> Protocol.value option
val get_many : t -> string list -> Protocol.value list
(** In cluster mode the keys are grouped by owning member, one [get]
    per member; response order follows the groups, not the request. *)

val gets : t -> string -> Protocol.value option
(** Like {!get} but the value carries its CAS unique. *)

val set : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit -> bool
val add : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit -> bool

val try_set :
  t ->
  ?flags:int ->
  ?exptime:int ->
  key:string ->
  data:string ->
  unit ->
  [ `Stored | `Not_stored | `Overloaded of string ]
(** Like {!set}, but a [SERVER_ERROR] reply (the guard shedding the
    mutation under overload, or a following replica refusing writes)
    comes back as [`Overloaded msg] instead of an exception — for load
    generators that must keep offering work while the server sheds. *)

val cas : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unique:int -> unit -> Protocol.response
val delete : t -> string -> bool
val incr : t -> string -> int -> int option
val decr : t -> string -> int -> int option
val touch : t -> key:string -> exptime:int -> bool
val stats : ?arg:string -> t -> (string * string) list
(** [stats t] sends [stats]; [stats ~arg:"rp" t] sends [stats rp] and
    returns the relativistic-stack instrument lines only. Routed to the
    first live member in cluster mode. *)

val trace_dump : ?max_events:int -> t -> string
(** Send [trace dump [n]] and return the server's flight-recorder export
    (one line of Chrome trace-event JSON). *)

val heat_dump : ?n:int -> t -> string
(** Send [heat dump [n]] and return the server's workload-insight export
    (one line of JSON: top-[n] heavy hitters per sketch, stripe heatmap,
    size histograms). *)

val version : t -> string

val promote : t -> (unit, string) result
(** Send [cluster promote] — tells a following replica to stop
    replicating and start accepting writes ([Error] when the server is
    not a replica). *)

val flush_all : t -> unit
(** Cluster mode broadcasts the flush to every live member. *)

val request : t -> Protocol.request -> Protocol.response
(** Send any request and wait for its response (raises [Failure] on
    protocol errors or closed connections). Routed to the first live
    member in cluster mode. *)

val request_for : t -> string -> Protocol.request -> Protocol.response
(** Like {!request} but routed by [key] — for sending hand-built keyed
    requests (e.g. noreply batches) to the right cluster member. *)
