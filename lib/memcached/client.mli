(** Blocking memcached client over a socket (demos, integration tests). *)

type t

exception Disconnected of string
(** The server closed the connection mid-request (raised only once the
    retry budget, if any, is exhausted). *)

val connect : ?retries:int -> Server.address -> t
(** [connect ~retries addr] opens a connection. When [retries > 0]
    (default 0), a request that fails on a connection-level error —
    server closed the socket, reset, refused — reconnects with
    {!Rp_sync.Backoff}-paced delays and re-sends the request, up to
    [retries] attempts, before letting the error escape. Re-sending makes
    delivery at-least-once: a non-idempotent command (incr, append, cas)
    can execute twice if the connection died after the server applied it
    but before the reply arrived. *)

val close : t -> unit

val get : t -> string -> Protocol.value option
val get_many : t -> string list -> Protocol.value list
val gets : t -> string -> Protocol.value option
(** Like {!get} but the value carries its CAS unique. *)

val set : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit -> bool
val add : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit -> bool

val try_set :
  t ->
  ?flags:int ->
  ?exptime:int ->
  key:string ->
  data:string ->
  unit ->
  [ `Stored | `Not_stored | `Overloaded of string ]
(** Like {!set}, but a [SERVER_ERROR] reply (the guard shedding the
    mutation under overload) comes back as [`Overloaded msg] instead of
    an exception — for load generators that must keep offering work while
    the server sheds. *)

val cas : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unique:int -> unit -> Protocol.response
val delete : t -> string -> bool
val incr : t -> string -> int -> int option
val decr : t -> string -> int -> int option
val touch : t -> key:string -> exptime:int -> bool
val stats : ?arg:string -> t -> (string * string) list
(** [stats t] sends [stats]; [stats ~arg:"rp" t] sends [stats rp] and
    returns the relativistic-stack instrument lines only. *)

val trace_dump : ?max_events:int -> t -> string
(** Send [trace dump [n]] and return the server's flight-recorder export
    (one line of Chrome trace-event JSON). *)

val version : t -> string
val flush_all : t -> unit

val request : t -> Protocol.request -> Protocol.response
(** Send any request and wait for its response (raises [Failure] on
    protocol errors or closed connections). *)
