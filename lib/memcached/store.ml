type backend = Lock | Rp
type rcu_mode = Memb | Qsbr

type stored_result = Stored | Not_stored | Exists | Not_found | Too_large
type counter_result = Cnotfound | Cnon_numeric | Cvalue of int

(* Lock backend: item + its exact-LRU node, both only touched under the
   global lock. *)
type lock_entry = { item : Item.t; node : string Lru.node }

type lock_state = {
  table : (string, lock_entry) Rp_baseline.Lock_ht.t;
  lru : string Lru.t;
}

(* Rp backend: wait-free reads; updates serialize per key on a striped
   lock (stripe = key hash land mask, the same fnv1a hash the table
   stripes on, so one store stripe maps into one table stripe and
   independent SETs/DELETEs/CAS from different evloop workers proceed
   concurrently). The CLOCK queue holds (key, last_access seen when
   enqueued) pairs for second-chance eviction; it has its own leaf mutex
   [clock_mu] — always acquired *inside* a stripe (or alone), never the
   other way around — and sweeps are single-flighted through [sweeping]
   and run with no stripe held, locking each victim's stripe as they
   go. *)
type rp_state = {
  rp : (string, Item.t) Rp_ht.t;
  update_stripes : Mutex.t array;  (* power of two *)
  update_mask : int;
  clock_mu : Mutex.t;
  clockq : (string * float) Queue.t;
  sweeping : bool Atomic.t;
  (* Promotion single-flight: a flash crowd on one demoted key does one
     disk read. Same mask as the update stripes, but a separate array —
     a promoter holds its promote stripe ACROSS the disk read and only
     then takes the key's update stripe, so promote stripe > update
     stripe in the lock order and the two must not share mutexes. *)
  promote_stripes : Mutex.t array;
}

type state = Lock_state of lock_state | Rp_state of rp_state

(* --- cold-tier plumbing (see [Tier] for the manager) ---

   The store never touches segment files itself: the glue installs these
   hooks and the eviction sweep / GET path call through them. Locations
   are bare ints ([Item.Cold] fields) so this module stays independent of
   the tier's own types. *)

type tier_read_error = Tier_gone | Tier_torn

type tier_hooks = {
  th_demote : string -> string -> (int * int * int) option;
      (** [th_demote key data] appends to the cold tier, returning the
          (segment, offset, len) location, or [None] when the tier is
          full or failing (caller falls back to plain eviction). Called
          under the victim's update stripe. *)
  th_read : int * int * int -> (string * string, tier_read_error) result;
      (** Positioned read of [(key, data)]; called with NO store lock
          held (only the key's promote stripe). *)
  th_mark_dead : int * int * int -> unit;
      (** The location is no longer referenced (delete / overwrite /
          promote / flush). Called under the key's update stripe. *)
  th_admit : unit -> bool;
      (** Demotion gate — false under guard Emergency (shed demotions,
          never cold reads). *)
}

type t = {
  state : state;
  (* Persistence hook, installed by [Persist.attach]: called with the op
     record of every acknowledged mutation, inside the mutated key's
     serialization stripe, so the op log's per-key order is the store's
     per-key order (records are state-based and replay-idempotent, so
     cross-key interleaving is free — see [Rp_persist.Record]). *)
  mutable persist_hook : (Rp_persist.Record.t -> unit) option;
  (* Some when the Rp backend runs on the QSBR flavour (zero-cost read
     sections). Readers must then respect QSBR discipline: the event-loop
     workers go offline around their poll wait, and the update stripes are
     acquired with a quiescing spin. *)
  qsbr : Rcu_qsbr.t option;
  (* Overload guard, attached by [Guard.install]: dispatch consults it to
     shed mutations; [guard_stats] renders its live ladder state. *)
  mutable guard : Rp_guard.t option;
  (* A following replica refuses client mutations (dispatch checks this);
     the replication stream itself applies through [replicate], which
     bypasses the flag. *)
  mutable read_only : bool;
  (* Cluster glue, installed by [Cluster]: the live [stats cluster]
     section and the [cluster promote] admin action. *)
  mutable cluster_info : (unit -> (string * string) list) option;
  mutable promote_hook : (unit -> (string, string) result) option;
  (* Cold-tier hooks, installed by [Tier.attach]; [tier_info] renders the
     live [stats tier] section. *)
  mutable tier : tier_hooks option;
  mutable tier_info : (unit -> (string * string) list) option;
  max_bytes : int;
  slab : Slab.t;  (* chunk-level accounting; eviction compares chunk bytes *)
  clock : unit -> float;
  (* Workload-insight plane (Some iff created with [heat_topk > 0]).
     Every hot-path emission sits behind one branch on this option, so
     an unconfigured plane costs nothing but that branch. *)
  heat : Rp_heat.t option;
  (* striped counters, registered in [registry] under their stats names.
     GET-path counters ride the wait-free lookup, so they must never be a
     shared atomic RMW. *)
  registry : Rp_obs.Registry.t;
  get_hits : Rp_obs.Counter.t;
  get_misses : Rp_obs.Counter.t;
  cmd_get : Rp_obs.Counter.t;
  cmd_set : Rp_obs.Counter.t;
  deletes : Rp_obs.Counter.t;
  evicted : Rp_obs.Counter.t;
  expired : Rp_obs.Counter.t;
  clock_chances : Rp_obs.Counter.t;
  evict_sweep_us : Rp_obs.Histogram.t;  (* CLOCK sweep wall time, us *)
  (* Tier traffic counters. [tier_demotions] is deliberately separate
     from [evicted]: operators must be able to tell "moved to disk" from
     "lost" — an eviction wave that demotes costs latency, one that
     drops costs data. *)
  tier_demotions : Rp_obs.Counter.t;
  tier_promotions : Rp_obs.Counter.t;
  tier_read_errors : Rp_obs.Counter.t;
  (* A CRC-valid frame holding the WRONG key is not media corruption —
     it means marker/segment bookkeeping is off. Counted apart from torn
     frames so a tier accounting bug is distinguishable in stats. *)
  tier_read_mismatches : Rp_obs.Counter.t;
  tier_read_us : Rp_obs.Histogram.t;  (* cold read wall time, us *)
  tier_demote_us : Rp_obs.Histogram.t;  (* demote append wall time, us *)
}

(* Flight-recorder span names. The read-section and update spans are
   detail-tier (recorded only inside a head-sampled request); the CLOCK
   sweep is control-tier — rare and worth seeing unconditionally. *)
let k_read_section = Rp_trace.intern "store.read_section"
let k_update = Rp_trace.intern "store.update"
let k_evict_sweep = Rp_trace.intern "store.evict_sweep"
let k_tier_demote = Rp_trace.intern "tier.demote"
let k_tier_promote = Rp_trace.intern "tier.promote"

let hash_key = Rp_hashes.Hashfn.fnv1a_string

let create ?(backend = Rp) ?(rcu_mode = Memb) ?(max_bytes = 64 * 1024 * 1024)
    ?(initial_size = 1024) ?(auto_resize = true) ?(stripes = 8)
    ?(heat_topk = 0) ?(heat_sample = 16) ?(clock = Unix.gettimeofday) () =
  let qsbr =
    match (backend, rcu_mode) with Rp, Qsbr -> Some (Rcu_qsbr.create ()) | _ -> None
  in
  let nstripes =
    let rec pow2 n = if n >= stripes then n else pow2 (n * 2) in
    pow2 1
  in
  let state =
    match backend with
    | Lock ->
        Lock_state
          {
            table =
              Rp_baseline.Lock_ht.create ~hash:hash_key ~equal:String.equal
                ~size:initial_size ();
            lru = Lru.create ();
          }
    | Rp ->
        (* The table stripes on the same fnv1a hash with its own (also
           power-of-two) stripe array, so a store stripe maps onto a fixed
           set of table stripes and two ops serialized here never contend
           below. *)
        let rp =
          match qsbr with
          | Some q ->
              Rp_ht.create ~flavour:(Flavour.qsbr q) ~initial_size ~auto_resize
                ~stripes:nstripes ~hash:hash_key ~equal:String.equal ()
          | None ->
              Rp_ht.create ~initial_size ~auto_resize ~stripes:nstripes
                ~hash:hash_key ~equal:String.equal ()
        in
        Rp_state
          {
            rp;
            update_stripes = Array.init nstripes (fun _ -> Mutex.create ());
            update_mask = nstripes - 1;
            clock_mu = Mutex.create ();
            clockq = Queue.create ();
            sweeping = Atomic.make false;
            promote_stripes = Array.init nstripes (fun _ -> Mutex.create ());
          }
  in
  let registry = Rp_obs.Registry.create () in
  let counter name help = Rp_obs.Registry.counter registry ~help name in
  let t =
    {
      state;
      persist_hook = None;
      qsbr;
      guard = None;
      read_only = false;
      cluster_info = None;
      promote_hook = None;
      tier = None;
      tier_info = None;
      max_bytes;
      slab = Slab.create ();
      clock;
      heat = (if heat_topk > 0 then
           Some (Rp_heat.create ~k:heat_topk ~sample_every:heat_sample ())
         else None);
      registry;
      get_hits = counter "get_hits" "GETs that found a live item";
      get_misses = counter "get_misses" "GETs that missed or hit an expired item";
      cmd_get = counter "cmd_get" "GET commands (one per key)";
      cmd_set = counter "cmd_set" "storage commands";
      deletes = counter "deletes" "DELETE commands";
      evicted = counter "evictions" "items evicted to fit the byte budget";
      expired = counter "expired" "items dropped on expiry";
      clock_chances =
        counter "clock_second_chances"
          "CLOCK eviction second chances granted to recently-touched items";
      evict_sweep_us =
        Rp_obs.Registry.histogram registry
          ~help:
            "wall time of CLOCK eviction sweeps, microseconds (second \
             chances included)"
          "eviction_sweep_us";
      tier_demotions =
        counter "tier_demotions_total"
          "evictions demoted to the cold tier instead of dropped";
      tier_promotions =
        counter "tier_promotions_total"
          "cold items promoted back to RAM on access";
      tier_read_errors =
        counter "tier_read_errors_total"
          "cold reads that failed for good (torn record or vanished segment)";
      tier_read_mismatches =
        counter "tier_read_mismatches_total"
          "cold reads that returned a CRC-valid frame for a different key \
           (tier location bookkeeping bug, not media corruption)";
      tier_read_us =
        Rp_obs.Registry.histogram registry
          ~help:"cold-tier positioned read wall time, microseconds"
          "tier_read_us";
      tier_demote_us =
        Rp_obs.Registry.histogram registry
          ~help:"cold-tier demotion (segment append) wall time, microseconds"
          "tier_demote_us";
    }
  in
  Rp_trace.register_instruments registry;
  (* Gauges read live store state; histograms and table/RCU counters come
     from the layers below via their observe hooks. *)
  let gauge name help f = Rp_obs.Registry.gauge registry ~help name f in
  gauge "curr_items" "live items"
    (fun () ->
      float_of_int
        (match t.state with
        | Lock_state ls -> Rp_baseline.Lock_ht.length ls.table
        | Rp_state rs -> Rp_ht.length rs.rp));
  gauge "bytes" "chunk bytes charged in the slab accounting"
    (fun () -> float_of_int (Slab.allocated_bytes t.slab));
  gauge "bytes_requested" "payload bytes before slab rounding"
    (fun () -> float_of_int (Slab.requested_bytes t.slab));
  gauge "slab_fragmentation" "1 - requested/allocated"
    (fun () -> Slab.fragmentation t.slab);
  gauge "slab_classes_in_use" "slab classes with at least one chunk"
    (fun () -> float_of_int (List.length (Slab.stats t.slab)));
  gauge "hash_buckets" "current bucket count of the backing table"
    (fun () ->
      float_of_int
        (match t.state with
        | Lock_state ls -> Rp_baseline.Lock_ht.size ls.table
        | Rp_state rs -> Rp_ht.size rs.rp));
  (match t.state with
  | Rp_state rs -> (
      Rp_ht.observe rs.rp registry;
      match qsbr with
      | None -> Rcu.observe (Rp_ht.rcu rs.rp) registry
      | Some q ->
          (* Flavoured tables have no memb instance; expose the QSBR
             grace-period counter and participant count instead. *)
          Rp_obs.Registry.fn_counter registry
            ~help:"QSBR grace periods completed" "rcu_grace_periods_total"
            (fun () -> float_of_int (Rcu_qsbr.grace_periods q));
          Rp_obs.Registry.gauge registry
            ~help:"QSBR participant threads registered" "rcu_qsbr_threads"
            (fun () -> float_of_int (Rcu_qsbr.registered_threads q)))
  | Lock_state _ -> ());
  (match t.heat with
  | None -> ()
  | Some h ->
      let stripe_heat =
        match t.state with
        | Rp_state rs -> fun () -> Rp_ht.stripe_heat rs.rp
        | Lock_state _ -> fun () -> [||]
      in
      Rp_heat.register h registry ~stripe_heat);
  t

let backend t = match t.state with Lock_state _ -> Lock | Rp_state _ -> Rp
let rcu_mode t = match t.qsbr with Some _ -> Qsbr | None -> Memb

let write_stripes t =
  match t.state with
  | Lock_state _ -> 1
  | Rp_state rs -> Array.length rs.update_stripes
let registry t = t.registry
let max_bytes t = t.max_bytes
let set_guard t g = t.guard <- g
let guard t = t.guard
let set_read_only t b = t.read_only <- b
let read_only t = t.read_only
let set_cluster_info t f = t.cluster_info <- f
let set_promote_hook t f = t.promote_hook <- f
let set_tier t h = t.tier <- h
let set_tier_info t f = t.tier_info <- f

let promote t =
  match t.promote_hook with
  | None -> Error "not a replica"
  | Some f -> f ()

(* Take the calling domain's QSBR reader offline (no-op for memb / Lock):
   event-loop workers call this before blocking in poll so grace periods
   never wait on a sleeping worker; the next read section re-onlines. *)
let reader_offline t =
  match t.state with
  | Rp_state rs -> (Rp_ht.flavour rs.rp).Flavour.thread_offline ()
  | Lock_state _ -> ()

(* memcached's REALTIME_MAXDELTA: protocol exptimes up to 30 days are
   relative seconds; anything larger is an absolute Unix timestamp. *)
let realtime_maxdelta = 30 * 24 * 60 * 60

(* Protocol exptime -> absolute Unix seconds, resolved once here at the
   original operation. The persistence log stores this absolute value, so
   replay after a restart re-expires items at the same wall-clock instant
   no matter when recovery runs — a relative offset re-applied at replay
   time would silently extend every TTL by the downtime. *)
let absolute_exptime t exptime =
  if exptime = 0 then 0.0 (* never expires *)
  else if exptime < 0 then epsilon_float (* expired since the dawn of time *)
  else if exptime <= realtime_maxdelta then
    t.clock () +. float_of_int exptime (* relative seconds from now *)
  else float_of_int exptime (* already an absolute Unix time *)

let value_of_item ?(with_cas = false) key (item : Item.t) : Protocol.value =
  {
    vkey = key;
    vflags = item.flags;
    vdata = item.data;
    vcas = (if with_cas then Some item.cas else None);
  }

(* --- persistence hook --- *)

let set_persist_hook t hook = t.persist_hook <- hook
let now t = t.clock ()

(* Callers invoke these while holding the backend's serialization lock
   for the mutated key (the Lock backend's table lock / the Rp backend's
   key stripe), which is what keeps the log a faithful per-key history. *)
let record t r = match t.persist_hook with None -> () | Some h -> h r

let record_set t ~op key (item : Item.t) =
  match t.persist_hook with
  | None -> ()
  | Some h ->
      (* State-based record: the resulting item, not the command's
         arguments — replay is idempotent and convergent (see
         [Rp_persist.Record]). *)
      h
        (Rp_persist.Record.Set
           {
             op;
             key;
             flags = item.flags;
             exptime = item.exptime;
             cas = item.cas;
             data = item.data;
           })

(* --- heat plane emission (each call is one branch when the plane is
   off; the plane itself is plain stripe-discipline stores) --- *)

let[@inline] heat_hit t key data =
  match t.heat with
  | None -> ()
  | Some h -> Rp_heat.note_hit h key ~vbytes:(String.length data)

let[@inline] heat_miss t key =
  match t.heat with None -> () | Some h -> Rp_heat.note_miss h key

let[@inline] heat_set t key ~vbytes =
  match t.heat with None -> () | Some h -> Rp_heat.note_set h ~vbytes key

(* Mutations with no payload of their own (touch, incr/decr). *)
let[@inline] heat_mutation t key =
  match t.heat with None -> () | Some h -> Rp_heat.note_set h key

let[@inline] heat_delete t key =
  match t.heat with None -> () | Some h -> Rp_heat.note_delete h key

let[@inline] heat_tier_demote t ~vbytes =
  match t.heat with None -> () | Some h -> Rp_heat.note_tier_demote h ~vbytes

let[@inline] heat_tier_promote t ~vbytes =
  match t.heat with None -> () | Some h -> Rp_heat.note_tier_promote h ~vbytes

(* Exemplar stamp beside a [Histogram.observe] of the same value. *)
let[@inline] heat_slo t name value =
  match t.heat with None -> () | Some h -> Rp_heat.note_slo h name value

(* --- Lock backend primitives (global lock held by callers below) --- *)

let lock_find_live t ls key ~now =
  match Rp_baseline.Lock_ht.unsafe_find ls.table key with
  | None -> None
  | Some entry ->
      if Item.is_expired entry.item ~now then begin
        ignore (Rp_baseline.Lock_ht.unsafe_remove ls.table key);
        Lru.remove ls.lru entry.node;
        Slab.refund t.slab (Item.size_bytes ~key entry.item);
        Rp_obs.Counter.incr t.expired;
        None
      end
      else Some entry

let lock_delete t ls key =
  match Rp_baseline.Lock_ht.unsafe_find ls.table key with
  | None -> false
  | Some entry ->
      ignore (Rp_baseline.Lock_ht.unsafe_remove ls.table key);
      Lru.remove ls.lru entry.node;
      Slab.refund t.slab (Item.size_bytes ~key entry.item);
      true

let lock_evict_until_fits t ls =
  let exhausted = ref false in
  while (not !exhausted) && Slab.allocated_bytes t.slab > t.max_bytes do
    match Lru.pop_back ls.lru with
    | None -> exhausted := true (* nothing left to evict *)
    | Some victim -> (
        match Rp_baseline.Lock_ht.unsafe_find ls.table victim with
        | None -> ()
        | Some entry ->
            ignore (Rp_baseline.Lock_ht.unsafe_remove ls.table victim);
            Slab.refund t.slab (Item.size_bytes ~key:victim entry.item);
            Rp_obs.Counter.incr t.evicted)
  done

(* [evict:false] defers budget enforcement to a later sweep — recovery
   replay uses it so mid-replay eviction can't churn items a later log
   record would have refreshed or deleted anyway. *)
let lock_store ?(evict = true) t ls key (item : Item.t) =
  ignore (lock_delete t ls key);
  let node = Lru.push_front ls.lru key in
  Rp_baseline.Lock_ht.unsafe_insert ls.table key { item; node };
  ignore (Slab.charge t.slab (Item.size_bytes ~key item));
  if evict then lock_evict_until_fits t ls

(* --- Rp backend update locking --- *)

(* Acquire one update stripe. Under QSBR a plain blocking lock could
   deadlock: the holder may be inside wait-for-readers (a table resize
   pass or a deferred-reclamation flush) while we sit here online and
   non-quiescent, so it would wait on us forever. Spin with try_lock
   instead, announcing a quiescent state each round (we hold no
   RCU-protected references while asking for a writer stripe). *)
let lock_update t (m : Mutex.t) =
  match t.qsbr with
  | None -> Mutex.lock m
  | Some q ->
      if not (Mutex.try_lock m) then begin
        let th = Rcu_qsbr.thread_for_current_domain q in
        let can_quiesce =
          Rcu_qsbr.is_online th && not (Rcu_qsbr.in_critical_section th)
        in
        let rec spin () =
          if not (Mutex.try_lock m) then begin
            if can_quiesce then Rcu_qsbr.quiescent_state th;
            Domain.cpu_relax ();
            spin ()
          end
        in
        spin ()
      end

(* Serialize an update on the stripe its key hashes to. Lock ordering:
   store stripe > table stripe (taken inside Rp_ht calls) > clock_mu;
   never acquire upward. *)
let with_stripe t (rs : rp_state) ~hash f =
  let m = rs.update_stripes.(hash land rs.update_mask) in
  let span = Rp_trace.span_begin_sampled k_update in
  lock_update t m;
  match f () with
  | v ->
      Mutex.unlock m;
      Rp_trace.span_end_sampled k_update span;
      v
  | exception e ->
      Mutex.unlock m;
      Rp_trace.span_end_sampled k_update span;
      raise e

(* Cross-stripe operations (flush_all and its replicated/recovered form)
   stop every writer by taking all stripes in ascending index order. *)
let with_all_stripes t (rs : rp_state) f =
  let n = Array.length rs.update_stripes in
  for i = 0 to n - 1 do
    lock_update t rs.update_stripes.(i)
  done;
  match f () with
  | v ->
      for i = n - 1 downto 0 do
        Mutex.unlock rs.update_stripes.(i)
      done;
      v
  | exception e ->
      for i = n - 1 downto 0 do
        Mutex.unlock rs.update_stripes.(i)
      done;
      raise e

(* The CLOCK queue's leaf mutex: holders only touch the queue (no grace
   periods, no stripes), so a blocking lock is safe even under QSBR. *)
let clock_push (rs : rp_state) entry =
  Mutex.lock rs.clock_mu;
  Queue.add entry rs.clockq;
  Mutex.unlock rs.clock_mu

let clock_pop (rs : rp_state) =
  Mutex.lock rs.clock_mu;
  let v = Queue.take_opt rs.clockq in
  Mutex.unlock rs.clock_mu;
  v

let clock_len (rs : rp_state) =
  Mutex.lock rs.clock_mu;
  let n = Queue.length rs.clockq in
  Mutex.unlock rs.clock_mu;
  n

(* --- Rp backend primitives (the key's update stripe held by callers) --- *)

(* Whenever a cold marker leaves the table (delete, overwrite, promote,
   flush), its segment frame becomes garbage: tell the tier so per-segment
   live accounting — and through it, compaction — stays exact. *)
let tier_mark_dead t (item : Item.t) =
  match (item.location, t.tier) with
  | Item.Cold { segment; offset; len }, Some h -> h.th_mark_dead (segment, offset, len)
  | _, _ -> ()

let rp_delete t rs key =
  match Rp_ht.find rs.rp key with
  | None -> false
  | Some item ->
      ignore (Rp_ht.remove rs.rp key);
      Slab.refund t.slab (Item.size_bytes ~key item);
      tier_mark_dead t item;
      true

(* CLOCK-queue invariant: a key is enqueued iff its item is hot. Demotion
   stores a marker over a hot item whose queue entry the sweep just popped
   (no push — markers are evicted by tier budget, not the CLOCK); any
   store over a cold marker brings the key back to RAM and re-enqueues. *)
let rp_store t rs key (item : Item.t) =
  (match Rp_ht.find rs.rp key with
  | Some old ->
      Slab.refund t.slab (Item.size_bytes ~key old);
      if Item.is_cold old then begin
        tier_mark_dead t old;
        if not (Item.is_cold item) then
          clock_push rs (key, Atomic.get item.last_access)
      end
  | None ->
      if not (Item.is_cold item) then
        clock_push rs (key, Atomic.get item.last_access));
  (* replace publishes atomically: readers see the old or new item, never a
     torn one; the unlinked old item is reclaimed after a grace period. *)
  Rp_ht.replace rs.rp key item;
  ignore (Slab.charge t.slab (Item.size_bytes ~key item))

(* Demote one eviction victim to the cold tier: append (key, value) to
   the current segment and swap the item for a compact cold marker that
   keeps flags/expiry/CAS in RAM. Runs under the victim's update stripe
   (the caller's). Returns false — fall back to plain eviction — when no
   tier is attached, the guard is shedding demotions, the item is
   expired (nothing worth keeping), or the append failed/overflowed. *)
let rp_demote t rs key (item : Item.t) =
  match t.tier with
  | None -> false
  | Some hooks ->
      if (not (hooks.th_admit ())) || Item.is_expired item ~now:(t.clock ()) then
        false
      else begin
        let started = Rp_trace.now_ns () in
        let span = Rp_trace.span_begin_sampled k_tier_demote in
        let demoted =
          match hooks.th_demote key item.data with
          | Some (segment, offset, len) ->
              let marker =
                Item.make ~cas:item.cas
                  ~location:(Item.Cold { segment; offset; len })
                  ~flags:item.flags ~exptime:item.exptime ~data:""
                  ~now:(Atomic.get item.last_access) ()
              in
              rp_store t rs key marker;
              Rp_obs.Counter.incr t.tier_demotions;
              heat_tier_demote t ~vbytes:(String.length item.data);
              true
          | None -> false
        in
        Rp_trace.span_end_sampled k_tier_demote span;
        let us = (Rp_trace.now_ns () - started) / 1000 in
        Rp_obs.Histogram.observe t.tier_demote_us us;
        heat_slo t "tier_demote_us" us;
        demoted
      end

(* Resolve the live value of [item] while HOLDING the key's update stripe
   (the caller's): the read-modify-write commands — append/prepend,
   incr/decr, touch — need a demoted key's real value, not the marker's
   "". Reading under the stripe is safe: the tier's own mutex is a leaf
   below every store lock (demotion already appends under this very
   stripe), and the frame cannot move mid-read because compaction's
   relocate step needs this same stripe — which also makes [Tier_gone]
   unreachable here, so any failure is final: the value is gone, and the
   caller drops the marker rather than operate on "". Hot items return
   their data directly. *)
let resolve_cold_locked t key (item : Item.t) =
  match item.Item.location with
  | Item.Hot -> Some item.Item.data
  | Item.Cold { segment; offset; len } -> (
      match t.tier with
      | None -> None (* marker with no tier attached (shutdown window) *)
      | Some hooks -> (
          let started = Rp_trace.now_ns () in
          let r = hooks.th_read (segment, offset, len) in
          let us = (Rp_trace.now_ns () - started) / 1000 in
          Rp_obs.Histogram.observe t.tier_read_us us;
          heat_slo t "tier_read_us" us;
          match r with
          | Ok (rkey, data) when String.equal rkey key -> Some data
          | Ok _ ->
              Rp_obs.Counter.incr t.tier_read_mismatches;
              Rp_obs.Counter.incr t.tier_read_errors;
              None
          | Error _ ->
              Rp_obs.Counter.incr t.tier_read_errors;
              None))

(* CLOCK second-chance eviction: pop (key, last_access at enqueue); a key
   touched since its enqueue gets requeued with the newer stamp — but only
   while the sweep's second-chance budget lasts. The budget is the queue
   length when the sweep starts, so every loop turn either frees memory,
   drops a stale entry, or spends a chance: a sweep over a table of
   all-hot keys (readers re-touching every item faster than we pop)
   terminates after at most 2x the queue length instead of spinning
   unboundedly. Once the budget is gone the sweep degrades to FIFO, which
   still frees memory.

   The sweeper holds NO stripe across the sweep — it locks each victim's
   own stripe just long enough to re-check and unlink it, so a sweep
   triggered by one writer never stalls writers on unrelated stripes.
   Caller must hold the [sweeping] flag (single-flight). *)
let rp_sweep_locked t rs =
  if Slab.allocated_bytes t.slab > t.max_bytes then begin
    (* Time the whole sweep, second-chance requeues included: its tail is
       the CLOCK degradation the all-hot torture worries about. *)
    let sweep_start = Rp_trace.now_ns () in
    let sweep_span = Rp_trace.span_begin k_evict_sweep in
    let chances = ref (clock_len rs) in
    let exhausted = ref false in
    while (not !exhausted) && Slab.allocated_bytes t.slab > t.max_bytes do
      match clock_pop rs with
      | None -> exhausted := true
      | Some (key, seen_access) ->
          with_stripe t rs ~hash:(hash_key key) (fun () ->
              match Rp_ht.find rs.rp key with
              | None -> () (* already deleted *)
              | Some item when Item.is_cold item ->
                  (* Stale queue entry: the key was demoted and re-stored
                     since (markers live outside the CLOCK). Just drop
                     the entry — the marker is the tier's to manage. *)
                  ()
              | Some item ->
                  let last = Atomic.get item.last_access in
                  if last > seen_access && !chances > 0 then begin
                    decr chances;
                    Rp_obs.Counter.incr t.clock_chances;
                    clock_push rs (key, last)
                  end
                  else if not (rp_demote t rs key item) then begin
                    ignore (rp_delete t rs key);
                    Rp_obs.Counter.incr t.evicted
                  end)
    done;
    Rp_trace.span_end k_evict_sweep sweep_span;
    let us = (Rp_trace.now_ns () - sweep_start) / 1000 in
    Rp_obs.Histogram.observe t.evict_sweep_us us;
    heat_slo t "eviction_sweep_us" us
  end

(* Post-store budget enforcement. Mutating commands call this AFTER
   releasing their stripe (a sweep locks victim stripes itself); the CAS
   single-flights concurrent triggers so racing writers don't convoy on
   eviction — the one sweeper runs until the heap fits. *)
let rp_sweep t rs =
  if
    Slab.allocated_bytes t.slab > t.max_bytes
    && Atomic.compare_and_set rs.sweeping false true
  then
    Fun.protect
      ~finally:(fun () -> Atomic.set rs.sweeping false)
      (fun () -> rp_sweep_locked t rs)

(* Blocking variant for [evict_to_budget]: callers there (post-recovery
   attach, the guard's Emergency actuator) need the budget actually met on
   return, so losing the single-flight race means waiting the sweeper out
   and re-checking. *)
let rp_evict_to_budget t rs =
  let rec go () =
    if Slab.allocated_bytes t.slab > t.max_bytes then
      if Atomic.compare_and_set rs.sweeping false true then begin
        let before = Slab.allocated_bytes t.slab in
        Fun.protect
          ~finally:(fun () -> Atomic.set rs.sweeping false)
          (fun () -> rp_sweep_locked t rs);
        (* A sweep that freed nothing had an empty CLOCK queue: with a
           tier attached the residue can be all cold markers, which are
           not evictable — stop rather than spin on an unmeetable
           budget. *)
        if Slab.allocated_bytes t.slab < before then go ()
      end
      else begin
        Domain.cpu_relax ();
        go ()
      end
  in
  go ()

(* --- GET --- *)

let rp_expire_if_dead t rs ~now key =
  with_stripe t rs ~hash:(hash_key key) (fun () ->
      match Rp_ht.find rs.rp key with
      | Some again when Item.is_expired again ~now ->
          ignore (rp_delete t rs key);
          Rp_obs.Counter.incr t.expired
      | Some _ | None -> ())

(* [expired_acc]: when the caller holds a batch-wide read section open it
   must not take an update stripe inline (the holder could be waiting for
   readers — us included). Expired keys are collected and reaped by the
   caller after the section closes. A cold hit is likewise only REPORTED
   here (`Cold): resolving it means a disk read and a stripe acquisition,
   which the caller does outside any read section. *)
let get_rp_raw t rs ?(with_cas = false) ?expired_acc key =
  let now = t.clock () in
  (* Fast path: wait-free lookup; the value is copied out inside the
     table's read-side critical section. *)
  match Rp_ht.find rs.rp key with
  | None ->
      Rp_obs.Counter.incr t.get_misses;
      heat_miss t key;
      `Miss
  | Some item ->
      if Item.is_expired item ~now then begin
        (* Slow path: expiry needs the update lock. *)
        (match expired_acc with
        | Some acc -> acc := key :: !acc
        | None -> rp_expire_if_dead t rs ~now key);
        Rp_obs.Counter.incr t.get_misses;
        heat_miss t key;
        `Miss
      end
      else if Item.is_cold item then `Cold (* hit/miss counted at resolution *)
      else begin
        Item.touch_access item ~now;
        Rp_obs.Counter.incr t.get_hits;
        heat_hit t key item.data;
        `Hit (value_of_item ~with_cas key item)
      end

(* Resolve a cold hit: one positioned segment read, then reinsert under
   the key's update stripe (promote-on-access). The disk read happens
   with no store lock held — only the key's promote stripe, whose sole
   job is single-flighting: a flash crowd on one demoted key queues here
   and every loser finds the item already hot on its own pass.

   Races are re-resolved by re-reading the table (bounded retries): a
   compaction can relocate the marker mid-read (read returns [Tier_gone]
   — the fresh marker points at the copy), a SET can replace it (we find
   it hot and return that), a DELETE can win (miss). A torn record is
   final: the value is gone, so the marker is dropped — later GETs miss
   fast instead of re-reading a bad frame. *)
let rec promote_attempt t rs ~with_cas ~hooks key tries =
  let now = t.clock () in
  match Rp_ht.find rs.rp key with
  | None ->
      Rp_obs.Counter.incr t.get_misses;
      heat_miss t key;
      None
  | Some item when Item.is_expired item ~now ->
      rp_expire_if_dead t rs ~now key;
      Rp_obs.Counter.incr t.get_misses;
      heat_miss t key;
      None
  | Some item -> (
      match item.Item.location with
      | Item.Hot ->
          Item.touch_access item ~now;
          Rp_obs.Counter.incr t.get_hits;
          heat_hit t key item.data;
          Some (value_of_item ~with_cas key item)
      | Item.Cold { segment; offset; len } -> (
          let started = Rp_trace.now_ns () in
          let r = hooks.th_read (segment, offset, len) in
          let read_us = (Rp_trace.now_ns () - started) / 1000 in
          Rp_obs.Histogram.observe t.tier_read_us read_us;
          heat_slo t "tier_read_us" read_us;
          match r with
          | Ok (rkey, data) when String.equal rkey key -> (
              let promoted =
                with_stripe t rs ~hash:(hash_key key) (fun () ->
                    match Rp_ht.find rs.rp key with
                    | Some cur when cur == item ->
                        (* Marker unchanged since the read: publish the
                           hot item ([rp_store] refunds the marker, marks
                           its frame dead, re-enqueues in the CLOCK). *)
                        let hot =
                          Item.make ~cas:item.Item.cas ~flags:item.Item.flags
                            ~exptime:item.Item.exptime ~data ~now ()
                        in
                        rp_store t rs key hot;
                        Some (value_of_item ~with_cas key hot)
                    | _ -> None)
              in
              match promoted with
              | Some v ->
                  Rp_obs.Counter.incr t.tier_promotions;
                  Rp_obs.Counter.incr t.get_hits;
                  heat_tier_promote t ~vbytes:(String.length data);
                  heat_hit t key data;
                  Some v
              | None ->
                  if tries > 0 then
                    promote_attempt t rs ~with_cas ~hooks key (tries - 1)
                  else begin
                    Rp_obs.Counter.incr t.get_misses;
                    heat_miss t key;
                    None
                  end)
          | Error Tier_gone when tries > 0 ->
              promote_attempt t rs ~with_cas ~hooks key (tries - 1)
          | Ok _ | Error Tier_torn | Error Tier_gone ->
              (match r with
              | Ok _ -> Rp_obs.Counter.incr t.tier_read_mismatches
              | Error _ -> ());
              Rp_obs.Counter.incr t.tier_read_errors;
              with_stripe t rs ~hash:(hash_key key) (fun () ->
                  match Rp_ht.find rs.rp key with
                  | Some cur when cur == item -> ignore (rp_delete t rs key)
                  | _ -> ());
              Rp_obs.Counter.incr t.get_misses;
              heat_miss t key;
              None))

let promote_and_get t rs ~with_cas key =
  match t.tier with
  | None ->
      (* A marker with no tier attached (shutdown window): unreadable. *)
      Rp_obs.Counter.incr t.get_misses;
      heat_miss t key;
      None
  | Some hooks ->
      let span = Rp_trace.span_begin_sampled k_tier_promote in
      let m = rs.promote_stripes.(hash_key key land rs.update_mask) in
      lock_update t m;
      let v =
        match promote_attempt t rs ~with_cas ~hooks key 3 with
        | v ->
            Mutex.unlock m;
            v
        | exception e ->
            Mutex.unlock m;
            Rp_trace.span_end_sampled k_tier_promote span;
            raise e
      in
      Rp_trace.span_end_sampled k_tier_promote span;
      (* Promotion re-charged the full value: settle the budget (the sweep
         may well demote something colder in its place). *)
      rp_sweep t rs;
      v

let get_lock t ls ?(with_cas = false) key =
  let now = t.clock () in
  Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
      match lock_find_live t ls key ~now with
      | None ->
          Rp_obs.Counter.incr t.get_misses;
          heat_miss t key;
          None
      | Some entry ->
          Lru.touch ls.lru entry.node;
          Item.touch_access entry.item ~now;
          Rp_obs.Counter.incr t.get_hits;
          heat_hit t key entry.item.data;
          Some (value_of_item ~with_cas key entry.item))

let get t key =
  Rp_obs.Counter.incr t.cmd_get;
  match t.state with
  | Lock_state ls -> get_lock t ls key
  | Rp_state rs -> (
      match get_rp_raw t rs key with
      | `Hit v -> Some v
      | `Miss -> None
      | `Cold -> promote_and_get t rs ~with_cas:false key)

(* The multiget fast path the event loop's batch dispatch hits: one
   [cmd_get] add for the whole batch and — on the Rp backend — one
   read-side critical section spanning every lookup (inner sections nest
   for free), instead of a counter bump and section per key. *)
let get_many t ?(with_cas = false) keys =
  Rp_obs.Counter.add t.cmd_get (List.length keys);
  match t.state with
  | Lock_state ls -> List.filter_map (fun key -> get_lock t ls ~with_cas key) keys
  | Rp_state rs ->
      let expired_acc = ref [] in
      let section = Rp_trace.span_begin_sampled ~arg:(List.length keys) k_read_section in
      let pass =
        Flavour.with_read (Rp_ht.flavour rs.rp) (fun () ->
            List.map
              (fun key -> (key, get_rp_raw t rs ~with_cas ~expired_acc key))
              keys)
      in
      Rp_trace.span_end_sampled k_read_section section;
      (match !expired_acc with
      | [] -> ()
      | dead ->
          (* Reap outside the batch read section, each key under its own
             stripe. *)
          let now = t.clock () in
          List.iter (fun key -> rp_expire_if_dead t rs ~now key) dead);
      (* Cold hits resolve here, after the section closed — promotion
         takes stripes and reads disk, neither of which belongs inside a
         batch-wide read section. Response order is preserved. *)
      List.filter_map
        (fun (key, outcome) ->
          match outcome with
          | `Hit v -> Some v
          | `Miss -> None
          | `Cold -> promote_and_get t rs ~with_cas key)
        pass

(* --- storage commands --- *)

(* [guard] inspects the current live item (if any) and decides whether the
   store proceeds; shared by set/add/replace/cas. *)
let fits_slab t ~key ~data =
  Slab.class_of_size t.slab
    (String.length key + String.length data + Item.overhead_bytes)
  <> None

let storage_command t ~op ~key ~flags ~exptime ~data ~guard =
  Rp_obs.Counter.incr t.cmd_set;
  heat_set t key ~vbytes:(String.length data);
  let now = t.clock () in
  let exptime = absolute_exptime t exptime in
  if not (fits_slab t ~key ~data) then Too_large
  else
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          let live = lock_find_live t ls key ~now in
          match guard (Option.map (fun e -> e.item) live) with
          | Error result -> result
          | Ok () ->
              let item = Item.make ~flags ~exptime ~data ~now () in
              lock_store t ls key item;
              record_set t ~op key item;
              Stored)
  | Rp_state rs ->
      let result =
        with_stripe t rs ~hash:(hash_key key) (fun () ->
            let live =
              match Rp_ht.find rs.rp key with
              | Some item when not (Item.is_expired item ~now) -> Some item
              | Some _ | None -> None
            in
            match guard live with
            | Error result -> result
            | Ok () ->
                let item = Item.make ~flags ~exptime ~data ~now () in
                rp_store t rs key item;
                record_set t ~op key item;
                Stored)
      in
      rp_sweep t rs;
      result

let set t ~key ~flags ~exptime ~data =
  storage_command t ~op:Rp_persist.Record.Tset ~key ~flags ~exptime ~data
    ~guard:(fun _ -> Ok ())

let add t ~key ~flags ~exptime ~data =
  storage_command t ~op:Rp_persist.Record.Tadd ~key ~flags ~exptime ~data
    ~guard:(function
    | Some _ -> Error Not_stored
    | None -> Ok ())

let replace t ~key ~flags ~exptime ~data =
  storage_command t ~op:Rp_persist.Record.Treplace ~key ~flags ~exptime ~data
    ~guard:(function
    | Some _ -> Ok ()
    | None -> Error Not_stored)

let cas t ~key ~flags ~exptime ~data ~unique =
  storage_command t ~op:Rp_persist.Record.Tcas ~key ~flags ~exptime ~data
    ~guard:(function
    | None -> Error Not_found
    | Some (item : Item.t) -> if item.cas = unique then Ok () else Error Exists)

(* append/prepend read the live value and store the concatenation, keeping
   the existing flags and expiry (memcached semantics). *)
let concat_command t ~op ~key ~data ~build =
  Rp_obs.Counter.incr t.cmd_set;
  heat_set t key ~vbytes:(String.length data);
  let now = t.clock () in
  let perform (item : Item.t) ~old_data store =
    let combined = build old_data data in
    if not (fits_slab t ~key ~data:combined) then Too_large
    else begin
      let fresh =
        Item.make ~flags:item.flags ~exptime:item.exptime ~data:combined
          ~now ()
      in
      store fresh;
      record_set t ~op key fresh;
      Stored
    end
  in
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          match lock_find_live t ls key ~now with
          | None -> Not_stored
          | Some entry ->
              perform entry.item ~old_data:entry.item.data (fun fresh ->
                  lock_store t ls key fresh))
  | Rp_state rs ->
      let result =
        with_stripe t rs ~hash:(hash_key key) (fun () ->
            match Rp_ht.find rs.rp key with
            | Some item when not (Item.is_expired item ~now) -> (
                (* A demoted key concatenates against its real (cold)
                   value. A frame lost for good means the value is gone:
                   drop the marker and report NOT_STORED rather than
                   store just the suffix/prefix. *)
                match resolve_cold_locked t key item with
                | None ->
                    ignore (rp_delete t rs key);
                    Not_stored
                | Some old_data ->
                    perform item ~old_data (fun fresh ->
                        rp_store t rs key fresh))
            | Some _ | None -> Not_stored)
      in
      rp_sweep t rs;
      result

let append t ~key ~data =
  concat_command t ~op:Rp_persist.Record.Tappend ~key ~data
    ~build:(fun old d -> old ^ d)

let prepend t ~key ~data =
  concat_command t ~op:Rp_persist.Record.Tprepend ~key ~data
    ~build:(fun old d -> d ^ old)

let delete t key =
  Rp_obs.Counter.incr t.deletes;
  heat_delete t key;
  let perform deleted =
    (* Tombstone even on NOT_FOUND: eviction is not logged, so a key can
       be absent from memory yet still durable (plain eviction is the
       tier's fallback when a demote fails) — an acknowledged DELETE
       must leave it durably dead either way or it resurrects on
       replay. Replaying a delete of a missing key is a no-op. *)
    record t (Rp_persist.Record.Delete key);
    deleted
  in
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          perform (lock_delete t ls key))
  | Rp_state rs ->
      with_stripe t rs ~hash:(hash_key key) (fun () ->
          perform (rp_delete t rs key))

(* incr/decr rewrite the stored decimal string; decr saturates at zero. *)
let counter_command t ~op key delta ~apply =
  heat_mutation t key;
  let now = t.clock () in
  let compute (item : Item.t) ~data store =
    match int_of_string_opt (String.trim data) with
    | None -> Cnon_numeric
    | Some n ->
        let next = apply n delta in
        let fresh =
          Item.make ~flags:item.flags ~exptime:item.exptime
            ~data:(string_of_int next) ~now ()
        in
        store fresh;
        (* Logged as the produced value, not the delta: replaying an incr
           against a snapshot that already absorbed it must not double. *)
        record_set t ~op key fresh;
        Cvalue next
  in
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          match lock_find_live t ls key ~now with
          | None -> Cnotfound
          | Some entry ->
              compute entry.item ~data:entry.item.data (fun fresh ->
                  lock_store t ls key fresh))
  | Rp_state rs ->
      let result =
        with_stripe t rs ~hash:(hash_key key) (fun () ->
            match Rp_ht.find rs.rp key with
            | Some item when not (Item.is_expired item ~now) -> (
                (* A demoted counter parses its real (cold) value — the
                   marker's "" would turn a valid counter non-numeric. *)
                match resolve_cold_locked t key item with
                | None ->
                    ignore (rp_delete t rs key);
                    Cnotfound
                | Some data ->
                    compute item ~data (fun fresh -> rp_store t rs key fresh))
            | Some _ | None -> Cnotfound)
      in
      rp_sweep t rs;
      result

let incr t key delta =
  counter_command t ~op:Rp_persist.Record.Tincr key delta
    ~apply:(fun n d -> n + d)

let decr t key delta =
  counter_command t ~op:Rp_persist.Record.Tdecr key delta
    ~apply:(fun n d -> max 0 (n - d))

let touch t ~key ~exptime =
  heat_mutation t key;
  let now = t.clock () in
  let exptime = absolute_exptime t exptime in
  let retouch (item : Item.t) ~data store =
    let fresh =
      Item.make ~cas:item.cas ~flags:item.flags ~exptime ~data ~now ()
    in
    store fresh;
    record_set t ~op:Rp_persist.Record.Ttouch key fresh;
    true
  in
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          match lock_find_live t ls key ~now with
          | None -> false
          | Some entry ->
              retouch entry.item ~data:entry.item.data (fun fresh ->
                  lock_store t ls key fresh))
  | Rp_state rs ->
      let result =
        with_stripe t rs ~hash:(hash_key key) (fun () ->
            match Rp_ht.find rs.rp key with
            | Some item when not (Item.is_expired item ~now) -> (
                (* Touch on a demoted key promotes it: the new expiry is
                   durably logged as a state record, which carries the
                   full value — rebuilding from the marker's "" would
                   destroy the value (and log the destruction). *)
                match resolve_cold_locked t key item with
                | None ->
                    ignore (rp_delete t rs key);
                    false
                | Some data ->
                    retouch item ~data (fun fresh -> rp_store t rs key fresh))
            | Some _ | None -> false)
      in
      rp_sweep t rs;
      result

let flush_all_with t ~log =
  let finish () = if log then record t Rp_persist.Record.Flush_all in
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          let keys = ref [] in
          Rp_baseline.Lock_ht.unsafe_iter ls.table ~f:(fun k _ -> keys := k :: !keys);
          List.iter (fun k -> ignore (lock_delete t ls k)) !keys;
          finish ())
  | Rp_state rs ->
      with_all_stripes t rs (fun () ->
          let keys = Rp_ht.fold rs.rp ~init:[] ~f:(fun acc k _ -> k :: acc) in
          List.iter (fun k -> ignore (rp_delete t rs k)) keys;
          finish ())

let flush_all t = flush_all_with t ~log:true

let items t =
  match t.state with
  | Lock_state ls -> Rp_baseline.Lock_ht.length ls.table
  | Rp_state rs -> Rp_ht.length rs.rp

(* --- persistence plumbing (see [Persist] for the manager) --- *)

(* The snapshotter's walk. On the Rp backend this is the whole point of
   the design: a batched relativistic read (bounded read sections, never
   the update mutex), so a multi-second walk over a large table neither
   blocks writers nor extends any grace period beyond one batch. The Lock
   backend has no choice but to hold its global lock. *)
(* Cold items would otherwise walk out with empty data — and a snapshot
   that persisted a marker's "" would LOSE the value once log compaction
   pruned the original SET record. Read the segment through instead,
   outside the walk's read sections. The marker can move under us
   (compaction relocates, a SET replaces, a DELETE wins): re-resolve from
   the table, bounded; a key that vanished was deleted (logged), a torn
   frame is already lost either way. *)
let rec iter_resolve_cold t rs ~hooks ~f key tries =
  match Rp_ht.find rs.rp key with
  | None -> ()
  | Some item -> (
      match item.Item.location with
      | Item.Hot -> f key item
      | Item.Cold { segment; offset; len } -> (
          match hooks.th_read (segment, offset, len) with
          | Ok (rkey, data) when String.equal rkey key ->
              f key
                (Item.make ~cas:item.Item.cas ~flags:item.Item.flags
                   ~exptime:item.Item.exptime ~data ~now:(t.clock ()) ())
          | Error Tier_gone when tries > 0 ->
              iter_resolve_cold t rs ~hooks ~f key (tries - 1)
          | Ok _ ->
              Rp_obs.Counter.incr t.tier_read_mismatches;
              Rp_obs.Counter.incr t.tier_read_errors
          | Error _ -> Rp_obs.Counter.incr t.tier_read_errors))

let iter_items t ~f =
  match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          Rp_baseline.Lock_ht.unsafe_iter ls.table ~f:(fun k e -> f k e.item));
      0
  | Rp_state rs ->
      let cold = ref [] in
      let restarts =
        Rp_ht.iter_batched rs.rp ~f:(fun key (item : Item.t) ->
            if Item.is_cold item then cold := key :: !cold else f key item)
      in
      (match (!cold, t.tier) with
      | [], _ | _, None -> ()
      | keys, Some hooks ->
          List.iter (fun key -> iter_resolve_cold t rs ~hooks ~f key 3) keys);
      restarts

(* Apply a recovered or replicated record: same primitives as the live
   commands, but no command counters (neither a warm restart nor the
   replication stream is client traffic). With [log], the record is
   re-logged through the persist hook inside the serialization lock —
   that is how a follower's own oplog stays a faithful linearization of
   what it applied, so it can itself recover, snapshot, and (after
   promotion) lead. Recovery replay uses [log:false]: it must not re-log
   itself. Already-expired items are dropped rather than stored —
   deterministic, since records carry absolute expiry times. *)
let apply_record ?(log = false) t r =
  let finish () = if log then record t r in
  match r with
  | Rp_persist.Record.Set { key; flags; exptime; cas; data; _ } ->
      Item.note_restored_cas cas;
      let now = t.clock () in
      let item = Item.make ~cas ~flags ~exptime ~data ~now () in
      if Item.is_expired item ~now then
        ignore
          (match t.state with
          | Lock_state ls ->
              Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
                  let d = lock_delete t ls key in
                  finish ();
                  d)
          | Rp_state rs ->
              with_stripe t rs ~hash:(hash_key key) (fun () ->
                  let d = rp_delete t rs key in
                  finish ();
                  d))
      else begin
        (* No inline eviction: replay may overshoot the budget; the
           post-recovery sweep in {!Persist.attach} settles the heap once
           the full recovered state is known. (On the Rp backend
           [rp_store] never sweeps — only live commands call [rp_sweep]
           after releasing their stripe.) *)
        match t.state with
        | Lock_state ls ->
            Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
                lock_store ~evict:false t ls key item;
                finish ())
        | Rp_state rs ->
            with_stripe t rs ~hash:(hash_key key) (fun () ->
                rp_store t rs key item;
                finish ())
      end
  | Rp_persist.Record.Delete key ->
      ignore
        (match t.state with
        | Lock_state ls ->
            Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
                let d = lock_delete t ls key in
                finish ();
                d)
        | Rp_state rs ->
            with_stripe t rs ~hash:(hash_key key) (fun () ->
                let d = rp_delete t rs key in
                finish ();
                d))
  | Rp_persist.Record.Flush_all -> flush_all_with t ~log

let restore t r = apply_record ~log:false t r
let replicate t r = apply_record ~log:true t r

let bytes t = Slab.allocated_bytes t.slab
let slab_stats t = Slab.stats t.slab
let fragmentation t = Slab.fragmentation t.slab

let evictions t = Rp_obs.Counter.read t.evicted
let tier_demotions t = Rp_obs.Counter.read t.tier_demotions
let tier_promotions t = Rp_obs.Counter.read t.tier_promotions

let tier_active t =
  match t.tier with Some hooks -> hooks.th_admit () | None -> false

(* --- compaction plumbing (the [Tier] glue drives it) --- *)

(* The location of [key]'s cold marker, if it has one. Wait-free. *)
let tier_location t key =
  match t.state with
  | Lock_state _ -> None
  | Rp_state rs -> (
      match Rp_ht.find rs.rp key with
      | Some ({ Item.location = Item.Cold { segment; offset; len }; _ } as item)
        when not (Item.is_expired item ~now:(t.clock ())) ->
          Some (segment, offset, len)
      | Some _ | None -> None)

(* Copying-compaction step: under the key's update stripe, verify the
   marker still points at [from_] and, if so, run [relocate] (the glue's
   append-a-copy-to-the-head) and swap in a marker for the new location.
   The old frame is NOT marked dead here — the caller does that on a
   [true] return, keeping append/mark ownership in one place. False
   means the record was already dead (promoted, overwritten, deleted) or
   the copy failed (tier full): nothing was changed. *)
let tier_relocate t ~key ~from_ ~relocate =
  match t.state with
  | Lock_state _ -> false
  | Rp_state rs ->
      let sfrom, ofrom, lfrom = from_ in
      with_stripe t rs ~hash:(hash_key key) (fun () ->
          match Rp_ht.find rs.rp key with
          | Some ({ Item.location = Item.Cold { segment; offset; len }; _ } as item)
            when segment = sfrom && offset = ofrom && len = lfrom -> (
              match relocate () with
              | Some (segment, offset, len) ->
                  let marker =
                    Item.make ~cas:item.Item.cas
                      ~location:(Item.Cold { segment; offset; len })
                      ~flags:item.Item.flags ~exptime:item.Item.exptime
                      ~data:"" ~now:(Atomic.get item.Item.last_access) ()
                  in
                  (* Same-size marker swap: publish directly (no queue or
                     tier bookkeeping — old frame is the caller's). *)
                  Slab.refund t.slab (Item.size_bytes ~key item);
                  Rp_ht.replace rs.rp key marker;
                  ignore (Slab.charge t.slab (Item.size_bytes ~key marker));
                  true
              | None -> false)
          | Some _ | None -> false)

(* On-demand budget sweep: bring the heap back under [max_bytes] now
   instead of waiting for the next store to trigger eviction. Used by
   post-recovery attach (a restarted node must not serve over budget) and
   as the guard's Emergency actuator. Returns the number evicted. *)
let evict_to_budget t =
  let before = Rp_obs.Counter.read t.evicted in
  (match t.state with
  | Lock_state ls ->
      Rp_baseline.Lock_ht.with_lock ls.table (fun () ->
          lock_evict_until_fits t ls)
  | Rp_state rs -> rp_evict_to_budget t rs);
  Rp_obs.Counter.read t.evicted - before

let has_prefix p name =
  String.length name >= String.length p && String.sub name 0 (String.length p) = p

(* "stats rp" filter: relativistic-stack instruments only. *)
let rp_instrument name = has_prefix "rp_ht_" name || has_prefix "rcu_" name

(* "stats persist" filter: everything [Persist.attach] registers. *)
let persist_instrument name = has_prefix "persist_" name

(* "stats trace" filter: the flight recorder's registry instruments. *)
let trace_instrument name = has_prefix "trace_" name

(* "stats guard" filter: everything [Guard.install] registers. *)
let guard_instrument name = has_prefix "guard_" name

(* "stats tier" filter: the cold-tier instruments. *)
let tier_instrument name = has_prefix "tier_" name

(* "stats heat" filter: the workload-insight instruments. *)
let heat_instrument name = has_prefix "heat_" name

let stats t =
  ("backend", match backend t with Lock -> "lock" | Rp -> "rp")
  :: Rp_obs.Registry.to_stats
       ~filter:(fun n ->
         (* tier_demotions_total stays in the default section, right next
            to [evictions]: "moved to disk" vs "lost" is an operator-facing
            distinction, not tier-plane internals. *)
         n = "tier_demotions_total"
         || not
              (rp_instrument n || persist_instrument n || trace_instrument n
             || guard_instrument n || tier_instrument n || heat_instrument n))
       t.registry

let rp_stats t = Rp_obs.Registry.to_stats ~filter:rp_instrument t.registry

let persist_stats t =
  Rp_obs.Registry.to_stats ~filter:persist_instrument t.registry

(* "stats trace": live flight-recorder state (sample rate, span and drop
   counts, retained slow requests). One recorder serves the process, so
   the section reads [Rp_trace] directly rather than the registry. *)
let trace_stats (_ : t) = Rp_trace.stats_kv ()

(* "stats cluster": the cluster glue's live view (role, watermarks,
   follower list). A store with no cluster attachment reports only that
   the plane is off. *)
let cluster_stats t =
  match t.cluster_info with
  | None -> [ ("cluster_enabled", "0") ]
  | Some f -> ("cluster_enabled", "1") :: f ()

(* "stats tier": the glue's live view (mode, dir) first, then every
   tier_* instrument (demote/promote counters, read/demote latency
   histograms, byte gauges the glue registered). *)
let tier_stats t =
  match t.tier_info with
  | None -> [ ("tier_enabled", "0") ]
  | Some f ->
      (("tier_enabled", "1") :: f ())
      @ Rp_obs.Registry.to_stats ~filter:tier_instrument t.registry

(* "stats guard": the live ladder first (state name, per-source
   pressures), then the registered guard_* instruments (shed counter,
   slow-client kills from the evloop, ...). *)
let guard_stats t =
  match t.guard with
  | None -> [ ("guard_enabled", "0") ]
  | Some g ->
      let live = ("guard_enabled", "1") :: Rp_guard.stats_kv g in
      let seen = List.map fst live in
      live
      @ Rp_obs.Registry.to_stats
          ~filter:(fun n -> guard_instrument n && not (List.mem n seen))
          t.registry

let heat t = t.heat

(* "stats heat": the registered heat_* instruments (tracked totals,
   top-k labeled gauges, size histograms, stripe heatmap) plus the
   bounded per-rank detail lines ([Rp_heat.stats_kv]). *)
let heat_stats t =
  match t.heat with
  | None -> [ ("heat_enabled", "0") ]
  | Some h ->
      (("heat_enabled", "1") :: Rp_heat.stats_kv h)
      @ Rp_obs.Registry.to_stats ~filter:heat_instrument t.registry

let heat_json ?n t =
  match t.heat with
  | None -> "{\"heat_enabled\":false}"
  | Some h -> Rp_heat.to_json ?n h

(* "stats reset": clear the resettable workload-insight state — heat
   sketches, exemplar cells, and every registry histogram — while
   leaving monotonic counters (cmd_get, evictions, ...) untouched, as
   real memcached does. *)
let reset_stats t =
  (match t.heat with None -> () | Some h -> Rp_heat.reset h);
  Rp_obs.Registry.reset_histograms t.registry
