open Binary_protocol

let reply ?(status = Ok_status) ?(key = "") ?(value = "") ?(extras = "")
    ?(cas = 0) (request : request) =
  {
    r_opcode = request.opcode;
    status;
    r_key = key;
    r_value = value;
    r_extras = extras;
    r_opaque = request.opaque;
    r_cas = cas;
  }

let quit_requested (r : request) = r.opcode = Quit

let stored_status : Store.stored_result -> status = function
  | Store.Stored -> Ok_status
  | Store.Not_stored -> Item_not_stored
  | Store.Exists -> Key_exists
  | Store.Not_found -> Key_not_found
  | Store.Too_large -> Value_too_large

let handle_get store (request : request) ~with_key ~quiet =
  match Store.get store request.key with
  | Some v ->
      [
        reply request
          ~key:(if with_key then request.key else "")
          ~value:v.Protocol.vdata
          ~extras:(get_response_extras ~flags:v.Protocol.vflags)
          ~cas:(Option.value ~default:0 v.Protocol.vcas);
      ]
  | None ->
      if quiet then [] (* quiet gets say nothing on a miss *)
      else
        [
          reply request ~status:Key_not_found
            ~key:(if with_key then request.key else "");
        ]

let handle_storage store (request : request) op =
  if String.length request.extras <> 8 then
    [ reply request ~status:Invalid_arguments ]
  else begin
    let flags = parse_u32 request.extras 0 in
    let exptime = parse_u32 request.extras 4 in
    let result =
      match op with
      | `Set ->
          if request.cas = 0 then
            Store.set store ~key:request.key ~flags ~exptime ~data:request.value
          else
            Store.cas store ~key:request.key ~flags ~exptime ~data:request.value
              ~unique:request.cas
      | `Add -> Store.add store ~key:request.key ~flags ~exptime ~data:request.value
      | `Replace ->
          Store.replace store ~key:request.key ~flags ~exptime ~data:request.value
    in
    match result with
    | Store.Stored ->
        let cas =
          match Store.get_many store ~with_cas:true [ request.key ] with
          | [ { Protocol.vcas = Some c; _ } ] -> c
          | _ -> 0
        in
        [ reply request ~cas ]
    | other -> [ reply request ~status:(stored_status other) ]
  end

(* Get-and-touch: bump the exptime, then serve the value like a get.
   A concurrent delete between the two steps reads as a miss, which is
   also what a client racing a delete could legitimately observe. *)
let handle_gat store (request : request) ~quiet =
  if String.length request.extras <> 4 then
    [ reply request ~status:Invalid_arguments ]
  else begin
    let exptime = parse_u32 request.extras 0 in
    if not (Store.touch store ~key:request.key ~exptime) then
      if quiet then [] else [ reply request ~status:Key_not_found ]
    else
      match Store.get store request.key with
      | Some v ->
          [
            reply request ~value:v.Protocol.vdata
              ~extras:(get_response_extras ~flags:v.Protocol.vflags)
              ~cas:(Option.value ~default:0 v.Protocol.vcas);
          ]
      | None ->
          if quiet then [] else [ reply request ~status:Key_not_found ]
  end

let handle_counter store (request : request) ~decrement =
  if String.length request.extras <> 20 then
    [ reply request ~status:Invalid_arguments ]
  else begin
    let delta = parse_u64 request.extras 0 in
    let initial = parse_u64 request.extras 8 in
    let exptime = parse_u32 request.extras 16 in
    let counter_reply n = [ reply request ~value:(u64_bytes n) ] in
    let op = if decrement then Store.decr else Store.incr in
    match op store request.key delta with
    | Store.Cvalue n -> counter_reply n
    | Store.Cnon_numeric -> [ reply request ~status:Non_numeric_value ]
    | Store.Cnotfound ->
        (* Binary protocol: a miss seeds the counter with [initial] unless
           exptime is all-ones (treated as "do not create"). *)
        if exptime = 0xffffffff then [ reply request ~status:Key_not_found ]
        else begin
          ignore
            (Store.set store ~key:request.key ~flags:0 ~exptime
               ~data:(string_of_int initial));
          counter_reply initial
        end
  end

(* Mirror of {!Dispatch.sheddable}: the opcodes the overload guard may
   fast-fail. Gets (quiet or not) always go through. *)
let sheddable_opcode = function
  | Set | Add | Replace | Delete | Increment | Decrement | Append | Prepend
  | Touch | Flush ->
      true
  | Get | GetQ | GetK | GetKQ | GAT | GATQ | Noop | Version | Stat | Quit ->
      false

let shed store (request : request) =
  match Store.guard store with
  | Some g when sheddable_opcode request.opcode && not (Rp_guard.admit_mutation g)
    ->
      Rp_guard.note_shed g;
      true
  | _ -> false

let handle store (request : request) : response list =
  if shed store request then [ reply request ~status:Busy ]
  else if Store.read_only store && sheddable_opcode request.opcode then
    (* Following replica: mutations only arrive via the replication
       stream, never from clients. *)
    [ reply request ~status:Read_only ]
  else
  match request.opcode with
  | Get -> handle_get store request ~with_key:false ~quiet:false
  | GetQ -> handle_get store request ~with_key:false ~quiet:true
  | GetK -> handle_get store request ~with_key:true ~quiet:false
  | GetKQ -> handle_get store request ~with_key:true ~quiet:true
  | Set -> handle_storage store request `Set
  | Add -> handle_storage store request `Add
  | Replace -> handle_storage store request `Replace
  | Delete ->
      if Store.delete store request.key then [ reply request ]
      else [ reply request ~status:Key_not_found ]
  | Increment -> handle_counter store request ~decrement:false
  | Decrement -> handle_counter store request ~decrement:true
  | Append -> (
      match Store.append store ~key:request.key ~data:request.value with
      | Store.Stored -> [ reply request ]
      | other -> [ reply request ~status:(stored_status other) ])
  | Prepend -> (
      match Store.prepend store ~key:request.key ~data:request.value with
      | Store.Stored -> [ reply request ]
      | other -> [ reply request ~status:(stored_status other) ])
  | Touch ->
      if String.length request.extras <> 4 then
        [ reply request ~status:Invalid_arguments ]
      else begin
        let exptime = parse_u32 request.extras 0 in
        if Store.touch store ~key:request.key ~exptime then [ reply request ]
        else [ reply request ~status:Key_not_found ]
      end
  | Flush ->
      Store.flush_all store;
      [ reply request ]
  | Noop -> [ reply request ]
  | Version -> [ reply request ~value:Version.string ]
  | GAT -> handle_gat store request ~quiet:false
  | GATQ -> handle_gat store request ~quiet:true
  | Stat -> (
      (* The key selects the section, as [stats <arg>] does in text:
         one response per stat, then an empty-key terminator. *)
      let section =
        match request.key with
        | "" -> Some (Store.stats store)
        | "rp" -> Some (Store.rp_stats store)
        | "persist" -> Some (Store.persist_stats store)
        | "trace" -> Some (Store.trace_stats store)
        | "guard" -> Some (Store.guard_stats store)
        | "tier" -> Some (Store.tier_stats store)
        | "cluster" -> Some (Store.cluster_stats store)
        | "heat" -> Some (Store.heat_stats store)
        | "reset" ->
            Store.reset_stats store;
            Some []
        | _ -> None
      in
      match section with
      | None -> [ reply request ~status:Invalid_arguments ]
      | Some stats ->
          List.map (fun (k, v) -> reply request ~key:k ~value:v) stats
          @ [ reply request ])
  | Quit -> []
