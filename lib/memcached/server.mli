(** memcached server: request dispatch plus a socket front end.

    {!handle} is the pure dispatch used by both socket planes and the
    in-process benchmark loopback. Two serving planes share one accept
    loop and one config:

    - {!Threaded} (default): one thread per connection, blocking I/O —
      simple, torture-hardened, and immune to a slow connection stalling
      others;
    - {!Event_loop}: the sharded event-loop plane ({!Evloop}) — worker
      domains with private poll sets, pipelined batch dispatch, coalesced
      writes, and per-worker QSBR discipline for zero-cost GET read
      sections (pair it with a {!Store.rcu_mode} [Qsbr] store). *)

val version_string : string

val handle : Store.t -> Protocol.request -> Protocol.response option
(** Execute one request. [None] means no response is sent (noreply flag, or
    [Quit], which the connection loop treats as close). *)

type t

type address = Unix_socket of string | Tcp of int | Inet of string * int
(** [Tcp port] binds/connects loopback; [Inet (host, port)] names a
    remote (or any resolvable) endpoint — the cluster plane's address
    shape. *)

type mode = Threaded | Event_loop

val sockaddr_of : address -> Unix.socket_domain * Unix.sockaddr
(** Resolve an address to its socket domain and sockaddr (numeric hosts
    first, then [gethostbyname]). *)

type config = {
  max_connections : int;
      (** beyond this many live connections, new ones are rejected with
          [SERVER_ERROR too many connections] and closed *)
  max_inflight : int;
      (** admission cap {e below} [max_connections]: past it new
          connections are rejected with [SERVER_ERROR overloaded] (the
          hard cap keeps its own message). [0] (default) disables *)
  idle_timeout : float;
      (** seconds a connection may sit without sending bytes before the
          server closes it; [0.] disables (default) *)
  write_timeout : float;
      (** seconds a single response write may block before the connection
          is dropped; [0.] disables (default 30; threaded plane only —
          the event loop parks pending bytes and polls for writability) *)
  listen_backlog : int;  (** [listen(2)] backlog (default 64) *)
  read_buffer_size : int;
      (** per-connection read buffer in bytes (default 16 KiB); the
          threaded plane pools these across connections *)
  tcp_nodelay : bool;
      (** disable Nagle on accepted TCP sockets (default [true]) so
          pipelined responses aren't held back by coalescing timers *)
  mode : mode;  (** serving plane (default {!Threaded}) *)
  workers : int;
      (** event-loop worker domains; [0] (default) means
          [Domain.recommended_domain_count ()] *)
  conn_write_cap : int;
      (** event-loop plane: per-connection pending-write byte cap
          (default 1 MiB; [0] = unlimited). See
          {!Evloop.config.conn_write_cap} *)
  drain_deadline : float;
      (** event-loop plane: kill a backed-up connection making no
          progress for this many seconds (default 30; [<= 0] disables).
          See {!Evloop.config.drain_deadline} *)
}

val default_config : config
(** 1024 connections, no inflight cap, no idle timeout, 30 s write
    timeout, backlog 64, 16 KiB buffers, TCP_NODELAY on, threaded mode,
    1 MiB write cap, 30 s drain deadline.

    When a {!Store.guard} is attached and in [Emergency], new connections
    are refused with [SERVER_ERROR overloaded] regardless of the caps —
    established connections keep serving (GETs stay wait-free; mutations
    shed in {!handle}). *)

val start : store:Store.t -> ?config:config -> address -> t
(** Start listening and serving connections (the accept loop runs on a
    background thread; connection service runs on per-connection threads
    or event-loop worker domains, by [config.mode]). Connection I/O runs
    through the failpoint sites ["server.read.split"],
    ["server.write.partial"], and ["server.conn.reset"] (see {!Rp_fault})
    on both planes, so tests can split reads, shorten writes, or tear
    connections. *)

val stop : t -> unit
(** Close the listener, wait for the accept loop to exit, then shut down
    and drain every in-flight connection thread or worker domain: when
    [stop] returns, no server thread or domain is left running. *)

val active_connections : t -> int
(** Currently live connections. *)

val capacity : t -> int
(** The effective admission cap: [max_inflight] when set, else
    [max_connections] — the denominator of the guard's connection
    pressure. *)

val rejected_connections : t -> int
(** Connections turned away by the [max_connections] cap so far. *)

val address : t -> address
(** The bound address. A [Tcp 0] / [Inet (host, 0)] request (OS-assigned
    port) is resolved to the port the kernel actually picked. *)

val workers : t -> int
(** Event-loop worker domains serving this instance; [0] on the threaded
    plane. *)
