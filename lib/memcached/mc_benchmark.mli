(** mc-benchmark-style load generator.

    Drives a {!Store.t} through the {e full protocol codec} — each operation
    encodes a request, parses it server-side, dispatches, encodes the
    response, and parses it client-side — so the measured path matches what
    a socket client exercises, minus the kernel. Workers run on separate
    domains, exactly like the paper's N mc-benchmark processes.

    A pure-GET run measures the paper's GET curves (global lock vs. RP fast
    path); a pure-SET run measures the SET curves. *)

type mode = Get_only | Set_only | Mixed of float  (** fraction of SETs *)

type config = {
  workers : int;
  duration : float;  (** seconds *)
  keyspace : int;
  value_size : int;  (** bytes per value *)
  mode : mode;
  seed : int;
  dist : Rp_workload.Keygen.dist;
      (** key popularity: [Uniform] (mc-benchmark's default) or
          [Zipfian theta] — the skewed workload that gives a tiered
          store its hot set *)
}

val default_config : config

type result = {
  requests : int;
  elapsed : float;
  requests_per_second : float;
  hits : int;
  misses : int;
}

val prefill : Store.t -> keyspace:int -> value_size:int -> unit
(** Populate every key so GET runs measure hits, as mc-benchmark does. *)

val run : store:Store.t -> config -> result

val run_backend :
  backend:Store.backend -> config -> result
(** Convenience: build a store, prefill it, run. *)

(** {1 Pipelined socket load}

    The wire-level companion to {!run}: real sockets against a running
    {!Server}, [pipeline] GETs per write (mc-benchmark's [-P]), responses
    drained in bulk — the workload the event-loop plane's batch dispatch
    exists for. One client domain per connection. *)

type socket_config = {
  connections : int;  (** concurrent client connections (one domain each) *)
  pipeline : int;  (** GETs per batch written before draining responses *)
  sduration : float;  (** seconds *)
  skeyspace : int;
  svalue_size : int;
  sseed : int;
  sdist : Rp_workload.Keygen.dist;  (** key popularity, as in {!config} *)
}

val default_socket_config : socket_config
(** 1 connection, pipeline 16, 1 s, 10k keys, 100 B values. *)

val socket_prefill :
  Server.address -> keyspace:int -> value_size:int -> unit
(** Populate every key over the wire (pipelined SETs on one connection) —
    never by touching the store in-process, so it is safe against a
    QSBR-mode store, whose participants are the server's worker domains. *)

val run_socket : Server.address -> socket_config -> result
(** Drive a running server with pipelined GETs; {!result.requests} counts
    individual GETs, not batches. *)

val run_servers : (string * int * int) list -> socket_config -> result
(** Multi-server mode ([--servers a:p1,b:p2]): each connection is a
    {!Client.of_servers} ring client; batches of [pipeline] keys are
    grouped by ring owner and pipelined per member, so the load spreads
    across the cluster exactly as the consistent-hash routing dictates.
    Prefill also goes through the ring. *)
