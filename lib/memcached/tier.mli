(** Wiring between {!Rp_tier.Cold_store} and this serving stack: the
    demote/read/mark-dead hooks the {!Store} eviction sweep and GET path
    call through, the background copying compactor, the guard's cold-tier
    pressure source, and the [tier_*] instruments.

    Startup order mirrors the server binary: create the store, install
    the guard, {!attach} the tier, attach {!Persist} (whose recovery
    replays every value back into RAM), then {!finish_recovery} — which
    rebuilds the per-segment live maps against the recovered table and
    drops segments nothing references anymore. *)

type t

val attach :
  ?min_dead_ratio:float ->
  ?compact_interval:float ->
  ?segment_bytes:int ->
  dir:string ->
  max_mb:int ->
  Store.t ->
  (t, string) result
(** Open the segment store under [dir] with a [max_mb] byte budget and
    install the tier hooks. If a guard is already attached to the store,
    registers the ["tier"] pressure source (tier bytes / budget) and the
    Emergency actuator (pause compaction, shed demotions — cold reads
    are never shed; both revert on descent). Spawns the compaction
    domain: every [compact_interval] (default 0.05 s) it looks for a
    sealed segment at least [min_dead_ratio] (default 0.5) dead and
    copies its live records to the head. [segment_bytes] caps one
    segment file (default: budget / 8). *)

val finish_recovery : t -> int
(** Rebuild segment live maps against the store's current cold markers
    (none, after a persist replay — every replayed value is hot), and
    drop fully-dead segments. Returns the number dropped. Call after
    {!Persist.attach}. *)

val compact_once : t -> bool
(** One synchronous compaction pass (what the background domain runs):
    pick a candidate segment, relocate its live records, let the empty
    segment drop. [false] when there is no candidate, compaction is
    paused, or another pass is in flight. Deterministic hatch for tests
    and the torture harness. *)

val compactions : t -> int
val cold_store : t -> Rp_tier.Cold_store.t
val paused : t -> bool

val stop : t -> unit
(** Join the compaction domain, uninstall the store hooks, close the
    segment store. Cold markers left in the table become unreadable —
    shutdown-only. *)
