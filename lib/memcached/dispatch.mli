(** Text-protocol request dispatch onto the {!Store}, shared by the
    threaded server, the event-loop workers ({!Evloop}/{!Conn}), and the
    in-process benchmark loopback. *)

val stored_reply : Store.stored_result -> Protocol.response

val handle : Store.t -> Protocol.request -> Protocol.response option
(** Execute one request. [None] means no response is sent (noreply flag, or
    [Quit], which the connection loop treats as close). *)
