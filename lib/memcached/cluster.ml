(* Cluster glue: wires Rp_cluster's replication plane into a running
   store + persistence manager, and backs the [stats cluster] section
   and the [cluster promote] admin command. *)

module P = Rp_persist

type role = Leader | Replica | Promoted

type leader_state = {
  l_listener : Rp_cluster.Repl_leader.t;
  l_persist : Persist.t;
}

type follower_state = {
  f_follower : Rp_cluster.Repl_follower.t;
  f_leader_name : string;
  f_applied : Rp_obs.Counter.t;
  f_decode_errors : Rp_obs.Counter.t;
  f_lag_us : Rp_obs.Histogram.t; (* publish->apply, leader clock vs ours *)
}

type state = L of leader_state | F of follower_state

type t = {
  store : Store.t;
  mutable role : role;
  mutable state : state;
  mutable stopped : bool;
}

let role t = t.role
let role_name = function Leader -> "leader" | Replica -> "replica" | Promoted -> "promoted"

let k_apply = Rp_trace.intern "repl.apply"

(* --- leader --- *)

let leader_info t ls () =
  let fstats = Rp_cluster.Repl_leader.stats ls.l_listener in
  let base =
    [
      ("cluster_role", role_name t.role);
      ("cluster_repl_port", string_of_int (Rp_cluster.Repl_leader.port ls.l_listener));
      ( "cluster_records_streamed",
        string_of_int (Rp_cluster.Repl_leader.records_streamed ls.l_listener) );
      ("cluster_resyncs", string_of_int (Rp_cluster.Repl_leader.resyncs ls.l_listener));
      ("cluster_followers", string_of_int (List.length fstats));
    ]
  in
  let per_follower i (s : Rp_cluster.Repl_leader.follower_stat) =
    let p = Printf.sprintf "cluster_follower_%d" i in
    [
      (p ^ "_peer", s.fs_peer);
      (p ^ "_connected", if s.fs_connected then "1" else "0");
      (p ^ "_caught_up", if s.fs_caught_up then "1" else "0");
      (p ^ "_sent_seq", string_of_int s.fs_sent_seq);
      (p ^ "_sent_gen", string_of_int s.fs_sent_gen);
      (p ^ "_acked_seq", string_of_int s.fs_acked_seq);
      (p ^ "_acked_gen", string_of_int s.fs_acked_gen);
    ]
  in
  base @ List.concat (List.mapi per_follower fstats)

let lead ~store ~persist addr =
  let listener =
    Rp_cluster.Repl_leader.start ~dir:(Persist.dir persist)
      ~flush:(fun () -> Persist.flush_log persist)
      addr
  in
  let ls = { l_listener = listener; l_persist = persist } in
  let t = { store; role = Leader; state = L ls; stopped = false } in
  (* The tap runs inside the store's serialization lock: publish only
     enqueues (never blocks on sockets), so the lock hold stays short. *)
  Persist.set_tap persist
    (Some
       (fun ~gen ~trace r ->
         Rp_cluster.Repl_leader.publish listener ~gen ~trace (P.Record.encode r)));
  Store.set_cluster_info store (Some (leader_info t ls));
  let reg = Store.registry store in
  Rp_obs.Registry.gauge reg ~help:"cluster role (1 leader, 2 replica, 3 promoted)"
    "cluster_role" (fun () ->
      match t.role with Leader -> 1. | Replica -> 2. | Promoted -> 3.);
  Rp_obs.Registry.fn_counter reg ~help:"records streamed to followers"
    "cluster_records_streamed_total" (fun () ->
      float_of_int (Rp_cluster.Repl_leader.records_streamed listener));
  Rp_obs.Registry.fn_counter reg
    ~help:"follower queue overflows that forced a disk resync"
    "cluster_resyncs_total" (fun () ->
      float_of_int (Rp_cluster.Repl_leader.resyncs listener));
  t

(* --- follower --- *)

let follower_info t fs () =
  let f = fs.f_follower in
  let snap = Rp_obs.Histogram.snapshot fs.f_lag_us in
  [
    ("cluster_role", role_name t.role);
    ("cluster_leader", fs.f_leader_name);
    ("cluster_connected", if Rp_cluster.Repl_follower.connected f then "1" else "0");
    ("cluster_applied", string_of_int (Rp_cluster.Repl_follower.applied f));
    ("cluster_applied_gen", string_of_int (Rp_cluster.Repl_follower.applied_gen f));
    ("cluster_reconnects", string_of_int (Rp_cluster.Repl_follower.reconnects f));
    ("cluster_decode_errors", string_of_int (Rp_obs.Counter.read fs.f_decode_errors));
    ("cluster_apply_lag_us_p50", string_of_int (Rp_obs.Histogram.percentile snap 0.5));
    ("cluster_apply_lag_us_p99", string_of_int (Rp_obs.Histogram.percentile snap 0.99));
    ("cluster_read_only", if Store.read_only t.store then "1" else "0");
  ]

let name_of_sockaddr = function
  | Unix.ADDR_UNIX path -> path
  | Unix.ADDR_INET (a, p) -> Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p

let promote t =
  match t.state with
  | L _ -> Error "not a replica"
  | F fs ->
      if t.role = Promoted then Error "already promoted"
      else begin
        (* Order matters: stop the stream first so no replicated apply
           races the first client write, then open the write path. *)
        Rp_cluster.Repl_follower.stop fs.f_follower;
        t.role <- Promoted;
        Store.set_read_only t.store false;
        Ok "promoted"
      end

let follow ~store ?persist ~leader () =
  ignore persist;
  Store.set_read_only store true;
  let applied = Rp_obs.Counter.create () in
  let decode_errors = Rp_obs.Counter.create () in
  let lag_us = Rp_obs.Histogram.create () in
  let apply ~gen:_ ~trace ~ts_us payload =
    match P.Record.decode payload with
    | Error _ ->
        (* A record the leader framed but we cannot decode: count it and
           move on — killing the session would just replay the same
           bytes forever. *)
        Rp_obs.Counter.incr decode_errors
    | Ok r ->
        (* Adopt the leader request's trace id: the follower's apply
           span lands in the same distributed trace in Perfetto. *)
        Rp_trace.request_begin ~trace k_apply;
        Fun.protect
          ~finally:(fun () -> Rp_trace.request_end ())
          (fun () -> Store.replicate store r);
        Rp_obs.Counter.incr applied;
        (* Catch-up records stream with ts_us = 0 (their send time is not
           an apply deadline); lag is only meaningful for live ones. *)
        if ts_us > 0 then begin
          let lag = int_of_float (Unix.gettimeofday () *. 1e6) - ts_us in
          if lag >= 0 then Rp_obs.Histogram.observe lag_us lag
        end
  in
  let follower = Rp_cluster.Repl_follower.start ~leader ~apply () in
  let fs =
    {
      f_follower = follower;
      f_leader_name = name_of_sockaddr leader;
      f_applied = applied;
      f_decode_errors = decode_errors;
      f_lag_us = lag_us;
    }
  in
  let t = { store; role = Replica; state = F fs; stopped = false } in
  Store.set_cluster_info store (Some (follower_info t fs));
  Store.set_promote_hook store (Some (fun () -> promote t));
  let reg = Store.registry store in
  Rp_obs.Registry.gauge reg ~help:"cluster role (1 leader, 2 replica, 3 promoted)"
    "cluster_role" (fun () ->
      match t.role with Leader -> 1. | Replica -> 2. | Promoted -> 3.);
  Rp_obs.Registry.register_counter reg ~help:"records applied from the stream"
    "cluster_applied_total" applied;
  Rp_obs.Registry.register_counter reg
    ~help:"stream records that failed to decode (skipped)"
    "cluster_decode_errors_total" decode_errors;
  Rp_obs.Registry.register_histogram reg
    ~help:"publish-to-apply lag in microseconds (leader clock vs ours)"
    "cluster_apply_lag_us" lag_us;
  Rp_obs.Registry.gauge reg ~help:"1 while the replication link is up"
    "cluster_connected" (fun () ->
      if Rp_cluster.Repl_follower.connected follower then 1. else 0.);
  t

(* --- shared --- *)

let repl_port t =
  match t.state with
  | L ls -> Rp_cluster.Repl_leader.port ls.l_listener
  | F _ -> 0

let applied t =
  match t.state with
  | L _ -> 0
  | F fs -> Rp_cluster.Repl_follower.applied fs.f_follower

let connected t =
  match t.state with
  | L _ -> true
  | F fs -> Rp_cluster.Repl_follower.connected fs.f_follower

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    match t.state with
    | L ls ->
        Persist.set_tap ls.l_persist None;
        Rp_cluster.Repl_leader.stop ls.l_listener
    | F fs ->
        if t.role <> Promoted then Rp_cluster.Repl_follower.stop fs.f_follower
  end
