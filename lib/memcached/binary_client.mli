(** Blocking binary-protocol client (tests, demos).

    The first frame sent carries the 0x80 magic, which is also what flips
    the server's protocol auto-detection to binary. *)

type t

val connect : Server.address -> t

val of_servers :
  ?retries:int ->
  ?eject_after:int ->
  ?rejoin_after:float ->
  (string * int * int) list ->
  t
(** Multi-server mode: keyed requests route over a ketama consistent-hash
    ring ({!Rp_cluster.Ring}); a member failing [eject_after] (default 3)
    consecutive connection attempts is ejected for a jittered
    [rejoin_after]-based window and its keys fail over to the next live
    member. Each request gets [retries] (default 2) re-routed attempts. *)

val close : t -> unit

val get : t -> string -> (string * int) option
(** [Some (value, flags)]. *)

val set :
  t -> ?flags:int -> ?exptime:int -> ?cas:int -> key:string -> data:string ->
  unit -> Binary_protocol.status

val add : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit
  -> Binary_protocol.status

val delete : t -> string -> bool
val incr : t -> ?initial:int -> string -> int -> int option
val decr : t -> ?initial:int -> string -> int -> int option
val touch : t -> key:string -> exptime:int -> bool

val gat : t -> key:string -> exptime:int -> (string * int) option
(** Get-and-touch: [Some (value, flags)] with the expiry bumped. *)

val version : t -> string
val noop : t -> unit
val flush_all : t -> unit

val stats : ?key:string -> t -> (string * string) list
(** [stats t] is the default section; [~key:"rp"], [~key:"persist"], and
    [~key:"trace"] select the named sections (raises [Failure] on an
    unknown section). *)

val request : t -> Binary_protocol.request -> Binary_protocol.response
(** Send any request expecting exactly one response frame. *)

val gets_cas : t -> string -> int option
(** The CAS unique of a key (from a Get response). *)
