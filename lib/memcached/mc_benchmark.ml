type mode = Get_only | Set_only | Mixed of float

type config = {
  workers : int;
  duration : float;
  keyspace : int;
  value_size : int;
  mode : mode;
  seed : int;
  dist : Rp_workload.Keygen.dist;
}

let default_config =
  {
    workers = 1;
    duration = 1.0;
    keyspace = 10_000;
    value_size = 100;
    mode = Get_only;
    seed = 42;
    dist = Rp_workload.Keygen.Uniform;
  }

type result = {
  requests : int;
  elapsed : float;
  requests_per_second : float;
  hits : int;
  misses : int;
}

let value_for ~size key_index =
  let tag = Printf.sprintf "v%08d:" key_index in
  let pad = max 0 (size - String.length tag) in
  tag ^ String.make pad 'x'

let prefill store ~keyspace ~value_size =
  for i = 0 to keyspace - 1 do
    let key = Rp_workload.Keygen.string_key i in
    ignore
      (Store.set store ~key ~flags:0 ~exptime:0 ~data:(value_for ~size:value_size i))
  done

(* One worker = one simulated mc-benchmark process: client-side encoding +
   parsing and server-side parsing + dispatch, all on this domain. *)
let worker store config index ~stop ~hits ~misses =
  let keygen =
    Rp_workload.Keygen.create ~dist:config.dist ~keyspace:config.keyspace
      ~seed:config.seed ~worker:index ()
  in
  let prng = Rp_workload.Keygen.prng keygen in
  let parser = Protocol.Parser.create () in
  let response_parser = Protocol.Response_parser.create () in
  let my_hits = ref 0 and my_misses = ref 0 in
  let one_request () =
    let key_index = Rp_workload.Keygen.next_key keygen in
    let key = Rp_workload.Keygen.string_key key_index in
    let is_set =
      match config.mode with
      | Get_only -> false
      | Set_only -> true
      | Mixed fraction -> Rp_workload.Prng.float prng < fraction
    in
    let request =
      if is_set then
        Protocol.Set
          {
            key;
            flags = 0;
            exptime = 0;
            noreply = false;
            data = value_for ~size:config.value_size key_index;
          }
      else Protocol.Get [ key ]
    in
    (* client -> wire *)
    Protocol.Parser.feed parser (Protocol.encode_request request);
    (* wire -> server -> wire *)
    (match Protocol.Parser.next parser with
    | Some (Ok parsed) -> (
        match Server.handle store parsed with
        | Some response ->
            Protocol.Response_parser.feed response_parser
              (Protocol.encode_response response)
        | None -> ())
    | Some (Error msg) -> failwith ("mc_benchmark: request parse error: " ^ msg)
    | None -> failwith "mc_benchmark: incomplete request");
    (* wire -> client *)
    match Protocol.Response_parser.next response_parser with
    | Some (Ok (Protocol.Values [])) -> incr my_misses
    | Some (Ok (Protocol.Values _)) -> incr my_hits
    | Some (Ok _) -> ()
    | Some (Error msg) -> failwith ("mc_benchmark: response parse error: " ^ msg)
    | None -> failwith "mc_benchmark: incomplete response"
  in
  let ops = Rp_harness.Runner.loop_until_stop ~stop ~f:one_request in
  ignore (Atomic.fetch_and_add hits !my_hits);
  ignore (Atomic.fetch_and_add misses !my_misses);
  ops

let run ~store config =
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let workers =
    Array.init config.workers (fun i ~stop ->
        worker store config i ~stop ~hits ~misses)
  in
  let outcome = Rp_harness.Runner.run ~duration:config.duration ~workers () in
  {
    requests = Rp_harness.Runner.total_ops outcome;
    elapsed = outcome.elapsed;
    requests_per_second = Rp_harness.Runner.throughput outcome;
    hits = Atomic.get hits;
    misses = Atomic.get misses;
  }

let run_backend ~backend config =
  let store = Store.create ~backend ~initial_size:16_384 () in
  prefill store ~keyspace:config.keyspace ~value_size:config.value_size;
  run ~store config

(* ---------------------------------------------------------------------- *)
(* Pipelined socket load (mc-benchmark -P): real sockets, real kernel.    *)
(* ---------------------------------------------------------------------- *)

type socket_config = {
  connections : int;
  pipeline : int;
  sduration : float;
  skeyspace : int;
  svalue_size : int;
  sseed : int;
  sdist : Rp_workload.Keygen.dist;
}

let default_socket_config =
  {
    connections = 1;
    pipeline = 16;
    sduration = 1.0;
    skeyspace = 10_000;
    svalue_size = 100;
    sseed = 42;
    sdist = Rp_workload.Keygen.Uniform;
  }

let connect addr =
  let domain, sockaddr = Server.sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.connect fd sockaddr;
  (match addr with
  | Server.Unix_socket _ -> ()
  | Server.Tcp _ | Server.Inet _ -> Io.set_tcp_nodelay fd);
  fd

(* Read until [n] responses came back, handing each to [consume]. *)
let await_responses rp fd rbuf n consume =
  let remaining = ref n in
  while !remaining > 0 do
    match Protocol.Response_parser.next rp with
    | Some (Ok response) ->
        consume response;
        decr remaining
    | Some (Error msg) ->
        failwith ("mc_benchmark: socket response parse error: " ^ msg)
    | None ->
        let got = Unix.read fd rbuf 0 (Bytes.length rbuf) in
        if got = 0 then failwith "mc_benchmark: server closed the connection";
        Protocol.Response_parser.feed rp (Bytes.sub_string rbuf 0 got)
  done

(* Prefill over the wire (batches of pipelined SETs), never by touching the
   store directly — a QSBR-mode store must only ever be driven from the
   server's worker domains. *)
let socket_prefill addr ~keyspace ~value_size =
  let fd = connect addr in
  let rp = Protocol.Response_parser.create () in
  let rbuf = Bytes.create 65536 in
  let batch = Buffer.create 8192 in
  let i = ref 0 in
  (try
     while !i < keyspace do
       let n = min 128 (keyspace - !i) in
       Buffer.clear batch;
       for j = !i to !i + n - 1 do
         Buffer.add_string batch
           (Protocol.encode_request
              (Protocol.Set
                 {
                   key = Rp_workload.Keygen.string_key j;
                   flags = 0;
                   exptime = 0;
                   noreply = false;
                   data = value_for ~size:value_size j;
                 }))
       done;
       Io.write_all fd (Buffer.contents batch);
       await_responses rp fd rbuf n (function
         | Protocol.Stored -> ()
         | other ->
             failwith
               ("mc_benchmark: prefill expected STORED, got "
               ^ String.trim (Protocol.encode_response other)));
       i := !i + n
     done
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Unix.close fd

let socket_worker addr config index ~stop ~hits ~misses =
  let fd = connect addr in
  let keygen =
    Rp_workload.Keygen.create ~dist:config.sdist ~keyspace:config.skeyspace
      ~seed:config.sseed ~worker:index ()
  in
  let rp = Protocol.Response_parser.create () in
  let rbuf = Bytes.create 65536 in
  let batch = Buffer.create (config.pipeline * 32) in
  let my_hits = ref 0 and my_misses = ref 0 in
  let one_batch () =
    Buffer.clear batch;
    for _ = 1 to config.pipeline do
      let key =
        Rp_workload.Keygen.string_key (Rp_workload.Keygen.next_key keygen)
      in
      Buffer.add_string batch (Protocol.encode_request (Protocol.Get [ key ]))
    done;
    Io.write_all fd (Buffer.contents batch);
    await_responses rp fd rbuf config.pipeline (function
      | Protocol.Values [] -> incr my_misses
      | Protocol.Values _ -> incr my_hits
      | _ -> ())
  in
  let batches = Rp_harness.Runner.loop_until_stop ~stop ~f:one_batch in
  ignore (Atomic.fetch_and_add hits !my_hits);
  ignore (Atomic.fetch_and_add misses !my_misses);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  batches * config.pipeline

(* ---------------------------------------------------------------------- *)
(* Multi-server load: ring-routed client, one per connection.             *)
(* ---------------------------------------------------------------------- *)

(* Prefill through the ring so every key lands on its owning member. *)
let servers_prefill servers ~keyspace ~value_size =
  let client = Client.of_servers servers in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      for i = 0 to keyspace - 1 do
        let key = Rp_workload.Keygen.string_key i in
        ignore
          (Client.set client ~key ~data:(value_for ~size:value_size i) ())
      done)

let servers_worker servers config index ~stop ~hits ~misses =
  let client = Client.of_servers servers in
  let keygen =
    Rp_workload.Keygen.create ~dist:config.sdist ~keyspace:config.skeyspace
      ~seed:config.sseed ~worker:index ()
  in
  let my_hits = ref 0 and my_misses = ref 0 in
  (* [get_many] groups the batch by ring owner: one pipelined GET per
     member per round, which keeps the member fan-out of a real
     consistent-hash deployment while batching like [-P]. *)
  let one_batch () =
    let keys =
      List.init config.pipeline (fun _ ->
          Rp_workload.Keygen.string_key (Rp_workload.Keygen.next_key keygen))
    in
    let got = List.length (Client.get_many client keys) in
    my_hits := !my_hits + got;
    my_misses := !my_misses + (config.pipeline - got)
  in
  let batches = Rp_harness.Runner.loop_until_stop ~stop ~f:one_batch in
  ignore (Atomic.fetch_and_add hits !my_hits);
  ignore (Atomic.fetch_and_add misses !my_misses);
  Client.close client;
  batches * config.pipeline

let run_servers servers config =
  if servers = [] then invalid_arg "Mc_benchmark.run_servers: no servers";
  if config.connections < 1 then
    invalid_arg "Mc_benchmark.run_servers: connections < 1";
  if config.pipeline < 1 then
    invalid_arg "Mc_benchmark.run_servers: pipeline < 1";
  Io.ignore_sigpipe ();
  servers_prefill servers ~keyspace:config.skeyspace
    ~value_size:config.svalue_size;
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let workers =
    Array.init config.connections (fun i ~stop ->
        servers_worker servers config i ~stop ~hits ~misses)
  in
  let outcome = Rp_harness.Runner.run ~duration:config.sduration ~workers () in
  {
    requests = Rp_harness.Runner.total_ops outcome;
    elapsed = outcome.elapsed;
    requests_per_second = Rp_harness.Runner.throughput outcome;
    hits = Atomic.get hits;
    misses = Atomic.get misses;
  }

let run_socket addr config =
  if config.connections < 1 then
    invalid_arg "Mc_benchmark.run_socket: connections < 1";
  if config.pipeline < 1 then invalid_arg "Mc_benchmark.run_socket: pipeline < 1";
  Io.ignore_sigpipe ();
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let workers =
    Array.init config.connections (fun i ~stop ->
        socket_worker addr config i ~stop ~hits ~misses)
  in
  let outcome = Rp_harness.Runner.run ~duration:config.sduration ~workers () in
  {
    requests = Rp_harness.Runner.total_ops outcome;
    elapsed = outcome.elapsed;
    requests_per_second = Rp_harness.Runner.throughput outcome;
    hits = Atomic.get hits;
    misses = Atomic.get misses;
  }
