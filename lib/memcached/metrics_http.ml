(* Minimal HTTP/1.0 exposition endpoint. One thread per connection is
   fine — scrapers poll at second granularity. Routes:
     /metrics (or /)  Prometheus text
     /json            the registry as JSON
     /trace           the flight recorder as Chrome trace-event JSON
   anything else is a 404. *)

type t = {
  listen_fd : Unix.file_descr;
  accept_thread : Thread.t;
  running : bool Atomic.t;
  port : int;
}

let prometheus_type = "text/plain; version=0.0.4"
let json_type = "application/json"

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  try Io.write_all fd (head ^ body)
  with Unix.Unix_error _ | Io.Timeout | Rp_fault.Injected _ -> ()

(* The path from a "GET /path HTTP/1.x" request line, query string
   stripped. Anything unparseable routes like "/" (the scrape default). *)
let request_path data =
  match String.split_on_char ' ' data with
  | _meth :: target :: _ when String.length target > 0 && target.[0] = '/' ->
      (match String.index_opt target '?' with
      | Some q -> String.sub target 0 q
      | None -> target)
  | _ -> "/"

let serve registry fd =
  let buf = Bytes.create 4096 in
  let n =
    try Io.read fd buf with
    | Unix.Unix_error _ | End_of_file | Io.Timeout | Rp_fault.Injected _ -> 0
  in
  (match request_path (Bytes.sub_string buf 0 n) with
  | "/" | "/metrics" ->
      respond fd ~status:"200 OK" ~content_type:prometheus_type
        (Rp_obs.Registry.to_prometheus registry)
  | "/json" ->
      respond fd ~status:"200 OK" ~content_type:json_type
        (Rp_obs.Registry.to_json registry)
  | "/trace" ->
      respond fd ~status:"200 OK" ~content_type:json_type
        (Rp_trace.export_json ())
  | path ->
      respond fd ~status:"404 Not Found" ~content_type:"text/plain"
        (Printf.sprintf "no such endpoint: %s\n" path));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t registry =
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if not (Atomic.get t.running) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (fun () -> serve registry fd) ())
    | exception Unix.Unix_error _ -> ()
  done

let start ~registry port =
  Io.ignore_sigpipe ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 16;
  (* port 0 lets the OS pick; report the bound port for tests *)
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      listen_fd;
      accept_thread = Thread.self ();
      running = Atomic.make true;
      port;
    }
  in
  { t with accept_thread = Thread.create (fun () -> accept_loop t registry) () }

let port t = t.port

let stop t =
  Atomic.set t.running false;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread
