(* Minimal HTTP/1.0 exposition endpoint. One thread per connection is
   fine — scrapers poll at second granularity. Routes:
     /metrics (or /)  Prometheus text
     /json            the registry as JSON
     /trace           the flight recorder as Chrome trace-event JSON
     /heat            the workload-insight plane (heat provider attached)
   anything else is a 404. *)

type t = {
  listen_fd : Unix.file_descr;
  accept_thread : Thread.t;
  running : bool Atomic.t;
  port : int;
}

let prometheus_type = "text/plain; version=0.0.4"
let json_type = "application/json"

let respond fd ~status ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      status content_type (String.length body)
  in
  try Io.write_all fd (head ^ body)
  with Unix.Unix_error _ | Io.Timeout | Rp_fault.Injected _ -> ()

(* The (path, query) from a "GET /path?query HTTP/1.x" request line.
   Anything unparseable routes like "/" (the scrape default). *)
let request_target data =
  match String.split_on_char ' ' data with
  | _meth :: target :: _ when String.length target > 0 && target.[0] = '/' ->
      (match String.index_opt target '?' with
      | Some q ->
          ( String.sub target 0 q,
            Some (String.sub target (q + 1) (String.length target - q - 1)) )
      | None -> (target, None))
  | _ -> ("/", None)

(* /heat accepts a single [n=<positive int>] parameter (top-n cutoff).
   Anything else in the query is a client error — a malformed scrape
   config should answer 400, never 500 or a silently wrong document. *)
let heat_query query =
  match query with
  | None | Some "" -> Ok None
  | Some q ->
      List.fold_left
        (fun acc part ->
          match acc with
          | Error _ -> acc
          | Ok _ -> (
              match String.index_opt part '=' with
              | Some eq when String.sub part 0 eq = "n" -> (
                  let v =
                    String.sub part (eq + 1) (String.length part - eq - 1)
                  in
                  match int_of_string_opt v with
                  | Some n when n > 0 -> Ok (Some n)
                  | Some _ | None ->
                      Error (Printf.sprintf "bad n value: %s\n" v))
              | Some _ | None ->
                  Error (Printf.sprintf "unknown query parameter: %s\n" part)))
        (Ok None)
        (String.split_on_char '&' q)

let serve ?heat registry fd =
  let buf = Bytes.create 4096 in
  let n =
    try Io.read fd buf with
    | Unix.Unix_error _ | End_of_file | Io.Timeout | Rp_fault.Injected _ -> 0
  in
  let path, query = request_target (Bytes.sub_string buf 0 n) in
  (match path with
  | "/" | "/metrics" ->
      respond fd ~status:"200 OK" ~content_type:prometheus_type
        (Rp_obs.Registry.to_prometheus registry)
  | "/json" ->
      respond fd ~status:"200 OK" ~content_type:json_type
        (Rp_obs.Registry.to_json registry)
  | "/trace" ->
      respond fd ~status:"200 OK" ~content_type:json_type
        (Rp_trace.export_json ())
  | "/heat" -> (
      match heat with
      | None ->
          respond fd ~status:"404 Not Found" ~content_type:"text/plain"
            "no such endpoint: /heat\n"
      | Some f -> (
          match heat_query query with
          | Ok n -> respond fd ~status:"200 OK" ~content_type:json_type (f n)
          | Error msg ->
              respond fd ~status:"400 Bad Request" ~content_type:"text/plain"
                msg))
  | path ->
      respond fd ~status:"404 Not Found" ~content_type:"text/plain"
        (Printf.sprintf "no such endpoint: %s\n" path));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t ?heat registry =
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if not (Atomic.get t.running) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else ignore (Thread.create (fun () -> serve ?heat registry fd) ())
    | exception Unix.Unix_error _ -> ()
  done

let start ~registry ?heat port =
  Io.ignore_sigpipe ();
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen listen_fd 16;
  (* port 0 lets the OS pick; report the bound port for tests *)
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      listen_fd;
      accept_thread = Thread.self ();
      running = Atomic.make true;
      port;
    }
  in
  {
    t with
    accept_thread = Thread.create (fun () -> accept_loop t ?heat registry) ();
  }

let port t = t.port

let stop t =
  Atomic.set t.running false;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread
