(** memcached text protocol: requests, responses, and incremental codecs.

    Covers the commands the paper's workload exercises (get/set) plus the
    surrounding command set a real deployment would expect (gets/cas, add,
    replace, append, prepend, delete, incr/decr, touch, stats, flush_all,
    version, quit). Lines end in CRLF; storage commands carry a data block
    of an announced byte length. *)

type storage = {
  key : string;
  flags : int;
  exptime : int;  (** raw protocol value; the store interprets (0 = never) *)
  noreply : bool;
  data : string;
}

type request =
  | Get of string list
  | Gets of string list
  | Set of storage
  | Add of storage
  | Replace of storage
  | Append of storage
  | Prepend of storage
  | Cas of storage * int
  | Delete of { key : string; noreply : bool }
  | Incr of { key : string; delta : int; noreply : bool }
  | Decr of { key : string; delta : int; noreply : bool }
  | Touch of { key : string; exptime : int; noreply : bool }
  | Stats of string option
      (** [stats] or [stats <arg>]; the server understands [stats rp]
          (relativistic-stack metrics), [stats persist], [stats trace]
          (flight-recorder state), and [stats cluster] (replication
          role and watermarks) *)
  | Trace_dump of int option
      (** [trace dump [n]]: export the flight recorder's newest [n]
          events (all, when omitted) as Chrome trace-event JSON *)
  | Heat_dump of int option
      (** [heat dump [n]]: export the workload-insight plane — top [n]
          heavy hitters per sketch (all [k], when omitted), stripe
          heatmap, size histograms — as one JSON document *)
  | Cluster_promote
      (** [cluster promote]: a following replica stops replicating,
          clears read-only, and starts accepting mutations *)
  | Flush_all of { noreply : bool }
  | Version
  | Quit

type value = { vkey : string; vflags : int; vdata : string; vcas : int option }

type response =
  | Values of value list  (** rendered as VALUE lines + END *)
  | Stored
  | Not_stored
  | Exists
  | Not_found
  | Deleted
  | Touched
  | Ok_reply
  | Version_reply of string
  | Number of int
  | Stats_reply of (string * string) list
  | Trace_json of string
      (** [trace dump] reply: one line of trace-event JSON, then [END] *)
  | Client_error of string
  | Server_error of string
  | Error_reply

val encode_request : request -> string
val encode_response : response -> string

val encode_response_into : Buffer.t -> response -> unit
(** Render a response into a caller-owned buffer. The event-loop workers
    coalesce a whole pipelined batch this way — one reusable buffer, one
    socket write, no per-command response string. *)

val request_key_valid : string -> bool
(** memcached key rules: 1–250 bytes, no spaces or control characters. *)

(** Incremental request parser (server side). Feed raw bytes; pull complete
    requests. A malformed line yields [Error _] and the parser resynchronises
    at the next line. *)
module Parser : sig
  type t

  (** [create ?max_line ()] builds a parser. [max_line] (default 8192)
      bounds command-line buffering: a line that exceeds it — terminated
      or not — yields [Error "line too long"] exactly once, the
      oversized bytes are dropped without being buffered, and parsing
      resynchronises at the next CRLF. Data blocks of an announced
      length are not affected. *)
  val create : ?max_line:int -> unit -> t
  val feed : t -> string -> unit

  val next : t -> (request, string) result option
  (** [None] means more bytes are needed. *)

  val buffered_bytes : t -> int
end

(** Incremental response parser (client side). *)
module Response_parser : sig
  type t

  val create : unit -> t
  val feed : t -> string -> unit
  val next : t -> (response, string) result option
end
