exception Disconnected of string

type t = {
  addr : Server.address;
  retries : int;
  mutable fd : Unix.file_descr;
  mutable parser : Protocol.Response_parser.t;
  buf : Bytes.t;
}

let open_fd (addr : Server.address) =
  let domain, sockaddr =
    match addr with
    | Server.Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Server.Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let connect ?(retries = 0) (addr : Server.address) =
  Io.ignore_sigpipe ();
  {
    addr;
    retries;
    fd = open_fd addr;
    parser = Protocol.Response_parser.create ();
    buf = Bytes.create 16384;
  }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Any half-parsed response from the dead connection is garbage: the
   parser is replaced wholesale on reconnect. *)
let reconnect t =
  close t;
  t.parser <- Protocol.Response_parser.create ();
  t.fd <- open_fd t.addr

let rec read_response t =
  match Protocol.Response_parser.next t.parser with
  | Some (Ok response) -> response
  | Some (Error msg) -> failwith ("Memcached.Client: protocol error: " ^ msg)
  | None ->
      let n = Io.read t.fd t.buf in
      if n = 0 then raise (Disconnected "connection closed by server");
      Protocol.Response_parser.feed t.parser (Bytes.sub_string t.buf 0 n);
      read_response t

(* Connection-level failures worth a reconnect; protocol garbage is not. *)
let retryable = function
  | Disconnected _ -> true
  | Unix.Unix_error
      ( ( Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ECONNABORTED | Unix.EPIPE
        | Unix.ENOTCONN | Unix.ENOENT | Unix.EBADF ),
        _,
        _ ) ->
      true
  | _ -> false

let attempt_request t req =
  Io.write_all ~fault:"client.write.partial" t.fd (Protocol.encode_request req);
  read_response t

(* Retrying re-sends the request verbatim, so a non-idempotent command may
   execute twice when the failure hit after the server applied it — the
   standard at-least-once caveat of any reconnecting cache client. *)
let request t req =
  let backoff = Rp_sync.Backoff.create ~max_wait:256 () in
  let rec attempt n =
    match attempt_request t req with
    | response -> response
    | exception e when retryable e && n < t.retries ->
        Unix.sleepf (float_of_int (Rp_sync.Backoff.current backoff) *. 1e-4);
        Rp_sync.Backoff.once backoff;
        (try reconnect t with Unix.Unix_error _ -> ());
        attempt (n + 1)
  in
  attempt 0

let get t key =
  match request t (Protocol.Get [ key ]) with
  | Protocol.Values [ v ] -> Some v
  | Protocol.Values [] -> None
  | _ -> failwith "Memcached.Client.get: unexpected response"

let get_many t keys =
  match request t (Protocol.Get keys) with
  | Protocol.Values vs -> vs
  | _ -> failwith "Memcached.Client.get_many: unexpected response"

let gets t key =
  match request t (Protocol.Gets [ key ]) with
  | Protocol.Values [ v ] -> Some v
  | Protocol.Values [] -> None
  | _ -> failwith "Memcached.Client.gets: unexpected response"

let storage_request t build ?(flags = 0) ?(exptime = 0) ~key ~data () =
  let s : Protocol.storage = { key; flags; exptime; noreply = false; data } in
  match request t (build s) with
  | Protocol.Stored -> true
  | Protocol.Not_stored | Protocol.Exists | Protocol.Not_found -> false
  | _ -> failwith "Memcached.Client: unexpected storage response"

let set t = storage_request t (fun s -> Protocol.Set s)
let add t = storage_request t (fun s -> Protocol.Add s)

(* Overload-aware storage: surfaces guard shedding ([SERVER_ERROR
   overloaded]) as a value instead of an exception, so storm/bench
   workers can count sheds and carry on. *)
let try_set t ?(flags = 0) ?(exptime = 0) ~key ~data () =
  let s : Protocol.storage = { key; flags; exptime; noreply = false; data } in
  match request t (Protocol.Set s) with
  | Protocol.Stored -> `Stored
  | Protocol.Not_stored | Protocol.Exists | Protocol.Not_found -> `Not_stored
  | Protocol.Server_error msg -> `Overloaded msg
  | _ -> failwith "Memcached.Client.try_set: unexpected storage response"

let cas t ?(flags = 0) ?(exptime = 0) ~key ~data ~unique () =
  request t (Protocol.Cas ({ key; flags; exptime; noreply = false; data }, unique))

let delete t key =
  match request t (Protocol.Delete { key; noreply = false }) with
  | Protocol.Deleted -> true
  | Protocol.Not_found -> false
  | _ -> failwith "Memcached.Client.delete: unexpected response"

let counter t req =
  match request t req with
  | Protocol.Number n -> Some n
  | Protocol.Not_found -> None
  | Protocol.Client_error _ -> None
  | _ -> failwith "Memcached.Client: unexpected counter response"

let incr t key delta = counter t (Protocol.Incr { key; delta; noreply = false })
let decr t key delta = counter t (Protocol.Decr { key; delta; noreply = false })

let touch t ~key ~exptime =
  match request t (Protocol.Touch { key; exptime; noreply = false }) with
  | Protocol.Touched -> true
  | Protocol.Not_found -> false
  | _ -> failwith "Memcached.Client.touch: unexpected response"

let stats ?arg t =
  match request t (Protocol.Stats arg) with
  | Protocol.Stats_reply kvs -> kvs
  | _ -> failwith "Memcached.Client.stats: unexpected response"

let trace_dump ?max_events t =
  match request t (Protocol.Trace_dump max_events) with
  | Protocol.Trace_json json -> json
  | _ -> failwith "Memcached.Client.trace_dump: unexpected response"

let version t =
  match request t Protocol.Version with
  | Protocol.Version_reply v -> v
  | _ -> failwith "Memcached.Client.version: unexpected response"

let flush_all t =
  match request t (Protocol.Flush_all { noreply = false }) with
  | Protocol.Ok_reply -> ()
  | _ -> failwith "Memcached.Client.flush_all: unexpected response"
