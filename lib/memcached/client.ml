exception Disconnected of string

(* One connection endpoint. In single-server mode there is exactly one
   member and no ring; in multi-server mode ([of_servers]) each member
   is a ketama ring node with its own lazy connection, failure count,
   and ejection clock. *)
type member = {
  m_addr : Server.address;
  m_host : string;
  m_port : int;
  m_weight : int;
  mutable m_fd : Unix.file_descr option;
  mutable m_parser : Protocol.Response_parser.t;
  mutable m_fails : int; (* consecutive connection-level failures *)
  mutable m_ejected_until : float; (* 0. = live *)
}

type t = {
  retries : int;
  members : member array;
  ring : Rp_cluster.Ring.t option; (* None = single-server *)
  buf : Bytes.t;
  eject_after : int;
  rejoin_after : float;
  (* Cheap PRNG state for jittering rejoin probes, so a fleet of
     clients doesn't hammer a recovering member in lockstep. *)
  mutable jitter_state : int;
}

let make_member addr ~host ~port ~weight =
  {
    m_addr = addr;
    m_host = host;
    m_port = port;
    m_weight = weight;
    m_fd = None;
    m_parser = Protocol.Response_parser.create ();
    m_fails = 0;
    m_ejected_until = 0.;
  }

let open_fd (addr : Server.address) =
  let domain, sockaddr = Server.sockaddr_of addr in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd sockaddr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let close_member m =
  (match m.m_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  m.m_fd <- None

(* Any half-parsed response from a dead connection is garbage: the
   parser is replaced wholesale whenever the fd is (re)opened. *)
let ensure_fd m =
  match m.m_fd with
  | Some fd -> fd
  | None ->
      let fd = open_fd m.m_addr in
      m.m_parser <- Protocol.Response_parser.create ();
      m.m_fd <- Some fd;
      fd

let connect ?(retries = 0) (addr : Server.address) =
  Io.ignore_sigpipe ();
  let host, port =
    match addr with
    | Server.Tcp p -> ("127.0.0.1", p)
    | Server.Inet (h, p) -> (h, p)
    | Server.Unix_socket path -> (path, 0)
  in
  let m = make_member addr ~host ~port ~weight:1 in
  (* Single-server connect stays eager: callers expect a connection
     failure to surface here, not on the first request. *)
  ignore (ensure_fd m);
  {
    retries;
    members = [| m |];
    ring = None;
    buf = Bytes.create 16384;
    eject_after = 3;
    rejoin_after = 0.5;
    jitter_state = 0x9e3779b9;
  }

let of_servers ?retries ?(eject_after = 3) ?(rejoin_after = 0.5) servers =
  if servers = [] then invalid_arg "Client.of_servers: empty server list";
  let eject_after = max 1 eject_after in
  (* The default budget must cover a whole failover on one op: a dead
     member eats [eject_after] strikes before it leaves the ring, and
     only the attempt after that re-routes to the next live point. *)
  let retries = Option.value retries ~default:(eject_after + 1) in
  Io.ignore_sigpipe ();
  let members =
    Array.of_list
      (List.map
         (fun (host, port, weight) ->
           make_member (Server.Inet (host, port)) ~host ~port ~weight)
         servers)
  in
  let ring =
    Rp_cluster.Ring.create
      (List.map
         (fun (host, port, weight) -> { Rp_cluster.Ring.host; port; weight })
         servers)
  in
  {
    retries;
    members;
    ring = Some ring;
    buf = Bytes.create 16384;
    eject_after;
    rejoin_after;
    jitter_state = 0x9e3779b9;
  }

let close t = Array.iter close_member t.members

let servers t =
  Array.to_list (Array.map (fun m -> (m.m_host, m.m_port, m.m_weight)) t.members)

(* --- ejection / rejoin --- *)

let ejected m ~now = m.m_ejected_until > now

let live_members t =
  let now = Unix.gettimeofday () in
  Array.fold_left (fun n m -> if ejected m ~now then n else n + 1) 0 t.members

let next_jitter t =
  (* 48-bit LCG (java.util.Random constants) — fits OCaml's 63-bit int. *)
  t.jitter_state <-
    ((t.jitter_state * 0x5DEECE66D) + 0xB) land 0xFFFFFFFFFFFF;
  float_of_int ((t.jitter_state lsr 24) land 0xFFFFFF) /. 16777216.

let note_success m =
  m.m_fails <- 0;
  m.m_ejected_until <- 0.

(* A connection-level failure: drop the socket; after [eject_after]
   consecutive failures the member leaves the ring until a jittered
   rejoin deadline — at which point the next lookup that lands on it is
   the probe. Repeat failures stretch the deadline (capped), so a member
   that stays dead costs one probe per deadline, not per request. *)
let note_failure t m =
  close_member m;
  m.m_fails <- m.m_fails + 1;
  if m.m_fails >= t.eject_after then begin
    let over = min (m.m_fails - t.eject_after) 4 in
    let base = t.rejoin_after *. float_of_int (1 lsl over) in
    m.m_ejected_until <-
      Unix.gettimeofday () +. (base *. (1. +. next_jitter t))
  end

(* --- routing --- *)

let member_for t key =
  match t.ring with
  | None -> t.members.(0)
  | Some ring -> (
      let now = Unix.gettimeofday () in
      match
        Rp_cluster.Ring.lookup ring ~avoid:(fun i -> ejected t.members.(i) ~now) key
      with
      | Some i -> t.members.(i)
      | None -> (
          (* Everything is ejected: desperation probe at the key's true
             owner rather than failing without trying. *)
          match Rp_cluster.Ring.lookup ring key with
          | Some i -> t.members.(i)
          | None -> t.members.(0)))

(* First live member (admin requests with no key affinity). *)
let admin_member t =
  match t.ring with
  | None -> t.members.(0)
  | Some _ ->
      let now = Unix.gettimeofday () in
      let found = ref None in
      Array.iter
        (fun m -> if !found = None && not (ejected m ~now) then found := Some m)
        t.members;
      (match !found with Some m -> m | None -> t.members.(0))

(* --- request plumbing --- *)

let rec read_response t m =
  match Protocol.Response_parser.next m.m_parser with
  | Some (Ok response) -> response
  | Some (Error msg) -> failwith ("Memcached.Client: protocol error: " ^ msg)
  | None ->
      let fd =
        match m.m_fd with
        | Some fd -> fd
        | None -> raise (Disconnected "connection closed")
      in
      let n = Io.read fd t.buf in
      if n = 0 then raise (Disconnected "connection closed by server");
      Protocol.Response_parser.feed m.m_parser (Bytes.sub_string t.buf 0 n);
      read_response t m

(* Connection-level failures worth a reconnect; protocol garbage is not. *)
let retryable = function
  | Disconnected _ -> true
  | Unix.Unix_error
      ( ( Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ECONNABORTED | Unix.EPIPE
        | Unix.ENOTCONN | Unix.ENOENT | Unix.EBADF | Unix.ETIMEDOUT
        | Unix.EHOSTUNREACH ),
        _,
        _ ) ->
      true
  | _ -> false

let attempt_on t m req =
  let fd = ensure_fd m in
  Io.write_all ~fault:"client.write.partial" fd (Protocol.encode_request req);
  let r = read_response t m in
  note_success m;
  r

(* Retrying re-sends the request verbatim, so a non-idempotent command may
   execute twice when the failure hit after the server applied it — the
   standard at-least-once caveat of any reconnecting cache client. In
   multi-server mode each retry re-routes: a failure ejects the member
   (after [eject_after] strikes), so the key's ownership slides to the
   next live ring point and the retry becomes the failover. *)
let request_via pick t req =
  let backoff = Rp_sync.Backoff.create ~max_wait:256 () in
  let rec attempt n =
    let m = pick () in
    match attempt_on t m req with
    | response -> response
    | exception e when retryable e && n < t.retries ->
        note_failure t m;
        Unix.sleepf (float_of_int (Rp_sync.Backoff.current backoff) *. 1e-4);
        Rp_sync.Backoff.once backoff;
        attempt (n + 1)
    | exception e ->
        if retryable e then note_failure t m;
        raise e
  in
  attempt 0

let request t req = request_via (fun () -> admin_member t) t req
let request_for t key req = request_via (fun () -> member_for t key) t req

(* --- commands --- *)

let get t key =
  match request_for t key (Protocol.Get [ key ]) with
  | Protocol.Values [ v ] -> Some v
  | Protocol.Values [] -> None
  | _ -> failwith "Memcached.Client.get: unexpected response"

(* Multi-get groups keys by ring owner and issues one pipelinable Get
   per member; a group whose member fails over re-routes whole (by its
   first key), which at-least preserves one-request-per-group. Order of
   the returned values follows the per-group responses, not the request
   keys — same as memcached semantics (callers match on [vkey]). *)
let get_many t keys =
  let collect req =
    match request_for t (match keys with k :: _ -> k | [] -> "") req with
    | Protocol.Values vs -> vs
    | _ -> failwith "Memcached.Client.get_many: unexpected response"
  in
  match t.ring with
  | None -> if keys = [] then [] else collect (Protocol.Get keys)
  | Some _ ->
      let groups = Hashtbl.create 8 in
      List.iter
        (fun key ->
          let m = member_for t key in
          let cur = try Hashtbl.find groups m.m_host with Not_found -> [] in
          Hashtbl.replace groups
            m.m_host
            (* group label only; routing re-derives from the first key *)
            (key :: cur))
        keys;
      Hashtbl.fold
        (fun _ group acc ->
          let group = List.rev group in
          match
            request_for t (List.hd group) (Protocol.Get group)
          with
          | Protocol.Values vs -> vs @ acc
          | _ -> failwith "Memcached.Client.get_many: unexpected response")
        groups []

let gets t key =
  match request_for t key (Protocol.Gets [ key ]) with
  | Protocol.Values [ v ] -> Some v
  | Protocol.Values [] -> None
  | _ -> failwith "Memcached.Client.gets: unexpected response"

let storage_request t build ?(flags = 0) ?(exptime = 0) ~key ~data () =
  let s : Protocol.storage = { key; flags; exptime; noreply = false; data } in
  match request_for t key (build s) with
  | Protocol.Stored -> true
  | Protocol.Not_stored | Protocol.Exists | Protocol.Not_found -> false
  | _ -> failwith "Memcached.Client: unexpected storage response"

let set t = storage_request t (fun s -> Protocol.Set s)
let add t = storage_request t (fun s -> Protocol.Add s)

(* Overload-aware storage: surfaces guard shedding ([SERVER_ERROR
   overloaded]) as a value instead of an exception, so storm/bench
   workers can count sheds and carry on. *)
let try_set t ?(flags = 0) ?(exptime = 0) ~key ~data () =
  let s : Protocol.storage = { key; flags; exptime; noreply = false; data } in
  match request_for t key (Protocol.Set s) with
  | Protocol.Stored -> `Stored
  | Protocol.Not_stored | Protocol.Exists | Protocol.Not_found -> `Not_stored
  | Protocol.Server_error msg -> `Overloaded msg
  | _ -> failwith "Memcached.Client.try_set: unexpected storage response"

let cas t ?(flags = 0) ?(exptime = 0) ~key ~data ~unique () =
  request_for t key
    (Protocol.Cas ({ key; flags; exptime; noreply = false; data }, unique))

let delete t key =
  match request_for t key (Protocol.Delete { key; noreply = false }) with
  | Protocol.Deleted -> true
  | Protocol.Not_found -> false
  | _ -> failwith "Memcached.Client.delete: unexpected response"

let counter t key req =
  match request_for t key req with
  | Protocol.Number n -> Some n
  | Protocol.Not_found -> None
  | Protocol.Client_error _ -> None
  | _ -> failwith "Memcached.Client: unexpected counter response"

let incr t key delta =
  counter t key (Protocol.Incr { key; delta; noreply = false })

let decr t key delta =
  counter t key (Protocol.Decr { key; delta; noreply = false })

let touch t ~key ~exptime =
  match request_for t key (Protocol.Touch { key; exptime; noreply = false }) with
  | Protocol.Touched -> true
  | Protocol.Not_found -> false
  | _ -> failwith "Memcached.Client.touch: unexpected response"

let stats ?arg t =
  match request t (Protocol.Stats arg) with
  | Protocol.Stats_reply kvs -> kvs
  | _ -> failwith "Memcached.Client.stats: unexpected response"

let trace_dump ?max_events t =
  match request t (Protocol.Trace_dump max_events) with
  | Protocol.Trace_json json -> json
  | _ -> failwith "Memcached.Client.trace_dump: unexpected response"

let heat_dump ?n t =
  match request t (Protocol.Heat_dump n) with
  | Protocol.Trace_json json -> json
  | _ -> failwith "Memcached.Client.heat_dump: unexpected response"

let version t =
  match request t Protocol.Version with
  | Protocol.Version_reply v -> v
  | _ -> failwith "Memcached.Client.version: unexpected response"

let promote t =
  match request t Protocol.Cluster_promote with
  | Protocol.Ok_reply -> Ok ()
  | Protocol.Server_error msg -> Error msg
  | _ -> failwith "Memcached.Client.promote: unexpected response"

(* flush_all touches every member's keyspace: broadcast to each live
   member (ejected members are skipped — they will be flushed by their
   own operator story; a cache flush is advisory, not transactional). *)
let flush_all t =
  let now = Unix.gettimeofday () in
  Array.iter
    (fun m ->
      if not (ejected m ~now) then
        match request_via (fun () -> m) t (Protocol.Flush_all { noreply = false }) with
        | Protocol.Ok_reply -> ()
        | _ -> failwith "Memcached.Client.flush_all: unexpected response")
    t.members
