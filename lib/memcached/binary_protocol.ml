type opcode =
  | Get
  | Set
  | Add
  | Replace
  | Delete
  | Increment
  | Decrement
  | Quit
  | Flush
  | GetQ
  | Noop
  | Version
  | GetK
  | GetKQ
  | Append
  | Prepend
  | Stat
  | Touch
  | GAT
  | GATQ

let opcode_to_byte = function
  | Get -> 0x00
  | Set -> 0x01
  | Add -> 0x02
  | Replace -> 0x03
  | Delete -> 0x04
  | Increment -> 0x05
  | Decrement -> 0x06
  | Quit -> 0x07
  | Flush -> 0x08
  | GetQ -> 0x09
  | Noop -> 0x0a
  | Version -> 0x0b
  | GetK -> 0x0c
  | GetKQ -> 0x0d
  | Append -> 0x0e
  | Prepend -> 0x0f
  | Stat -> 0x10
  | Touch -> 0x1c
  | GAT -> 0x1d
  | GATQ -> 0x1e

let opcode_of_byte = function
  | 0x00 -> Some Get
  | 0x01 -> Some Set
  | 0x02 -> Some Add
  | 0x03 -> Some Replace
  | 0x04 -> Some Delete
  | 0x05 -> Some Increment
  | 0x06 -> Some Decrement
  | 0x07 -> Some Quit
  | 0x08 -> Some Flush
  | 0x09 -> Some GetQ
  | 0x0a -> Some Noop
  | 0x0b -> Some Version
  | 0x0c -> Some GetK
  | 0x0d -> Some GetKQ
  | 0x0e -> Some Append
  | 0x0f -> Some Prepend
  | 0x10 -> Some Stat
  | 0x1c -> Some Touch
  | 0x1d -> Some GAT
  | 0x1e -> Some GATQ
  | _ -> None

let opcode_is_quiet = function GetQ | GetKQ | GATQ -> true | _ -> false

type status =
  | Ok_status
  | Key_not_found
  | Key_exists
  | Value_too_large
  | Invalid_arguments
  | Item_not_stored
  | Non_numeric_value
  | Busy  (** 0x0085 — mutation shed by the overload guard *)
  | Read_only  (** 0x0086 — mutation refused by a following replica *)
  | Unknown_command

let status_to_int = function
  | Ok_status -> 0x0000
  | Key_not_found -> 0x0001
  | Key_exists -> 0x0002
  | Value_too_large -> 0x0003
  | Invalid_arguments -> 0x0004
  | Item_not_stored -> 0x0005
  | Non_numeric_value -> 0x0006
  | Busy -> 0x0085
  | Read_only -> 0x0086
  | Unknown_command -> 0x0081

let status_of_int = function
  | 0x0000 -> Ok_status
  | 0x0001 -> Key_not_found
  | 0x0002 -> Key_exists
  | 0x0003 -> Value_too_large
  | 0x0004 -> Invalid_arguments
  | 0x0005 -> Item_not_stored
  | 0x0006 -> Non_numeric_value
  | 0x0085 -> Busy
  | 0x0086 -> Read_only
  | _ -> Unknown_command

type request = {
  opcode : opcode;
  key : string;
  value : string;
  extras : string;
  opaque : int;
  cas : int;
}

type response = {
  r_opcode : opcode;
  status : status;
  r_key : string;
  r_value : string;
  r_extras : string;
  r_opaque : int;
  r_cas : int;
}

let magic_request = 0x80
let magic_response = 0x81
let magic_request_byte = '\x80'
let header_size = 24

(* --- big-endian integer plumbing --- *)

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 1) (Char.chr (v land 0xff))

let put_u32 b off v =
  put_u16 b off ((v lsr 16) land 0xffff);
  put_u16 b (off + 2) (v land 0xffff)

let put_u64 b off v =
  (* OCaml ints are 63-bit; the top wire byte carries bits 56..62. *)
  put_u32 b off ((v lsr 32) land 0xffffffff);
  put_u32 b (off + 4) (v land 0xffffffff)

let get_u8 s off = Char.code s.[off]
let get_u16 s off = (get_u8 s off lsl 8) lor get_u8 s (off + 1)
let get_u32 s off = (get_u16 s off lsl 16) lor get_u16 s (off + 2)

let get_u64 s off =
  (* Mask to 62 bits to stay within OCaml int range. *)
  ((get_u32 s off land 0x3fffffff) lsl 32) lor get_u32 s (off + 4)

let parse_u32 = get_u32
let parse_u64 = get_u64

(* --- extras helpers --- *)

let set_extras ~flags ~exptime =
  let b = Bytes.create 8 in
  put_u32 b 0 flags;
  put_u32 b 4 exptime;
  Bytes.to_string b

let get_response_extras ~flags =
  let b = Bytes.create 4 in
  put_u32 b 0 flags;
  Bytes.to_string b

let counter_extras ~delta ~initial ~exptime =
  let b = Bytes.create 20 in
  put_u64 b 0 delta;
  put_u64 b 8 initial;
  put_u32 b 16 exptime;
  Bytes.to_string b

let u64_bytes v =
  let b = Bytes.create 8 in
  put_u64 b 0 v;
  Bytes.to_string b

let touch_extras ~exptime =
  let b = Bytes.create 4 in
  put_u32 b 0 exptime;
  Bytes.to_string b

(* --- frame encoding --- *)

let encode ~magic ~opcode ~status_or_vbucket ~key ~extras ~value ~opaque ~cas =
  let key_len = String.length key in
  let extras_len = String.length extras in
  let body_len = key_len + extras_len + String.length value in
  let b = Bytes.create (header_size + body_len) in
  Bytes.set b 0 (Char.chr magic);
  Bytes.set b 1 (Char.chr (opcode_to_byte opcode));
  put_u16 b 2 key_len;
  Bytes.set b 4 (Char.chr extras_len);
  Bytes.set b 5 '\x00' (* data type *);
  put_u16 b 6 status_or_vbucket;
  put_u32 b 8 body_len;
  put_u32 b 12 opaque;
  put_u64 b 16 cas;
  Bytes.blit_string extras 0 b header_size extras_len;
  Bytes.blit_string key 0 b (header_size + extras_len) key_len;
  Bytes.blit_string value 0 b
    (header_size + extras_len + key_len)
    (String.length value);
  Bytes.to_string b

let encode_request (r : request) =
  encode ~magic:magic_request ~opcode:r.opcode ~status_or_vbucket:0 ~key:r.key
    ~extras:r.extras ~value:r.value ~opaque:r.opaque ~cas:r.cas

let encode_response (r : response) =
  encode ~magic:magic_response ~opcode:r.r_opcode
    ~status_or_vbucket:(status_to_int r.status) ~key:r.r_key ~extras:r.r_extras
    ~value:r.r_value ~opaque:r.r_opaque ~cas:r.r_cas

(* Buffer-native frame rendering: the event-loop workers coalesce every
   response of a pipelined batch into one caller-owned buffer without
   allocating a frame string per response. *)
let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_u32 buf v =
  add_u16 buf ((v lsr 16) land 0xffff);
  add_u16 buf (v land 0xffff)

let add_u64 buf v =
  add_u32 buf ((v lsr 32) land 0xffffffff);
  add_u32 buf (v land 0xffffffff)

let encode_response_into buf (r : response) =
  let key_len = String.length r.r_key in
  let extras_len = String.length r.r_extras in
  let body_len = key_len + extras_len + String.length r.r_value in
  Buffer.add_char buf (Char.chr magic_response);
  Buffer.add_char buf (Char.chr (opcode_to_byte r.r_opcode));
  add_u16 buf key_len;
  Buffer.add_char buf (Char.chr extras_len);
  Buffer.add_char buf '\x00' (* data type *);
  add_u16 buf (status_to_int r.status);
  add_u32 buf body_len;
  add_u32 buf r.r_opaque;
  add_u64 buf r.r_cas;
  Buffer.add_string buf r.r_extras;
  Buffer.add_string buf r.r_key;
  Buffer.add_string buf r.r_value

(* --- incremental frame decoding --- *)

module Frame = struct
  (* Accumulates bytes; yields (header, body) frames. *)
  type t = { mutable data : string; mutable pos : int }

  let create () = { data = ""; pos = 0 }

  let feed t s =
    if t.pos > 0 && t.pos = String.length t.data then begin
      t.data <- s;
      t.pos <- 0
    end
    else if s <> "" then begin
      if t.pos > 4096 then begin
        t.data <- String.sub t.data t.pos (String.length t.data - t.pos);
        t.pos <- 0
      end;
      t.data <- t.data ^ s
    end

  let available t = String.length t.data - t.pos

  (* Returns (header_offset_string, body) without copying the header. *)
  let next_frame t ~expected_magic =
    if available t < header_size then None
    else begin
      let base = t.pos in
      let magic = get_u8 t.data base in
      if magic <> expected_magic then
        Some (Error (Printf.sprintf "bad magic 0x%02x" magic))
      else begin
        let key_len = get_u16 t.data (base + 2) in
        let extras_len = get_u8 t.data (base + 4) in
        let body_len = get_u32 t.data (base + 8) in
        if extras_len + key_len > body_len then Some (Error "inconsistent lengths")
        else if available t < header_size + body_len then None
        else begin
          let header = String.sub t.data base header_size in
          let body = String.sub t.data (base + header_size) body_len in
          t.pos <- base + header_size + body_len;
          Some (Ok (header, body))
        end
      end
    end
end

let split_body header body =
  let key_len = get_u16 header 2 in
  let extras_len = get_u8 header 4 in
  let extras = String.sub body 0 extras_len in
  let key = String.sub body extras_len key_len in
  let value =
    String.sub body (extras_len + key_len) (String.length body - extras_len - key_len)
  in
  (extras, key, value)

module Parser = struct
  type t = Frame.t

  let create () = Frame.create ()
  let feed = Frame.feed

  let next t =
    match Frame.next_frame t ~expected_magic:magic_request with
    | None -> None
    | Some (Error e) -> Some (Error e)
    | Some (Ok (header, body)) -> (
        match opcode_of_byte (get_u8 header 1) with
        | None -> Some (Error (Printf.sprintf "unknown opcode 0x%02x" (get_u8 header 1)))
        | Some opcode ->
            let extras, key, value = split_body header body in
            Some
              (Ok
                 {
                   opcode;
                   key;
                   value;
                   extras;
                   opaque = get_u32 header 12;
                   cas = get_u64 header 16;
                 }))
end

module Response_parser = struct
  type t = Frame.t

  let create () = Frame.create ()
  let feed = Frame.feed

  let next t =
    match Frame.next_frame t ~expected_magic:magic_response with
    | None -> None
    | Some (Error e) -> Some (Error e)
    | Some (Ok (header, body)) -> (
        match opcode_of_byte (get_u8 header 1) with
        | None -> Some (Error (Printf.sprintf "unknown opcode 0x%02x" (get_u8 header 1)))
        | Some r_opcode ->
            let r_extras, r_key, r_value = split_body header body in
            Some
              (Ok
                 {
                   r_opcode;
                   status = status_of_int (get_u16 header 6);
                   r_key;
                   r_value;
                   r_extras;
                   r_opaque = get_u32 header 12;
                   r_cas = get_u64 header 16;
                 }))
end
