(** Wires the generic {!Rp_guard} degradation ladder into this stack.

    {!install} creates the guard, feeds it the store-level pressure
    sources, registers its actuators, and attaches it to the store (so
    {!Dispatch}/{!Binary_server} start consulting it). {!watch_server}
    and {!watch_persist} add the sources that need those subsystems.
    Call in startup order — install, attach persistence, start the
    server, watch both — then {!Rp_guard.start} the sweeper. *)

val install :
  ?watermarks:Rp_guard.watermarks ->
  ?interval:float ->
  ?stall_window:float ->
  Store.t ->
  Rp_guard.t
(** Create a guard and attach it to [store]:
    - ["mem"] source — [Store.bytes / Store.max_bytes];
    - ["rcu"] source — Shed-level pressure while the RCU stall watchdog's
      counter has moved within [stall_window] seconds (default 1);
    - adaptive trace sampling — head-sample 16x more often (1-in-N/16)
      whenever the ladder leaves [Healthy];
    - Emergency actuator — an immediate {!Store.evict_to_budget} sweep;
    - [guard_*] instruments in the store registry.

    The sweeper is {e not} started; call {!Rp_guard.start} once all
    sources are wired. *)

val watch_server : Rp_guard.t -> Server.t -> unit
(** Add the ["conns"] admission source: live connections over the
    server's admission capacity. *)

val watch_persist :
  Rp_guard.t -> ?error_window:float -> ?log_budget_mb:int -> Persist.t -> unit
(** Add the ["disk"] source — Emergency-latch pressure (2.0) while an
    op-log append has failed within [error_window] seconds (default 1),
    plus op-log growth against [log_budget_mb] (0 = ignore growth) — and
    the Emergency actuators: pause periodic snapshots and relax
    [fsync Always] to group commit ([Every 0.1]) until the ladder leaves
    [Emergency]. *)
