(* Glue between Rp_tier.Cold_store and the store's tier hooks: demote /
   read / mark-dead plumbing, the background copying compactor, the
   guard's cold-tier pressure source, and the tier_* instruments. *)

let k_compact = Rp_trace.intern "tier.compact"

type t = {
  store : Store.t;
  cold : Rp_tier.Cold_store.t;
  max_bytes : int;
  min_dead_ratio : float;
  interval : float;
  paused : bool Atomic.t;
  compacting : bool Atomic.t;  (* single-flights compact_once *)
  stop_flag : bool Atomic.t;
  compactions : int Atomic.t;
  compact_copied : int Atomic.t;
  demote_failures : Rp_obs.Counter.t;
  mutable recovery_dropped : int;
  mutable domain : unit Domain.t option;
}

let cold_store t = t.cold
let compactions t = Atomic.get t.compactions
let paused t = Atomic.get t.paused

(* Copy one segment's still-live records to the head. Each record is
   re-checked against the table (tier_location) before the copy and
   re-verified under the key's stripe inside tier_relocate — a record
   promoted or deleted mid-pass is simply skipped. A copy that fails
   (budget full, injected fault) leaves the record where it is; the
   segment then stays until a later pass. *)
let compact_segment t gen =
  let copied = ref 0 in
  List.iter
    (fun (loc, key, data) ->
      let from_ = (loc.Rp_tier.segment, loc.Rp_tier.offset, loc.Rp_tier.len) in
      if Store.tier_location t.store key = Some from_ then begin
        let relocate () =
          match Rp_tier.Cold_store.append t.cold ~key ~data with
          | Ok l -> Some (l.Rp_tier.segment, l.Rp_tier.offset, l.Rp_tier.len)
          | Error _ -> None
        in
        if Store.tier_relocate t.store ~key ~from_ ~relocate then begin
          (* The marker now points at the copy; the old frame is ours to
             retire. A fully-dead sealed segment auto-drops here. *)
          Rp_tier.Cold_store.mark_dead t.cold loc;
          incr copied
        end
      end)
    (Rp_tier.Cold_store.segment_entries t.cold gen);
  !copied

let compact_once t =
  if Atomic.get t.paused then false
  else if not (Atomic.compare_and_set t.compacting false true) then false
  else
    Fun.protect
      ~finally:(fun () -> Atomic.set t.compacting false)
      (fun () ->
        match
          Rp_tier.Cold_store.compact_candidate t.cold
            ~min_dead_ratio:t.min_dead_ratio
        with
        | None -> false
        | Some gen ->
            Rp_trace.with_span ~arg:gen k_compact (fun () ->
                let copied = compact_segment t gen in
                Atomic.incr t.compactions;
                ignore (Atomic.fetch_and_add t.compact_copied copied);
                true))

let compactor_loop t =
  (* Idle backoff: every pass that found no candidate doubles the doze,
     capped at max(interval, 1s), so an idle tier doesn't wake the domain
     every interval forever; any pass that compacted resets it. *)
  let idle = ref 0 in
  while not (Atomic.get t.stop_flag) do
    let worked = try compact_once t with _ -> false in
    if worked then idle := 0 else if !idle < 5 then incr idle;
    (* QSBR discipline: this domain reads the table in compact_segment;
       go offline before blocking so grace periods don't wait on us. *)
    Store.reader_offline t.store;
    (* Sleep in slices so [stop] never waits out a long interval. The
       deadline is pure wall-clock sleep bookkeeping, not cache time, so
       it stays on the real clock rather than the store's injected one. *)
    let pause =
      Float.min
        (t.interval *. float_of_int (1 lsl !idle))
        (Float.max t.interval 1.0)
    in
    let deadline = Unix.gettimeofday () +. pause in
    let rec doze () =
      if not (Atomic.get t.stop_flag) then begin
        let left = deadline -. Unix.gettimeofday () in
        if left > 0. then begin
          Unix.sleepf (Float.min left 0.05);
          doze ()
        end
      end
    in
    doze ()
  done

let stats_kv t () =
  [
    ("tier_mode", "demote");
    ("tier_dir", Rp_tier.Cold_store.dir t.cold);
    ("tier_max_bytes", string_of_int t.max_bytes);
    ("tier_recovery_dropped_segments", string_of_int t.recovery_dropped);
  ]

let register_instruments t reg =
  let g name help f = Rp_obs.Registry.gauge reg ~help name f in
  g "tier_bytes" "cold-tier bytes on disk (live + dead)" (fun () ->
      float_of_int (Rp_tier.Cold_store.total_bytes t.cold));
  g "tier_live_bytes" "cold-tier bytes still referenced by a marker"
    (fun () -> float_of_int (Rp_tier.Cold_store.live_bytes t.cold));
  g "tier_segments" "cold-tier segment files" (fun () ->
      float_of_int (Rp_tier.Cold_store.segment_count t.cold));
  g "tier_paused" "1 while Emergency has compaction/demotion paused"
    (fun () -> if Atomic.get t.paused then 1. else 0.);
  Rp_obs.Registry.fn_counter reg
    ~help:"copying-compaction passes completed" "tier_compactions_total"
    (fun () -> float_of_int (Atomic.get t.compactions));
  Rp_obs.Registry.fn_counter reg
    ~help:"records copied to the head segment by compaction"
    "tier_compact_copied_total" (fun () ->
      float_of_int (Atomic.get t.compact_copied))

let attach ?(min_dead_ratio = 0.5) ?(compact_interval = 0.05) ?segment_bytes
    ~dir ~max_mb store =
  let max_bytes = max_mb * 1024 * 1024 in
  match Rp_tier.Cold_store.open_ ?segment_bytes ~dir ~max_bytes () with
  | Error e -> Error e
  | Ok cold ->
      let reg = Store.registry store in
      let t =
        {
          store;
          cold;
          max_bytes;
          min_dead_ratio;
          interval = compact_interval;
          paused = Atomic.make false;
          compacting = Atomic.make false;
          stop_flag = Atomic.make false;
          compactions = Atomic.make 0;
          compact_copied = Atomic.make 0;
          demote_failures =
            Rp_obs.Registry.counter reg
              ~help:"demotions abandoned (tier full or append failure)"
              "tier_demote_failures_total";
          recovery_dropped = 0;
          domain = None;
        }
      in
      let th_demote key data =
        match Rp_tier.Cold_store.append cold ~key ~data with
        | Ok l -> Some (l.Rp_tier.segment, l.Rp_tier.offset, l.Rp_tier.len)
        | Error _ ->
            Rp_obs.Counter.incr t.demote_failures;
            None
      in
      let th_read (segment, offset, len) =
        match Rp_tier.Cold_store.read cold { Rp_tier.segment; offset; len } with
        | Ok kv -> Ok kv
        | Error Rp_tier.Gone -> Error Store.Tier_gone
        | Error Rp_tier.Torn -> Error Store.Tier_torn
      in
      let th_mark_dead (segment, offset, len) =
        Rp_tier.Cold_store.mark_dead cold { Rp_tier.segment; offset; len }
      in
      let th_admit () = not (Atomic.get t.paused) in
      Store.set_tier store
        (Some { Store.th_demote; th_read; th_mark_dead; th_admit });
      Store.set_tier_info store (Some (stats_kv t));
      register_instruments t reg;
      (match Store.guard store with
      | None -> ()
      | Some guard ->
          Rp_guard.add_source guard ~name:"tier" (fun () ->
              float_of_int (Rp_tier.Cold_store.total_bytes cold)
              /. float_of_int max_bytes);
          (* Emergency pauses compaction and sheds demotions; cold reads
             keep flowing. Reverts as soon as the ladder descends. *)
          Rp_guard.on_transition guard (fun _old next ->
              Atomic.set t.paused (next = Rp_guard.Emergency)));
      t.domain <- Some (Domain.spawn (fun () -> compactor_loop t));
      Ok t

let finish_recovery t =
  let is_live key (loc : Rp_tier.location) =
    Store.tier_location t.store key
    = Some (loc.segment, loc.offset, loc.len)
  in
  let dropped = Rp_tier.Cold_store.finish_recovery t.cold ~is_live in
  t.recovery_dropped <- dropped;
  dropped

let stop t =
  Atomic.set t.stop_flag true;
  (match t.domain with
  | Some d ->
      Domain.join d;
      t.domain <- None
  | None -> ());
  Store.set_tier t.store None;
  Store.set_tier_info t.store None;
  Rp_tier.Cold_store.close t.cold
