(** Fail-fast validation of the directories named on the command line
    ([--data-dir], [--tier-dir]) {e before} any subsystem attaches — a
    typo'd or read-only path should be one clear startup error naming the
    flag, not a crash buried in the first demotion or log append. *)

val validate : flag:string -> string -> (unit, string) result
(** Ensure [path] is (or can become) a writable directory: create it if
    missing (like the subsystems themselves would), then probe-write and
    remove a temp file inside it. The error message names [flag]. *)
