(** Observability endpoint: a minimal HTTP/1.0 server routing
    - [/] and [/metrics] to {!Rp_obs.Registry.to_prometheus} of the
      registry it was started with (text exposition format 0.0.4,
      [text/plain; version=0.0.4]);
    - [/json] to {!Rp_obs.Registry.to_json} ([application/json]);
    - [/trace] to {!Rp_trace.export_json} — the flight recorder as
      Chrome trace-event / Perfetto JSON ([application/json]);
    - anything else to a 404.
    Backs the memcached server binary's [--metrics-port] flag. *)

type t

val start : registry:Rp_obs.Registry.t -> int -> t
(** [start ~registry port] binds [127.0.0.1:port] ([0] = OS-assigned; see
    {!port}) and serves scrapes on a background thread. *)

val port : t -> int
(** The bound port (useful with [start ~registry 0]). *)

val stop : t -> unit
