(** Prometheus scrape endpoint: a minimal HTTP/1.0 server that answers
    every request with {!Rp_obs.Registry.to_prometheus} of the registry it
    was started with (text exposition format 0.0.4). Backs the memcached
    server binary's [--metrics-port] flag. *)

type t

val start : registry:Rp_obs.Registry.t -> int -> t
(** [start ~registry port] binds [127.0.0.1:port] ([0] = OS-assigned; see
    {!port}) and serves scrapes on a background thread. *)

val port : t -> int
(** The bound port (useful with [start ~registry 0]). *)

val stop : t -> unit
