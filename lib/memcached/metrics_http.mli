(** Observability endpoint: a minimal HTTP/1.0 server routing
    - [/] and [/metrics] to {!Rp_obs.Registry.to_prometheus} of the
      registry it was started with (text exposition format 0.0.4,
      [text/plain; version=0.0.4]);
    - [/json] to {!Rp_obs.Registry.to_json} ([application/json]);
    - [/trace] to {!Rp_trace.export_json} — the flight recorder as
      Chrome trace-event / Perfetto JSON ([application/json]);
    - [/heat] to the workload-insight provider passed at {!start}
      ([application/json]; accepts [?n=<positive int>] to bound the
      top-k, answers 400 on any other query string, 404 when no
      provider is attached);
    - anything else to a 404.
    Backs the memcached server binary's [--metrics-port] flag. *)

type t

val start :
  registry:Rp_obs.Registry.t -> ?heat:(int option -> string) -> int -> t
(** [start ~registry port] binds [127.0.0.1:port] ([0] = OS-assigned; see
    {!port}) and serves scrapes on a background thread. [heat] renders
    the [/heat] JSON document for a parsed [n] cutoff (typically
    [fun n -> Store.heat_json ?n store]). *)

val port : t -> int
(** The bound port (useful with [start ~registry 0]). *)

val stop : t -> unit
