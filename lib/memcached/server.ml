let version_string = Version.string

let stored_reply : Store.stored_result -> Protocol.response = function
  | Store.Stored -> Protocol.Stored
  | Store.Not_stored -> Protocol.Not_stored
  | Store.Exists -> Protocol.Exists
  | Store.Not_found -> Protocol.Not_found
  | Store.Too_large -> Protocol.Server_error "object too large for cache"

let handle store (request : Protocol.request) : Protocol.response option =
  match request with
  | Protocol.Get keys -> Some (Protocol.Values (Store.get_many store keys))
  | Protocol.Gets keys ->
      Some (Protocol.Values (Store.get_many store ~with_cas:true keys))
  | Protocol.Set { key; flags; exptime; noreply; data } ->
      let r = Store.set store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Add { key; flags; exptime; noreply; data } ->
      let r = Store.add store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Replace { key; flags; exptime; noreply; data } ->
      let r = Store.replace store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Append { key; noreply; data; _ } ->
      let r = Store.append store ~key ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Prepend { key; noreply; data; _ } ->
      let r = Store.prepend store ~key ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Cas ({ key; flags; exptime; noreply; data }, unique) ->
      let r = Store.cas store ~key ~flags ~exptime ~data ~unique in
      if noreply then None else Some (stored_reply r)
  | Protocol.Delete { key; noreply } ->
      let r = if Store.delete store key then Protocol.Deleted else Protocol.Not_found in
      if noreply then None else Some r
  | Protocol.Incr { key; delta; noreply } -> (
      match Store.incr store key delta with
      | Store.Cvalue n -> if noreply then None else Some (Protocol.Number n)
      | Store.Cnotfound -> if noreply then None else Some Protocol.Not_found
      | Store.Cnon_numeric ->
          if noreply then None
          else
            Some
              (Protocol.Client_error
                 "cannot increment or decrement non-numeric value"))
  | Protocol.Decr { key; delta; noreply } -> (
      match Store.decr store key delta with
      | Store.Cvalue n -> if noreply then None else Some (Protocol.Number n)
      | Store.Cnotfound -> if noreply then None else Some Protocol.Not_found
      | Store.Cnon_numeric ->
          if noreply then None
          else
            Some
              (Protocol.Client_error
                 "cannot increment or decrement non-numeric value"))
  | Protocol.Touch { key; exptime; noreply } ->
      let r =
        if Store.touch store ~key ~exptime then Protocol.Touched
        else Protocol.Not_found
      in
      if noreply then None else Some r
  | Protocol.Stats None -> Some (Protocol.Stats_reply (Store.stats store))
  | Protocol.Stats (Some "rp") ->
      Some (Protocol.Stats_reply (Store.rp_stats store))
  | Protocol.Stats (Some arg) ->
      Some (Protocol.Client_error ("unknown stats argument: " ^ arg))
  | Protocol.Flush_all { noreply } ->
      Store.flush_all store;
      if noreply then None else Some Protocol.Ok_reply
  | Protocol.Version -> Some (Protocol.Version_reply version_string)
  | Protocol.Quit -> None

type address = Unix_socket of string | Tcp of int

type config = {
  max_connections : int;
  idle_timeout : float;
  write_timeout : float;
}

let default_config =
  { max_connections = 1024; idle_timeout = 0.0; write_timeout = 30.0 }

type t = {
  addr : address;
  config : config;
  listen_fd : Unix.file_descr;
  accept_thread : Thread.t;
  running : bool Atomic.t;
  (* Live connections, keyed by a private id. The accept loop registers
     entries; each connection thread removes (and closes) its own under
     the same mutex, so [stop] can shutdown every live fd without racing
     a close-then-reuse. *)
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_mutex : Mutex.t;
  accepted : int Atomic.t;
  rejected : int Atomic.t;
}

let send config fd s =
  let deadline =
    if config.write_timeout > 0.0 then
      Some (Unix.gettimeofday () +. config.write_timeout)
    else None
  in
  Io.write_all ~fault:"server.write.partial" ?deadline fd s

let recv config fd buf =
  Rp_fault.point "server.conn.reset";
  let timeout =
    if config.idle_timeout > 0.0 then Some config.idle_timeout else None
  in
  Io.read ~fault:"server.read.split" ?timeout fd buf

let serve_text config store fd buf ~initial =
  let parser = Protocol.Parser.create () in
  Protocol.Parser.feed parser initial;
  let closing = ref false in
  let drain () =
    let rec go () =
      match Protocol.Parser.next parser with
      | None -> ()
      | Some (Error msg) ->
          let reply =
            if msg = "ERROR" then Protocol.Error_reply
            else Protocol.Client_error msg
          in
          send config fd (Protocol.encode_response reply);
          go ()
      | Some (Ok Protocol.Quit) -> closing := true
      | Some (Ok request) ->
          (match handle store request with
          | Some response -> send config fd (Protocol.encode_response response)
          | None -> ());
          go ()
    in
    go ()
  in
  drain ();
  while not !closing do
    let n = recv config fd buf in
    if n = 0 then closing := true
    else begin
      Protocol.Parser.feed parser (Bytes.sub_string buf 0 n);
      drain ()
    end
  done

let serve_binary config store fd buf ~initial =
  let parser = Binary_protocol.Parser.create () in
  Binary_protocol.Parser.feed parser initial;
  let closing = ref false in
  let drain () =
    let rec go () =
      match Binary_protocol.Parser.next parser with
      | None -> ()
      | Some (Error _) ->
          (* Binary framing errors are unrecoverable: drop the connection,
             as stock memcached does. *)
          closing := true
      | Some (Ok request) ->
          List.iter
            (fun response ->
              send config fd (Binary_protocol.encode_response response))
            (Binary_server.handle store request);
          if Binary_server.quit_requested request then closing := true else go ()
    in
    go ()
  in
  drain ();
  while not !closing do
    let n = recv config fd buf in
    if n = 0 then closing := true
    else begin
      Binary_protocol.Parser.feed parser (Bytes.sub_string buf 0 n);
      drain ()
    end
  done

(* Protocol auto-detection, as in stock memcached: the first byte of a
   connection decides (0x80 = binary request magic, anything else = text).
   An idle timeout, an injected tear, or any socket error closes the
   connection; the fd itself is closed by the registry cleanup in
   [spawn_connection]. *)
let serve_connection config store fd =
  let buf = Bytes.create 16384 in
  try
    let n = recv config fd buf in
    if n > 0 then begin
      let initial = Bytes.sub_string buf 0 n in
      if initial.[0] = Binary_protocol.magic_request_byte then
        serve_binary config store fd buf ~initial
      else serve_text config store fd buf ~initial
    end
  with
  | Unix.Unix_error _ | End_of_file | Io.Timeout -> ()
  | Rp_fault.Injected _ -> ()

let reject fd =
  (try
     Io.write_all fd
       (Protocol.encode_response (Protocol.Server_error "too many connections"))
   with Unix.Unix_error _ | Rp_fault.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let spawn_connection t store id fd =
  Atomic.incr t.accepted;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:id "server.conn.accept";
  (* Hold [ready] until the registry entry exists, so the thread's cleanup
     can never run before its registration. *)
  let ready = Mutex.create () in
  Mutex.lock ready;
  let thread =
    Thread.create
      (fun () ->
        Mutex.lock ready;
        Mutex.unlock ready;
        serve_connection t.config store fd;
        Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:id "server.conn.drop";
        Mutex.lock t.conns_mutex;
        Hashtbl.remove t.conns id;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Mutex.unlock t.conns_mutex)
      ()
  in
  Mutex.lock t.conns_mutex;
  Hashtbl.add t.conns id (fd, thread);
  Mutex.unlock t.conns_mutex;
  Mutex.unlock ready

let accept_loop t store =
  let next_id = ref 0 in
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if not (Atomic.get t.running) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Mutex.lock t.conns_mutex;
          let live = Hashtbl.length t.conns in
          Mutex.unlock t.conns_mutex;
          if live >= t.config.max_connections then begin
            Atomic.incr t.rejected;
            Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:(-1) "server.conn.drop";
            reject fd
          end
          else begin
            let id = !next_id in
            incr next_id;
            spawn_connection t store id fd
          end
        end
    | exception Unix.Unix_error _ -> ()
  done

let start ~store ?(config = default_config) addr =
  if config.max_connections < 1 then
    invalid_arg "Server.start: max_connections < 1";
  Io.ignore_sigpipe ();
  let domain, sockaddr =
    match addr with
    | Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd 64;
  let t =
    {
      addr;
      config;
      listen_fd;
      accept_thread = Thread.self ();  (* placeholder, replaced below *)
      running = Atomic.make true;
      conns = Hashtbl.create 64;
      conns_mutex = Mutex.create ();
      accepted = Atomic.make 0;
      rejected = Atomic.make 0;
    }
  in
  let t = { t with accept_thread = Thread.create (fun () -> accept_loop t store) () } in
  let reg = Store.registry store in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.fn_counter reg ~help:"connections accepted"
    "server_connections_accepted_total" (fn t.accepted);
  Rp_obs.Registry.fn_counter reg ~help:"connections rejected at the cap"
    "server_connections_rejected_total" (fn t.rejected);
  Rp_obs.Registry.gauge reg ~help:"live connections" "server_connections_active"
    (fun () ->
      Mutex.lock t.conns_mutex;
      let n = Hashtbl.length t.conns in
      Mutex.unlock t.conns_mutex;
      float_of_int n);
  t

let stop t =
  Atomic.set t.running false;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread;
  (* Wake every in-flight connection thread, then drain them. Shutdown runs
     under the registry mutex so it cannot race a thread's close-and-remove
     (and thus can never hit a recycled descriptor). *)
  Mutex.lock t.conns_mutex;
  let threads =
    Hashtbl.fold
      (fun _ (fd, thread) acc ->
        (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        thread :: acc)
      t.conns []
  in
  Mutex.unlock t.conns_mutex;
  List.iter Thread.join threads;
  match t.addr with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let active_connections t =
  Mutex.lock t.conns_mutex;
  let n = Hashtbl.length t.conns in
  Mutex.unlock t.conns_mutex;
  n

let rejected_connections t = Atomic.get t.rejected

let address t = t.addr
