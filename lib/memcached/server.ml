let version_string = Version.string

(* Kept as the stable public name; the implementation lives in Dispatch so
   the event-loop plane can reach it without a module cycle. *)
let handle = Dispatch.handle

type address = Unix_socket of string | Tcp of int | Inet of string * int
type mode = Threaded | Event_loop

let resolve_host host =
  try Unix.inet_addr_of_string host
  with Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } ->
        failwith (Printf.sprintf "cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0)
    | exception Not_found ->
        failwith (Printf.sprintf "cannot resolve host %S" host))

let sockaddr_of = function
  | Unix_socket path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
  | Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  | Inet (host, port) -> (Unix.PF_INET, Unix.ADDR_INET (resolve_host host, port))

type config = {
  max_connections : int;
  max_inflight : int;  (* admission cap below max_connections; 0 = off *)
  idle_timeout : float;
  write_timeout : float;
  listen_backlog : int;
  read_buffer_size : int;
  tcp_nodelay : bool;
  mode : mode;
  workers : int;
  conn_write_cap : int;  (* evloop per-conn pending-write bytes; 0 = off *)
  drain_deadline : float;  (* evloop slow-client kill deadline; <= 0 = off *)
}

let default_config =
  {
    max_connections = 1024;
    max_inflight = 0;
    idle_timeout = 0.0;
    write_timeout = 30.0;
    listen_backlog = 64;
    read_buffer_size = 16384;
    tcp_nodelay = true;
    mode = Threaded;
    workers = 0;
    conn_write_cap = 1_048_576;
    drain_deadline = 30.0;
  }

let effective_workers config =
  if config.workers > 0 then config.workers
  else Domain.recommended_domain_count ()

let k_accept = Rp_trace.intern "server.accept"
let k_req = Rp_trace.intern "req.text"
let k_req_bin = Rp_trace.intern "req.binary"

(* ---------------------------------------------------------------------- *)
(* Threaded plane: one thread per connection, blocking I/O.               *)
(* ---------------------------------------------------------------------- *)

type threaded = {
  (* Live connections, keyed by a private id. The accept loop registers
     entries; each connection thread removes (and closes) its own under
     the same mutex, so [stop] can shutdown every live fd without racing
     a close-then-reuse. *)
  conns : (int, Unix.file_descr * Thread.t) Hashtbl.t;
  conns_mutex : Mutex.t;
  (* Read buffers outlive connections: a finished thread parks its buffer
     here and the next accept reuses it instead of allocating
     [read_buffer_size] fresh bytes per connection. *)
  mutable buffer_pool : Bytes.t list;
}

type plane = Threads of threaded | Evloop of Evloop.t

type t = {
  addr : address;
  config : config;
  listen_fd : Unix.file_descr;
  mutable accept_thread : Thread.t option;
  running : bool Atomic.t;
  accepted : int Atomic.t;
  rejected : int Atomic.t;
  plane : plane;
}

let send config fd s =
  let deadline =
    if config.write_timeout > 0.0 then
      Some (Unix.gettimeofday () +. config.write_timeout)
    else None
  in
  Io.write_all ~fault:"server.write.partial" ?deadline fd s

let recv config fd buf =
  Rp_fault.point "server.conn.reset";
  let timeout =
    if config.idle_timeout > 0.0 then Some config.idle_timeout else None
  in
  Io.read ~fault:"server.read.split" ?timeout fd buf

let serve_text config store fd buf ~initial =
  let parser = Protocol.Parser.create () in
  Protocol.Parser.feed parser initial;
  let closing = ref false in
  let drain () =
    let rec go () =
      match Protocol.Parser.next parser with
      | None -> ()
      | Some (Error msg) ->
          let reply =
            if msg = "ERROR" then Protocol.Error_reply
            else Protocol.Client_error msg
          in
          send config fd (Protocol.encode_response reply);
          go ()
      | Some (Ok Protocol.Quit) -> closing := true
      | Some (Ok request) ->
          (* Request-tier spans on the threaded plane share domain 0's
             ring across connection threads; interleavings are tolerated
             (flight-recorder semantics), the event-loop plane is the
             one with exact per-domain nesting. *)
          Rp_trace.request_begin k_req;
          (match Dispatch.handle store request with
          | Some response -> send config fd (Protocol.encode_response response)
          | None -> ());
          Rp_trace.request_end ();
          go ()
    in
    go ()
  in
  drain ();
  while not !closing do
    let n = recv config fd buf in
    if n = 0 then closing := true
    else begin
      Protocol.Parser.feed parser (Bytes.sub_string buf 0 n);
      drain ()
    end
  done

let serve_binary config store fd buf ~initial =
  let parser = Binary_protocol.Parser.create () in
  Binary_protocol.Parser.feed parser initial;
  let closing = ref false in
  let drain () =
    let rec go () =
      match Binary_protocol.Parser.next parser with
      | None -> ()
      | Some (Error _) ->
          (* Binary framing errors are unrecoverable: drop the connection,
             as stock memcached does. *)
          closing := true
      | Some (Ok request) ->
          Rp_trace.request_begin k_req_bin;
          List.iter
            (fun response ->
              send config fd (Binary_protocol.encode_response response))
            (Binary_server.handle store request);
          Rp_trace.request_end ();
          if Binary_server.quit_requested request then closing := true else go ()
    in
    go ()
  in
  drain ();
  while not !closing do
    let n = recv config fd buf in
    if n = 0 then closing := true
    else begin
      Binary_protocol.Parser.feed parser (Bytes.sub_string buf 0 n);
      drain ()
    end
  done

let take_buffer t th =
  Mutex.lock th.conns_mutex;
  let buf =
    match th.buffer_pool with
    | b :: rest when Bytes.length b = t.config.read_buffer_size ->
        th.buffer_pool <- rest;
        Some b
    | _ ->
        (* Size changed or pool empty: drop any stale pool. *)
        if th.buffer_pool <> [] then th.buffer_pool <- [];
        None
  in
  Mutex.unlock th.conns_mutex;
  match buf with
  | Some b -> b
  | None -> Bytes.create t.config.read_buffer_size

let return_buffer th buf =
  Mutex.lock th.conns_mutex;
  (* A handful of parked buffers is plenty; beyond that let them collect. *)
  if List.length th.buffer_pool < 64 then th.buffer_pool <- buf :: th.buffer_pool;
  Mutex.unlock th.conns_mutex

(* Protocol auto-detection, as in stock memcached: the first byte of a
   connection decides (0x80 = binary request magic, anything else = text).
   An idle timeout, an injected tear, or any socket error closes the
   connection; the fd itself is closed by the registry cleanup in
   [spawn_connection]. *)
let serve_connection t th store fd =
  let buf = take_buffer t th in
  (try
     let n = recv t.config fd buf in
     if n > 0 then begin
       let initial = Bytes.sub_string buf 0 n in
       if initial.[0] = Binary_protocol.magic_request_byte then
         serve_binary t.config store fd buf ~initial
       else serve_text t.config store fd buf ~initial
     end
   with
  | Unix.Unix_error _ | End_of_file | Io.Timeout -> ()
  | Rp_fault.Injected _ -> ());
  return_buffer th buf

let reject fd msg =
  (try
     Io.write_all fd (Protocol.encode_response (Protocol.Server_error msg))
   with Unix.Unix_error _ | Rp_fault.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let spawn_connection t th store id fd =
  (* Hold [ready] until the registry entry exists, so the thread's cleanup
     can never run before its registration. *)
  let ready = Mutex.create () in
  Mutex.lock ready;
  let thread =
    Thread.create
      (fun () ->
        Mutex.lock ready;
        Mutex.unlock ready;
        serve_connection t th store fd;
        Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:id "server.conn.drop";
        Mutex.lock th.conns_mutex;
        Hashtbl.remove th.conns id;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Mutex.unlock th.conns_mutex)
      ()
  in
  Mutex.lock th.conns_mutex;
  Hashtbl.add th.conns id (fd, thread);
  Mutex.unlock th.conns_mutex;
  Mutex.unlock ready

let live t =
  match t.plane with
  | Threads th ->
      Mutex.lock th.conns_mutex;
      let n = Hashtbl.length th.conns in
      Mutex.unlock th.conns_mutex;
      n
  | Evloop ev -> Evloop.live_connections ev

(* The admission cap: [max_inflight] (when set) trims below
   [max_connections] — the guard plane's knob for "the workers are
   saturated; new sockets only add queueing". *)
let admission_cap config =
  if config.max_inflight > 0 then
    min config.max_inflight config.max_connections
  else config.max_connections

(* What (if anything) to refuse this accept with. Emergency closes the
   door entirely: established connections keep their wait-free GETs, but
   new sockets would only deepen the overload. *)
let refusal t store =
  if live t >= admission_cap t.config then
    Some
      (if t.config.max_inflight > 0 && live t < t.config.max_connections then
         "overloaded"
       else "too many connections")
  else
    match Store.guard store with
    | Some g when not (Rp_guard.accepting g) -> Some "overloaded"
    | _ -> None

let accept_loop t store =
  let next_id = ref 0 in
  while Atomic.get t.running do
    match Unix.accept t.listen_fd with
    | fd, _ ->
        if not (Atomic.get t.running) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          match refusal t store with
          | Some msg ->
              Atomic.incr t.rejected;
              Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:(-1)
                "server.conn.drop";
              reject fd msg
          | None -> (
              let id = !next_id in
              incr next_id;
              Atomic.incr t.accepted;
              if t.config.tcp_nodelay then Io.set_tcp_nodelay fd;
              Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:id
                "server.conn.accept";
              Rp_trace.instant ~arg:id k_accept;
              match t.plane with
              | Threads th -> spawn_connection t th store id fd
              | Evloop ev -> Evloop.submit ev ~id fd)
        end
    | exception Unix.Unix_error _ -> ()
  done

let start ~store ?(config = default_config) addr =
  if config.max_connections < 1 then
    invalid_arg "Server.start: max_connections < 1";
  if config.listen_backlog < 1 then
    invalid_arg "Server.start: listen_backlog < 1";
  if config.read_buffer_size < 1 then
    invalid_arg "Server.start: read_buffer_size < 1";
  Io.ignore_sigpipe ();
  (match addr with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ | Inet _ -> ());
  let domain, sockaddr = sockaddr_of addr in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd config.listen_backlog;
  (* Port 0 asks the kernel for any free port; reflect the one it picked
     back into the advertised address so [address] names a reachable
     endpoint (children spawned with [-p 0] print it for their parent). *)
  let addr =
    match (addr, Unix.getsockname listen_fd) with
    | Tcp 0, Unix.ADDR_INET (_, p) -> Tcp p
    | Inet (h, 0), Unix.ADDR_INET (_, p) -> Inet (h, p)
    | _ -> addr
  in
  let plane =
    match config.mode with
    | Threaded ->
        Threads
          {
            conns = Hashtbl.create 64;
            conns_mutex = Mutex.create ();
            buffer_pool = [];
          }
    | Event_loop ->
        Evloop
          (Evloop.create ~store
             {
               Evloop.workers = effective_workers config;
               idle_timeout = config.idle_timeout;
               read_buffer_size = config.read_buffer_size;
               conn_write_cap = config.conn_write_cap;
               drain_deadline = config.drain_deadline;
             })
  in
  let t =
    {
      addr;
      config;
      listen_fd;
      accept_thread = None;
      running = Atomic.make true;
      accepted = Atomic.make 0;
      rejected = Atomic.make 0;
      plane;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t store) ());
  let reg = Store.registry store in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.fn_counter reg ~help:"connections accepted"
    "server_connections_accepted_total" (fn t.accepted);
  Rp_obs.Registry.fn_counter reg ~help:"connections rejected at the cap"
    "server_connections_rejected_total" (fn t.rejected);
  Rp_obs.Registry.gauge reg ~help:"live connections" "server_connections_active"
    (fun () -> float_of_int (live t));
  t

let stop t =
  Atomic.set t.running false;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.plane with
  | Threads th ->
      (* Wake every in-flight connection thread, then drain them. Shutdown
         runs under the registry mutex so it cannot race a thread's
         close-and-remove (and thus can never hit a recycled descriptor). *)
      Mutex.lock th.conns_mutex;
      let threads =
        Hashtbl.fold
          (fun _ (fd, thread) acc ->
            (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
            thread :: acc)
          th.conns []
      in
      Mutex.unlock th.conns_mutex;
      List.iter Thread.join threads
  | Evloop ev -> Evloop.stop ev);
  match t.addr with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ | Inet _ -> ()

let active_connections t = live t
let capacity t = admission_cap t.config
let rejected_connections t = Atomic.get t.rejected
let address t = t.addr

let workers t =
  match t.plane with Threads _ -> 0 | Evloop ev -> Evloop.worker_count ev
