(** Hardened socket I/O shared by the server and both clients.

    One implementation of the classic retry loop: transient [Unix.EINTR] /
    [EAGAIN] / [EWOULDBLOCK] results are retried (waiting for readiness
    via [select] where appropriate) instead of tearing down the
    connection, short writes are continued, and every transfer can be
    routed through an {!Rp_fault} I/O site so tests can shrink, stall, or
    tear it deterministically. *)

exception Timeout
(** Raised when a [deadline]/[timeout] expires before the transfer makes
    progress. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (idempotent) so a write to a peer-closed
    socket raises [Unix.EPIPE] instead of killing the process. Called by
    {!Server.start} and both client [connect]s. *)

val write_all : ?fault:string -> ?deadline:float -> Unix.file_descr -> string -> unit
(** Write the whole string, retrying short writes and transient errors.
    [fault] names an {!Rp_fault.io_cap} site evaluated before each chunk
    (a [Truncate_io] there forces short writes; a [Raise] models a torn
    connection). [deadline] is an absolute [Unix.gettimeofday] instant:
    once reached, waiting for writability raises {!Timeout}. *)

val read : ?fault:string -> ?timeout:float -> Unix.file_descr -> Bytes.t -> int
(** Read at most [Bytes.length buf] bytes into [buf] (from offset 0),
    returning the count (0 = peer closed). Retries transient errors.
    [fault] as in {!write_all} ([Truncate_io] caps the request, splitting
    reads). [timeout] is a relative idle budget in seconds; if no data
    arrives in time, raises {!Timeout}. *)

(** {1 Non-blocking variants (event-loop plane)}

    These never wait for readiness — the caller's poll set decides when to
    retry. EINTR is retried inline; EAGAIN/EWOULDBLOCK surfaces as
    [`Would_block]. The same failpoint sites as the blocking path apply. *)

val read_nonblock :
  ?fault:string -> Unix.file_descr -> Bytes.t -> [ `Data of int | `Eof | `Would_block ]
(** One read attempt into [buf] from offset 0. [`Data n] delivered [n > 0]
    bytes; [`Eof] means the peer closed. *)

val write_nonblock :
  ?fault:string -> Unix.file_descr -> string -> off:int -> [ `Wrote of int | `Would_block ]
(** One write attempt of [s] from [off] to the end. [`Wrote n] may be
    short; the caller keeps the remainder. *)

val set_tcp_nodelay : Unix.file_descr -> unit
(** Disable Nagle on a TCP socket (best-effort no-op elsewhere), so small
    pipelined responses are not held back for coalescing timers. *)
