(* Wiring between the generic {!Rp_guard} ladder and this serving stack:
   which pressures feed it, and which subsystems its transitions actuate.

   [install] attaches the store-level sources and actuators (memory
   pressure, RCU stall signal, Emergency eviction sweep, adaptive trace
   sampling); [watch_server] and [watch_persist] bolt on the
   connection-admission and disk-pressure sources once those subsystems
   exist. The order mirrors the server binary's startup: store -> persist
   -> server -> [Rp_guard.start]. *)

(* A detected grace-period stall means update-side progress (and thus
   reclamation) is wedged behind a stuck reader: pressure at Shed level —
   stop admitting new update work, keep reads flowing — decaying once the
   watchdog goes quiet. *)
let stall_pressure = 0.90

let install ?watermarks ?(interval = 0.05) ?(stall_window = 1.0) store =
  let g = Rp_guard.create ?watermarks ~interval () in
  (* Memory: slab bytes vs the eviction budget. Note this source alone
     cannot push past Shed in steady state — eviction holds bytes at
     ~max_bytes — which is the intent: a full-but-evicting cache is
     Throttle/Shed territory, not an Emergency.

     With an admitting cold tier below, the budget stops being a hard
     resource: the eviction sweep demotes overflow to disk, so a full
     hot layer is the healthy steady state and shedding SETs at ~full
     would make demotion unreachable (the sweep only fires past the
     budget). The source then measures how far the sweep is {e behind}
     — bytes past the budget, in budgets — and the tier's own source
     takes over as the cold side fills. If the tier stops admitting
     (guard emergency, tier full), raw fill pressure returns. *)
  let max_bytes = Store.max_bytes store in
  if max_bytes > 0 then
    Rp_guard.add_source g ~name:"mem" (fun () ->
        let raw =
          float_of_int (Store.bytes store) /. float_of_int max_bytes
        in
        if Store.tier_active store then Float.max 0.0 (raw -. 1.0) else raw);
  (* RCU stalls: the watchdog's counter lives in the store registry under
     flavour-specific names; watch whichever is present. A count that
     moved within [stall_window] seconds holds stall pressure. *)
  let reg = Store.registry store in
  let stall_count () =
    match Rp_obs.Registry.value reg "rcu_stalls_total" with
    | Some v -> v
    | None -> 0.0
  in
  let last_count = ref (stall_count ()) in
  let last_moved = ref neg_infinity in
  Rp_guard.add_source g ~name:"rcu" (fun () ->
      let c = stall_count () in
      if c > !last_count then begin
        last_count := c;
        last_moved := Unix.gettimeofday ()
      end;
      if Unix.gettimeofday () -. !last_moved <= stall_window then
        stall_pressure
      else 0.0);
  (* Adaptive trace sampling: widen the head sampler as soon as the
     ladder leaves Healthy — incidents get dense traces without paying
     full overhead at healthy peak load. *)
  let base_sample = Rp_trace.sample_every () in
  let incident_sample = max 1 (base_sample / 16) in
  Rp_guard.on_transition g (fun _old new_s ->
      Rp_trace.configure
        ~sample:
          (if new_s = Rp_guard.Healthy then base_sample else incident_sample)
        ());
  (* Emergency: claw memory back immediately rather than waiting for the
     next store to trigger eviction. *)
  Rp_guard.on_transition g (fun _old new_s ->
      if new_s = Rp_guard.Emergency then ignore (Store.evict_to_budget store));
  Rp_guard.register_instruments g reg;
  Store.set_guard store (Some g);
  g

let watch_server g server =
  let cap = Server.capacity server in
  if cap > 0 then
    Rp_guard.add_source g ~name:"conns" (fun () ->
        float_of_int (Server.active_connections server) /. float_of_int cap)

let watch_persist g ?(error_window = 1.0) ?(log_budget_mb = 0) persist =
  (* Disk pressure has two faces: a hard append failure (ENOSPC or an
     injected fault) latches Emergency-level pressure until appends
     succeed again or the window expires; a growing op log ramps pressure
     toward 1.0 against its byte budget. *)
  Rp_guard.add_source g ~name:"disk" (fun () ->
      let failure =
        match Persist.last_append_error_age persist with
        | Some age when age <= error_window -> 2.0
        | _ -> 0.0
      in
      let growth =
        if log_budget_mb > 0 then
          float_of_int (Persist.oplog_bytes persist)
          /. float_of_int (log_budget_mb * 1024 * 1024)
        else 0.0
      in
      Float.max failure growth);
  (* Emergency actuators: group-commit instead of per-op fsync (an
     overloaded disk gets batched work), and stop snapshot walks (big
     sequential writes) until the pressure clears. Both revert on the
     way down. *)
  let normal_policy = Persist.fsync_policy persist in
  Rp_guard.on_transition g (fun old_s new_s ->
      if new_s = Rp_guard.Emergency then begin
        Persist.set_paused persist true;
        match normal_policy with
        | Some Rp_persist.Oplog.Always ->
            Persist.set_fsync_policy persist (Rp_persist.Oplog.Every 0.1)
        | _ -> ()
      end
      else if old_s = Rp_guard.Emergency then begin
        Persist.set_paused persist false;
        match normal_policy with
        | Some p -> Persist.set_fsync_policy persist p
        | None -> ()
      end)
