(* Sharded event-loop network plane.

   N worker domains each own a private poll set: a wake pipe plus the
   connections sharded onto them (least-loaded at accept time). A worker
   wakes, drains every readable socket until it would block, dispatches
   all complete pipelined requests as one batch, and writes each
   connection's responses as one coalesced flush — request count per
   wakeup lands in the [server_batch_requests] histogram, so the
   batching the paper's pipelined workloads rely on is observable.

   Each worker is a QSBR participant exactly once (registration is
   per-domain, on first store access) and goes {e offline} before
   blocking in [select], so a parked worker never stalls grace periods
   while its zero-cost GET read sections stay free of shared atomic
   RMWs. *)

type config = {
  workers : int;  (* resolved by the caller; >= 1 *)
  idle_timeout : float;
  read_buffer_size : int;
  conn_write_cap : int;  (* per-conn pending-write byte cap; 0 = unlimited *)
  drain_deadline : float;  (* kill a no-progress backed-up conn after this *)
}

let k_wakeup = Rp_trace.intern "evloop.wakeup"
let k_adopt = Rp_trace.intern "evloop.adopt"

type worker = {
  index : int;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  inbox_mutex : Mutex.t;
  inbox : (int * Unix.file_descr) Queue.t;  (* accepted, not yet adopted *)
  load : int Atomic.t;  (* owned connections, inbox included *)
  mutable domain : unit Domain.t option;
}

type t = {
  store : Store.t;
  config : config;
  workers : worker array;
  running : bool Atomic.t;
  live : int Atomic.t;
  wakeups : Rp_obs.Counter.t;
  batches : Rp_obs.Histogram.t;
  reads : Rp_obs.Counter.t;
  writes : Rp_obs.Counter.t;
  slow_kills : Rp_obs.Counter.t;
}

let write_cap t =
  if t.config.conn_write_cap > 0 then t.config.conn_write_cap else max_int

let wake w =
  try ignore (Unix.write_substring w.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

(* A full wake pipe already guarantees a pending wakeup. *)

let drop t w conns conn =
  let fd = Conn.fd conn in
  Hashtbl.remove conns fd;
  Atomic.decr w.load;
  Atomic.decr t.live;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:(Conn.id conn) "server.conn.drop";
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let adopt t w conns =
  let adopted = ref [] in
  Mutex.lock w.inbox_mutex;
  Queue.iter (fun entry -> adopted := entry :: !adopted) w.inbox;
  Queue.clear w.inbox;
  Mutex.unlock w.inbox_mutex;
  List.iter
    (fun (id, fd) ->
      (try Unix.set_nonblock fd with Unix.Unix_error _ -> ());
      let conn =
        Conn.create ~id ~buffer_size:t.config.read_buffer_size ~reads:t.reads
          ~writes:t.writes fd
      in
      Hashtbl.replace conns fd conn)
    !adopted

(* Flush, then keep re-dispatching requests the write cap deferred as
   long as the socket keeps accepting bytes. Terminates: every turn
   either drains the backlog flag or ends in [`Want_write]/[`Done]. *)
let pump t conn =
  let rec go () =
    match Conn.flush conn with
    | `Closed -> `Close
    | `Want_write -> `Keep
    | `Done ->
        if Conn.closing conn then `Close
        else if Conn.has_backlog conn then begin
          let batch = Conn.dispatch ~max_out:(write_cap t) conn t.store in
          if batch > 0 then Rp_obs.Histogram.observe t.batches batch;
          go ()
        end
        else `Keep
  in
  go ()

(* One readable wakeup: drain the socket, dispatch the whole batch,
   coalesce the responses into one flush. *)
let on_readable t conn =
  match
    Rp_fault.point "server.conn.reset";
    let eof = Conn.fill conn in
    let batch = Conn.dispatch ~max_out:(write_cap t) conn t.store in
    if batch > 0 then Rp_obs.Histogram.observe t.batches batch;
    match pump t conn with
    | `Close -> `Close
    | `Keep -> if eof = `Eof then `Close else `Keep
  with
  | verdict -> verdict
  | exception (Unix.Unix_error _ | End_of_file | Rp_fault.Injected _) -> `Close

let sweep_idle t w conns =
  let now = Unix.gettimeofday () in
  let stale =
    Hashtbl.fold
      (fun _ conn acc ->
        if now -. Conn.last_active conn > t.config.idle_timeout then
          conn :: acc
        else acc)
      conns []
  in
  List.iter (fun conn -> drop t w conns conn) stale

(* Slow-client defense: a connection we owe bytes that has made no
   progress in either direction for a whole drain deadline is dead
   weight pinning coalescer memory — kill it. Healthy-but-slow peers
   are safe: any drained byte resets the clock. *)
let sweep_slow t w conns =
  if t.config.drain_deadline > 0.0 then begin
    let now = Unix.gettimeofday () in
    let hung =
      Hashtbl.fold
        (fun _ conn acc ->
          if
            Conn.wants_write conn
            && now -. Conn.no_progress_since conn > t.config.drain_deadline
          then conn :: acc
          else acc)
        conns []
    in
    List.iter
      (fun conn ->
        Rp_obs.Counter.incr t.slow_kills;
        Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:(Conn.id conn)
          "server.conn.slow_kill";
        drop t w conns conn)
      hung
  end

(* Defensive: a select EBADF means a descriptor went bad under us; evict
   whichever connections no longer stat rather than spinning. *)
let sweep_bad t w conns =
  let bad =
    Hashtbl.fold
      (fun fd conn acc ->
        match Unix.fstat fd with
        | _ -> acc
        | exception Unix.Unix_error _ -> conn :: acc)
      conns []
  in
  List.iter (fun conn -> drop t w conns conn) bad

let worker_loop t w =
  let conns : (Unix.file_descr, Conn.t) Hashtbl.t = Hashtbl.create 64 in
  let scratch = Bytes.create 64 in
  while Atomic.get t.running do
    let rset = ref [ w.wake_r ] and wset = ref [] in
    Hashtbl.iter
      (fun fd conn ->
        (* Backpressure: stop reading while response bytes are parked. *)
        if Conn.wants_write conn then wset := fd :: !wset
        else rset := fd :: !rset)
      conns;
    let timeout =
      let base =
        if t.config.idle_timeout > 0.0 then
          Float.min t.config.idle_timeout 0.25
        else -1.0
      in
      (* With a backed-up connection and a drain deadline armed, the
         worker must wake on its own: the hung socket may never become
         writable, and only the sweep can kill it. *)
      if t.config.drain_deadline > 0.0 && !wset <> [] then begin
        let tick =
          Float.max 0.01 (Float.min 0.05 (t.config.drain_deadline /. 4.))
        in
        if base < 0.0 then tick else Float.min base tick
      end
      else base
    in
    (* Parked workers must not stall QSBR grace periods. *)
    Store.reader_offline t.store;
    match Unix.select !rset !wset [] timeout with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> sweep_bad t w conns
    | readable, writable, _ ->
        Rp_obs.Counter.incr t.wakeups;
        let wakeup_span =
          if readable = [] && writable = [] then -1
          else Rp_trace.span_begin ~arg:w.index k_wakeup
        in
        if List.mem w.wake_r readable then begin
          (try ignore (Unix.read w.wake_r scratch 0 (Bytes.length scratch))
           with Unix.Unix_error _ -> ());
          Rp_trace.instant ~arg:w.index k_adopt;
          adopt t w conns
        end;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | None -> ()
            | Some conn -> (
                match pump t conn with
                | `Close -> drop t w conns conn
                | `Keep -> ()))
          writable;
        List.iter
          (fun fd ->
            if fd <> w.wake_r then
              match Hashtbl.find_opt conns fd with
              | None -> ()
              | Some conn -> (
                  match on_readable t conn with
                  | `Keep -> ()
                  | `Close -> drop t w conns conn))
          readable;
        Rp_trace.span_end ~arg:w.index k_wakeup wakeup_span;
        sweep_slow t w conns;
        if t.config.idle_timeout > 0.0 then sweep_idle t w conns
  done;
  let leftovers = Hashtbl.fold (fun _ conn acc -> conn :: acc) conns [] in
  List.iter (fun conn -> drop t w conns conn) leftovers;
  (* Exit clean: deregistration is implicit, but leave no reader online. *)
  Store.reader_offline t.store

let create ~store (config : config) =
  if config.workers < 1 then invalid_arg "Evloop.create: workers < 1";
  let reg = Store.registry store in
  let wakeups =
    Rp_obs.Registry.counter reg ~help:"event-loop worker poll wakeups"
      "server_worker_wakeups_total"
  in
  let batches =
    Rp_obs.Registry.histogram reg
      ~help:"requests dispatched per poll wakeup (pipelining depth seen)"
      "server_batch_requests"
  in
  let reads =
    Rp_obs.Registry.counter reg ~help:"server read(2) calls that moved data"
      "server_read_syscalls_total"
  in
  let writes =
    Rp_obs.Registry.counter reg ~help:"server write(2) calls that moved data"
      "server_write_syscalls_total"
  in
  let slow_kills =
    Rp_obs.Registry.counter reg
      ~help:"connections killed for making no drain progress"
      "guard_slow_client_kills_total"
  in
  Rp_obs.Registry.gauge reg ~help:"event-loop worker domains"
    "server_event_workers"
    (fun () -> float_of_int config.workers);
  let workers =
    Array.init config.workers (fun index ->
        let wake_r, wake_w = Unix.pipe () in
        Unix.set_nonblock wake_r;
        Unix.set_nonblock wake_w;
        {
          index;
          wake_r;
          wake_w;
          inbox_mutex = Mutex.create ();
          inbox = Queue.create ();
          load = Atomic.make 0;
          domain = None;
        })
  in
  let t =
    {
      store;
      config;
      workers;
      running = Atomic.make true;
      live = Atomic.make 0;
      wakeups;
      batches;
      reads;
      writes;
      slow_kills;
    }
  in
  Array.iter
    (fun w ->
      Rp_obs.Registry.gauge reg ~help:"connections owned by this worker"
        (Printf.sprintf "server_worker%d_connections" w.index)
        (fun () -> float_of_int (Atomic.get w.load)))
    workers;
  Array.iter
    (fun w -> w.domain <- Some (Domain.spawn (fun () -> worker_loop t w)))
    workers;
  t

let submit t ~id fd =
  let best = ref t.workers.(0) in
  Array.iter
    (fun w -> if Atomic.get w.load < Atomic.get !best.load then best := w)
    t.workers;
  let w = !best in
  Atomic.incr w.load;
  Atomic.incr t.live;
  Mutex.lock w.inbox_mutex;
  Queue.add (id, fd) w.inbox;
  Mutex.unlock w.inbox_mutex;
  wake w

let live_connections t = Atomic.get t.live
let worker_count t = Array.length t.workers

let stop t =
  Atomic.set t.running false;
  Array.iter wake t.workers;
  Array.iter
    (fun w -> match w.domain with Some d -> Domain.join d | None -> ())
    t.workers;
  Array.iter
    (fun w ->
      (* Connections accepted but never adopted die here. *)
      Mutex.lock w.inbox_mutex;
      Queue.iter
        (fun (_, fd) ->
          Atomic.decr w.load;
          Atomic.decr t.live;
          try Unix.close fd with Unix.Unix_error _ -> ())
        w.inbox;
      Queue.clear w.inbox;
      Mutex.unlock w.inbox_mutex;
      (try Unix.close w.wake_r with Unix.Unix_error _ -> ());
      try Unix.close w.wake_w with Unix.Unix_error _ -> ())
    t.workers
