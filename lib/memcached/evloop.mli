(** Sharded event-loop network plane.

    [workers] domains each own a private poll set; accepted sockets are
    sharded onto the least-loaded worker. A wakeup drains every complete
    pipelined request on a socket, dispatches them as one batch, and
    coalesces the responses into a single write. Workers follow QSBR
    discipline: one registration per domain, offline around the poll
    wait, so GET read sections stay zero-cost and a parked worker never
    stalls a grace period.

    {!Server} owns listening/accepting (and the connection cap); this
    module owns serving. *)

type config = {
  workers : int;  (** worker domains; [>= 1] (resolved by the caller) *)
  idle_timeout : float;  (** seconds; [<= 0] disables the idle sweep *)
  read_buffer_size : int;  (** per-connection read buffer, bytes *)
  conn_write_cap : int;
      (** per-connection pending-write byte cap: past it the worker stops
          rendering (requests stay parsed-but-deferred) so one
          non-draining client can't pin coalescer memory. [0] = unlimited *)
  drain_deadline : float;
      (** kill a backed-up connection that makes no progress in either
          direction for this many seconds ([guard_slow_client_kills_total]
          counts them). [<= 0] disables the kill sweep *)
}

type t

val create : store:Store.t -> config -> t
(** Spawn the worker domains and register the plane's instruments
    ([server_worker_wakeups_total], [server_batch_requests],
    [server_read_syscalls_total], [server_write_syscalls_total],
    [server_event_workers], per-worker connection gauges) in the store's
    registry. *)

val submit : t -> id:int -> Unix.file_descr -> unit
(** Hand an accepted socket to the least-loaded worker. Ownership
    transfers: the worker makes it non-blocking, serves it, and closes
    it. [id] tags ["server.conn.*"] trace events. *)

val live_connections : t -> int
val worker_count : t -> int

val stop : t -> unit
(** Stop every worker, close all owned sockets (inbox stragglers
    included) and the wake pipes, and join the domains. *)
