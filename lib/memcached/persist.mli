(** The persistence manager: glues {!Store} to {!Rp_persist}.

    One [attach] per store directory gives the store crash safety:

    - {b Warm restart}: recovery runs first — the newest valid snapshot
      is streamed into the store, then every op-log segment from that
      snapshot's generation on is replayed (the newest segment's torn
      tail, if a crash left one, is truncated away). Only then does the
      op-log hook go live.
    - {b Op log}: every acknowledged mutation is appended (inside the
      store's serialization lock) as a state-based record; fsync policy
      per {!Rp_persist.Oplog.fsync_policy}.
    - {b Snapshots}: a dedicated background domain walks the live table
      as a plain relativistic reader ({!Store.iter_items} — bounded read
      sections, no locks against writers) and streams an atomic snapshot
      file. The op log is rotated to the snapshot's generation {e before}
      the walk, so every mutation racing the walk lands in a segment that
      replay applies on top of the snapshot; state-based records make the
      duplicates harmless. After a successful snapshot, older snapshots
      and segments are compacted away.

    Everything is observable: [persist_*] instruments land in the
    store's registry (so they reach [stats persist], the Prometheus
    endpoint, and report JSON).

    Expiry and eviction are deliberately {e not} logged: dropping a dead
    or evicted item is a local decision the next run re-derives (expiry
    from absolute timestamps, eviction from its own budget), so a
    recovered store may transiently exceed the byte budget until its
    first eviction sweep. *)

type t

type recovery = {
  snapshot_gen : int option;  (** generation restored from, if any *)
  snapshot_records : int;
  log_records : int;  (** op records replayed on top of the snapshot *)
  log_bad_records : int;
  log_segments : int;
  log_truncated_bytes : int;  (** torn tail cut from the newest segment *)
  post_recovery_evictions : int;
      (** items evicted to bring a recovered over-budget heap back under
          [max_bytes] before serving traffic *)
}

val attach :
  ?snapshot_interval:float ->
  ?aof:bool ->
  ?fsync:Rp_persist.Oplog.fsync_policy ->
  ?oplog_max_mb:int ->
  ?archive_keep:int ->
  dir:string ->
  Store.t ->
  t
(** Recover [dir] into the store, run the post-recovery eviction sweep,
    start the op log (unless [aof:false]; default [true]) with [fsync]
    (default [Always]), install the mutation hook, register instruments,
    and spawn the snapshot domain. [snapshot_interval] (seconds) enables
    periodic snapshots; omitted, snapshots only happen via
    {!snapshot_now}. A positive [oplog_max_mb] (default 0 = unbounded)
    rotates op-log segments by size as well as by snapshot. Compaction
    archives superseded files as [<name>.old-<gen>] and keeps the newest
    [archive_keep] (default 2) archived generations. Attach at most once
    per store (instrument names collide otherwise), and before serving
    traffic (recovery applies records through the normal update path,
    but concurrent client mutations would interleave with replay).

    An op-log append that fails (disk full, injected fault) does {e not}
    fail the mutation: the record is dropped, durability degrades, and
    the failure is latched for {!append_errors} /
    {!last_append_error_age} — the guard plane's disk-pressure signal. *)

val recovery : t -> recovery
(** What recovery found at {!attach} time. *)

val snapshot_now : t -> (int, string) result
(** Ask the snapshot domain for an immediate snapshot and wait for it:
    [Ok records_written] or the failure ([Error] leaves the previous
    snapshot generation in place — snapshots are atomic). *)

val log_gen : t -> int option
(** Current op-log segment generation ([None] when [aof:false]). *)

val dir : t -> string
(** The persistence directory this manager was attached to. *)

val flush_log : t -> unit
(** Push the op log's pending buffer to the OS (no fsync) so a reader
    tailing the segment files ({!Rp_persist.Oplog.Tail}) can see every
    record appended so far. No-op when [aof:false]. *)

val set_tap :
  t -> (gen:int -> trace:int -> Rp_persist.Record.t -> unit) option -> unit
(** Install (or clear) the replication tap: called for every record
    immediately after its successful op-log append, still inside the
    store's serialization lock — tap order is exactly log order. [gen]
    is the segment the record landed in; [trace] is the serving
    request's flight-recorder trace id (0 when unsampled), which the
    replication stream carries to followers. The tap must be quick
    (enqueue, don't write sockets) and must not raise. *)

val oplog_bytes : t -> int
(** Total op-log bytes: on-disk segments plus unflushed frames. *)

val append_errors : t -> int
(** Op-log appends that failed (and were swallowed) so far. *)

val last_append_error_age : t -> float option
(** Seconds since the most recent append failure; [None] once an append
    has succeeded again (or if none ever failed). *)

val set_paused : t -> bool -> unit
(** Suspend/resume {e periodic} snapshots (the guard's Emergency
    actuator). {!snapshot_now} still works while paused. *)

val paused : t -> bool

val set_fsync_policy : t -> Rp_persist.Oplog.fsync_policy -> unit
(** Swap the op log's fsync policy live (no-op when [aof:false]). *)

val fsync_policy : t -> Rp_persist.Oplog.fsync_policy option

val stop : t -> unit
(** Graceful shutdown: stop the snapshot domain, sync and close the op
    log, uninstall the hook. Idempotent. No final snapshot is taken —
    the synced log already covers everything. *)

val crash_for_testing : t -> unit
(** Simulate the process dying mid-flight ([kill -9]) as far as this
    manager can from inside one process: stop the snapshot domain and
    uninstall the hook {e without} syncing, flushing, or closing the op
    log cleanly. Torture scenarios follow this with direct file-level
    damage (torn tails) before re-attaching a fresh store. *)
