(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
    framing every persisted record, so recovery can tell a torn or
    corrupted record from a valid one without trusting file lengths. *)

val string : string -> int
(** CRC-32 of a whole string. Result fits in 32 bits. *)

val update : int -> string -> pos:int -> len:int -> int
(** [update crc s ~pos ~len] extends [crc] (a previous {!string}/[update]
    result, or 0 for an empty prefix) over [s.[pos .. pos+len-1]]. *)
