(** Append-only operation log with group commit and rotation.

    The log is a sequence of segment files [oplog-<gen>.rplog], each
    opened by a header frame ["RPLOG1:<gen>"] and followed by one
    {!Frame} per {!Record.t}. Generations tie segments to snapshots:
    the manager rotates to generation [G+1] {e before} walking snapshot
    [G+1], so every mutation concurrent with the walk lands in a segment
    that recovery replays on top of it.

    Durability is the fsync policy's business, not the append path's:
    [Always] fsyncs inside every {!append} (an acked op is a durable
    op), [Every dt] group-commits — appends write to the OS and a timer
    or the next append fsyncs at most every [dt] seconds — and [Never]
    leaves syncing to the kernel. Appends route their file writes
    through the ["persist.log.append"] {!Rp_fault.io_cap} site, so a
    fault plan can tear the final record exactly as a crash would. *)

type fsync_policy = Always | Every of float  (** seconds *) | Never

val policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["never"], or ["every:<ms>"] (e.g. ["every:100"]). *)

val policy_name : fsync_policy -> string

type t

val filename : gen:int -> string
(** [oplog-<gen, zero-padded>.rplog]. *)

val open_ :
  ?max_bytes:int -> dir:string -> gen:int -> fsync:fsync_policy -> unit -> t
(** Open (creating if needed) the segment for [gen] in append mode; an
    empty file gets its header frame written immediately. A positive
    [max_bytes] (default 0 = unbounded) enables size-based rotation:
    an append that pushes the segment past the cap closes it durably
    and opens generation [gen+1] in place. *)

val gen : t -> int

val bytes : t -> int
(** Framed bytes in the current segment (including not-yet-flushed). *)

val policy : t -> fsync_policy

val set_policy : t -> fsync_policy -> unit
(** Swap the fsync policy live — the guard plane's Emergency actuator
    (Always -> Every) and its reversal. *)

val append : t -> Record.t -> unit
(** Thread-safe. Frames and writes the record; fsyncs per policy. *)

val sync : t -> unit
(** Flush buffered frames and fsync, regardless of policy. *)

val tick : t -> unit
(** Periodic heartbeat for [Every _]: flushes buffered frames and
    fsyncs when the policy's interval has elapsed. No-op otherwise. *)

val rotate : t -> gen:int -> unit
(** Sync and close the current segment, then start a fresh one for
    [gen] (with its header frame already durable). *)

val close : t -> unit

val segments : dir:string -> (int * string) list
(** Log segments in [dir], [(gen, path)] ascending by gen. *)

type replay_result = {
  records : int;  (** records successfully decoded and applied *)
  bad_records : int;  (** CRC-valid frames {!Record.decode} rejected *)
  segments : int;  (** segment files visited *)
  truncated_bytes : int;
      (** torn tail cut (ftruncate) from the {e newest} segment *)
}

val replay :
  dir:string -> from_gen:int -> f:(Record.t -> unit) -> replay_result
(** Stream records from every segment with generation [>= from_gen],
    oldest first, through [f]. A torn frame in the newest segment is a
    crashed in-flight append: the file is truncated back to the last
    whole frame so the reopened log continues cleanly. A torn frame in
    an older segment abandons the rest of that segment only — framing
    is lost to its end, but later segments are independent files. *)
