(** Append-only operation log with group commit and rotation.

    The log is a sequence of segment files [oplog-<gen>.rplog], each
    opened by a header frame ["RPLOG1:<gen>"] and followed by one
    {!Frame} per {!Record.t}. Generations tie segments to snapshots:
    the manager rotates to generation [G+1] {e before} walking snapshot
    [G+1], so every mutation concurrent with the walk lands in a segment
    that recovery replays on top of it.

    Durability is the fsync policy's business, not the append path's:
    [Always] fsyncs inside every {!append} (an acked op is a durable
    op), [Every dt] group-commits — appends write to the OS and a timer
    or the next append fsyncs at most every [dt] seconds — and [Never]
    leaves syncing to the kernel. Appends route their file writes
    through the ["persist.log.append"] {!Rp_fault.io_cap} site, so a
    fault plan can tear the final record exactly as a crash would. *)

type fsync_policy = Always | Every of float  (** seconds *) | Never

val policy_of_string : string -> (fsync_policy, string) result
(** ["always"], ["never"], or ["every:<ms>"] (e.g. ["every:100"]). *)

val policy_name : fsync_policy -> string

type t

val filename : gen:int -> string
(** [oplog-<gen, zero-padded>.rplog]. *)

val open_ :
  ?max_bytes:int -> dir:string -> gen:int -> fsync:fsync_policy -> unit -> t
(** Open (creating if needed) the segment for [gen] in append mode; an
    empty file gets its header frame written immediately. A positive
    [max_bytes] (default 0 = unbounded) enables size-based rotation:
    an append that pushes the segment past the cap closes it durably
    and opens generation [gen+1] in place. *)

val gen : t -> int

val bytes : t -> int
(** Framed bytes in the current segment (including not-yet-flushed). *)

val policy : t -> fsync_policy

val set_policy : t -> fsync_policy -> unit
(** Swap the fsync policy live — the guard plane's Emergency actuator
    (Always -> Every) and its reversal. *)

val append : t -> Record.t -> unit
(** Thread-safe. Frames and writes the record; fsyncs per policy. *)

val sync : t -> unit
(** Flush buffered frames and fsync, regardless of policy. *)

val flush : t -> unit
(** Hand buffered frames to the OS without fsyncing — enough for a
    same-host reader (the replication tail) to see them; durability
    still follows the fsync policy. *)

val tick : t -> unit
(** Periodic heartbeat for [Every _]: flushes buffered frames and
    fsyncs when the policy's interval has elapsed. No-op otherwise. *)

val rotate : t -> gen:int -> unit
(** Sync and close the current segment, then start a fresh one for
    [gen] (with its header frame already durable). *)

val close : t -> unit

val segments : dir:string -> (int * string) list
(** Log segments in [dir], [(gen, path)] ascending by gen. *)

type replay_result = {
  records : int;  (** records successfully decoded and applied *)
  bad_records : int;  (** CRC-valid frames {!Record.decode} rejected *)
  segments : int;  (** segment files visited *)
  truncated_bytes : int;
      (** torn tail cut (ftruncate) from the {e newest} segment *)
}

val replay :
  dir:string -> from_gen:int -> f:(Record.t -> unit) -> replay_result
(** Stream records from every segment with generation [>= from_gen],
    oldest first, through [f]. A torn frame in the newest segment is a
    crashed in-flight append: the file is truncated back to the last
    whole frame so the reopened log continues cleanly. A torn frame in
    an older segment abandons the rest of that segment only — framing
    is lost to its end, but later segments are independent files. *)

(** Live tailing cursor over a log directory that is still being
    appended to — the replication leader's catch-up source. Where
    {!replay} treats a torn tail as a crash artifact to truncate, the
    tail treats End/Torn in the newest segment as {e not yet written}:
    it parks and re-reads from the same offset on the next call. A torn
    region is only skipped once a newer segment exists (rotation proves
    the writer abandoned that tail). Segments already archived by
    compaction are invisible to the cursor: a follower older than the
    archive horizon simply starts at the oldest surviving segment —
    safe, because records are idempotent state and each surviving
    segment chain re-derives the state the archived prefix built. *)
module Tail : sig
  type cursor

  val create : dir:string -> from_gen:int -> cursor
  (** Position before the first surviving segment with gen [>= from_gen].
      Resuming inside a generation re-reads it from the start — safe
      under at-least-once delivery. *)

  val next : cursor -> [ `Record of int * string | `Caught_up ]
  (** [`Record (gen, payload)] is the next framed record payload (the
      encoded {!Record.t}, left opaque); [`Caught_up] means no complete
      frame is available right now — poll again after the writer
      flushes. Never blocks. *)

  val gen : cursor -> int
  (** Generation the cursor is currently reading. *)

  val close : cursor -> unit
end
