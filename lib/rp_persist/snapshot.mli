(** Atomic, CRC-framed snapshot files.

    A snapshot is a stream of {!Frame}s: a header frame ["RPSNAP1:<gen>"],
    one frame per {!Record.t}, and a trailer frame ["RPSNAP-END:<count>"].
    The trailer doubles as a completeness witness — a crash mid-write
    leaves a file without it, which {!load} rejects wholesale. Writes go
    to [<name>.tmp] and are published with fsync + rename + directory
    fsync, so a snapshot either exists in full or not at all.

    Fault sites: ["persist.snapshot.record"] fires before each record
    frame is buffered, ["persist.snapshot.rename"] fires after the tmp
    file is durable but before the rename — the window where a crash
    loses the whole snapshot but the previous generation survives. *)

val filename : gen:int -> string
(** [snapshot-<gen, zero-padded>.rpsnap]. *)

val write :
  dir:string -> gen:int -> iter:((Record.t -> unit) -> unit) -> int
(** Stream every record produced by [iter] into [dir/filename ~gen] and
    publish it atomically; returns the record count. On any failure the
    tmp file is removed and the exception re-raised — [dir] never holds
    a partial snapshot under its final name. *)

val files : dir:string -> (int * string) list
(** Snapshot files present in [dir], [(gen, path)] ascending by gen. *)

val validate : string -> (int * int, string) result
(** Cheap full scan of a snapshot file: [Ok (gen, count)] iff framing,
    CRCs, record encoding, and the trailer count all check out. *)

val load_newest : dir:string -> f:(Record.t -> unit) -> (int * int) option
(** Find the newest snapshot in [dir] that passes {!validate}, then
    stream its records through [f]. Returns [Some (gen, count)], or
    [None] when no valid snapshot exists (invalid ones are skipped, not
    deleted). Validation runs as a separate first pass so [f] never sees
    records from a snapshot that later turns out to be torn. *)
