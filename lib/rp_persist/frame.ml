let header_bytes = 8
let max_payload = 64 * 1024 * 1024

let add buf payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Frame.add: payload too large";
  let hdr = Bytes.create header_bytes in
  Bytes.set_int32_be hdr 0 (Int32.of_int len);
  Bytes.set_int32_be hdr 4 (Int32.of_int (Crc32.string payload));
  Buffer.add_bytes buf hdr;
  Buffer.add_string buf payload

type read_result = Record of string | End | Torn of int

let u32_be s off =
  Int32.to_int (Bytes.get_int32_be s off) land 0xFFFFFFFF

let read ic =
  let off = pos_in ic in
  let total = in_channel_length ic in
  let remaining = total - off in
  if remaining = 0 then End
  else if remaining < header_bytes then Torn off
  else begin
    let hdr = Bytes.create header_bytes in
    really_input ic hdr 0 header_bytes;
    let len = u32_be hdr 0 in
    let crc = u32_be hdr 4 in
    if len > max_payload || len > remaining - header_bytes then Torn off
    else
      let payload = really_input_string ic len in
      if Crc32.string payload <> crc then Torn off else Record payload
  end
