(** Persisted operation records.

    Every record carries the {e resulting} item state, not the operation's
    arguments: an [Incr] is logged as the decimal string it produced, a
    [Touch] as the item with its new absolute expiry, and so on. Replay is
    therefore idempotent and convergent — applying a record twice, or
    applying one whose effect a concurrent snapshot already captured,
    reaches the same final store — which is what lets the snapshotter run
    as a plain relativistic reader with no coordination against writers.
    The originating command survives as {!op_tag}, for observability only.

    Expiry times are the absolute Unix seconds computed {e once} at the
    original operation (see [Store.absolute_exptime]); replay never
    re-derives them from a relative offset, so recovery is deterministic
    no matter when it runs. *)

type op_tag =
  | Tset
  | Tadd
  | Treplace
  | Tappend
  | Tprepend
  | Tcas
  | Tincr
  | Tdecr
  | Ttouch

type t =
  | Set of {
      op : op_tag;
      key : string;
      flags : int;
      exptime : float;  (** absolute Unix seconds; 0. = never *)
      cas : int;
      data : string;
    }
  | Delete of string
  | Flush_all

val op_name : op_tag -> string

val encode : t -> string
(** Binary encoding (framed by {!Frame} when written to disk). *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; [Error] describes the malformation. *)
