(** Length-prefixed, CRC-framed records — the on-disk unit of both the
    snapshot files and the append-only op log.

    A frame is [[u32 payload_len][u32 crc32(payload)][payload]], both
    integers big-endian. A reader that hits end-of-file mid-frame, an
    implausible length, or a CRC mismatch reports {e torn} with the byte
    offset where the bad frame starts: crash recovery truncates the file
    there and treats everything before it as the durable prefix. *)

val header_bytes : int
(** 8. *)

val max_payload : int
(** Upper bound on a single frame's payload (64 MiB). Larger lengths in a
    header are treated as corruption, so a flipped length byte cannot make
    recovery try to allocate gigabytes. *)

val add : Buffer.t -> string -> unit
(** Append one frame holding [payload] to the buffer. Raises
    [Invalid_argument] beyond {!max_payload}. *)

type read_result =
  | Record of string  (** next frame's payload, CRC-verified *)
  | End  (** clean end-of-file at a frame boundary *)
  | Torn of int  (** partial or corrupt frame starting at this offset *)

val read : in_channel -> read_result
(** Read the next frame. The channel position is advanced past the frame
    on [Record], and is unspecified after [End]/[Torn] (use the offset). *)
