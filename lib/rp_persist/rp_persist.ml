(** rp_persist: crash-safe persistence plane.

    Storage-agnostic building blocks — CRC framing, op records, atomic
    snapshots, an append-only log. The glue that walks a live
    relativistic hash table and feeds these (the {e snapshot-as-reader}
    protocol) lives with the store, in [Memcached.Persist]; this library
    never learns what an item is. *)

module Crc32 = Crc32
module Frame = Frame
module Record = Record
module Snapshot = Snapshot
module Oplog = Oplog
module Fsutil = Fsutil
