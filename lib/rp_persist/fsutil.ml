let rec retry_write fd s pos len =
  match Unix.write_substring fd s pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_write fd s pos len

let write_all ?fault fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let want = len - !pos in
    let allowed =
      match fault with Some site -> Rp_fault.io_cap site want | None -> want
    in
    let written = ref 0 in
    while !written < allowed do
      written := !written + retry_write fd s (!pos + !written) (allowed - !written)
    done;
    pos := !pos + allowed;
    (* A capped transfer models a crash immediately after the partial
       write: the tail of this record never reaches the disk. *)
    if allowed < want then
      raise (Rp_fault.Injected (Option.get fault))
  done

let fsync fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      fsync fd;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let rec mkdir_p dir =
  if dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let scan_gen_files ~dir ~prefix ~suffix =
  let entries = try Sys.readdir dir with Sys_error _ -> [||] in
  let plen = String.length prefix and slen = String.length suffix in
  Array.to_list entries
  |> List.filter_map (fun name ->
         let n = String.length name in
         if
           n > plen + slen
           && String.sub name 0 plen = prefix
           && String.sub name (n - slen) slen = suffix
         then
           match int_of_string_opt (String.sub name plen (n - plen - slen)) with
           | Some gen -> Some (gen, Filename.concat dir name)
           | None -> None
         else None)
  |> List.sort compare
