type op_tag =
  | Tset
  | Tadd
  | Treplace
  | Tappend
  | Tprepend
  | Tcas
  | Tincr
  | Tdecr
  | Ttouch

type t =
  | Set of {
      op : op_tag;
      key : string;
      flags : int;
      exptime : float;
      cas : int;
      data : string;
    }
  | Delete of string
  | Flush_all

let op_name = function
  | Tset -> "set"
  | Tadd -> "add"
  | Treplace -> "replace"
  | Tappend -> "append"
  | Tprepend -> "prepend"
  | Tcas -> "cas"
  | Tincr -> "incr"
  | Tdecr -> "decr"
  | Ttouch -> "touch"

let op_byte = function
  | Tset -> 0
  | Tadd -> 1
  | Treplace -> 2
  | Tappend -> 3
  | Tprepend -> 4
  | Tcas -> 5
  | Tincr -> 6
  | Tdecr -> 7
  | Ttouch -> 8

let op_of_byte = function
  | 0 -> Some Tset
  | 1 -> Some Tadd
  | 2 -> Some Treplace
  | 3 -> Some Tappend
  | 4 -> Some Tprepend
  | 5 -> Some Tcas
  | 6 -> Some Tincr
  | 7 -> Some Tdecr
  | 8 -> Some Ttouch
  | _ -> None

let add_u32 buf n =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Buffer.add_bytes buf b

let add_u64 buf n =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int n);
  Buffer.add_bytes buf b

let add_f64 buf f =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.bits_of_float f);
  Buffer.add_bytes buf b

let encode r =
  let buf = Buffer.create 64 in
  (match r with
  | Set { op; key; flags; exptime; cas; data } ->
      Buffer.add_char buf '\001';
      Buffer.add_char buf (Char.chr (op_byte op));
      add_u32 buf flags;
      add_u64 buf cas;
      add_f64 buf exptime;
      add_u32 buf (String.length key);
      Buffer.add_string buf key;
      add_u32 buf (String.length data);
      Buffer.add_string buf data
  | Delete key ->
      Buffer.add_char buf '\002';
      add_u32 buf (String.length key);
      Buffer.add_string buf key
  | Flush_all -> Buffer.add_char buf '\003');
  Buffer.contents buf

(* Sequential decoder over the payload string. *)
exception Bad of string

let decode s =
  let pos = ref 0 in
  let need n what =
    if !pos + n > String.length s then raise (Bad ("truncated " ^ what))
  in
  let u8 what =
    need 1 what;
    let v = Char.code s.[!pos] in
    incr pos;
    v
  in
  let u32 what =
    need 4 what;
    let v =
      Int32.to_int (Bytes.get_int32_be (Bytes.unsafe_of_string s) !pos)
      land 0xFFFFFFFF
    in
    pos := !pos + 4;
    v
  in
  let i64 what =
    need 8 what;
    let v = Bytes.get_int64_be (Bytes.unsafe_of_string s) !pos in
    pos := !pos + 8;
    v
  in
  let str what =
    let n = u32 (what ^ " length") in
    need n what;
    let v = String.sub s !pos n in
    pos := !pos + n;
    v
  in
  let finish r =
    if !pos <> String.length s then Error "trailing bytes" else Ok r
  in
  match
    match u8 "tag" with
    | 1 ->
        let op =
          match op_of_byte (u8 "op") with
          | Some op -> op
          | None -> raise (Bad "unknown op tag")
        in
        let flags = u32 "flags" in
        let cas = Int64.to_int (i64 "cas") in
        let exptime = Int64.float_of_bits (i64 "exptime") in
        let key = str "key" in
        let data = str "data" in
        finish (Set { op; key; flags; exptime; cas; data })
    | 2 -> finish (Delete (str "key"))
    | 3 -> finish Flush_all
    | n -> raise (Bad (Printf.sprintf "unknown record tag %d" n))
  with
  | r -> r
  | exception Bad msg -> Error msg
