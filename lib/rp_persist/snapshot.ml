let magic = "RPSNAP1:"
let trailer_magic = "RPSNAP-END:"
let filename ~gen = Printf.sprintf "snapshot-%010d.rpsnap" gen

(* Flush the buffer to disk whenever it grows past this, so snapshotting
   a large table needs bounded memory, not a full in-core copy. *)
let flush_threshold = 256 * 1024

let write ~dir ~gen ~iter =
  Fsutil.mkdir_p dir;
  let final = Filename.concat dir (filename ~gen) in
  let tmp = final ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let buf = Buffer.create flush_threshold in
  let flush () =
    if Buffer.length buf > 0 then begin
      Fsutil.write_all fd (Buffer.contents buf);
      Buffer.clear buf
    end
  in
  let count = ref 0 in
  match
    Frame.add buf (magic ^ string_of_int gen);
    iter (fun r ->
        Rp_fault.point "persist.snapshot.record";
        Frame.add buf (Record.encode r);
        incr count;
        if Buffer.length buf >= flush_threshold then flush ());
    Frame.add buf (trailer_magic ^ string_of_int !count);
    flush ();
    Fsutil.fsync fd;
    Unix.close fd;
    Rp_fault.point "persist.snapshot.rename";
    Unix.rename tmp final;
    Fsutil.fsync_dir dir
  with
  | () -> !count
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let files ~dir = Fsutil.scan_gen_files ~dir ~prefix:"snapshot-" ~suffix:".rpsnap"

let parse_tagged ~tag payload =
  let tlen = String.length tag in
  if String.length payload > tlen && String.sub payload 0 tlen = tag then
    int_of_string_opt (String.sub payload tlen (String.length payload - tlen))
  else None

(* Walk every frame of [path]; [f] sees the decoded records. Shared by
   validation (f = ignore) and the real load. *)
let scan path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let header =
        match Frame.read ic with
        | Frame.Record p -> p
        | Frame.End | Frame.Torn _ -> ""
      in
      match parse_tagged ~tag:magic header with
      | None -> Error "bad snapshot header"
      | Some gen ->
          let count = ref 0 in
          let rec loop () =
            match Frame.read ic with
            | Frame.End -> Error "missing snapshot trailer"
            | Frame.Torn off -> Error (Printf.sprintf "torn frame at %d" off)
            | Frame.Record payload -> (
                match parse_tagged ~tag:trailer_magic payload with
                | Some n ->
                    if n <> !count then
                      Error
                        (Printf.sprintf "trailer count %d <> %d records" n
                           !count)
                    else if Frame.read ic <> Frame.End then
                      Error "frames after trailer"
                    else Ok (gen, !count)
                | None -> (
                    match Record.decode payload with
                    | Ok r ->
                        f r;
                        incr count;
                        loop ()
                    | Error msg -> Error ("bad record: " ^ msg)))
          in
          loop ())

let validate path = try scan path ~f:ignore with Sys_error msg -> Error msg

let load_newest ~dir ~f =
  let rec try_newest = function
    | [] -> None
    | (_, path) :: older -> (
        match validate path with
        | Error _ -> try_newest older
        | Ok _ -> (
            (* Validated in full above; a second pass streams it for real. *)
            match scan path ~f with
            | Ok (gen, count) -> Some (gen, count)
            | Error _ | (exception Sys_error _) -> try_newest older))
  in
  try_newest (List.rev (files ~dir))
