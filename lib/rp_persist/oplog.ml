let magic = "RPLOG1:"
let filename ~gen = Printf.sprintf "oplog-%010d.rplog" gen
let fault_site = "persist.log.append"

(* Flight-recorder spans. Append and fsync are detail-tier: they sit
   inside the request that triggered them (the group-commit cliff a slow
   SET usually hides behind); rotation is control-tier. *)
let k_append = Rp_trace.intern "persist.append"
let k_fsync = Rp_trace.intern "persist.fsync"
let k_rotate = Rp_trace.intern "persist.rotate"

type fsync_policy = Always | Every of float | Never

let policy_of_string s =
  match String.lowercase_ascii s with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | s when String.length s > 6 && String.sub s 0 6 = "every:" -> (
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some ms when ms > 0 -> Ok (Every (float_of_int ms /. 1000.))
      | Some _ | None -> Error "fsync interval must be a positive ms count")
  | _ -> Error (Printf.sprintf "unknown fsync policy %S" s)

let policy_name = function
  | Always -> "always"
  | Never -> "never"
  | Every dt -> Printf.sprintf "every:%d" (int_of_float (dt *. 1000.))

type t = {
  dir : string;
  mutable policy : fsync_policy;
  max_bytes : int;  (* 0 = no size-based rotation *)
  mutex : Mutex.t;
  mutable fd : Unix.file_descr;
  mutable gen : int;
  mutable seg_bytes : int;  (* framed bytes queued/written this segment *)
  pending : Buffer.t;  (* frames written but not yet handed to the OS *)
  mutable last_sync : float;
  mutable closed : bool;
}

let pending_cap = 64 * 1024

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Callers hold t.mutex for everything below. *)

let flush_locked t =
  if Buffer.length t.pending > 0 then begin
    let data = Buffer.contents t.pending in
    Buffer.clear t.pending;
    Fsutil.write_all ~fault:fault_site t.fd data
  end

let sync_locked t =
  let span = Rp_trace.span_begin_sampled k_fsync in
  flush_locked t;
  Fsutil.fsync t.fd;
  Rp_trace.span_end_sampled k_fsync span;
  t.last_sync <- Unix.gettimeofday ()

let open_segment ~dir ~gen =
  Fsutil.mkdir_p dir;
  let path = Filename.concat dir (filename ~gen) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  let size = (Unix.fstat fd).Unix.st_size in
  if size = 0 then begin
    let buf = Buffer.create 32 in
    Frame.add buf (magic ^ string_of_int gen);
    Fsutil.write_all fd (Buffer.contents buf);
    Fsutil.fsync fd;
    Fsutil.fsync_dir dir
  end;
  fd

let open_ ?(max_bytes = 0) ~dir ~gen ~fsync () =
  let fd = open_segment ~dir ~gen in
  {
    dir;
    policy = fsync;
    max_bytes;
    mutex = Mutex.create ();
    fd;
    gen;
    seg_bytes = (Unix.fstat fd).Unix.st_size;
    pending = Buffer.create 4096;
    last_sync = Unix.gettimeofday ();
    closed = false;
  }

let gen t = t.gen
let bytes t = t.seg_bytes
let policy t = t.policy
let set_policy t p = with_lock t (fun () -> t.policy <- p)

let rotate_locked t ~gen =
  Rp_trace.with_span ~arg:gen k_rotate (fun () ->
      sync_locked t;
      (try Unix.close t.fd with Unix.Unix_error _ -> ());
      t.fd <- open_segment ~dir:t.dir ~gen;
      t.seg_bytes <- (Unix.fstat t.fd).Unix.st_size;
      t.gen <- gen)

let append t record =
  let span = Rp_trace.span_begin_sampled k_append in
  Fun.protect
    ~finally:(fun () -> Rp_trace.span_end_sampled k_append span)
    (fun () ->
      with_lock t (fun () ->
          if t.closed then invalid_arg "Oplog.append: closed";
          let before = Buffer.length t.pending in
          Frame.add t.pending (Record.encode record);
          t.seg_bytes <- t.seg_bytes + (Buffer.length t.pending - before);
          (* Size-based rotation: a segment past its cap closes durably —
             the record that tipped it included — and generation G+1
             opens. The manager learns of the jump through {!gen} at its
             next snapshot. *)
          if t.max_bytes > 0 && t.seg_bytes >= t.max_bytes then
            rotate_locked t ~gen:(t.gen + 1);
          match t.policy with
          | Always -> sync_locked t
          | Every dt ->
              if
                Buffer.length t.pending >= pending_cap
                || Unix.gettimeofday () -. t.last_sync >= dt
              then sync_locked t
          | Never ->
              if Buffer.length t.pending >= pending_cap then flush_locked t))

let sync t = with_lock t (fun () -> if not t.closed then sync_locked t)
let flush t = with_lock t (fun () -> if not t.closed then flush_locked t)

let tick t =
  with_lock t (fun () ->
      match t.policy with
      | Every dt
        when (not t.closed)
             && (Buffer.length t.pending > 0
                || Unix.gettimeofday () -. t.last_sync >= dt) ->
          sync_locked t
      | _ -> ())

let rotate t ~gen =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Oplog.rotate: closed";
      rotate_locked t ~gen)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        (try sync_locked t with _ -> ());
        (try Unix.close t.fd with Unix.Unix_error _ -> ());
        t.closed <- true
      end)

let segments ~dir = Fsutil.scan_gen_files ~dir ~prefix:"oplog-" ~suffix:".rplog"

type replay_result = {
  records : int;
  bad_records : int;
  segments : int;
  truncated_bytes : int;
}

let truncate_tail path off =
  let size = (Unix.stat path).Unix.st_size in
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.ftruncate fd off;
      Fsutil.fsync fd);
  size - off

let replay ~dir ~from_gen ~f =
  let segs =
    List.filter (fun (g, _) -> g >= from_gen) (segments ~dir)
  in
  let last_index = List.length segs - 1 in
  let records = ref 0 and bad = ref 0 and truncated = ref 0 in
  List.iteri
    (fun i (seg_gen, path) ->
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let header_ok =
            match Frame.read ic with
            | Frame.Record p -> p = magic ^ string_of_int seg_gen
            | Frame.End | Frame.Torn _ -> false
          in
          if not header_ok then begin
            (* Unreadable header: an empty/garbled newest segment is a
               crash during segment creation — reset it entirely. *)
            if i = last_index then truncated := !truncated + truncate_tail path 0
          end
          else
            let rec loop () =
              match Frame.read ic with
              | Frame.End -> ()
              | Frame.Torn off ->
                  if i = last_index then
                    truncated := !truncated + truncate_tail path off
              | Frame.Record payload ->
                  (match Record.decode payload with
                  | Ok r ->
                      f r;
                      incr records
                  | Error _ -> incr bad);
                  loop ()
            in
            loop ()))
    segs;
  {
    records = !records;
    bad_records = !bad;
    segments = List.length segs;
    truncated_bytes = !truncated;
  }

(* ------------------------------------------------------------------ *)
(* Tailing cursor *)

(* A live reader over the segment chain: the replication leader streams
   a follower's catch-up from here. Unlike {!replay}, the newest segment
   is still being appended to, so End and Torn are transient states —
   the cursor parks ([`Caught_up]) and resumes from the same offset once
   the writer has flushed more bytes. A torn or garbled region is only
   skipped once a NEWER segment exists: rotation proves the writer has
   abandoned the tail for good. *)
module Tail = struct
  type cursor = {
    dir : string;
    mutable cur_gen : int;
    mutable ic : in_channel option;
    mutable header_done : bool;
  }

  let create ~dir ~from_gen =
    { dir; cur_gen = from_gen; ic = None; header_done = false }

  let gen c = c.cur_gen

  let close c =
    (match c.ic with Some ic -> close_in_noerr ic | None -> ());
    c.ic <- None

  let seg_at ~dir g = List.find_opt (fun (sg, _) -> sg >= g) (segments ~dir)
  let newer_exists ~dir g = List.exists (fun (sg, _) -> sg > g) (segments ~dir)

  let advance c =
    close c;
    c.cur_gen <- c.cur_gen + 1;
    c.header_done <- false

  let rec next c =
    match c.ic with
    | None -> (
        match seg_at ~dir:c.dir c.cur_gen with
        | None -> `Caught_up
        | Some (sg, path) -> (
            match open_in_bin path with
            | ic ->
                c.cur_gen <- sg;
                c.ic <- Some ic;
                c.header_done <- false;
                next c
            | exception Sys_error _ -> `Caught_up))
    | Some ic -> (
        let off = pos_in ic in
        match Frame.read ic with
        | Frame.End ->
            if newer_exists ~dir:c.dir c.cur_gen then begin
              advance c;
              next c
            end
            else `Caught_up
        | Frame.Torn _ ->
            (* Frame.read may have consumed a partial header; rewind so a
               retry sees the completed frame once it lands. *)
            seek_in ic off;
            if newer_exists ~dir:c.dir c.cur_gen then begin
              advance c;
              next c
            end
            else `Caught_up
        | Frame.Record payload ->
            if not c.header_done then
              if payload = magic ^ string_of_int c.cur_gen then begin
                c.header_done <- true;
                next c
              end
              else begin
                seek_in ic off;
                if newer_exists ~dir:c.dir c.cur_gen then begin
                  advance c;
                  next c
                end
                else `Caught_up
              end
            else `Record (c.cur_gen, payload))
end
