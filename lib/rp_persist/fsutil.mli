(** Shared file plumbing for the persistence plane. *)

val write_all : ?fault:string -> Unix.file_descr -> string -> unit
(** Write the whole string, retrying [EINTR] and short writes. [fault]
    names an {!Rp_fault.io_cap} site consulted before each chunk: a
    [Truncate_io] there writes only the capped prefix and then raises
    {!Rp_fault.Injected} — modelling a crash that tore the final record. *)

val fsync : Unix.file_descr -> unit
(** [Unix.fsync], swallowing [Unix_error] (e.g. fds that cannot sync). *)

val fsync_dir : string -> unit
(** fsync a directory so a just-renamed file is durable (best effort). *)

val mkdir_p : string -> unit

val scan_gen_files : dir:string -> prefix:string -> suffix:string -> (int * string) list
(** Files in [dir] named [<prefix><digits><suffix>], as
    [(generation, absolute path)], sorted ascending by generation.
    Empty if the directory does not exist. *)
