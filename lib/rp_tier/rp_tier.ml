module Frame = Rp_persist.Frame
module Fsutil = Rp_persist.Fsutil
module Crc32 = Rp_persist.Crc32

type location = { segment : int; offset : int; len : int }
type read_error = Gone | Torn

module type TIER = sig
  type t

  val append :
    t -> key:string -> data:string -> (location, [ `Full | `Failed of string ]) result

  val read : t -> location -> (string * string, read_error) result
  val mark_dead : t -> location -> unit
  val total_bytes : t -> int
  val live_bytes : t -> int
  val segment_count : t -> int
  val close : t -> unit
end

let append_site = "tier.segment.append"
let read_torn_site = "tier.read.torn"

module Cold_store = struct
  let prefix = "tier-"
  let suffix = ".seg"
  let filename ~gen = Printf.sprintf "%s%010d%s" prefix gen suffix

  type segment = {
    gen : int;
    path : string;
    mutable bytes : int;  (* file bytes, torn tails included *)
    mutable live : int;  (* bytes of frames still referenced *)
    mutable sealed : bool;
    (* A segment inherited from a previous run has an unknown live map
       until [finish_recovery] walks it; it must not be auto-dropped on
       the strength of its provisional zero. *)
    mutable recovered : bool;
    mutable fd : Unix.file_descr option;  (* Some only for the head *)
  }

  type t = {
    tdir : string;
    max_bytes : int;
    segment_bytes : int;
    mu : Mutex.t;  (* leaf: guards the segment index and head appends *)
    segs : (int, segment) Hashtbl.t;
    mutable head : segment;
    mutable total : int;  (* sum of seg.bytes *)
    mutable closed : bool;
  }

  let dir t = t.tdir
  let head_gen t = t.head.gen

  (* --- record encoding: frame payload = [u32 klen][key][data] --- *)

  let encode_payload ~key ~data =
    let klen = String.length key in
    let b = Bytes.create (4 + klen + String.length data) in
    Bytes.set_int32_be b 0 (Int32.of_int klen);
    Bytes.blit_string key 0 b 4 klen;
    Bytes.blit_string data 0 b (4 + klen) (String.length data);
    Bytes.unsafe_to_string b

  let decode_payload payload =
    let plen = String.length payload in
    if plen < 4 then None
    else
      let klen = Int32.to_int (String.get_int32_be payload 0) in
      if klen < 0 || 4 + klen > plen then None
      else
        Some (String.sub payload 4 klen, String.sub payload (4 + klen) (plen - 4 - klen))

  (* --- segment lifecycle (t.mu held) --- *)

  let open_head t ~gen =
    let path = Filename.concat t.tdir (filename ~gen) in
    let fd =
      Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    let seg =
      { gen; path; bytes = 0; live = 0; sealed = false; recovered = true; fd = Some fd }
    in
    Hashtbl.replace t.segs gen seg;
    seg

  let drop_locked t seg =
    (try Sys.remove seg.path with Sys_error _ -> ());
    Hashtbl.remove t.segs seg.gen;
    t.total <- t.total - seg.bytes

  let maybe_drop_locked t seg =
    if seg.sealed && seg.recovered && seg.live = 0 then drop_locked t seg

  let seal_head_locked t =
    let head = t.head in
    (match head.fd with
    | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
    | None -> ());
    head.fd <- None;
    head.sealed <- true;
    maybe_drop_locked t head;
    t.head <- open_head t ~gen:(head.gen + 1)

  let open_ ?segment_bytes ~dir ~max_bytes () =
    match
      Fsutil.mkdir_p dir;
      Fsutil.scan_gen_files ~dir ~prefix ~suffix
    with
    | exception e -> Error (Printexc.to_string e)
    | existing ->
        let segment_bytes =
          match segment_bytes with
          | Some s when s > 0 -> s
          | _ -> max 65536 (max_bytes / 8)
        in
        let t =
          {
            tdir = dir;
            max_bytes;
            segment_bytes;
            mu = Mutex.create ();
            segs = Hashtbl.create 16;
            head =
              (* placeholder, replaced just below once the max existing
                 generation is known *)
              {
                gen = 0;
                path = "";
                bytes = 0;
                live = 0;
                sealed = true;
                recovered = true;
                fd = None;
              };
            total = 0;
            closed = false;
          }
        in
        let max_gen =
          List.fold_left
            (fun acc (gen, path) ->
              let bytes =
                try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
              in
              Hashtbl.replace t.segs gen
                {
                  gen;
                  path;
                  bytes;
                  live = 0;
                  sealed = true;
                  recovered = false;
                  fd = None;
                };
              t.total <- t.total + bytes;
              max acc gen)
            0 existing
        in
        (match open_head t ~gen:(max_gen + 1) with
        | seg -> t.head <- seg
        | exception e -> raise e);
        Ok t

  let with_mu t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (* --- append (demotion path; called under the victim's write stripe,
     t.mu is a leaf below every store lock) --- *)

  let append t ~key ~data =
    with_mu t (fun () ->
        if t.closed then Error (`Failed "tier closed")
        else
          let payload = encode_payload ~key ~data in
          if String.length payload > Frame.max_payload then Error (`Failed "oversize")
          else begin
            let buf = Buffer.create (String.length payload + Frame.header_bytes) in
            Frame.add buf payload;
            let frame = Buffer.contents buf in
            let flen = String.length frame in
            if t.total + flen > t.max_bytes then Error `Full
            else begin
              if t.head.bytes > 0 && t.head.bytes + flen > t.segment_bytes then
                seal_head_locked t;
              let head = t.head in
              let fd = Option.get head.fd in
              match Fsutil.write_all ~fault:append_site fd frame with
              | () ->
                  let offset = head.bytes in
                  head.bytes <- head.bytes + flen;
                  head.live <- head.live + flen;
                  t.total <- t.total + flen;
                  Ok { segment = head.gen; offset; len = flen }
              | exception e ->
                  (* The write may have landed partially: re-stat for the
                     true size, count the torn bytes as dead, and retire
                     this head so the next append starts on clean bytes. *)
                  let sz =
                    try (Unix.fstat fd).Unix.st_size
                    with Unix.Unix_error _ -> head.bytes
                  in
                  t.total <- t.total + (sz - head.bytes);
                  head.bytes <- sz;
                  seal_head_locked t;
                  Error (`Failed (Printexc.to_string e))
            end
          end)

  (* --- positioned read (no lock held across the I/O) --- *)

  let really_read fd buf =
    let len = Bytes.length buf in
    let rec go off =
      if off >= len then off
      else
        match Unix.read fd buf off (len - off) with
        | 0 -> off
        | n -> go (off + n)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    in
    go 0

  let decode_frame ~loc buf got =
    if got < loc.len || loc.len < Frame.header_bytes then Error Torn
    else
      let payload_len = Int32.to_int (Bytes.get_int32_be buf 0) in
      let crc = Int32.to_int (Bytes.get_int32_be buf 4) land 0xFFFFFFFF in
      if payload_len <> loc.len - Frame.header_bytes then Error Torn
      else
        let payload = Bytes.sub_string buf Frame.header_bytes payload_len in
        if Crc32.string payload <> crc then Error Torn
        else
          match decode_payload payload with
          | Some (key, data) -> Ok (key, data)
          | None -> Error Torn

  let read t loc =
    let path =
      with_mu t (fun () ->
          match Hashtbl.find_opt t.segs loc.segment with
          | Some seg -> Some seg.path
          | None -> None)
    in
    match path with
    | None -> Error Gone
    | Some path -> (
        match Unix.openfile path [ Unix.O_RDONLY ] 0 with
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> Error Gone
        | exception Unix.Unix_error _ -> Error Torn
        | fd ->
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                match
                  Rp_fault.point read_torn_site;
                  ignore (Unix.lseek fd loc.offset Unix.SEEK_SET);
                  let buf = Bytes.create loc.len in
                  let got = really_read fd buf in
                  decode_frame ~loc buf got
                with
                | r -> r
                | exception Rp_fault.Injected _ -> Error Torn
                | exception Unix.Unix_error _ -> Error Torn))

  (* --- live accounting --- *)

  let mark_dead t loc =
    with_mu t (fun () ->
        match Hashtbl.find_opt t.segs loc.segment with
        | Some seg ->
            seg.live <- max 0 (seg.live - loc.len);
            maybe_drop_locked t seg
        | None -> ())

  let total_bytes t = with_mu t (fun () -> t.total)

  let live_bytes t =
    with_mu t (fun () -> Hashtbl.fold (fun _ seg acc -> acc + seg.live) t.segs 0)

  let segment_count t = with_mu t (fun () -> Hashtbl.length t.segs)

  (* --- compaction support --- *)

  let segment_entries t gen =
    let path =
      with_mu t (fun () ->
          match Hashtbl.find_opt t.segs gen with
          | Some seg -> Some seg.path
          | None -> None)
    in
    match path with
    | None -> []
    | Some path -> (
        match open_in_bin path with
        | exception Sys_error _ -> []
        | ic ->
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () ->
                let acc = ref [] in
                let rec walk () =
                  let offset = pos_in ic in
                  match Frame.read ic with
                  | Frame.Record payload ->
                      (match decode_payload payload with
                      | Some (key, data) ->
                          let len = Frame.header_bytes + String.length payload in
                          acc := ({ segment = gen; offset; len }, key, data) :: !acc
                      | None -> ());
                      walk ()
                  | Frame.End | Frame.Torn _ -> ()
                in
                walk ();
                List.rev !acc))

  let compact_candidate t ~min_dead_ratio =
    with_mu t (fun () ->
        Hashtbl.fold
          (fun _ seg best ->
            if seg.sealed && seg.recovered && seg.bytes > 0 then begin
              let dead =
                float_of_int (seg.bytes - seg.live) /. float_of_int seg.bytes
              in
              if dead >= min_dead_ratio then
                match best with
                | Some (_, best_dead) when best_dead >= dead -> best
                | _ -> Some (seg.gen, dead)
              else best
            end
            else best)
          t.segs None
        |> Option.map fst)

  let drop_segment t gen =
    with_mu t (fun () ->
        match Hashtbl.find_opt t.segs gen with
        | Some seg when seg.sealed -> drop_locked t seg
        | Some _ | None -> ())

  (* --- recovery --- *)

  let finish_recovery t ~is_live =
    let pending =
      with_mu t (fun () ->
          Hashtbl.fold
            (fun _ seg acc -> if seg.recovered then acc else seg.gen :: acc)
            t.segs [])
    in
    let dropped = ref 0 in
    List.iter
      (fun gen ->
        (* Walk outside the mutex (is_live does table lookups); the
           segment cannot vanish meanwhile — unrecovered segments are
           never dropped. *)
        let live =
          List.fold_left
            (fun acc (loc, key, _) -> if is_live key loc then acc + loc.len else acc)
            0 (segment_entries t gen)
        in
        with_mu t (fun () ->
            match Hashtbl.find_opt t.segs gen with
            | Some seg ->
                seg.live <- live;
                seg.recovered <- true;
                if live = 0 then begin
                  drop_locked t seg;
                  incr dropped
                end
            | None -> ()))
      (List.sort compare pending);
    !dropped

  let close t =
    with_mu t (fun () ->
        if not t.closed then begin
          t.closed <- true;
          match t.head.fd with
          | Some fd ->
              (try Unix.close fd with Unix.Unix_error _ -> ());
              t.head.fd <- None
          | None -> ()
        end)
end
