(** Cold tier under the relativistic table: an append-only value-segment
    store for datasets larger than RAM.

    Keys never leave the RP table. When the store demotes a victim, the
    item's in-memory value is replaced by a compact location record and
    the (key, value) pair is appended — CRC-framed, like every durable
    byte in this stack — to the current {e segment} file. A cold GET is
    then one relativistic lookup plus one positioned read; promotion
    reinserts the value under the key's write stripe.

    The tier is a cache, not the durability plane: the op log already
    holds every acked SET in full, so segments are never fsynced and a
    crash costs nothing but warmth. Per-segment live-byte accounting
    drives copying compaction: deletes and overwrites {!Cold_store.mark_dead}
    their location, and a mostly-dead sealed segment is rewritten (live
    records re-appended to the head) and unlinked.

    On-disk layout: [<dir>/tier-<gen>.seg], each a sequence of
    {!Rp_persist.Frame}s whose payload is [[u32 klen][key][data]]. A
    {!location} names the frame — segment generation, byte offset of the
    frame header, whole-frame length — so a read is exactly one
    [pread]-shaped slice, verified by the frame CRC before use.

    Failpoints: ["tier.segment.append"] (an {!Rp_fault.io_cap} site on
    the segment write — [Truncate_io] tears the frame, [Raise] models a
    crash mid-demotion) and ["tier.read.torn"] (a {!Rp_fault.point} in
    the read path; a fire surfaces as {!Torn}). *)

type location = { segment : int; offset : int; len : int }
(** A demoted value's address: generation of its segment file, byte
    offset of its frame, and whole-frame length (header included). *)

type read_error =
  | Gone  (** segment no longer exists (compacted away) — re-resolve *)
  | Torn  (** frame failed its CRC / bounds check — the value is lost *)

(** The tier abstraction: what the hot store needs from a colder layer.
    [Cold_store] below is the disk implementation; the signature keeps
    the store glue implementation-agnostic (a future tier could be a
    remote peer or an object store). *)
module type TIER = sig
  type t

  val append :
    t -> key:string -> data:string -> (location, [ `Full | `Failed of string ]) result
  (** Demote one value. [`Full] when the byte budget is exhausted (the
      caller should fall back to plain eviction); [`Failed] on an I/O
      error (the head segment is sealed and a fresh one opened, so the
      next append lands on clean bytes). *)

  val read : t -> location -> (string * string, read_error) result
  (** [(key, data)] at a location. Lock-free against appends: the only
      shared state touched is the segment directory lookup. *)

  val mark_dead : t -> location -> unit
  (** The location is no longer referenced (its key was deleted,
      overwritten, promoted, or relocated). A sealed segment whose last
      live byte dies is unlinked on the spot. *)

  val total_bytes : t -> int
  val live_bytes : t -> int
  val segment_count : t -> int
  val close : t -> unit
end

module Cold_store : sig
  include TIER

  val open_ :
    ?segment_bytes:int -> dir:string -> max_bytes:int -> unit -> (t, string) result
  (** Open (creating [dir] if needed) and index any segments left by a
      previous run. Pre-existing segments are {e unrecovered} — their
      live maps are unknown — until {!finish_recovery} walks them; until
      then they are readable but never dropped. [segment_bytes] caps one
      segment file (default [max 65536 (max_bytes / 8)]), [max_bytes]
      the whole tier. *)

  val finish_recovery : t -> is_live:(string -> location -> bool) -> int
  (** Rebuild the live map of every unrecovered segment by walking its
      frames and asking [is_live key loc] — the store-side check "does
      the table still hold a cold marker for exactly this location?".
      Fully-dead segments are unlinked. Returns the number of segments
      dropped. Call after the store's own recovery has replayed. *)

  val head_gen : t -> int

  val segment_entries : t -> int -> (location * string * string) list
  (** Every decodable [(location, key, data)] frame in a segment, in
      file order, stopping at a torn tail. Dead records included — the
      compactor filters against the table's markers. *)

  val compact_candidate : t -> min_dead_ratio:float -> int option
  (** The sealed, recovered segment with the highest dead ratio, if any
      is at least [min_dead_ratio] dead. The head is never a candidate. *)

  val drop_segment : t -> int -> unit
  (** Unlink a sealed segment unconditionally (test/maintenance hatch —
      live records in it become {!Gone}). *)

  val dir : t -> string
end

val append_site : string
(** ["tier.segment.append"]. *)

val read_torn_site : string
(** ["tier.read.torn"]. *)
