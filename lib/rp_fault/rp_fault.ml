exception Injected of string

type action = Delay of float | Yield | Raise | Truncate_io of int

type trigger = Always | Every of int | Probability of float | One_shot

type site = {
  mutable trigger : trigger;
  mutable action : action;
  mutable prng : Rp_workload.Prng.t;
  mutable hits : int;
  mutable fires : int;
  mutable active : bool;
}

(* Fast path: [point] is compiled into hot code, so when nothing is armed it
   must cost one atomic load and a branch. *)
let armed_count = Atomic.make 0

let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let with_registry f =
  Mutex.lock registry_mutex;
  match f () with
  | v ->
      Mutex.unlock registry_mutex;
      v
  | exception e ->
      Mutex.unlock registry_mutex;
      raise e

let arm ?seed name ~trigger ~action =
  (match trigger with
  | Every n when n < 1 -> invalid_arg "Rp_fault.arm: Every n with n < 1"
  | Probability p when not (p >= 0.0 && p <= 1.0) ->
      invalid_arg "Rp_fault.arm: probability outside [0, 1]"
  | _ -> ());
  let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some site ->
          if not site.active then Atomic.incr armed_count;
          site.trigger <- trigger;
          site.action <- action;
          site.prng <- Rp_workload.Prng.create ~seed;
          site.hits <- 0;
          site.fires <- 0;
          site.active <- true
      | None ->
          Hashtbl.add registry name
            {
              trigger;
              action;
              prng = Rp_workload.Prng.create ~seed;
              hits = 0;
              fires = 0;
              active = true;
            };
          Atomic.incr armed_count)

let disarm name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some site when site.active ->
          site.active <- false;
          Atomic.decr armed_count
      | Some _ | None -> ())

let reset () =
  with_registry (fun () ->
      Hashtbl.iter
        (fun _ site -> if site.active then Atomic.decr armed_count)
        registry;
      Hashtbl.reset registry)

let armed name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | Some site -> site.active
      | None -> false)

let armed_sites () =
  with_registry (fun () ->
      Hashtbl.fold
        (fun name site acc -> if site.active then name :: acc else acc)
        registry [])
  |> List.sort String.compare

let hits name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with Some s -> s.hits | None -> 0)

let fires name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with Some s -> s.fires | None -> 0)

(* Evaluate the trigger under the registry lock; the action itself runs
   outside it (a Delay must not serialize unrelated sites, and a Raise must
   not leave the lock held). *)
let evaluate name =
  with_registry (fun () ->
      match Hashtbl.find_opt registry name with
      | None -> None
      | Some site when not site.active -> None
      | Some site ->
          site.hits <- site.hits + 1;
          let fire =
            match site.trigger with
            | Always -> true
            | Every n -> site.hits mod n = 0
            | Probability p -> Rp_workload.Prng.float site.prng < p
            | One_shot ->
                site.active <- false;
                Atomic.decr armed_count;
                true
          in
          if fire then begin
            site.fires <- site.fires + 1;
            Some site.action
          end
          else None)

let perform name = function
  | Delay s -> if s > 0.0 then Unix.sleepf s
  | Yield -> Thread.yield ()
  | Raise -> raise (Injected name)
  | Truncate_io _ -> ()

(* Fires are rare, armed-only events: worth a trace-ring entry each so a
   torture run's timeline shows exactly where faults landed. *)
let trace_fire name =
  Rp_obs.Trace.emit Rp_obs.Trace.default ("fault." ^ name)

let point name =
  if Atomic.get armed_count > 0 then
    match evaluate name with
    | None -> ()
    | Some action ->
        trace_fire name;
        perform name action

let io_cap name len =
  if Atomic.get armed_count = 0 then len
  else
    match evaluate name with
    | None -> len
    | Some (Truncate_io cap) ->
        trace_fire name;
        max 1 (min cap len)
    | Some action ->
        trace_fire name;
        perform name action;
        len
