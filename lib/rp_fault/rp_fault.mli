(** Deterministic, seeded failpoint plane (kernel fail-points, userspace).

    A failpoint {e site} is a named hook compiled into production code:
    [Rp_fault.point "rp_ht.unzip.splice"]. Sites cost one atomic load when
    nothing is armed, so they stay in release builds. Tests and the torture
    harness {e arm} a site with a trigger (when to fire) and an action (what
    to do), then drive the system and assert its invariants survived.

    Site naming convention: ["<layer>.<operation>.<moment>"] —
    ["rcu.synchronize.pre"], ["rp_ht.unzip.splice"],
    ["server.write.partial"], ["server.conn.reset"], …

    Determinism: probabilistic triggers draw from a per-site SplitMix64
    stream seeded at {!arm} time, so a fixed seed yields the same fire
    pattern for the same sequence of evaluations. (Under concurrency the
    interleaving of evaluations is, of course, scheduler-dependent.)

    The registry is global and thread-safe; actions run outside the
    registry lock, so a [Delay] at one site never blocks another site. *)

exception Injected of string
(** Raised by a fired site whose action is {!Raise}; the payload is the
    site name. Code under fault injection treats this as "the thread
    crashed here". *)

(** What a fired site does. *)
type action =
  | Delay of float  (** sleep that many seconds *)
  | Yield  (** [Thread.yield] — perturb scheduling only *)
  | Raise  (** raise {!Injected} with the site name *)
  | Truncate_io of int
      (** cap the byte count of an I/O operation routed through {!io_cap};
          meaningless (a no-op) at a plain {!point} *)

(** When an armed site fires. *)
type trigger =
  | Always
  | Every of int  (** every [n]th evaluation ([n >= 1]) *)
  | Probability of float  (** each evaluation independently, seeded PRNG *)
  | One_shot  (** the next evaluation only, then the site disarms itself *)

val arm : ?seed:int -> string -> trigger:trigger -> action:action -> unit
(** Arm a site (creating it on first mention) and zero its counters. The
    PRNG behind [Probability] is reseeded from [seed] (default: a hash of
    the site name). Raises [Invalid_argument] on [Every n] with [n < 1] or
    a probability outside [0, 1]. *)

val disarm : string -> unit
(** Stop a site from firing. Counters are kept until {!reset} or a
    re-{!arm}. Unknown sites are ignored. *)

val reset : unit -> unit
(** Disarm every site and forget all counters — call between test runs. *)

val armed : string -> bool
val armed_sites : unit -> string list
(** Currently armed site names, sorted. *)

val hits : string -> int
(** Evaluations of the site while armed (0 for unknown sites). *)

val fires : string -> int
(** Evaluations that triggered the action. *)

val point : string -> unit
(** The hook: no-op unless the site is armed and its trigger fires, in
    which case the action runs here ([Delay]/[Yield]/[Raise]). Every fire
    also emits a ["fault.<site>"] event into {!Rp_obs.Trace.default}, so
    torture timelines show where faults landed. *)

val io_cap : string -> int -> int
(** [io_cap site len] is the hook for I/O sites: returns how many bytes
    the caller may transfer in this call — [len] normally, [min cap len]
    (at least 1) when a [Truncate_io cap] fires. Other actions behave as
    at a {!point} (so a [Raise] here models a torn connection). *)
