(** Striped Space-Saving top-k sketch.

    Per-domain instances under the {!Rp_obs.Stripe} discipline: recording
    is plain stores into the calling domain's private instance, merging
    sums counts and error bounds across instances at read time. For any
    merged entry, [count - err <= true count <= count], and every key
    whose true frequency exceeds [N/k] of the merged stream is reported. *)

type t

type entry = {
  key : string;
  count : int;  (** estimated occurrences (an overestimate) *)
  err : int;  (** overestimation bound: [count - err <= true] *)
  exemplar : int;  (** last sampled trace id that touched the key; 0 = none *)
}

val create : k:int -> t
(** [create ~k] tracks up to [k] heavy hitters per domain. Raises
    [Invalid_argument] when [k <= 0]. *)

val k : t -> int

val record : t -> ?exemplar:int -> string -> unit
(** Count one occurrence in the calling domain's instance. A non-zero
    [exemplar] (a trace id) is remembered on the entry. No-op while the
    observability plane is disabled ({!Rp_obs.Stripe.set_enabled}). *)

val top : ?n:int -> t -> entry list
(** Merged heavy hitters, count-descending (key-ascending under ties),
    truncated to [n] when given. Relaxed like [Counter.read]: may trail
    concurrent recording, exact once recorders have quiesced. *)

val total : t -> int
(** Merged stream length: how many [record] calls the sketch absorbed. *)

val reset : t -> unit
(** Forget everything. Racy against concurrent recording. *)
