(* Striped Space-Saving top-k sketch.

   One private Space-Saving instance per stripe slot ([Rp_obs.Stripe]):
   while a domain is live it owns its slot exclusively, so recording is
   plain unsynchronized stores — no atomic read-modify-write anywhere on
   the hot path, the same discipline as [Rp_obs.Counter]. Readers merge
   all instances on demand (Space-Saving merges by summing counts and
   error bounds per key), so the combined error keeps the classic bound:
   for any reported entry, [count - err <= true <= count], and every key
   with true frequency above [N/k] (N = merged stream length) is
   present.

   The hot path is budgeted against the store's wait-free GET (the
   1.15x overhead gate), which forces two departures from the textbook
   layout:

   - the key index is a {e direct-mapped cache} (hash -> entry
     candidate, no probing, no tombstones): a collision merely
     overwrites the mapping, and an entry whose mapping was stolen is
     re-inserted as a {e duplicate} on its next occurrence. Duplicates
     are harmless: the merge sums counts and error bounds {e by key}
     (within a slot exactly as across slots), and the Space-Saving
     invariants — every occurrence increments some entry, eviction
     transfers a count into the newcomer's error bound — hold entry-
     wise, so the summed estimate keeps [count - err <= true <= count];

   - eviction picks its victim with a {e clock scan} against a cached
     lower bound on the minimum count instead of a full argmin: any
     entry at the cached minimum is a valid Space-Saving victim, in the
     churn regime almost every entry sits at that minimum so the hand
     stops within a step or two, and when a full revolution finds
     nothing the minimum has genuinely risen and one exact rescan
     re-anchors the bound (amortized O(1), worst case O(k)).

   Concurrent merge safety: all entry fields are single words, so a
   racing reader sees torn *pairs*, never torn values. Key replacement
   (the only multi-word update) is guarded by a per-entry generation
   stamp — odd while the entry is being rewritten, bumped even after —
   and the merger rejects entries whose stamp was odd or changed across
   its reads, so a count is never attributed to the key that replaced
   its owner. *)

type entry = { key : string; count : int; err : int; exemplar : int }

type slot = {
  keys : string array;
  hashes : int array;  (* cached key hash: entry compare is int-first *)
  counts : int array;
  errs : int array;  (* overestimation bound, set at (re)insertion *)
  exemplars : int array;  (* last sampled trace id touching the entry *)
  gens : int Atomic.t array;  (* even = stable, odd = mid-replacement *)
  mutable used : int;
  mutable total : int;  (* stream length seen by this slot *)
  idx : int array;  (* direct-mapped: hash -> entry + 1; 0 = empty *)
  idx_mask : int;
  mutable min_count : int;  (* cached lower bound on the minimum count *)
  mutable scan : int;  (* clock hand of the eviction scan *)
  mutable last : int;  (* most recently inserted entry, -1 = none *)
}

type t = { k : int; slots : slot option array }

let create ~k =
  if k <= 0 then invalid_arg "Rp_heat.Sketch.create: k <= 0";
  { k; slots = Array.make Rp_obs.Stripe.capacity None }

let k t = t.k

(* Index cells sized to 64k entries (32 KiB at k = 64): a hot key
   shares its cell pair with few cold keys, so its mapping survives
   nearly all of the traffic that matters to it. *)
let idx_size k =
  let rec pow2 n = if n >= 64 * k then n else pow2 (n * 2) in
  pow2 256

let make_slot k =
  let size = idx_size k in
  {
    keys = Array.make k "";
    hashes = Array.make k 0;
    counts = Array.make k 0;
    errs = Array.make k 0;
    exemplars = Array.make k 0;
    gens = Array.init k (fun _ -> Atomic.make 0);
    used = 0;
    total = 0;
    idx = Array.make size 0;
    idx_mask = size - 1;
    min_count = 0;
    scan = 0;
    last = -1;
  }

(* Word-at-a-time for the common protocol-sized key (two 8-byte loads
   + one mix), FNV for the short tail. Bytes are assembled by hand —
   [Bytes.get_int64_le] would box an [Int64] per call, and that
   allocation is what the GET p99 gate sees. A full-hash collision only
   costs the losing key its index cell — the string compare in [record]
   still separates entries — so mixing quality buys accuracy, not
   correctness. *)
let[@inline] word8 s i =
  let b j = Char.code (String.unsafe_get s (i + j)) in
  b 0
  lor (b 1 lsl 8)
  lor (b 2 lsl 16)
  lor (b 3 lsl 24)
  lor (b 4 lsl 32)
  lor (b 5 lsl 40)
  lor (b 6 lsl 48)
  lor (b 7 lsl 56)

let hash_key s =
  let len = String.length s in
  if len >= 8 then
    Rp_hashes.Hashfn.splitmix64
      (word8 s 0 lxor (word8 s (len - 8) * 0x9e3779b1) lxor len)
  else Rp_hashes.Hashfn.fnv1a_string s

(* A victim for Space-Saving eviction: the next entry (from the clock
   hand) whose count sits at the cached minimum. A fruitless full
   revolution means every count outgrew the cache; re-anchor with one
   exact argmin scan. *)
let pick_victim k s =
  let rec scan i tries =
    if tries = k then begin
      let m = ref 0 in
      for e = 1 to k - 1 do
        if Array.unsafe_get s.counts e < Array.unsafe_get s.counts !m then
          m := e
      done;
      s.min_count <- Array.unsafe_get s.counts !m;
      !m
    end
    else if Array.unsafe_get s.counts i <= s.min_count then i
    else scan (if i + 1 = k then 0 else i + 1) (tries + 1)
  in
  let m = scan s.scan 0 in
  s.scan <- (if m + 1 = k then 0 else m + 1);
  m

(* The entry behind index cell [c], or -1 when the cell is empty or
   holds a different key (hash-first compare). *)
let[@inline] cell_entry s c h key =
  let v = Array.unsafe_get s.idx c in
  if
    v > 0
    && Array.unsafe_get s.hashes (v - 1) = h
    && String.equal (Array.unsafe_get s.keys (v - 1)) key
  then v - 1
  else -1

(* Map entry [e] from its cell pair, stealing only a {e weak} cell —
   empty, or held by an entry still in the churn band (count within one
   of the cached minimum). A hot entry's mapping therefore can't be
   displaced by miss traffic; when both cells are strong the newcomer
   simply stays unmapped and re-enters as a duplicate next time, which
   the merge absorbs. *)
let place s cell0 e =
  let weak c =
    let v = Array.unsafe_get s.idx c in
    v = 0 || Array.unsafe_get s.counts (v - 1) <= s.min_count + 1
  in
  if weak cell0 then Array.unsafe_set s.idx cell0 (e + 1)
  else begin
    let c1 = cell0 lxor 1 in
    if weak c1 then Array.unsafe_set s.idx c1 (e + 1)
  end

let record t ?(exemplar = 0) key =
  if Rp_obs.Stripe.is_enabled () then begin
    let si = Rp_obs.Stripe.index () in
    let s =
      match Array.unsafe_get t.slots si with
      | Some s -> s
      | None ->
          let s = make_slot t.k in
          t.slots.(si) <- Some s;
          s
    in
    s.total <- s.total + 1;
    let h = hash_key key in
    let cell0 = h land s.idx_mask land lnot 1 in
    (* Third find candidate after the cell pair: the most recently
       inserted entry. An entry that lost the cell contest (both cells
       strong) is still found across a consecutive run of its key — the
       pattern where unmapped duplicates would otherwise pile up. *)
    let e =
      let e0 = cell_entry s cell0 h key in
      if e0 >= 0 then e0
      else
        let e1 = cell_entry s (cell0 lor 1) h key in
        if e1 >= 0 then e1
        else
          let l = s.last in
          if
            l >= 0
            && Array.unsafe_get s.hashes l = h
            && String.equal (Array.unsafe_get s.keys l) key
          then l
          else -1
    in
    if e >= 0 then begin
      Array.unsafe_set s.counts e (Array.unsafe_get s.counts e + 1);
      if exemplar <> 0 then Array.unsafe_set s.exemplars e exemplar
    end
    else if s.used < t.k then begin
      (* Room left: exact entry, no error. Publish [used] last so a
         concurrent merge never reads a half-written entry. *)
      let e = s.used in
      s.keys.(e) <- key;
      s.hashes.(e) <- h;
      s.counts.(e) <- 1;
      s.errs.(e) <- 0;
      s.exemplars.(e) <- exemplar;
      place s cell0 e;
      s.last <- e;
      s.used <- e + 1
    end
    else begin
      (* Space-Saving eviction: a min-count entry makes way and the
         newcomer inherits its count as the overestimation bound. The
         victim's stale index cell (if any) now points at a foreign key
         and fails the compare above — no removal needed. *)
      let m = pick_victim t.k s in
      Atomic.set s.gens.(m) (Atomic.get s.gens.(m) + 1);
      s.errs.(m) <- s.counts.(m);
      s.counts.(m) <- s.counts.(m) + 1;
      s.keys.(m) <- key;
      s.hashes.(m) <- h;
      s.exemplars.(m) <- exemplar;
      place s cell0 m;
      s.last <- m;
      Atomic.set s.gens.(m) (Atomic.get s.gens.(m) + 1)
    end
  end

(* Merge all slots: sum counts and error bounds per key (duplicate
   entries of one key fold together here), keep the most recent
   non-zero exemplar. Relaxed like [Counter.read] — may trail
   concurrent recording, exact once recorders have quiesced. *)
let merged t =
  let acc = Hashtbl.create 64 in
  Array.iter
    (function
      | None -> ()
      | Some s ->
          let used = min s.used t.k in
          for e = 0 to used - 1 do
            let g = Atomic.get s.gens.(e) in
            if g land 1 = 0 then begin
              let key = s.keys.(e) in
              let count = s.counts.(e) in
              let err = s.errs.(e) in
              let ex = s.exemplars.(e) in
              (* Re-check the stamp: a replacement racing our four reads
                 bumped it, and the entry is dropped for this merge. *)
              if Atomic.get s.gens.(e) = g && count > 0 then begin
                let c0, e0, x0 =
                  match Hashtbl.find_opt acc key with
                  | Some v -> v
                  | None -> (0, 0, 0)
                in
                Hashtbl.replace acc key
                  (c0 + count, e0 + err, if ex <> 0 then ex else x0)
              end
            end
          done)
    t.slots;
  acc

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let top ?n t =
  let l =
    Hashtbl.fold
      (fun key (count, err, exemplar) l -> { key; count; err; exemplar } :: l)
      (merged t) []
  in
  (* count descending, then key ascending: deterministic under ties *)
  let l =
    List.sort (fun a b -> compare (b.count, a.key) (a.count, b.key)) l
  in
  match n with None -> l | Some n -> take n l

let total t =
  Array.fold_left
    (fun acc -> function None -> acc | Some s -> acc + s.total)
    0 t.slots

(* Racy against concurrent recording (an in-flight record may survive),
   like [Histogram.reset]. [used = 0] unpublishes the entries; the index
   is cleared so stale cells cannot resurrect them. *)
let reset t =
  Array.iter
    (function
      | None -> ()
      | Some s ->
          s.used <- 0;
          s.total <- 0;
          s.min_count <- 0;
          s.scan <- 0;
          s.last <- -1;
          Array.fill s.idx 0 (Array.length s.idx) 0;
          Array.fill s.counts 0 (Array.length s.counts) 0)
    t.slots
