(* rp_heat: the workload-insight plane.

   The relativistic stack makes reads nearly free, so the *workload* —
   not the lookup — decides where the system hurts. This plane answers
   the operator questions the other planes can't: which keys are hot
   (per-domain Space-Saving sketches over hits, misses and mutations),
   which writer stripes contend (per-stripe heatmap cells fed by
   [Rp_ht]), what sizes each command class moves (log2 key/value-size
   histograms), and what tier churn costs (promote/demote traffic
   bucketed by value-size class). Top-k entries and latency buckets
   carry trace exemplars — the last sampled [Rp_trace] id that touched
   them — so a hot key links straight to a Perfetto span.

   Recording follows the [Rp_obs] stripe discipline throughout: plain
   stores into domain-private cells, merged at read time, gated by the
   same global kill switch. The store compiles the whole plane down to
   one branch ([match t.heat with None -> ()]) when --heat-topk is 0. *)

module Sketch = Sketch

type t = {
  k : int;
  (* Head sampling: only every [sample_every]-th note on a stripe does
     sketch + histogram work; the off-sample cost is one private counter
     bump. Exposition multiplies counts back up, so reported magnitudes
     stay stream-calibrated and ratios (key shares, distribution shapes)
     are unbiased. This is what holds the note path inside the 1.15x
     GET budget — the full record costs ~5x the whole allowance. *)
  sample_every : int;
  samplers : int array;  (* stripe-strided tick counters, pad 8 *)
  hits : Sketch.t;
  misses : Sketch.t;
  mutations : Sketch.t;
  (* log2 size distributions per command class *)
  get_key_bytes : Rp_obs.Histogram.t;
  get_value_bytes : Rp_obs.Histogram.t;  (* hit payloads *)
  set_key_bytes : Rp_obs.Histogram.t;
  set_value_bytes : Rp_obs.Histogram.t;
  delete_key_bytes : Rp_obs.Histogram.t;
  (* tier churn attribution: bucket counts = events per log2 value-size
     class, _sum = total bytes moved *)
  tier_demote_value_bytes : Rp_obs.Histogram.t;
  tier_promote_value_bytes : Rp_obs.Histogram.t;
  (* per-bucket trace exemplars for watched latency histograms: the
     last sampled trace id to land in each log2 bucket, so an over-SLO
     bucket links to a span. Keyed by the histogram's registry name. *)
  slo_exemplars : (string * int array) list;
  mutable stripe_heat : unit -> (int * int) array;
}

(* The latency histograms whose buckets carry exemplars. These are
   store-owned instruments (microsecond-valued); rp_heat only keeps the
   exemplar cells beside them. *)
let watched_histograms = [ "eviction_sweep_us"; "tier_read_us"; "tier_demote_us" ]

let create ~k ?(sample_every = 16) () =
  if k <= 0 then invalid_arg "Rp_heat.create: k <= 0";
  if sample_every <= 0 || sample_every land (sample_every - 1) <> 0 then
    invalid_arg "Rp_heat.create: sample_every not a power of two";
  let hist () = Rp_obs.Histogram.create () in
  {
    k;
    sample_every;
    samplers = Array.make (Rp_obs.Stripe.capacity * 8) 0;
    hits = Sketch.create ~k;
    misses = Sketch.create ~k;
    mutations = Sketch.create ~k;
    get_key_bytes = hist ();
    get_value_bytes = hist ();
    set_key_bytes = hist ();
    set_value_bytes = hist ();
    delete_key_bytes = hist ();
    tier_demote_value_bytes = hist ();
    tier_promote_value_bytes = hist ();
    slo_exemplars =
      List.map
        (fun name -> (name, Array.make Rp_obs.Histogram.buckets 0))
        watched_histograms;
    stripe_heat = (fun () -> [||]);
  }

let k t = t.k
let sample_every t = t.sample_every
let hits t = t.hits
let misses t = t.misses
let mutations t = t.mutations

(* The note-path gate: kill switch, then this stripe's sampler. True
   with probability 1/sample_every — the only case that pays for sketch
   and histogram work. The sampler is a per-stripe LCG rather than a
   stride counter: a stride phase-locks with periodic key replays
   (cycling an array whose length shares a factor with the period
   samples the same positions every lap, uniformizing the sketch), while
   LCG high bits are unbiased against any replay pattern. *)
let[@inline] tick t =
  Rp_obs.Stripe.is_enabled ()
  && begin
       let i = Rp_obs.Stripe.index () * 8 in
       let st =
         (Array.unsafe_get t.samplers i * 2685821657736338717)
         + 1442695040888963407
       in
       Array.unsafe_set t.samplers i st;
       (st lsr 33) land (t.sample_every - 1) = 0
     end

(* The exemplar riding this record: the in-flight request's trace id,
   but only when that request is head-sampled — an unsampled id points
   at a span whose detail the recorder dropped. *)
let[@inline] exemplar_now () =
  if Rp_trace.sampling_now () then Rp_trace.current_trace_id () else 0

let note_hit t key ~vbytes =
  if tick t then begin
    Sketch.record t.hits ~exemplar:(exemplar_now ()) key;
    Rp_obs.Histogram.observe t.get_key_bytes (String.length key);
    Rp_obs.Histogram.observe t.get_value_bytes vbytes
  end

let note_miss t key =
  if tick t then begin
    Sketch.record t.misses ~exemplar:(exemplar_now ()) key;
    Rp_obs.Histogram.observe t.get_key_bytes (String.length key)
  end

let note_set t ?vbytes key =
  if tick t then begin
    Sketch.record t.mutations ~exemplar:(exemplar_now ()) key;
    Rp_obs.Histogram.observe t.set_key_bytes (String.length key);
    match vbytes with
    | Some v -> Rp_obs.Histogram.observe t.set_value_bytes v
    | None -> ()
  end

let note_delete t key =
  if tick t then begin
    Sketch.record t.mutations ~exemplar:(exemplar_now ()) key;
    Rp_obs.Histogram.observe t.delete_key_bytes (String.length key)
  end

let note_tier_demote t ~vbytes =
  Rp_obs.Histogram.observe t.tier_demote_value_bytes vbytes

let note_tier_promote t ~vbytes =
  Rp_obs.Histogram.observe t.tier_promote_value_bytes vbytes

(* Stamp the exemplar cell of [value]'s bucket in [name]'s exemplar
   table. Called right after the store observes the same value into the
   histogram itself; a plain store (last sampled writer wins). *)
let note_slo t name value =
  if Rp_obs.Stripe.is_enabled () then
    match List.assoc_opt name t.slo_exemplars with
    | None -> ()
    | Some cells ->
        let ex = exemplar_now () in
        if ex <> 0 then cells.(Rp_obs.Histogram.bucket_of_value value) <- ex

let reset t =
  Array.fill t.samplers 0 (Array.length t.samplers) 0;
  Sketch.reset t.hits;
  Sketch.reset t.misses;
  Sketch.reset t.mutations;
  List.iter (fun (_, cells) -> Array.fill cells 0 (Array.length cells) 0)
    t.slo_exemplars

(* --- exposition --- *)

let sketches t =
  [ ("hits", t.hits); ("misses", t.misses); ("mutations", t.mutations) ]

let size_histograms t =
  [
    ("get_key_bytes", t.get_key_bytes);
    ("get_value_bytes", t.get_value_bytes);
    ("set_key_bytes", t.set_key_bytes);
    ("set_value_bytes", t.set_value_bytes);
    ("delete_key_bytes", t.delete_key_bytes);
    ("tier_demote_value_bytes", t.tier_demote_value_bytes);
    ("tier_promote_value_bytes", t.tier_promote_value_bytes);
  ]

let register t reg ~stripe_heat =
  t.stripe_heat <- stripe_heat;
  Rp_obs.Registry.gauge reg ~help:"Space-Saving top-k capacity per domain"
    "heat_topk" (fun () -> float_of_int t.k);
  Rp_obs.Registry.gauge reg
    ~help:"head-sampling period of the heat note path (counts are scaled back)"
    "heat_sample_every"
    (fun () -> float_of_int t.sample_every);
  (* Sampled magnitudes are scaled back to stream units everywhere they
     leave the plane, so operators compare them to cmd_* counters
     directly. *)
  let scale = t.sample_every in
  List.iter
    (fun (name, sk) ->
      Rp_obs.Registry.fn_counter reg
        ~help:("operations absorbed by the " ^ name ^ " sketch (scaled)")
        ("heat_" ^ name ^ "_tracked_total")
        (fun () -> float_of_int (Sketch.total sk * scale));
      Rp_obs.Registry.multi_gauge reg
        ~help:("merged Space-Saving top-k of " ^ name ^ " by key")
        ("heat_topk_" ^ name) ~label:"key"
        (fun () ->
          List.map
            (fun (e : Sketch.entry) -> (e.key, float_of_int (e.count * scale)))
            (Sketch.top ~n:t.k sk)))
    (sketches t);
  List.iter
    (fun (name, h) ->
      Rp_obs.Registry.register_histogram reg
        ~help:("log2 " ^ name ^ " distribution")
        ("heat_" ^ name) h)
    (size_histograms t);
  Rp_obs.Registry.multi_gauge reg
    ~help:"writer stripe lock acquisitions by stripe" "heat_stripe_acquisitions"
    ~label:"stripe"
    (fun () ->
      Array.to_list
        (Array.mapi
           (fun i (acq, _) -> (string_of_int i, float_of_int acq))
           (t.stripe_heat ())));
  Rp_obs.Registry.multi_gauge reg
    ~help:"contended writer stripe acquisitions by stripe"
    "heat_stripe_contended" ~label:"stripe"
    (fun () ->
      Array.to_list
        (Array.mapi
           (fun i (_, cont) -> (string_of_int i, float_of_int cont))
           (t.stripe_heat ())))

(* [stats heat] detail lines: top entries per sketch, one space-free
   value per line (err and exemplar have no labeled-gauge rendering).
   Bounded to 8 ranks per sketch — the full top-k is in the labeled
   gauges and [heat dump]. *)
let stats_detail_ranks = 8

let stats_kv t =
  let lines = ref [] in
  let add k v = lines := (k, v) :: !lines in
  let scale = t.sample_every in
  List.iter
    (fun (name, sk) ->
      List.iteri
        (fun rank (e : Sketch.entry) ->
          let p = Printf.sprintf "heat_top_%s_%d" name rank in
          add (p ^ "_key") e.key;
          add (p ^ "_count") (string_of_int (e.count * scale));
          add (p ^ "_err") (string_of_int (e.err * scale));
          add (p ^ "_exemplar") (Printf.sprintf "0x%x" e.exemplar))
        (Sketch.top ~n:stats_detail_ranks sk))
    (sketches t);
  List.rev !lines

(* --- /heat JSON --- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_sketch buf name sk ~n ~scale =
  Buffer.add_string buf (Printf.sprintf "%S:{\"tracked\":%d,\"top\":[" name
       (Sketch.total sk * scale));
  List.iteri
    (fun rank (e : Sketch.entry) ->
      if rank > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"rank\":%d,\"key\":\"" rank);
      json_escape buf e.key;
      Buffer.add_string buf
        (Printf.sprintf "\",\"count\":%d,\"err\":%d,\"exemplar\":\"0x%x\"}"
           (e.count * scale) (e.err * scale) e.exemplar))
    (Sketch.top ~n sk);
  Buffer.add_string buf "]}"

let json_histogram buf name h =
  let s = Rp_obs.Histogram.snapshot h in
  Buffer.add_string buf
    (Printf.sprintf
       "%S:{\"count\":%d,\"sum\":%d,\"max\":%d,\"p50\":%d,\"p99\":%d}" name
       s.Rp_obs.Histogram.count s.Rp_obs.Histogram.sum s.Rp_obs.Histogram.max
       (Rp_obs.Histogram.percentile s 0.5)
       (Rp_obs.Histogram.percentile s 0.99))

let to_json ?n t =
  let n = match n with Some n -> min n t.k | None -> t.k in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "{\"heat_enabled\":true,\"heat_topk\":%d,\"sample_every\":%d"
       t.k t.sample_every);
  List.iter
    (fun (name, sk) ->
      Buffer.add_char buf ',';
      json_sketch buf name sk ~n ~scale:t.sample_every)
    (sketches t);
  Buffer.add_string buf ",\"stripes\":[";
  Array.iteri
    (fun i (acq, cont) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"stripe\":%d,\"acquisitions\":%d,\"contended\":%d}"
           i acq cont))
    (t.stripe_heat ());
  Buffer.add_string buf "],\"sizes\":{";
  List.iteri
    (fun i (name, h) ->
      if i > 0 then Buffer.add_char buf ',';
      json_histogram buf name h)
    (size_histograms t);
  (* Over-SLO buckets of the watched latency histograms, linked to the
     last sampled span that landed there. The SLO is the tracer's slow
     budget (microsecond-valued histograms, budget in ms). *)
  let slo_us =
    int_of_float (Rp_trace.slow_budget_ms () *. 1000.)
  in
  Buffer.add_string buf
    (Printf.sprintf "},\"slo_us\":%d,\"slo_exemplars\":{" slo_us);
  List.iteri
    (fun i (name, cells) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:[" name);
      let first = ref true in
      Array.iteri
        (fun b ex ->
          if ex <> 0 && Rp_obs.Histogram.upper_bound b >= slo_us then begin
            if not !first then Buffer.add_char buf ',';
            first := false;
            Buffer.add_string buf
              (Printf.sprintf "{\"le\":%d,\"exemplar\":\"0x%x\"}"
                 (Rp_obs.Histogram.upper_bound b) ex)
          end)
        cells;
      Buffer.add_char buf ']')
    t.slo_exemplars;
  Buffer.add_string buf "}}";
  Buffer.contents buf
