(** rp_heat: the workload-insight plane.

    Streaming answers to "which keys are hot, which stripes contend,
    which values cost the most to keep hot": per-domain Space-Saving
    top-k sketches over hits/misses/mutations ({!Sketch}), log2 key- and
    value-size distributions per command class, tier churn attribution
    by value-size class, a per-stripe contention heatmap (fed by
    [Rp_ht.stripe_heat] through {!register}), and trace exemplars — the
    last sampled [Rp_trace] id — on top-k entries and over-SLO latency
    buckets.

    Recording is plain stores under the {!Rp_obs.Stripe} discipline and
    obeys the same global kill switch; a store created with
    [--heat-topk 0] has no [t] at all, so the hot-path cost of an
    unconfigured plane is a single branch. An enabled plane head-samples
    the note path (every [sample_every]-th operation per stripe pays for
    sketch + histogram work, the rest bump one private counter), which
    is what keeps a GET with the plane on inside the 1.15x overhead
    budget. All exposed counts are scaled back to stream units. *)

module Sketch = Sketch

type t

val create : k:int -> ?sample_every:int -> unit -> t
(** [create ~k ()] builds a plane tracking [k] heavy hitters per sketch
    per domain, head-sampling one note in [sample_every] (default 16;
    pass 1 to record every operation, e.g. in tests wanting exact
    counts). Raises [Invalid_argument] when [k <= 0] or [sample_every]
    is not a power of two. *)

val k : t -> int

val sample_every : t -> int

val hits : t -> Sketch.t
val misses : t -> Sketch.t
val mutations : t -> Sketch.t

(** {1 Recording} (hot paths; plain stores only) *)

val note_hit : t -> string -> vbytes:int -> unit
(** A GET hit on [key] returning a [vbytes]-byte payload. *)

val note_miss : t -> string -> unit

val note_set : t -> ?vbytes:int -> string -> unit
(** A storage-class mutation (set/add/replace/cas/append/prepend/incr/
    decr/touch). [vbytes] is the stored payload size when the command
    carries one. *)

val note_delete : t -> string -> unit

val note_tier_demote : t -> vbytes:int -> unit
(** A value of [vbytes] bytes demoted to the cold tier. *)

val note_tier_promote : t -> vbytes:int -> unit

val note_slo : t -> string -> int -> unit
(** [note_slo t hist_name value] stamps the exemplar cell of [value]'s
    log2 bucket in the named watched histogram ([eviction_sweep_us],
    [tier_read_us], [tier_demote_us]) with the current sampled trace id,
    if any. Call it beside the [Rp_obs.Histogram.observe] of the same
    value. *)

val reset : t -> unit
(** Clear the sketches and exemplar cells (the [stats reset] surface).
    The size histograms are registry-owned and reset via
    {!Rp_obs.Registry.reset_histograms}. *)

(** {1 Exposition} *)

val register : t -> Rp_obs.Registry.t -> stripe_heat:(unit -> (int * int) array) -> unit
(** Register the [heat_*] instrument families: top-k labeled gauges
    ([heat_topk_hits{key="..."}] etc.), tracked-total counters, the size
    histograms, and the per-stripe acquisition/contended heatmap gauges
    sampled from [stripe_heat]. *)

val stats_kv : t -> (string * string) list
(** [stats heat] detail lines: per-sketch top entries as
    [heat_top_<sketch>_<rank>_{key,count,err,exemplar}] (bounded ranks;
    the full top-k lives in the labeled gauges and {!to_json}). *)

val to_json : ?n:int -> t -> string
(** The [/heat] document: sketches (top [n], default [k]), stripe
    heatmap, size histograms, and over-SLO bucket exemplars. *)
