(** Resizable, scalable, concurrent hash table via relativistic programming —
    the paper's primary contribution.

    Open chaining over relativistic linked lists. Lookups are wait-free:
    they run inside an RCU read-side critical section, dereference the
    current bucket array through a single published pointer, and walk the
    chain with atomic loads only — no stores to shared memory, no locks, no
    retries. Updates (insert / remove / move) serialize on a {e striped}
    writer lock — a power-of-two array of mutexes indexed by key hash — so
    independent keys mutate concurrently; cross-stripe operations (resize,
    auto-resize, {!complete_splits}, {!validate}) take every stripe in
    ascending order. All writers order their effects with publication and
    wait-for-readers.

    Consistency guarantee (the paper's definition): a reader traversing the
    bucket a key hashes to always observes {e every} element of that bucket.
    During a resize a bucket may transiently be {e imprecise} — contain
    extra elements belonging to a sibling bucket — which lookups tolerate by
    key comparison.

    Resizing (bucket counts are powers of two):
    - {b shrink} to half: link each pair of sibling chains end-to-end,
      publish the half-size bucket array, wait for readers once, reclaim;
    - {b expand} to double: publish a double-size bucket array whose buckets
      point into the old chains (imprecise but complete), then unzip each
      chain — repeatedly splice interleaved runs apart with a
      wait-for-readers between splices of the same chain — until it is
      precise. An {e explicit} {!resize} unzips every chain eagerly, one
      splice per chain per pass and one grace period per pass, exactly the
      paper's cost structure. An {e auto-resize} expansion instead parks a
      split cell per parent chain and returns immediately: each bucket is
      rehashed lazily by the first writer that touches it (under that
      writer's stripe lock), so a resize never stops writers on unrelated
      stripes and its cost is amortized across subsequent writes.

    Larger factors are performed as repeated doublings/halvings. *)

type ('k, 'v) t

type resize_stats = {
  expands : int;  (** completed expansions (each a single doubling) *)
  shrinks : int;  (** completed shrinks (each a single halving) *)
  unzip_passes : int;  (** grace-period-closed splice rounds, all chains *)
  unzip_splices : int;  (** total splice steps across all expansions *)
  recoveries : int;
      (** interrupted splits completed on behalf of a crashed writer *)
  lazy_splits : int;
      (** buckets rehashed lazily by the first writer to touch them *)
}

val create :
  ?rcu:Rcu.t ->
  ?flavour:Flavour.t ->
  ?initial_size:int ->
  ?min_size:int ->
  ?max_size:int ->
  ?auto_resize:bool ->
  ?stripes:int ->
  hash:('k -> int) ->
  equal:('k -> 'k -> bool) ->
  unit ->
  ('k, 'v) t
(** [create ~hash ~equal ()] builds an empty table.

    - [rcu]: the memb-RCU instance delimiting this table's readers (fresh
      one by default; share an instance to amortize grace periods across
      structures);
    - [flavour]: run the table on an explicit RCU flavour instead — e.g.
      [Flavour.qsbr] for kernel-RCU-like zero-cost readers (every domain
      touching the table must then respect QSBR's no-indefinite-blocking
      rule). Mutually exclusive with [rcu];
    - [initial_size]: initial bucket count, rounded up to a power of two
      (default 8);
    - [min_size] / [max_size]: clamp for resizing, rounded to powers of two
      (defaults 4 and 2^22);
    - [auto_resize]: when [true] (default), updates grow the table beyond
      load factor 0.75 and shrink it below 0.125;
    - [stripes]: writer-lock stripe count, rounded up to a power of two.
      Defaults to [min 8 min_size]. An explicit value raises [min_size] to
      at least the stripe count: the bucket-to-stripe mapping
      [stripe = hash land (stripes - 1)] must stay stable across resizes,
      which requires [stripes <= size] at every size. *)

val rcu : ('k, 'v) t -> Rcu.t
(** The memb-RCU instance of a default-flavoured table. Raises
    [Invalid_argument] when the table was built with [~flavour]. *)

val flavour : ('k, 'v) t -> Flavour.t
(** The flavour running this table's read sections and grace periods. *)

val stripe_count : ('k, 'v) t -> int
(** Number of writer-lock stripes (a power of two, fixed at creation). *)

(** {1 Wait-free read side} *)

val find : ('k, 'v) t -> 'k -> 'v option
(** Wait-free lookup. Runs in a read-side critical section of the calling
    domain (registered on first use); the value is copied out before the
    section ends. *)

val mem : ('k, 'v) t -> 'k -> bool

val find_opt_hashed : ('k, 'v) t -> hash:int -> 'k -> 'v option
(** {!find} with a precomputed hash (protocol servers cache hashes). *)

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
(** Iterate over a snapshot inside one read-side critical section. [f] must
    not block and must not update this table. Bindings inserted or removed
    concurrently may or may not be seen; bindings present throughout are
    seen exactly once per bucket they belong to. *)

val fold : ('k, 'v) t -> init:'a -> f:('a -> 'k -> 'v -> 'a) -> 'a

val iter_batched : ?batch:int -> ('k, 'v) t -> f:('k -> 'v -> unit) -> int
(** Like {!iter}, but each read-side critical section covers at most
    [batch] buckets (default 64), re-entering between batches — so a walk
    over a huge table never extends a grace period beyond one batch's
    worth of work. Built for long-running background readers such as the
    persistence snapshotter.

    Because the walk spans many read sections, it is {e not} a single
    snapshot. Guarantees: a binding present for the whole walk is seen at
    least once (possibly more than once if the table expands mid-walk —
    callers must tolerate duplicates); concurrent inserts/removes may or
    may not be seen. A concurrent {e shrink} can move unvisited keys below
    the cursor, so the walk watches the bucket-array size it dereferences
    and restarts from bucket 0 whenever the size drops below a previously
    observed size. Returns the number of such restarts. A half-split table
    (lazy rehash in progress) needs no special handling: pending splits
    only leave buckets imprecise, and the walk already filters nodes by
    their home bucket. *)

(** {1 Updates}

    Updates on different stripes proceed concurrently; two updates whose
    key hashes share a stripe serialize on that stripe's mutex. Updates
    must not be called from inside a read-side critical section. *)

val insert : ('k, 'v) t -> 'k -> 'v -> unit
(** Publish a new binding. If the key is already bound the new binding
    shadows the old one (lookups return the newest). *)

val replace : ('k, 'v) t -> 'k -> 'v -> unit
(** Update an existing binding's value in place, or insert if absent. *)

val remove : ('k, 'v) t -> 'k -> bool
(** Unlink the newest binding for the key; reclamation is deferred through
    [call_rcu]. [true] if a binding was removed. *)

val remove_sync : ('k, 'v) t -> 'k -> bool
(** Like {!remove} but blocks for a full grace period before marking the
    node reclaimed — the paper's removal sequence, verbatim. *)

val move : ('k, 'v) t -> from_key:'k -> to_key:'k -> ('v -> 'v) -> bool
(** Atomic cross-bucket move (the previous-work primitive): rebind
    [from_key]'s value (transformed by the function) under [to_key] such
    that no concurrent reader observes a state where {e neither} key is
    bound. Takes both keys' stripes in ascending order. [true] if
    [from_key] was bound. *)

(** {1 Resizing} *)

val resize : ('k, 'v) t -> int -> unit
(** Eager resize to the given bucket count (rounded to a power of two,
    clamped to [min_size]/[max_size]): completes any pending lazy splits,
    then unzips every doubling to precision before returning. Concurrent
    lookups proceed untouched; concurrent updates wait (all stripes are
    held). *)

val complete_splits : ('k, 'v) t -> unit
(** Finish every bucket split a lazy expansion (or a crashed writer) left
    pending, eagerly, under all stripes. After this returns with no other
    writer active, every chain is precise and {!recovery_pending} is
    [false]. Content-neutral: no binding is added, removed, or changed. *)

val size : ('k, 'v) t -> int
(** Current bucket count. *)

val length : ('k, 'v) t -> int
(** Number of bindings (O(1); exact under quiescence). *)

val load_factor : ('k, 'v) t -> float

val set_auto_resize : ('k, 'v) t -> bool -> unit

(** {1 Crash recovery}

    Writers carry failpoints (["rp_ht.stripe.lock"], ["rp_ht.split.lazy"],
    ["rp_ht.expand.pre"], ["rp_ht.shrink.pre"], ["rp_ht.unzip.splice"] —
    see {!Rp_fault}) so fault-injection tests can kill a writer mid-split
    or a resizer mid-unzip. A killed splicer releases its stripe with the
    table {e imprecise but complete}: readers still find every binding
    (the paper's guarantee holds throughout), and the interrupted cell —
    plus any chains not yet split — stays parked on the table. The next
    writer to touch an affected bucket re-establishes the torn grace
    period and finishes that bucket's split (counted in
    [resize_stats.recoveries]) before mutating; {!complete_splits},
    {!resize}, and {!validate} finish all of them at once. *)

val recovery_pending : ('k, 'v) t -> bool
(** [true] while any bucket split is still pending — whether parked by a
    crashed writer or simply not yet demanded by the lazy rehash. *)

val pending_splits : ('k, 'v) t -> int
(** Number of buckets still awaiting their split (0 when no expansion is
    in progress). *)

(** {1 Introspection (tests, benchmarks)} *)

val resize_stats : ('k, 'v) t -> resize_stats

val bucket_lengths : ('k, 'v) t -> int array
(** Chain length per bucket (snapshot). *)

val validate : ('k, 'v) t -> (unit, string) result
(** Whole-table invariant check: takes every stripe (so no writer is
    mid-mutation), completes pending lazy splits — content-neutral — and
    then checks that every reachable node sits in the bucket its hash
    selects (precision), that no reachable node is marked reclaimed, and
    that the O(1) length matches a full count. *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Snapshot of all bindings (unspecified order). *)

(** {1 Observability}

    Every table counts lookups, inserts, and deletes with striped
    {!Rp_obs.Counter}s — the lookup count rides the wait-free read path
    as a single unsynchronized store, never a shared atomic RMW — and
    records expand/shrink durations into a striped histogram. Stripe-lock
    traffic is counted the same way (acquisitions, contended
    acquisitions, lazy splits). Resize milestones (["rp_ht.expand"],
    ["rp_ht.shrink"], ["rp_ht.unzip_pass"], ["rp_ht.recovery"], each with
    the new bucket count as argument) go to {!Rp_obs.Trace.default}. *)

val observe : ?prefix:string -> ('k, 'v) t -> Rp_obs.Registry.t -> unit
(** Register this table's instruments under [prefix] (default ["rp_ht"]):
    [<prefix>_lookups_total], [<prefix>_inserts_total],
    [<prefix>_deletes_total], [<prefix>_stripe_acquisitions_total],
    [<prefix>_stripe_contended_total], [<prefix>_lazy_splits_total],
    [<prefix>_expands_total], [<prefix>_shrinks_total],
    [<prefix>_unzip_passes_total], [<prefix>_unzip_splices_total],
    [<prefix>_recoveries_total], [<prefix>_stripes],
    [<prefix>_pending_splits], [<prefix>_buckets], [<prefix>_items], and
    the [<prefix>_resize_ns] histogram. *)

val lookups : ('k, 'v) t -> int
(** Lifetime {!find} count (striped sum; see {!Rp_obs.Counter.read}). *)

val stripe_heat : ('k, 'v) t -> (int * int) array
(** Per-stripe [(acquisitions, contended)] heatmap cells behind the
    aggregate [stripe_acquisitions_total]/[stripe_contended_total]
    counters — which stripes are hot, not just how hot the lock plane
    is. One entry per writer stripe. Relaxed monitoring reads. *)
