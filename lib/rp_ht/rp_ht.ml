open Rp_list

type ('k, 'v) table = { size : int; buckets : ('k, 'v) link Atomic.t array }

type resize_stats = {
  expands : int;
  shrinks : int;
  unzip_passes : int;
  unzip_splices : int;
  recoveries : int;
}

(* A resizer that died mid-unzip (fault injection, async exception) leaves
   the remaining per-chain splice state here, under the writer mutex. The
   table is imprecise but complete — readers are fine — and the next writer
   finishes the job before doing anything else. *)
type ('k, 'v) pending_unzip = {
  pu_new_size : int;
  pu_states : ('k, 'v) Unzip.state array;
}

type ('k, 'v) t = {
  rcu_memb : Rcu.t option;  (* the default flavour's underlying Rcu.t *)
  flavour : Flavour.t;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  current : ('k, 'v) table Atomic.t;
  writer : Mutex.t;
  count : int Atomic.t;
  min_size : int;
  max_size : int;
  mutable auto_resize : bool;
  expands : int Atomic.t;
  shrinks : int Atomic.t;
  unzip_passes : int Atomic.t;
  unzip_splices : int Atomic.t;
  recoveries : int Atomic.t;
  mutable pending : ('k, 'v) pending_unzip option;  (* writer mutex *)
  (* striped instruments: the lookup counter sits on the wait-free read
     path, so it must never be a shared atomic RMW *)
  obs_lookups : Rp_obs.Counter.t;
  obs_inserts : Rp_obs.Counter.t;
  obs_deletes : Rp_obs.Counter.t;
  resize_hist : Rp_obs.Histogram.t;  (* per expand/shrink duration, ns *)
}

let make_table size = { size; buckets = Array.init size (fun _ -> Atomic.make Null) }

let create ?rcu ?flavour ?(initial_size = 8) ?(min_size = 4)
    ?(max_size = 1 lsl 22) ?(auto_resize = true) ~hash ~equal () =
  let rcu_memb, flavour =
    match flavour with
    | Some f ->
        if rcu <> None then
          invalid_arg "Rp_ht.create: pass either ~rcu or ~flavour, not both";
        (None, f)
    | None ->
        let r = match rcu with Some r -> r | None -> Rcu.create () in
        (Some r, Flavour.memb r)
  in
  let min_size = Rp_hashes.Size.next_power_of_two (max 1 min_size) in
  let max_size = Rp_hashes.Size.next_power_of_two (max min_size max_size) in
  let initial_size =
    min max_size (max min_size (Rp_hashes.Size.next_power_of_two initial_size))
  in
  {
    rcu_memb;
    flavour;
    hash;
    equal;
    current = Atomic.make (make_table initial_size);
    writer = Mutex.create ();
    count = Atomic.make 0;
    min_size;
    max_size;
    auto_resize;
    expands = Atomic.make 0;
    shrinks = Atomic.make 0;
    unzip_passes = Atomic.make 0;
    unzip_splices = Atomic.make 0;
    recoveries = Atomic.make 0;
    pending = None;
    obs_lookups = Rp_obs.Counter.create ();
    obs_inserts = Rp_obs.Counter.create ();
    obs_deletes = Rp_obs.Counter.create ();
    resize_hist = Rp_obs.Histogram.create ();
  }

let rcu t =
  match t.rcu_memb with
  | Some r -> r
  | None ->
      invalid_arg "Rp_ht.rcu: table was built with a custom flavour"

let flavour t = t.flavour

(* --- read side --- *)

let bucket_link table hash =
  table.buckets.(Rp_hashes.Size.bucket_of_hash ~hash ~size:table.size)

(* Hot path: no closures, no helper indirection — one atomic load per chain
   hop, exactly the cost structure the paper measures for RP readers. *)
let rec search_chain equal hash k = function
  | Null -> None
  | Node n ->
      if n.hash = hash && equal n.key k then Some n
      else search_chain equal hash k (Atomic.get n.next)

let find_node t ~hash k table =
  search_chain t.equal hash k (Rcu.dereference (bucket_link table hash))

(* Flight-recorder span names. Lookup spans are detail-tier: they record
   only while the emitting domain is inside a head-sampled request, so
   the unsampled hot path pays one atomic load and a branch. *)
let k_lookup = Rp_trace.intern "rp_ht.lookup"
let k_insert = Rp_trace.intern "rp_ht.insert"
let k_expand = Rp_trace.intern "rp_ht.expand"
let k_shrink = Rp_trace.intern "rp_ht.shrink"
let k_unzip = Rp_trace.intern "rp_ht.unzip_pass"
let k_recovery = Rp_trace.intern "rp_ht.recovery"

let find_opt_hashed t ~hash k =
  Rp_obs.Counter.incr t.obs_lookups;
  let span = Rp_trace.span_begin_sampled k_lookup in
  t.flavour.Flavour.read_enter ();
  match find_node t ~hash k (Rcu.dereference t.current) with
  | Some n ->
      let v = Atomic.get n.value in
      t.flavour.Flavour.read_exit ();
      Rp_trace.span_end_sampled ~arg:1 k_lookup span;
      Some v
  | None ->
      t.flavour.Flavour.read_exit ();
      Rp_trace.span_end_sampled k_lookup span;
      None
  | exception e ->
      (* only a user-supplied [equal] can raise *)
      t.flavour.Flavour.read_exit ();
      Rp_trace.span_end_sampled k_lookup span;
      raise e

let find t k = find_opt_hashed t ~hash:(t.hash k) k
let mem t k = Option.is_some (find t k)

let iter t ~f =
  Flavour.with_read t.flavour (fun () ->
      let table = Rcu.dereference t.current in
      Array.iteri
        (fun b link ->
          iter_links
            ~f:(fun n ->
              (* Skip nodes merely passing through an imprecise bucket. *)
              if Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:table.size = b
              then f n.key (Atomic.get n.value))
            (Rcu.dereference link))
        table.buckets)

(* Bounded read sections: the table's bucket index for a key depends only
   on (hash, size), so a walk that has covered [0, b) at size s misses
   nothing at any later size s' >= s — expansion sends keys from bucket i
   only to i or i + s (both >= i; re-emitting i + s for visited i is the
   documented duplicate). Only a size *drop* below a size we already
   walked at can relocate unvisited keys behind the cursor, and we detect
   that on the table we actually dereference, inside the read section —
   no separate counter to race against. *)
let iter_batched ?(batch = 64) t ~f =
  let batch = max 1 batch in
  let restarts = ref 0 in
  let finished = ref false in
  let b = ref 0 in
  let max_size = ref 0 in
  while not !finished do
    Flavour.with_read t.flavour (fun () ->
        let table = Rcu.dereference t.current in
        if table.size < !max_size then begin
          incr restarts;
          b := 0;
          max_size := table.size
        end
        else begin
          max_size := table.size;
          let stop = min table.size (!b + batch) in
          for i = !b to stop - 1 do
            iter_links
              ~f:(fun n ->
                if
                  Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:table.size
                  = i
                then f n.key (Atomic.get n.value))
              (Rcu.dereference table.buckets.(i))
          done;
          b := stop;
          if stop >= table.size then finished := true
        end)
  done;
  !restarts

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun k v -> acc := f !acc k v);
  !acc

let to_list t = fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc)

(* --- resize: shrink --- *)

let rec chain_tail = function
  | Null -> None
  | Node n -> (
      match Rcu.dereference n.next with Null -> Some n | Node _ as l -> chain_tail l)

(* Halve the bucket count: link sibling chains end-to-end, publish the new
   bucket array, wait for readers once. Writer mutex held.

   Crash safety: once the half-size array is published its chains are
   already precise (bucket i holds exactly old buckets i and i+new_size),
   so a failure after publication loses only the final grace period —
   which, with GC reclamation, defers nothing unsafe. No poisoning
   needed. *)
let shrink_locked t =
  Rp_fault.point "rp_ht.shrink.pre";
  let started = Unix.gettimeofday () in
  let shrink_span = Rp_trace.span_begin k_shrink in
  let old = Atomic.get t.current in
  let new_size = old.size / 2 in
  let buckets =
    Array.init new_size (fun i ->
        let low = Atomic.get old.buckets.(i) in
        let high = Atomic.get old.buckets.(i + new_size) in
        match chain_tail low with
        | None -> Atomic.make high
        | Some tail ->
            (* Readers of old bucket [i] now continue into the sibling
               chain: an imprecise superset, which lookups tolerate. *)
            Rcu.publish tail.next high;
            Atomic.make low)
  in
  Rcu.publish t.current { size = new_size; buckets };
  (* Once no reader can still traverse via the old bucket array, it is
     reclaimable (the GC does the actual freeing). *)
  t.flavour.Flavour.synchronize ();
  Atomic.incr t.shrinks;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size "rp_ht.shrink";
  Rp_trace.span_end ~arg:new_size k_shrink shrink_span;
  Rp_obs.Histogram.observe_span t.resize_hist ~start:started
    ~stop:(Unix.gettimeofday ())

(* --- resize: expand (the unzip) --- *)

(* Run unzip passes over [states] until every chain is precise. Writer
   mutex held. If anything raises mid-way (the "rp_ht.unzip.splice"
   failpoint, or a failpoint inside synchronize), the remaining states are
   parked in [t.pending] before the exception escapes: the table stays
   imprecise-but-correct and {!recover_locked} finishes the job later. *)
let run_unzip t ~new_size states =
  let dest (n : _ node) =
    Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:new_size
  in
  try
    let live = ref true in
    while !live do
      live := false;
      Array.iteri
        (fun i state ->
          match state with
          | Unzip.Done -> ()
          | Unzip.At _ -> (
              Rp_fault.point "rp_ht.unzip.splice";
              let next_state = Unzip.step ~dest state in
              states.(i) <- next_state;
              match next_state with
              | Unzip.At _ ->
                  Atomic.incr t.unzip_splices;
                  live := true
              | Unzip.Done -> ()))
        states;
      if !live then begin
        (* One grace period per pass protects readers that crossed a splice
           point before it moved. *)
        let pass_span = Rp_trace.span_begin ~arg:new_size k_unzip in
        t.flavour.Flavour.synchronize ();
        Rp_trace.span_end ~arg:new_size k_unzip pass_span;
        Atomic.incr t.unzip_passes;
        Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size
          "rp_ht.unzip_pass"
      end
    done
  with e ->
    t.pending <- Some { pu_new_size = new_size; pu_states = states };
    raise e

(* Finish an unzip a crashed resizer left behind. Writer mutex held; must
   run before any update touches the chains, which are only guaranteed
   precise once the unzip completes. *)
let recover_locked t =
  match t.pending with
  | None -> ()
  | Some { pu_new_size; pu_states } ->
      t.pending <- None;
      (* The crash may have split a pass from its closing grace period;
         re-establish it before splicing further. *)
      (match t.flavour.Flavour.synchronize () with
      | () -> ()
      | exception e ->
          t.pending <- Some { pu_new_size; pu_states };
          raise e);
      run_unzip t ~new_size:pu_new_size pu_states;
      Atomic.incr t.recoveries;
      Rp_trace.instant ~arg:pu_new_size k_recovery;
      Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:pu_new_size
        "rp_ht.recovery"

(* Double the bucket count. Writer mutex held. *)
let expand_locked t =
  Rp_fault.point "rp_ht.expand.pre";
  let started = Unix.gettimeofday () in
  let expand_span = Rp_trace.span_begin k_expand in
  let old = Atomic.get t.current in
  let new_size = old.size * 2 in
  let dest (n : _ node) =
    Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:new_size
  in
  (* Each new bucket points at the first node of its parent chain that
     belongs to it: buckets are imprecise (zipped) but complete. *)
  let buckets =
    Array.init new_size (fun j ->
        let parent = Atomic.get old.buckets.(j land (old.size - 1)) in
        match find_link ~pred:(fun n -> dest n = j) parent with
        | Some n -> Atomic.make (Node n)
        | None -> Atomic.make Null)
  in
  Rcu.publish t.current { size = new_size; buckets };
  let states =
    Array.init old.size (fun i -> Unzip.start (Atomic.get old.buckets.(i)))
  in
  (* Wait for readers still traversing via the old, smaller bucket array:
     after this, every reader entered through the new buckets. From here
     on the table is published, so a crash must park the unzip state. *)
  (match t.flavour.Flavour.synchronize () with
  | () -> ()
  | exception e ->
      t.pending <- Some { pu_new_size = new_size; pu_states = states };
      raise e);
  run_unzip t ~new_size states;
  Atomic.incr t.expands;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size "rp_ht.expand";
  Rp_trace.span_end ~arg:new_size k_expand expand_span;
  Rp_obs.Histogram.observe_span t.resize_hist ~start:started
    ~stop:(Unix.gettimeofday ())

let normalize_size t n =
  let n = Rp_hashes.Size.next_power_of_two (max 1 n) in
  min t.max_size (max t.min_size n)

let resize_locked t target =
  let target = normalize_size t target in
  while (Atomic.get t.current).size < target do
    expand_locked t
  done;
  while (Atomic.get t.current).size > target do
    shrink_locked t
  done

(* Every writer entry point recovers any interrupted unzip first: updates
   below assume precise chains, which only a completed unzip guarantees. *)
let with_writer t f =
  Mutex.lock t.writer;
  match
    recover_locked t;
    f ()
  with
  | v ->
      Mutex.unlock t.writer;
      v
  | exception e ->
      Mutex.unlock t.writer;
      raise e

let resize t target = with_writer t (fun () -> resize_locked t target)

let maybe_auto_resize t =
  if t.auto_resize then begin
    let table = Atomic.get t.current in
    let n = Atomic.get t.count in
    if n * 4 > table.size * 3 && table.size < t.max_size then expand_locked t
    else if n * 8 < table.size && table.size > t.min_size then shrink_locked t
  end

(* --- updates --- *)

let insert_locked t k v =
  let span = Rp_trace.span_begin_sampled k_insert in
  let hash = t.hash k in
  let table = Atomic.get t.current in
  let link = bucket_link table hash in
  let node = make_node ~hash ~key:k ~value:v ~next:(Atomic.get link) () in
  Rcu.publish link (Node node);
  Atomic.incr t.count;
  Rp_obs.Counter.incr t.obs_inserts;
  Rp_trace.span_end_sampled k_insert span

let insert t k v =
  with_writer t (fun () ->
      insert_locked t k v;
      maybe_auto_resize t)

let replace t k v =
  with_writer t (fun () ->
      let hash = t.hash k in
      let table = Atomic.get t.current in
      match find_node t ~hash k table with
      | Some n -> Atomic.set n.value v
      | None ->
          insert_locked t k v;
          maybe_auto_resize t)

(* Unlink the newest binding of [k]; return the node. Writer mutex held.
   The chain may be imprecise mid-resize, but resize holds the same mutex,
   so here every chain is precise. *)
let unlink_locked t k =
  let hash = t.hash k in
  let table = Atomic.get t.current in
  let rec loop prev_link =
    match Atomic.get prev_link with
    | Null -> None
    | Node n ->
        if n.hash = hash && t.equal n.key k then begin
          Rcu.publish prev_link (Atomic.get n.next);
          Atomic.decr t.count;
          Rp_obs.Counter.incr t.obs_deletes;
          Some n
        end
        else loop n.next
  in
  loop (bucket_link table hash)

let remove_with ~reclaim t k =
  let unlinked =
    with_writer t (fun () ->
        let u = unlink_locked t k in
        if Option.is_some u then maybe_auto_resize t;
        u)
  in
  match unlinked with
  | None -> false
  | Some n ->
      reclaim t n;
      true

let remove t k =
  remove_with t k ~reclaim:(fun t n ->
      t.flavour.Flavour.call_rcu (fun () -> Atomic.set n.reclaimed true))

let remove_sync t k =
  remove_with t k ~reclaim:(fun t n ->
      t.flavour.Flavour.synchronize ();
      Atomic.set n.reclaimed true)

let move t ~from_key ~to_key f =
  let moved =
    with_writer t (fun () ->
        let hash = t.hash from_key in
        let table = Atomic.get t.current in
        match find_node t ~hash from_key table with
        | None -> None
        | Some n ->
            (* Publish the destination binding first, then unlink the
               source: no reader can observe both keys absent. *)
            insert_locked t to_key (f (Atomic.get n.value));
            let u = unlink_locked t from_key in
            maybe_auto_resize t;
            u)
  in
  match moved with
  | None -> false
  | Some n ->
      t.flavour.Flavour.call_rcu (fun () -> Atomic.set n.reclaimed true);
      true

(* --- introspection --- *)

let size t = (Atomic.get t.current).size
let length t = Atomic.get t.count

let load_factor t =
  let table = Atomic.get t.current in
  float_of_int (Atomic.get t.count) /. float_of_int table.size

let set_auto_resize t flag = t.auto_resize <- flag

let resize_stats t =
  {
    expands = Atomic.get t.expands;
    shrinks = Atomic.get t.shrinks;
    unzip_passes = Atomic.get t.unzip_passes;
    unzip_splices = Atomic.get t.unzip_splices;
    recoveries = Atomic.get t.recoveries;
  }

let recovery_pending t =
  Mutex.lock t.writer;
  let p = Option.is_some t.pending in
  Mutex.unlock t.writer;
  p

(* --- observability --- *)

let observe ?(prefix = "rp_ht") t reg =
  let name suffix = prefix ^ "_" ^ suffix in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.register_counter reg ~help:"wait-free lookups"
    (name "lookups_total") t.obs_lookups;
  Rp_obs.Registry.register_counter reg ~help:"node insertions"
    (name "inserts_total") t.obs_inserts;
  Rp_obs.Registry.register_counter reg ~help:"node unlinks"
    (name "deletes_total") t.obs_deletes;
  Rp_obs.Registry.fn_counter reg ~help:"table expansions"
    (name "expands_total") (fn t.expands);
  Rp_obs.Registry.fn_counter reg ~help:"table shrinks" (name "shrinks_total")
    (fn t.shrinks);
  Rp_obs.Registry.fn_counter reg ~help:"unzip passes over all chains"
    (name "unzip_passes_total") (fn t.unzip_passes);
  Rp_obs.Registry.fn_counter reg ~help:"individual chain splices"
    (name "unzip_splices_total") (fn t.unzip_splices);
  Rp_obs.Registry.fn_counter reg
    ~help:"interrupted unzips completed by a later writer"
    (name "recoveries_total") (fn t.recoveries);
  Rp_obs.Registry.gauge reg ~help:"current bucket count" (name "buckets")
    (fun () -> float_of_int (Atomic.get t.current).size);
  Rp_obs.Registry.gauge reg ~help:"current item count" (name "items")
    (fun () -> float_of_int (Atomic.get t.count));
  Rp_obs.Registry.register_histogram reg
    ~help:"expand/shrink duration in nanoseconds"
    (name "resize_ns") t.resize_hist

let lookups t = Rp_obs.Counter.read t.obs_lookups

let bucket_lengths t =
  let table = Atomic.get t.current in
  Array.map (fun link -> length_link (Atomic.get link)) table.buckets

let validate t =
  let table = Atomic.get t.current in
  let expected = Atomic.get t.count in
  let limit = expected + 1 in
  let total = ref 0 in
  let error = ref None in
  let set_error msg = if !error = None then error := Some msg in
  Array.iteri
    (fun b link ->
      let steps = ref 0 in
      let rec walk = function
        | Null -> ()
        | Node n ->
            incr steps;
            if !steps > limit then set_error (Printf.sprintf "bucket %d: cycle or over-long chain" b)
            else begin
              incr total;
              let home = Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:table.size in
              if home <> b then
                set_error
                  (Printf.sprintf "bucket %d: imprecise node (home bucket %d)" b home);
              if Atomic.get n.reclaimed then
                set_error (Printf.sprintf "bucket %d: reachable reclaimed node" b);
              walk (Atomic.get n.next)
            end
      in
      walk (Atomic.get link))
    table.buckets;
  if !total <> expected && !error = None then
    set_error (Printf.sprintf "length mismatch: counted %d, recorded %d" !total expected);
  match !error with None -> Ok () | Some msg -> Error msg
