open Rp_list

type ('k, 'v) table = { size : int; buckets : ('k, 'v) link Atomic.t array }

type resize_stats = {
  expands : int;
  shrinks : int;
  unzip_passes : int;
  unzip_splices : int;
  recoveries : int;
  lazy_splits : int;
}

(* One split cell per parent bucket of an in-progress expansion. The cell
   owns the unzip of old bucket [i] into new buckets [i] and
   [i + old_size]; both children map to the same stripe (stripe count
   never exceeds [min_size]), so the stripe lock covering a key also
   covers its cell. [cell_busy] marks a splicer that died between a
   splice and its closing grace period — the next toucher re-establishes
   the grace period before splicing further. *)
type ('k, 'v) split_cell = {
  mutable cell_state : ('k, 'v) Unzip.state;
  mutable cell_busy : bool;
}

(* An expansion in progress: the doubled bucket array is already
   published (readers are fine — buckets are imprecise but complete);
   each chain splits lazily on first writer touch, or eagerly under the
   all-stripes protocol. [ps_sync_done] witnesses the post-publish grace
   period: no chain may be spliced before readers that entered through
   the pre-expansion bucket array have drained, because for them the
   zipped chain is the only path to keys of both child buckets. *)
type ('k, 'v) pending_split = {
  ps_new_size : int;
  ps_cells : ('k, 'v) split_cell array;  (* length [ps_new_size / 2] *)
  ps_remaining : int Atomic.t;  (* cells not yet Done *)
  ps_sync_done : bool Atomic.t;
}

type ('k, 'v) t = {
  rcu_memb : Rcu.t option;  (* the default flavour's underlying Rcu.t *)
  flavour : Flavour.t;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  current : ('k, 'v) table Atomic.t;
  (* Writer locks, striped by hash: stripe = hash land (nstripes - 1).
     nstripes is a power of two <= min_size, so a bucket index determines
     its stripe at every table size and sibling buckets share a stripe.
     Cross-stripe operations (explicit resize, shrink, auto-resize,
     complete_splits, validate) take every stripe in ascending order. *)
  stripes : Mutex.t array;
  stripe_mask : int;
  splitting : ('k, 'v) pending_split option Atomic.t;
  count : int Atomic.t;
  min_size : int;
  max_size : int;
  mutable auto_resize : bool;
  expands : int Atomic.t;
  shrinks : int Atomic.t;
  unzip_passes : int Atomic.t;
  unzip_splices : int Atomic.t;
  recoveries : int Atomic.t;
  lazy_splits : int Atomic.t;
  (* striped instruments: the lookup counter sits on the wait-free read
     path, so it must never be a shared atomic RMW *)
  obs_lookups : Rp_obs.Counter.t;
  obs_inserts : Rp_obs.Counter.t;
  obs_deletes : Rp_obs.Counter.t;
  obs_stripe_acq : Rp_obs.Counter.t;
  obs_stripe_contended : Rp_obs.Counter.t;
  (* Per-stripe heatmap cells behind the aggregate counters above, so
     the heat plane can show WHICH stripes contend, not just how much.
     Acquisition cells are plain ints padded a cache line apart — only
     the stripe's lock holder writes its cell. Contended cells are
     atomics: the increment happens while the lock is still held by
     someone else, so racers can collide on it. *)
  stripe_acq_cells : int array;  (* index: stripe * stripe_cell_stride *)
  stripe_cont_cells : int Atomic.t array;
  resize_hist : Rp_obs.Histogram.t;  (* per expand/shrink duration, ns *)
}

(* 8 words = one 64-byte line between adjacent stripes' cells. *)
let stripe_cell_stride = 8

let make_table size = { size; buckets = Array.init size (fun _ -> Atomic.make Null) }

let create ?rcu ?flavour ?(initial_size = 8) ?(min_size = 4)
    ?(max_size = 1 lsl 22) ?(auto_resize = true) ?stripes ~hash ~equal () =
  let rcu_memb, flavour =
    match flavour with
    | Some f ->
        if rcu <> None then
          invalid_arg "Rp_ht.create: pass either ~rcu or ~flavour, not both";
        (None, f)
    | None ->
        let r = match rcu with Some r -> r | None -> Rcu.create () in
        (Some r, Flavour.memb r)
  in
  let min_size = Rp_hashes.Size.next_power_of_two (max 1 min_size) in
  (* Default stripe count: 8, but never more than min_size (the
     bucket-to-stripe mapping must be stable across resizes). An explicit
     ~stripes instead raises min_size so the invariant holds. *)
  let nstripes =
    match stripes with
    | Some s -> Rp_hashes.Size.next_power_of_two (max 1 s)
    | None -> min 8 min_size
  in
  let min_size = max min_size nstripes in
  let max_size = Rp_hashes.Size.next_power_of_two (max min_size max_size) in
  let initial_size =
    min max_size (max min_size (Rp_hashes.Size.next_power_of_two initial_size))
  in
  {
    rcu_memb;
    flavour;
    hash;
    equal;
    current = Atomic.make (make_table initial_size);
    stripes = Array.init nstripes (fun _ -> Mutex.create ());
    stripe_mask = nstripes - 1;
    splitting = Atomic.make None;
    count = Atomic.make 0;
    min_size;
    max_size;
    auto_resize;
    expands = Atomic.make 0;
    shrinks = Atomic.make 0;
    unzip_passes = Atomic.make 0;
    unzip_splices = Atomic.make 0;
    recoveries = Atomic.make 0;
    lazy_splits = Atomic.make 0;
    obs_lookups = Rp_obs.Counter.create ();
    obs_inserts = Rp_obs.Counter.create ();
    obs_deletes = Rp_obs.Counter.create ();
    obs_stripe_acq = Rp_obs.Counter.create ();
    obs_stripe_contended = Rp_obs.Counter.create ();
    stripe_acq_cells = Array.make (nstripes * stripe_cell_stride) 0;
    stripe_cont_cells = Array.init nstripes (fun _ -> Atomic.make 0);
    resize_hist = Rp_obs.Histogram.create ();
  }

let rcu t =
  match t.rcu_memb with
  | Some r -> r
  | None ->
      invalid_arg "Rp_ht.rcu: table was built with a custom flavour"

let flavour t = t.flavour
let stripe_count t = Array.length t.stripes

(* --- read side --- *)

let bucket_link table hash =
  table.buckets.(Rp_hashes.Size.bucket_of_hash ~hash ~size:table.size)

(* Hot path: no closures, no helper indirection — one atomic load per chain
   hop, exactly the cost structure the paper measures for RP readers. *)
let rec search_chain equal hash k = function
  | Null -> None
  | Node n ->
      if n.hash = hash && equal n.key k then Some n
      else search_chain equal hash k (Atomic.get n.next)

let find_node t ~hash k table =
  search_chain t.equal hash k (Rcu.dereference (bucket_link table hash))

(* Flight-recorder span names. Lookup spans are detail-tier: they record
   only while the emitting domain is inside a head-sampled request, so
   the unsampled hot path pays one atomic load and a branch. *)
let k_lookup = Rp_trace.intern "rp_ht.lookup"
let k_insert = Rp_trace.intern "rp_ht.insert"
let k_expand = Rp_trace.intern "rp_ht.expand"
let k_shrink = Rp_trace.intern "rp_ht.shrink"
let k_unzip = Rp_trace.intern "rp_ht.unzip_pass"
let k_recovery = Rp_trace.intern "rp_ht.recovery"
let k_lazy_split = Rp_trace.intern "rp_ht.lazy_split"

let find_opt_hashed t ~hash k =
  Rp_obs.Counter.incr t.obs_lookups;
  let span = Rp_trace.span_begin_sampled k_lookup in
  t.flavour.Flavour.read_enter ();
  match find_node t ~hash k (Rcu.dereference t.current) with
  | Some n ->
      let v = Atomic.get n.value in
      t.flavour.Flavour.read_exit ();
      Rp_trace.span_end_sampled ~arg:1 k_lookup span;
      Some v
  | None ->
      t.flavour.Flavour.read_exit ();
      Rp_trace.span_end_sampled k_lookup span;
      None
  | exception e ->
      (* only a user-supplied [equal] can raise *)
      t.flavour.Flavour.read_exit ();
      Rp_trace.span_end_sampled k_lookup span;
      raise e

let find t k = find_opt_hashed t ~hash:(t.hash k) k
let mem t k = Option.is_some (find t k)

let iter t ~f =
  Flavour.with_read t.flavour (fun () ->
      let table = Rcu.dereference t.current in
      Array.iteri
        (fun b link ->
          iter_links
            ~f:(fun n ->
              (* Skip nodes merely passing through an imprecise bucket. *)
              if Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:table.size = b
              then f n.key (Atomic.get n.value))
            (Rcu.dereference link))
        table.buckets)

(* Bounded read sections: the table's bucket index for a key depends only
   on (hash, size), so a walk that has covered [0, b) at size s misses
   nothing at any later size s' >= s — expansion sends keys from bucket i
   only to i or i + s (both >= i; re-emitting i + s for visited i is the
   documented duplicate). Only a size *drop* below a size we already
   walked at can relocate unvisited keys behind the cursor, and we detect
   that on the table we actually dereference, inside the read section —
   no separate counter to race against. This argument is unchanged by
   lazy splitting: a pending split only leaves buckets imprecise (the
   per-bucket home filter already discards pass-through nodes). *)
let iter_batched ?(batch = 64) t ~f =
  let batch = max 1 batch in
  let restarts = ref 0 in
  let finished = ref false in
  let b = ref 0 in
  let max_size = ref 0 in
  while not !finished do
    Flavour.with_read t.flavour (fun () ->
        let table = Rcu.dereference t.current in
        if table.size < !max_size then begin
          incr restarts;
          b := 0;
          max_size := table.size
        end
        else begin
          max_size := table.size;
          let stop = min table.size (!b + batch) in
          for i = !b to stop - 1 do
            iter_links
              ~f:(fun n ->
                if
                  Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:table.size
                  = i
                then f n.key (Atomic.get n.value))
              (Rcu.dereference table.buckets.(i))
          done;
          b := stop;
          if stop >= table.size then finished := true
        end)
  done;
  !restarts

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun k v -> acc := f !acc k v);
  !acc

let to_list t = fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc)

(* --- stripe locking --- *)

let stripe_of_hash t hash = hash land t.stripe_mask

(* Why not a plain blocking lock on flavoured (QSBR) tables: the holder
   may be inside wait-for-readers (a splice's grace period), and a QSBR
   peer blocked in Mutex.lock while online would stall that grace period
   forever. Going offline first keeps grace periods live while we spin;
   memb readers never block on these locks, so memb's synchronize cannot
   wait on a lock waiter and a blocking lock is safe (and cheaper than
   spinning) there. *)
let lock_stripe t i =
  let m = t.stripes.(i) in
  Rp_fault.point "rp_ht.stripe.lock";
  (if Mutex.try_lock m then Rp_obs.Counter.incr t.obs_stripe_acq
   else begin
     Rp_obs.Counter.incr t.obs_stripe_contended;
     Atomic.incr t.stripe_cont_cells.(i);
     (match t.rcu_memb with
     | Some _ -> Mutex.lock m
     | None ->
         t.flavour.Flavour.thread_offline ();
         while not (Mutex.try_lock m) do
           Domain.cpu_relax ()
         done);
     Rp_obs.Counter.incr t.obs_stripe_acq
   end);
  (* Held now: the acquisition heatmap cell is lock-protected state. *)
  let c = i * stripe_cell_stride in
  Array.unsafe_set t.stripe_acq_cells c (Array.unsafe_get t.stripe_acq_cells c + 1)

(* Ascending order — compatible with move's two-stripe min/max order, so
   single-stripe writers, movers, and all-stripes owners never deadlock.
   The failpoint in lock_stripe can raise mid-acquisition; back out. *)
let lock_all_stripes t =
  let i = ref 0 in
  try
    while !i < Array.length t.stripes do
      lock_stripe t !i;
      incr i
    done
  with e ->
    for j = !i - 1 downto 0 do
      Mutex.unlock t.stripes.(j)
    done;
    raise e

let unlock_all_stripes t = Array.iter Mutex.unlock t.stripes

let with_all_stripes t f =
  lock_all_stripes t;
  match f () with
  | v ->
      unlock_all_stripes t;
      v
  | exception e ->
      unlock_all_stripes t;
      raise e

(* --- the split engine (lazy per-bucket rehash) --- *)

let dest_for size (n : _ node) =
  Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size

(* The post-publish grace period, deferred from expand to the first
   splicer. Two stripe holders may race here; both waiting is benign. *)
let ensure_publish_synced t ps =
  if not (Atomic.get ps.ps_sync_done) then begin
    t.flavour.Flavour.synchronize ();
    Atomic.set ps.ps_sync_done true
  end

let note_recovery t ~new_size =
  Atomic.incr t.recoveries;
  Rp_trace.instant ~arg:new_size k_recovery;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size "rp_ht.recovery"

(* Splice one chain to precision: one grace period between consecutive
   splices (readers that crossed a splice point before it moved must
   drain before the chain changes again); the step that finds no crossing
   run publishes nothing and needs no trailing grace period. Caller holds
   the cell's stripe and has dealt with ps_sync_done / cell_busy. *)
let rec drive_cell t ~new_size cell =
  match cell.cell_state with
  | Unzip.Done -> ()
  | Unzip.At _ as st ->
      Rp_fault.point "rp_ht.unzip.splice";
      let next = Unzip.step ~dest:(dest_for new_size) st in
      cell.cell_state <- next;
      (match next with
      | Unzip.Done -> ()
      | Unzip.At _ ->
          cell.cell_busy <- true;
          Atomic.incr t.unzip_splices;
          let span = Rp_trace.span_begin ~arg:new_size k_unzip in
          t.flavour.Flavour.synchronize ();
          Rp_trace.span_end ~arg:new_size k_unzip span;
          cell.cell_busy <- false;
          Atomic.incr t.unzip_passes;
          drive_cell t ~new_size cell)

(* Caller holds the cell's stripe; an expansion needs every stripe, so
   nobody can install a new pending split between our decrement and the
   clear. *)
let note_cell_done t ps =
  if Atomic.fetch_and_add ps.ps_remaining (-1) = 1 then
    Atomic.set t.splitting None

(* First-writer-touch split: the lazy rehash step. Stripe of [hash]
   held. After this returns, the bucket chains for [hash] are precise. *)
let ensure_bucket_split t ~hash =
  match Atomic.get t.splitting with
  | None -> ()
  | Some ps -> (
      let cell = ps.ps_cells.(hash land (Array.length ps.ps_cells - 1)) in
      match cell.cell_state with
      | Unzip.Done -> ()
      | Unzip.At _ ->
          Rp_fault.point "rp_ht.split.lazy";
          ensure_publish_synced t ps;
          if cell.cell_busy then begin
            (* A splicer died between a splice and its grace period:
               re-establish it before touching the chain again. *)
            t.flavour.Flavour.synchronize ();
            cell.cell_busy <- false;
            note_recovery t ~new_size:ps.ps_new_size
          end;
          Atomic.incr t.lazy_splits;
          let span = Rp_trace.span_begin ~arg:ps.ps_new_size k_lazy_split in
          drive_cell t ~new_size:ps.ps_new_size cell;
          Rp_trace.span_end ~arg:ps.ps_new_size k_lazy_split span;
          note_cell_done t ps)

(* Complete every remaining cell. All stripes held. One splice per live
   chain per pass, one grace period per pass — the eager path keeps the
   paper's amortized cost structure instead of paying a grace period per
   splice. *)
let complete_splits_locked t =
  match Atomic.get t.splitting with
  | None -> ()
  | Some ps ->
      let new_size = ps.ps_new_size in
      let dest = dest_for new_size in
      let interrupted = Array.exists (fun c -> c.cell_busy) ps.ps_cells in
      if interrupted || not (Atomic.get ps.ps_sync_done) then begin
        t.flavour.Flavour.synchronize ();
        Atomic.set ps.ps_sync_done true;
        Array.iter (fun c -> c.cell_busy <- false) ps.ps_cells;
        if interrupted then note_recovery t ~new_size
      end;
      let live = ref true in
      while !live do
        live := false;
        Array.iter
          (fun cell ->
            match cell.cell_state with
            | Unzip.Done -> ()
            | Unzip.At _ as st -> (
                Rp_fault.point "rp_ht.unzip.splice";
                let next = Unzip.step ~dest st in
                cell.cell_state <- next;
                match next with
                | Unzip.Done -> note_cell_done t ps
                | Unzip.At _ ->
                    cell.cell_busy <- true;
                    Atomic.incr t.unzip_splices;
                    live := true))
          ps.ps_cells;
        if !live then begin
          (* One grace period per pass protects readers that crossed a
             splice point before it moved. *)
          let pass_span = Rp_trace.span_begin ~arg:new_size k_unzip in
          t.flavour.Flavour.synchronize ();
          Rp_trace.span_end ~arg:new_size k_unzip pass_span;
          Atomic.incr t.unzip_passes;
          Array.iter (fun c -> c.cell_busy <- false) ps.ps_cells;
          Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size
            "rp_ht.unzip_pass"
        end
      done

(* --- resize: shrink --- *)

let rec chain_tail = function
  | Null -> None
  | Node n -> (
      match Rcu.dereference n.next with Null -> Some n | Node _ as l -> chain_tail l)

(* Halve the bucket count: link sibling chains end-to-end, publish the new
   bucket array, wait for readers once. All stripes held, and no split
   may be pending: zipped sibling chains share physical tails, so
   concatenating them would create cycles — callers complete splits
   first.

   Crash safety: once the half-size array is published its chains are
   already precise (bucket i holds exactly old buckets i and i+new_size),
   so a failure after publication loses only the final grace period —
   which, with GC reclamation, defers nothing unsafe. No poisoning
   needed. *)
let shrink_locked t =
  Rp_fault.point "rp_ht.shrink.pre";
  let started = Unix.gettimeofday () in
  let shrink_span = Rp_trace.span_begin k_shrink in
  let old = Atomic.get t.current in
  let new_size = old.size / 2 in
  let buckets =
    Array.init new_size (fun i ->
        let low = Atomic.get old.buckets.(i) in
        let high = Atomic.get old.buckets.(i + new_size) in
        match chain_tail low with
        | None -> Atomic.make high
        | Some tail ->
            (* Readers of old bucket [i] now continue into the sibling
               chain: an imprecise superset, which lookups tolerate. *)
            Rcu.publish tail.next high;
            Atomic.make low)
  in
  Rcu.publish t.current { size = new_size; buckets };
  (* Once no reader can still traverse via the old bucket array, it is
     reclaimable (the GC does the actual freeing). *)
  t.flavour.Flavour.synchronize ();
  Atomic.incr t.shrinks;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size "rp_ht.shrink";
  Rp_trace.span_end ~arg:new_size k_shrink shrink_span;
  Rp_obs.Histogram.observe_span t.resize_hist ~start:started
    ~stop:(Unix.gettimeofday ())

(* --- resize: expand --- *)

(* Double the bucket count. All stripes held; no split pending. The
   doubled array is published immediately — each new bucket points at the
   first node of its parent chain that belongs to it, so buckets are
   imprecise (zipped) but complete — and a split cell per parent chain is
   parked on the table. Chains then split lazily, on first writer touch
   under the owning stripe, or eagerly when the caller follows up with
   {!complete_splits_locked}. Even the post-publish grace period is
   deferred to the first splicer (ps_sync_done), so an auto-resize
   expansion costs one array allocation, not a stop-the-world unzip. *)
let expand_locked t =
  Rp_fault.point "rp_ht.expand.pre";
  let started = Unix.gettimeofday () in
  let expand_span = Rp_trace.span_begin k_expand in
  let old = Atomic.get t.current in
  let new_size = old.size * 2 in
  let dest = dest_for new_size in
  let buckets =
    Array.init new_size (fun j ->
        let parent = Atomic.get old.buckets.(j land (old.size - 1)) in
        match find_link ~pred:(fun n -> dest n = j) parent with
        | Some n -> Atomic.make (Node n)
        | None -> Atomic.make Null)
  in
  Rcu.publish t.current { size = new_size; buckets };
  let cells =
    Array.init old.size (fun i ->
        { cell_state = Unzip.start (Atomic.get old.buckets.(i));
          cell_busy = false })
  in
  let remaining =
    Array.fold_left
      (fun n c -> if Unzip.is_done c.cell_state then n else n + 1)
      0 cells
  in
  (* An empty parent chain is born Done; a table of only such chains
     needs no splits (and no splice means no grace period either). *)
  if remaining > 0 then
    Atomic.set t.splitting
      (Some
         {
           ps_new_size = new_size;
           ps_cells = cells;
           ps_remaining = Atomic.make remaining;
           ps_sync_done = Atomic.make false;
         });
  Atomic.incr t.expands;
  Rp_obs.Trace.emit Rp_obs.Trace.default ~arg:new_size "rp_ht.expand";
  Rp_trace.span_end ~arg:new_size k_expand expand_span;
  Rp_obs.Histogram.observe_span t.resize_hist ~start:started
    ~stop:(Unix.gettimeofday ())

let normalize_size t n =
  let n = Rp_hashes.Size.next_power_of_two (max 1 n) in
  min t.max_size (max t.min_size n)

(* Explicit resize is eager, like the paper's: each doubling completes
   its unzip before the next. All stripes held. *)
let resize_locked t target =
  let target = normalize_size t target in
  complete_splits_locked t;
  while (Atomic.get t.current).size < target do
    expand_locked t;
    complete_splits_locked t
  done;
  while (Atomic.get t.current).size > target do
    shrink_locked t
  done

let resize t target = with_all_stripes t (fun () -> resize_locked t target)
let complete_splits t = with_all_stripes t (fun () -> complete_splits_locked t)

(* Auto-resize runs after the mutation's stripe is released: the check is
   lock-free, and only a tripped threshold escalates to the all-stripes
   protocol, where it is re-checked — another writer may have resized in
   the window. One-shot by design; a burst that overshoots again is
   caught by the next mutation. *)
let maybe_auto_resize t =
  if t.auto_resize then begin
    let table = Atomic.get t.current in
    let n = Atomic.get t.count in
    let grow = n * 4 > table.size * 3 && table.size < t.max_size in
    let shrink = n * 8 < table.size && table.size > t.min_size in
    if grow || shrink then
      with_all_stripes t (fun () ->
          let table = Atomic.get t.current in
          let n = Atomic.get t.count in
          if n * 4 > table.size * 3 && table.size < t.max_size then begin
            (* One pending generation at a time: finish leftovers of the
               previous doubling before publishing the next. *)
            complete_splits_locked t;
            expand_locked t
          end
          else if n * 8 < table.size && table.size > t.min_size then begin
            complete_splits_locked t;
            shrink_locked t
          end)
  end

(* --- updates --- *)

(* Every mutation: lock the key's stripe, lazily split the key's bucket if
   an expansion left it zipped (updates below assume precise chains),
   mutate, release, then check the auto-resize thresholds. *)
let with_stripe_hashed t ~hash f =
  let i = stripe_of_hash t hash in
  let m = t.stripes.(i) in
  lock_stripe t i;
  match
    ensure_bucket_split t ~hash;
    f ()
  with
  | v ->
      Mutex.unlock m;
      maybe_auto_resize t;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

let insert_locked t ~hash k v =
  let span = Rp_trace.span_begin_sampled k_insert in
  let table = Atomic.get t.current in
  let link = bucket_link table hash in
  let node = make_node ~hash ~key:k ~value:v ~next:(Atomic.get link) () in
  Rcu.publish link (Node node);
  Atomic.incr t.count;
  Rp_obs.Counter.incr t.obs_inserts;
  Rp_trace.span_end_sampled k_insert span

let insert t k v =
  let hash = t.hash k in
  with_stripe_hashed t ~hash (fun () -> insert_locked t ~hash k v)

let replace t k v =
  let hash = t.hash k in
  with_stripe_hashed t ~hash (fun () ->
      let table = Atomic.get t.current in
      match find_node t ~hash k table with
      | Some n -> Atomic.set n.value v
      | None -> insert_locked t ~hash k v)

(* Unlink the newest binding of [k]; return the node. Stripe of [hash]
   held, bucket already split — so the chain walked here is precise. *)
let unlink_locked t ~hash k =
  let table = Atomic.get t.current in
  let rec loop prev_link =
    match Atomic.get prev_link with
    | Null -> None
    | Node n ->
        if n.hash = hash && t.equal n.key k then begin
          Rcu.publish prev_link (Atomic.get n.next);
          Atomic.decr t.count;
          Rp_obs.Counter.incr t.obs_deletes;
          Some n
        end
        else loop n.next
  in
  loop (bucket_link table hash)

let remove_with ~reclaim t k =
  let hash = t.hash k in
  let unlinked = with_stripe_hashed t ~hash (fun () -> unlink_locked t ~hash k) in
  match unlinked with
  | None -> false
  | Some n ->
      reclaim t n;
      true

let remove t k =
  remove_with t k ~reclaim:(fun t n ->
      t.flavour.Flavour.call_rcu (fun () -> Atomic.set n.reclaimed true))

let remove_sync t k =
  remove_with t k ~reclaim:(fun t n ->
      t.flavour.Flavour.synchronize ();
      Atomic.set n.reclaimed true)

let move t ~from_key ~to_key f =
  let h_from = t.hash from_key in
  let h_to = t.hash to_key in
  let lo = min (stripe_of_hash t h_from) (stripe_of_hash t h_to) in
  let hi = max (stripe_of_hash t h_from) (stripe_of_hash t h_to) in
  let m_lo = t.stripes.(lo) in
  lock_stripe t lo;
  let m_hi =
    if hi = lo then None
    else
      match lock_stripe t hi with
      | () -> Some t.stripes.(hi)
      | exception e ->
          Mutex.unlock m_lo;
          raise e
  in
  let unlock_both () =
    (match m_hi with Some m -> Mutex.unlock m | None -> ());
    Mutex.unlock m_lo
  in
  let moved =
    match
      ensure_bucket_split t ~hash:h_from;
      ensure_bucket_split t ~hash:h_to;
      let table = Atomic.get t.current in
      match find_node t ~hash:h_from from_key table with
      | None -> None
      | Some n ->
          (* Publish the destination binding first, then unlink the
             source: no reader can observe both keys absent. *)
          insert_locked t ~hash:h_to to_key (f (Atomic.get n.value));
          unlink_locked t ~hash:h_from from_key
    with
    | v ->
        unlock_both ();
        v
    | exception e ->
        unlock_both ();
        raise e
  in
  maybe_auto_resize t;
  match moved with
  | None -> false
  | Some n ->
      t.flavour.Flavour.call_rcu (fun () -> Atomic.set n.reclaimed true);
      true

(* --- introspection --- *)

let size t = (Atomic.get t.current).size
let length t = Atomic.get t.count

let load_factor t =
  let table = Atomic.get t.current in
  float_of_int (Atomic.get t.count) /. float_of_int table.size

let set_auto_resize t flag = t.auto_resize <- flag

let resize_stats t =
  {
    expands = Atomic.get t.expands;
    shrinks = Atomic.get t.shrinks;
    unzip_passes = Atomic.get t.unzip_passes;
    unzip_splices = Atomic.get t.unzip_splices;
    recoveries = Atomic.get t.recoveries;
    lazy_splits = Atomic.get t.lazy_splits;
  }

let pending_splits t =
  match Atomic.get t.splitting with
  | None -> 0
  | Some ps -> Atomic.get ps.ps_remaining

let recovery_pending t = pending_splits t > 0

(* --- observability --- *)

let observe ?(prefix = "rp_ht") t reg =
  let name suffix = prefix ^ "_" ^ suffix in
  let fn c () = float_of_int (Atomic.get c) in
  Rp_obs.Registry.register_counter reg ~help:"wait-free lookups"
    (name "lookups_total") t.obs_lookups;
  Rp_obs.Registry.register_counter reg ~help:"node insertions"
    (name "inserts_total") t.obs_inserts;
  Rp_obs.Registry.register_counter reg ~help:"node unlinks"
    (name "deletes_total") t.obs_deletes;
  Rp_obs.Registry.register_counter reg
    ~help:"writer stripe lock acquisitions"
    (name "stripe_acquisitions_total") t.obs_stripe_acq;
  Rp_obs.Registry.register_counter reg
    ~help:"stripe acquisitions that missed try_lock (contended)"
    (name "stripe_contended_total") t.obs_stripe_contended;
  Rp_obs.Registry.fn_counter reg
    ~help:"buckets split lazily by the first touching writer"
    (name "lazy_splits_total") (fn t.lazy_splits);
  Rp_obs.Registry.fn_counter reg ~help:"table expansions"
    (name "expands_total") (fn t.expands);
  Rp_obs.Registry.fn_counter reg ~help:"table shrinks" (name "shrinks_total")
    (fn t.shrinks);
  Rp_obs.Registry.fn_counter reg ~help:"unzip passes over all chains"
    (name "unzip_passes_total") (fn t.unzip_passes);
  Rp_obs.Registry.fn_counter reg ~help:"individual chain splices"
    (name "unzip_splices_total") (fn t.unzip_splices);
  Rp_obs.Registry.fn_counter reg
    ~help:"interrupted unzips completed by a later writer"
    (name "recoveries_total") (fn t.recoveries);
  Rp_obs.Registry.gauge reg ~help:"writer lock stripes" (name "stripes")
    (fun () -> float_of_int (Array.length t.stripes));
  Rp_obs.Registry.gauge reg ~help:"buckets still awaiting their lazy split"
    (name "pending_splits") (fun () -> float_of_int (pending_splits t));
  Rp_obs.Registry.gauge reg ~help:"current bucket count" (name "buckets")
    (fun () -> float_of_int (Atomic.get t.current).size);
  Rp_obs.Registry.gauge reg ~help:"current item count" (name "items")
    (fun () -> float_of_int (Atomic.get t.count));
  Rp_obs.Registry.register_histogram reg
    ~help:"expand/shrink duration in nanoseconds"
    (name "resize_ns") t.resize_hist

let lookups t = Rp_obs.Counter.read t.obs_lookups

(* Per-stripe (acquisitions, contended) heatmap snapshot. Acquisition
   cells are read without the stripe held — a relaxed monitoring read
   that may trail in-flight writers, like [Counter.read]. *)
let stripe_heat t =
  Array.init (Array.length t.stripes) (fun i ->
      (t.stripe_acq_cells.(i * stripe_cell_stride),
       Atomic.get t.stripe_cont_cells.(i)))

let bucket_lengths t =
  let table = Atomic.get t.current in
  Array.map (fun link -> length_link (Atomic.get link)) table.buckets

(* Quiescent whole-table check. Takes every stripe (so no writer is
   mid-mutation) and completes any pending lazy splits first — a
   half-split table is legitimately imprecise, and completing it is
   content-neutral — then demands full precision. *)
let validate t =
  with_all_stripes t (fun () ->
      complete_splits_locked t;
      let table = Atomic.get t.current in
      let expected = Atomic.get t.count in
      let limit = expected + 1 in
      let total = ref 0 in
      let error = ref None in
      let set_error msg = if !error = None then error := Some msg in
      Array.iteri
        (fun b link ->
          let steps = ref 0 in
          let rec walk = function
            | Null -> ()
            | Node n ->
                incr steps;
                if !steps > limit then
                  set_error
                    (Printf.sprintf "bucket %d: cycle or over-long chain" b)
                else begin
                  incr total;
                  let home =
                    Rp_hashes.Size.bucket_of_hash ~hash:n.hash ~size:table.size
                  in
                  if home <> b then
                    set_error
                      (Printf.sprintf "bucket %d: imprecise node (home bucket %d)"
                         b home);
                  if Atomic.get n.reclaimed then
                    set_error
                      (Printf.sprintf "bucket %d: reachable reclaimed node" b);
                  walk (Atomic.get n.next)
                end
          in
          walk (Atomic.get link))
        table.buckets;
      if !total <> expected && !error = None then
        set_error
          (Printf.sprintf "length mismatch: counted %d, recorded %d" !total
             expected);
      match !error with None -> Ok () | Some msg -> Error msg)
