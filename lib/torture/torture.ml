type config = {
  table : string;
  scenario : string;
  duration : float;
  readers : int;
  writers : int;
  resizers : int;
  resident_keys : int;
  churn_keys : int;
  small_size : int;
  large_size : int;
  fault_injection : bool;
  seed : int;
}

let default_config =
  {
    table = "rp";
    scenario = "steady";
    duration = 0.5;
    readers = 2;
    writers = 1;
    resizers = 1;
    resident_keys = 1024;
    churn_keys = 512;
    small_size = 128;
    large_size = 4096;
    fault_injection = false;
    seed = 1;
  }

let table_names = [ "rp"; "rp-qsbr"; "rp-fixed"; "ddds"; "rwlock"; "lock"; "xu" ]
let scenario_names =
  [
    "steady";
    "crash_resizer";
    "lazy_split_crash";
    "mixed_rw";
    "stalled_reader";
    "torn_io";
    "crash_recovery";
    "overload_storm";
    "slow_client";
    "disk_full";
    "replication_divergence";
    "tier_crash";
  ]

let table_of_name = function
  | "rp" -> (module Rp_baseline.Rp_table.Resizable : Rp_baseline.Table_intf.TABLE)
  | "rp-qsbr" -> (module Rp_baseline.Rp_table.Qsbr)
  | "rp-fixed" -> (module Rp_baseline.Rp_table.Fixed)
  | "ddds" -> (module Rp_baseline.Ddds_ht)
  | "rwlock" -> (module Rp_baseline.Rwlock_ht)
  | "lock" -> (module Rp_baseline.Lock_ht)
  | "xu" -> (module Rp_baseline.Xu_ht)
  | name -> invalid_arg ("Torture.run: unknown table " ^ name)

type report = {
  reader_checks : int;
  missing_resident : int;
  wrong_value : int;
  writer_ops : int;
  resize_flips : int;
  faults_injected : int;
  stalls_detected : int;
  recoveries : int;
  elapsed : float;
  metrics : (string * string) list;
}

(* Scenario-level assertions (stalls, recoveries) read the same registry
   the metrics snapshot renders, so what a run reports is exactly what a
   scrape would have shown. *)
let metric_int reg name =
  match Rp_obs.Registry.value reg name with
  | Some v -> int_of_float v
  | None -> 0

let violations r = r.missing_resident + r.wrong_value

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>reader checks:     %d@,missing residents: %d@,wrong values:      %d@,\
     writer ops:        %d@,resize flips:      %d@,faults injected:   %d@,\
     stalls detected:   %d@,recoveries:        %d@,elapsed:           %.2f s@,\
     verdict:           %s@]"
    r.reader_checks r.missing_resident r.wrong_value r.writer_ops
    r.resize_flips r.faults_injected r.stalls_detected r.recoveries r.elapsed
    (if violations r = 0 then "PASS" else "FAIL")

(* Resident values are key*3+1; churn values are key*5+2: a wrong pairing is
   detectable from the value alone. *)
let resident_value k = (k * 3) + 1
let churn_value k = (k * 5) + 2

let validate_config config =
  if not (List.mem config.scenario scenario_names) then
    invalid_arg ("Torture.run: unknown scenario " ^ config.scenario);
  if config.duration <= 0.0 then invalid_arg "Torture.run: duration <= 0";
  if config.readers < 1 then invalid_arg "Torture.run: readers < 1";
  if config.writers < 0 || config.resizers < 0 then
    invalid_arg "Torture.run: negative worker count";
  if config.resident_keys < 1 then invalid_arg "Torture.run: no resident keys";
  if config.scenario <> "steady" && config.table <> "rp" then
    invalid_arg
      ("Torture.run: scenario " ^ config.scenario ^ " runs on the rp table only");
  if config.table = "rp-fixed" && config.resizers > 0 then
    invalid_arg "Torture.run: rp-fixed cannot host resizers";
  ignore (table_of_name config.table)

(* Sites armed (with [Yield]/[Delay]) when [fault_injection] is on, to
   stretch grace periods and shift interleavings without changing
   semantics. Disarmed — and only these — after the run. *)
let perturbation_sites =
  [
    ("rcu.synchronize.scan", Rp_fault.Probability 0.02, Rp_fault.Yield);
    ("rcu.call_rcu.enqueue", Rp_fault.Probability 0.02, Rp_fault.Yield);
    ("rp_ht.unzip.splice", Rp_fault.Probability 0.05, Rp_fault.Yield);
    ("rcu.synchronize.pre", Rp_fault.Probability 0.01, Rp_fault.Delay 5e-5);
  ]

let arm_perturbations seed =
  List.iter
    (fun (site, trigger, action) -> Rp_fault.arm ~seed site ~trigger ~action)
    perturbation_sites

let disarm_perturbations () =
  List.iter (fun (site, _, _) -> Rp_fault.disarm site) perturbation_sites

let perturbation_fires () =
  List.fold_left
    (fun acc (site, _, _) -> acc + Rp_fault.fires site)
    0 perturbation_sites

(* --- steady scenario: any table behind the TABLE signature --- *)

let run_steady config =
  let (module T : Rp_baseline.Table_intf.TABLE) = table_of_name config.table in
  let t =
    T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:config.small_size ()
  in
  for k = 0 to config.resident_keys - 1 do
    T.insert t k (resident_value k)
  done;
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let flips = Atomic.make 0 in
  let injected = Atomic.make 0 in
  let churn_base = config.resident_keys in

  if config.fault_injection then arm_perturbations config.seed;
  let maybe_fault prng =
    if config.fault_injection && Rp_workload.Prng.below prng 64 = 0 then begin
      Atomic.incr injected;
      Unix.sleepf (float_of_int (Rp_workload.Prng.below prng 1000) *. 1e-6)
    end
  in

  (* Oracle reader: resident keys must always be present and correct; churn
     keys may miss but must never carry a foreign value. *)
  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let resident = Rp_workload.Prng.below prng 4 > 0 in
      if resident then begin
        let k = Rp_workload.Prng.below prng config.resident_keys in
        match T.find t k with
        | Some v when v = resident_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> Atomic.incr missing
      end
      else if config.churn_keys > 0 then begin
        let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
        match T.find t k with
        | Some v when v = churn_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> () (* legitimately absent *)
      end;
      incr checks
    done;
    T.reader_exit t;
    !checks
  in

  let writer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let ops = ref 0 in
    while (not (Atomic.get stop)) && config.churn_keys > 0 do
      let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
      if Rp_workload.Prng.bool prng then T.insert t k (churn_value k)
      else ignore (T.remove t k);
      maybe_fault prng;
      incr ops
    done;
    !ops
  in

  let resizer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 13)) index
    in
    while not (Atomic.get stop) do
      T.resize t config.large_size;
      T.resize t config.small_size;
      ignore (Atomic.fetch_and_add flips 2);
      maybe_fault prng
    done;
    0
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init config.writers (fun i ~stop -> writer i ~stop);
        Array.init config.resizers (fun i ~stop -> resizer i ~stop);
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> if config.fault_injection then disarm_perturbations ())
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let faults =
    Atomic.get injected
    + if config.fault_injection then perturbation_fires () else 0
  in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers config.writers)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong;
    writer_ops;
    resize_flips = Atomic.get flips;
    faults_injected = faults;
    stalls_detected = 0;
    recoveries = 0;
    elapsed = outcome.elapsed;
    metrics = [];
  }

(* --- crash_resizer scenario: kill resizers mid-unzip, writers recover --- *)

let splice_site = "rp_ht.unzip.splice"

let run_crash_resizer config =
  let t =
    Rp_ht.create ~initial_size:config.small_size ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  let reg = Rp_obs.Registry.create () in
  Rp_ht.observe t reg;
  Rcu.observe (Rp_ht.rcu t) reg;
  for k = 0 to config.resident_keys - 1 do
    Rp_ht.replace t k (resident_value k)
  done;
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let flips = Atomic.make 0 in
  let churn_base = config.resident_keys in
  if config.fault_injection then arm_perturbations config.seed;
  (* Every splice evaluation may "crash" the resizer: the raise unwinds
     out of [Rp_ht.resize] leaving the interrupted unzip parked on the
     table (imprecise but complete). The next writer op completes it. *)
  Rp_fault.arm ~seed:config.seed splice_site
    ~trigger:(Rp_fault.Probability 0.02) ~action:Rp_fault.Raise;

  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let resident = Rp_workload.Prng.below prng 4 > 0 in
      if resident then begin
        let k = Rp_workload.Prng.below prng config.resident_keys in
        match Rp_ht.find t k with
        | Some v when v = resident_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> Atomic.incr missing
      end
      else if config.churn_keys > 0 then begin
        let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
        match Rp_ht.find t k with
        | Some v when v = churn_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> ()
      end;
      incr checks
    done;
    !checks
  in

  let writer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let ops = ref 0 in
    while (not (Atomic.get stop)) && config.churn_keys > 0 do
      let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
      (* A writer completing a parked unzip walks the splice site too, so
         it can be "crashed" just like a resizer; the next op recovers. *)
      (try
         if Rp_workload.Prng.bool prng then Rp_ht.replace t k (churn_value k)
         else ignore (Rp_ht.remove t k)
       with Rp_fault.Injected _ -> ());
      incr ops
    done;
    !ops
  in

  let resizer _index ~stop =
    while not (Atomic.get stop) do
      (try
         Rp_ht.resize t config.large_size;
         Atomic.incr flips
       with Rp_fault.Injected _ -> ());
      (try
         Rp_ht.resize t config.small_size;
         Atomic.incr flips
       with Rp_fault.Injected _ -> ())
    done;
    0
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init config.writers (fun i ~stop -> writer i ~stop);
        Array.init (max 1 config.resizers) (fun i ~stop -> resizer i ~stop);
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Rp_fault.disarm splice_site;
        if config.fault_injection then disarm_perturbations ())
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let faults =
    Rp_fault.fires splice_site
    + if config.fault_injection then perturbation_fires () else 0
  in
  (* A plain writer op must complete its own bucket's parked split; the
     remaining cells are finished explicitly — only then is the quiescent
     table required to validate precisely with nothing pending. *)
  Rp_ht.replace t 0 (resident_value 0);
  Rp_ht.complete_splits t;
  let wrong_total =
    Atomic.get wrong
    + (if Rp_ht.recovery_pending t then 1 else 0)
    + (match Rp_ht.validate t with Ok () -> 0 | Error _ -> 1)
  in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers config.writers)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = wrong_total;
    writer_ops;
    resize_flips = Atomic.get flips;
    faults_injected = faults;
    stalls_detected = 0;
    recoveries = metric_int reg "rp_ht_recoveries_total";
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats reg;
  }

(* --- lazy_split_crash scenario: kill writers mid-lazy-split ---

   Auto-resize expansions park a split cell per bucket; the first writer
   to touch a bucket performs its split under its own stripe. Here both
   the ["rp_ht.split.lazy"] entry point and the splice inside the split
   are armed to raise, "crashing" writers just before and in the middle
   of their lazy splits, while a flipper keeps shrinking the table back
   down so auto-resize keeps re-expanding and parking fresh cells. The
   next writer to touch an affected bucket must finish the dead writer's
   split (counted in recoveries); residents must stay exact throughout,
   and after an explicit completion pass the table must validate with
   nothing pending. *)

let lazy_site = "rp_ht.split.lazy"

let run_lazy_split_crash config =
  let t =
    Rp_ht.create ~initial_size:config.small_size ~min_size:config.small_size
      ~auto_resize:true ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  let reg = Rp_obs.Registry.create () in
  Rp_ht.observe t reg;
  Rcu.observe (Rp_ht.rcu t) reg;
  (* Seeding drives the first lazy expansions itself — before the kill
     sites go live. *)
  for k = 0 to config.resident_keys - 1 do
    Rp_ht.replace t k (resident_value k)
  done;
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let flips = Atomic.make 0 in
  let churn_base = config.resident_keys in
  if config.fault_injection then arm_perturbations config.seed;
  Rp_fault.arm ~seed:config.seed lazy_site
    ~trigger:(Rp_fault.Probability 0.05) ~action:Rp_fault.Raise;
  Rp_fault.arm ~seed:(config.seed + 1) splice_site
    ~trigger:(Rp_fault.Probability 0.02) ~action:Rp_fault.Raise;

  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let resident = Rp_workload.Prng.below prng 4 > 0 in
      if resident then begin
        let k = Rp_workload.Prng.below prng config.resident_keys in
        match Rp_ht.find t k with
        | Some v when v = resident_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> Atomic.incr missing
      end
      else if config.churn_keys > 0 then begin
        let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
        match Rp_ht.find t k with
        | Some v when v = churn_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> ()
      end;
      incr checks
    done;
    !checks
  in

  let writer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let ops = ref 0 in
    while (not (Atomic.get stop)) && config.churn_keys > 0 do
      let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
      (* Either kill site unwinds out of the op with the split parked
         (imprecise but complete); a later op on the bucket recovers. *)
      (try
         if Rp_workload.Prng.bool prng then Rp_ht.replace t k (churn_value k)
         else ignore (Rp_ht.remove t k)
       with Rp_fault.Injected _ -> ());
      incr ops
    done;
    !ops
  in

  (* Shrinking back down keeps auto-resize re-expanding — so lazy splits
     keep getting parked for writers to crash on all run long. The eager
     completion inside the explicit resize walks the splice site too. *)
  let flipper ~stop =
    while not (Atomic.get stop) do
      (try
         Rp_ht.resize t config.small_size;
         Atomic.incr flips
       with Rp_fault.Injected _ -> ());
      Unix.sleepf 0.002
    done;
    0
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init (max 2 config.writers) (fun i ~stop -> writer i ~stop);
        [| (fun ~stop -> flipper ~stop) |];
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Rp_fault.disarm lazy_site;
        Rp_fault.disarm splice_site;
        if config.fault_injection then disarm_perturbations ())
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let faults =
    Rp_fault.fires lazy_site + Rp_fault.fires splice_site
    + if config.fault_injection then perturbation_fires () else 0
  in
  (* Settle every parked split, then demand a precise, recovery-free
     table — and that the lazy path actually ran (a zero lazy-split count
     would mean the scenario tortured nothing). *)
  Rp_ht.complete_splits t;
  let wrong_total =
    Atomic.get wrong
    + (if Rp_ht.recovery_pending t then 1 else 0)
    + (match Rp_ht.validate t with Ok () -> 0 | Error _ -> 1)
    + (if metric_int reg "rp_ht_lazy_splits_total" = 0 then 1 else 0)
  in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers (max 2 config.writers))
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = wrong_total;
    writer_ops;
    resize_flips = Atomic.get flips;
    faults_injected = faults;
    stalls_detected = 0;
    recoveries = metric_int reg "rp_ht_recoveries_total";
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats reg;
  }

(* --- mixed_rw scenario: 50/50 GET/SET against the striped store ---

   The multi-writer proof at the store layer: N mixed workers each own a
   disjoint key range and run a 50/50 GET/SET [Opmix] against one Rp
   store, so independent stripes mutate concurrently while every GET in
   a worker's own range is checked against that worker's model — exact
   truth, since nothing else writes the range, the byte budget rules out
   eviction, and nothing expires. Cross-range readers verify that any
   value they see carries its owner's "i:j:" stamp (a foreign or torn
   value is detectable from the payload alone). The run ends with a full
   model-equality sweep plus an item-count resurrection check. *)

let run_mixed_rw config =
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp
      ~max_bytes:(256 * 1024 * 1024) ()
  in
  let writers_n = max 4 config.writers in
  let range = max 1 config.churn_keys in
  let key_name i j = Printf.sprintf "mk%d:%d" i j in
  let models = Array.init writers_n (fun _ -> Hashtbl.create 64) in
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  if config.fault_injection then arm_perturbations config.seed;

  let mixed index ~stop =
    let model = models.(index) in
    let mix =
      Rp_workload.Opmix.create ~update_ratio:0.5 ~remove_share:0.0
        ~seed:config.seed ~worker:index ()
    in
    let prng =
      Rp_workload.Prng.split
        (Rp_workload.Prng.create ~seed:(config.seed + 7))
        index
    in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      let j = Rp_workload.Prng.below prng range in
      let key = key_name index j in
      (match Rp_workload.Opmix.next mix with
      | Rp_workload.Opmix.Lookup -> (
          match (Memcached.Store.get store key, Hashtbl.find_opt model j) with
          | Some v, Some data when v.Memcached.Protocol.vdata = data -> ()
          | None, None -> ()
          | Some _, (Some _ | None) -> Atomic.incr wrong
          | None, Some _ -> Atomic.incr missing)
      | Rp_workload.Opmix.Insert | Rp_workload.Opmix.Remove -> (
          let data = Printf.sprintf "%d:%d:%d" index j !ops in
          match Memcached.Store.set store ~key ~flags:0 ~exptime:0 ~data with
          | Memcached.Store.Stored -> Hashtbl.replace model j data
          | _ -> Atomic.incr wrong));
      incr ops
    done;
    !ops
  in

  (* Cross-range readers can't know presence, but every value they do see
     must carry its owner's stamp. *)
  let reader index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index
    in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let i = Rp_workload.Prng.below prng writers_n in
      let j = Rp_workload.Prng.below prng range in
      (match Memcached.Store.get store (key_name i j) with
      | None -> ()
      | Some v ->
          let stamp = Printf.sprintf "%d:%d:" i j in
          if not (String.starts_with ~prefix:stamp v.Memcached.Protocol.vdata)
          then Atomic.incr wrong);
      incr checks
    done;
    !checks
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init writers_n (fun i ~stop -> mixed i ~stop);
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> if config.fault_injection then disarm_perturbations ())
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  (* Final sweep: the store must equal the union of the models exactly —
     every acked SET visible, nothing lost, nothing invented. *)
  let checked = ref 0 and expected = ref 0 in
  Array.iteri
    (fun i model ->
      expected := !expected + Hashtbl.length model;
      Hashtbl.iter
        (fun j data ->
          incr checked;
          match Memcached.Store.get store (key_name i j) with
          | Some v when v.Memcached.Protocol.vdata = data -> ()
          | Some _ -> Atomic.incr wrong
          | None -> Atomic.incr missing)
        model)
    models;
  let extra = Memcached.Store.items store - !expected in
  if extra > 0 then Atomic.set wrong (Atomic.get wrong + extra);
  let structural =
    (* The point of the scenario is concurrent writers: striping must
       actually be on. *)
    if Memcached.Store.write_stripes store < 2 then 1 else 0
  in
  let reg = Memcached.Store.registry store in
  let reader_checks =
    !checked
    + Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers writers_n)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong + structural;
    writer_ops;
    resize_flips = metric_int reg "rp_ht_lazy_splits_total";
    faults_injected =
      (if config.fault_injection then perturbation_fires () else 0);
    stalls_detected = 0;
    recoveries = metric_int reg "rp_ht_recoveries_total";
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats reg;
  }

(* --- stalled_reader scenario: park a reader, catch it with the watchdog --- *)

let run_stalled_reader config =
  let t =
    Rp_ht.create ~initial_size:config.small_size ~auto_resize:false
      ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
  in
  let rcu = Rp_ht.rcu t in
  let reg = Rp_obs.Registry.create () in
  Rp_ht.observe t reg;
  Rcu.observe rcu reg;
  let budget = 0.02 in
  Rcu.set_stall_budget rcu (Some budget);
  let handler_calls = Atomic.make 0 in
  Rcu.set_stall_handler rcu (Some (fun _report -> Atomic.incr handler_calls));
  for k = 0 to config.resident_keys - 1 do
    Rp_ht.replace t k (resident_value k)
  done;
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let flips = Atomic.make 0 in
  let churn_base = config.resident_keys in
  if config.fault_injection then arm_perturbations config.seed;

  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let k = Rp_workload.Prng.below prng config.resident_keys in
      (match Rp_ht.find t k with
      | Some v when v = resident_value k -> ()
      | Some _ -> Atomic.incr wrong
      | None -> Atomic.incr missing);
      incr checks
    done;
    !checks
  in

  let writer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let ops = ref 0 in
    while (not (Atomic.get stop)) && config.churn_keys > 0 do
      let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
      if Rp_workload.Prng.bool prng then Rp_ht.replace t k (churn_value k)
      else ignore (Rp_ht.remove t k);
      incr ops
    done;
    !ops
  in

  let resizer _index ~stop =
    while not (Atomic.get stop) do
      Rp_ht.resize t config.large_size;
      Rp_ht.resize t config.small_size;
      ignore (Atomic.fetch_and_add flips 2)
    done;
    0
  in

  (* The culprit: periodically naps inside a read-side critical section for
     several times the stall budget, so any overlapping grace period trips
     the watchdog. Naps are spaced out so most grace periods stay fast. *)
  let parker ~stop =
    let r = Rcu.register rcu in
    let parks = ref 0 in
    while not (Atomic.get stop) do
      Rcu.read_lock r;
      Unix.sleepf (4.0 *. budget);
      Rcu.read_unlock r;
      incr parks;
      Unix.sleepf budget
    done;
    Rcu.unregister rcu r;
    !parks
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init config.writers (fun i ~stop -> writer i ~stop);
        Array.init (max 1 config.resizers) (fun i ~stop -> resizer i ~stop);
        [| (fun ~stop -> parker ~stop) |];
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        if config.fault_injection then disarm_perturbations ();
        Rcu.set_stall_handler rcu None;
        Rcu.set_stall_budget rcu None)
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let parks = outcome.per_worker_ops.(Array.length workers - 1) in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers config.writers)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong;
    writer_ops;
    resize_flips = Atomic.get flips;
    faults_injected =
      (parks + if config.fault_injection then perturbation_fires () else 0);
    stalls_detected = metric_int reg "rcu_stalls_total";
    recoveries = metric_int reg "rp_ht_recoveries_total";
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats reg;
  }

(* --- torn_io scenario: memcached over a torn-up socket --- *)

let torn_sites =
  [
    ("server.read.split", Rp_fault.Probability 0.25, Rp_fault.Truncate_io 5);
    ("server.write.partial", Rp_fault.Probability 0.25, Rp_fault.Truncate_io 7);
    ("client.write.partial", Rp_fault.Probability 0.25, Rp_fault.Truncate_io 7);
    ("server.conn.reset", Rp_fault.Probability 0.02, Rp_fault.Raise);
  ]

let run_torn_io config =
  let store = Memcached.Store.create ~backend:Memcached.Store.Rp () in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-%d.sock" (Unix.getpid ()))
  in
  let addr = Memcached.Server.Unix_socket path in
  let server = Memcached.Server.start ~store addr in
  let key_name k = "tk" ^ string_of_int k in
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let churn_base = config.resident_keys in
  (* Seed resident keys over clean I/O, then tear the transport up. *)
  let seeder = Memcached.Client.connect ~retries:4 addr in
  for k = 0 to config.resident_keys - 1 do
    if
      not
        (Memcached.Client.set seeder ~key:(key_name k)
           ~data:(string_of_int (resident_value k))
           ())
    then Atomic.incr missing
  done;
  Memcached.Client.close seeder;
  if config.fault_injection then arm_perturbations config.seed;
  List.iter
    (fun (site, trigger, action) ->
      Rp_fault.arm ~seed:config.seed site ~trigger ~action)
    torn_sites;

  let fresh_client () = Memcached.Client.connect ~retries:8 addr in
  let transient = function
    | Memcached.Client.Disconnected _ | Unix.Unix_error _ | End_of_file
    | Failure _ ->
        true
    | _ -> false
  in
  let client_worker role index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 31)) index
    in
    let c = ref (fresh_client ()) in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      (try
         match role with
         | `Get ->
             let k = Rp_workload.Prng.below prng config.resident_keys in
             (match Memcached.Client.get !c (key_name k) with
             | Some v when v.Memcached.Protocol.vdata = string_of_int (resident_value k)
               ->
                 ()
             | Some _ -> Atomic.incr wrong
             | None -> Atomic.incr missing)
         | `Set ->
             let k =
               churn_base + Rp_workload.Prng.below prng (max 1 config.churn_keys)
             in
             if Rp_workload.Prng.bool prng then
               ignore
                 (Memcached.Client.set !c ~key:(key_name k)
                    ~data:(string_of_int (churn_value k))
                    ())
             else (
               match Memcached.Client.get !c (key_name k) with
               | Some v
                 when v.Memcached.Protocol.vdata = string_of_int (churn_value k) ->
                   ()
               | Some _ -> Atomic.incr wrong
               | None -> ())
       with e when transient e ->
         (* Retry budget exhausted on a dead connection: replace it and
            keep going — availability, not consistency, took the hit. *)
         (try Memcached.Client.close !c with _ -> ());
         (try c := fresh_client () with _ -> Unix.sleepf 0.01));
      incr ops
    done;
    (try Memcached.Client.close !c with _ -> ());
    !ops
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> client_worker `Get i ~stop);
        Array.init (max 1 config.writers) (fun i ~stop ->
            client_worker `Set (i + 100) ~stop);
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (site, _, _) -> Rp_fault.disarm site) torn_sites;
        if config.fault_injection then disarm_perturbations ();
        Memcached.Server.stop server)
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let faults =
    List.fold_left (fun acc (site, _, _) -> acc + Rp_fault.fires site) 0 torn_sites
    + if config.fault_injection then perturbation_fires () else 0
  in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers
         (Array.length workers - config.readers))
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong;
    writer_ops;
    resize_flips = 0;
    faults_injected = faults;
    stalls_detected = 0;
    recoveries = 0;
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats (Memcached.Store.registry store);
  }

(* --- crash_recovery scenario: kill -9 mid-snapshot, warm-restart, diff ---

   Writers mutate disjoint key ranges of a persisted store (fsync=always,
   so every acknowledged op is durable before the ack) while a dedicated
   worker takes snapshot after snapshot. The run ends with a staged
   process death: a failpoint "crashes" the snapshotter mid-walk, the
   manager is torn down without any graceful sync, and the newest log
   segment gets a torn tail appended — everything a [kill -9] leaves
   behind. A fresh store then warm-restarts from the directory and must
   match the writers' tracked models {e exactly}: durable-acked sets and
   deletes survive, nothing resurrects, nothing is invented. *)

let snapshot_record_site = "persist.snapshot.record"

let run_crash_recovery config =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-persist-%d" (Unix.getpid ()))
  in
  (* Stale files from a previous crashed run would pollute recovery. *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  let make_store () =
    (* Budget far above the working set: eviction is not logged, so this
       scenario keeps it out of the durable-equality oracle. *)
    Memcached.Store.create ~backend:Memcached.Store.Rp
      ~max_bytes:(256 * 1024 * 1024) ()
  in
  let store = make_store () in
  let persist =
    Memcached.Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Always ~dir
      store
  in
  if config.fault_injection then arm_perturbations config.seed;
  let key_name i j = Printf.sprintf "pk%d:%d" i j in
  let range = max 1 config.churn_keys in
  let writers_n = max 1 config.writers in
  (* Per-writer models: each writer owns its range, so a plain Hashtbl per
     writer (touched only by that writer until the join) is race-free. *)
  let models = Array.init writers_n (fun _ -> Hashtbl.create 64) in
  let snapshots_ok = Atomic.make 0 in

  let writer index ~stop =
    let model = models.(index) in
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      let j = Rp_workload.Prng.below prng range in
      let key = key_name index j in
      if Rp_workload.Prng.below prng 4 > 0 then begin
        let data = Printf.sprintf "%d:%d:%d" index j !ops in
        match
          Memcached.Store.set store ~key ~flags:0 ~exptime:0 ~data
        with
        | Memcached.Store.Stored -> Hashtbl.replace model key data
        | _ -> ()
      end
      else begin
        (* Acked either way: afterwards the key is durably absent. *)
        ignore (Memcached.Store.delete store key);
        Hashtbl.remove model key
      end;
      incr ops
    done;
    !ops
  in

  (* Background reads keep the relativistic fast path busy while the
     snapshot walk shares its read sections with them. *)
  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let i = Rp_workload.Prng.below prng writers_n in
      let j = Rp_workload.Prng.below prng range in
      ignore (Memcached.Store.get store (key_name i j));
      incr checks
    done;
    !checks
  in

  let snapshotter ~stop =
    let n = ref 0 in
    while not (Atomic.get stop) do
      (match Memcached.Persist.snapshot_now persist with
      | Ok _ -> Atomic.incr snapshots_ok
      | Error _ -> ());
      incr n;
      Unix.sleepf 0.005
    done;
    !n
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init writers_n (fun i ~stop -> writer i ~stop);
        [| (fun ~stop -> snapshotter ~stop) |];
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        if config.fault_injection then disarm_perturbations ())
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in

  (* Stage the kill -9: crash the next snapshot mid-walk (after the op log
     has already rotated — the window where a real death loses the
     in-flight snapshot but must lose nothing else)... *)
  Rp_fault.arm ~seed:config.seed snapshot_record_site
    ~trigger:(Rp_fault.Every 10) ~action:Rp_fault.Raise;
  let crash_failed_snapshot =
    match Memcached.Persist.snapshot_now persist with
    | Error _ -> 1
    | Ok _ -> 0 (* tiny table: walk ended before the 10th record *)
  in
  Rp_fault.disarm snapshot_record_site;
  (* ...kill the manager with no graceful sync or close... *)
  Memcached.Persist.crash_for_testing persist;
  (* ...and leave a torn half-written record at the newest segment's tail,
     as the interrupted append of a dying process would. *)
  let torn_bytes =
    match List.rev (Rp_persist.Oplog.segments ~dir) with
    | [] -> 0
    | (_, path) :: _ ->
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
        let garbage = "\x00\x00\x40\x00torn!" in
        let n = Unix.write_substring fd garbage 0 (String.length garbage) in
        Unix.close fd;
        n
  in

  (* Warm restart into a fresh store; recovery must reassemble the exact
     durable state. *)
  let store2 = make_store () in
  let persist2 = Memcached.Persist.attach ~aof:true ~dir store2 in
  let recovery = Memcached.Persist.recovery persist2 in
  let missing = ref 0 and wrong = ref 0 and checked = ref 0 in
  let expected = ref 0 in
  Array.iter
    (fun model ->
      expected := !expected + Hashtbl.length model;
      Hashtbl.iter
        (fun key data ->
          incr checked;
          match Memcached.Store.get store2 key with
          | Some v when v.Memcached.Protocol.vdata = data -> ()
          | Some _ -> incr wrong
          | None -> incr missing)
        model)
    models;
  (* No resurrections either: the recovered store holds exactly the model
     keys (every extra item counts as a wrong value). *)
  let extra = Memcached.Store.items store2 - !expected + !missing in
  if extra > 0 then wrong := !wrong + extra;
  let metrics =
    List.filter
      (fun (name, _) ->
        String.length name < 18 || String.sub name 0 18 <> "persist_recovered_")
      (Memcached.Store.persist_stats store)
    @ List.filter
        (fun (name, _) ->
          String.length name >= 18 && String.sub name 0 18 = "persist_recovered_")
        (Memcached.Store.persist_stats store2)
  in
  Memcached.Persist.stop persist2;
  let reader_checks =
    !checked
    + Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers writers_n)
  in
  {
    reader_checks;
    missing_resident = !missing;
    wrong_value =
      !wrong
      + (if recovery.Memcached.Persist.log_truncated_bytes < torn_bytes then 1
         else 0);
    writer_ops;
    resize_flips = 0;
    faults_injected =
      Rp_fault.fires snapshot_record_site
      + crash_failed_snapshot + (if torn_bytes > 0 then 1 else 0)
      + (if config.fault_injection then perturbation_fires () else 0);
    stalls_detected = 0;
    (* "recoveries" here = durable recovery points exercised: snapshots
       published during the run, plus the warm restart itself. *)
    recoveries = Atomic.get snapshots_ok + 1;
    elapsed = outcome.elapsed;
    metrics;
  }

(* --- tier_crash scenario: SIGKILL mid-demotion and mid-compaction ---

   A store squeezed to a fraction of its working set runs with both the
   cold tier and fsync=always persistence attached, so the eviction
   sweep demotes continuously while writers churn. Failpoints kill
   segment appends mid-demotion (the store must fall back to plain
   eviction, never crash a writer) and poison reads at low probability;
   a staged compaction pass dies on the same failpoint mid-copy. Then
   the process "dies": the persist manager is torn down with no graceful
   sync, the newest log segment gets a torn tail, and the tier is
   abandoned with whatever segments it had. A warm restart re-attaches
   both planes — recovery replays every value hot, the post-recovery
   sweep re-demotes the overflow into fresh segments, and tier recovery
   drops the now fully-dead old ones. The oracle is exact: every
   acked-durable SET must come back with its exact value (from RAM or
   via a cold promote), acked deletes must stay dead, nothing invented. *)

let run_tier_crash config =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-tier-%d" (Unix.getpid ()))
  in
  let data_dir = Filename.concat root "data" in
  let tier_dir = Filename.concat root "tier" in
  List.iter
    (fun d ->
      if Sys.file_exists d then
        Array.iter
          (fun f -> try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
          (Sys.readdir d))
    [ data_dir; tier_dir ];
  let range = max 1 config.churn_keys in
  let writers_n = max 1 config.writers in
  (* Budget ~1/8 of the working set: most of the key range can only be
     resident as cold markers, so demotion/promotion is the steady state
     rather than a corner case — and even a churn-thinned recovered set
     still overflows it, keeping the post-restart sweep demoting. *)
  let working_set = writers_n * range * (config.large_size + 128) in
  let max_bytes = max 4096 (working_set / 8) in
  let make_store () =
    Memcached.Store.create ~backend:Memcached.Store.Rp ~max_bytes ()
  in
  (* Tiny segments so the run seals plenty of them — compaction and the
     fully-dead auto-drop need sealed segments to chew on. *)
  let attach_tier store =
    match
      Memcached.Tier.attach ~segment_bytes:4096 ~dir:tier_dir ~max_mb:64 store
    with
    | Ok t -> t
    | Error m -> failwith ("tier_crash: tier attach failed: " ^ m)
  in
  let store = make_store () in
  let tier = attach_tier store in
  let persist =
    Memcached.Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Always
      ~dir:data_dir store
  in
  ignore (Memcached.Tier.finish_recovery tier);
  if config.fault_injection then begin
    arm_perturbations config.seed;
    (* Mid-demotion kills: every few segment appends dies half-written.
       The demote must fail closed (plain eviction), never take the
       writer thread with it. Reads get torn frames now and then; a torn
       frame drops the marker — the value is still in the op log. *)
    Rp_fault.arm ~seed:config.seed Rp_tier.append_site
      ~trigger:(Rp_fault.Every 7) ~action:Rp_fault.Raise;
    Rp_fault.arm ~seed:config.seed Rp_tier.read_torn_site
      ~trigger:(Rp_fault.Probability 0.02) ~action:Rp_fault.Raise
  end;

  let key_name i j = Printf.sprintf "tk%d:%d" i j in
  let models = Array.init writers_n (fun _ -> Hashtbl.create 64) in
  let writer index ~stop =
    let model = models.(index) in
    let prng =
      Rp_workload.Prng.split
        (Rp_workload.Prng.create ~seed:(config.seed + 11))
        index
    in
    let size_span = max 1 (config.large_size - config.small_size) in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      let j = Rp_workload.Prng.below prng range in
      let key = key_name index j in
      if Rp_workload.Prng.below prng 5 > 0 then begin
        let body =
          String.make
            (config.small_size + Rp_workload.Prng.below prng size_span)
            'v'
        in
        let data = Printf.sprintf "%d:%d:%d:%s" index j !ops body in
        match Memcached.Store.set store ~key ~flags:0 ~exptime:0 ~data with
        | Memcached.Store.Stored -> Hashtbl.replace model key data
        | _ -> ()
      end
      else begin
        ignore (Memcached.Store.delete store key);
        Hashtbl.remove model key
      end;
      incr ops
    done;
    !ops
  in
  (* Readers hammer the promote path: most of the range is demoted, so a
     random GET is usually a cold hit — disk read, stripe reinsert, and
     the sweep demoting something else to make room. *)
  let reader index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index
    in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let i = Rp_workload.Prng.below prng writers_n in
      let j = Rp_workload.Prng.below prng range in
      ignore (Memcached.Store.get store (key_name i j));
      incr checks
    done;
    !checks
  in
  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init writers_n (fun i ~stop -> writer i ~stop);
      ]
  in
  let outcome = Rp_harness.Runner.run ~duration:config.duration ~workers () in
  Rp_fault.disarm Rp_tier.read_torn_site;
  Rp_fault.disarm Rp_tier.append_site;
  if config.fault_injection then disarm_perturbations ();
  (* Re-arming a site resets its fire count: bank the run phase's now. *)
  let run_fires =
    Rp_fault.fires Rp_tier.append_site + Rp_fault.fires Rp_tier.read_torn_site
  in

  (* Make a compaction candidate (a mostly-dead sealed segment): delete a
     slice of currently-cold keys, then kill the compactor's relocation
     appends mid-copy. Skipped copies must leave the old frames live and
     readable — the crash lands before compaction gets another shot. *)
  Array.iteri
    (fun i model ->
      let doomed =
        Hashtbl.fold
          (fun key _ acc ->
            if
              List.length acc < range / 4
              && Memcached.Store.tier_location store key <> None
            then key :: acc
            else acc)
          model []
      in
      List.iter
        (fun key ->
          ignore (Memcached.Store.delete store key);
          Hashtbl.remove models.(i) key)
        doomed)
    models;
  Rp_fault.arm ~seed:config.seed Rp_tier.append_site
    ~trigger:Rp_fault.Always ~action:Rp_fault.Raise;
  let killed_compaction = Memcached.Tier.compact_once tier in
  ignore killed_compaction;
  Rp_fault.disarm Rp_tier.append_site;
  let fault_fires = run_fires + Rp_fault.fires Rp_tier.append_site in

  (* The kill -9: no graceful sync, a torn half-record at the log tail,
     the tier abandoned mid-flight (its segments stay as they fell). *)
  Memcached.Persist.crash_for_testing persist;
  let torn_bytes =
    match List.rev (Rp_persist.Oplog.segments ~dir:data_dir) with
    | [] -> 0
    | (_, path) :: _ ->
        let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
        let garbage = "\x00\x00\x40\x00torn!" in
        let n = Unix.write_substring fd garbage 0 (String.length garbage) in
        Unix.close fd;
        n
  in
  Memcached.Tier.stop tier;

  (* Warm restart, both planes re-attached in the two-phase order. The
     post-recovery sweep demotes the overflow through the fresh tier, so
     the oracle walk below exercises real cold reads, not just RAM. *)
  let store2 = make_store () in
  let tier2 = attach_tier store2 in
  let persist2 = Memcached.Persist.attach ~aof:true ~dir:data_dir store2 in
  let recovery = Memcached.Persist.recovery persist2 in
  let dropped_segments = Memcached.Tier.finish_recovery tier2 in
  let missing = ref 0 and wrong = ref 0 and checked = ref 0 in
  let expected = ref 0 in
  Array.iter
    (fun model ->
      expected := !expected + Hashtbl.length model;
      Hashtbl.iter
        (fun key data ->
          incr checked;
          match Memcached.Store.get store2 key with
          | Some v when v.Memcached.Protocol.vdata = data -> ()
          | Some _ -> incr wrong
          | None -> incr missing)
        model)
    models;
  let extra = Memcached.Store.items store2 - !expected + !missing in
  if extra > 0 then wrong := !wrong + extra;
  (* The restart must actually have exercised the tier: demotions from
     the post-recovery sweep, promotions from the oracle's cold GETs. *)
  let demotions2 = Memcached.Store.tier_demotions store2 in
  let promotions2 = Memcached.Store.tier_promotions store2 in
  let metrics =
    ("tier_recovery_dropped_segments", string_of_int dropped_segments)
    :: Rp_obs.Registry.to_stats (Memcached.Store.registry store2)
  in
  Memcached.Persist.stop persist2;
  Memcached.Tier.stop tier2;
  let reader_checks =
    !checked
    + Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers writers_n)
  in
  {
    reader_checks;
    missing_resident = !missing;
    wrong_value =
      !wrong
      + (if recovery.Memcached.Persist.log_truncated_bytes < torn_bytes then 1
         else 0);
    writer_ops;
    resize_flips = 0;
    faults_injected =
      fault_fires
      + (if torn_bytes > 0 then 1 else 0)
      + (if config.fault_injection then perturbation_fires () else 0);
    (* A restart that never demoted or never promoted proves nothing —
       surface it as a stall so the gate fails loudly. *)
    stalls_detected = (if demotions2 = 0 || promotions2 = 0 then 1 else 0);
    recoveries = 1;
    elapsed = outcome.elapsed;
    metrics;
  }

(* --- overload_storm scenario: flood of mutations against the guard ---

   A small fleet of storm writers and a couple of oracle GET readers sit
   on persistent connections sized so that connection pressure lands in
   the guard's Shed band. The ladder must climb, mutations must come
   back as [SERVER_ERROR overloaded] (counted, never crashed on), GETs
   must stay error-free throughout, and once the storm stops the ladder
   must walk back to Healthy within a few sweeps. The transitions must
   be visible from the outside: [stats guard] lines and control-tier
   ["guard.state"] events in the flight-recorder export. *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let await_healthy guard ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec poll () =
    if Rp_guard.state guard = Rp_guard.Healthy then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.005;
      poll ()
    end
  in
  poll ()

let run_overload_storm config =
  let store = Memcached.Store.create ~backend:Memcached.Store.Rp () in
  let guard = Memcached.Guard.install ~interval:0.01 store in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-storm-%d.sock" (Unix.getpid ()))
  in
  let addr = Memcached.Server.Unix_socket path in
  let readers_n = max 1 config.readers in
  let storm_n = max 6 config.writers in
  (* Size admission so the steady connection count sits inside the Shed
     band: total/(total+1) is >= 0.85 from 7 connections up and stays
     below the Emergency rung until ~19. *)
  let server_config =
    {
      Memcached.Server.default_config with
      max_inflight = readers_n + storm_n + 1;
    }
  in
  let server = Memcached.Server.start ~store ~config:server_config addr in
  Memcached.Guard.watch_server guard server;
  let key_name k = "sk" ^ string_of_int k in
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let stored = Atomic.make 0 in
  let shed_seen = Atomic.make 0 in
  (* Seed the oracle keys before the sweeper starts: mutations are still
     admitted while the guard sleeps. *)
  let seeder = Memcached.Client.connect ~retries:4 addr in
  for k = 0 to config.resident_keys - 1 do
    if
      not
        (Memcached.Client.set seeder ~key:(key_name k)
           ~data:(string_of_int (resident_value k))
           ())
    then Atomic.incr missing
  done;
  Memcached.Client.close seeder;
  if config.fault_injection then arm_perturbations config.seed;
  Rp_guard.start guard;

  (* Oracle: under full shed, reads must stay exact — never an error,
     never a stale or missing resident. *)
  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let c = Memcached.Client.connect ~retries:2 addr in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let k = Rp_workload.Prng.below prng config.resident_keys in
      (match Memcached.Client.get c (key_name k) with
      | Some v when v.Memcached.Protocol.vdata = string_of_int (resident_value k)
        ->
          ()
      | Some _ -> Atomic.incr wrong
      | None -> Atomic.incr missing
      | exception _ -> Atomic.incr wrong);
      incr checks
    done;
    Memcached.Client.close c;
    !checks
  in

  (* Storm: hammer mutations on a persistent connection; a shed reply is
     the expected outcome, an exception is a failure. *)
  let storm index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let c = Memcached.Client.connect ~retries:2 addr in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      let k =
        config.resident_keys
        + Rp_workload.Prng.below prng (max 1 config.churn_keys)
      in
      (match
         Memcached.Client.try_set c ~key:(key_name k)
           ~data:(string_of_int (churn_value k))
           ()
       with
      | `Stored -> Atomic.incr stored
      | `Overloaded _ -> Atomic.incr shed_seen
      | `Not_stored -> ()
      | exception _ -> Atomic.incr wrong);
      incr ops
    done;
    Memcached.Client.close c;
    !ops
  in

  let workers =
    Array.concat
      [
        Array.init readers_n (fun i ~stop -> reader i ~stop);
        Array.init storm_n (fun i ~stop -> storm (i + 100) ~stop);
      ]
  in
  let structural = ref 0 in
  let recovered = ref false in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        if config.fault_injection then disarm_perturbations ();
        (* Storm gone, connections closed: the ladder must resolve back
           to Healthy within a few sweep intervals. *)
        recovered := await_healthy guard ~timeout:2.0;
        (* The incident must be legible from the outside: live [stats
           guard] lines over the wire, and the state transitions as
           control-tier events in the trace export. *)
        (try
           let c = Memcached.Client.connect ~retries:4 addr in
           let kvs = Memcached.Client.stats ~arg:"guard" c in
           Memcached.Client.close c;
           if not (List.mem_assoc "guard_state_name" kvs) then incr structural;
           if not (List.mem_assoc "guard_shed_total" kvs) then incr structural
         with _ -> structural := !structural + 2);
        if
          not
            (contains_substring (Rp_trace.export_json ()) "guard.state")
        then incr structural;
        Rp_guard.stop guard;
        Memcached.Server.stop server)
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 readers_n)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops readers_n storm_n)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong + !structural;
    writer_ops;
    resize_flips = 0;
    faults_injected =
      Rp_guard.shed_total guard
      + (if config.fault_injection then perturbation_fires () else 0);
    stalls_detected = Rp_guard.transitions guard;
    recoveries = (if !recovered then 1 else 0);
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats (Memcached.Store.registry store);
  }

(* --- slow_client scenario: one non-draining socket vs the event loop ---

   A victim connection pipelines GETs of a 4 KiB value and never reads a
   byte back. The event-loop plane must park its pipeline at the
   per-connection write cap (bounded coalescer memory), stop reading
   from it, and — once it makes no progress for a whole drain deadline —
   kill it, while a well-behaved client on the same worker keeps
   streaming verified GETs the entire time. *)

let run_slow_client config =
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp
      ~rcu_mode:Memcached.Store.Qsbr ()
  in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-slow-%d.sock" (Unix.getpid ()))
  in
  let addr = Memcached.Server.Unix_socket path in
  let server_config =
    {
      Memcached.Server.default_config with
      mode = Memcached.Server.Event_loop;
      workers = 1;
      conn_write_cap = 8192;
      drain_deadline = Float.min 0.05 (config.duration /. 2.);
    }
  in
  let server = Memcached.Server.start ~store ~config:server_config addr in
  let key_name k = "wk" ^ string_of_int k in
  let big = String.make 4096 'x' in
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let victim_killed = Atomic.make 0 in
  let seeder = Memcached.Client.connect ~retries:4 addr in
  ignore (Memcached.Client.set seeder ~key:"big" ~data:big ());
  for k = 0 to config.resident_keys - 1 do
    if
      not
        (Memcached.Client.set seeder ~key:(key_name k)
           ~data:(string_of_int (resident_value k))
           ())
    then Atomic.incr missing
  done;
  Memcached.Client.close seeder;
  if config.fault_injection then arm_perturbations config.seed;

  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let c = Memcached.Client.connect ~retries:4 addr in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let k = Rp_workload.Prng.below prng config.resident_keys in
      (match Memcached.Client.get c (key_name k) with
      | Some v when v.Memcached.Protocol.vdata = string_of_int (resident_value k)
        ->
          ()
      | Some _ -> Atomic.incr wrong
      | None -> Atomic.incr missing
      | exception _ -> Atomic.incr wrong);
      incr checks
    done;
    Memcached.Client.close c;
    !checks
  in

  (* The abuser: pipeline big GETs as fast as the socket accepts and
     never read a response. A tiny receive buffer makes the kernel stop
     accepting server bytes almost immediately, so the server's write
     cap and drain deadline do the rest. *)
  let victim ~stop =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.setsockopt_int fd Unix.SO_RCVBUF 4096
     with Unix.Unix_error _ -> ());
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | exception _ ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        0
    | () ->
        Unix.set_nonblock fd;
        let req = Bytes.of_string (String.concat "" (List.init 64 (fun _ -> "get big\r\n"))) in
        let sent = ref 0 in
        let dead = ref false in
        while (not (Atomic.get stop)) && not !dead do
          match Unix.write fd req 0 (Bytes.length req) with
          | n -> sent := !sent + n
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              Unix.sleepf 0.002
          | exception Unix.Unix_error _ ->
              (* EPIPE/ECONNRESET: the server executed us. *)
              Atomic.incr victim_killed;
              dead := true
        done;
        (try Unix.close fd with Unix.Unix_error _ -> ());
        !sent
  in

  let workers =
    Array.concat
      [
        Array.init (max 1 config.readers) (fun i ~stop -> reader i ~stop);
        [| (fun ~stop -> victim ~stop) |];
      ]
  in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        if config.fault_injection then disarm_perturbations ();
        Memcached.Server.stop server)
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let reg = Memcached.Store.registry store in
  let kills = metric_int reg "guard_slow_client_kills_total" in
  let reader_checks =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops 0 (max 1 config.readers))
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    (* A zero kill count means the defense never fired: structural
       failure, not just a missing stat. *)
    wrong_value = (Atomic.get wrong + if kills = 0 then 1 else 0);
    writer_ops = outcome.per_worker_ops.(Array.length workers - 1);
    resize_flips = 0;
    faults_injected =
      (kills + if config.fault_injection then perturbation_fires () else 0);
    stalls_detected = 0;
    recoveries = Atomic.get victim_killed;
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats reg;
  }

(* --- disk_full scenario: op-log appends start failing mid-run ---

   Writers stream mutations into a persisted store while a chaos worker
   arms the ["persist.log.append"] failpoint mid-run. Appends fail, the
   disk source latches Emergency-level pressure, and the guard must
   degrade — mutations shed, snapshots paused, GETs still exact — then
   walk back to Healthy once the failpoint is disarmed and the error
   window expires, at which point a fresh mutation must succeed and log
   durably again. *)

let append_site = "persist.log.append"

let run_disk_full config =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-diskfull-%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
  let store =
    Memcached.Store.create ~backend:Memcached.Store.Rp
      ~max_bytes:(256 * 1024 * 1024) ()
  in
  let guard = Memcached.Guard.install ~interval:0.01 store in
  let persist =
    Memcached.Persist.attach ~aof:true ~fsync:Rp_persist.Oplog.Always ~dir
      store
  in
  Memcached.Guard.watch_persist guard ~error_window:0.05 persist;
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-diskfull-%d.sock" (Unix.getpid ()))
  in
  let addr = Memcached.Server.Unix_socket path in
  let server = Memcached.Server.start ~store addr in
  Memcached.Guard.watch_server guard server;
  let key_name k = "dk" ^ string_of_int k in
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let shed_seen = Atomic.make 0 in
  let seeder = Memcached.Client.connect ~retries:4 addr in
  for k = 0 to config.resident_keys - 1 do
    if
      not
        (Memcached.Client.set seeder ~key:(key_name k)
           ~data:(string_of_int (resident_value k))
           ())
    then Atomic.incr missing
  done;
  Memcached.Client.close seeder;
  if config.fault_injection then arm_perturbations config.seed;
  Rp_guard.start guard;

  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let c = Memcached.Client.connect ~retries:2 addr in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let k = Rp_workload.Prng.below prng config.resident_keys in
      (match Memcached.Client.get c (key_name k) with
      | Some v when v.Memcached.Protocol.vdata = string_of_int (resident_value k)
        ->
          ()
      | Some _ -> Atomic.incr wrong
      | None -> Atomic.incr missing
      | exception _ -> Atomic.incr wrong);
      incr checks
    done;
    Memcached.Client.close c;
    !checks
  in

  let writer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let c = Memcached.Client.connect ~retries:2 addr in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      let k =
        config.resident_keys
        + Rp_workload.Prng.below prng (max 1 config.churn_keys)
      in
      (match
         Memcached.Client.try_set c ~key:(key_name k)
           ~data:(string_of_int (churn_value k))
           ()
       with
      | `Stored | `Not_stored -> ()
      | `Overloaded _ -> Atomic.incr shed_seen
      | exception _ -> Atomic.incr wrong);
      incr ops
    done;
    Memcached.Client.close c;
    !ops
  in

  (* The disk chaos: a third into the run every op-log append starts
     raising (ENOSPC stand-in); a third later the disk "clears". The
     direct store write right after arming guarantees at least one
     latched failure even if the guard sheds the client writers within a
     sweep. *)
  let chaos ~stop =
    let third = config.duration /. 3. in
    Unix.sleepf third;
    Rp_fault.arm ~seed:config.seed append_site
      ~trigger:(Rp_fault.Probability 1.0) ~action:Rp_fault.Raise;
    ignore (Memcached.Store.set store ~key:"chaos" ~flags:0 ~exptime:0 ~data:"x");
    Unix.sleepf third;
    Rp_fault.disarm append_site;
    while not (Atomic.get stop) do
      Unix.sleepf 0.005
    done;
    0
  in

  let readers_n = max 1 config.readers in
  let writers_n = max 2 config.writers in
  let workers =
    Array.concat
      [
        Array.init readers_n (fun i ~stop -> reader i ~stop);
        Array.init writers_n (fun i ~stop -> writer (i + 100) ~stop);
        [| (fun ~stop -> chaos ~stop) |];
      ]
  in
  let structural = ref 0 in
  let recovered = ref false in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        Rp_fault.disarm append_site;
        if config.fault_injection then disarm_perturbations ();
        (* The ladder must have peaked at Emergency during the outage
           and must fully resolve once the window expires. *)
        if Rp_guard.peak_state guard <> Rp_guard.Emergency then
          incr structural;
        recovered := await_healthy guard ~timeout:2.0;
        (* Durability restored: a fresh mutation must ack and append. *)
        (try
           let c = Memcached.Client.connect ~retries:4 addr in
           let before = Memcached.Persist.append_errors persist in
           if not (Memcached.Client.set c ~key:"post" ~data:"recovered" ())
           then incr structural;
           if Memcached.Persist.append_errors persist <> before then
             incr structural;
           Memcached.Client.close c
         with _ -> incr structural);
        Rp_guard.stop guard;
        Memcached.Server.stop server;
        Memcached.Persist.stop persist)
      (fun () -> Rp_harness.Runner.run ~duration:config.duration ~workers ())
  in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 readers_n)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops readers_n writers_n)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong + !structural;
    writer_ops;
    resize_flips = 0;
    faults_injected =
      Rp_fault.fires append_site
      + Memcached.Persist.append_errors persist
      + (if config.fault_injection then perturbation_fires () else 0);
    stalls_detected = Rp_guard.transitions guard;
    recoveries = (if !recovered then 1 else 0);
    elapsed = outcome.elapsed;
    metrics = Rp_obs.Registry.to_stats (Memcached.Store.registry store);
  }

(* --- replication_divergence scenario: kill -9 the leader mid-stream ---

   The one scenario that runs REAL processes: a leader memcached_server
   (--repl-port) and a follower (--replica-of) spawned as children.
   Writers drive the leader over TCP while tracking per-writer models;
   the follower attaches mid-load (exercising the catch-up -> live
   handoff), the scenario waits for the follower's acked watermark to
   meet the leader's sent watermark, then SIGKILLs the leader — no
   shutdown, no flush. The follower is promoted over the wire
   ([cluster promote]) and the promoted store must equal the union of
   the writer models exactly: every acked mutation survives, nothing
   resurrects. Finally a ring-aware client pointed at {dead leader,
   promoted follower} must eject the corpse and land a write on the
   survivor — the client-side half of the failover story. *)

let scrub_dir dir =
  if Sys.file_exists dir then
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir)

(* The gate and the alcotest runner both live one directory over from
   bin/ in the build tree, so the relative fallback works for either;
   TORTURE_SERVER_BIN overrides for odd layouts. *)
let server_binary () =
  match Sys.getenv_opt "TORTURE_SERVER_BIN" with
  | Some path -> path
  | None ->
      Filename.concat
        (Filename.dirname Sys.executable_name)
        (Filename.concat ".." (Filename.concat "bin" "memcached_server.exe"))

let spawn_server bin args =
  let r, w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process bin
      (Array.of_list (bin :: args))
      Unix.stdin w Unix.stderr
  in
  Unix.close w;
  (pid, Unix.in_channel_of_descr r)

(* Children announce their kernel-picked ports on stdout
   ("replication listener on 127.0.0.1:P", "listening on 127.0.0.1:P"). *)
let await_port oc ~prefix =
  let rec loop () =
    match input_line oc with
    | line when String.starts_with ~prefix line -> (
        match String.rindex_opt line ':' with
        | Some i -> (
            match
              int_of_string_opt
                (String.sub line (i + 1) (String.length line - i - 1))
            with
            | Some p -> p
            | None -> loop ())
        | None -> loop ())
    | _ -> loop ()
    | exception End_of_file ->
        failwith
          ("replication_divergence: server exited before \"" ^ prefix ^ "\"")
  in
  loop ()

let kill_quiet pid signal =
  try Unix.kill pid signal with Unix.Unix_error _ -> ()

let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let run_replication_divergence config =
  let bin = server_binary () in
  if not (Sys.file_exists bin) then
    failwith
      ("replication_divergence: memcached_server binary not found at " ^ bin
     ^ " (set TORTURE_SERVER_BIN)");
  let dir_for name =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "rp-torture-%s-%d" name (Unix.getpid ()))
  in
  let leader_dir = dir_for "repl-leader"
  and follower_dir = dir_for "repl-follower" in
  scrub_dir leader_dir;
  scrub_dir follower_dir;
  (* fsync=never: leader durability is not under test — the oracle runs
     against the promoted follower's live table, and slow fsyncs would
     just eat the short budget. *)
  let common =
    [
      "-p"; "0"; "--snapshot-interval"; "0"; "--guard"; "false";
      "--fsync-policy"; "never"; "--trace-sample"; "1";
    ]
  in
  let leader_pid, leader_out =
    spawn_server bin
      ([ "--data-dir"; leader_dir; "--repl-port"; "0" ] @ common)
  in
  let repl_port = await_port leader_out ~prefix:"replication listener" in
  let leader_port = await_port leader_out ~prefix:"listening on" in

  let writers_n = max 1 config.writers in
  let range = max 1 config.churn_keys in
  let key_name i j = Printf.sprintf "rk%d:%d" i j in
  (* Per-writer models over disjoint key ranges: each Hashtbl is touched
     by exactly one writer until the join, so no locking. The client is
     blocking request-response, so a model entry always reflects an
     acked mutation. *)
  let models = Array.init writers_n (fun _ -> Hashtbl.create 64) in

  let writer index ~stop =
    let model = models.(index) in
    let client =
      Memcached.Client.connect ~retries:4 (Memcached.Server.Tcp leader_port)
    in
    let prng =
      Rp_workload.Prng.split
        (Rp_workload.Prng.create ~seed:(config.seed + 11))
        index
    in
    let ops = ref 0 in
    while not (Atomic.get stop) do
      let j = Rp_workload.Prng.below prng range in
      let key = key_name index j in
      if Rp_workload.Prng.below prng 4 > 0 then begin
        let data = Printf.sprintf "%d:%d:%d" index j !ops in
        if Memcached.Client.set client ~key ~data () then
          Hashtbl.replace model key data
      end
      else begin
        (* Acked either way: afterwards the key is absent. *)
        ignore (Memcached.Client.delete client key);
        Hashtbl.remove model key
      end;
      incr ops
    done;
    Memcached.Client.close client;
    !ops
  in

  (* Background GETs keep the leader's read path busy while it streams. *)
  let reader index ~stop =
    let client =
      Memcached.Client.connect ~retries:4 (Memcached.Server.Tcp leader_port)
    in
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index
    in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let i = Rp_workload.Prng.below prng writers_n in
      let j = Rp_workload.Prng.below prng range in
      ignore (Memcached.Client.get client (key_name i j));
      incr checks
    done;
    Memcached.Client.close client;
    !checks
  in

  (* Mid-load, the controller attaches the follower — so its catch-up
     cursor starts against a log that is still growing and the
     catch-up -> live-tap handoff happens under write traffic. *)
  let follower = ref None in
  let controller ~stop =
    Unix.sleepf (config.duration /. 3.);
    let pid, out =
      spawn_server bin
        ([
           "--data-dir"; follower_dir;
           "--replica-of"; Printf.sprintf "127.0.0.1:%d" repl_port;
         ]
        @ common)
    in
    let port = await_port out ~prefix:"listening on" in
    follower := Some (pid, port, out);
    while not (Atomic.get stop) do
      Unix.sleepf 0.005
    done;
    1
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init writers_n (fun i ~stop -> writer i ~stop);
        [| (fun ~stop -> controller ~stop) |];
      ]
  in
  let outcome = Rp_harness.Runner.run ~duration:config.duration ~workers () in

  let structural = ref 0 in
  let recoveries = ref 0 in
  let fpid, fport, follower_out =
    match !follower with
    | Some x -> x
    | None -> failwith "replication_divergence: follower never attached"
  in
  let stat stats name =
    match List.assoc_opt name stats with Some v -> v | None -> ""
  in
  (* Watermark: the leader's own `stats cluster` must show the follower
     caught up with acked_seq == sent_seq — the exact lines an operator
     would watch before trusting a failover. *)
  let admin =
    Memcached.Client.connect ~retries:4 (Memcached.Server.Tcp leader_port)
  in
  let leader_cluster = ref [] in
  let caught_up () =
    let s = Memcached.Client.stats ~arg:"cluster" admin in
    leader_cluster := s;
    let sent = stat s "cluster_follower_0_sent_seq"
    and acked = stat s "cluster_follower_0_acked_seq" in
    stat s "cluster_follower_0_caught_up" = "1"
    && sent <> "" && sent <> "0" && sent = acked
  in
  let deadline = Unix.gettimeofday () +. 10. in
  while (not (caught_up ())) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if not (caught_up ()) then incr structural;
  Memcached.Client.close admin;

  (* The kill -9: the stream is live, the leader process simply stops
     existing. Nothing graceful runs — no flush, no close, no goodbye. *)
  kill_quiet leader_pid Sys.sigkill;
  reap leader_pid;
  close_in_noerr leader_out;
  let faults = 1 in

  let fc = Memcached.Client.connect ~retries:4 (Memcached.Server.Tcp fport) in
  (* Still a replica: mutations must be refused until promotion. *)
  (match Memcached.Client.try_set fc ~key:"ro-probe" ~data:"x" () with
  | `Overloaded _ -> ()
  | `Stored | `Not_stored -> incr structural);
  (match Memcached.Client.promote fc with
  | Ok () -> incr recoveries
  | Error _ -> incr structural);

  (* The oracle: exact model equality against the promoted store. *)
  let missing = ref 0 and wrong = ref 0 and checked = ref 0 in
  let expected = ref 0 in
  Array.iter
    (fun model ->
      expected := !expected + Hashtbl.length model;
      Hashtbl.iter
        (fun key data ->
          incr checked;
          match Memcached.Client.get fc key with
          | Some v when v.Memcached.Protocol.vdata = data -> ()
          | Some _ -> incr wrong
          | None -> incr missing)
        model)
    models;
  (* No resurrections: the promoted store holds exactly the model keys. *)
  (match int_of_string_opt (stat (Memcached.Client.stats fc) "curr_items") with
  | Some items ->
      let extra = items - !expected + !missing in
      if extra > 0 then wrong := !wrong + extra
  | None -> incr structural);
  let follower_cluster = Memcached.Client.stats ~arg:"cluster" fc in
  if stat follower_cluster "cluster_role" <> "promoted" then incr structural;
  Memcached.Client.close fc;

  (* Client-side failover: a ring client spanning {dead leader, promoted
     follower} must eject the corpse and land the write regardless of
     which member owns the key. *)
  let ring =
    Memcached.Client.of_servers ~retries:3 ~eject_after:1
      [ ("127.0.0.1", leader_port, 1); ("127.0.0.1", fport, 1) ]
  in
  let failover_ok =
    (try Memcached.Client.set ring ~key:"failover:probe" ~data:"promoted" ()
     with _ -> false)
    &&
    match (try Memcached.Client.get ring "failover:probe" with _ -> None) with
    | Some v -> v.Memcached.Protocol.vdata = "promoted"
    | None -> false
  in
  if failover_ok then incr recoveries else incr structural;
  Memcached.Client.close ring;

  kill_quiet fpid Sys.sigkill;
  reap fpid;
  close_in_noerr follower_out;

  (* Registry scrapes live in the dead children; keep instead the wire
     `stats cluster` lines (numeric ones — the report renders them bare
     as JSON) from both sides of the failover. *)
  let numeric prefix kvs =
    List.filter_map
      (fun (k, v) ->
        match float_of_string_opt v with
        | Some _ -> Some (prefix ^ k, v)
        | None -> None)
      kvs
  in
  let metrics =
    numeric "leader_" !leader_cluster @ numeric "follower_" follower_cluster
  in
  let reader_checks =
    !checked
    + Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers writers_n)
  in
  {
    reader_checks;
    missing_resident = !missing;
    wrong_value = !wrong + !structural;
    writer_ops;
    resize_flips = 0;
    faults_injected = faults;
    stalls_detected = 0;
    recoveries = !recoveries;
    elapsed = outcome.elapsed;
    metrics;
  }

let run config =
  validate_config config;
  match config.scenario with
  | "steady" -> run_steady config
  | "crash_resizer" -> run_crash_resizer config
  | "lazy_split_crash" -> run_lazy_split_crash config
  | "mixed_rw" -> run_mixed_rw config
  | "stalled_reader" -> run_stalled_reader config
  | "torn_io" -> run_torn_io config
  | "crash_recovery" -> run_crash_recovery config
  | "overload_storm" -> run_overload_storm config
  | "slow_client" -> run_slow_client config
  | "disk_full" -> run_disk_full config
  | "replication_divergence" -> run_replication_divergence config
  | "tier_crash" -> run_tier_crash config
  | _ -> assert false
