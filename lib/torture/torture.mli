(** rcutorture-style stress harness for the hash-table implementations.

    The oracle is the paper's consistency guarantee: a set of {e resident}
    keys is inserted before the run and never touched again, so every lookup
    of a resident key must succeed with the right value at every instant —
    while writer domains churn a disjoint key range, resizer domains flip
    the table between its size bounds, and (optionally) a fault injector
    adds random stalls to stretch grace periods and shift interleavings.

    A churn-range oracle also runs: values are derived from keys, so a
    lookup that returns a {e wrong} value (as opposed to a miss, which is
    legitimate for churned keys) is a violation.

    Beyond the classic "steady" run, three fault scenarios (driven by the
    {!Rp_fault} failpoint plane) attack specific robustness claims:

    - {b crash_resizer}: resizers are killed mid-unzip (the
      ["rp_ht.unzip.splice"] site raises); the table is left imprecise but
      complete, readers must stay violation-free throughout, and subsequent
      writer ops must complete the interrupted unzips
      ([report.recoveries]).
    - {b stalled_reader}: a dedicated domain naps inside read-side critical
      sections for several times the grace-period stall budget; the {!Rcu}
      stall watchdog must detect and attribute it
      ([report.stalls_detected]) while grace periods still complete.
    - {b torn_io}: a memcached server/client pair runs over a transport
      with injected short writes, split reads, and connection resets;
      retrying clients must still observe every resident key correctly.
    - {b crash_recovery}: writers mutate a persisted store (op log,
      [fsync=always]) under repeated concurrent snapshots; the run ends
      with a staged [kill -9] — a failpoint crashes the snapshotter
      mid-walk, the manager dies without syncing, the newest log segment
      gets a torn tail — and a warm restart into a fresh store must
      reproduce the writers' tracked models exactly (acked ops survive,
      nothing resurrects).
    - {b replication_divergence}: two real [memcached_server] child
      processes form a leader/follower pair; the follower attaches
      mid-load, catches up over the replication stream, the leader is
      killed with a true [SIGKILL] once the acked watermark meets the
      sent watermark, the follower is promoted over the wire, and the
      promoted store must equal the writers' tracked models exactly —
      then a ring-aware client spanning both members must eject the dead
      leader and land writes on the survivor.

    The crash/stall/torn/recovery/replication scenarios run on the rp
    table only. *)

type config = {
  table : string;  (** implementation under test; see {!table_names} *)
  scenario : string;  (** see {!scenario_names}; "steady" is the classic run *)
  duration : float;  (** seconds *)
  readers : int;
  writers : int;
  resizers : int;
  resident_keys : int;
  churn_keys : int;
  small_size : int;  (** resizers flip between these bucket counts *)
  large_size : int;
  fault_injection : bool;
      (** adds random stalls (writers/resizers sleep at 1 in 64 ops,
          <=1 ms) and arms [Yield]/[Delay] perturbation failpoints inside
          Rcu and Rp_ht for the duration of the run *)
  seed : int;
}

val default_config : config
(** rp table, steady scenario, 0.5 s, 2 readers / 1 writer / 1 resizer,
    1024 resident keys. *)

val table_names : string list
(** Valid values for [config.table]: "rp", "rp-qsbr", "rp-fixed" (no
    resizers), "ddds", "rwlock", "lock", "xu". *)

val scenario_names : string list
(** Valid values for [config.scenario]: "steady", "crash_resizer",
    "tier_crash" (SIGKILL mid-demotion/mid-compaction with the cold tier
    attached; exact durable-readability oracle after the warm restart),
    "stalled_reader", "torn_io", "crash_recovery", "overload_storm",
    "slow_client", "disk_full", "replication_divergence". *)

type report = {
  reader_checks : int;  (** lookups performed by the oracle readers *)
  missing_resident : int;  (** resident key not found — a violation *)
  wrong_value : int;  (** any key bound to a wrong value — a violation *)
  writer_ops : int;
  resize_flips : int;
  faults_injected : int;
      (** failpoint fires plus random stalls/parks injected this run *)
  stalls_detected : int;  (** grace-period stall watchdog reports *)
  recoveries : int;
      (** interrupted unzips completed by later writers; for
          crash_recovery, durable recovery points exercised (snapshots
          published plus the warm restart) *)
  elapsed : float;
  metrics : (string * string) list;
      (** end-of-run {!Rp_obs.Registry} snapshot of the structures under
          test ([rp_ht_*]/[rcu_*] for the fault scenarios, the store
          registry for torn_io; empty for steady, whose tables hide behind
          the backend-agnostic TABLE signature). [stalls_detected] and
          [recoveries] above are read from this same registry, so report
          assertions and metric exports share one API. *)
}

val violations : report -> int
val pp_report : Format.formatter -> report -> unit

val run : config -> report
(** Raises [Invalid_argument] on an unknown table or scenario name, a
    non-positive worker/duration configuration, or a non-rp table paired
    with a fault scenario. Failpoint sites armed by the run are disarmed
    (and only those) before it returns. *)
