open Rp_list

type ('k, 'v) state = Done | At of ('k, 'v) node

let start = function Null -> Done | Node n -> At n
let is_done = function Done -> true | At _ -> false

(* Last node of the run starting at [n], plus the first node of the
   following run (which has the other destination), if any. *)
let rec run_end ~dest n =
  match Rcu.dereference n.next with
  | Null -> (n, None)
  | Node m -> if dest m = dest n then run_end ~dest m else (n, Some m)

let step ~dest = function
  | Done -> Done
  | At p ->
      let last_p, crossing = run_end ~dest p in
      (match crossing with
      | None -> Done
      | Some q ->
          let _last_q, after = run_end ~dest q in
          (* Splice q's run out of p's chain. Readers of p's bucket skip
             it; readers of q's bucket reach q via their own bucket head
             and are unaffected. *)
          let after_link =
            match after with None -> Null | Some r -> Node r
          in
          Rcu.publish last_p.next after_link;
          At q)

let rec chain_is_precise ~dest = function
  | Null -> true
  | Node n -> (
      match Rcu.dereference n.next with
      | Null -> true
      | Node m -> dest m = dest n && chain_is_precise ~dest (Node m))
