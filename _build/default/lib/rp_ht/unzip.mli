(** The expansion "unzip" — the paper's key algorithmic step, isolated for
    white-box testing.

    After an expansion publishes a double-size bucket array whose buckets
    point into the middle of the old ("zipped") chains, each old chain
    interleaves runs of nodes destined for two different new buckets. The
    unzip separates them {e in place}, one splice per chain per pass, with a
    wait-for-readers between passes (performed by the caller, once per pass,
    covering all chains).

    A single {!step} on a chain positioned at node [p]:

    + advance to the end of [p]'s run (consecutive nodes with [p]'s
      destination bucket);
    + if the chain ends there, the chain is fully unzipped — done;
    + otherwise the next node [q] starts a run for the other bucket: find
      that run's end, and splice the run out of [p]'s chain by pointing the
      end of [p]'s run at the first node after [q]'s run;
    + the next step (after a grace period) continues from [q].

    The grace period between steps is what keeps readers safe: a reader that
    entered [q]'s run from [p]'s side before the splice still relies on
    [q]'s run's outgoing pointer; only after all such readers finish may that
    pointer be redirected by the following step. *)

type ('k, 'v) state =
  | Done  (** chain fully unzipped *)
  | At of ('k, 'v) Rp_list.node
      (** next splice examines the run starting at this node *)

val start : ('k, 'v) Rp_list.link -> ('k, 'v) state
(** Initial state for an old chain: its head node, or [Done] if empty. *)

val step :
  dest:(('k, 'v) Rp_list.node -> int) -> ('k, 'v) state -> ('k, 'v) state
(** Perform one splice (or discover completion). [dest] maps a node to its
    new bucket index. The caller must hold the table's writer lock and must
    run a grace period between consecutive steps on the same chain. *)

val is_done : ('k, 'v) state -> bool

val chain_is_precise :
  dest:(('k, 'v) Rp_list.node -> int) -> ('k, 'v) Rp_list.link -> bool
(** [true] iff every node reachable from the link has the same destination —
    i.e. the chain needs no (further) unzipping. For tests. *)
