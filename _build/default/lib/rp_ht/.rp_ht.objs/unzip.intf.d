lib/rp_ht/unzip.mli: Rp_list
