lib/rp_ht/rp_ht.mli: Flavour Rcu
