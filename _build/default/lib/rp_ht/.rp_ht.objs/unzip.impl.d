lib/rp_ht/unzip.ml: Rcu Rp_list
