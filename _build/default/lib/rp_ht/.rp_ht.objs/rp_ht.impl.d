lib/rp_ht/rp_ht.ml: Array Atomic Flavour Mutex Option Printf Rcu Rp_fault Rp_hashes Rp_list Unzip
