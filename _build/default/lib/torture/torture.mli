(** rcutorture-style stress harness for the hash-table implementations.

    The oracle is the paper's consistency guarantee: a set of {e resident}
    keys is inserted before the run and never touched again, so every lookup
    of a resident key must succeed with the right value at every instant —
    while writer domains churn a disjoint key range, resizer domains flip
    the table between its size bounds, and (optionally) a fault injector
    adds random stalls to stretch grace periods and shift interleavings.

    A churn-range oracle also runs: values are derived from keys, so a
    lookup that returns a {e wrong} value (as opposed to a miss, which is
    legitimate for churned keys) is a violation. *)

type config = {
  table : string;  (** implementation under test; see {!table_names} *)
  duration : float;  (** seconds *)
  readers : int;
  writers : int;
  resizers : int;
  resident_keys : int;
  churn_keys : int;
  small_size : int;  (** resizers flip between these bucket counts *)
  large_size : int;
  fault_injection : bool;
      (** writers/resizers sleep at random points (1 in 64 ops, <=1 ms) *)
  seed : int;
}

val default_config : config
(** rp table, 0.5 s, 2 readers / 1 writer / 1 resizer, 1024 resident keys. *)

val table_names : string list
(** Valid values for [config.table]: "rp", "rp-qsbr", "rp-fixed" (no
    resizers), "ddds", "rwlock", "lock", "xu". *)

type report = {
  reader_checks : int;  (** lookups performed by the oracle readers *)
  missing_resident : int;  (** resident key not found — a violation *)
  wrong_value : int;  (** any key bound to a wrong value — a violation *)
  writer_ops : int;
  resize_flips : int;
  elapsed : float;
}

val violations : report -> int
val pp_report : Format.formatter -> report -> unit

val run : config -> report
(** Raises [Invalid_argument] on an unknown table name or a non-positive
    worker/duration configuration. *)
