lib/torture/torture.mli: Format
