lib/torture/torture.ml: Array Atomic Filename Format Fun Int List Memcached Printf Rcu Rp_baseline Rp_fault Rp_harness Rp_hashes Rp_ht Rp_workload Unix
