lib/torture/torture.ml: Array Atomic Format Int Rp_baseline Rp_harness Rp_hashes Rp_workload Unix
