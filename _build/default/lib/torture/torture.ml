type config = {
  table : string;
  duration : float;
  readers : int;
  writers : int;
  resizers : int;
  resident_keys : int;
  churn_keys : int;
  small_size : int;
  large_size : int;
  fault_injection : bool;
  seed : int;
}

let default_config =
  {
    table = "rp";
    duration = 0.5;
    readers = 2;
    writers = 1;
    resizers = 1;
    resident_keys = 1024;
    churn_keys = 512;
    small_size = 128;
    large_size = 4096;
    fault_injection = false;
    seed = 1;
  }

let table_names = [ "rp"; "rp-qsbr"; "rp-fixed"; "ddds"; "rwlock"; "lock"; "xu" ]

let table_of_name = function
  | "rp" -> (module Rp_baseline.Rp_table.Resizable : Rp_baseline.Table_intf.TABLE)
  | "rp-qsbr" -> (module Rp_baseline.Rp_table.Qsbr)
  | "rp-fixed" -> (module Rp_baseline.Rp_table.Fixed)
  | "ddds" -> (module Rp_baseline.Ddds_ht)
  | "rwlock" -> (module Rp_baseline.Rwlock_ht)
  | "lock" -> (module Rp_baseline.Lock_ht)
  | "xu" -> (module Rp_baseline.Xu_ht)
  | name -> invalid_arg ("Torture.run: unknown table " ^ name)

type report = {
  reader_checks : int;
  missing_resident : int;
  wrong_value : int;
  writer_ops : int;
  resize_flips : int;
  elapsed : float;
}

let violations r = r.missing_resident + r.wrong_value

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>reader checks:     %d@,missing residents: %d@,wrong values:      %d@,\
     writer ops:        %d@,resize flips:      %d@,elapsed:           %.2f s@,\
     verdict:           %s@]"
    r.reader_checks r.missing_resident r.wrong_value r.writer_ops
    r.resize_flips r.elapsed
    (if violations r = 0 then "PASS" else "FAIL")

(* Resident values are key*3+1; churn values are key*5+2: a wrong pairing is
   detectable from the value alone. *)
let resident_value k = (k * 3) + 1
let churn_value k = (k * 5) + 2

let validate_config config =
  if config.duration <= 0.0 then invalid_arg "Torture.run: duration <= 0";
  if config.readers < 1 then invalid_arg "Torture.run: readers < 1";
  if config.writers < 0 || config.resizers < 0 then
    invalid_arg "Torture.run: negative worker count";
  if config.resident_keys < 1 then invalid_arg "Torture.run: no resident keys";
  if config.table = "rp-fixed" && config.resizers > 0 then
    invalid_arg "Torture.run: rp-fixed cannot host resizers";
  ignore (table_of_name config.table)

let run config =
  validate_config config;
  let (module T : Rp_baseline.Table_intf.TABLE) = table_of_name config.table in
  let t =
    T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:config.small_size ()
  in
  for k = 0 to config.resident_keys - 1 do
    T.insert t k (resident_value k)
  done;
  let missing = Atomic.make 0 in
  let wrong = Atomic.make 0 in
  let flips = Atomic.make 0 in
  let churn_base = config.resident_keys in

  let maybe_fault prng =
    if config.fault_injection && Rp_workload.Prng.below prng 64 = 0 then
      Unix.sleepf (float_of_int (Rp_workload.Prng.below prng 1000) *. 1e-6)
  in

  (* Oracle reader: resident keys must always be present and correct; churn
     keys may miss but must never carry a foreign value. *)
  let reader index ~stop =
    let prng = Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:config.seed) index in
    let checks = ref 0 in
    while not (Atomic.get stop) do
      let resident = Rp_workload.Prng.below prng 4 > 0 in
      if resident then begin
        let k = Rp_workload.Prng.below prng config.resident_keys in
        match T.find t k with
        | Some v when v = resident_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> Atomic.incr missing
      end
      else if config.churn_keys > 0 then begin
        let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
        match T.find t k with
        | Some v when v = churn_value k -> ()
        | Some _ -> Atomic.incr wrong
        | None -> () (* legitimately absent *)
      end;
      incr checks
    done;
    T.reader_exit t;
    !checks
  in

  let writer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 7)) index
    in
    let ops = ref 0 in
    while (not (Atomic.get stop)) && config.churn_keys > 0 do
      let k = churn_base + Rp_workload.Prng.below prng config.churn_keys in
      if Rp_workload.Prng.bool prng then T.insert t k (churn_value k)
      else ignore (T.remove t k);
      maybe_fault prng;
      incr ops
    done;
    !ops
  in

  let resizer index ~stop =
    let prng =
      Rp_workload.Prng.split (Rp_workload.Prng.create ~seed:(config.seed + 13)) index
    in
    while not (Atomic.get stop) do
      T.resize t config.large_size;
      T.resize t config.small_size;
      ignore (Atomic.fetch_and_add flips 2);
      maybe_fault prng
    done;
    0
  in

  let workers =
    Array.concat
      [
        Array.init config.readers (fun i ~stop -> reader i ~stop);
        Array.init config.writers (fun i ~stop -> writer i ~stop);
        Array.init config.resizers (fun i ~stop -> resizer i ~stop);
      ]
  in
  let outcome = Rp_harness.Runner.run ~duration:config.duration ~workers () in
  let reader_checks =
    Array.fold_left ( + ) 0 (Array.sub outcome.per_worker_ops 0 config.readers)
  in
  let writer_ops =
    Array.fold_left ( + ) 0
      (Array.sub outcome.per_worker_ops config.readers config.writers)
  in
  {
    reader_checks;
    missing_resident = Atomic.get missing;
    wrong_value = Atomic.get wrong;
    writer_ops;
    resize_flips = Atomic.get flips;
    elapsed = outcome.elapsed;
  }
