(** Relativistic radix tree — another structure from the paper's
    "relativistic data structures" list, built on the same primitives.

    A 64-way (6-bit stride) radix tree over non-negative integer keys, in
    the style of the Linux kernel's radix tree (page cache, IDR). Readers
    walk child pointers with atomic loads inside a read-side critical
    section and never wait; writers serialize on a mutex and publish:

    - {b insert}: interior nodes are created bottom-up and become reachable
      by a single publish of the top-most new pointer;
    - {b grow}: when a key exceeds the current height's capacity, a new
      root is published whose slot 0 is the old root — concurrent readers
      on the old root stay consistent because the added high-order digits
      of any in-capacity key are zero;
    - {b remove}: the value slot is cleared by one store; emptied interior
      nodes are pruned bottom-up (readers mid-descent still reach them,
      find empty slots and correctly miss; the GC reclaims them once no
      reader can hold a reference). *)

type 'v t

val create : ?rcu:Rcu.t -> ?flavour:Flavour.t -> unit -> 'v t
(** Same flavour semantics as [Rp_ht.create]. *)

val find : 'v t -> int -> 'v option
(** Wait-free lookup. Raises [Invalid_argument] on a negative key. *)

val mem : 'v t -> int -> bool

val insert : 'v t -> int -> 'v -> unit
(** Insert or overwrite. Raises [Invalid_argument] on a negative key. *)

val remove : 'v t -> int -> bool
(** Clear the key's binding; prunes emptied interior nodes. *)

val length : 'v t -> int
val height : 'v t -> int
(** Current tree height (levels of interior nodes). *)

val capacity : 'v t -> int
(** Largest key representable without growing ([64^height - 1]). *)

val iter : 'v t -> f:(int -> 'v -> unit) -> unit
(** In key order, inside one read-side critical section. *)

val fold : 'v t -> init:'a -> f:('a -> int -> 'v -> 'a) -> 'a
val to_list : 'v t -> (int * 'v) list

val validate : 'v t -> (unit, string) result
(** Quiescent invariant check: stored count matches a full walk and no
    reachable interior node is empty (pruning invariant). *)
