let stride = 6
let fanout = 1 lsl stride
let mask = fanout - 1

(* Beyond this height the key space covers every OCaml int. *)
let max_height = (Sys.int_size - 1 + stride - 1) / stride

type 'v slot = Empty | Value of 'v | Child of 'v node
and 'v node = { slots : 'v slot Atomic.t array }

(* Root pointer and height travel together so readers see a consistent
   pair. *)
type 'v root_info = { height : int; root : 'v node }

type 'v t = {
  rcu_memb : Rcu.t option;
  flavour : Flavour.t;
  info : 'v root_info Atomic.t;
  writer : Mutex.t;
  count : int Atomic.t;
}

let make_node () = { slots = Array.init fanout (fun _ -> Atomic.make Empty) }

let create ?rcu ?flavour () =
  let rcu_memb, flavour =
    match flavour with
    | Some f ->
        if rcu <> None then
          invalid_arg "Rp_radix.create: pass either ~rcu or ~flavour, not both";
        (None, f)
    | None ->
        let r = match rcu with Some r -> r | None -> Rcu.create () in
        (Some r, Flavour.memb r)
  in
  {
    rcu_memb;
    flavour;
    info = Atomic.make { height = 1; root = make_node () };
    writer = Mutex.create ();
    count = Atomic.make 0;
  }

let bits_of_height height = stride * height

let capacity_of_height height =
  if bits_of_height height >= Sys.int_size - 1 then max_int
  else (1 lsl bits_of_height height) - 1

let check_key k = if k < 0 then invalid_arg "Rp_radix: negative key"

let index_at ~level k = (k lsr (stride * (level - 1))) land mask

(* --- read side --- *)

let find_in info k =
  if k > capacity_of_height info.height then None
  else begin
    let rec descend node level =
      let slot = Rcu.dereference node.slots.(index_at ~level k) in
      if level = 1 then match slot with Value v -> Some v | Empty | Child _ -> None
      else match slot with Child child -> descend child (level - 1) | Empty | Value _ -> None
    in
    descend info.root info.height
  end

let find t k =
  check_key k;
  t.flavour.Flavour.read_enter ();
  match find_in (Rcu.dereference t.info) k with
  | result ->
      t.flavour.Flavour.read_exit ();
      result
  | exception e ->
      t.flavour.Flavour.read_exit ();
      raise e

let mem t k = Option.is_some (find t k)

let iter t ~f =
  Flavour.with_read t.flavour (fun () ->
      let info = Rcu.dereference t.info in
      let rec walk node level prefix =
        for idx = 0 to fanout - 1 do
          match Rcu.dereference node.slots.(idx) with
          | Empty -> ()
          | Value v -> f (prefix lor idx) v
          | Child child ->
              walk child (level - 1) (prefix lor (idx lsl (stride * (level - 1))))
        done
      in
      walk info.root info.height 0)

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun k v -> acc := f !acc k v);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

(* --- updates (writer mutex held) --- *)

(* Height needed to address key [k]. *)
let needed_height k =
  let rec go h = if k <= capacity_of_height h || h = max_height then h else go (h + 1) in
  go 1

(* Build a fresh path holding only [k -> v], rooted at [level]. *)
let rec build_path k v level =
  if level = 1 then begin
    let node = make_node () in
    Atomic.set node.slots.(index_at ~level:1 k) (Value v);
    node
  end
  else begin
    let node = make_node () in
    Atomic.set node.slots.(index_at ~level k) (Child (build_path k v (level - 1)));
    node
  end

let grow_to t target =
  let info = Atomic.get t.info in
  if target > info.height then begin
    if Atomic.get t.count = 0 then
      (* Nothing stored: replace the root outright (no empty-interior
         wrapper chain). *)
      Rcu.publish t.info { height = target; root = make_node () }
    else begin
      (* Wrap: the old root becomes slot 0 of each new level, which is
         correct because in-capacity keys have zero high-order digits. *)
      let rec wrap root height =
        if height = target then { height; root }
        else begin
          let above = make_node () in
          Atomic.set above.slots.(0) (Child root);
          wrap above (height + 1)
        end
      in
      Rcu.publish t.info (wrap info.root info.height)
    end
  end

let insert t k v =
  check_key k;
  Mutex.lock t.writer;
  grow_to t (needed_height k);
  let info = Atomic.get t.info in
  let rec descend node level =
    let cell = node.slots.(index_at ~level k) in
    if level = 1 then begin
      match Atomic.get cell with
      | Value _ -> Atomic.set cell (Value v)
      | Empty ->
          Rcu.publish cell (Value v);
          Atomic.incr t.count
      | Child _ -> assert false
    end
    else begin
      match Atomic.get cell with
      | Child child -> descend child (level - 1)
      | Empty ->
          (* Initialise the whole sub-path, then publish it with one
             store. *)
          Rcu.publish cell (Child (build_path k v (level - 1)));
          Atomic.incr t.count
      | Value _ -> assert false
    end
  in
  descend info.root info.height;
  Mutex.unlock t.writer

let node_is_empty node =
  let rec go i =
    i >= fanout
    || (match Atomic.get node.slots.(i) with
       | Empty -> go (i + 1)
       | Value _ | Child _ -> false)
  in
  go 0

let remove t k =
  check_key k;
  Mutex.lock t.writer;
  let info = Atomic.get t.info in
  let removed =
    if k > capacity_of_height info.height then false
    else begin
      (* [path] holds (slot-in-parent, node) pairs, deepest first, so an
         emptied node can be unlinked from its parent bottom-up. The root
         is never on the path and never pruned. *)
      let rec descend node level path =
        let cell = node.slots.(index_at ~level k) in
        if level = 1 then begin
          match Atomic.get cell with
          | Value _ ->
              Rcu.publish cell Empty;
              Atomic.decr t.count;
              (* Readers mid-descent may still reach an unlinked node; they
                 find Empty and correctly miss. The GC reclaims once no
                 reader can hold a reference. *)
              let rec prune = function
                | [] -> ()
                | (parent_cell, child_node) :: rest ->
                    if node_is_empty child_node then begin
                      Rcu.publish parent_cell Empty;
                      prune rest
                    end
              in
              prune path;
              true
          | Empty | Child _ -> false
        end
        else begin
          match Atomic.get cell with
          | Child child -> descend child (level - 1) ((cell, child) :: path)
          | Empty | Value _ -> false
        end
      in
      descend info.root info.height []
    end
  in
  Mutex.unlock t.writer;
  removed

(* --- introspection --- *)

let length t = Atomic.get t.count
let height t = (Atomic.get t.info).height
let capacity t = capacity_of_height (Atomic.get t.info).height

let validate t =
  let info = Atomic.get t.info in
  let count = ref 0 in
  let error = ref None in
  let set_error msg = if !error = None then error := Some msg in
  let rec walk node level ~is_root =
    let nonempty = ref 0 in
    Array.iteri
      (fun idx cell ->
        match Atomic.get cell with
        | Empty -> ()
        | Value _ ->
            incr nonempty;
            incr count;
            if level <> 1 then
              set_error (Printf.sprintf "value at interior level %d" level)
        | Child child ->
            incr nonempty;
            if level = 1 then set_error "child at leaf level"
            else walk child (level - 1) ~is_root:false;
            ignore idx)
      node.slots;
    if (not is_root) && !nonempty = 0 then set_error "empty interior node"
  in
  walk info.root info.height ~is_root:true;
  if !count <> Atomic.get t.count && !error = None then
    set_error
      (Printf.sprintf "count mismatch: walked %d, recorded %d" !count
         (Atomic.get t.count));
  match !error with None -> Ok () | Some msg -> Error msg
