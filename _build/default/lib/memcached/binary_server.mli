(** Binary-protocol dispatch: maps {!Binary_protocol} requests onto the
    {!Store}. Shared by the socket server (which sniffs the first byte of a
    connection to pick text vs binary) and the tests. *)

val handle :
  Store.t -> Binary_protocol.request -> Binary_protocol.response list
(** Execute one request. Quiet opcodes (GetQ/GetKQ misses) and [Quit]
    produce no responses; [Stat] produces one response per statistic plus
    the empty terminator, matching the wire protocol. *)

val quit_requested : Binary_protocol.request -> bool
