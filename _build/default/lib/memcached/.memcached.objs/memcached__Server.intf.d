lib/memcached/server.mli: Protocol Store
