lib/memcached/slab.mli:
