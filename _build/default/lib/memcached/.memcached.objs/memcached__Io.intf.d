lib/memcached/io.mli: Bytes Unix
