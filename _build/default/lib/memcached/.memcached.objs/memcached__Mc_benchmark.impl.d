lib/memcached/mc_benchmark.ml: Array Atomic Printf Protocol Rp_harness Rp_workload Server Store String
