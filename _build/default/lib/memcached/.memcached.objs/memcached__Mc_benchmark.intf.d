lib/memcached/mc_benchmark.mli: Store
