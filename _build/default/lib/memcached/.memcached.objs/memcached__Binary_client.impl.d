lib/memcached/binary_client.ml: Binary_protocol Bytes List Response_parser Server String Unix
