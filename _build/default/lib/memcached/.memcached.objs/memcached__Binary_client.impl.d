lib/memcached/binary_client.ml: Binary_protocol Bytes Io List Response_parser Server String Unix
