lib/memcached/store.mli: Protocol Slab
