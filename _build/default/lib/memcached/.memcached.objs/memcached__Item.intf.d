lib/memcached/item.mli: Atomic
