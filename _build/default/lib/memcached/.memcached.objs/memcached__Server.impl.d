lib/memcached/server.ml: Atomic Binary_protocol Binary_server Bytes List Protocol Store String Thread Unix Version
