lib/memcached/server.ml: Atomic Binary_protocol Binary_server Bytes Hashtbl Io List Mutex Protocol Rp_fault Store String Thread Unix Version
