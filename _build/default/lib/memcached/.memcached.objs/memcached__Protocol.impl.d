lib/memcached/protocol.ml: Buffer List Printf String
