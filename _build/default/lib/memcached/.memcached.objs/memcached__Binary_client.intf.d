lib/memcached/binary_client.mli: Binary_protocol Server
