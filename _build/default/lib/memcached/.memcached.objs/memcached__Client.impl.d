lib/memcached/client.ml: Bytes Protocol Server Unix
