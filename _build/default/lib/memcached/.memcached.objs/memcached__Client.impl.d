lib/memcached/client.ml: Bytes Io Protocol Rp_sync Server Unix
