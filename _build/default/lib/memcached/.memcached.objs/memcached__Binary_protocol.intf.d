lib/memcached/binary_protocol.mli:
