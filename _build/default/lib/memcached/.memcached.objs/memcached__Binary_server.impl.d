lib/memcached/binary_server.ml: Binary_protocol List Option Protocol Store String Version
