lib/memcached/io.ml: Bytes Lazy Rp_fault Sys Unix
