lib/memcached/store.ml: Atomic Item List Lru Mutex Option Printf Protocol Queue Rp_baseline Rp_hashes Rp_ht Slab String Unix
