lib/memcached/item.ml: Atomic String
