lib/memcached/slab.ml: Array Atomic List
