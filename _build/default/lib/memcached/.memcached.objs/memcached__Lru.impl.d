lib/memcached/lru.ml: List Option
