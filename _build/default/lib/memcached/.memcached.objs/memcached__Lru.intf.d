lib/memcached/lru.mli:
