lib/memcached/version.ml:
