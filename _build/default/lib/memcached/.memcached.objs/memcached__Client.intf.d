lib/memcached/client.mli: Protocol Server
