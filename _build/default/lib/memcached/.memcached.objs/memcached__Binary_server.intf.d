lib/memcached/binary_server.mli: Binary_protocol Store
