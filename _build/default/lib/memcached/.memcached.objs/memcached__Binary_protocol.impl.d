lib/memcached/binary_protocol.ml: Bytes Char Printf String
