lib/memcached/protocol.mli:
