type cls = {
  chunk_size : int;
  used_chunks : int Atomic.t;
  used_bytes : int Atomic.t;
}

type t = {
  classes : cls array;
  allocated : int Atomic.t;
  requested : int Atomic.t;
}

let create ?(base_chunk = 96) ?(growth_factor = 1.25) ?(max_chunk = 1 lsl 20) () =
  if base_chunk <= 0 then invalid_arg "Slab.create: base_chunk <= 0";
  if growth_factor <= 1.0 then invalid_arg "Slab.create: growth_factor <= 1";
  if max_chunk < base_chunk then invalid_arg "Slab.create: max_chunk < base_chunk";
  let rec ladder acc size =
    if size >= max_chunk then List.rev (max_chunk :: acc)
    else begin
      (* memcached aligns chunk sizes to 8 bytes. *)
      let next =
        let raw = int_of_float (ceil (float_of_int size *. growth_factor)) in
        (raw + 7) land lnot 7
      in
      let next = if next <= size then size + 8 else next in
      ladder (size :: acc) next
    end
  in
  let sizes = ladder [] base_chunk in
  {
    classes =
      Array.of_list
        (List.map
           (fun chunk_size ->
             {
               chunk_size;
               used_chunks = Atomic.make 0;
               used_bytes = Atomic.make 0;
             })
           sizes);
    allocated = Atomic.make 0;
    requested = Atomic.make 0;
  }

let class_count t = Array.length t.classes
let chunk_sizes t = Array.map (fun c -> c.chunk_size) t.classes
let chunk_size_of t i = t.classes.(i).chunk_size

(* Binary search for the smallest class with chunk_size >= size. *)
let class_of_size t size =
  let n = Array.length t.classes in
  if size > t.classes.(n - 1).chunk_size then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.classes.(mid).chunk_size < size then lo := mid + 1 else hi := mid
    done;
    Some !lo
  end

let charge t size =
  match class_of_size t size with
  | None -> None
  | Some i ->
      let c = t.classes.(i) in
      ignore (Atomic.fetch_and_add c.used_chunks 1);
      ignore (Atomic.fetch_and_add c.used_bytes size);
      ignore (Atomic.fetch_and_add t.allocated c.chunk_size);
      ignore (Atomic.fetch_and_add t.requested size);
      Some c.chunk_size

let refund t size =
  match class_of_size t size with
  | None -> ()
  | Some i ->
      let c = t.classes.(i) in
      ignore (Atomic.fetch_and_add c.used_chunks (-1));
      ignore (Atomic.fetch_and_add c.used_bytes (-size));
      ignore (Atomic.fetch_and_add t.allocated (-c.chunk_size));
      ignore (Atomic.fetch_and_add t.requested (-size))

let allocated_bytes t = Atomic.get t.allocated
let requested_bytes t = Atomic.get t.requested

let fragmentation t =
  let requested = requested_bytes t in
  if requested = 0 then 0.0
  else (float_of_int (allocated_bytes t) /. float_of_int requested) -. 1.0

type class_stats = { chunk_size : int; used_chunks : int; used_bytes : int }

let stats t =
  Array.to_list t.classes
  |> List.filter_map (fun (c : cls) ->
         let used = Atomic.get c.used_chunks in
         if used = 0 then None
         else
           Some
             {
               chunk_size = c.chunk_size;
               used_chunks = used;
               used_bytes = Atomic.get c.used_bytes;
             })
