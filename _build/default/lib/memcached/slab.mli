(** Slab-class memory accounting, after stock memcached's slab allocator.

    memcached never allocates items exactly: it rounds each item up to the
    chunk size of a {e slab class} (a geometric ladder of sizes), carving
    1 MiB pages into equal chunks. The difference between an item's size
    and its chunk is internal fragmentation — visible in `stats slabs` and
    decisive for when eviction starts.

    OCaml's GC owns the real memory, so this module reproduces the
    {e accounting}: the store charges each item to its class and evicts
    against chunk bytes, not raw bytes, matching stock behaviour. *)

type t

val create :
  ?base_chunk:int -> ?growth_factor:float -> ?max_chunk:int -> unit -> t
(** Defaults match memcached: 96-byte base chunk, 1.25 growth factor,
    1 MiB maximum item size. Raises [Invalid_argument] for a factor
    <= 1.0 or non-positive sizes. *)

val class_count : t -> int

val chunk_sizes : t -> int array
(** The size ladder, ascending. *)

val class_of_size : t -> int -> int option
(** Smallest class whose chunk holds [size] bytes; [None] if the item is
    larger than the maximum chunk (memcached refuses such items). *)

val chunk_size_of : t -> int -> int
(** Chunk size of a class index. *)

val charge : t -> int -> int option
(** Account one item of [size] bytes: returns the chunk size charged, or
    [None] for oversize items. Thread-safe. *)

val refund : t -> int -> unit
(** Release the accounting for one item of [size] bytes (the same size that
    was charged). *)

val allocated_bytes : t -> int
(** Total chunk bytes currently charged (what eviction budgets compare). *)

val requested_bytes : t -> int
(** Total item bytes currently stored (excludes fragmentation). *)

val fragmentation : t -> float
(** [allocated / requested - 1]; 0 when empty. *)

type class_stats = {
  chunk_size : int;
  used_chunks : int;
  used_bytes : int;  (** requested bytes in this class *)
}

val stats : t -> class_stats list
(** Per-class usage, non-empty classes only, ascending chunk size. *)
