(** mc-benchmark-style load generator.

    Drives a {!Store.t} through the {e full protocol codec} — each operation
    encodes a request, parses it server-side, dispatches, encodes the
    response, and parses it client-side — so the measured path matches what
    a socket client exercises, minus the kernel. Workers run on separate
    domains, exactly like the paper's N mc-benchmark processes.

    A pure-GET run measures the paper's GET curves (global lock vs. RP fast
    path); a pure-SET run measures the SET curves. *)

type mode = Get_only | Set_only | Mixed of float  (** fraction of SETs *)

type config = {
  workers : int;
  duration : float;  (** seconds *)
  keyspace : int;
  value_size : int;  (** bytes per value *)
  mode : mode;
  seed : int;
}

val default_config : config

type result = {
  requests : int;
  elapsed : float;
  requests_per_second : float;
  hits : int;
  misses : int;
}

val prefill : Store.t -> keyspace:int -> value_size:int -> unit
(** Populate every key so GET runs measure hits, as mc-benchmark does. *)

val run : store:Store.t -> config -> result

val run_backend :
  backend:Store.backend -> config -> result
(** Convenience: build a store, prefill it, run. *)
