(** Exact LRU list for the global-lock backend.

    Intrusive doubly-linked list of keys; every operation must run under the
    backend's global lock (which is precisely why stock memcached GETs
    serialize: the LRU bump mutates shared list pointers). *)

type 'k t
type 'k node

val create : unit -> 'k t

val push_front : 'k t -> 'k -> 'k node
(** Insert a key as most-recently-used; returns its handle. *)

val touch : 'k t -> 'k node -> unit
(** Move a node to the front (the GET-path LRU bump). *)

val remove : 'k t -> 'k node -> unit
(** Unlink a node (idempotent). *)

val pop_back : 'k t -> 'k option
(** Remove and return the least-recently-used key, if any. *)

val peek_back : 'k t -> 'k option
val length : 'k t -> int
val key : 'k node -> 'k

val to_list : 'k t -> 'k list
(** Keys from most- to least-recently-used (tests). *)
