(** memcached server: request dispatch plus a socket front end.

    {!handle} is the pure dispatch used by both the socket server and the
    in-process benchmark loopback; the socket server runs one thread per
    connection (reads bytes, feeds the protocol parser, executes, writes
    responses). *)

val version_string : string

val handle : Store.t -> Protocol.request -> Protocol.response option
(** Execute one request. [None] means no response is sent (noreply flag, or
    [Quit], which the connection loop treats as close). *)

type t

type address = Unix_socket of string | Tcp of int

type config = {
  max_connections : int;
      (** beyond this many live connections, new ones are rejected with
          [SERVER_ERROR too many connections] and closed *)
  idle_timeout : float;
      (** seconds a connection may sit without sending bytes before the
          server closes it; [0.] disables (default) *)
  write_timeout : float;
      (** seconds a single response write may block before the connection
          is dropped; [0.] disables (default 30) *)
}

val default_config : config
(** 1024 connections, no idle timeout, 30 s write timeout. *)

val start : store:Store.t -> ?config:config -> address -> t
(** Start listening and serving connections (accept loop and per-connection
    handlers run on background threads). Connection I/O runs through the
    failpoint sites ["server.read.split"], ["server.write.partial"], and
    ["server.conn.reset"] (see {!Rp_fault}), so tests can split reads,
    shorten writes, or tear connections. *)

val stop : t -> unit
(** Close the listener, wait for the accept loop to exit, then shut down
    and drain every in-flight connection thread: when [stop] returns, no
    server thread is left running. *)

val active_connections : t -> int
(** Currently live connections. *)

val rejected_connections : t -> int
(** Connections turned away by the [max_connections] cap so far. *)

val address : t -> address
