(** memcached server: request dispatch plus a socket front end.

    {!handle} is the pure dispatch used by both the socket server and the
    in-process benchmark loopback; the socket server runs one thread per
    connection (reads bytes, feeds the protocol parser, executes, writes
    responses). *)

val version_string : string

val handle : Store.t -> Protocol.request -> Protocol.response option
(** Execute one request. [None] means no response is sent (noreply flag, or
    [Quit], which the connection loop treats as close). *)

type t

type address = Unix_socket of string | Tcp of int

val start : store:Store.t -> address -> t
(** Start listening and serving connections (accept loop and per-connection
    handlers run on background threads). *)

val stop : t -> unit
(** Close the listener and wait for the accept loop to exit. Established
    connections finish their current request and close. *)

val address : t -> address
