(** Hardened socket I/O shared by the server and both clients.

    One implementation of the classic retry loop: transient [Unix.EINTR] /
    [EAGAIN] / [EWOULDBLOCK] results are retried (waiting for readiness
    via [select] where appropriate) instead of tearing down the
    connection, short writes are continued, and every transfer can be
    routed through an {!Rp_fault} I/O site so tests can shrink, stall, or
    tear it deterministically. *)

exception Timeout
(** Raised when a [deadline]/[timeout] expires before the transfer makes
    progress. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (idempotent) so a write to a peer-closed
    socket raises [Unix.EPIPE] instead of killing the process. Called by
    {!Server.start} and both client [connect]s. *)

val write_all : ?fault:string -> ?deadline:float -> Unix.file_descr -> string -> unit
(** Write the whole string, retrying short writes and transient errors.
    [fault] names an {!Rp_fault.io_cap} site evaluated before each chunk
    (a [Truncate_io] there forces short writes; a [Raise] models a torn
    connection). [deadline] is an absolute [Unix.gettimeofday] instant:
    once reached, waiting for writability raises {!Timeout}. *)

val read : ?fault:string -> ?timeout:float -> Unix.file_descr -> Bytes.t -> int
(** Read at most [Bytes.length buf] bytes into [buf] (from offset 0),
    returning the count (0 = peer closed). Retries transient errors.
    [fault] as in {!write_all} ([Truncate_io] caps the request, splitting
    reads). [timeout] is a relative idle budget in seconds; if no data
    arrives in time, raises {!Timeout}. *)
