let version_string = Version.string

let stored_reply : Store.stored_result -> Protocol.response = function
  | Store.Stored -> Protocol.Stored
  | Store.Not_stored -> Protocol.Not_stored
  | Store.Exists -> Protocol.Exists
  | Store.Not_found -> Protocol.Not_found
  | Store.Too_large -> Protocol.Server_error "object too large for cache"

let handle store (request : Protocol.request) : Protocol.response option =
  match request with
  | Protocol.Get keys -> Some (Protocol.Values (Store.get_many store keys))
  | Protocol.Gets keys ->
      Some (Protocol.Values (Store.get_many store ~with_cas:true keys))
  | Protocol.Set { key; flags; exptime; noreply; data } ->
      let r = Store.set store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Add { key; flags; exptime; noreply; data } ->
      let r = Store.add store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Replace { key; flags; exptime; noreply; data } ->
      let r = Store.replace store ~key ~flags ~exptime ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Append { key; noreply; data; _ } ->
      let r = Store.append store ~key ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Prepend { key; noreply; data; _ } ->
      let r = Store.prepend store ~key ~data in
      if noreply then None else Some (stored_reply r)
  | Protocol.Cas ({ key; flags; exptime; noreply; data }, unique) ->
      let r = Store.cas store ~key ~flags ~exptime ~data ~unique in
      if noreply then None else Some (stored_reply r)
  | Protocol.Delete { key; noreply } ->
      let r = if Store.delete store key then Protocol.Deleted else Protocol.Not_found in
      if noreply then None else Some r
  | Protocol.Incr { key; delta; noreply } -> (
      match Store.incr store key delta with
      | Store.Cvalue n -> if noreply then None else Some (Protocol.Number n)
      | Store.Cnotfound -> if noreply then None else Some Protocol.Not_found
      | Store.Cnon_numeric ->
          if noreply then None
          else
            Some
              (Protocol.Client_error
                 "cannot increment or decrement non-numeric value"))
  | Protocol.Decr { key; delta; noreply } -> (
      match Store.decr store key delta with
      | Store.Cvalue n -> if noreply then None else Some (Protocol.Number n)
      | Store.Cnotfound -> if noreply then None else Some Protocol.Not_found
      | Store.Cnon_numeric ->
          if noreply then None
          else
            Some
              (Protocol.Client_error
                 "cannot increment or decrement non-numeric value"))
  | Protocol.Touch { key; exptime; noreply } ->
      let r =
        if Store.touch store ~key ~exptime then Protocol.Touched
        else Protocol.Not_found
      in
      if noreply then None else Some r
  | Protocol.Stats -> Some (Protocol.Stats_reply (Store.stats store))
  | Protocol.Flush_all { noreply } ->
      Store.flush_all store;
      if noreply then None else Some Protocol.Ok_reply
  | Protocol.Version -> Some (Protocol.Version_reply version_string)
  | Protocol.Quit -> None

type address = Unix_socket of string | Tcp of int

type t = {
  addr : address;
  listen_fd : Unix.file_descr;
  accept_thread : Thread.t;
  running : bool Atomic.t;
}

let write_all fd s =
  let bytes = Bytes.of_string s in
  let len = Bytes.length bytes in
  let rec go off =
    if off < len then begin
      let n = Unix.write fd bytes off (len - off) in
      go (off + n)
    end
  in
  go 0

let serve_text store fd buf ~initial =
  let parser = Protocol.Parser.create () in
  Protocol.Parser.feed parser initial;
  let closing = ref false in
  let drain () =
    let rec go () =
      match Protocol.Parser.next parser with
      | None -> ()
      | Some (Error msg) ->
          let reply =
            if msg = "ERROR" then Protocol.Error_reply
            else Protocol.Client_error msg
          in
          write_all fd (Protocol.encode_response reply);
          go ()
      | Some (Ok Protocol.Quit) -> closing := true
      | Some (Ok request) ->
          (match handle store request with
          | Some response -> write_all fd (Protocol.encode_response response)
          | None -> ());
          go ()
    in
    go ()
  in
  drain ();
  while not !closing do
    let n = Unix.read fd buf 0 (Bytes.length buf) in
    if n = 0 then closing := true
    else begin
      Protocol.Parser.feed parser (Bytes.sub_string buf 0 n);
      drain ()
    end
  done

let serve_binary store fd buf ~initial =
  let parser = Binary_protocol.Parser.create () in
  Binary_protocol.Parser.feed parser initial;
  let closing = ref false in
  let drain () =
    let rec go () =
      match Binary_protocol.Parser.next parser with
      | None -> ()
      | Some (Error _) ->
          (* Binary framing errors are unrecoverable: drop the connection,
             as stock memcached does. *)
          closing := true
      | Some (Ok request) ->
          List.iter
            (fun response ->
              write_all fd (Binary_protocol.encode_response response))
            (Binary_server.handle store request);
          if Binary_server.quit_requested request then closing := true else go ()
    in
    go ()
  in
  drain ();
  while not !closing do
    let n = Unix.read fd buf 0 (Bytes.length buf) in
    if n = 0 then closing := true
    else begin
      Binary_protocol.Parser.feed parser (Bytes.sub_string buf 0 n);
      drain ()
    end
  done

(* Protocol auto-detection, as in stock memcached: the first byte of a
   connection decides (0x80 = binary request magic, anything else = text). *)
let serve_connection store fd =
  let buf = Bytes.create 16384 in
  (try
     let n = Unix.read fd buf 0 (Bytes.length buf) in
     if n > 0 then begin
       let initial = Bytes.sub_string buf 0 n in
       if initial.[0] = Binary_protocol.magic_request_byte then
         serve_binary store fd buf ~initial
       else serve_text store fd buf ~initial
     end
   with Unix.Unix_error _ | End_of_file -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let start ~store addr =
  let domain, sockaddr =
    match addr with
    | Unix_socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp port -> (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_loopback, port))
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd sockaddr;
  Unix.listen listen_fd 64;
  let running = Atomic.make true in
  let accept_thread =
    Thread.create
      (fun () ->
        while Atomic.get running do
          match Unix.accept listen_fd with
          | fd, _ -> ignore (Thread.create (fun () -> serve_connection store fd) ())
          | exception Unix.Unix_error _ -> ()
        done)
      ()
  in
  { addr; listen_fd; accept_thread; running }

let stop t =
  Atomic.set t.running false;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread;
  match t.addr with
  | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ()

let address t = t.addr
