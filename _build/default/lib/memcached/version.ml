(* Single source for the server identification string (shared by the text
   and binary front ends). *)
let string = "1.0.0-rp-hashtable"
