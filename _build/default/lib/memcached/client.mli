(** Blocking memcached client over a socket (demos, integration tests). *)

type t

val connect : Server.address -> t
val close : t -> unit

val get : t -> string -> Protocol.value option
val get_many : t -> string list -> Protocol.value list
val gets : t -> string -> Protocol.value option
(** Like {!get} but the value carries its CAS unique. *)

val set : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit -> bool
val add : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unit -> bool
val cas : t -> ?flags:int -> ?exptime:int -> key:string -> data:string -> unique:int -> unit -> Protocol.response
val delete : t -> string -> bool
val incr : t -> string -> int -> int option
val decr : t -> string -> int -> int option
val touch : t -> key:string -> exptime:int -> bool
val stats : t -> (string * string) list
val version : t -> string
val flush_all : t -> unit

val request : t -> Protocol.request -> Protocol.response
(** Send any request and wait for its response (raises [Failure] on
    protocol errors or closed connections). *)
