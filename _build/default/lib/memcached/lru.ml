type 'k node = {
  key : 'k;
  mutable prev : 'k node option;
  mutable next : 'k node option;
  mutable linked : bool;
}

type 'k t = {
  mutable front : 'k node option;
  mutable back : 'k node option;
  mutable length : int;
}

let create () = { front = None; back = None; length = 0 }

let push_front t key =
  let node = { key; prev = None; next = t.front; linked = true } in
  (match t.front with
  | Some old -> old.prev <- Some node
  | None -> t.back <- Some node);
  t.front <- Some node;
  t.length <- t.length + 1;
  node

let remove t node =
  if node.linked then begin
    (match node.prev with
    | Some p -> p.next <- node.next
    | None -> t.front <- node.next);
    (match node.next with
    | Some n -> n.prev <- node.prev
    | None -> t.back <- node.prev);
    node.prev <- None;
    node.next <- None;
    node.linked <- false;
    t.length <- t.length - 1
  end

let touch t node =
  if node.linked then begin
    remove t node;
    (* Relink the same node at the front so existing handles stay valid. *)
    node.next <- t.front;
    node.prev <- None;
    node.linked <- true;
    (match t.front with
    | Some old -> old.prev <- Some node
    | None -> t.back <- Some node);
    t.front <- Some node;
    t.length <- t.length + 1
  end

let pop_back t =
  match t.back with
  | None -> None
  | Some node ->
      remove t node;
      Some node.key

let peek_back t = Option.map (fun (n : _ node) -> n.key) t.back
let length t = t.length
let key node = node.key

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk (node.key :: acc) node.next
  in
  walk [] t.front
