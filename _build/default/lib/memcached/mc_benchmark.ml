type mode = Get_only | Set_only | Mixed of float

type config = {
  workers : int;
  duration : float;
  keyspace : int;
  value_size : int;
  mode : mode;
  seed : int;
}

let default_config =
  {
    workers = 1;
    duration = 1.0;
    keyspace = 10_000;
    value_size = 100;
    mode = Get_only;
    seed = 42;
  }

type result = {
  requests : int;
  elapsed : float;
  requests_per_second : float;
  hits : int;
  misses : int;
}

let value_for ~size key_index =
  let tag = Printf.sprintf "v%08d:" key_index in
  let pad = max 0 (size - String.length tag) in
  tag ^ String.make pad 'x'

let prefill store ~keyspace ~value_size =
  for i = 0 to keyspace - 1 do
    let key = Rp_workload.Keygen.string_key i in
    ignore
      (Store.set store ~key ~flags:0 ~exptime:0 ~data:(value_for ~size:value_size i))
  done

(* One worker = one simulated mc-benchmark process: client-side encoding +
   parsing and server-side parsing + dispatch, all on this domain. *)
let worker store config index ~stop ~hits ~misses =
  let keygen =
    Rp_workload.Keygen.create ~keyspace:config.keyspace ~seed:config.seed
      ~worker:index ()
  in
  let prng = Rp_workload.Keygen.prng keygen in
  let parser = Protocol.Parser.create () in
  let response_parser = Protocol.Response_parser.create () in
  let my_hits = ref 0 and my_misses = ref 0 in
  let one_request () =
    let key_index = Rp_workload.Keygen.next_key keygen in
    let key = Rp_workload.Keygen.string_key key_index in
    let is_set =
      match config.mode with
      | Get_only -> false
      | Set_only -> true
      | Mixed fraction -> Rp_workload.Prng.float prng < fraction
    in
    let request =
      if is_set then
        Protocol.Set
          {
            key;
            flags = 0;
            exptime = 0;
            noreply = false;
            data = value_for ~size:config.value_size key_index;
          }
      else Protocol.Get [ key ]
    in
    (* client -> wire *)
    Protocol.Parser.feed parser (Protocol.encode_request request);
    (* wire -> server -> wire *)
    (match Protocol.Parser.next parser with
    | Some (Ok parsed) -> (
        match Server.handle store parsed with
        | Some response ->
            Protocol.Response_parser.feed response_parser
              (Protocol.encode_response response)
        | None -> ())
    | Some (Error msg) -> failwith ("mc_benchmark: request parse error: " ^ msg)
    | None -> failwith "mc_benchmark: incomplete request");
    (* wire -> client *)
    match Protocol.Response_parser.next response_parser with
    | Some (Ok (Protocol.Values [])) -> incr my_misses
    | Some (Ok (Protocol.Values _)) -> incr my_hits
    | Some (Ok _) -> ()
    | Some (Error msg) -> failwith ("mc_benchmark: response parse error: " ^ msg)
    | None -> failwith "mc_benchmark: incomplete response"
  in
  let ops = Rp_harness.Runner.loop_until_stop ~stop ~f:one_request in
  ignore (Atomic.fetch_and_add hits !my_hits);
  ignore (Atomic.fetch_and_add misses !my_misses);
  ops

let run ~store config =
  let hits = Atomic.make 0 and misses = Atomic.make 0 in
  let workers =
    Array.init config.workers (fun i ~stop ->
        worker store config i ~stop ~hits ~misses)
  in
  let outcome = Rp_harness.Runner.run ~duration:config.duration ~workers () in
  {
    requests = Rp_harness.Runner.total_ops outcome;
    elapsed = outcome.elapsed;
    requests_per_second = Rp_harness.Runner.throughput outcome;
    hits = Atomic.get hits;
    misses = Atomic.get misses;
  }

let run_backend ~backend config =
  let store = Store.create ~backend ~initial_size:16_384 () in
  prefill store ~keyspace:config.keyspace ~value_size:config.value_size;
  run ~store config
