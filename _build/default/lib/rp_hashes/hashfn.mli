(** Hash functions used by the table implementations.

    All functions return non-negative OCaml [int]s (63-bit). Bucket selection
    masks the low bits, so good low-bit diffusion matters; every function
    here finishes with an avalanche step. *)

val splitmix64 : int -> int
(** Finalizer of the SplitMix64 generator: a strong avalanche permutation on
    63-bit ints. Good default for integer keys. *)

val fnv1a_string : string -> int
(** FNV-1a over the bytes of a string, post-mixed with {!splitmix64}. *)

val fnv1a_bytes : bytes -> int
(** FNV-1a over a [bytes] value, post-mixed with {!splitmix64}. *)

val jenkins_string : string -> int
(** Bob Jenkins' one-at-a-time hash over a string (non-negative). *)

val combine : int -> int -> int
(** Mix two hash values into one (boost-style combine, then avalanche). *)

val of_int : int -> int
(** Alias for {!splitmix64}; hash an integer key. *)
