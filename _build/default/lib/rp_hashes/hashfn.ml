(* 64-bit mixing constants don't fit OCaml's 63-bit int literals; convert
   from Int64, which truncates modulo 2^63. The avalanche quality on the low
   bits — all that bucket masking consumes — is preserved. *)

let mask63 = max_int
let k_mix1 = Int64.to_int 0x9E3779B97F4A7C15L
let k_mix2 = Int64.to_int 0xBF58476D1CE4E5B9L
let k_mix3 = Int64.to_int 0x94D049BB133111EBL
let fnv_offset = Int64.to_int 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3

let splitmix64 x =
  let x = x * k_mix1 in
  let x = (x lxor (x lsr 30)) * k_mix2 in
  let x = (x lxor (x lsr 27)) * k_mix3 in
  (x lxor (x lsr 31)) land mask63

let fnv1a_fold ~len ~get =
  let h = ref fnv_offset in
  for i = 0 to len - 1 do
    h := (!h lxor Char.code (get i)) * fnv_prime
  done;
  splitmix64 !h

let fnv1a_string s = fnv1a_fold ~len:(String.length s) ~get:(String.get s)
let fnv1a_bytes b = fnv1a_fold ~len:(Bytes.length b) ~get:(Bytes.get b)

let jenkins_string s =
  let h = ref 0 in
  String.iter
    (fun c ->
      h := !h + Char.code c;
      h := !h + (!h lsl 10);
      h := !h lxor (!h lsr 6))
    s;
  h := !h + (!h lsl 3);
  h := !h lxor (!h lsr 11);
  h := !h + (!h lsl 15);
  !h land mask63

let combine a b = splitmix64 (a lxor (b + k_mix1 + (a lsl 6) + (a lsr 2)))
let of_int = splitmix64
