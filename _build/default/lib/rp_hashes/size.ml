let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  if n < 0 then invalid_arg "Size.next_power_of_two: negative";
  let rec go p = if p >= n then p else go (p * 2) in
  if n > max_int / 2 + 1 then invalid_arg "Size.next_power_of_two: overflow"
  else go 1

let log2 n =
  if not (is_power_of_two n) then invalid_arg "Size.log2: not a power of two";
  let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let bucket_of_hash ~hash ~size =
  assert (is_power_of_two size);
  hash land (size - 1)
