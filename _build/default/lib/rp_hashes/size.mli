(** Power-of-two table sizing helpers.

    Bucket arrays are always powers of two so that the resize algorithms'
    parent/child bucket relationship holds: when a table of size [2s] shrinks
    to [s], old buckets [i] and [i + s] both map to new bucket [i]; when it
    expands, old bucket [i]'s entries split between new buckets [i] and
    [i + s]. *)

val is_power_of_two : int -> bool
(** [true] for positive powers of two. *)

val next_power_of_two : int -> int
(** Smallest power of two [>= max 1 n]. Raises [Invalid_argument] on
    negative input or overflow. *)

val log2 : int -> int
(** [log2 n] for a positive power of two [n]. Raises [Invalid_argument]
    otherwise. *)

val bucket_of_hash : hash:int -> size:int -> int
(** [bucket_of_hash ~hash ~size] selects a bucket by masking: [size] must be
    a power of two. *)
