lib/rp_hashes/size.mli:
