lib/rp_hashes/size.ml:
