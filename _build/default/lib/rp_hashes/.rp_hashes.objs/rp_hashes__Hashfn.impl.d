lib/rp_hashes/hashfn.ml: Bytes Char Int64 String
