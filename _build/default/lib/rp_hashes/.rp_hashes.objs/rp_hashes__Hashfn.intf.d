lib/rp_hashes/hashfn.mli:
