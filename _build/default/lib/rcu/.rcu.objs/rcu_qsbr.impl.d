lib/rcu/rcu_qsbr.ml: Array Atomic Domain Mutex Rp_sync
