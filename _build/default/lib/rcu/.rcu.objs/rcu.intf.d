lib/rcu/rcu.mli: Atomic Format
