lib/rcu/rcu_qsbr.mli:
