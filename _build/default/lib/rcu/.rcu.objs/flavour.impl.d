lib/rcu/flavour.ml: Mutex Queue Rcu Rcu_qsbr
