lib/rcu/flavour.mli: Rcu Rcu_qsbr
