lib/rcu/rcu.ml: Array Atomic Domain Format Mutex Queue Rp_fault Rp_sync Unix
