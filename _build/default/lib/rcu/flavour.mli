(** An RCU flavour as a first-class value.

    Relativistic data structures need four operations from their RCU
    implementation: enter/leave a read-side critical section for the calling
    domain, wait-for-readers, and deferred execution after a grace period.
    Packaging them as closures lets one structure run on either flavour:

    - {!memb} (from {!Rcu}): safe default — readers pay two sequentially
      consistent stores per section; threads may block freely;
    - {!qsbr} (from {!Rcu_qsbr}): kernel-RCU-like zero-cost readers — a read
      section is pure bookkeeping, and a quiescent state is announced
      automatically every [quiesce_interval] completed sections. Threads
      that can block indefinitely while registered (locks, sockets) must
      not use this flavour, exactly as with userspace QSBR libraries. *)

type t = {
  name : string;
  read_enter : unit -> unit;  (** enter a read section, current domain *)
  read_exit : unit -> unit;  (** leave it (and maybe auto-quiesce) *)
  synchronize : unit -> unit;  (** wait for pre-existing readers *)
  call_rcu : (unit -> unit) -> unit;  (** defer past a grace period *)
  barrier : unit -> unit;  (** drain all deferred callbacks *)
  thread_offline : unit -> unit;
      (** The calling domain stops reading (for now): QSBR goes offline so
          grace periods no longer wait for it — {b required} before a reader
          domain blocks for long or exits; memb is a no-op. A later
          [read_enter] brings the domain back online automatically. *)
}

val memb : Rcu.t -> t
val qsbr : ?quiesce_interval:int -> Rcu_qsbr.t -> t
(** [quiesce_interval] (default 64, must be a power of two) controls how
    many completed read sections pass between automatic quiescent-state
    announcements. *)

val with_read : t -> (unit -> 'a) -> 'a
(** Run a function inside a read section of the flavour. *)
