(** Quiescent-state-based RCU (QSBR) — the zero-cost-reader flavour.

    The paper's kernel benchmark rides on Linux RCU, whose readers cost
    {e nothing}: no stores at all on the read side. QSBR recovers that in
    userspace by inverting the protocol of {!Rcu}: a thread is assumed to be
    inside a read-side critical section {e at all times}, except when it
    explicitly announces a {b quiescent state} ({!quiescent_state}) or goes
    {b offline} ({!offline}/{!online}). A grace period ends once every
    registered thread has passed through a quiescent state (or is offline).

    Trade-off vs. {!Rcu} ("memb"): reads are free, but every participating
    thread {e must} announce quiescent states regularly or writers stall —
    acceptable inside an event loop or a benchmark worker, unsuitable for
    threads that block indefinitely (they must go offline first).

    The read-side API ([read_lock]/[read_unlock]) is provided for symmetry
    and debug assertions; both compile to nesting-count bookkeeping only. *)

type t
type thread

val create : ?max_threads:int -> unit -> t

val register : t -> thread
(** Register the calling domain as a QSBR participant, initially online. *)

val unregister : t -> thread -> unit

val thread_for_current_domain : t -> thread
(** This domain's handle, registering (online) on first use. *)

val registered_threads : t -> int

val read_lock : thread -> unit
(** Assert-only marker: a QSBR read section costs nothing. Raises
    [Invalid_argument] if the thread is offline. *)

val read_unlock : thread -> unit

val quiescent_state : thread -> unit
(** Announce that this thread holds no RCU-protected references. Must be
    called outside any read-side critical section ([Invalid_argument]
    otherwise), and regularly, or grace periods stall. One atomic store. *)

val offline : thread -> unit
(** Enter an extended quiescent state (e.g. before blocking I/O). *)

val online : thread -> unit
(** Leave the extended quiescent state. *)

val is_online : thread -> bool

val synchronize : t -> unit
(** Wait until every registered thread has passed a quiescent state (or is
    offline) since this call began. The caller's own thread, if registered,
    is treated as quiescent (it is, by virtue of calling us). *)

val grace_periods : t -> int

val in_critical_section : thread -> bool
(** [true] while the thread's (bookkeeping-only) read nesting is non-zero. *)

val read_unlock_auto : mask:int -> thread -> unit
(** {!read_unlock} that additionally announces a quiescent state after every
    [mask + 1]-th completed outermost section ([mask] must be a power of two
    minus one). The building block of [Flavour.qsbr]'s auto-quiescence. *)
