type t = {
  name : string;
  read_enter : unit -> unit;
  read_exit : unit -> unit;
  synchronize : unit -> unit;
  call_rcu : (unit -> unit) -> unit;
  barrier : unit -> unit;
  thread_offline : unit -> unit;
}

let memb rcu =
  {
    name = "memb";
    read_enter = (fun () -> Rcu.read_lock_current rcu);
    read_exit = (fun () -> Rcu.read_unlock_current rcu);
    synchronize = (fun () -> Rcu.synchronize rcu);
    call_rcu = (fun cb -> Rcu.call_rcu rcu cb);
    barrier = (fun () -> Rcu.barrier rcu);
    (* memb readers are quiescent whenever outside a section; nothing to do *)
    thread_offline = (fun () -> ());
  }

(* Generic amortized deferral built on a flavour's synchronize, mirroring
   Rcu's internal queue. *)
module Defer = struct
  type queue = {
    mutex : Mutex.t;
    pending : (unit -> unit) Queue.t;
    threshold : int;
  }

  let create () = { mutex = Mutex.create (); pending = Queue.create (); threshold = 64 }

  let flush q ~synchronize =
    Mutex.lock q.mutex;
    let batch = Queue.create () in
    Queue.transfer q.pending batch;
    Mutex.unlock q.mutex;
    if not (Queue.is_empty batch) then begin
      synchronize ();
      Queue.iter (fun cb -> cb ()) batch
    end

  let call q ~synchronize cb =
    Mutex.lock q.mutex;
    Queue.add cb q.pending;
    let n = Queue.length q.pending in
    Mutex.unlock q.mutex;
    if n >= q.threshold then flush q ~synchronize

  let barrier q ~synchronize =
    let rec loop () =
      flush q ~synchronize;
      Mutex.lock q.mutex;
      let n = Queue.length q.pending in
      Mutex.unlock q.mutex;
      if n > 0 then loop ()
    in
    loop ()
end

let qsbr ?(quiesce_interval = 64) q =
  if
    quiesce_interval < 1
    || quiesce_interval land (quiesce_interval - 1) <> 0
  then invalid_arg "Flavour.qsbr: quiesce_interval must be a positive power of two";
  let mask = quiesce_interval - 1 in
  let defer = Defer.create () in
  let synchronize () = Rcu_qsbr.synchronize q in
  {
    name = "qsbr";
    read_enter =
      (fun () ->
        let th = Rcu_qsbr.thread_for_current_domain q in
        if not (Rcu_qsbr.is_online th) then Rcu_qsbr.online th;
        Rcu_qsbr.read_lock th);
    read_exit =
      (fun () ->
        Rcu_qsbr.read_unlock_auto ~mask (Rcu_qsbr.thread_for_current_domain q));
    synchronize;
    call_rcu = (fun cb -> Defer.call defer ~synchronize cb);
    barrier = (fun () -> Defer.barrier defer ~synchronize);
    thread_offline =
      (fun () -> Rcu_qsbr.offline (Rcu_qsbr.thread_for_current_domain q));
  }

let with_read t f =
  t.read_enter ();
  match f () with
  | v ->
      t.read_exit ();
      v
  | exception e ->
      t.read_exit ();
      raise e
