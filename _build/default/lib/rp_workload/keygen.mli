(** Key generation for benchmark workloads. *)

type dist = Uniform | Zipfian of float  (** exponent *)

type t

val create : ?dist:dist -> keyspace:int -> seed:int -> worker:int -> unit -> t
(** A per-worker key stream over [\[0, keyspace)] (default {!Uniform}). *)

val next_key : t -> int
(** Draw the next key. *)

val string_key : int -> string
(** Render an integer key in memcached style ("key:0000001234"); total
    length 14 bytes, matching mc-benchmark's key format. *)

val prng : t -> Prng.t
(** The underlying PRNG (for drawing non-key randomness in the same
    stream). *)
