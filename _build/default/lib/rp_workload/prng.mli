(** Deterministic per-worker pseudo-random numbers (SplitMix64).

    Each benchmark worker owns a [t] seeded from (seed, worker index), so
    runs are reproducible and workers never share mutable state. *)

type t

val create : seed:int -> t

val split : t -> int -> t
(** [split t i] derives an independent stream for worker [i]. *)

val next : t -> int
(** Next 63-bit non-negative value. *)

val below : t -> int -> int
(** Uniform in [\[0, bound)]. Raises [Invalid_argument] if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
