type t = { n : int; theta : float; cdf : float array }

let create ?(theta = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if theta < 0.0 then invalid_arg "Zipf.create: theta < 0";
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) theta) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf.(n - 1) <- 1.0;
  { n; theta; cdf }

let sample t prng =
  let u = Prng.float prng in
  (* First index whose cdf >= u. *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let n t = t.n
let theta t = t.theta

let pmf t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
