type t = { mutable state : int }

let golden = Int64.to_int 0x9E3779B97F4A7C15L

let create ~seed = { state = Rp_hashes.Hashfn.splitmix64 seed }

let split t i =
  { state = Rp_hashes.Hashfn.combine t.state (Rp_hashes.Hashfn.of_int (i + 1)) }

let next t =
  t.state <- t.state + golden;
  Rp_hashes.Hashfn.splitmix64 t.state

let below t bound =
  if bound <= 0 then invalid_arg "Prng.below: bound <= 0";
  next t mod bound

let float t = float_of_int (next t) /. float_of_int max_int
let bool t = next t land 1 = 1

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
