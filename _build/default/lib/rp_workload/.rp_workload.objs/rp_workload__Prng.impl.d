lib/rp_workload/prng.ml: Array Int64 Rp_hashes
