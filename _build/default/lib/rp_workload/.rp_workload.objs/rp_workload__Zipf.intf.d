lib/rp_workload/zipf.mli: Prng
