lib/rp_workload/keygen.ml: Printf Prng Zipf
