lib/rp_workload/opmix.mli:
