lib/rp_workload/prng.mli:
