lib/rp_workload/keygen.mli: Prng
