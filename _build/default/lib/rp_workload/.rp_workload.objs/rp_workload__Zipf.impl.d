lib/rp_workload/zipf.ml: Array Float Prng
