lib/rp_workload/opmix.ml: Prng
