(** Zipfian key-popularity distribution.

    Real caches (the memcached experiment's domain) see highly skewed key
    popularity; a Zipf sampler with exponent [theta] produces rank [r] with
    probability proportional to [1 / r^theta]. Sampling is O(log n) by
    binary search over the precomputed CDF. *)

type t

val create : ?theta:float -> n:int -> unit -> t
(** [create ~n ()] prepares a sampler over ranks [0 .. n-1] with exponent
    [theta] (default 0.99, the YCSB convention). Raises [Invalid_argument]
    if [n <= 0] or [theta < 0]. *)

val sample : t -> Prng.t -> int
(** Draw a rank in [\[0, n)]; rank 0 is the most popular. *)

val n : t -> int
val theta : t -> float

val pmf : t -> int -> float
(** Probability of rank [i] (tests). *)
