type dist = Uniform | Zipfian of float

type sampler = U of int | Z of Zipf.t

type t = { sampler : sampler; prng : Prng.t }

let create ?(dist = Uniform) ~keyspace ~seed ~worker () =
  if keyspace <= 0 then invalid_arg "Keygen.create: keyspace <= 0";
  let prng = Prng.split (Prng.create ~seed) worker in
  let sampler =
    match dist with
    | Uniform -> U keyspace
    | Zipfian theta -> Z (Zipf.create ~theta ~n:keyspace ())
  in
  { sampler; prng }

let next_key t =
  match t.sampler with
  | U keyspace -> Prng.below t.prng keyspace
  | Z zipf -> Zipf.sample zipf t.prng

let string_key k = Printf.sprintf "key:%010d" k
let prng t = t.prng
