(** Operation-mix generation: what fraction of operations read vs. update.

    The paper's microbenchmarks are lookup-only with a dedicated resizer;
    the memcached benchmark runs pure-GET and pure-SET phases. Mixed ratios
    support the ablation benches. *)

type op = Lookup | Insert | Remove

type t

val create : ?update_ratio:float -> seed:int -> worker:int -> unit -> t
(** [update_ratio] in [\[0, 1\]] is the fraction of non-lookup operations,
    split evenly between inserts and removes (default 0). *)

val next : t -> op

val lookup_only : t -> bool
(** [true] when the mix can never produce an update. *)
