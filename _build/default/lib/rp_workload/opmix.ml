type op = Lookup | Insert | Remove

type t = { update_ratio : float; prng : Prng.t }

let create ?(update_ratio = 0.0) ~seed ~worker () =
  if update_ratio < 0.0 || update_ratio > 1.0 then
    invalid_arg "Opmix.create: update_ratio outside [0, 1]";
  { update_ratio; prng = Prng.split (Prng.create ~seed) (worker + 7919) }

let next t =
  if t.update_ratio = 0.0 then Lookup
  else
    let u = Prng.float t.prng in
    if u >= t.update_ratio then Lookup
    else if u < t.update_ratio /. 2.0 then Insert
    else Remove

let lookup_only t = t.update_ratio = 0.0
