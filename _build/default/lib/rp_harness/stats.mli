(** Benchmark statistics: summary math and latency histograms. *)

val mean : float array -> float
val stddev : float array -> float
val median : float array -> float

(** Log-bucketed latency histogram (nanosecond scale, powers of two). *)
module Histogram : sig
  type t

  val create : unit -> t
  val record : t -> float -> unit
  (** Record one latency sample, in nanoseconds. *)

  val count : t -> int
  val merge : t -> t -> t
  val percentile : t -> float -> float
  (** [percentile t 99.0] returns an upper bound (bucket boundary) on the
      given percentile, in nanoseconds. 0 when empty. *)

  val mean : t -> float
end
