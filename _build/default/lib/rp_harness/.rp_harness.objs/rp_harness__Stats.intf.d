lib/rp_harness/stats.mli:
