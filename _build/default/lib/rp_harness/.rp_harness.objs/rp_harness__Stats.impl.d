lib/rp_harness/stats.ml: Array Float
