lib/rp_harness/report.ml: Array Buffer Float List Option Printf Series String
