lib/rp_harness/runner.ml: Array Atomic Domain Rp_sync Unix
