lib/rp_harness/runner.mli: Atomic
