lib/rp_harness/report.mli: Series
