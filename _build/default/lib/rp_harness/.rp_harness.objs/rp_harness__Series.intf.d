lib/rp_harness/series.mli:
