lib/rp_harness/series.ml: List
