type t = { label : string; points : (int * float) list }

let make ~label ~points = { label; points }
let y_at t x = List.assoc_opt x t.points

let xs series =
  List.concat_map (fun s -> List.map fst s.points) series
  |> List.sort_uniq compare

let scale t c = { t with points = List.map (fun (x, y) -> (x, y *. c)) t.points }
