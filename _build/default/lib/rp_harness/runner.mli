(** Domain orchestration for throughput measurements.

    Spawns one domain per worker, aligns their start on a barrier, lets them
    run for a fixed duration, raises a stop flag, joins, and reports per-
    worker operation counts. Workers poll the stop flag; the harness never
    interrupts them mid-operation. *)

type outcome = {
  per_worker_ops : int array;  (** operations completed by each worker *)
  elapsed : float;  (** measured wall-clock seconds between start and stop *)
}

val run :
  duration:float -> workers:(stop:bool Atomic.t -> int) array -> unit -> outcome
(** [run ~duration ~workers ()] executes all workers concurrently for
    [duration] seconds. Each worker receives the shared stop flag and must
    return its operation count when the flag goes up. *)

val total_ops : outcome -> int
val throughput : outcome -> float
(** Aggregate operations per second. *)

val now : unit -> float
(** Monotonic-enough wall clock in seconds. *)

val loop_until_stop : stop:bool Atomic.t -> f:(unit -> unit) -> int
(** Helper for writing workers: repeatedly call [f], checking the flag
    every iteration; returns the iteration count. *)

val loop_batched : stop:bool Atomic.t -> batch:int -> f:(unit -> unit) -> int
(** Like {!loop_until_stop} but checks the stop flag once per [batch]
    iterations, keeping flag-polling off the hot path. *)
