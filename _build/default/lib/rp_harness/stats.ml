let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (sq /. float_of_int (n - 1))
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    if n land 1 = 1 then sorted.(n / 2)
    else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0
  end

module Histogram = struct
  (* Bucket i covers latencies in [2^i, 2^(i+1)) ns. *)
  let nbuckets = 64

  type t = { buckets : int array; mutable total : int; mutable sum : float }

  let create () = { buckets = Array.make nbuckets 0; total = 0; sum = 0.0 }

  let bucket_of ns =
    if ns < 1.0 then 0
    else min (nbuckets - 1) (int_of_float (Float.log2 ns))

  let record t ns =
    t.buckets.(bucket_of ns) <- t.buckets.(bucket_of ns) + 1;
    t.total <- t.total + 1;
    t.sum <- t.sum +. ns

  let count t = t.total

  let merge a b =
    let merged = create () in
    for i = 0 to nbuckets - 1 do
      merged.buckets.(i) <- a.buckets.(i) + b.buckets.(i)
    done;
    merged.total <- a.total + b.total;
    merged.sum <- a.sum +. b.sum;
    merged

  let percentile t p =
    if t.total = 0 then 0.0
    else begin
      let target = int_of_float (ceil (float_of_int t.total *. p /. 100.0)) in
      let target = max 1 target in
      let rec walk i seen =
        if i >= nbuckets then Float.pow 2.0 (float_of_int nbuckets)
        else begin
          let seen = seen + t.buckets.(i) in
          if seen >= target then Float.pow 2.0 (float_of_int (i + 1))
          else walk (i + 1) seen
        end
      in
      walk 0 0
    end

  let mean t = if t.total = 0 then 0.0 else t.sum /. float_of_int t.total
end
