(** Plain-text rendering of figures: aligned tables and ASCII charts, plus
    CSV export, so every benchmark prints the same rows/series the paper
    plots. *)

val print_table : header:string list -> rows:string list list -> unit
(** Column-aligned table on stdout. *)

val print_series_table :
  ?unit_label:string -> x_label:string -> Series.t list -> unit
(** One row per x value, one column per series. *)

val print_ascii_chart :
  ?width:int -> ?height:int -> title:string -> Series.t list -> unit
(** Rough ASCII rendering of the curves (series are assigned distinct
    marks). *)

val csv_of_series : x_label:string -> Series.t list -> string
val write_csv : path:string -> x_label:string -> Series.t list -> unit
