let print_table ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row c with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = Option.value ~default:"" (List.nth_opt row c) in
        Printf.printf "%s%*s" (if c = 0 then "" else "  ") w cell)
      widths;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let format_y y =
  if Float.abs y >= 100.0 then Printf.sprintf "%.0f" y
  else if Float.abs y >= 1.0 then Printf.sprintf "%.2f" y
  else Printf.sprintf "%.4f" y

let print_series_table ?unit_label ~x_label series =
  let header =
    x_label
    :: List.map
         (fun (s : Series.t) ->
           match unit_label with
           | Some u -> Printf.sprintf "%s (%s)" s.label u
           | None -> s.label)
         series
  in
  let rows =
    List.map
      (fun x ->
        string_of_int x
        :: List.map
             (fun s ->
               match Series.y_at s x with
               | Some y -> format_y y
               | None -> "-")
             series)
      (Series.xs series)
  in
  print_table ~header ~rows

let marks = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let print_ascii_chart ?(width = 60) ?(height = 16) ~title series =
  Printf.printf "%s\n" title;
  let all_points = List.concat_map (fun (s : Series.t) -> s.points) series in
  match all_points with
  | [] -> print_endline "  (no data)"
  | _ ->
      let max_y = List.fold_left (fun acc (_, y) -> Float.max acc y) 0.0 all_points in
      let max_y = if max_y <= 0.0 then 1.0 else max_y in
      let min_x = List.fold_left (fun acc (x, _) -> min acc x) max_int all_points in
      let max_x = List.fold_left (fun acc (x, _) -> max acc x) min_int all_points in
      let span_x = max 1 (max_x - min_x) in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si (s : Series.t) ->
          let mark = marks.(si mod Array.length marks) in
          List.iter
            (fun (x, y) ->
              let col = (x - min_x) * (width - 1) / span_x in
              let row = int_of_float (y /. max_y *. float_of_int (height - 1)) in
              let row = height - 1 - min (height - 1) row in
              grid.(row).(col) <- mark)
            s.points)
        series;
      Array.iteri
        (fun i row ->
          let label =
            if i = 0 then Printf.sprintf "%10.1f |" max_y
            else if i = height - 1 then Printf.sprintf "%10.1f |" 0.0
            else Printf.sprintf "%10s |" ""
          in
          Printf.printf "%s%s\n" label (String.init width (fun c -> row.(c))))
        grid;
      Printf.printf "%10s +%s\n" "" (String.make width '-');
      Printf.printf "%10s  %-*d%*d\n" "" (width / 2) min_x (width - (width / 2)) max_x;
      List.iteri
        (fun si (s : Series.t) ->
          Printf.printf "  %c = %s\n" marks.(si mod Array.length marks) s.label)
        series

let csv_of_series ~x_label series =
  let buf = Buffer.create 256 in
  Buffer.add_string buf x_label;
  List.iter
    (fun (s : Series.t) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf s.label)
    series;
  Buffer.add_char buf '\n';
  List.iter
    (fun x ->
      Buffer.add_string buf (string_of_int x);
      List.iter
        (fun s ->
          Buffer.add_char buf ',';
          match Series.y_at s x with
          | Some y -> Buffer.add_string buf (Printf.sprintf "%.6f" y)
          | None -> ())
        series;
      Buffer.add_char buf '\n')
    (Series.xs series);
  Buffer.contents buf

let write_csv ~path ~x_label series =
  let oc = open_out path in
  output_string oc (csv_of_series ~x_label series);
  close_out oc
