type outcome = { per_worker_ops : int array; elapsed : float }

let now () = Unix.gettimeofday ()

let run ~duration ~workers () =
  let n = Array.length workers in
  if n = 0 then invalid_arg "Runner.run: no workers";
  let stop = Atomic.make false in
  let barrier = Rp_sync.Barrier_sync.create (n + 1) in
  let domains =
    Array.map
      (fun worker ->
        Domain.spawn (fun () ->
            Rp_sync.Barrier_sync.await barrier;
            worker ~stop))
      workers
  in
  Rp_sync.Barrier_sync.await barrier;
  let started = now () in
  Unix.sleepf duration;
  Atomic.set stop true;
  let per_worker_ops = Array.map Domain.join domains in
  let elapsed = now () -. started in
  { per_worker_ops; elapsed }

let total_ops outcome = Array.fold_left ( + ) 0 outcome.per_worker_ops

let throughput outcome =
  if outcome.elapsed <= 0.0 then 0.0
  else float_of_int (total_ops outcome) /. outcome.elapsed

let loop_until_stop ~stop ~f =
  let ops = ref 0 in
  while not (Atomic.get stop) do
    f ();
    incr ops
  done;
  !ops

let loop_batched ~stop ~batch ~f =
  if batch < 1 then invalid_arg "Runner.loop_batched: batch < 1";
  let ops = ref 0 in
  while not (Atomic.get stop) do
    for _ = 1 to batch do
      f ()
    done;
    ops := !ops + batch
  done;
  !ops
