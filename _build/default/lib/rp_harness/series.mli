(** A named series of (x, y) measurements — one curve of a figure. *)

type t = { label : string; points : (int * float) list }

val make : label:string -> points:(int * float) list -> t

val y_at : t -> int -> float option
(** The y value at a given x, if measured. *)

val xs : t list -> int list
(** Sorted union of x values across several series. *)

val scale : t -> float -> t
(** Multiply every y by a constant (unit conversions). *)
