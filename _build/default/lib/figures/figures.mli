(** One entry point per paper figure.

    Each figure runs in two modes and prints both:

    - {b measured}: real execution on this host — domains, real tables, real
      contention. On a single-core container the thread axis cannot show
      parallel speedup, so measured curves are reported for the available
      thread counts and used to {e calibrate} the model;
    - {b projected}: the {!Simcore} cost model seeded with the measured
      single-thread rate, projecting the paper's 1–16-thread (or 1–12
      process) axis on a 16-way cache-coherent machine.

    EXPERIMENTS.md records both next to the paper's curves. *)

type options = {
  duration : float;  (** seconds per measured point *)
  repeats : int;  (** measured points take the best of this many runs *)
  real_threads : int list;  (** thread counts to actually execute *)
  model_threads : int list;  (** thread counts for the model projection *)
  mc_real_procs : int list;  (** mc-benchmark worker counts to execute *)
  mc_model_procs : int list;  (** worker counts for the projection *)
  entries : int;  (** table occupancy for the microbenchmarks *)
  small_buckets : int;  (** the "8k" size *)
  large_buckets : int;  (** the "16k" size *)
  csv_dir : string option;  (** write per-figure CSVs here if set *)
}

val default_options : options
val quick_options : options
(** Short durations for CI / smoke runs. *)

type figure_result = {
  measured : Rp_harness.Series.t list;
  projected : Rp_harness.Series.t list;
}

val fig1 : options -> figure_result
(** Fixed-size baseline: RP vs DDDS vs rwlock, pure lookups. *)

val fig2 : options -> figure_result
(** Continuous resizing (8k <-> 16k flip loop): RP vs DDDS. *)

val fig3 : options -> figure_result
(** RP: fixed 8k vs fixed 16k vs continuous resize. *)

val fig4 : options -> figure_result
(** DDDS: fixed 8k vs fixed 16k vs continuous resize. *)

val fig5 : options -> figure_result
(** memcached: RP GET / default GET / default SET / RP SET vs workers. *)

val run_all : options -> unit
(** Run and print every figure. *)

(** {1 Building blocks (exposed for tests and the CLI)} *)

val measure_lookup_throughput :
  table:Rp_baseline.Table_intf.table ->
  threads:int ->
  duration:float ->
  entries:int ->
  buckets:int ->
  resize_between:(int * int) option ->
  float
(** Ops/s of [threads] reader domains doing lookups of resident keys, with an
    optional extra domain flipping the table between two sizes. *)

val print_figure :
  title:string -> x_label:string -> options -> string -> figure_result -> unit
(** Render one figure (tables + ASCII chart + optional CSV named by the
    given slug). *)
