(** Ablation benchmarks for the design choices DESIGN.md calls out.

    Not figures from the paper — these quantify the mechanisms {e behind}
    the figures: where DDDS's resize pain comes from (latency tails), what
    RP costs when writes appear, what a grace period costs as readers are
    added, how much unzip work an expansion performs, and what Xu's
    two-pointer scheme pays in memory. *)

val lookup_latency_under_resize :
  ?duration:float -> ?entries:int -> ?buckets:int -> unit -> unit
(** One reader samples per-lookup latency (ns histogram) while a resizer
    flips the table size continuously; prints p50 / p99 / p99.9 / mean for
    rp-qsbr, rp-memb and ddds. The paper's "DDDS significantly slows
    lookups while resizing" shows up as a fat tail. *)

val update_ratio_sweep :
  ?duration:float -> ?entries:int -> ?buckets:int -> ?ratios:float list ->
  unit -> unit
(** Single-worker throughput as the update fraction grows: RP's read-side
    advantage must not collapse the moment writes appear. *)

val grace_period_latency : ?readers:int list -> unit -> unit
(** Cost of one [synchronize] (memb flavour) against n registered readers:
    idle readers (all quiescent) vs churning readers (entering/leaving
    sections continuously). *)

val unzip_work : ?load_factors:float list -> ?buckets:int -> unit -> unit
(** Expansion work as load factor grows: unzip passes and total splices for
    one doubling, plus wall-clock time. Passes track the longest
    interleaved-run count in any chain. *)

val memory_overhead : ?entries:int list -> unit -> unit
(** Analytic per-node and per-table word counts: the unzip algorithm's
    1-pointer nodes vs Herbert Xu's 2-pointer nodes (the "high memory
    usage" trade-off the talk cites), including bucket-array overhead. *)

val run_all : unit -> unit
