lib/figures/figures.mli: Rp_baseline Rp_harness
