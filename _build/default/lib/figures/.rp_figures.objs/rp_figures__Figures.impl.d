lib/figures/figures.ml: Array Atomic Domain Filename Float Gc Int List Memcached Printf Rp_baseline Rp_harness Rp_hashes Rp_workload Simcore
