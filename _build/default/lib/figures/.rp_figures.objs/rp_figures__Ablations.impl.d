lib/figures/ablations.ml: Array Atomic Domain Int List Printf Rcu Rp_baseline Rp_harness Rp_hashes Rp_ht Rp_workload Unix
