lib/figures/ablations.mli:
