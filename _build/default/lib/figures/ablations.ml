let pr fmt = Printf.printf fmt

(* --- lookup latency under continuous resizing --- *)

let latency_case name (module T : Rp_baseline.Table_intf.TABLE) ~duration
    ~entries ~buckets =
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:buckets () in
  for i = 0 to entries - 1 do
    T.insert t i i
  done;
  let stop = Atomic.make false in
  let latency_worker () =
    let histogram = Rp_harness.Stats.Histogram.create () in
    let keygen =
      Rp_workload.Keygen.create ~keyspace:entries ~seed:7 ~worker:0 ()
    in
    (* Sample in small batches so the clock cost doesn't dominate. *)
    let batch = 16 in
    while not (Atomic.get stop) do
      let key = Rp_workload.Keygen.next_key keygen in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to batch do
        ignore (T.find t key)
      done;
      let t1 = Unix.gettimeofday () in
      Rp_harness.Stats.Histogram.record histogram
        ((t1 -. t0) /. float_of_int batch *. 1e9)
    done;
    T.reader_exit t;
    histogram
  in
  let reader = Domain.spawn latency_worker in
  let resizer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          T.resize t (2 * buckets);
          T.resize t buckets
        done)
  in
  Unix.sleepf duration;
  Atomic.set stop true;
  let histogram = Domain.join reader in
  Domain.join resizer;
  let p q = Rp_harness.Stats.Histogram.percentile histogram q in
  [
    name;
    Printf.sprintf "%.0f" (Rp_harness.Stats.Histogram.mean histogram);
    Printf.sprintf "%.0f" (p 50.0);
    Printf.sprintf "%.0f" (p 99.0);
    Printf.sprintf "%.0f" (p 99.9);
    string_of_int (Rp_harness.Stats.Histogram.count histogram);
  ]

let lookup_latency_under_resize ?(duration = 0.5) ?(entries = 4096)
    ?(buckets = 8192) () =
  pr "\n--- ablation: lookup latency under continuous resizing ---\n";
  pr "(batched samples of 16 lookups; percentiles are bucket upper bounds)\n";
  let rows =
    [
      latency_case "rp-qsbr" (module Rp_baseline.Rp_table.Qsbr) ~duration
        ~entries ~buckets;
      latency_case "rp-memb" (module Rp_baseline.Rp_table.Resizable) ~duration
        ~entries ~buckets;
      latency_case "ddds" (module Rp_baseline.Ddds_ht) ~duration ~entries
        ~buckets;
    ]
  in
  Rp_harness.Report.print_table
    ~header:[ "table"; "mean ns"; "p50 ns"; "p99 ns"; "p99.9 ns"; "samples" ]
    ~rows

(* --- throughput vs update ratio --- *)

let update_ratio_sweep ?(duration = 0.3) ?(entries = 4096) ?(buckets = 8192)
    ?(ratios = [ 0.0; 0.01; 0.1; 0.5 ]) () =
  pr "\n--- ablation: throughput vs update ratio (2 workers, Mops/s) ---\n";
  let tables : (string * Rp_baseline.Table_intf.table) list =
    [
      ("rp-qsbr", (module Rp_baseline.Rp_table.Qsbr));
      ("rp-memb", (module Rp_baseline.Rp_table.Resizable));
      ("ddds", (module Rp_baseline.Ddds_ht));
      ("rwlock", (module Rp_baseline.Rwlock_ht));
      ("lock", (module Rp_baseline.Lock_ht));
    ]
  in
  let measure (module T : Rp_baseline.Table_intf.TABLE) ratio =
    let t =
      T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:buckets ()
    in
    for i = 0 to entries - 1 do
      T.insert t i i
    done;
    let mixed_worker ~worker ~stop =
      let keygen =
        Rp_workload.Keygen.create ~keyspace:entries ~seed:11 ~worker ()
      in
      let mix = Rp_workload.Opmix.create ~update_ratio:ratio ~seed:13 ~worker () in
      let churn_base = entries in
      let ops =
        Rp_harness.Runner.loop_batched ~stop ~batch:64 ~f:(fun () ->
            let k = Rp_workload.Keygen.next_key keygen in
            match Rp_workload.Opmix.next mix with
            | Rp_workload.Opmix.Lookup -> ignore (T.find t k)
            | Rp_workload.Opmix.Insert -> T.insert t (churn_base + k) k
            | Rp_workload.Opmix.Remove -> ignore (T.remove t (churn_base + k)))
      in
      T.reader_exit t;
      ops
    in
    let workers = Array.init 2 (fun w ~stop -> mixed_worker ~worker:w ~stop) in
    let outcome = Rp_harness.Runner.run ~duration ~workers () in
    Rp_harness.Runner.throughput outcome /. 1e6
  in
  let rows =
    List.map
      (fun (name, table) ->
        name
        :: List.map (fun ratio -> Printf.sprintf "%.2f" (measure table ratio)) ratios)
      tables
  in
  Rp_harness.Report.print_table
    ~header:("table" :: List.map (fun r -> Printf.sprintf "%.0f%% upd" (r *. 100.)) ratios)
    ~rows

(* --- grace period latency vs reader count --- *)

let grace_period_latency ?(readers = [ 0; 1; 4; 16; 64 ]) () =
  pr "\n--- ablation: synchronize latency vs registered readers (memb) ---\n";
  let time_synchronize rcu =
    let iters = 200 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      Rcu.synchronize rcu
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int iters *. 1e6
  in
  let idle_case n =
    let rcu = Rcu.create () in
    let handles = List.init n (fun _ -> Rcu.register rcu) in
    let us = time_synchronize rcu in
    List.iter (Rcu.unregister rcu) handles;
    us
  in
  let churn_case n =
    let rcu = Rcu.create () in
    let stop = Atomic.make false in
    let churners =
      List.init (min n 8) (fun _ ->
          Domain.spawn (fun () ->
              let r = Rcu.register rcu in
              while not (Atomic.get stop) do
                Rcu.read_lock r;
                Rcu.read_unlock r
              done;
              Rcu.unregister rcu r))
    in
    (* Let them start. *)
    Unix.sleepf 0.02;
    let us = time_synchronize rcu in
    Atomic.set stop true;
    List.iter Domain.join churners;
    us
  in
  let rows =
    List.map
      (fun n ->
        [
          string_of_int n;
          Printf.sprintf "%.1f" (idle_case n);
          (if n = 0 then "-" else Printf.sprintf "%.1f" (churn_case n));
        ])
      readers
  in
  Rp_harness.Report.print_table
    ~header:[ "registered readers"; "idle us/gp"; "churning us/gp" ]
    ~rows

(* --- unzip work vs load factor --- *)

let unzip_work ?(load_factors = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]) ?(buckets = 8192)
    () =
  pr "\n--- ablation: expansion (unzip) work vs load factor, %d -> %d buckets ---\n"
    buckets (2 * buckets);
  let rows =
    List.map
      (fun lf ->
        let t =
          Rp_ht.create ~initial_size:buckets ~auto_resize:false
            ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
        in
        let entries = int_of_float (float_of_int buckets *. lf) in
        for i = 0 to entries - 1 do
          Rp_ht.insert t i i
        done;
        let t0 = Unix.gettimeofday () in
        Rp_ht.resize t (2 * buckets);
        let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
        let stats = Rp_ht.resize_stats t in
        [
          Printf.sprintf "%.2f" lf;
          string_of_int entries;
          string_of_int stats.unzip_passes;
          string_of_int stats.unzip_splices;
          Printf.sprintf "%.2f" ms;
        ])
      load_factors
  in
  Rp_harness.Report.print_table
    ~header:[ "load factor"; "entries"; "unzip passes"; "splices"; "expand ms" ]
    ~rows

(* --- memory overhead: 1-pointer vs 2-pointer nodes --- *)

let memory_overhead ?(entries = [ 1_000; 100_000; 10_000_000 ]) () =
  pr "\n--- ablation: memory overhead, unzip (1 next ptr) vs Xu (2 next ptrs) ---\n";
  pr "(words per entry excluding key/value payload; bucket array at load 0.5)\n";
  (* Node words: header + key + hash + value cell + next pointers. The boxed
     Atomic cells cost 2 words each (header + field) in this implementation;
     a C implementation would inline them — both columns shrink equally. *)
  let node_words next_ptrs = 1 + 1 + 1 + 2 + (2 * next_ptrs) in
  let rows =
    List.map
      (fun n ->
        let buckets = Rp_hashes.Size.next_power_of_two (2 * n) in
        let table_words ptrs = (node_words ptrs * n) + (3 * buckets) in
        let rp = table_words 1 in
        let xu = table_words 2 in
        [
          string_of_int n;
          string_of_int buckets;
          string_of_int rp;
          string_of_int xu;
          Printf.sprintf "%.1f%%" (float_of_int (xu - rp) /. float_of_int rp *. 100.);
        ])
      entries
  in
  Rp_harness.Report.print_table
    ~header:[ "entries"; "buckets"; "unzip words"; "xu words"; "xu overhead" ]
    ~rows

let run_all () =
  pr "\n=== Ablations ===\n";
  lookup_latency_under_resize ();
  update_ratio_sweep ();
  grace_period_latency ();
  unzip_work ();
  memory_overhead ()
