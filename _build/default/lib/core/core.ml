(** Public facade: one module that re-exports the whole library.

    [Core.Table] is the paper's contribution — the resizable relativistic
    hash table. Everything else is the substrate it rests on (RCU, the
    relativistic list), the baselines it is evaluated against, and the
    evaluation machinery (workloads, harness, cost model, mini-memcached). *)

module Rcu = Rcu
module Rcu_qsbr = Rcu_qsbr
module Flavour = Flavour
module Table = Rp_ht
module Radix = Rp_radix
module Torture = Rp_torture.Torture
module Unzip = Unzip
module List_rp = Rp_list
module Hash = Rp_hashes.Hashfn
module Size = Rp_hashes.Size

module Sync = struct
  module Rwlock = Rp_sync.Rwlock
  module Brlock = Rp_sync.Brlock
  module Seqlock = Rp_sync.Seqlock
  module Spinlock = Rp_sync.Spinlock
  module Backoff = Rp_sync.Backoff
  module Barrier = Rp_sync.Barrier_sync
end

module Baseline = struct
  module type TABLE = Rp_baseline.Table_intf.TABLE

  module Lock_ht = Rp_baseline.Lock_ht
  module Rwlock_ht = Rp_baseline.Rwlock_ht
  module Ddds_ht = Rp_baseline.Ddds_ht
  module Xu_ht = Rp_baseline.Xu_ht
  module Rp_table = Rp_baseline.Rp_table
end

module Workload = struct
  module Prng = Rp_workload.Prng
  module Zipf = Rp_workload.Zipf
  module Keygen = Rp_workload.Keygen
  module Opmix = Rp_workload.Opmix
end

module Harness = struct
  module Runner = Rp_harness.Runner
  module Stats = Rp_harness.Stats
  module Series = Rp_harness.Series
  module Report = Rp_harness.Report
end

module Sim = struct
  module Machine = Simcore.Machine
  module Costmodel = Simcore.Costmodel
  module Predict = Simcore.Predict
end

module Memcached = struct
  module Item = Memcached.Item
  module Lru = Memcached.Lru
  module Store = Memcached.Store
  module Protocol = Memcached.Protocol
  module Binary_protocol = Memcached.Binary_protocol
  module Binary_server = Memcached.Binary_server
  module Binary_client = Memcached.Binary_client
  module Server = Memcached.Server
  module Client = Memcached.Client
  module Mc_benchmark = Memcached.Mc_benchmark
end
