(** Reader-writer-lock hash table — the paper's rwlock baseline.

    Lookups take the read side (two shared-cache-line RMWs), updates and
    resizes take the write side. The paper's point: even uncontended-with-
    writers, readers serialize on the lock word's cache line and throughput
    stays flat (or collapses) as reader threads are added. *)

include Table_intf.TABLE
