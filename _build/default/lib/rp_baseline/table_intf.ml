(** Common signature for every hash-table implementation under benchmark.

    The benchmark harness drives all algorithms — the paper's contribution
    and each baseline — through this one interface, so a figure is just
    "same workload, different first-class module". *)

module type TABLE = sig
  type ('k, 'v) t

  val name : string
  (** Short identifier used in benchmark output ("rp", "ddds", "rwlock", …). *)

  val create :
    hash:('k -> int) -> equal:('k -> 'k -> bool) -> size:int -> unit -> ('k, 'v) t
  (** Create a table with [size] buckets (rounded to a power of two).
      Auto-resizing, where supported, is off: benches control size
      explicitly. *)

  val find : ('k, 'v) t -> 'k -> 'v option
  (** Lookup, safe to call from any domain concurrently with updates. *)

  val insert : ('k, 'v) t -> 'k -> 'v -> unit
  (** Insert or overwrite a binding. *)

  val remove : ('k, 'v) t -> 'k -> bool
  (** Remove a binding if present. *)

  val resize : ('k, 'v) t -> int -> unit
  (** Resize to the given bucket count. Implementations that cannot resize
      raise [Invalid_argument]. *)

  val size : ('k, 'v) t -> int
  (** Current bucket count. *)

  val length : ('k, 'v) t -> int
  (** Current number of bindings (approximate under concurrency). *)

  val reader_exit : ('k, 'v) t -> unit
  (** The calling domain will stop reading (blocking indefinitely or
      exiting). QSBR-flavoured tables take their thread offline so grace
      periods stop waiting for it; every other implementation is a no-op.
      Reading again later is allowed. *)
end

type table = (module TABLE)
