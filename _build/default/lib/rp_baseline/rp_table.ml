(** Adapters exposing the paper's table, and a frozen variant, through the
    common {!Table_intf.TABLE} benchmark signature. *)

(** The resizable relativistic table (auto-resize off: benches drive size). *)
module Resizable = struct
  type ('k, 'v) t = ('k, 'v) Rp_ht.t

  let name = "rp"

  let create ~hash ~equal ~size () =
    Rp_ht.create ~initial_size:size ~auto_resize:false ~hash ~equal ()

  let find = Rp_ht.find
  let insert = Rp_ht.replace
  let remove = Rp_ht.remove
  let resize = Rp_ht.resize
  let size = Rp_ht.size
  let length = Rp_ht.length
  let reader_exit t = (Rp_ht.flavour t).Flavour.thread_offline ()
end

(** The same table with resizing forbidden — the paper's fixed-size
    baseline curves (8k / 16k). *)
module Fixed = struct
  type ('k, 'v) t = ('k, 'v) Rp_ht.t

  let name = "rp-fixed"

  let create ~hash ~equal ~size () =
    Rp_ht.create ~initial_size:size ~auto_resize:false ~hash ~equal ()

  let find = Rp_ht.find
  let insert = Rp_ht.replace
  let remove = Rp_ht.remove

  let resize _ _ =
    invalid_arg "Rp_table.Fixed.resize: fixed-size table cannot resize"

  let size = Rp_ht.size
  let length = Rp_ht.length
  let reader_exit t = (Rp_ht.flavour t).Flavour.thread_offline ()
end

(** The same table running on the QSBR flavour: zero-cost readers, matching
    the paper's kernel-RCU setting. Callers must respect QSBR's rule that
    participating domains never block indefinitely while registered (the
    flavour auto-announces quiescent states between read sections). *)
module Qsbr = struct
  type ('k, 'v) t = ('k, 'v) Rp_ht.t

  let name = "rp-qsbr"

  let create ~hash ~equal ~size () =
    let q = Rcu_qsbr.create () in
    Rp_ht.create
      ~flavour:(Flavour.qsbr q)
      ~initial_size:size ~auto_resize:false ~hash ~equal ()

  let find = Rp_ht.find
  let insert = Rp_ht.replace
  let remove = Rp_ht.remove
  let resize = Rp_ht.resize
  let size = Rp_ht.size
  let length = Rp_ht.length
  let reader_exit t = (Rp_ht.flavour t).Flavour.thread_offline ()
end
