type ('k, 'v) t = { table : ('k, 'v) Chained.t; lock : Rp_sync.Rwlock.t }

let name = "rwlock"

let create ~hash ~equal ~size () =
  { table = Chained.create ~hash ~equal ~size (); lock = Rp_sync.Rwlock.create () }

let find t k = Rp_sync.Rwlock.with_read t.lock (fun () -> Chained.find t.table k)
let insert t k v = Rp_sync.Rwlock.with_write t.lock (fun () -> Chained.insert t.table k v)
let remove t k = Rp_sync.Rwlock.with_write t.lock (fun () -> Chained.remove t.table k)
let resize t n = Rp_sync.Rwlock.with_write t.lock (fun () -> Chained.resize t.table n)
let size t = Rp_sync.Rwlock.with_read t.lock (fun () -> Chained.size t.table)
let length t = Rp_sync.Rwlock.with_read t.lock (fun () -> Chained.length t.table)
let reader_exit _ = ()
