(** Herbert Xu-style resizable relativistic hash table.

    Every node carries {e two} next pointers, one per "side". Readers
    traverse the active side lock-free (RCU-delimited). A resize builds the
    entire alternate linkage on the inactive side — invisible to readers —
    then flips the active table pointer and waits one grace period.

    Trade-off vs. the paper's algorithm: a single publish-and-wait per
    resize (no unzip passes), but every node pays a second pointer forever —
    the "high memory usage" the talk calls out. *)

include Table_intf.TABLE

val active_side : ('k, 'v) t -> int
(** Which pointer set readers currently follow (0 or 1); for tests. *)

val words_per_node : int
(** Pointer words each node dedicates to chain linkage (= 2), vs. 1 for the
    unzip algorithm; used by the memory-overhead ablation. *)
