(** Plain (non-thread-safe) chained hash table with explicit resize.

    The single-lock and rwlock baselines wrap this with their respective
    synchronization; it performs the same bucket-array-and-chains work the
    relativistic table does, so benchmark differences isolate the
    synchronization cost. *)

type ('k, 'v) t

val create : hash:('k -> int) -> equal:('k -> 'k -> bool) -> size:int -> unit -> ('k, 'v) t
val find : ('k, 'v) t -> 'k -> 'v option
val insert : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite. *)

val remove : ('k, 'v) t -> 'k -> bool
val resize : ('k, 'v) t -> int -> unit
val size : ('k, 'v) t -> int
val length : ('k, 'v) t -> int
val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
