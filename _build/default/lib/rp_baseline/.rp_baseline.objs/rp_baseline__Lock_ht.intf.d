lib/rp_baseline/lock_ht.mli: Table_intf
