lib/rp_baseline/xu_ht.mli: Table_intf
