lib/rp_baseline/rp_table.ml: Flavour Rcu_qsbr Rp_ht
