lib/rp_baseline/ddds_ht.ml: Array Atomic List Mutex Option Rp_hashes Rp_sync
