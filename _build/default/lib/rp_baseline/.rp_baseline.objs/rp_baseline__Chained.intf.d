lib/rp_baseline/chained.mli:
