lib/rp_baseline/ddds_ht.mli: Table_intf
