lib/rp_baseline/lock_ht.ml: Chained Mutex
