lib/rp_baseline/chained.ml: Array List Rp_hashes
