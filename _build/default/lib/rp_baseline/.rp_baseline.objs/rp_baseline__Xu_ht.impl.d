lib/rp_baseline/xu_ht.ml: Array Atomic Mutex Rcu Rp_hashes
