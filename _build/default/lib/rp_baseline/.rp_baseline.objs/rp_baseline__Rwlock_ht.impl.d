lib/rp_baseline/rwlock_ht.ml: Chained Rp_sync
