lib/rp_baseline/table_intf.ml:
