lib/rp_baseline/rwlock_ht.mli: Table_intf
