(** "Dynamic Dynamic Data Structures"-style resizable hash table — the
    paper's resizable comparator, implemented as the talk characterises it:

    - during a resize, readers must check {e both} the new and the old
      table;
    - a resize is made visible through a sequence lock: a reader whose
      lookup overlapped a migration step retries, so readers effectively
      wait out concurrent resizes;
    - the common (no-resize) case still pays for the generation check and
      the second-table test, so lookups are slower than RP even when idle —
      and far slower while a resize is running.

    Updates and resizes serialize on a writer mutex. Migration is
    incremental (bucket at a time) so readers are never blocked for the
    whole resize, only retried across each step. *)

include Table_intf.TABLE

val resizing : ('k, 'v) t -> bool
(** [true] while a resize is migrating buckets (tests/benchmarks). *)

val reader_retries : ('k, 'v) t -> int
(** Cumulative lookup retries caused by overlapping migration steps. *)
