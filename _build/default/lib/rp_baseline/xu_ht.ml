type ('k, 'v) xnode = {
  key : 'k;
  hash : int;
  value : 'v Atomic.t;
  nexts : ('k, 'v) xlink Atomic.t array;  (* one linkage per side *)
}

and ('k, 'v) xlink = XNull | XNode of ('k, 'v) xnode

type ('k, 'v) xtable = {
  size : int;
  side : int;
  buckets : ('k, 'v) xlink Atomic.t array;
}

type ('k, 'v) t = {
  rcu : Rcu.t;
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  active : ('k, 'v) xtable Atomic.t;
  writer : Mutex.t;
  count : int Atomic.t;
}

let name = "xu"
let words_per_node = 2

let make_xtable ~size ~side =
  { size; side; buckets = Array.init size (fun _ -> Atomic.make XNull) }

let create ~hash ~equal ~size () =
  let size = Rp_hashes.Size.next_power_of_two (max 1 size) in
  {
    rcu = Rcu.create ();
    hash;
    equal;
    active = Atomic.make (make_xtable ~size ~side:0);
    writer = Mutex.create ();
    count = Atomic.make 0;
  }

let rec search t ~side h k = function
  | XNull -> None
  | XNode n ->
      if n.hash = h && t.equal n.key k then Some n
      else search t ~side h k (Rcu.dereference n.nexts.(side))

let find t k =
  let h = t.hash k in
  Rcu.with_read_current t.rcu (fun () ->
      let xt = Rcu.dereference t.active in
      match
        search t ~side:xt.side h k
          (Rcu.dereference xt.buckets.(h land (xt.size - 1)))
      with
      | Some n -> Some (Atomic.get n.value)
      | None -> None)

let with_writer t f =
  Mutex.lock t.writer;
  match f () with
  | v ->
      Mutex.unlock t.writer;
      v
  | exception e ->
      Mutex.unlock t.writer;
      raise e

let insert t k v =
  with_writer t (fun () ->
      let h = t.hash k in
      let xt = Atomic.get t.active in
      let slot = xt.buckets.(h land (xt.size - 1)) in
      match search t ~side:xt.side h k (Atomic.get slot) with
      | Some n -> Atomic.set n.value v
      | None ->
          let nexts = [| Atomic.make XNull; Atomic.make XNull |] in
          Atomic.set nexts.(xt.side) (Atomic.get slot);
          let node = { key = k; hash = h; value = Atomic.make v; nexts } in
          Rcu.publish slot (XNode node);
          Atomic.incr t.count)

let remove t k =
  with_writer t (fun () ->
      let h = t.hash k in
      let xt = Atomic.get t.active in
      let side = xt.side in
      let rec unlink prev_link =
        match Atomic.get prev_link with
        | XNull -> false
        | XNode n ->
            if n.hash = h && t.equal n.key k then begin
              Rcu.publish prev_link (Atomic.get n.nexts.(side));
              Atomic.decr t.count;
              true
            end
            else unlink n.nexts.(side)
      in
      unlink xt.buckets.(h land (xt.size - 1)))

(* Build the complete alternate linkage on the inactive side, flip, wait one
   grace period so stragglers on the old side drain before the next resize
   may reuse those pointers. *)
let resize t new_size =
  let new_size = Rp_hashes.Size.next_power_of_two (max 1 new_size) in
  with_writer t (fun () ->
      let old = Atomic.get t.active in
      if old.size <> new_size then begin
        let fresh = make_xtable ~size:new_size ~side:(1 - old.side) in
        let relink (n : _ xnode) =
          let slot = fresh.buckets.(n.hash land (new_size - 1)) in
          Atomic.set n.nexts.(fresh.side) (Atomic.get slot);
          Atomic.set slot (XNode n)
        in
        Array.iter
          (fun slot ->
            let rec walk = function
              | XNull -> ()
              | XNode n ->
                  (* read the old-side next before relinking *)
                  let next = Atomic.get n.nexts.(old.side) in
                  relink n;
                  walk next
            in
            walk (Atomic.get slot))
          old.buckets;
        Rcu.publish t.active fresh;
        Rcu.synchronize t.rcu
      end)

let size t = (Atomic.get t.active).size
let length t = Atomic.get t.count
let active_side t = (Atomic.get t.active).side
let reader_exit _ = ()
