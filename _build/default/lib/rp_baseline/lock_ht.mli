(** Global-lock hash table: every operation, readers included, takes one
    mutex — stock memcached's cache_lock discipline. The floor every other
    algorithm is compared against. *)

include Table_intf.TABLE

val with_lock : ('k, 'v) t -> (unit -> 'a) -> 'a
(** Run a compound operation under the table's global lock (the memcached
    slow path uses this for eviction + insert sequences). *)

val unsafe_find : ('k, 'v) t -> 'k -> 'v option
(** Lookup without taking the lock; only valid inside {!with_lock}. *)

val unsafe_insert : ('k, 'v) t -> 'k -> 'v -> unit
val unsafe_remove : ('k, 'v) t -> 'k -> bool

val unsafe_iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
(** Iterate without the lock; only valid inside {!with_lock}. *)
