type ('k, 'v) t = { table : ('k, 'v) Chained.t; lock : Mutex.t }

let name = "lock"

let create ~hash ~equal ~size () =
  { table = Chained.create ~hash ~equal ~size (); lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let find t k = with_lock t (fun () -> Chained.find t.table k)
let insert t k v = with_lock t (fun () -> Chained.insert t.table k v)
let remove t k = with_lock t (fun () -> Chained.remove t.table k)
let resize t n = with_lock t (fun () -> Chained.resize t.table n)
let size t = with_lock t (fun () -> Chained.size t.table)
let length t = with_lock t (fun () -> Chained.length t.table)
let unsafe_find t k = Chained.find t.table k
let unsafe_insert t k v = Chained.insert t.table k v
let unsafe_remove t k = Chained.remove t.table k
let unsafe_iter t ~f = Chained.iter t.table ~f
let reader_exit _ = ()
