type ('k, 'v) table = {
  size : int;
  buckets : ('k * int * 'v) list Atomic.t array;
      (* immutable per-bucket lists, swapped atomically: readers snapshot a
         bucket with one load *)
}

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  seq : Rp_sync.Seqlock.t;
  cur : ('k, 'v) table Atomic.t;
  old : ('k, 'v) table option Atomic.t;
  writer : Mutex.t;
  count : int Atomic.t;
  retries : int Atomic.t;
}

let name = "ddds"

let make_table size =
  { size; buckets = Array.init size (fun _ -> Atomic.make []) }

let create ~hash ~equal ~size () =
  let size = Rp_hashes.Size.next_power_of_two (max 1 size) in
  {
    hash;
    equal;
    seq = Rp_sync.Seqlock.create ();
    cur = Atomic.make (make_table size);
    old = Atomic.make None;
    writer = Mutex.create ();
    count = Atomic.make 0;
    retries = Atomic.make 0;
  }

let bucket_list table h =
  Atomic.get table.buckets.(h land (table.size - 1))

let rec search t h k = function
  | [] -> None
  | (k', h', v) :: rest ->
      if h' = h && t.equal k' k then Some v else search t h k rest

(* Reader protocol: snapshot the seqlock, probe the current table, then the
   old table if a resize is in flight, and retry when a migration step
   overlapped. *)
let find t k =
  let h = t.hash k in
  let rec attempt () =
    let snap = Rp_sync.Seqlock.read_begin t.seq in
    let cur = Atomic.get t.cur in
    let result =
      match search t h k (bucket_list cur h) with
      | Some _ as r -> r
      | None -> (
          match Atomic.get t.old with
          | Some old -> search t h k (bucket_list old h)
          | None -> None)
    in
    if Rp_sync.Seqlock.read_validate t.seq snap then result
    else begin
      Atomic.incr t.retries;
      attempt ()
    end
  in
  attempt ()

let with_writer t f =
  Mutex.lock t.writer;
  match f () with
  | v ->
      Mutex.unlock t.writer;
      v
  | exception e ->
      Mutex.unlock t.writer;
      raise e

let bucket_remove t h k list =
  let removed = ref false in
  let rest =
    List.filter
      (fun (k', h', _) ->
        if (not !removed) && h' = h && t.equal k' k then begin
          removed := true;
          false
        end
        else true)
      list
  in
  (!removed, rest)

(* Updates go to the current table; during a resize the key must also be
   scrubbed from the old table so readers can't resurrect stale values. *)
let insert t k v =
  with_writer t (fun () ->
      let h = t.hash k in
      (match Atomic.get t.old with
      | Some old ->
          let slot = old.buckets.(h land (old.size - 1)) in
          let removed, rest = bucket_remove t h k (Atomic.get slot) in
          if removed then begin
            Atomic.set slot rest;
            Atomic.decr t.count
          end
      | None -> ());
      let cur = Atomic.get t.cur in
      let slot = cur.buckets.(h land (cur.size - 1)) in
      let removed, rest = bucket_remove t h k (Atomic.get slot) in
      Atomic.set slot ((k, h, v) :: rest);
      if not removed then Atomic.incr t.count)

let remove t k =
  with_writer t (fun () ->
      let h = t.hash k in
      let remove_from table =
        let slot = table.buckets.(h land (table.size - 1)) in
        let removed, rest = bucket_remove t h k (Atomic.get slot) in
        if removed then begin
          Atomic.set slot rest;
          Atomic.decr t.count
        end;
        removed
      in
      let in_cur = remove_from (Atomic.get t.cur) in
      let in_old =
        match Atomic.get t.old with Some old -> remove_from old | None -> false
      in
      in_cur || in_old)

(* Resize: install an empty table of the target size as current, demote the
   live one to old, then migrate bucket by bucket. Each migration step is a
   seqlock write section, so overlapping readers retry (the "readers wait
   out resizes" cost the talk describes). *)
let resize t new_size =
  let new_size = Rp_hashes.Size.next_power_of_two (max 1 new_size) in
  Mutex.lock t.writer;
  let old = Atomic.get t.cur in
  if old.size = new_size then Mutex.unlock t.writer
  else begin
    let fresh = make_table new_size in
    Rp_sync.Seqlock.write_begin t.seq;
    Atomic.set t.old (Some old);
    Atomic.set t.cur fresh;
    Rp_sync.Seqlock.write_end t.seq;
    for b = 0 to old.size - 1 do
      Rp_sync.Seqlock.write_begin t.seq;
      let entries = Atomic.get old.buckets.(b) in
      Atomic.set old.buckets.(b) [];
      List.iter
        (fun ((_, h, _) as e) ->
          let slot = fresh.buckets.(h land (new_size - 1)) in
          Atomic.set slot (e :: Atomic.get slot))
        entries;
      Rp_sync.Seqlock.write_end t.seq
    done;
    Rp_sync.Seqlock.write_begin t.seq;
    Atomic.set t.old None;
    Rp_sync.Seqlock.write_end t.seq;
    Mutex.unlock t.writer
  end

let size t = (Atomic.get t.cur).size
let length t = Atomic.get t.count
let resizing t = Option.is_some (Atomic.get t.old)
let reader_retries t = Atomic.get t.retries
let reader_exit _ = ()
