type ('k, 'v) entry = { key : 'k; hash : int; mutable value : 'v }

type ('k, 'v) t = {
  hash : 'k -> int;
  equal : 'k -> 'k -> bool;
  mutable buckets : ('k, 'v) entry list array;
  mutable count : int;
}

let create ~hash ~equal ~size () =
  let size = Rp_hashes.Size.next_power_of_two (max 1 size) in
  { hash; equal; buckets = Array.make size []; count = 0 }

let bucket t hash = hash land (Array.length t.buckets - 1)

let find t k =
  let h = t.hash k in
  let rec search : _ entry list -> _ = function
    | [] -> None
    | e :: rest ->
        if e.hash = h && t.equal e.key k then Some e.value else search rest
  in
  search t.buckets.(bucket t h)

let insert t k v =
  let h = t.hash k in
  let b = bucket t h in
  let rec search : _ entry list -> _ = function
    | [] -> None
    | e :: rest -> if e.hash = h && t.equal e.key k then Some e else search rest
  in
  match search t.buckets.(b) with
  | Some e -> e.value <- v
  | None ->
      t.buckets.(b) <- { key = k; hash = h; value = v } :: t.buckets.(b);
      t.count <- t.count + 1

let remove t k =
  let h = t.hash k in
  let b = bucket t h in
  let removed = ref false in
  let rec drop : _ entry list -> _ = function
    | [] -> []
    | e :: rest ->
        if (not !removed) && e.hash = h && t.equal e.key k then begin
          removed := true;
          rest
        end
        else e :: drop rest
  in
  t.buckets.(b) <- drop t.buckets.(b);
  if !removed then t.count <- t.count - 1;
  !removed

let resize t new_size =
  let new_size = Rp_hashes.Size.next_power_of_two (max 1 new_size) in
  if new_size <> Array.length t.buckets then begin
    let fresh = Array.make new_size [] in
    Array.iter
      (List.iter (fun (e : _ entry) ->
           let b = e.hash land (new_size - 1) in
           fresh.(b) <- e :: fresh.(b)))
      t.buckets;
    t.buckets <- fresh
  end

let size t = Array.length t.buckets
let length t = t.count

let iter t ~f =
  Array.iter (List.iter (fun e -> f e.key e.value)) t.buckets
