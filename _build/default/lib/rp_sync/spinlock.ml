type t = bool Atomic.t

let create () = Atomic.make false
let try_acquire t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let acquire t =
  let backoff = Backoff.create () in
  let rec loop () =
    if not (try_acquire t) then begin
      Backoff.once backoff;
      loop ()
    end
  in
  loop ()

let release t = Atomic.set t false
let is_locked t = Atomic.get t

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
