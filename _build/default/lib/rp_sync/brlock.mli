(** Big-reader lock: per-slot reader counters.

    Readers lock only their own slot (no shared cache line between readers),
    so read-side cost is one uncontended RMW. Writers must acquire every
    slot, making writes expensive — the classic read-mostly trade-off, and a
    useful comparison point between plain rwlock and RP. *)

type t

val create : ?slots:int -> unit -> t
(** [create ~slots ()] builds a brlock with [slots] reader slots (default
    16). A reader hashes its domain id onto a slot. *)

val read_lock : t -> int
(** Enter a read-side critical section; returns the slot index that must be
    passed to {!read_unlock}. *)

val read_unlock : t -> int -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val with_read : t -> (unit -> 'a) -> 'a
val with_write : t -> (unit -> 'a) -> 'a

val slots : t -> int
(** Number of reader slots. *)
