(* Spinning variant: a single atomic word.
   - bit 0 (WRITER): a writer holds the lock.
   - bit 1 (INTENT): a writer is waiting; readers must hold back.
   - bits 2..: count of active readers.
   Readers fetch-and-add READER_UNIT and back out if a writer bit was set.
   This costs two RMWs per read-side critical section, matching the cost
   structure the paper measures for rwlock. *)

let writer_bit = 1
let intent_bit = 2
let reader_unit = 4

type spin = { state : int Atomic.t }

type blocking = {
  mutex : Mutex.t;
  can_read : Condition.t;
  can_write : Condition.t;
  (* active readers; -1 encodes an active writer *)
  mutable balance : int;
  mutable waiting_writers : int;
}

type t = Spin of spin | Blocking of blocking

let create () = Spin { state = Atomic.make 0 }

let create_blocking () =
  Blocking
    {
      mutex = Mutex.create ();
      can_read = Condition.create ();
      can_write = Condition.create ();
      balance = 0;
      waiting_writers = 0;
    }

(* --- spinning variant --- *)

let spin_read_lock s =
  let backoff = Backoff.create () in
  let rec loop () =
    let prev = Atomic.fetch_and_add s.state reader_unit in
    if prev land (writer_bit lor intent_bit) <> 0 then begin
      (* A writer holds or wants the lock: back out and retry. *)
      ignore (Atomic.fetch_and_add s.state (-reader_unit));
      while Atomic.get s.state land (writer_bit lor intent_bit) <> 0 do
        Backoff.once backoff
      done;
      loop ()
    end
  in
  loop ()

let spin_try_read_lock s =
  let prev = Atomic.fetch_and_add s.state reader_unit in
  if prev land (writer_bit lor intent_bit) <> 0 then begin
    ignore (Atomic.fetch_and_add s.state (-reader_unit));
    false
  end
  else true

let spin_read_unlock s = ignore (Atomic.fetch_and_add s.state (-reader_unit))

let spin_write_lock s =
  let backoff = Backoff.create () in
  (* Announce intent so readers drain, then swap intent for ownership. *)
  let rec announce () =
    let cur = Atomic.get s.state in
    if cur land intent_bit <> 0 then begin
      (* Another writer is already waiting; wait for a clean state. *)
      Backoff.once backoff;
      announce ()
    end
    else if not (Atomic.compare_and_set s.state cur (cur lor intent_bit)) then
      announce ()
  in
  announce ();
  Backoff.reset backoff;
  let rec claim () =
    let cur = Atomic.get s.state in
    if cur = intent_bit then begin
      if not (Atomic.compare_and_set s.state intent_bit writer_bit) then
        claim ()
    end
    else begin
      Backoff.once backoff;
      claim ()
    end
  in
  claim ()

let spin_try_write_lock s = Atomic.compare_and_set s.state 0 writer_bit

let spin_write_unlock s =
  ignore (Atomic.fetch_and_add s.state (-writer_bit))

(* --- blocking variant --- *)

let blk_read_lock b =
  Mutex.lock b.mutex;
  while b.balance < 0 || b.waiting_writers > 0 do
    Condition.wait b.can_read b.mutex
  done;
  b.balance <- b.balance + 1;
  Mutex.unlock b.mutex

let blk_try_read_lock b =
  Mutex.lock b.mutex;
  let ok = b.balance >= 0 && b.waiting_writers = 0 in
  if ok then b.balance <- b.balance + 1;
  Mutex.unlock b.mutex;
  ok

let blk_read_unlock b =
  Mutex.lock b.mutex;
  b.balance <- b.balance - 1;
  if b.balance = 0 then Condition.signal b.can_write;
  Mutex.unlock b.mutex

let blk_write_lock b =
  Mutex.lock b.mutex;
  b.waiting_writers <- b.waiting_writers + 1;
  while b.balance <> 0 do
    Condition.wait b.can_write b.mutex
  done;
  b.waiting_writers <- b.waiting_writers - 1;
  b.balance <- -1;
  Mutex.unlock b.mutex

let blk_try_write_lock b =
  Mutex.lock b.mutex;
  let ok = b.balance = 0 in
  if ok then b.balance <- -1;
  Mutex.unlock b.mutex;
  ok

let blk_write_unlock b =
  Mutex.lock b.mutex;
  b.balance <- 0;
  Condition.signal b.can_write;
  Condition.broadcast b.can_read;
  Mutex.unlock b.mutex

(* --- dispatch --- *)

let read_lock = function
  | Spin s -> spin_read_lock s
  | Blocking b -> blk_read_lock b

let read_unlock = function
  | Spin s -> spin_read_unlock s
  | Blocking b -> blk_read_unlock b

let write_lock = function
  | Spin s -> spin_write_lock s
  | Blocking b -> blk_write_lock b

let write_unlock = function
  | Spin s -> spin_write_unlock s
  | Blocking b -> blk_write_unlock b

let try_read_lock = function
  | Spin s -> spin_try_read_lock s
  | Blocking b -> blk_try_read_lock b

let try_write_lock = function
  | Spin s -> spin_try_write_lock s
  | Blocking b -> blk_try_write_lock b

let readers = function
  | Spin s -> Atomic.get s.state / reader_unit
  | Blocking b -> if b.balance > 0 then b.balance else 0

let with_read t f =
  read_lock t;
  match f () with
  | v ->
      read_unlock t;
      v
  | exception e ->
      read_unlock t;
      raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
      write_unlock t;
      v
  | exception e ->
      write_unlock t;
      raise e
