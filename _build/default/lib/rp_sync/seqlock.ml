type t = int Atomic.t

let create () = Atomic.make 0
let write_begin t = ignore (Atomic.fetch_and_add t 1)
let write_end t = ignore (Atomic.fetch_and_add t 1)

let read_begin t =
  let backoff = Backoff.create () in
  let rec loop () =
    let seq = Atomic.get t in
    if seq land 1 = 1 then begin
      Backoff.once backoff;
      loop ()
    end
    else seq
  in
  loop ()

let read_validate t snap = Atomic.get t = snap

let rec read t f =
  let snap = read_begin t in
  let v = f () in
  if read_validate t snap then v else read t f

let sequence t = Atomic.get t
