lib/rp_sync/brlock.ml: Array Atomic Backoff Domain
