lib/rp_sync/seqlock.ml: Atomic Backoff
