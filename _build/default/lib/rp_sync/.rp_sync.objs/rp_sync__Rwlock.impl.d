lib/rp_sync/rwlock.ml: Atomic Backoff Condition Mutex
