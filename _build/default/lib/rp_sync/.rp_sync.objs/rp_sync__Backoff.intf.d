lib/rp_sync/backoff.mli:
