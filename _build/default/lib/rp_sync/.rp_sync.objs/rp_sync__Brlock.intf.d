lib/rp_sync/brlock.mli:
