lib/rp_sync/rwlock.mli:
