lib/rp_sync/backoff.ml: Domain
