lib/rp_sync/seqlock.mli:
