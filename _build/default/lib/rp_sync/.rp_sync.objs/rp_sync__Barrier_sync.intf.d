lib/rp_sync/barrier_sync.mli:
