lib/rp_sync/spinlock.mli:
