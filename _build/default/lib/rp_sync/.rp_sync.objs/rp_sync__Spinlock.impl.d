lib/rp_sync/spinlock.ml: Atomic Backoff
