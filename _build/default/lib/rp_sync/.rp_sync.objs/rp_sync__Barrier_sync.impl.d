lib/rp_sync/barrier_sync.ml: Atomic Backoff
