(** Reader-writer lock (the paper's baseline synchronization).

    Two implementations are provided behind one interface:

    - {!create} returns the *atomic-counter* variant: readers perform one
      fetch-and-add to enter and one to leave — exactly the two shared
      cache-line round trips the paper blames for rwlock's reader collapse.
      Writers spin for exclusivity.
    - {!create_blocking} returns a mutex + condition-variable variant that
      blocks instead of spinning; useful when critical sections are long.

    Writer preference: once a writer announces intent, new readers are held
    back, preventing writer starvation. *)

type t

val create : unit -> t
(** Spinning atomic-counter rwlock (the benchmark baseline). *)

val create_blocking : unit -> t
(** Mutex + condvar rwlock that parks threads instead of spinning. *)

val read_lock : t -> unit
val read_unlock : t -> unit
val write_lock : t -> unit
val write_unlock : t -> unit

val try_read_lock : t -> bool
(** Single attempt to enter as reader. *)

val try_write_lock : t -> bool
(** Single attempt to enter as writer. *)

val with_read : t -> (unit -> 'a) -> 'a
(** Run a function holding the read lock, releasing on exception. *)

val with_write : t -> (unit -> 'a) -> 'a
(** Run a function holding the write lock, releasing on exception. *)

val readers : t -> int
(** Snapshot of the active reader count (tests/stats only). *)
