(** Test-and-test-and-set spinlock with exponential backoff.

    Used where critical sections are tiny and blocking in the scheduler would
    dominate. Not reentrant. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Spin (with backoff) until the lock is obtained. *)

val try_acquire : t -> bool
(** Single attempt; [true] on success. *)

val release : t -> unit
(** Release the lock. The caller must hold it. *)

val is_locked : t -> bool
(** Observational snapshot, for tests and stats only. *)

val with_lock : t -> (unit -> 'a) -> 'a
(** [with_lock t f] runs [f ()] holding the lock, releasing on exception. *)
