(** Reusable sense-reversing barrier for coordinated domain start/stop.

    The benchmark harness spawns N worker domains that must begin their
    measured loops simultaneously; each calls {!await} and proceeds only once
    all N parties have arrived. The barrier is reusable across phases. *)

type t

val create : int -> t
(** [create parties] builds a barrier for [parties] participants. Raises
    [Invalid_argument] if [parties < 1]. *)

val await : t -> unit
(** Block (spin with backoff) until all parties have arrived at this phase. *)

val parties : t -> int
