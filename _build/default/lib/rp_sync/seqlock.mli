(** Sequence lock.

    Writers bump a sequence counter to odd on entry and even on exit; readers
    snapshot the counter before and after reading and retry if it changed or
    was odd. Used by the DDDS baseline to detect concurrent resizes. *)

type t

val create : unit -> t

val write_begin : t -> unit
(** Enter the write side (counter becomes odd). Writers must already be
    mutually excluded by other means. *)

val write_end : t -> unit
(** Leave the write side (counter becomes even). *)

val read_begin : t -> int
(** Snapshot for a read attempt: spins until the counter is even and returns
    it. *)

val read_validate : t -> int -> bool
(** [read_validate t snap] is [true] iff no write overlapped the read section
    that began with [snap]. *)

val read : t -> (unit -> 'a) -> 'a
(** [read t f] runs [f] until a consistent (unconcurrent-with-write) run
    succeeds, and returns its result. *)

val sequence : t -> int
(** Raw counter value (tests only). *)
