type t = { parties : int; arrived : int Atomic.t; phase : int Atomic.t }

let create parties =
  if parties < 1 then invalid_arg "Barrier_sync.create: parties < 1";
  { parties; arrived = Atomic.make 0; phase = Atomic.make 0 }

let parties t = t.parties

let await t =
  let my_phase = Atomic.get t.phase in
  let n = 1 + Atomic.fetch_and_add t.arrived 1 in
  if n = t.parties then begin
    (* Last arrival: reset the count and release everyone. *)
    Atomic.set t.arrived 0;
    ignore (Atomic.fetch_and_add t.phase 1)
  end
  else begin
    let backoff = Backoff.create ~max_wait:64 () in
    while Atomic.get t.phase = my_phase do
      Backoff.once backoff
    done
  end
