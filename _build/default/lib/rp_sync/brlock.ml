(* Each slot is a small rwlock-like counter: readers increment their slot if
   no writer is present; the writer sets a global gate then drains slots in
   order. Slot records are separate heap blocks, so reader counters do not
   share cache lines. *)

type t = { gate : bool Atomic.t; counts : int Atomic.t array }

let create ?(slots = 16) () =
  if slots < 1 then invalid_arg "Brlock.create: slots < 1";
  { gate = Atomic.make false; counts = Array.init slots (fun _ -> Atomic.make 0) }

let slots t = Array.length t.counts

let slot_of_domain t =
  (Domain.self () :> int) mod Array.length t.counts

let read_lock t =
  let slot = slot_of_domain t in
  let counter = t.counts.(slot) in
  let backoff = Backoff.create () in
  let rec loop () =
    ignore (Atomic.fetch_and_add counter 1);
    if Atomic.get t.gate then begin
      ignore (Atomic.fetch_and_add counter (-1));
      while Atomic.get t.gate do
        Backoff.once backoff
      done;
      loop ()
    end
  in
  loop ();
  slot

let read_unlock t slot = ignore (Atomic.fetch_and_add t.counts.(slot) (-1))

let write_lock t =
  let backoff = Backoff.create () in
  while not (Atomic.compare_and_set t.gate false true) do
    Backoff.once backoff
  done;
  Array.iter
    (fun counter ->
      Backoff.reset backoff;
      while Atomic.get counter <> 0 do
        Backoff.once backoff
      done)
    t.counts

let write_unlock t = Atomic.set t.gate false

let with_read t f =
  let slot = read_lock t in
  match f () with
  | v ->
      read_unlock t slot;
      v
  | exception e ->
      read_unlock t slot;
      raise e

let with_write t f =
  write_lock t;
  match f () with
  | v ->
      write_unlock t;
      v
  | exception e ->
      write_unlock t;
      raise e
