(** Exponential backoff for spin loops.

    Repeated failed attempts on a contended atomic should back off to reduce
    cache-line ping-pong. A [t] value tracks the current backoff level; each
    {!once} spins for a bounded, growing number of [Domain.cpu_relax] calls. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] returns a fresh backoff state. [min_wait] (default 1) and
    [max_wait] (default 1024) bound the number of relax iterations per
    {!once} call. Raises [Invalid_argument] if [min_wait < 1] or
    [max_wait < min_wait]. *)

val once : t -> unit
(** Spin for the current wait amount, then double it (saturating at
    [max_wait]). *)

val reset : t -> unit
(** Reset the wait amount back to [min_wait]. *)

val current : t -> int
(** Current wait amount in relax iterations (useful for tests). *)
