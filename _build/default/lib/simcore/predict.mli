(** Predicted multi-thread curves for each paper figure, given single-thread
    rates calibrated on the real implementations. *)

val default_threads : int list
(** The paper's x axis: 1, 2, 4, 8, 16. *)

val mc_processes : int list
(** The memcached figure's x axis: 1 .. 12. *)

val fig1 :
  ?threads:int list ->
  ?lambda_rp_memb:float ->
  lambda_rp:float ->
  lambda_ddds:float ->
  lambda_rwlock:float ->
  unit ->
  Rp_harness.Series.t list
(** Fixed-size baseline: RP vs DDDS vs rwlock; optionally also the
    memb-flavoured RP curve (paper's RP = kernel RCU = the QSBR-like one). *)

val fig2 :
  ?threads:int list ->
  lambda_rp:float ->
  lambda_ddds:float ->
  unit ->
  Rp_harness.Series.t list
(** Continuous resizing: RP vs DDDS. *)

val fig3 :
  ?threads:int list ->
  lambda_8k:float ->
  lambda_16k:float ->
  lambda_resize:float ->
  unit ->
  Rp_harness.Series.t list
(** RP: fixed 8k vs fixed 16k vs continuous resize. *)

val fig4 :
  ?threads:int list ->
  lambda_8k:float ->
  lambda_16k:float ->
  lambda_resize:float ->
  unit ->
  Rp_harness.Series.t list
(** DDDS: fixed 8k vs fixed 16k vs continuous resize. *)

val fig5 :
  ?processes:int list ->
  lambda_get_rp:float ->
  lambda_get_lock:float ->
  lambda_set_lock:float ->
  lambda_set_rp:float ->
  unit ->
  Rp_harness.Series.t list
(** memcached: RP GET, default GET, default SET, RP SET. *)
