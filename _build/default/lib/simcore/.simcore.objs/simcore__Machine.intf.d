lib/simcore/machine.mli:
