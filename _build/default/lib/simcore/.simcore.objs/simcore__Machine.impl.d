lib/simcore/machine.ml: Float
