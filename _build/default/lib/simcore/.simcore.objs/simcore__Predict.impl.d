lib/simcore/predict.ml: Costmodel List Rp_harness
