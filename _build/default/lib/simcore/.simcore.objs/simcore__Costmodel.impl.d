lib/simcore/costmodel.ml: List Machine Rp_harness
