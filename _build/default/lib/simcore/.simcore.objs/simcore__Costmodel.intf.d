lib/simcore/costmodel.mli: Rp_harness
