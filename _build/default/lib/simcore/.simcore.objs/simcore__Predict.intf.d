lib/simcore/predict.mli: Rp_harness
