(** Multicore machine cost constants and derivation helpers.

    This container exposes a single core, so the paper's 1–16-thread scaling
    curves cannot be observed directly. [Simcore] substitutes an analytical
    model of a 16-way cache-coherent machine. The constants below are
    textbook orders of magnitude for a mid-2000s–2010s x86 SMP (the paper's
    testbed class); the model's {e shape} conclusions are insensitive to
    their exact values because they enter as ratios. *)

type t = {
  cacheline_transfer_ns : float;
      (** cost of moving a cache line between cores (invalidate + fetch) *)
  local_rmw_ns : float;  (** atomic RMW on an already-owned line *)
  base_lookup_ns : float;
      (** hash + bucket fetch + short chain walk, everything cached *)
}

val default : t
(** 60 ns line transfer, 10 ns owned-line RMW, 80 ns base lookup. *)

val serial_fraction : t -> shared_rmws_per_op:int -> op_ns:float -> float
(** Fraction of an operation spent in inherently serialized cache-line
    ownership transfers: [shared_rmws_per_op * cacheline_transfer_ns /
    op_ns], capped at 1. This is the USL sigma for lock-based readers. *)

val coherence_coefficient : t -> invalidations_per_op:float -> op_ns:float -> float
(** USL kappa: pairwise-growing coherence traffic per op. *)
