let default_threads = [ 1; 2; 4; 8; 16 ]
let mc_processes = List.init 12 (fun i -> i + 1)

let curves threads profiles =
  List.map (fun p -> Costmodel.series p ~threads) profiles

let relabel label (s : Rp_harness.Series.t) = { s with label }

let fig1 ?(threads = default_threads) ?lambda_rp_memb ~lambda_rp ~lambda_ddds
    ~lambda_rwlock () =
  let memb_curve =
    match lambda_rp_memb with
    | None -> []
    | Some lambda ->
        (* memb readers store only to their own reader slot: linear scaling
           like RP proper, at the flavour's lower single-thread rate. *)
        [ relabel "rp-memb" (Costmodel.series (Costmodel.rp_fixed ~lambda) ~threads) ]
  in
  curves threads
    [
      Costmodel.rp_fixed ~lambda:lambda_rp;
      Costmodel.ddds_fixed ~lambda:lambda_ddds;
      Costmodel.rwlock ~lambda:lambda_rwlock;
    ]
  @ memb_curve

let fig2 ?(threads = default_threads) ~lambda_rp ~lambda_ddds () =
  curves threads
    [
      Costmodel.rp_resizing ~lambda:lambda_rp;
      Costmodel.ddds_resizing ~lambda:lambda_ddds;
    ]

let fig3 ?(threads = default_threads) ~lambda_8k ~lambda_16k ~lambda_resize () =
  [
    relabel "8k" (Costmodel.series (Costmodel.rp_fixed ~lambda:lambda_8k) ~threads);
    relabel "16k" (Costmodel.series (Costmodel.rp_fixed ~lambda:lambda_16k) ~threads);
    relabel "resize"
      (Costmodel.series (Costmodel.rp_resizing ~lambda:lambda_resize) ~threads);
  ]

let fig4 ?(threads = default_threads) ~lambda_8k ~lambda_16k ~lambda_resize () =
  [
    relabel "8k" (Costmodel.series (Costmodel.ddds_fixed ~lambda:lambda_8k) ~threads);
    relabel "16k"
      (Costmodel.series (Costmodel.ddds_fixed ~lambda:lambda_16k) ~threads);
    relabel "resize"
      (Costmodel.series (Costmodel.ddds_resizing ~lambda:lambda_resize) ~threads);
  ]

let fig5 ?(processes = mc_processes) ~lambda_get_rp ~lambda_get_lock
    ~lambda_set_lock ~lambda_set_rp () =
  curves processes
    [
      Costmodel.memcached_get_rp ~lambda:lambda_get_rp;
      Costmodel.memcached_get_lock ~lambda:lambda_get_lock;
      Costmodel.memcached_set_lock ~lambda:lambda_set_lock;
      Costmodel.memcached_set_rp ~lambda:lambda_set_rp;
    ]
