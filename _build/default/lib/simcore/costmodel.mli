(** Analytical throughput model (Universal Scalability Law form).

    Throughput at [n] threads:
    {v X(n) = lambda * n / (1 + sigma*(n-1) + kappa*n*(n-1)) v}

    - [lambda]: single-thread rate (ops/s). Calibrated against the {e real}
      single-threaded measurement of each implementation on this host, so
      absolute levels are grounded, not invented.
    - [sigma]: serial fraction — time an op spends in work that only one
      thread can do at once (lock word cache-line ownership, seqlock retry
      windows). Derived from each algorithm's count of shared-line RMWs via
      {!Machine.serial_fraction}.
    - [kappa]: coherence coefficient — pairwise-growing cache traffic.

    The derivations per algorithm live in {!profiles}; EXPERIMENTS.md
    records the resulting curves next to the paper's. *)

type profile = {
  name : string;
  lambda : float;  (** ops/s at one thread *)
  sigma : float;
  kappa : float;
}

val throughput : profile -> threads:int -> float

val series : profile -> threads:int list -> Rp_harness.Series.t
(** Curve in ops/s for the given thread counts. *)

val with_lambda : profile -> float -> profile
(** Replace the single-thread rate (calibration). *)

(** {1 Algorithm profiles}

    Each takes the calibrated single-thread rate [lambda] measured on the
    real implementation. *)

val rp_fixed : lambda:float -> profile
(** RP lookups, no resize: no shared stores on the read path — sigma = 0,
    kappa = 0 (readers touch only their own reader-slot line). *)

val rp_resizing : lambda:float -> profile
(** RP lookups under continuous resize: readers stay wait-free; they only
    see transiently longer (zipped/linked) chains, folded into lambda by
    calibration; residual kappa reflects churn-induced extra misses. *)

val ddds_fixed : lambda:float -> profile
(** DDDS lookups, no resize: generation check + second-table test cost sits
    in lambda; tiny kappa for the shared generation word. *)

val ddds_resizing : lambda:float -> profile
(** DDDS under continuous resize: retries serialize readers against
    migration steps — large sigma, visible kappa. *)

val rwlock : lambda:float -> profile
(** rwlock lookups: two RMWs on one shared cache line per lookup; the line
    ping-pongs — sigma near saturation plus strong kappa, producing the
    paper's reader collapse. *)

val memcached_get_lock : lambda:float -> profile
(** Stock memcached GET: global lock around lookup + LRU bump. *)

val memcached_get_rp : lambda:float -> profile
(** RP memcached GET fast path: wait-free lookup, value copied inside the
    reader section. *)

val memcached_set_lock : lambda:float -> profile
(** Stock memcached SET: fully serialized store update. *)

val memcached_set_rp : lambda:float -> profile
(** RP memcached SET: same serialization plus publication/deferral
    overhead — slightly below stock, as the paper reports. *)
