type t = {
  cacheline_transfer_ns : float;
  local_rmw_ns : float;
  base_lookup_ns : float;
}

let default =
  { cacheline_transfer_ns = 60.0; local_rmw_ns = 10.0; base_lookup_ns = 80.0 }

let serial_fraction t ~shared_rmws_per_op ~op_ns =
  if op_ns <= 0.0 then invalid_arg "Machine.serial_fraction: op_ns <= 0";
  Float.min 1.0
    (float_of_int shared_rmws_per_op *. t.cacheline_transfer_ns /. op_ns)

let coherence_coefficient t ~invalidations_per_op ~op_ns =
  if op_ns <= 0.0 then invalid_arg "Machine.coherence_coefficient: op_ns <= 0";
  invalidations_per_op *. t.cacheline_transfer_ns /. op_ns /. 100.0
