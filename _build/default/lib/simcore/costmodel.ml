type profile = { name : string; lambda : float; sigma : float; kappa : float }

let throughput p ~threads =
  if threads < 1 then invalid_arg "Costmodel.throughput: threads < 1";
  let n = float_of_int threads in
  p.lambda *. n /. (1.0 +. (p.sigma *. (n -. 1.0)) +. (p.kappa *. n *. (n -. 1.0)))

let series p ~threads =
  Rp_harness.Series.make ~label:p.name
    ~points:(List.map (fun n -> (n, throughput p ~threads:n)) threads)

let with_lambda p lambda = { p with lambda }

let m = Machine.default

(* Read-path op times used for sigma derivations (ns). *)
let rwlock_op_ns =
  (* base work + 2 uncontended RMWs; contention costs enter via sigma/kappa *)
  m.base_lookup_ns +. (2.0 *. m.local_rmw_ns)

let rp_fixed ~lambda = { name = "rp"; lambda; sigma = 0.0; kappa = 0.0 }

let rp_resizing ~lambda =
  { name = "rp(resize)"; lambda; sigma = 0.0; kappa = 0.0003 }

let ddds_fixed ~lambda = { name = "ddds"; lambda; sigma = 0.02; kappa = 0.0008 }

let ddds_resizing ~lambda =
  { name = "ddds(resize)"; lambda; sigma = 0.30; kappa = 0.012 }

let rwlock ~lambda =
  {
    name = "rwlock";
    lambda;
    (* Both lock-word RMWs need exclusive ownership of the same line. *)
    sigma = Machine.serial_fraction m ~shared_rmws_per_op:2 ~op_ns:rwlock_op_ns;
    kappa = Machine.coherence_coefficient m ~invalidations_per_op:2.0 ~op_ns:rwlock_op_ns;
  }

(* memcached request ~ 2 us of protocol work around the table access; the
   lock discipline serializes lookup + LRU bump (~15% of the request). *)
let memcached_get_lock ~lambda =
  { name = "default GET"; lambda; sigma = 0.45; kappa = 0.008 }

let memcached_get_rp ~lambda =
  { name = "RP GET"; lambda; sigma = 0.015; kappa = 0.0005 }

let memcached_set_lock ~lambda =
  { name = "default SET"; lambda; sigma = 0.85; kappa = 0.01 }

let memcached_set_rp ~lambda =
  { name = "RP SET"; lambda; sigma = 0.88; kappa = 0.012 }
