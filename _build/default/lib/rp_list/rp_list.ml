type ('k, 'v) node = {
  key : 'k;
  hash : int;
  value : 'v Atomic.t;
  next : ('k, 'v) link Atomic.t;
  reclaimed : bool Atomic.t;
}

and ('k, 'v) link = Null | Node of ('k, 'v) node

let make_node ?(hash = 0) ~key ~value ~next () =
  {
    key;
    hash;
    value = Atomic.make value;
    next = Atomic.make next;
    reclaimed = Atomic.make false;
  }

let rec iter_links ~f = function
  | Null -> ()
  | Node n ->
      f n;
      iter_links ~f (Rcu.dereference n.next)

let rec find_link ~pred = function
  | Null -> None
  | Node n -> if pred n then Some n else find_link ~pred (Rcu.dereference n.next)

let length_link link =
  let count = ref 0 in
  iter_links ~f:(fun _ -> incr count) link;
  !count

type ('k, 'v) t = {
  rcu : Rcu.t;
  equal : 'k -> 'k -> bool;
  head : ('k, 'v) link Atomic.t;
  writer : Mutex.t;
}

let create ~rcu ~equal () =
  { rcu; equal; head = Atomic.make Null; writer = Mutex.create () }

let rcu t = t.rcu

let find t k =
  Rcu.with_read_current t.rcu (fun () ->
      match find_link ~pred:(fun n -> t.equal n.key k) (Rcu.dereference t.head) with
      | Some n -> Some (Atomic.get n.value)
      | None -> None)

let mem t k = Option.is_some (find t k)

let insert t k v =
  Mutex.lock t.writer;
  let node = make_node ~key:k ~value:v ~next:(Atomic.get t.head) () in
  (* Publication: the node is fully initialised before it becomes
     reachable. *)
  Rcu.publish t.head (Node node);
  Mutex.unlock t.writer

let replace t k v =
  Mutex.lock t.writer;
  let found =
    match find_link ~pred:(fun n -> t.equal n.key k) (Atomic.get t.head) with
    | Some n ->
        Atomic.set n.value v;
        true
    | None ->
        let node = make_node ~key:k ~value:v ~next:(Atomic.get t.head) () in
        Rcu.publish t.head (Node node);
        false
  in
  Mutex.unlock t.writer;
  found

(* Unlink the first node matching the key; return it for reclamation. The
   writer mutex must be held. *)
let unlink_first t k =
  let rec loop prev_link =
    match Atomic.get prev_link with
    | Null -> None
    | Node n ->
        if t.equal n.key k then begin
          Rcu.publish prev_link (Atomic.get n.next);
          Some n
        end
        else loop n.next
  in
  loop t.head

let remove t k =
  Mutex.lock t.writer;
  let unlinked = unlink_first t k in
  Mutex.unlock t.writer;
  match unlinked with
  | None -> false
  | Some n ->
      (* Pre-existing readers may still hold a reference to [n]; only after
         a grace period may it be treated as reclaimed. *)
      Rcu.synchronize t.rcu;
      Atomic.set n.reclaimed true;
      true

let remove_async t k =
  Mutex.lock t.writer;
  let unlinked = unlink_first t k in
  Mutex.unlock t.writer;
  match unlinked with
  | None -> false
  | Some n ->
      Rcu.call_rcu t.rcu (fun () -> Atomic.set n.reclaimed true);
      true

let length t =
  Rcu.with_read_current t.rcu (fun () -> length_link (Rcu.dereference t.head))

let to_list t =
  Rcu.with_read_current t.rcu (fun () ->
      let acc = ref [] in
      iter_links
        ~f:(fun n -> acc := (n.key, Atomic.get n.value) :: !acc)
        (Rcu.dereference t.head);
      List.rev !acc)

let iter t ~f =
  Rcu.with_read_current t.rcu (fun () ->
      iter_links ~f:(fun n -> f n.key (Atomic.get n.value)) (Rcu.dereference t.head))

let head t = t.head

let validate_no_reclaimed t =
  Rcu.with_read_current t.rcu (fun () ->
      let ok = ref true in
      iter_links
        ~f:(fun n -> if Atomic.get n.reclaimed then ok := false)
        (Rcu.dereference t.head);
      !ok)
