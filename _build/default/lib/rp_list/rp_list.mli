(** Relativistic singly-linked list.

    Readers traverse with plain atomic loads and never wait. Writers
    serialize on a per-list mutex and order their updates with publication
    and wait-for-readers, exactly as in the paper's insertion/removal
    examples:

    - {b insert}: initialise the node's [next], then publish the node by a
      single pointer store — readers either see it fully or not at all;
    - {b remove}: unlink by one pointer store (all future traversals miss the
      node), then wait for pre-existing readers before the node is considered
      reclaimable (here, before its [reclaimed] mark is set — the GC frees
      the memory, the mark lets tests assert use-after-free-freedom).

    The node representation is exposed because the relativistic hash table
    splices the same nodes between its bucket chains (shrink concatenates
    chains; expand "unzips" them). *)

type ('k, 'v) node = {
  key : 'k;
  hash : int;  (** cached key hash; 0 for standalone lists *)
  value : 'v Atomic.t;  (** in-place updatable payload *)
  next : ('k, 'v) link Atomic.t;
  reclaimed : bool Atomic.t;
      (** set after the grace period that follows unlinking; readers must
          never observe a node with this mark set *)
}

and ('k, 'v) link = Null | Node of ('k, 'v) node

val make_node : ?hash:int -> key:'k -> value:'v -> next:('k, 'v) link -> unit -> ('k, 'v) node
(** Allocate an unpublished node. *)

(** {1 Link traversal helpers (read-side)} *)

val iter_links : f:(('k, 'v) node -> unit) -> ('k, 'v) link -> unit
(** Apply [f] to every node reachable from a link. Must run inside a
    read-side critical section if the chain is shared. *)

val find_link : pred:(('k, 'v) node -> bool) -> ('k, 'v) link -> ('k, 'v) node option
(** First node satisfying [pred], or [None]. *)

val length_link : ('k, 'v) link -> int

(** {1 Standalone list} *)

type ('k, 'v) t

val create : rcu:Rcu.t -> equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
(** A list whose readers are delimited by [rcu]'s critical sections and
    whose key comparisons use [equal]. *)

val rcu : ('k, 'v) t -> Rcu.t

val find : ('k, 'v) t -> 'k -> 'v option
(** Wait-free lookup: runs inside a read-side critical section of the
    list's flavour (registered for the calling domain on first use).
    The value is copied out before the section ends. *)

val mem : ('k, 'v) t -> 'k -> bool

val insert : ('k, 'v) t -> 'k -> 'v -> unit
(** Prepend a binding (duplicates allowed; [find] returns the newest). *)

val replace : ('k, 'v) t -> 'k -> 'v -> bool
(** Update the value of an existing binding in place; [true] if found,
    otherwise the binding is inserted and the result is [false]. *)

val remove : ('k, 'v) t -> 'k -> bool
(** Unlink the first binding for the key. Waits for readers before marking
    the node reclaimed. [true] if a binding was removed. *)

val remove_async : ('k, 'v) t -> 'k -> bool
(** Like {!remove} but defers the reclamation mark through [call_rcu]
    instead of blocking for a grace period. *)

val length : ('k, 'v) t -> int
(** Number of bindings (exact under quiescence; a snapshot otherwise). *)

val to_list : ('k, 'v) t -> ('k * 'v) list
(** Snapshot of bindings in list order. *)

val iter : ('k, 'v) t -> f:('k -> 'v -> unit) -> unit
(** Iterate inside one read-side critical section. [f] must not block. *)

val head : ('k, 'v) t -> ('k, 'v) link Atomic.t
(** The head link, for white-box tests. *)

val validate_no_reclaimed : ('k, 'v) t -> bool
(** [true] iff no reachable node carries the [reclaimed] mark — the
    correctness invariant readers rely on. *)
