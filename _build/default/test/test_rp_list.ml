(* Relativistic linked list: node helpers, standalone list operations,
   reclamation marks, and reader/writer concurrency. *)

let make_list () =
  let rcu = Rcu.create () in
  Rp_list.create ~rcu ~equal:Int.equal ()

let test_empty () =
  let l = make_list () in
  Alcotest.(check (option string)) "find on empty" None (Rp_list.find l 1);
  Alcotest.(check int) "length" 0 (Rp_list.length l);
  Alcotest.(check bool) "mem" false (Rp_list.mem l 1)

let test_insert_find () =
  let l = make_list () in
  Rp_list.insert l 1 "a";
  Rp_list.insert l 2 "b";
  Rp_list.insert l 3 "c";
  Alcotest.(check (option string)) "find 1" (Some "a") (Rp_list.find l 1);
  Alcotest.(check (option string)) "find 3" (Some "c") (Rp_list.find l 3);
  Alcotest.(check (option string)) "find 9" None (Rp_list.find l 9);
  Alcotest.(check int) "length" 3 (Rp_list.length l);
  (* Insertion prepends: newest first. *)
  Alcotest.(check (list (pair int string)))
    "list order newest-first"
    [ (3, "c"); (2, "b"); (1, "a") ]
    (Rp_list.to_list l)

let test_duplicates_newest_wins () =
  let l = make_list () in
  Rp_list.insert l 5 "old";
  Rp_list.insert l 5 "new";
  Alcotest.(check (option string)) "newest" (Some "new") (Rp_list.find l 5);
  Alcotest.(check bool) "remove newest" true (Rp_list.remove l 5);
  Alcotest.(check (option string)) "old resurfaces" (Some "old") (Rp_list.find l 5)

let test_replace () =
  let l = make_list () in
  Alcotest.(check bool) "replace absent inserts" false (Rp_list.replace l 1 "x");
  Alcotest.(check bool) "replace present updates" true (Rp_list.replace l 1 "y");
  Alcotest.(check (option string)) "updated" (Some "y") (Rp_list.find l 1);
  Alcotest.(check int) "single binding" 1 (Rp_list.length l)

let test_remove_marks_reclaimed () =
  let l = make_list () in
  Rp_list.insert l 1 "a";
  Rp_list.insert l 2 "b";
  Alcotest.(check bool) "removed" true (Rp_list.remove l 1);
  Alcotest.(check bool) "absent remove fails" false (Rp_list.remove l 1);
  Alcotest.(check bool) "no reclaimed nodes reachable" true
    (Rp_list.validate_no_reclaimed l);
  Alcotest.(check int) "length" 1 (Rp_list.length l)

let test_remove_async () =
  let l = make_list () in
  Rp_list.insert l 1 "a";
  Alcotest.(check bool) "removed" true (Rp_list.remove_async l 1);
  Rcu.barrier (Rp_list.rcu l);
  Alcotest.(check (option string)) "gone" None (Rp_list.find l 1);
  Alcotest.(check bool) "chain clean" true (Rp_list.validate_no_reclaimed l)

let test_iter () =
  let l = make_list () in
  for i = 1 to 10 do
    Rp_list.insert l i (string_of_int i)
  done;
  let sum = ref 0 in
  Rp_list.iter l ~f:(fun k _ -> sum := !sum + k);
  Alcotest.(check int) "iter sum" 55 !sum

let test_link_helpers () =
  let n3 = Rp_list.make_node ~key:3 ~value:"c" ~next:Rp_list.Null () in
  let n2 = Rp_list.make_node ~key:2 ~value:"b" ~next:(Rp_list.Node n3) () in
  let n1 = Rp_list.make_node ~hash:42 ~key:1 ~value:"a" ~next:(Rp_list.Node n2) () in
  Alcotest.(check int) "length_link" 3 (Rp_list.length_link (Rp_list.Node n1));
  Alcotest.(check int) "hash recorded" 42 n1.Rp_list.hash;
  (match Rp_list.find_link ~pred:(fun n -> n.Rp_list.key = 2) (Rp_list.Node n1) with
  | Some n -> Alcotest.(check string) "found node" "b" (Atomic.get n.Rp_list.value)
  | None -> Alcotest.fail "node 2 not found");
  Alcotest.(check bool) "find_link miss" true
    (Rp_list.find_link ~pred:(fun n -> n.Rp_list.key = 9) (Rp_list.Node n1) = None);
  let visited = ref [] in
  Rp_list.iter_links ~f:(fun n -> visited := n.Rp_list.key :: !visited) (Rp_list.Node n1);
  Alcotest.(check (list int)) "iter_links order" [ 3; 2; 1 ] !visited

(* Concurrent torture: a writer churns while readers verify that resident
   keys are always visible and no reclaimed node is ever reachable. *)
let test_concurrent_readers_writer () =
  let l = make_list () in
  for i = 0 to 19 do
    Rp_list.insert l i i
  done;
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let readers =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              for k = 0 to 19 do
                match Rp_list.find l k with
                | Some v when v = k -> ()
                | Some _ | None -> Atomic.incr violations
              done
            done))
  in
  (* Writer churns keys 100.. while resident keys 0..19 stay put. *)
  for round = 0 to 200 do
    let k = 100 + (round mod 50) in
    Rp_list.insert l k k;
    ignore (Rp_list.remove_async l k)
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Rcu.barrier (Rp_list.rcu l);
  Alcotest.(check int) "resident keys always visible" 0 (Atomic.get violations);
  Alcotest.(check bool) "chain clean" true (Rp_list.validate_no_reclaimed l);
  Alcotest.(check int) "resident length" 20 (Rp_list.length l)

(* Model-based property test against an association list. *)
type op = Insert of int * int | Remove of int | Replace of int * int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun k v -> Insert (k, v)) (int_bound 20) (int_bound 100));
        (2, map (fun k -> Remove k) (int_bound 20));
        (2, map2 (fun k v -> Replace (k, v)) (int_bound 20) (int_bound 100));
      ])

let show_op = function
  | Insert (k, v) -> Printf.sprintf "Insert(%d,%d)" k v
  | Remove k -> Printf.sprintf "Remove %d" k
  | Replace (k, v) -> Printf.sprintf "Replace(%d,%d)" k v

let model_apply model = function
  | Insert (k, v) -> (k, v) :: model
  | Remove k ->
      let rec drop = function
        | [] -> []
        | (k', _) :: rest when k' = k -> rest
        | kv :: rest -> kv :: drop rest
      in
      drop model
  | Replace (k, v) ->
      (* replace updates only the newest (first) binding, or inserts *)
      if List.mem_assoc k model then begin
        let rec update = function
          | [] -> []
          | (k', _) :: rest when k' = k -> (k', v) :: rest
          | kv :: rest -> kv :: update rest
        in
        update model
      end
      else (k, v) :: model

let prop_matches_model =
  QCheck.Test.make ~name:"list matches model" ~count:300
    (QCheck.make
       ~print:(fun ops -> String.concat ";" (List.map show_op ops))
       QCheck.Gen.(list_size (int_bound 40) op_gen))
    (fun ops ->
      let l = make_list () in
      let model = List.fold_left model_apply [] ops in
      List.iter
        (function
          | Insert (k, v) -> Rp_list.insert l k v
          | Remove k -> ignore (Rp_list.remove_async l k)
          | Replace (k, v) -> ignore (Rp_list.replace l k v))
        ops;
      Rcu.barrier (Rp_list.rcu l);
      Rp_list.validate_no_reclaimed l
      && List.for_all
           (fun k -> Rp_list.find l k = List.assoc_opt k model)
           (List.init 21 Fun.id)
      && Rp_list.length l = List.length model)

let () =
  Alcotest.run "rp_list"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "insert and find" `Quick test_insert_find;
          Alcotest.test_case "duplicates newest wins" `Quick
            test_duplicates_newest_wins;
          Alcotest.test_case "replace" `Quick test_replace;
          Alcotest.test_case "iter" `Quick test_iter;
          Alcotest.test_case "link helpers" `Quick test_link_helpers;
        ] );
      ( "reclamation",
        [
          Alcotest.test_case "remove waits then marks" `Quick
            test_remove_marks_reclaimed;
          Alcotest.test_case "remove_async defers mark" `Quick test_remove_async;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "readers vs writer churn" `Quick
            test_concurrent_readers_writer;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_matches_model ]);
    ]
