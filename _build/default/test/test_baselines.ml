(* Baseline tables: every implementation behind TABLE gets the same
   functional battery plus a model-based property test; per-implementation
   specifics (DDDS retry counters, Xu side flips, fixed-table refusal)
   follow. *)

let implementations : (string * Rp_baseline.Table_intf.table) list =
  [
    ("lock", (module Rp_baseline.Lock_ht));
    ("rwlock", (module Rp_baseline.Rwlock_ht));
    ("ddds", (module Rp_baseline.Ddds_ht));
    ("xu", (module Rp_baseline.Xu_ht));
    ("rp", (module Rp_baseline.Rp_table.Resizable));
    ("rp-qsbr", (module Rp_baseline.Rp_table.Qsbr));
  ]

let battery (module T : Rp_baseline.Table_intf.TABLE) () =
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:8 () in
  Alcotest.(check int) "initial size" 8 (T.size t);
  Alcotest.(check int) "initially empty" 0 (T.length t);
  Alcotest.(check (option string)) "find on empty" None (T.find t 1);
  (* insert + find *)
  for i = 0 to 99 do
    T.insert t i (string_of_int i)
  done;
  Alcotest.(check int) "hundred entries" 100 (T.length t);
  for i = 0 to 99 do
    Alcotest.(check (option string))
      (Printf.sprintf "find %d" i)
      (Some (string_of_int i))
      (T.find t i)
  done;
  Alcotest.(check (option string)) "missing key" None (T.find t 1000);
  (* insert overwrites *)
  T.insert t 5 "five";
  Alcotest.(check (option string)) "overwritten" (Some "five") (T.find t 5);
  Alcotest.(check int) "overwrite keeps count" 100 (T.length t);
  (* remove *)
  Alcotest.(check bool) "remove present" true (T.remove t 5);
  Alcotest.(check bool) "remove absent" false (T.remove t 5);
  Alcotest.(check (option string)) "gone" None (T.find t 5);
  Alcotest.(check int) "count after remove" 99 (T.length t)

let resize_battery (module T : Rp_baseline.Table_intf.TABLE) () =
  let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:8 () in
  for i = 0 to 199 do
    T.insert t i (i * 11)
  done;
  T.resize t 256;
  Alcotest.(check int) "grew" 256 (T.size t);
  for i = 0 to 199 do
    Alcotest.(check (option int)) "survives grow" (Some (i * 11)) (T.find t i)
  done;
  T.resize t 16;
  Alcotest.(check int) "shrank" 16 (T.size t);
  for i = 0 to 199 do
    Alcotest.(check (option int)) "survives shrink" (Some (i * 11)) (T.find t i)
  done

(* Model-based comparison, identical for every implementation. *)
let model_property name (module T : Rp_baseline.Table_intf.TABLE) =
  let open QCheck in
  Test.make
    ~name:(name ^ " matches Hashtbl model")
    ~count:150
    (list_of_size Gen.(int_bound 60)
       (triple (int_bound 2) (int_bound 50) (int_bound 500)))
    (fun ops ->
      let t = T.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:4 () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (kind, k, v) ->
          match kind with
          | 0 ->
              T.insert t k v;
              Hashtbl.replace model k v
          | 1 ->
              let a = T.remove t k in
              let b = Hashtbl.mem model k in
              Hashtbl.remove model k;
              if a <> b then Test.fail_reportf "remove %d: table %b model %b" k a b
          | _ -> T.resize t (4 lsl (k mod 6)))
        ops;
      List.for_all
        (fun k ->
          let a = T.find t k in
          let b = Hashtbl.find_opt model k in
          if a <> b then Test.fail_reportf "find %d mismatch" k else true)
        (List.init 51 Fun.id)
      && T.length t = Hashtbl.length model)

let test_fixed_rp_refuses_resize () =
  let module F = Rp_baseline.Rp_table.Fixed in
  let t = F.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ~size:64 () in
  F.insert t 1 "one";
  Alcotest.check_raises "resize refused"
    (Invalid_argument "Rp_table.Fixed.resize: fixed-size table cannot resize")
    (fun () -> F.resize t 128);
  Alcotest.(check int) "size unchanged" 64 (F.size t);
  Alcotest.(check (option string)) "contents unchanged" (Some "one") (F.find t 1)

let test_ddds_reader_retries_counted () =
  let t =
    Rp_baseline.Ddds_ht.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:64 ()
  in
  for i = 0 to 999 do
    Rp_baseline.Ddds_ht.insert t i i
  done;
  Alcotest.(check bool) "not resizing at rest" false (Rp_baseline.Ddds_ht.resizing t);
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let hits = ref 0 in
        while not (Atomic.get stop) do
          for i = 0 to 999 do
            if Rp_baseline.Ddds_ht.find t i = Some i then incr hits
          done
        done;
        !hits)
  in
  for _ = 1 to 50 do
    Rp_baseline.Ddds_ht.resize t 1024;
    Rp_baseline.Ddds_ht.resize t 64
  done;
  Atomic.set stop true;
  ignore (Domain.join reader);
  (* Under 100 migrations, concurrent readers must have retried at least
     once — this is exactly the cost the paper attributes to DDDS. *)
  Alcotest.(check bool) "retries observed" true
    (Rp_baseline.Ddds_ht.reader_retries t > 0)

let test_ddds_lookup_during_migration_finds_both_tables () =
  (* Deterministic white-box check of the two-table read path: keys still in
     the old table during a resize must remain findable. We can't freeze a
     migration from outside, so instead verify that lookups during a
     concurrent resize storm never miss. *)
  let t =
    Rp_baseline.Ddds_ht.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:16 ()
  in
  for i = 0 to 4999 do
    Rp_baseline.Ddds_ht.insert t i i
  done;
  let stop = Atomic.make false in
  let resizer =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Rp_baseline.Ddds_ht.resize t 4096;
          Rp_baseline.Ddds_ht.resize t 16
        done)
  in
  let misses = ref 0 in
  for _ = 1 to 20 do
    for i = 0 to 4999 do
      if Rp_baseline.Ddds_ht.find t i <> Some i then incr misses
    done
  done;
  Atomic.set stop true;
  Domain.join resizer;
  Alcotest.(check int) "no misses during migration" 0 !misses

let test_xu_side_flips () =
  let t =
    Rp_baseline.Xu_ht.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:8 ()
  in
  let side0 = Rp_baseline.Xu_ht.active_side t in
  for i = 0 to 49 do
    Rp_baseline.Xu_ht.insert t i i
  done;
  Rp_baseline.Xu_ht.resize t 32;
  Alcotest.(check bool) "side flipped" true
    (Rp_baseline.Xu_ht.active_side t <> side0);
  Rp_baseline.Xu_ht.resize t 8;
  Alcotest.(check int) "side restored" side0 (Rp_baseline.Xu_ht.active_side t);
  for i = 0 to 49 do
    Alcotest.(check (option int)) "survives two flips" (Some i)
      (Rp_baseline.Xu_ht.find t i)
  done;
  Alcotest.(check int) "memory overhead factor" 2 Rp_baseline.Xu_ht.words_per_node

let test_xu_same_size_resize_noop () =
  let t =
    Rp_baseline.Xu_ht.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:16 ()
  in
  let side = Rp_baseline.Xu_ht.active_side t in
  Rp_baseline.Xu_ht.resize t 16;
  Alcotest.(check int) "no flip on same size" side (Rp_baseline.Xu_ht.active_side t)

let test_lock_ht_compound_ops () =
  let t =
    Rp_baseline.Lock_ht.create ~hash:Rp_hashes.Hashfn.fnv1a_string
      ~equal:String.equal ~size:8 ()
  in
  Rp_baseline.Lock_ht.with_lock t (fun () ->
      Rp_baseline.Lock_ht.unsafe_insert t "a" 1;
      Rp_baseline.Lock_ht.unsafe_insert t "b" 2;
      Alcotest.(check (option int)) "unsafe_find" (Some 1)
        (Rp_baseline.Lock_ht.unsafe_find t "a");
      Alcotest.(check bool) "unsafe_remove" true
        (Rp_baseline.Lock_ht.unsafe_remove t "a"));
  let collected = ref [] in
  Rp_baseline.Lock_ht.with_lock t (fun () ->
      Rp_baseline.Lock_ht.unsafe_iter t ~f:(fun k v -> collected := (k, v) :: !collected));
  Alcotest.(check (list (pair string int))) "iter sees survivors" [ ("b", 2) ]
    !collected

let test_chained_directly () =
  let t =
    Rp_baseline.Chained.create ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal
      ~size:3 (* rounded up to 4 *) ()
  in
  Alcotest.(check int) "rounded to power of two" 4 (Rp_baseline.Chained.size t);
  for i = 0 to 9 do
    Rp_baseline.Chained.insert t i i
  done;
  Rp_baseline.Chained.insert t 3 33;
  Alcotest.(check int) "overwrite" 10 (Rp_baseline.Chained.length t);
  Alcotest.(check (option int)) "overwritten value" (Some 33)
    (Rp_baseline.Chained.find t 3);
  Rp_baseline.Chained.resize t 64;
  Alcotest.(check (option int)) "survives resize" (Some 33)
    (Rp_baseline.Chained.find t 3);
  let sum = ref 0 in
  Rp_baseline.Chained.iter t ~f:(fun _ v -> sum := !sum + v);
  Alcotest.(check int) "iter sum" (45 - 3 + 33) !sum

let () =
  let functional =
    List.map
      (fun (name, m) -> Alcotest.test_case name `Quick (battery m))
      implementations
  in
  let resizable =
    List.filter_map
      (fun (name, m) ->
        if name <> "fixed" then
          Some (Alcotest.test_case name `Quick (resize_battery m))
        else None)
      implementations
  in
  let properties =
    List.map
      (fun (name, m) -> QCheck_alcotest.to_alcotest (model_property name m))
      implementations
  in
  Alcotest.run "baselines"
    [
      ("functional battery", functional);
      ("resize battery", resizable);
      ("model properties", properties);
      ( "ddds specifics",
        [
          Alcotest.test_case "reader retries counted" `Slow
            test_ddds_reader_retries_counted;
          Alcotest.test_case "no misses during migration" `Slow
            test_ddds_lookup_during_migration_finds_both_tables;
        ] );
      ( "xu specifics",
        [
          Alcotest.test_case "side flips" `Quick test_xu_side_flips;
          Alcotest.test_case "same-size resize no-op" `Quick
            test_xu_same_size_resize_noop;
        ] );
      ( "lock specifics",
        [
          Alcotest.test_case "compound ops" `Quick test_lock_ht_compound_ops;
          Alcotest.test_case "chained core" `Quick test_chained_directly;
        ] );
      ( "fixed rp",
        [ Alcotest.test_case "refuses resize" `Quick test_fixed_rp_refuses_resize ] );
    ]
