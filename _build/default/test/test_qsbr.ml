(* QSBR RCU flavour: registration, online/offline, quiescent states, grace
   periods, the Flavour abstraction, and the QSBR-flavoured table. *)

let test_register_online () =
  let q = Rcu_qsbr.create () in
  Alcotest.(check int) "empty" 0 (Rcu_qsbr.registered_threads q);
  let th = Rcu_qsbr.register q in
  Alcotest.(check int) "one" 1 (Rcu_qsbr.registered_threads q);
  Alcotest.(check bool) "born online" true (Rcu_qsbr.is_online th);
  Rcu_qsbr.offline th;
  Alcotest.(check bool) "offline" false (Rcu_qsbr.is_online th);
  Rcu_qsbr.online th;
  Alcotest.(check bool) "online again" true (Rcu_qsbr.is_online th);
  Rcu_qsbr.unregister q th;
  Alcotest.(check int) "drained" 0 (Rcu_qsbr.registered_threads q)

let test_read_sections_bookkeeping () =
  let q = Rcu_qsbr.create () in
  let th = Rcu_qsbr.register q in
  Rcu_qsbr.read_lock th;
  Rcu_qsbr.read_lock th;
  Alcotest.(check bool) "nested" true (Rcu_qsbr.in_critical_section th);
  Alcotest.check_raises "quiescent inside section rejected"
    (Invalid_argument "Rcu_qsbr.quiescent_state: inside a critical section")
    (fun () -> Rcu_qsbr.quiescent_state th);
  Rcu_qsbr.read_unlock th;
  Rcu_qsbr.read_unlock th;
  Alcotest.(check bool) "outside" false (Rcu_qsbr.in_critical_section th);
  Rcu_qsbr.quiescent_state th;
  Rcu_qsbr.unregister q th

let test_read_lock_offline_rejected () =
  let q = Rcu_qsbr.create () in
  let th = Rcu_qsbr.register q in
  Rcu_qsbr.offline th;
  Alcotest.check_raises "offline read rejected"
    (Invalid_argument "Rcu_qsbr.read_lock: thread is offline") (fun () ->
      Rcu_qsbr.read_lock th);
  Rcu_qsbr.unregister q th

(* synchronize must wait for a non-quiescing online thread and release once
   it announces a quiescent state. *)
let test_synchronize_waits_for_quiescence () =
  let q = Rcu_qsbr.create () in
  let ready = Atomic.make false in
  let quiesce = Atomic.make false in
  let sync_done = Atomic.make false in
  let participant =
    Domain.spawn (fun () ->
        let th = Rcu_qsbr.register q in
        Atomic.set ready true;
        while not (Atomic.get quiesce) do
          Domain.cpu_relax ()
        done;
        Rcu_qsbr.quiescent_state th;
        (* Stay registered until the grace period completes. *)
        while not (Atomic.get sync_done) do
          Rcu_qsbr.quiescent_state th;
          Domain.cpu_relax ()
        done;
        Rcu_qsbr.unregister q th)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let syncer =
    Domain.spawn (fun () ->
        Rcu_qsbr.synchronize q;
        Atomic.set sync_done true)
  in
  Unix.sleepf 0.05;
  Alcotest.(check bool) "blocked until quiescent state" false
    (Atomic.get sync_done);
  Atomic.set quiesce true;
  Domain.join syncer;
  Alcotest.(check bool) "released" true (Atomic.get sync_done);
  Domain.join participant;
  Alcotest.(check int) "one grace period" 1 (Rcu_qsbr.grace_periods q)

let test_synchronize_skips_offline () =
  let q = Rcu_qsbr.create () in
  let parked = Atomic.make false in
  let release = Atomic.make false in
  let participant =
    Domain.spawn (fun () ->
        let th = Rcu_qsbr.register q in
        Rcu_qsbr.offline th;
        Atomic.set parked true;
        while not (Atomic.get release) do
          Domain.cpu_relax ()
        done;
        Rcu_qsbr.unregister q th)
  in
  while not (Atomic.get parked) do
    Domain.cpu_relax ()
  done;
  (* Offline threads are in an extended quiescent state: no waiting. *)
  Rcu_qsbr.synchronize q;
  Atomic.set release true;
  Domain.join participant

let test_flavour_memb_roundtrip () =
  let rcu = Rcu.create () in
  let f = Flavour.memb rcu in
  Alcotest.(check string) "name" "memb" f.Flavour.name;
  Flavour.with_read f (fun () -> ());
  f.Flavour.synchronize ();
  let fired = ref false in
  f.Flavour.call_rcu (fun () -> fired := true);
  f.Flavour.barrier ();
  Alcotest.(check bool) "callback fired" true !fired;
  f.Flavour.thread_offline ()

let test_flavour_qsbr_roundtrip () =
  let q = Rcu_qsbr.create () in
  let f = Flavour.qsbr ~quiesce_interval:4 q in
  Alcotest.(check string) "name" "qsbr" f.Flavour.name;
  for _ = 1 to 10 do
    Flavour.with_read f (fun () -> ())
  done;
  f.Flavour.synchronize ();
  let fired = ref false in
  f.Flavour.call_rcu (fun () -> fired := true);
  f.Flavour.barrier ();
  Alcotest.(check bool) "callback fired" true !fired;
  (* Offline then transparently back online on the next read. *)
  f.Flavour.thread_offline ();
  Flavour.with_read f (fun () -> ());
  f.Flavour.synchronize ()

let test_flavour_qsbr_validation () =
  let q = Rcu_qsbr.create () in
  Alcotest.check_raises "non-power-of-two interval"
    (Invalid_argument "Flavour.qsbr: quiesce_interval must be a positive power of two")
    (fun () -> ignore (Flavour.qsbr ~quiesce_interval:3 q))

let make_qsbr_table () =
  let q = Rcu_qsbr.create () in
  Rp_ht.create
    ~flavour:(Flavour.qsbr ~quiesce_interval:8 q)
    ~initial_size:64 ~auto_resize:false ~hash:Rp_hashes.Hashfn.of_int
    ~equal:Int.equal ()

let test_qsbr_table_basics () =
  let t = make_qsbr_table () in
  for i = 0 to 199 do
    Rp_ht.insert t i (i * 2)
  done;
  for i = 0 to 199 do
    Alcotest.(check (option int)) "find" (Some (i * 2)) (Rp_ht.find t i)
  done;
  Alcotest.check_raises "rcu accessor refuses custom flavour"
    (Invalid_argument "Rp_ht.rcu: table was built with a custom flavour")
    (fun () -> ignore (Rp_ht.rcu t));
  Alcotest.(check string) "flavour name" "qsbr"
    (Rp_ht.flavour t).Flavour.name

let test_qsbr_table_resize_under_readers () =
  let t = make_qsbr_table () in
  let resident = 512 in
  for i = 0 to resident - 1 do
    Rp_ht.insert t i i
  done;
  let stop = Atomic.make false in
  let violations = Atomic.make 0 in
  let readers =
    List.init 2 (fun seed ->
        Domain.spawn (fun () ->
            let prng = Rp_workload.Prng.create ~seed in
            while not (Atomic.get stop) do
              let k = Rp_workload.Prng.below prng resident in
              if Rp_ht.find t k <> Some k then Atomic.incr violations
            done;
            (* Mandatory for QSBR: stop stalling grace periods on exit. *)
            (Rp_ht.flavour t).Flavour.thread_offline ()))
  in
  for _ = 1 to 25 do
    Rp_ht.resize t 2048;
    Rp_ht.resize t 64
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  (Rp_ht.flavour t).Flavour.barrier ();
  Alcotest.(check int) "no violations under qsbr resize" 0 (Atomic.get violations);
  (match Rp_ht.validate t with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "invariant: %s" msg);
  let stats = Rp_ht.resize_stats t in
  Alcotest.(check bool) "resizes completed" true
    (stats.expands = 25 * 5 && stats.shrinks = 25 * 5)

let test_create_rejects_both () =
  let q = Rcu_qsbr.create () in
  Alcotest.check_raises "rcu and flavour together"
    (Invalid_argument "Rp_ht.create: pass either ~rcu or ~flavour, not both")
    (fun () ->
      ignore
        (Rp_ht.create ~rcu:(Rcu.create ())
           ~flavour:(Flavour.qsbr q)
           ~hash:Rp_hashes.Hashfn.of_int ~equal:Int.equal ()
          : (int, int) Rp_ht.t))

let () =
  Alcotest.run "qsbr"
    [
      ( "thread lifecycle",
        [
          Alcotest.test_case "register/online/offline" `Quick test_register_online;
          Alcotest.test_case "read-section bookkeeping" `Quick
            test_read_sections_bookkeeping;
          Alcotest.test_case "offline read rejected" `Quick
            test_read_lock_offline_rejected;
        ] );
      ( "grace periods",
        [
          Alcotest.test_case "waits for quiescence" `Quick
            test_synchronize_waits_for_quiescence;
          Alcotest.test_case "skips offline threads" `Quick
            test_synchronize_skips_offline;
        ] );
      ( "flavour",
        [
          Alcotest.test_case "memb round trip" `Quick test_flavour_memb_roundtrip;
          Alcotest.test_case "qsbr round trip" `Quick test_flavour_qsbr_roundtrip;
          Alcotest.test_case "qsbr validation" `Quick test_flavour_qsbr_validation;
        ] );
      ( "qsbr table",
        [
          Alcotest.test_case "basics" `Quick test_qsbr_table_basics;
          Alcotest.test_case "resize under readers" `Slow
            test_qsbr_table_resize_under_readers;
          Alcotest.test_case "create rejects rcu+flavour" `Quick
            test_create_rejects_both;
        ] );
    ]
