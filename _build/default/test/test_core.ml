(* Facade smoke test: the public API documented in the README compiles and
   behaves through Core.* paths alone. *)

let test_table_via_facade () =
  let table =
    Core.Table.create ~initial_size:8 ~hash:Core.Hash.fnv1a_string
      ~equal:String.equal ()
  in
  Core.Table.insert table "rp-hashtable" 2011;
  Alcotest.(check (option int)) "find" (Some 2011)
    (Core.Table.find table "rp-hashtable");
  Core.Table.resize table 512;
  Alcotest.(check int) "resized" 512 (Core.Table.size table);
  Alcotest.(check (option int)) "survives" (Some 2011)
    (Core.Table.find table "rp-hashtable")

let test_radix_via_facade () =
  let tree = Core.Radix.create () in
  Core.Radix.insert tree 12345 "x";
  Alcotest.(check (option string)) "radix find" (Some "x")
    (Core.Radix.find tree 12345)

let test_rcu_via_facade () =
  let rcu = Core.Rcu.create () in
  Core.Rcu.with_read_current rcu (fun () -> ());
  Core.Rcu.synchronize rcu;
  let q = Core.Rcu_qsbr.create () in
  let f = Core.Flavour.qsbr q in
  Core.Flavour.with_read f (fun () -> ())

let test_memcached_via_facade () =
  let store = Core.Memcached.Store.create ~backend:Core.Memcached.Store.Rp () in
  Alcotest.(check bool) "set" true
    (Core.Memcached.Store.set store ~key:"k" ~flags:0 ~exptime:0 ~data:"v"
    = Core.Memcached.Store.Stored);
  Alcotest.(check bool) "get" true (Core.Memcached.Store.get store "k" <> None)

let test_torture_via_facade () =
  let report =
    Core.Torture.run
      {
        Core.Torture.default_config with
        duration = 0.05;
        resident_keys = 64;
        churn_keys = 32;
        small_size = 16;
        large_size = 64;
      }
  in
  Alcotest.(check int) "clean" 0 (Core.Torture.violations report)

let test_sim_via_facade () =
  let p = Core.Sim.Costmodel.rp_fixed ~lambda:1.0 in
  Alcotest.(check (float 1e-9)) "usl" 16.0
    (Core.Sim.Costmodel.throughput p ~threads:16)

let () =
  Alcotest.run "core"
    [
      ( "facade",
        [
          Alcotest.test_case "table" `Quick test_table_via_facade;
          Alcotest.test_case "radix" `Quick test_radix_via_facade;
          Alcotest.test_case "rcu" `Quick test_rcu_via_facade;
          Alcotest.test_case "memcached" `Quick test_memcached_via_facade;
          Alcotest.test_case "torture" `Quick test_torture_via_facade;
          Alcotest.test_case "sim" `Quick test_sim_via_facade;
        ] );
    ]
