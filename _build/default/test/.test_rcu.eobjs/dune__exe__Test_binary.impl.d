test/test_binary.ml: Alcotest Binary_client Binary_protocol Binary_server Client Filename Gen List Memcached Option Printf QCheck QCheck_alcotest Server Store String Unix
