test/test_torture.mli:
