test/test_unzip.ml: Alcotest Atomic Gen Int List Printf QCheck QCheck_alcotest Rp_hashes Rp_ht Rp_list String Unzip
