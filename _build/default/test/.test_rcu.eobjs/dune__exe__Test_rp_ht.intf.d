test/test_rp_ht.mli:
