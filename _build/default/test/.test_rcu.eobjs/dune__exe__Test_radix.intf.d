test/test_radix.mli:
