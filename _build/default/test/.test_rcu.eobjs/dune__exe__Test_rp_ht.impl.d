test/test_rp_ht.ml: Alcotest Array Fun Gen Hashtbl Int List Printf QCheck QCheck_alcotest Rcu Rp_hashes Rp_ht String
