test/test_store.ml: Alcotest Gen Hashtbl Item List Memcached Option Printf Protocol QCheck QCheck_alcotest Slab Store String
