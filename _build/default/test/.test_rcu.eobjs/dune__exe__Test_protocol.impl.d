test/test_protocol.ml: Alcotest Gen List Memcached Option Printf Protocol QCheck QCheck_alcotest Result String
