test/test_protocol.ml: Alcotest Gen List Memcached Protocol QCheck QCheck_alcotest String
