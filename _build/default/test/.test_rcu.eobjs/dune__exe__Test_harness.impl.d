test/test_harness.ml: Alcotest Array Atomic Domain Filename List Rp_harness String Sys Unix
