test/test_figures.ml: Alcotest Float List Memcached Rp_baseline Rp_figures Rp_harness Rp_workload String
