test/test_radix.ml: Alcotest Atomic Domain Flavour Gen Hashtbl List QCheck QCheck_alcotest Rcu_qsbr Rp_radix Rp_workload
