test/test_baselines.ml: Alcotest Atomic Domain Fun Gen Hashtbl Int List Printf QCheck QCheck_alcotest Rp_baseline Rp_hashes String Test
