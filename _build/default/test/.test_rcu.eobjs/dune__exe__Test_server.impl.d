test/test_server.ml: Alcotest Bytes Char Client Filename List Memcached Option Printf Protocol Server Store String Unix
