test/test_server.ml: Alcotest Bytes Char Client Filename Fun List Memcached Option Printf Protocol Rp_fault Server Store String Unix
