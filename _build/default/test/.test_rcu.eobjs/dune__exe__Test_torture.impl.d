test/test_torture.ml: Alcotest Format Rp_fault Rp_torture String
