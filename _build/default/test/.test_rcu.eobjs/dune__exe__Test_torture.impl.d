test/test_torture.ml: Alcotest Format Rp_torture String
