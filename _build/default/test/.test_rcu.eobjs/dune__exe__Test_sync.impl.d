test/test_sync.ml: Alcotest Atomic Domain Gen List QCheck QCheck_alcotest Rp_sync
