test/test_unzip.mli:
