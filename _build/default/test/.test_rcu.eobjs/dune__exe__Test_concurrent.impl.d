test/test_concurrent.ml: Alcotest Atomic Domain Fun Int List Memcached Option Printf Rcu Rp_baseline Rp_hashes Rp_ht Rp_workload String Unix
