test/test_slab.ml: Alcotest Array Binary_protocol Binary_server Gen List Memcached Option Protocol QCheck QCheck_alcotest Server Slab Store String
