test/test_simcore.ml: Alcotest Float List Option QCheck QCheck_alcotest Rp_harness Simcore
