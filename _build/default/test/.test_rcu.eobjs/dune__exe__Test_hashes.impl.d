test/test_hashes.ml: Alcotest Array Bytes List Printf QCheck QCheck_alcotest Rp_hashes String
