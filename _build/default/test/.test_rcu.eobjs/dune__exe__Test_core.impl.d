test/test_core.ml: Alcotest Core String
