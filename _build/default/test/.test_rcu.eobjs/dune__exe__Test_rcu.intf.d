test/test_rcu.mli:
