test/test_fault.ml: Alcotest Fun List Rp_fault Unix
