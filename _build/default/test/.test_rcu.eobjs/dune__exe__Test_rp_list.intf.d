test/test_rp_list.mli:
