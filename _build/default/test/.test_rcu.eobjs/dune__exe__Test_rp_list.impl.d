test/test_rp_list.ml: Alcotest Atomic Domain Fun Int List Printf QCheck QCheck_alcotest Rcu Rp_list String
