test/test_workload.ml: Alcotest Array Fun Printf QCheck QCheck_alcotest Rp_workload String
