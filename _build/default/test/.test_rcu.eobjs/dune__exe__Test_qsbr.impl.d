test/test_qsbr.ml: Alcotest Atomic Domain Flavour Int List Rcu Rcu_qsbr Rp_hashes Rp_ht Rp_workload Unix
